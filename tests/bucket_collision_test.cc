// Regression tests: two different keys colliding into one bucket inside a
// single transaction must not self-deadlock under NO_WAIT (the bucket lock
// is recognized as already owned and the second write piggybacks on it).
#include <gtest/gtest.h>

#include <memory>

#include "cc/cluster.h"
#include "cc/occ.h"
#include "cc/twopl.h"
#include "chiller/two_region.h"
#include "partition/lookup_table.h"
#include "txn/transaction.h"

namespace chiller {
namespace {

using storage::LockMode;
using storage::Record;
using txn::Operation;
using txn::OpType;
using txn::Outcome;
using txn::Transaction;

/// Schema with a single-bucket table: every key collides.
std::vector<storage::TableSpec> OneBucketSchema() {
  return {storage::TableSpec{.name = "t", .id = 0, .num_fields = 1,
                             .buckets_per_partition = 1}};
}

Operation UpdateKey(Key k, int64_t delta) {
  Operation op;
  op.type = OpType::kUpdate;
  op.table = 0;
  op.mode = LockMode::kExclusive;
  op.key_fn = [k](const txn::TxnContext&) { return k; };
  op.on_apply = [delta](txn::TxnContext&, Record* r) { r->Add(0, delta); };
  return op;
}

struct MiniEnv {
  std::unique_ptr<cc::Cluster> cluster;
  partition::HashPartitioner partitioner{1, [](const RecordId&, uint32_t) {
                                           return PartitionId{0};
                                         }};
  std::unique_ptr<cc::ReplicationManager> repl;
  std::unique_ptr<cc::Protocol> protocol;
};

MiniEnv MakeMini(const std::string& proto) {
  MiniEnv env;
  cc::ClusterConfig cfg;
  cfg.topology = net::Topology{.num_nodes = 2,
                               .engines_per_node = 1,
                               .replication_degree = 2};
  cfg.schema = OneBucketSchema();
  env.cluster = std::make_unique<cc::Cluster>(cfg);
  for (Key k = 1; k <= 4; ++k) {
    Record r(1);
    r.Set(0, 100);
    env.cluster->LoadRecord(RecordId{0, k}, r, env.partitioner);
  }
  env.repl = std::make_unique<cc::ReplicationManager>(env.cluster.get());
  if (proto == "2pl") {
    env.protocol = std::make_unique<cc::TwoPhaseLocking>(
        env.cluster.get(), &env.partitioner, env.repl.get());
  } else if (proto == "occ") {
    env.protocol = std::make_unique<cc::Occ>(env.cluster.get(),
                                             &env.partitioner,
                                             env.repl.get());
  } else {
    env.protocol = std::make_unique<core::ChillerProtocol>(
        env.cluster.get(), &env.partitioner, env.repl.get());
  }
  return env;
}

class BucketCollisionTest : public ::testing::TestWithParam<std::string> {};

TEST_P(BucketCollisionTest, TwoKeysOneBucketCommits) {
  MiniEnv env = MakeMini(GetParam());
  auto t = std::make_shared<Transaction>();
  t->ops = {UpdateKey(1, 5), UpdateKey(2, 7)};
  t->home = 0;
  t->InitAccesses();
  bool done = false;
  env.protocol->Execute(t, [&] { done = true; });
  env.cluster->sim()->Run();
  ASSERT_TRUE(done);
  EXPECT_EQ(t->outcome, Outcome::kCommitted);
  EXPECT_EQ(env.cluster->primary(0)->Find({0, 1})->Get(0), 105);
  EXPECT_EQ(env.cluster->primary(0)->Find({0, 2})->Get(0), 107);
  EXPECT_EQ(env.cluster->primary(0)->locks_held(), 0u);
  // Replica converged too (piggybacked writes replicate with the rest).
  EXPECT_EQ(env.cluster->replica(0, 1)->Find({0, 1})->Get(0), 105);
  EXPECT_EQ(env.cluster->replica(0, 1)->Find({0, 2})->Get(0), 107);
}

TEST_P(BucketCollisionTest, FourKeysOneBucketCommits) {
  MiniEnv env = MakeMini(GetParam());
  auto t = std::make_shared<Transaction>();
  t->ops = {UpdateKey(1, 1), UpdateKey(2, 2), UpdateKey(3, 3),
            UpdateKey(4, 4)};
  t->home = 0;
  t->InitAccesses();
  bool done = false;
  env.protocol->Execute(t, [&] { done = true; });
  env.cluster->sim()->Run();
  ASSERT_TRUE(done);
  EXPECT_EQ(t->outcome, Outcome::kCommitted);
  for (Key k = 1; k <= 4; ++k) {
    EXPECT_EQ(env.cluster->primary(0)->Find({0, k})->Get(0),
              100 + static_cast<int64_t>(k));
  }
  EXPECT_EQ(env.cluster->primary(0)->locks_held(), 0u);
}

TEST_P(BucketCollisionTest, AbortReleasesEverything) {
  MiniEnv env = MakeMini(GetParam());
  auto t = std::make_shared<Transaction>();
  Operation guarded = UpdateKey(2, 7);
  guarded.guard = [](const txn::TxnContext&) { return false; };  // user abort
  t->ops = {UpdateKey(1, 5), std::move(guarded)};
  t->home = 0;
  t->InitAccesses();
  bool done = false;
  env.protocol->Execute(t, [&] { done = true; });
  env.cluster->sim()->Run();
  ASSERT_TRUE(done);
  EXPECT_EQ(t->outcome, Outcome::kAbortUser);
  EXPECT_EQ(env.cluster->primary(0)->Find({0, 1})->Get(0), 100);  // rolled back
  EXPECT_EQ(env.cluster->primary(0)->Find({0, 2})->Get(0), 100);
  EXPECT_EQ(env.cluster->primary(0)->locks_held(), 0u);
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, BucketCollisionTest,
                         ::testing::Values("2pl", "occ", "chiller"));

}  // namespace
}  // namespace chiller
