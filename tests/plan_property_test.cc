// Property sweep: the two-region planner must uphold its invariants on
// arbitrary operation DAGs, not just the workloads shipped in this repo.
// Randomized, seed-parameterized (deterministic per seed).
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/random.h"
#include "txn/dependency_graph.h"
#include "txn/operation.h"
#include "txn/transaction.h"

namespace chiller::txn {
namespace {

using storage::LockMode;

constexpr uint32_t kPartitions = 4;
constexpr Key kHotBelow = 30;
constexpr Key kKeySpace = 200;

PartitionId PartOf(const RecordId& rid) {
  return static_cast<PartitionId>(rid.key % kPartitions);
}
bool HotFnImpl(const RecordId& rid) { return rid.key < kHotBelow; }

/// Builds a random but well-formed transaction: every op reads or updates
/// one record; some ops pk-depend on earlier ops (key unknown until then),
/// optionally with a co-location guarantee; some ops carry guards with
/// v-deps on earlier ops.
Transaction RandomTxn(uint64_t seed) {
  Rng rng(seed);
  const size_t n = 3 + rng.Uniform(10);
  Transaction t;
  for (size_t i = 0; i < n; ++i) {
    Operation op;
    op.template_id = static_cast<int>(i);
    op.type = rng.Bernoulli(0.5) ? OpType::kUpdate : OpType::kRead;
    op.mode = op.type == OpType::kUpdate ? LockMode::kExclusive
                                         : LockMode::kShared;
    op.table = 0;
    const Key key = rng.Uniform(kKeySpace);
    if (i > 0 && rng.Bernoulli(0.25)) {
      // pk-dep on a random earlier op; derived key mimics "key read from
      // the parent record".
      const int parent = static_cast<int>(rng.Uniform(i));
      op.pk_deps = {parent};
      op.co_located_with_dep = rng.Bernoulli(0.5);
      op.key_fn = [key](const TxnContext&) { return key; };
    } else {
      op.key_fn = [key](const TxnContext&) { return key; };
    }
    if (i > 0 && rng.Bernoulli(0.2)) {
      op.v_deps = {static_cast<int>(rng.Uniform(i))};
      if (rng.Bernoulli(0.5)) {
        op.guard = [](const TxnContext&) { return true; };
      }
    }
    if (op.type == OpType::kUpdate) {
      op.on_apply = [](TxnContext&, storage::Record* r) { r->Add(0, 1); };
    }
    t.ops.push_back(std::move(op));
  }
  t.InitAccesses();
  t.ResolveReadyKeys();
  for (auto& a : t.accesses) {
    if (a.key_resolved) a.partition = PartOf(a.rid);
  }
  return t;
}

class PlanPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PlanPropertyTest, InvariantsHold) {
  Transaction t = RandomTxn(GetParam());
  ASSERT_TRUE(DependencyAnalysis::Validate(t.ops).ok());
  const TwoRegionPlan plan =
      DependencyAnalysis::Plan(t, HotFnImpl, PartOf);

  if (!plan.two_region) {
    // Fallback plans carry no op lists (plain 2PL executes everything).
    EXPECT_TRUE(plan.inner_ops.empty());
    EXPECT_FALSE(plan.fallback_reason.empty());
    return;
  }

  // (1) inner + outer is an order-preserving partition of all ops.
  std::set<int> seen;
  for (int i : plan.inner_ops) EXPECT_TRUE(seen.insert(i).second);
  for (int i : plan.outer_ops) EXPECT_TRUE(seen.insert(i).second);
  EXPECT_EQ(seen.size(), t.ops.size());
  EXPECT_TRUE(std::is_sorted(plan.inner_ops.begin(), plan.inner_ops.end()));
  EXPECT_TRUE(std::is_sorted(plan.outer_ops.begin(), plan.outer_ops.end()));

  std::set<int> inner(plan.inner_ops.begin(), plan.inner_ops.end());

  // (2) single inner host: every resolved inner op lives on it; unresolved
  // inner ops carry a co-location guarantee whose parent is inner.
  bool any_hot_inner = false;
  for (int i : plan.inner_ops) {
    const auto& acc = t.accesses[static_cast<size_t>(i)];
    if (acc.key_resolved) {
      EXPECT_EQ(acc.partition, plan.inner_host);
      any_hot_inner |= HotFnImpl(acc.rid);
    } else {
      EXPECT_TRUE(t.ops[static_cast<size_t>(i)].co_located_with_dep);
      EXPECT_TRUE(
          inner.contains(t.ops[static_cast<size_t>(i)].pk_deps.front()));
    }
  }
  // (3) the inner host was chosen because of hot records.
  EXPECT_TRUE(any_hot_inner);

  for (int i : plan.outer_ops) {
    const Operation& op = t.ops[static_cast<size_t>(i)];
    // (4) no outer op's key derives from an inner read.
    for (int d : op.pk_deps) EXPECT_FALSE(inner.contains(d));
    // (5) no outer guard depends on an inner read (no post-commit aborts).
    if (op.guard) {
      for (int d : op.v_deps) EXPECT_FALSE(inner.contains(d));
    }
  }

  // (6) deferred applies are outer writes that value-depend on inner ops.
  for (int i : plan.deferred_apply) {
    EXPECT_FALSE(inner.contains(i));
    const Operation& op = t.ops[static_cast<size_t>(i)];
    EXPECT_TRUE(op.IsWrite());
    bool depends_on_inner = false;
    for (int d : op.v_deps) depends_on_inner |= inner.contains(d);
    EXPECT_TRUE(depends_on_inner);
  }
}

TEST_P(PlanPropertyTest, NoHotMeansFallback) {
  Transaction t = RandomTxn(GetParam());
  const TwoRegionPlan plan = DependencyAnalysis::Plan(
      t, [](const RecordId&) { return false; }, PartOf);
  EXPECT_FALSE(plan.two_region);
}

TEST_P(PlanPropertyTest, PlanIsDeterministic) {
  Transaction t1 = RandomTxn(GetParam());
  Transaction t2 = RandomTxn(GetParam());
  const auto p1 = DependencyAnalysis::Plan(t1, HotFnImpl, PartOf);
  const auto p2 = DependencyAnalysis::Plan(t2, HotFnImpl, PartOf);
  EXPECT_EQ(p1.two_region, p2.two_region);
  EXPECT_EQ(p1.inner_host, p2.inner_host);
  EXPECT_EQ(p1.inner_ops, p2.inner_ops);
  EXPECT_EQ(p1.outer_ops, p2.outer_ops);
  EXPECT_EQ(p1.deferred_apply, p2.deferred_apply);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PlanPropertyTest,
                         ::testing::Range<uint64_t>(0, 40));

}  // namespace
}  // namespace chiller::txn
