// Reproducibility: the whole stack — simulator, network, engines,
// protocols, workload generators — is deterministic for a fixed seed.
// Every experiment in bench/ therefore reproduces bit-for-bit.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "cc/cluster.h"
#include "cc/driver.h"
#include "cc/occ.h"
#include "cc/twopl.h"
#include "chiller/two_region.h"
#include "workload/flight.h"
#include "workload/tpcc/tpcc_workload.h"

namespace chiller {
namespace {

struct Fingerprint {
  uint64_t commits;
  uint64_t conflicts;
  uint64_t users;
  uint64_t events;
  uint64_t net_messages;

  friend bool operator==(const Fingerprint&, const Fingerprint&) = default;
};

Fingerprint RunFlight(const std::string& proto, uint64_t seed) {
  cc::ClusterConfig cfg;
  cfg.topology = net::Topology{.num_nodes = 3,
                               .engines_per_node = 1,
                               .replication_degree = 2};
  cfg.schema = workload::FlightSchema::Specs();
  cc::Cluster cluster(cfg);
  workload::FlightWorkload workload({});
  workload::FlightPartitioner partitioner(3, 10);
  workload.ForEachRecord([&](const RecordId& rid, const storage::Record& r) {
    cluster.LoadRecord(rid, r, partitioner);
  });
  cc::ReplicationManager repl(&cluster);
  std::unique_ptr<cc::Protocol> protocol;
  if (proto == "2pl") {
    protocol = std::make_unique<cc::TwoPhaseLocking>(&cluster, &partitioner,
                                                     &repl);
  } else if (proto == "occ") {
    protocol = std::make_unique<cc::Occ>(&cluster, &partitioner, &repl);
  } else {
    protocol = std::make_unique<core::ChillerProtocol>(&cluster, &partitioner,
                                                       &repl);
  }
  cc::Driver driver(&cluster, protocol.get(), &workload, 3, seed);
  auto stats = driver.Run(1 * kMillisecond, 8 * kMillisecond);
  driver.DrainAndStop();
  uint64_t users = 0;
  for (const auto& c : stats.classes) users += c.user_aborts;
  return Fingerprint{stats.TotalCommits(), stats.TotalConflictAborts(), users,
                     cluster.sim()->events_processed(),
                     cluster.network()->messages_sent()};
}

class DeterminismTest : public ::testing::TestWithParam<std::string> {};

TEST_P(DeterminismTest, SameSeedSameExecution) {
  const Fingerprint a = RunFlight(GetParam(), 42);
  const Fingerprint b = RunFlight(GetParam(), 42);
  EXPECT_EQ(a, b);
  EXPECT_GT(a.commits, 0u);
}

TEST_P(DeterminismTest, DifferentSeedDifferentExecution) {
  const Fingerprint a = RunFlight(GetParam(), 1);
  const Fingerprint b = RunFlight(GetParam(), 2);
  // The workload stream differs, so at least the message count must move.
  EXPECT_FALSE(a == b);
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, DeterminismTest,
                         ::testing::Values("2pl", "occ", "chiller"));

TEST(DeterminismTest, TpccRunReproduces) {
  auto run = [] {
    cc::ClusterConfig cfg;
    cfg.topology = net::Topology{.num_nodes = 4,
                                 .engines_per_node = 1,
                                 .replication_degree = 2};
    cfg.schema = workload::tpcc::Schema();
    cc::Cluster cluster(cfg);
    workload::tpcc::TpccPartitioner partitioner(4);
    workload::tpcc::PopulateTpcc(
        4,
        [&](const RecordId& rid, const storage::Record& rec) {
          cluster.LoadRecord(rid, rec, partitioner);
        },
        [&](const RecordId& rid, const storage::Record& rec) {
          cluster.LoadEverywhere(rid, rec);
        });
    workload::tpcc::TpccWorkload workload(
        workload::tpcc::TpccWorkload::Options{.num_warehouses = 4});
    cc::ReplicationManager repl(&cluster);
    core::ChillerProtocol protocol(&cluster, &partitioner, &repl);
    cc::Driver driver(&cluster, &protocol, &workload, 3, 7);
    auto stats = driver.Run(1 * kMillisecond, 6 * kMillisecond);
    driver.DrainAndStop();
    return std::make_pair(stats.TotalCommits(),
                          cluster.sim()->events_processed());
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace chiller
