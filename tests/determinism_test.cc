// Reproducibility: the whole stack — simulator, network, engines,
// protocols, workload generators — is deterministic for a fixed seed.
// Every experiment in bench/ therefore reproduces bit-for-bit, and the
// parallel sweep executor reproduces the serial executor exactly.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <string_view>

#include "bench/bench_report.h"
#include "cc/cluster.h"
#include "cc/driver.h"
#include "cc/occ.h"
#include "cc/twopl.h"
#include "chiller/two_region.h"
#include "runner/sweep.h"
#include "workload/flight.h"
#include "workload/tpcc/tpcc_workload.h"

namespace chiller {
namespace {

struct Fingerprint {
  uint64_t commits;
  uint64_t conflicts;
  uint64_t users;
  uint64_t events;
  uint64_t net_messages;

  friend bool operator==(const Fingerprint&, const Fingerprint&) = default;
};

Fingerprint RunFlight(const std::string& proto, uint64_t seed) {
  cc::ClusterConfig cfg;
  cfg.topology = net::Topology{.num_nodes = 3,
                               .engines_per_node = 1,
                               .replication_degree = 2};
  cfg.schema = workload::FlightSchema::Specs();
  cc::Cluster cluster(cfg);
  workload::FlightWorkload workload({});
  workload::FlightPartitioner partitioner(3, 10);
  workload.ForEachRecord([&](const RecordId& rid, const storage::Record& r) {
    cluster.LoadRecord(rid, r, partitioner);
  });
  cc::ReplicationManager repl(&cluster);
  std::unique_ptr<cc::Protocol> protocol;
  if (proto == "2pl") {
    protocol = std::make_unique<cc::TwoPhaseLocking>(&cluster, &partitioner,
                                                     &repl);
  } else if (proto == "occ") {
    protocol = std::make_unique<cc::Occ>(&cluster, &partitioner, &repl);
  } else {
    protocol = std::make_unique<core::ChillerProtocol>(&cluster, &partitioner,
                                                       &repl);
  }
  cc::Driver driver(&cluster, protocol.get(), &workload, 3, seed);
  auto stats = driver.Run(1 * kMillisecond, 8 * kMillisecond);
  driver.DrainAndStop();
  uint64_t users = 0;
  for (const auto& c : stats.classes) users += c.user_aborts;
  return Fingerprint{stats.TotalCommits(), stats.TotalConflictAborts(), users,
                     cluster.sim()->events_processed(),
                     cluster.network()->messages_sent()};
}

class DeterminismTest : public ::testing::TestWithParam<std::string> {};

TEST_P(DeterminismTest, SameSeedSameExecution) {
  const Fingerprint a = RunFlight(GetParam(), 42);
  const Fingerprint b = RunFlight(GetParam(), 42);
  EXPECT_EQ(a, b);
  EXPECT_GT(a.commits, 0u);
}

TEST_P(DeterminismTest, DifferentSeedDifferentExecution) {
  const Fingerprint a = RunFlight(GetParam(), 1);
  const Fingerprint b = RunFlight(GetParam(), 2);
  // The workload stream differs, so at least the message count must move.
  EXPECT_FALSE(a == b);
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, DeterminismTest,
                         ::testing::Values("2pl", "occ", "chiller"));

TEST(DeterminismTest, TpccRunReproduces) {
  auto run = [] {
    cc::ClusterConfig cfg;
    cfg.topology = net::Topology{.num_nodes = 4,
                                 .engines_per_node = 1,
                                 .replication_degree = 2};
    cfg.schema = workload::tpcc::Schema();
    cc::Cluster cluster(cfg);
    workload::tpcc::TpccPartitioner partitioner(4);
    workload::tpcc::PopulateTpcc(
        4,
        [&](const RecordId& rid, const storage::Record& rec) {
          cluster.LoadRecord(rid, rec, partitioner);
        },
        [&](const RecordId& rid, const storage::Record& rec) {
          cluster.LoadEverywhere(rid, rec);
        });
    workload::tpcc::TpccWorkload workload(
        workload::tpcc::TpccWorkload::Options{.num_warehouses = 4});
    cc::ReplicationManager repl(&cluster);
    core::ChillerProtocol protocol(&cluster, &partitioner, &repl);
    cc::Driver driver(&cluster, &protocol, &workload, 3, 7);
    auto stats = driver.Run(1 * kMillisecond, 6 * kMillisecond);
    driver.DrainAndStop();
    return std::make_pair(stats.TotalCommits(),
                          cluster.sim()->events_processed());
  };
  EXPECT_EQ(run(), run());
}

// ---------------------------------------------------------------------------
// Sweep determinism: --jobs N must reproduce --jobs 1 byte for byte.
// ---------------------------------------------------------------------------

/// A small mixed-workload grid: every workload family, two protocols, two
/// seeds — enough scheduling freedom that a cross-worker leak would show.
std::vector<runner::ScenarioSpec> MixedSweep() {
  std::vector<runner::ScenarioSpec> specs;
  for (const char* workload : {"flight", "ycsb", "tpcc"}) {
    for (const char* protocol : {"2pl", "chiller"}) {
      for (uint64_t seed : {5, 17}) {
        runner::ScenarioSpec spec;
        spec.workload = workload;
        spec.protocol = protocol;
        spec.nodes = 2;
        spec.engines_per_node = 1;
        spec.concurrency = 3;
        spec.seed = seed;
        spec.warmup = kMillisecond;
        spec.measure = 3 * kMillisecond;
        if (std::string_view(workload) == "ycsb") {
          spec.options.Set("keys_per_partition", 1000);
          spec.options.Set("theta", 0.95);
        }
        specs.push_back(std::move(spec));
      }
    }
  }
  return specs;
}

/// Serializes every per-class counter and latency percentile of a sweep:
/// two sweeps are "byte-identical" iff these strings match.
std::string SweepFingerprint(
    const std::vector<StatusOr<runner::ScenarioResult>>& results) {
  std::string out;
  for (const auto& r : results) {
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    if (!r.ok()) continue;
    Json params = Json::MakeObject();
    params["workload"] = r->spec.workload;
    params["seed"] = r->spec.seed;
    out += bench::ResultRow(r->spec.protocol, std::move(params), r->stats)
               .Dump();
    out += '\n';
  }
  return out;
}

TEST(SweepDeterminismTest, JobsOneAndJobsEightAreByteIdentical) {
  const auto specs = MixedSweep();
  const std::string serial =
      SweepFingerprint(runner::SweepExecutor(1).Run(specs));
  const std::string threaded =
      SweepFingerprint(runner::SweepExecutor(8).Run(specs));
  EXPECT_FALSE(serial.empty());
  EXPECT_EQ(serial, threaded);
}

TEST(SweepDeterminismTest, RepeatedRunsAreByteIdentical) {
  const auto specs = MixedSweep();
  const std::string first =
      SweepFingerprint(runner::SweepExecutor(4).Run(specs));
  const std::string second =
      SweepFingerprint(runner::SweepExecutor(4).Run(specs));
  EXPECT_EQ(first, second);
}

/// The adaptive phase plan (sample -> replan -> migrate) exercises every
/// new moving part — the commit observer, the layout build, the quiesced
/// migration — and all of it must stay a pure function of the spec.
std::vector<runner::ScenarioSpec> AdaptiveSweep() {
  std::vector<runner::ScenarioSpec> specs;
  for (uint64_t seed : {3, 11, 29}) {
    runner::ScenarioSpec spec;
    spec.workload = "adaptive";
    spec.protocol = "chiller";
    spec.nodes = 3;
    spec.engines_per_node = 1;
    spec.concurrency = 3;
    spec.seed = seed;
    spec.options.Set("keys_per_partition", 2000);
    spec.options.Set("theta", 0.95);
    spec.phases = {
        runner::Phase::Warmup(kMillisecond),
        runner::Phase::Sample(2 * kMillisecond, /*rate=*/1.0),
        runner::Phase::Replan(),
        runner::Phase::Migrate(),
        runner::Phase::Warmup(kMillisecond),
        runner::Phase::Measure(3 * kMillisecond),
    };
    specs.push_back(std::move(spec));
  }
  return specs;
}

/// Open-loop and batched specs over two offered rates (one of them an
/// overload that sheds): the arrival clocks, the admission queue, and the
/// shed accounting must all stay pure functions of the spec regardless of
/// which worker thread runs the scenario.
std::vector<runner::ScenarioSpec> LoadModelSweep() {
  std::vector<runner::ScenarioSpec> specs;
  for (double offered : {40000.0, 4000000.0}) {
    for (const char* arrival : {"poisson", "uniform"}) {
      for (uint64_t seed : {5, 17}) {
        runner::ScenarioSpec spec;
        spec.workload = "ycsb";
        spec.protocol = "chiller";
        spec.nodes = 2;
        spec.engines_per_node = 1;
        spec.concurrency = 2;
        spec.seed = seed;
        spec.warmup = kMillisecond;
        spec.measure = 3 * kMillisecond;
        spec.options.Set("keys_per_partition", 1000);
        spec.options.Set("theta", 0.95);
        spec.load_model = "open";
        spec.offered_tps = offered;
        spec.arrival = arrival;
        spec.queue_cap = 8;
        specs.push_back(std::move(spec));
      }
    }
  }
  runner::ScenarioSpec batched;
  batched.workload = "ycsb";
  batched.protocol = "2pl";
  batched.nodes = 2;
  batched.engines_per_node = 1;
  batched.concurrency = 2;
  batched.seed = 23;
  batched.warmup = kMillisecond;
  batched.measure = 3 * kMillisecond;
  batched.options.Set("keys_per_partition", 1000);
  batched.load_model = "batched";
  batched.batch_size = 6;
  specs.push_back(std::move(batched));
  return specs;
}

TEST(SweepDeterminismTest, OpenLoopJobsOneAndJobsEightAreByteIdentical) {
  const auto specs = LoadModelSweep();
  const auto serial_results = runner::SweepExecutor(1).Run(specs);
  const std::string serial = SweepFingerprint(serial_results);
  const std::string threaded =
      SweepFingerprint(runner::SweepExecutor(8).Run(specs));
  EXPECT_FALSE(serial.empty());
  EXPECT_EQ(serial, threaded);
  // The fingerprint must actually cover the new accounting: the overload
  // points shed, the light points do not.
  bool any_shed = false;
  for (const auto& r : serial_results) {
    ASSERT_TRUE(r.ok());
    if (r->spec.load_model != "open") continue;
    EXPECT_GT(r->stats.admitted, 0u);
    if (r->spec.offered_tps > 1000000.0) {
      EXPECT_GT(r->stats.shed, 0u);
      any_shed = true;
    } else {
      EXPECT_EQ(r->stats.shed, 0u);
    }
  }
  EXPECT_TRUE(any_shed);
}

TEST(SweepDeterminismTest, AdaptiveJobsOneAndJobsEightAreByteIdentical) {
  const auto specs = AdaptiveSweep();
  const auto serial_results = runner::SweepExecutor(1).Run(specs);
  const std::string serial = SweepFingerprint(serial_results);
  const std::string threaded =
      SweepFingerprint(runner::SweepExecutor(8).Run(specs));
  EXPECT_FALSE(serial.empty());
  EXPECT_EQ(serial, threaded);
  // The loop must actually have engaged: records moved in every scenario.
  for (const auto& r : serial_results) {
    ASSERT_TRUE(r.ok());
    EXPECT_GT(r->adaptive.sampled_txns, 0u);
    EXPECT_GT(r->adaptive.migration.moved_records, 0u);
  }
}

/// Live relayout under traffic plus the continuous controller: the bucket
/// locks, the batch retries, the drift decisions, and the per-slice
/// timeline must all stay pure functions of the spec on any worker thread.
std::vector<runner::ScenarioSpec> LiveMigrationSweep() {
  std::vector<runner::ScenarioSpec> specs;
  for (uint64_t seed : {3, 11, 29}) {
    runner::ScenarioSpec spec;
    spec.workload = "adaptive";
    spec.protocol = "chiller";
    spec.nodes = 3;
    spec.engines_per_node = 1;
    spec.concurrency = 3;
    spec.seed = seed;
    spec.relayout_buckets = 8;
    spec.timeline_slice = 500 * kMicrosecond;
    spec.options.Set("keys_per_partition", 2000);
    spec.options.Set("theta", 0.95);
    spec.phases = {
        runner::Phase::Warmup(kMillisecond),
        runner::Phase::Sample(2 * kMillisecond, /*rate=*/1.0),
        runner::Phase::Replan(),
        runner::Phase::LiveMigrate(),
        runner::Phase::Warmup(kMillisecond),
        runner::Phase::Measure(3 * kMillisecond),
    };
    specs.push_back(std::move(spec));
  }
  runner::ScenarioSpec continuous;
  continuous.workload = "adaptive";
  continuous.protocol = "chiller";
  continuous.nodes = 3;
  continuous.engines_per_node = 1;
  continuous.concurrency = 3;
  continuous.seed = 17;
  continuous.continuous = true;
  continuous.warmup = kMillisecond;
  continuous.measure = 6 * kMillisecond;
  continuous.controller_period = kMillisecond;
  continuous.relayout_buckets = 8;
  continuous.options.Set("keys_per_partition", 2000);
  continuous.options.Set("theta", 0.95);
  specs.push_back(std::move(continuous));
  return specs;
}

/// Fingerprint covering the live-migration accounting on top of the
/// ResultRow stats: window commits/aborts, moved records, buckets, the
/// controller counters, and the full timeline.
std::string LiveFingerprint(
    const std::vector<StatusOr<runner::ScenarioResult>>& results) {
  std::string out = SweepFingerprint(results);
  for (const auto& r : results) {
    if (!r.ok()) continue;
    const runner::AdaptiveReport& a = r->adaptive;
    out += "moved=" + std::to_string(a.migration.moved_records) +
           " bytes=" + std::to_string(a.migration.moved_bytes) +
           " buckets=" + std::to_string(a.buckets_moved) +
           " win=[" + std::to_string(a.migration_start) + "," +
           std::to_string(a.migration_end) + "]" +
           " winc=" + std::to_string(a.migration_window_commits) +
           " wina=" + std::to_string(a.migration_window_aborts) +
           " epochs=" + std::to_string(a.controller_epochs) +
           " migs=" + std::to_string(a.controller_migrations) +
           " settled=" + std::to_string(a.controller_settled) +
           " rearms=" + std::to_string(a.controller_rearms) +
           " shadow=" + std::to_string(a.shadow_evals) +
           " drift=" + std::to_string(a.last_drift) +
           " peak=" + std::to_string(a.peak_streams) +
           " widens=" + std::to_string(a.governor_widens) +
           " narrows=" + std::to_string(a.governor_narrows) + "\n";
    for (const runner::TimelineSlice& s : a.timeline) {
      out += std::to_string(s.start) + ":" + std::to_string(s.end) + ":" +
             std::to_string(s.commits) + ":" +
             std::to_string(s.latency_ns_sum) + "\n";
    }
  }
  return out;
}

TEST(SweepDeterminismTest, LiveMigrationJobsOneAndJobsEightAreByteIdentical) {
  const auto specs = LiveMigrationSweep();
  const auto serial_results = runner::SweepExecutor(1).Run(specs);
  const std::string serial = LiveFingerprint(serial_results);
  const std::string threaded =
      LiveFingerprint(runner::SweepExecutor(8).Run(specs));
  EXPECT_FALSE(serial.empty());
  EXPECT_EQ(serial, threaded);
  // The live path must actually have engaged: every phased scenario moved
  // records with commits flowing inside the relayout window.
  for (size_t i = 0; i + 1 < serial_results.size(); ++i) {
    const auto& r = serial_results[i];
    ASSERT_TRUE(r.ok());
    EXPECT_GT(r->adaptive.migration.moved_records, 0u);
    EXPECT_GT(r->adaptive.migration_window_commits, 0u);
  }
  const auto& cont = serial_results.back();
  ASSERT_TRUE(cont.ok());
  EXPECT_GT(cont->adaptive.controller_epochs, 0u);
}

// ---------------------------------------------------------------------------
// Sharded-simulator determinism: --shards runs one scenario across real
// threads (sim::ShardedSimulator) and must be byte-identical to --shards=1
// for every shard count, composed with any --jobs value. Fingerprints
// cover the full per-class stats and, for migration scenarios, the
// per-slice timeline.
// ---------------------------------------------------------------------------

std::vector<runner::ScenarioSpec> WithShards(
    std::vector<runner::ScenarioSpec> specs, uint32_t shards) {
  for (auto& s : specs) s.shards = shards;
  return specs;
}

/// Runs `base` at shards=1/jobs=1 as the reference, then asserts every
/// shards x jobs combination reproduces it byte for byte under
/// `fingerprint`.
template <typename Fp>
void ExpectShardInvariance(const std::vector<runner::ScenarioSpec>& base,
                           Fp fingerprint) {
  const std::string want =
      fingerprint(runner::SweepExecutor(1).Run(WithShards(base, 1)));
  EXPECT_FALSE(want.empty());
  for (uint32_t shards : {2u, 8u}) {
    for (uint32_t jobs : {1u, 8u}) {
      SCOPED_TRACE("shards=" + std::to_string(shards) +
                   " jobs=" + std::to_string(jobs));
      const std::string got = fingerprint(
          runner::SweepExecutor(jobs).Run(WithShards(base, shards)));
      EXPECT_EQ(got, want);
    }
  }
}

TEST(ShardDeterminismTest, ClosedLoopShardsTimesJobsAreByteIdentical) {
  // One spec per workload family (the seed-5 slice of the mixed grid)
  // keeps the 5x repetition affordable without losing family coverage.
  std::vector<runner::ScenarioSpec> base;
  for (auto& spec : MixedSweep()) {
    if (spec.seed == 5) base.push_back(std::move(spec));
  }
  ASSERT_FALSE(base.empty());
  ExpectShardInvariance(base, SweepFingerprint);
}

TEST(ShardDeterminismTest, OpenLoopShardsTimesJobsAreByteIdentical) {
  // The seed-5 slice: poisson + uniform arrivals at both offered rates
  // (one of them shedding), plus the batched spec.
  std::vector<runner::ScenarioSpec> base;
  for (auto& spec : LoadModelSweep()) {
    if (spec.seed == 5 || spec.load_model == "batched") {
      base.push_back(std::move(spec));
    }
  }
  ASSERT_FALSE(base.empty());
  ExpectShardInvariance(base, SweepFingerprint);
}

/// Scheduled admission (schedule/scheduler.h): classification, cross-engine
/// steering through the fabric, class-serialized admission, and the
/// temperature-aware shed policies must all stay pure functions of the
/// spec. The grid covers hash-affinity under the open model (a light point,
/// plus an overload point where drop-cold evicts queued work) and
/// batch-pack under the batched model.
std::vector<runner::ScenarioSpec> SchedulerSweep() {
  std::vector<runner::ScenarioSpec> specs;
  for (double offered : {60000.0, 4000000.0}) {
    runner::ScenarioSpec spec;
    spec.workload = "ycsb";
    spec.protocol = "2pl";
    spec.nodes = 3;
    spec.engines_per_node = 1;
    spec.concurrency = 2;
    spec.seed = 9;
    spec.warmup = kMillisecond;
    spec.measure = 3 * kMillisecond;
    spec.options.Set("keys_per_partition", 1000);
    spec.options.Set("theta", 0.95);  // hot enough that steering is busy
    spec.load_model = "open";
    spec.offered_tps = offered;
    spec.queue_cap = 6;
    spec.scheduler = "hash-affinity";
    if (offered > 1000000.0) spec.shed_policy = "drop-cold";
    specs.push_back(std::move(spec));
  }
  runner::ScenarioSpec packed;
  packed.workload = "ycsb";
  packed.protocol = "2pl";
  packed.nodes = 2;
  packed.engines_per_node = 2;
  packed.concurrency = 3;
  packed.seed = 13;
  packed.warmup = kMillisecond;
  packed.measure = 3 * kMillisecond;
  packed.options.Set("keys_per_partition", 1000);
  packed.options.Set("theta", 0.99);
  packed.load_model = "batched";
  packed.batch_size = 6;
  packed.scheduler = "batch-pack";
  specs.push_back(std::move(packed));
  return specs;
}

TEST(ShardDeterminismTest, SchedulerPoliciesShardsTimesJobsAreByteIdentical) {
  const auto specs = SchedulerSweep();
  ExpectShardInvariance(specs, SweepFingerprint);
  // The grid must actually exercise the machinery: the overload point
  // sheds, every point commits.
  const auto results = runner::SweepExecutor(1).Run(specs);
  bool any_shed = false;
  for (const auto& r : results) {
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_GT(r->stats.TotalCommits(), 0u);
    if (r->spec.offered_tps > 1000000.0) {
      EXPECT_GT(r->stats.shed, 0u);
      any_shed = true;
    }
  }
  EXPECT_TRUE(any_shed);
}

TEST(ShardDeterminismTest, ConcurrentStreamsShardsTimesJobsAreByteIdentical) {
  // The multi-stream migrator mutates shared state (bucket locks, the
  // partitioner indirection, per-unit cursors) from interleaved per-bucket
  // pipelines — all control-domain events, so any stream width must stay a
  // pure function of the spec for every shards x jobs combination. The
  // sweep runs the seed-3 phased plan at k = 1, 2, 4 plus a governed,
  // re-armable continuous spec on a rotating hot set (every new control
  // surface of the migrate subsystem at once).
  std::vector<runner::ScenarioSpec> base;
  for (uint32_t streams : {1u, 2u, 4u}) {
    runner::ScenarioSpec spec = LiveMigrationSweep().front();  // seed 3
    spec.migrate_streams = streams;
    base.push_back(std::move(spec));
  }
  runner::ScenarioSpec governed = LiveMigrationSweep().back();  // continuous
  governed.measure = 14 * kMillisecond;
  governed.governor = true;
  governed.governor_max_streams = 4;
  governed.governor_max_abort_share = 0.5;
  governed.rearm_threshold = 0.25;
  governed.options.Set("shift_every_us", uint64_t{8000});
  governed.options.Set("shift_stride", uint64_t{500});
  base.push_back(std::move(governed));
  ExpectShardInvariance(base, LiveFingerprint);

  // The sweep must exercise what it claims: wider runs actually streamed
  // concurrently and finished the identical move set faster.
  const auto results = runner::SweepExecutor(1).Run(WithShards(base, 1));
  ASSERT_TRUE(results[0].ok() && results[2].ok());
  EXPECT_EQ(results[0]->adaptive.migration.moved_records,
            results[2]->adaptive.migration.moved_records);
  EXPECT_GT(results[2]->adaptive.peak_streams, 1u);
  EXPECT_LT(results[2]->adaptive.migration.sim_time,
            results[0]->adaptive.migration.sim_time);
}

// ---------------------------------------------------------------------------
// Trace determinism: with tracing enabled the emitted trace bytes are a
// pure function of the spec — byte-identical for every shards x jobs
// combination — and enabling tracing never changes any result byte.
// ---------------------------------------------------------------------------

std::vector<runner::ScenarioSpec> WithTracing(
    std::vector<runner::ScenarioSpec> specs, uint32_t every) {
  for (auto& s : specs) s.trace_sample_every = every;
  return specs;
}

/// Concatenated standalone trace documents, spec order.
std::string TraceFingerprint(
    const std::vector<StatusOr<runner::ScenarioResult>>& results) {
  std::string out;
  for (const auto& r : results) {
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    if (!r.ok()) continue;
    EXPECT_NE(r->trace, nullptr);
    if (r->trace != nullptr) out += r->trace->DumpJson();
  }
  return out;
}

/// The traced grid: one spec per workload family, one scheduled open-loop
/// point (classify/route instants), one live-migration plan
/// (migration-abort blocks) — every span family the recorder emits.
std::vector<runner::ScenarioSpec> TracedSweep() {
  std::vector<runner::ScenarioSpec> base;
  for (auto& spec : MixedSweep()) {
    if (spec.seed == 5) base.push_back(std::move(spec));
  }
  base.push_back(SchedulerSweep().front());
  base.push_back(LiveMigrationSweep().front());
  return WithTracing(std::move(base), 4);
}

TEST(TraceDeterminismTest, TraceBytesShardsTimesJobsAreByteIdentical) {
  const auto base = TracedSweep();
  ExpectShardInvariance(base, TraceFingerprint);
  const auto results = runner::SweepExecutor(1).Run(WithShards(base, 1));
  const std::string trace = TraceFingerprint(results);
  for (const auto& r : results) {
    ASSERT_TRUE(r.ok());
    EXPECT_GT(r->trace->events_recorded(), 0u);
  }
  // The grid must cover the span vocabulary it claims to.
  for (const char* needle :
       {"\"name\":\"attempt\"", "\"name\":\"commit\"",
        "\"name\":\"sched_classify\"", "\"name\":\"sched_route\"",
        "\"name\":\"driver.commits\""}) {
    EXPECT_NE(trace.find(needle), std::string::npos) << needle;
  }
}

TEST(TraceDeterminismTest, TracingNeverChangesResults) {
  std::vector<runner::ScenarioSpec> base;
  for (auto& spec : MixedSweep()) {
    if (spec.seed == 5) base.push_back(std::move(spec));
  }
  base.push_back(LiveMigrationSweep().front());
  const std::string off = LiveFingerprint(runner::SweepExecutor(1).Run(base));
  const std::string on = LiveFingerprint(
      runner::SweepExecutor(1).Run(WithTracing(base, 1)));
  EXPECT_FALSE(off.empty());
  EXPECT_EQ(off, on);
}

TEST(ShardDeterminismTest,
     ContinuousMigrationShardsTimesJobsAreByteIdentical) {
  // One live-migrate phase plan and the continuous-controller spec: bucket
  // locks, batch retries, drift decisions, and the timeline all under real
  // threads. LiveFingerprint covers the migration windows and every
  // timeline slice.
  std::vector<runner::ScenarioSpec> base;
  for (auto& spec : LiveMigrationSweep()) {
    if (spec.seed == 3 || spec.continuous) base.push_back(std::move(spec));
  }
  ASSERT_EQ(base.size(), 2u);
  ExpectShardInvariance(base, LiveFingerprint);
}

}  // namespace
}  // namespace chiller
