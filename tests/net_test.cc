// Unit tests for the RDMA-class network model.
#include <gtest/gtest.h>

#include <vector>

#include "net/network.h"
#include "net/rdma.h"
#include "net/rpc.h"
#include "net/topology.h"
#include "sim/simulator.h"

namespace chiller::net {
namespace {

NetworkConfig TestConfig() {
  NetworkConfig cfg;
  cfg.propagation = 900;
  cfg.nic_process = 250;
  cfg.per_byte = 0.0;  // size-independent for exact-latency tests
  cfg.post_cost = 100;
  cfg.recv_cost = 200;
  return cfg;
}

TEST(TopologyTest, EngineNodeMapping) {
  Topology t{.num_nodes = 4, .engines_per_node = 10};
  EXPECT_EQ(t.num_engines(), 40u);
  EXPECT_EQ(t.NodeOfEngine(0), 0u);
  EXPECT_EQ(t.NodeOfEngine(9), 0u);
  EXPECT_EQ(t.NodeOfEngine(10), 1u);
  EXPECT_EQ(t.NodeOfEngine(39), 3u);
  EXPECT_EQ(t.EngineOfPartition(17), 17u);
}

TEST(TopologyTest, ReplicaOnDistinctNode) {
  Topology t{.num_nodes = 4, .engines_per_node = 2, .replication_degree = 3};
  for (PartitionId p = 0; p < t.num_partitions(); ++p) {
    const NodeId primary = t.NodeOfPartition(p);
    for (uint32_t i = 1; i < t.replication_degree; ++i) {
      EXPECT_NE(t.NodeOfEngine(t.ReplicaEngine(p, i)), primary);
    }
  }
}

TEST(TopologyTest, ReplicasOnDistinctNodesFromEachOther) {
  Topology t{.num_nodes = 5, .engines_per_node = 1, .replication_degree = 3};
  for (PartitionId p = 0; p < t.num_partitions(); ++p) {
    const NodeId r1 = t.NodeOfEngine(t.ReplicaEngine(p, 1));
    const NodeId r2 = t.NodeOfEngine(t.ReplicaEngine(p, 2));
    EXPECT_NE(r1, r2);
  }
}

TEST(NetworkTest, OneWayLatency) {
  sim::Simulator sim;
  Network net(&sim, TestConfig(), 2);
  SimTime arrival = 0;
  net.Deliver(0, 1, 0, [&] { arrival = sim.now(); });
  sim.Run();
  EXPECT_EQ(arrival, 1150u);  // propagation + nic_process
}

TEST(NetworkTest, PayloadAddsTransmission) {
  sim::Simulator sim;
  NetworkConfig cfg = TestConfig();
  cfg.per_byte = 1.0;
  Network net(&sim, cfg, 2);
  SimTime arrival = 0;
  net.Deliver(0, 1, 100, [&] { arrival = sim.now(); });
  sim.Run();
  EXPECT_EQ(arrival, 1250u);
}

TEST(NetworkTest, InOrderPerQueuePair) {
  // A small message sent after a huge one must NOT overtake it — RDMA
  // reliable connections are FIFO. The Section 5 replication protocol
  // depends on this property.
  sim::Simulator sim;
  NetworkConfig cfg = TestConfig();
  cfg.per_byte = 10.0;
  Network net(&sim, cfg, 2);
  std::vector<int> order;
  net.Deliver(0, 1, 10000, [&] { order.push_back(1); });
  net.Deliver(0, 1, 0, [&] { order.push_back(2); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(NetworkTest, DistinctPairsDontBlock) {
  sim::Simulator sim;
  NetworkConfig cfg = TestConfig();
  cfg.per_byte = 10.0;
  Network net(&sim, cfg, 3);
  std::vector<int> order;
  net.Deliver(0, 1, 10000, [&] { order.push_back(1); });
  net.Deliver(2, 1, 0, [&] { order.push_back(2); });
  sim.Run();
  // The (2,1) pair is unaffected by the backlog on (0,1).
  EXPECT_EQ(order, (std::vector<int>{2, 1}));
}

TEST(NetworkTest, CountsTraffic) {
  sim::Simulator sim;
  Network net(&sim, TestConfig(), 2);
  net.Deliver(0, 1, 100, [] {});
  net.Deliver(1, 0, 50, [] {});
  sim.Run();
  EXPECT_EQ(net.messages_sent(), 2u);
  EXPECT_EQ(net.bytes_sent(), 150u);
}

TEST(RdmaTest, OneSidedRoundTrip) {
  sim::Simulator sim;
  Network net(&sim, TestConfig(), 2);
  Topology topo{.num_nodes = 2, .engines_per_node = 1};
  RdmaFabric rdma(&sim, &net, topo);
  SimTime remote_at = 0, completion_at = 0;
  rdma.OneSided(
      0, 1, 0, 0, [&] { remote_at = sim.now(); },
      [&] { completion_at = sim.now(); });
  sim.Run();
  EXPECT_EQ(remote_at, 1150u);
  EXPECT_EQ(completion_at, 2300u);  // full round trip
}

TEST(RdmaTest, InitiatorCpuChargedForPost) {
  sim::Simulator sim;
  Network net(&sim, TestConfig(), 2);
  Topology topo{.num_nodes = 2, .engines_per_node = 1};
  RdmaFabric rdma(&sim, &net, topo);
  sim::CpuResource cpu(&sim);
  cpu.Submit(1000, [] {});  // busy engine delays the verb post
  SimTime completion_at = 0;
  rdma.OneSided(0, 1, 0, 0, [] {}, [&] { completion_at = sim.now(); }, &cpu);
  sim.Run();
  // post waits until 1000, +100 post cost, +2300 round trip
  EXPECT_EQ(completion_at, 3400u);
}

TEST(RdmaTest, RemoteOpBypassesRemoteCpu) {
  // One-sided ops never consume the remote engine's CPU: a saturated remote
  // engine does not delay them.
  sim::Simulator sim;
  Network net(&sim, TestConfig(), 2);
  Topology topo{.num_nodes = 2, .engines_per_node = 1};
  RdmaFabric rdma(&sim, &net, topo);
  sim::CpuResource remote_cpu(&sim);
  remote_cpu.Submit(1000000, [] {});  // remote engine busy for 1 ms
  SimTime completion_at = 0;
  rdma.OneSided(0, 1, 0, 0, [] {}, [&] { completion_at = sim.now(); });
  sim.Run();
  EXPECT_EQ(completion_at, 2300u);
}

TEST(RpcTest, HandlerRunsOnDestinationCpu) {
  sim::Simulator sim;
  Network net(&sim, TestConfig(), 2);
  Topology topo{.num_nodes = 2, .engines_per_node = 1};
  RpcLayer rpc(&sim, &net, topo);
  sim::CpuResource cpu0(&sim), cpu1(&sim);
  rpc.BindEngines({&cpu0, &cpu1});
  SimTime handled_at = 0;
  rpc.Send(0, 1, 0, 500, [&] { handled_at = sim.now(); });
  sim.Run();
  // post(100) + one-way(1150) + recv(200) + service(500)
  EXPECT_EQ(handled_at, 1950u);
}

TEST(RpcTest, BusyDestinationQueues) {
  sim::Simulator sim;
  Network net(&sim, TestConfig(), 2);
  Topology topo{.num_nodes = 2, .engines_per_node = 1};
  RpcLayer rpc(&sim, &net, topo);
  sim::CpuResource cpu0(&sim), cpu1(&sim);
  rpc.BindEngines({&cpu0, &cpu1});
  cpu1.Submit(10000, [] {});
  SimTime handled_at = 0;
  rpc.Send(0, 1, 0, 500, [&] { handled_at = sim.now(); });
  sim.Run();
  // Unlike one-sided ops, the RPC waits for the remote CPU: 10000 + 700.
  EXPECT_EQ(handled_at, 10700u);
}

TEST(RpcTest, CountsRpcs) {
  sim::Simulator sim;
  Network net(&sim, TestConfig(), 2);
  Topology topo{.num_nodes = 2, .engines_per_node = 1};
  RpcLayer rpc(&sim, &net, topo);
  sim::CpuResource cpu0(&sim), cpu1(&sim);
  rpc.BindEngines({&cpu0, &cpu1});
  rpc.Send(0, 1, 0, 0, [] {});
  rpc.Send(1, 0, 0, 0, [] {});
  sim.Run();
  EXPECT_EQ(rpc.rpcs_sent(), 2u);
}

}  // namespace
}  // namespace chiller::net
