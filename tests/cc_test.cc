// End-to-end protocol tests on a simulated cluster: 2PL, OCC, and Chiller
// run the Figure 4 flight-booking workload; afterwards storage must satisfy
// strong invariants (locks released, replicas identical to primaries, seats
// and balances conserved) — a serializability smoke test by conservation.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <tuple>

#include "cc/cluster.h"
#include "cc/driver.h"
#include "cc/load_model.h"
#include "cc/occ.h"
#include "cc/replication.h"
#include "cc/twopl.h"
#include "chiller/two_region.h"
#include "workload/flight.h"

namespace chiller {
namespace {

using workload::FlightPartitioner;
using workload::FlightSchema;
using workload::FlightWorkload;

struct Env {
  std::unique_ptr<cc::Cluster> cluster;
  std::unique_ptr<FlightPartitioner> partitioner;
  std::unique_ptr<FlightWorkload> workload;
  std::unique_ptr<cc::ReplicationManager> repl;
  std::unique_ptr<cc::Protocol> protocol;
  std::unique_ptr<cc::Driver> driver;
};

Env MakeEnv(const std::string& proto_name, uint32_t nodes = 4,
            uint32_t concurrency = 2, uint32_t replication = 2) {
  Env env;
  cc::ClusterConfig cfg;
  cfg.topology = net::Topology{.num_nodes = nodes,
                               .engines_per_node = 1,
                               .replication_degree = replication};
  cfg.schema = FlightSchema::Specs();
  env.cluster = std::make_unique<cc::Cluster>(cfg);

  FlightWorkload::Options opts;
  opts.num_flights = 200;
  opts.num_customers = 2000;
  opts.hot_flights = 8;
  opts.hot_fraction = 0.7;
  env.workload = std::make_unique<FlightWorkload>(opts);
  env.partitioner =
      std::make_unique<FlightPartitioner>(nodes, opts.hot_flights);

  env.workload->ForEachRecord(
      [&](const RecordId& rid, const storage::Record& rec) {
        env.cluster->LoadRecord(rid, rec, *env.partitioner);
      });

  env.repl = std::make_unique<cc::ReplicationManager>(env.cluster.get());
  if (proto_name == "2pl") {
    env.protocol = std::make_unique<cc::TwoPhaseLocking>(
        env.cluster.get(), env.partitioner.get(), env.repl.get());
  } else if (proto_name == "occ") {
    env.protocol = std::make_unique<cc::Occ>(
        env.cluster.get(), env.partitioner.get(), env.repl.get());
  } else if (proto_name == "chiller") {
    env.protocol = std::make_unique<core::ChillerProtocol>(
        env.cluster.get(), env.partitioner.get(), env.repl.get());
  } else {
    env.protocol = std::make_unique<core::ChillerProtocol>(
        env.cluster.get(), env.partitioner.get(), env.repl.get(),
        /*enable_two_region=*/false);
  }
  env.driver = std::make_unique<cc::Driver>(env.cluster.get(),
                                            env.protocol.get(),
                                            env.workload.get(), concurrency);
  return env;
}

/// Checks every storage invariant that must hold at quiescence.
void CheckInvariants(Env& env, uint32_t nodes, uint32_t replication) {
  // (1) Every lock released, on primaries and replicas.
  for (uint32_t p = 0; p < nodes; ++p) {
    EXPECT_EQ(env.cluster->primary(p)->locks_held(), 0u) << "partition " << p;
    for (uint32_t r = 1; r < replication; ++r) {
      EXPECT_EQ(env.cluster->replica(p, r)->locks_held(), 0u);
    }
  }

  // Collect global state from primaries.
  std::map<Key, int64_t> flight_seats, cust_balance;
  std::map<Key, int64_t> seats_sold;          // per flight
  std::map<Key, int64_t> cust_spent_records;  // per customer, from seats
  const auto& opts = env.workload->options();
  for (uint32_t p = 0; p < nodes; ++p) {
    env.cluster->primary(p)->ForEach(
        [&](const RecordId& rid, const storage::Record& rec) {
          if (rid.table == FlightSchema::kFlight) {
            flight_seats[rid.key] = rec.Get(1);
          } else if (rid.table == FlightSchema::kCustomer) {
            cust_balance[rid.key] = rec.Get(0);
          } else if (rid.table == FlightSchema::kSeats) {
            const Key flight = rid.key / FlightSchema::kSeatStride;
            ++seats_sold[flight];
            const Key cust = static_cast<Key>(rec.Get(0));
            const int64_t price = 100 + static_cast<int64_t>(flight % 400);
            const int64_t tax =
                static_cast<int64_t>((cust % opts.num_states) % 20);
            cust_spent_records[cust] += price + tax;
          }
        });
  }

  // (2) Seats conservation: decrements match inserted seat records.
  ASSERT_EQ(flight_seats.size(), static_cast<size_t>(opts.num_flights));
  for (const auto& [f, seats] : flight_seats) {
    EXPECT_EQ(opts.initial_seats - seats, seats_sold[f]) << "flight " << f;
  }

  // (3) Balance conservation: every deducted dollar has a seat record.
  for (const auto& [c, balance] : cust_balance) {
    EXPECT_EQ(opts.initial_balance - balance, cust_spent_records[c])
        << "customer " << c;
  }

  // (4) Replicas converged to primary state.
  for (uint32_t p = 0; p < nodes; ++p) {
    auto* primary = env.cluster->primary(p);
    for (uint32_t r = 1; r < replication; ++r) {
      auto* replica = env.cluster->replica(p, r);
      EXPECT_EQ(primary->num_records(), replica->num_records());
      primary->ForEach([&](const RecordId& rid, const storage::Record& rec) {
        storage::Record* rrec = replica->Find(rid);
        ASSERT_NE(rrec, nullptr) << rid.ToString() << " missing at replica";
        EXPECT_EQ(rec.fields(), rrec->fields()) << rid.ToString();
      });
    }
  }
}

class ProtocolInvariantTest : public ::testing::TestWithParam<std::string> {};

TEST_P(ProtocolInvariantTest, FlightWorkloadConservesState) {
  const uint32_t nodes = 4, replication = 2;
  Env env = MakeEnv(GetParam(), nodes, /*concurrency=*/2, replication);
  cc::RunStats stats = env.driver->Run(2 * kMillisecond, 20 * kMillisecond);
  env.driver->DrainAndStop();
  EXPECT_GT(stats.TotalCommits(), 100u);
  CheckInvariants(env, nodes, replication);
}

TEST_P(ProtocolInvariantTest, HighConcurrencyStillConserves) {
  const uint32_t nodes = 3, replication = 2;
  Env env = MakeEnv(GetParam(), nodes, /*concurrency=*/6, replication);
  env.driver->Run(1 * kMillisecond, 10 * kMillisecond);
  env.driver->DrainAndStop();
  CheckInvariants(env, nodes, replication);
}

TEST_P(ProtocolInvariantTest, NoReplicationConfigWorks) {
  const uint32_t nodes = 3, replication = 1;
  Env env = MakeEnv(GetParam(), nodes, /*concurrency=*/2, replication);
  cc::RunStats stats = env.driver->Run(1 * kMillisecond, 10 * kMillisecond);
  env.driver->DrainAndStop();
  EXPECT_GT(stats.TotalCommits(), 50u);
  CheckInvariants(env, nodes, replication);
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, ProtocolInvariantTest,
                         ::testing::Values("2pl", "occ", "chiller",
                                           "chiller-plain"),
                         [](const auto& info) {
                           std::string n = info.param;
                           for (auto& ch : n) {
                             if (ch == '-') ch = '_';
                           }
                           return n;
                         });

TEST(ChillerProtocolTest, UsesTwoRegionExecutionForHotTxns) {
  Env env = MakeEnv("chiller");
  env.driver->Run(1 * kMillisecond, 10 * kMillisecond);
  env.driver->DrainAndStop();
  auto* chiller = static_cast<core::ChillerProtocol*>(env.protocol.get());
  EXPECT_GT(chiller->counters().two_region_txns, 0u);
  EXPECT_GT(chiller->counters().fallback_txns, 0u);  // cold bookings
}

TEST(ChillerProtocolTest, DisabledTwoRegionNeverPlans) {
  Env env = MakeEnv("chiller-plain");
  env.driver->Run(1 * kMillisecond, 5 * kMillisecond);
  env.driver->DrainAndStop();
  auto* chiller = static_cast<core::ChillerProtocol*>(env.protocol.get());
  EXPECT_EQ(chiller->counters().two_region_txns, 0u);
  EXPECT_GT(chiller->counters().fallback_txns, 0u);
}

TEST(ChillerProtocolTest, LowerAbortRateThanTwoPlUnderContention) {
  // The headline mechanism: hot flights cause NO_WAIT conflicts under 2PL
  // (locks span network round trips); Chiller's inner regions shrink the
  // contention span and with it the abort rate.
  Env twopl = MakeEnv("2pl", 4, /*concurrency=*/4);
  Env chiller = MakeEnv("chiller", 4, /*concurrency=*/4);
  auto s2 = twopl.driver->Run(2 * kMillisecond, 30 * kMillisecond);
  auto sc = chiller.driver->Run(2 * kMillisecond, 30 * kMillisecond);
  twopl.driver->DrainAndStop();
  chiller.driver->DrainAndStop();
  EXPECT_LT(sc.AbortRate(), s2.AbortRate());
  EXPECT_GT(sc.Throughput(), s2.Throughput());
}

TEST(DriverTest, RetriesEventuallyCommit) {
  Env env = MakeEnv("2pl", 3, /*concurrency=*/3);
  auto stats = env.driver->Run(1 * kMillisecond, 15 * kMillisecond);
  env.driver->DrainAndStop();
  // Under contention there are conflict aborts, yet commits keep flowing.
  EXPECT_GT(stats.TotalConflictAborts(), 0u);
  EXPECT_GT(stats.TotalCommits(), 100u);
}

TEST(DriverTest, StatsClassNames) {
  Env env = MakeEnv("2pl");
  auto stats = env.driver->Run(0, 5 * kMillisecond);
  env.driver->DrainAndStop();
  ASSERT_EQ(stats.classes.size(), 1u);
  EXPECT_EQ(stats.classes[0].name, "book");
  EXPECT_GT(stats.classes[0].latency.count(), 0u);
}

TEST(DriverTest, DistributedRatioTracked) {
  Env env = MakeEnv("2pl");
  auto stats = env.driver->Run(0, 5 * kMillisecond);
  env.driver->DrainAndStop();
  // Random customers/flights over 4 partitions: most bookings span
  // partitions.
  EXPECT_GT(stats.DistributedRatio(), 0.5);
}

// ---------------------------------------------------------------------------
// Load models (cc/load_model.h)
// ---------------------------------------------------------------------------

/// Replaces an Env's driver with one using an explicit load model.
void UseModel(Env* env, std::unique_ptr<cc::LoadModel> model,
              uint64_t seed = 1) {
  env->driver = std::make_unique<cc::Driver>(
      env->cluster.get(), env->protocol.get(), env->workload.get(),
      std::move(model), seed);
}

TEST(LoadModelTest, ExplicitClosedLoopMatchesLegacyConstructor) {
  // The legacy Driver constructor and an injected ClosedLoop must be the
  // same driver, event for event (the Figure 9 baselines depend on it).
  Env legacy = MakeEnv("2pl", 3, /*concurrency=*/3);
  auto a = legacy.driver->Run(kMillisecond, 6 * kMillisecond);
  legacy.driver->DrainAndStop();

  Env injected = MakeEnv("2pl", 3, /*concurrency=*/3);
  UseModel(&injected, std::make_unique<cc::ClosedLoop>(3));
  auto b = injected.driver->Run(kMillisecond, 6 * kMillisecond);
  injected.driver->DrainAndStop();

  EXPECT_EQ(a.TotalCommits(), b.TotalCommits());
  EXPECT_EQ(a.TotalConflictAborts(), b.TotalConflictAborts());
  EXPECT_EQ(legacy.cluster->sim()->events_processed(),
            injected.cluster->sim()->events_processed());
  // Closed loop has no admission queue: the accounting must stay zero.
  EXPECT_EQ(b.admitted, 0u);
  EXPECT_EQ(b.shed, 0u);
  EXPECT_EQ(b.queue_delay.count(), 0u);
}

TEST(LoadModelTest, OpenLoopDeliversTheOfferedRate) {
  // Well under capacity the open loop must deliver ~what was offered:
  // uniform arrivals at 20k tps cluster-wide over a 10 ms window = ~200
  // attempts, with an idle queue and nothing shed.
  Env env = MakeEnv("2pl", 2, /*concurrency=*/2);
  cc::OpenLoopOptions o;
  o.offered_tps = 20000;
  o.arrival = "uniform";
  o.slots_per_engine = 2;
  o.queue_cap = 16;
  UseModel(&env, std::make_unique<cc::OpenLoop>(o));
  auto stats = env.driver->Run(2 * kMillisecond, 10 * kMillisecond);
  env.driver->DrainAndStop();

  EXPECT_GT(stats.admitted, 0u);
  EXPECT_EQ(stats.shed, 0u);
  EXPECT_GE(stats.TotalAttempts(), 120u);
  EXPECT_LE(stats.TotalAttempts(), 280u);
  EXPECT_GT(stats.TotalCommits(), 0u);
  // Queueing delay is measured, and at 10% load it is essentially zero.
  EXPECT_GT(stats.queue_delay.count(), 0u);
  EXPECT_LT(stats.queue_delay.Mean(), 10000.0);
}

TEST(LoadModelTest, OpenLoopShedsAtAFullQueue) {
  // Offered load far beyond capacity with a tiny queue: the bounded
  // admission queue must shed most arrivals instead of queueing without
  // limit, and what is admitted still commits.
  Env env = MakeEnv("2pl", 2, /*concurrency=*/1);
  cc::OpenLoopOptions o;
  o.offered_tps = 5000000;
  o.slots_per_engine = 1;
  o.queue_cap = 2;
  UseModel(&env, std::make_unique<cc::OpenLoop>(o));
  auto stats = env.driver->Run(kMillisecond, 8 * kMillisecond);
  env.driver->DrainAndStop();

  EXPECT_GT(stats.shed, 0u);
  EXPECT_GT(stats.admitted, 0u);
  EXPECT_GT(stats.ShedRate(), 0.5);
  EXPECT_LT(stats.ShedRate(), 1.0);
  EXPECT_GT(stats.TotalCommits(), 0u);
  // The queue was persistently full, so admitted requests waited.
  EXPECT_GT(stats.queue_delay.Percentile(99), 0u);
}

TEST(LoadModelTest, OpenLoopIsDeterministic) {
  auto run = [] {
    Env env = MakeEnv("chiller", 3, /*concurrency=*/2);
    cc::OpenLoopOptions o;
    o.offered_tps = 100000;
    o.slots_per_engine = 2;
    o.queue_cap = 8;
    o.seed = 42;
    UseModel(&env, std::make_unique<cc::OpenLoop>(o), /*seed=*/42);
    auto stats = env.driver->Run(kMillisecond, 6 * kMillisecond);
    env.driver->DrainAndStop();
    return std::make_tuple(stats.TotalCommits(), stats.admitted, stats.shed,
                           env.cluster->sim()->events_processed());
  };
  EXPECT_EQ(run(), run());
}

TEST(LoadModelTest, BatchedAdmitsInBatches) {
  Env env = MakeEnv("2pl", 2, /*concurrency=*/2);
  UseModel(&env, std::make_unique<cc::Batched>(/*batch_size=*/8));
  auto stats = env.driver->Run(kMillisecond, 8 * kMillisecond);
  env.driver->DrainAndStop();
  EXPECT_GT(stats.TotalCommits(), 0u);
  // Batched admission has no queue either.
  EXPECT_EQ(stats.admitted, 0u);
  EXPECT_EQ(stats.queue_delay.count(), 0u);
}

TEST(LoadModelTest, FactoryValidatesParams) {
  cc::LoadModelParams p;
  EXPECT_TRUE(cc::MakeLoadModel("closed", p).ok());
  EXPECT_TRUE(cc::MakeLoadModel("batched", p).ok());
  EXPECT_TRUE(cc::MakeLoadModel("nope", p).status().IsInvalidArgument());

  // Open needs a positive offered rate and a non-degenerate queue.
  EXPECT_TRUE(cc::MakeLoadModel("open", p).status().IsInvalidArgument());
  p.offered_tps = 1000;
  EXPECT_TRUE(cc::MakeLoadModel("open", p).ok());
  p.queue_cap = 0;
  EXPECT_TRUE(cc::MakeLoadModel("open", p).status().IsInvalidArgument());
  p.queue_cap = 4;
  p.arrival = "bursty";
  EXPECT_TRUE(cc::MakeLoadModel("open", p).status().IsInvalidArgument());
  p.arrival = "uniform";
  EXPECT_TRUE(cc::MakeLoadModel("open", p).ok());
  p.batch_size = 0;
  EXPECT_TRUE(cc::MakeLoadModel("batched", p).status().IsInvalidArgument());
}

}  // namespace
}  // namespace chiller
