// Tests for the live-migration subsystem (src/migrate): relayout buckets
// and the bucket lock table, per-bucket SwappablePartitioner transitions,
// MigrationPlan diffs, LiveMigrator invariants under traffic (conservation,
// single residency, the dedicated migration abort class), the live-migrate
// phase and continuous controller through ScenarioRunner, and the
// adaptive-tpcc workload.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <vector>

#include "bench/bench_report.h"
#include "migrate/adaptive_controller.h"
#include "migrate/live_migrator.h"
#include "migrate/migration_plan.h"
#include "migrate/relayout.h"
#include "partition/lookup_table.h"
#include "runner/runner.h"
#include "runner/sweep.h"

namespace chiller {
namespace {

using migrate::BucketLockTable;
using migrate::LiveMigrator;
using migrate::MigrationPlan;
using migrate::RelayoutBucketOf;
using partition::HashPartitioner;
using partition::LookupPartitioner;
using partition::SwappablePartitioner;
using runner::Phase;
using runner::ScenarioRunner;
using runner::ScenarioSpec;

// ---------------------------------------------------------------------------
// Relayout buckets and the lock table
// ---------------------------------------------------------------------------

TEST(RelayoutBucketTest, StableAndInRange) {
  for (uint32_t buckets : {1u, 7u, 64u}) {
    for (uint64_t k = 0; k < 500; ++k) {
      const RecordId rid{2, k};
      const migrate::BucketId b = RelayoutBucketOf(rid, buckets);
      EXPECT_LT(b, buckets);
      EXPECT_EQ(b, RelayoutBucketOf(rid, buckets));  // pure function
    }
  }
}

TEST(BucketLockTableTest, EpochLifecycleAndGate) {
  BucketLockTable table;
  EXPECT_FALSE(table.epoch_active());
  EXPECT_FALSE(table.ever_active());
  EXPECT_FALSE(table.IsMigrating(RecordId{0, 1}));

  table.BeginEpoch(8);
  EXPECT_TRUE(table.epoch_active());
  EXPECT_TRUE(table.ever_active());
  EXPECT_FALSE(table.IsMigrating(RecordId{0, 1}));  // nothing locked yet

  // Find a rid in bucket 3 and one outside it.
  RecordId inside{0, 0};
  RecordId outside{0, 0};
  for (uint64_t k = 0;; ++k) {
    const RecordId rid{1, k};
    if (RelayoutBucketOf(rid, 8) == 3) {
      inside = rid;
      break;
    }
  }
  for (uint64_t k = 0;; ++k) {
    const RecordId rid{1, k};
    if (RelayoutBucketOf(rid, 8) != 3) {
      outside = rid;
      break;
    }
  }
  table.Acquire(3);
  EXPECT_EQ(table.locked_buckets(), 1u);
  EXPECT_TRUE(table.IsMigrating(inside));
  EXPECT_FALSE(table.IsMigrating(outside));
  table.Release(3);
  EXPECT_FALSE(table.IsMigrating(inside));

  table.EndEpoch();
  EXPECT_FALSE(table.epoch_active());
  EXPECT_TRUE(table.ever_active());  // sticky: protocols keep checking
}

// ---------------------------------------------------------------------------
// SwappablePartitioner per-bucket transition
// ---------------------------------------------------------------------------

TEST(SwappableTransitionTest, FlipRoutesOneBucketAtATime) {
  constexpr uint32_t kPartitions = 4;
  constexpr uint32_t kBuckets = 8;
  SwappablePartitioner live(std::make_unique<HashPartitioner>(kPartitions));
  const uint64_t v0 = live.version();

  // Incoming layout: every key's explicit entry moves one partition over.
  auto next = std::make_unique<LookupPartitioner>(
      std::make_unique<HashPartitioner>(kPartitions));
  std::vector<RecordId> rids;
  for (uint64_t k = 0; k < 64; ++k) {
    const RecordId rid{1, k};
    next->Assign(rid, (live.PartitionOf(rid) + 1) % kPartitions);
    rids.push_back(rid);
  }

  EXPECT_FALSE(live.in_transition());
  live.BeginTransition(std::move(next), kBuckets);
  EXPECT_TRUE(live.in_transition());
  EXPECT_GT(live.version(), v0);

  // Nothing flipped: all records still route through the old layout.
  HashPartitioner old_layout(kPartitions);
  for (const RecordId& rid : rids) {
    EXPECT_EQ(live.PartitionOf(rid), old_layout.PartitionOf(rid));
  }

  // Flip one bucket: exactly its records re-route.
  const migrate::BucketId flipped = RelayoutBucketOf(rids[0], kBuckets);
  const uint64_t v1 = live.version();
  live.FlipBucket(flipped);
  EXPECT_GT(live.version(), v1);
  for (const RecordId& rid : rids) {
    const PartitionId old_p = old_layout.PartitionOf(rid);
    if (RelayoutBucketOf(rid, kBuckets) == flipped) {
      EXPECT_EQ(live.PartitionOf(rid), (old_p + 1) % kPartitions);
    } else {
      EXPECT_EQ(live.PartitionOf(rid), old_p);
    }
  }

  // Finishing collapses: every record routes through the new layout.
  auto retired = live.FinishTransition();
  EXPECT_FALSE(live.in_transition());
  EXPECT_NE(retired, nullptr);
  for (const RecordId& rid : rids) {
    EXPECT_EQ(live.PartitionOf(rid),
              (old_layout.PartitionOf(rid) + 1) % kPartitions);
  }
}

TEST(SwappableTransitionTest, LookupEntriesSpanBothLayoutsMidTransition) {
  SwappablePartitioner live(std::make_unique<HashPartitioner>(2));
  auto next = std::make_unique<LookupPartitioner>(
      std::make_unique<HashPartitioner>(2));
  next->Assign(RecordId{0, 1}, 1);
  next->Assign(RecordId{0, 2}, 0);
  EXPECT_EQ(live.LookupEntries(), 0u);
  live.BeginTransition(std::move(next), 4);
  EXPECT_EQ(live.LookupEntries(), 2u);  // staged table is resident too
  live.FinishTransition();
  EXPECT_EQ(live.LookupEntries(), 2u);
}

// ---------------------------------------------------------------------------
// MigrationPlan
// ---------------------------------------------------------------------------

ScenarioSpec SmallAdaptive() {
  ScenarioSpec spec;
  spec.workload = "adaptive";
  spec.protocol = "chiller";
  spec.nodes = 3;
  spec.engines_per_node = 1;
  spec.concurrency = 4;
  spec.seed = 7;
  spec.options.Set("keys_per_partition", 2000);
  spec.options.Set("theta", 0.9);
  return spec;
}

/// A target layout that re-homes every `stride`-th record of the wired
/// cluster one partition over; cold keys keep the hash fallback the live
/// layout uses, so only the explicit entries diff.
std::unique_ptr<LookupPartitioner> ShiftedLayout(
    cc::Cluster* cluster, uint32_t partitions, uint64_t stride) {
  auto target = std::make_unique<LookupPartitioner>(
      std::make_unique<HashPartitioner>(partitions));
  uint64_t n = 0;
  for (PartitionId p = 0; p < partitions; ++p) {
    cluster->primary(p)->ForEach(
        [&](const RecordId& rid, const storage::Record&) {
          if (n++ % stride == 0) {
            target->Assign(rid, (p + 1) % partitions);
          }
        });
  }
  return target;
}

TEST(MigrationPlanTest, DiffGroupsMovesByBucketAscending) {
  auto env = ScenarioRunner::Wire(SmallAdaptive());
  ASSERT_TRUE(env.ok()) << env.status().ToString();
  const uint32_t partitions = 3;
  auto target = ShiftedLayout(env->cluster.get(), partitions, 10);
  const size_t entries = target->LookupEntries();
  ASSERT_GT(entries, 0u);

  const MigrationPlan plan =
      MigrationPlan::Diff(env->cluster.get(), *target, 16);
  EXPECT_EQ(plan.num_buckets, 16u);
  EXPECT_EQ(plan.total_moves(), entries);
  migrate::BucketId prev = 0;
  bool first = true;
  for (const migrate::MoveUnit& unit : plan.units) {
    if (!first) EXPECT_GT(unit.bucket, prev);
    prev = unit.bucket;
    first = false;
    EXPECT_FALSE(unit.moves.empty());
    for (const migrate::RecordMove& mv : unit.moves) {
      EXPECT_EQ(RelayoutBucketOf(mv.rid, 16), unit.bucket);
      EXPECT_EQ(mv.to, target->PartitionOf(mv.rid));
      EXPECT_NE(mv.from, mv.to);
      EXPECT_NE(env->cluster->primary(mv.from)->Find(mv.rid), nullptr);
    }
  }

  // One bucket degenerates to the whole diff in one unit (the quiesced
  // path's schedule).
  const MigrationPlan flat =
      MigrationPlan::Diff(env->cluster.get(), *target, 1);
  ASSERT_EQ(flat.units.size(), 1u);
  EXPECT_EQ(flat.units[0].moves.size(), entries);
}

TEST(MigrationPlanTest, IdenticalLayoutDiffsEmpty) {
  auto env = ScenarioRunner::Wire(SmallAdaptive());
  ASSERT_TRUE(env.ok()) << env.status().ToString();
  HashPartitioner same(3);  // the adaptive workload's hash-start layout
  const MigrationPlan plan = MigrationPlan::Diff(env->cluster.get(), same, 8);
  EXPECT_EQ(plan.total_moves(), 0u);
  EXPECT_TRUE(plan.units.empty());
}

// ---------------------------------------------------------------------------
// LiveMigrator invariants under traffic
// ---------------------------------------------------------------------------

TEST(LiveMigratorTest, ConservationAndSingleResidencyHoldMidMigration) {
  ScenarioSpec spec = SmallAdaptive();
  auto env = ScenarioRunner::Wire(spec);
  ASSERT_TRUE(env.ok()) << env.status().ToString();
  cc::Cluster* cluster = env->cluster.get();
  cc::Driver* driver = env->driver.get();
  const uint32_t partitions = spec.partitions();
  const size_t initial_records = cluster->TotalPrimaryRecords();

  driver->Start();
  driver->Advance(kMillisecond);

  auto target = ShiftedLayout(cluster, partitions, 25);
  MigrationPlan plan = MigrationPlan::Diff(cluster, *target, 8);
  ASSERT_GT(plan.total_moves(), 0u);
  ASSERT_GT(plan.units.size(), 1u);
  const std::vector<migrate::MoveUnit> units = plan.units;  // keep a copy

  SwappablePartitioner* live = env->bundle->adaptive_partitioner();
  LiveMigrator migrator(cluster, env->repl.get(), live);
  const uint64_t commits_before = driver->lifetime_commits();
  ASSERT_TRUE(
      migrator.Start(std::move(plan), std::move(target)).ok());

  // Step the simulator in small slices; at every boundary the storage
  // invariants must hold even though records are mid-relayout.
  int steps = 0;
  while (!migrator.done()) {
    driver->Advance(20 * kMicrosecond);
    ASSERT_LT(++steps, 100000) << "live migration did not settle";

    EXPECT_EQ(cluster->TotalPrimaryRecords(), initial_records)
        << "record conservation violated mid-migration";
    for (const migrate::MoveUnit& unit : units) {
      for (const migrate::RecordMove& mv : unit.moves) {
        int residency = 0;
        for (PartitionId p = 0; p < partitions; ++p) {
          if (cluster->primary(p)->Find(mv.rid) != nullptr) ++residency;
        }
        EXPECT_EQ(residency, 1)
            << mv.rid.ToString() << " resident " << residency << " times";
      }
    }
  }

  // Converged: every planned record sits at its target primary, the epoch
  // is closed, and traffic flowed throughout.
  for (const migrate::MoveUnit& unit : units) {
    for (const migrate::RecordMove& mv : unit.moves) {
      EXPECT_NE(cluster->primary(mv.to)->Find(mv.rid), nullptr);
      EXPECT_EQ(cluster->primary(mv.from)->Find(mv.rid), nullptr);
      EXPECT_EQ(live->PartitionOf(mv.rid), mv.to);
    }
  }
  size_t planned = 0;
  for (const auto& unit : units) planned += unit.moves.size();
  EXPECT_EQ(migrator.stats().base.moved_records, planned);
  EXPECT_EQ(migrator.stats().buckets_moved, units.size());
  EXPECT_FALSE(cluster->bucket_locks()->epoch_active());
  EXPECT_TRUE(cluster->bucket_locks()->ever_active());
  EXPECT_FALSE(live->in_transition());
  EXPECT_GT(driver->lifetime_commits(), commits_before)
      << "no commits during the live relayout: migration stopped the world";

  driver->DrainAndStop();
  EXPECT_EQ(cluster->TotalPrimaryRecords(), initial_records);
}

TEST(LiveMigratorTest, BlockedTransactionsUseTheMigrationAbortClass) {
  // Move a large slice of the keyspace through few relayout buckets on a
  // contended workload: while each bucket is in flight, a meaningful
  // fraction of all accesses lands in it and must abort-and-retry with
  // the dedicated class, not the conflict class.
  ScenarioSpec spec = SmallAdaptive();
  auto env = ScenarioRunner::Wire(spec);
  ASSERT_TRUE(env.ok()) << env.status().ToString();
  cc::Cluster* cluster = env->cluster.get();
  cc::Driver* driver = env->driver.get();

  driver->Start();
  driver->Advance(kMillisecond);

  auto target = ShiftedLayout(cluster, spec.partitions(), 5);
  MigrationPlan plan = MigrationPlan::Diff(cluster, *target, 4);
  ASSERT_GT(plan.total_moves(), 100u);

  LiveMigrator migrator(cluster, env->repl.get(),
                        env->bundle->adaptive_partitioner());
  ASSERT_TRUE(migrator.Start(std::move(plan), std::move(target)).ok());
  int steps = 0;
  while (!migrator.done()) {
    driver->Advance(50 * kMicrosecond);
    ASSERT_LT(++steps, 100000);
  }
  EXPECT_GT(driver->lifetime_migration_aborts(), 0u);
  driver->DrainAndStop();
}

TEST(LiveMigratorTest, EmptyPlanSwapsLayoutImmediately) {
  ScenarioSpec spec = SmallAdaptive();
  auto env = ScenarioRunner::Wire(spec);
  ASSERT_TRUE(env.ok()) << env.status().ToString();
  SwappablePartitioner* live = env->bundle->adaptive_partitioner();
  auto target = std::make_unique<HashPartitioner>(spec.partitions());

  LiveMigrator migrator(env->cluster.get(), env->repl.get(), live);
  ASSERT_TRUE(migrator
                  .Start(MigrationPlan{.num_buckets = 8, .units = {}},
                         std::move(target))
                  .ok());
  EXPECT_TRUE(migrator.done());
  EXPECT_EQ(migrator.stats().base.moved_records, 0u);
  EXPECT_FALSE(live->in_transition());
  EXPECT_FALSE(env->cluster->bucket_locks()->epoch_active());
}

// ---------------------------------------------------------------------------
// The live-migrate phase and the continuous controller through the runner
// ---------------------------------------------------------------------------

std::vector<Phase> PhasedPlan(bool live, double hot_threshold = 0.05) {
  return {
      Phase::Warmup(kMillisecond),
      Phase::Sample(2 * kMillisecond, /*rate=*/1.0),
      Phase::Replan(hot_threshold),
      live ? Phase::LiveMigrate() : Phase::Migrate(),
      Phase::Warmup(kMillisecond),
      Phase::Measure(3 * kMillisecond),
  };
}

TEST(LiveMigratePhaseTest, LiveAndQuiescedConvergeToTheSameLayout) {
  ScenarioSpec live = SmallAdaptive();
  live.phases = PhasedPlan(/*live=*/true);
  live.relayout_buckets = 8;
  live.timeline_slice = 250 * kMicrosecond;

  ScenarioSpec quiesced = live;
  quiesced.phases = PhasedPlan(/*live=*/false);

  auto lr = ScenarioRunner::Run(live);
  auto qr = ScenarioRunner::Run(quiesced);
  ASSERT_TRUE(lr.ok()) << lr.status().ToString();
  ASSERT_TRUE(qr.ok()) << qr.status().ToString();

  // Identical history through the replan: identical layout, identical
  // record set to move.
  EXPECT_EQ(lr->adaptive.sampled_txns, qr->adaptive.sampled_txns);
  EXPECT_EQ(lr->adaptive.hot_records, qr->adaptive.hot_records);
  EXPECT_EQ(lr->adaptive.lookup_entries, qr->adaptive.lookup_entries);
  EXPECT_GT(lr->adaptive.migration.moved_records, 0u);
  EXPECT_EQ(lr->adaptive.migration.moved_records,
            qr->adaptive.migration.moved_records);
  EXPECT_GT(lr->adaptive.buckets_moved, 0u);

  // The defining difference: commits keep landing inside the live window,
  // never inside the quiesced one.
  EXPECT_GT(lr->adaptive.migration_window_commits, 0u);
  EXPECT_EQ(qr->adaptive.migration_window_commits, 0u);
  EXPECT_GT(lr->stats.TotalCommits(), 0u);
  EXPECT_GT(qr->stats.TotalCommits(), 0u);

  // Timelines cover the run contiguously.
  for (const auto* r : {&*lr, &*qr}) {
    ASSERT_FALSE(r->adaptive.timeline.empty());
    for (size_t i = 1; i < r->adaptive.timeline.size(); ++i) {
      EXPECT_EQ(r->adaptive.timeline[i].start,
                r->adaptive.timeline[i - 1].end);
    }
  }
}

TEST(ContinuousControllerTest, ConvergesThenSettles) {
  ScenarioSpec spec;
  spec.workload = "adaptive";
  spec.protocol = "chiller";
  spec.nodes = 4;
  spec.engines_per_node = 2;
  spec.concurrency = 4;
  spec.seed = 3;
  spec.options.Set("keys_per_partition", 2000);
  spec.options.Set("theta", 0.9);
  spec.continuous = true;
  spec.warmup = kMillisecond;
  spec.measure = 12 * kMillisecond;
  spec.controller_period = kMillisecond;
  spec.relayout_buckets = 8;

  auto result = ScenarioRunner::Run(spec);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(result->adaptive.controller_epochs, 0u);
  EXPECT_GE(result->adaptive.controller_migrations, 1u);
  EXPECT_GT(result->adaptive.migration.moved_records, 0u);
  EXPECT_GT(result->adaptive.sampled_txns, 0u);
  EXPECT_GT(result->stats.TotalCommits(), 0u);
  // Hysteresis: the hash-start layout converges and the loop goes quiet
  // well before the window ends.
  EXPECT_TRUE(result->adaptive.controller_settled);
  EXPECT_LT(result->adaptive.controller_migrations, 4u);
}

TEST(ContinuousControllerTest, FrozenWorkloadIsRejected) {
  ScenarioSpec spec = SmallAdaptive();
  spec.workload = "ycsb";  // frozen layout
  spec.continuous = true;
  auto result = ScenarioRunner::Run(spec);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsFailedPrecondition());
}

TEST(MigrateValidationTest, RejectsMalformedSpecs) {
  ScenarioSpec spec = SmallAdaptive();
  spec.phases = {Phase::Sample(kMillisecond, 1.0), Phase::LiveMigrate(),
                 Phase::Measure(kMillisecond)};  // live-migrate sans replan
  EXPECT_TRUE(ScenarioRunner::Validate(spec).IsInvalidArgument());

  spec = SmallAdaptive();
  spec.phases = PhasedPlan(/*live=*/true);
  EXPECT_TRUE(ScenarioRunner::Validate(spec).ok());
  spec.relayout_buckets = 0;
  EXPECT_TRUE(ScenarioRunner::Validate(spec).IsInvalidArgument());
  spec.relayout_buckets = 8;
  spec.migrate_batch_records = 0;
  EXPECT_TRUE(ScenarioRunner::Validate(spec).IsInvalidArgument());

  spec = SmallAdaptive();
  spec.continuous = true;
  spec.phases = PhasedPlan(/*live=*/true);  // controller owns the loop
  EXPECT_TRUE(ScenarioRunner::Validate(spec).IsInvalidArgument());

  spec = SmallAdaptive();
  spec.continuous = true;
  spec.controller_period = 0;
  EXPECT_TRUE(ScenarioRunner::Validate(spec).IsInvalidArgument());
  spec.controller_period = kMillisecond;
  spec.controller_sample_rate = 1.5;
  EXPECT_TRUE(ScenarioRunner::Validate(spec).IsInvalidArgument());
  spec.controller_sample_rate = 1.0;
  spec.controller_hysteresis = 0;
  EXPECT_TRUE(ScenarioRunner::Validate(spec).IsInvalidArgument());
  spec.controller_hysteresis = 2;
  EXPECT_TRUE(ScenarioRunner::Validate(spec).ok());
}

// ---------------------------------------------------------------------------
// adaptive-tpcc: multi-table migration with the remote-warehouse pattern
// ---------------------------------------------------------------------------

TEST(AdaptiveTpccTest, LiveMigratesAcrossTheMultiTableSchema) {
  ScenarioSpec spec;
  spec.workload = "adaptive-tpcc";
  spec.protocol = "chiller";
  spec.nodes = 3;
  spec.engines_per_node = 1;
  spec.concurrency = 2;
  spec.seed = 11;
  spec.relayout_buckets = 8;
  // The TPC-C contended head (warehouse + district rows) is small in
  // absolute count; a lower hot threshold pulls enough of it into the
  // lookup table to make the relayout move records across the schema.
  spec.phases = PhasedPlan(/*live=*/true, /*hot_threshold=*/0.002);

  auto result = ScenarioRunner::Run(spec);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // The replan found the contended TPC-C head (warehouse/district rows)
  // on the hash-start layout and physically re-homed records while the
  // full mix — including mid-run inserts — kept running.
  EXPECT_GT(result->adaptive.sampled_txns, 0u);
  EXPECT_GT(result->adaptive.migration.moved_records, 0u);
  EXPECT_GT(result->adaptive.migration_window_commits, 0u);
  EXPECT_GT(result->stats.TotalCommits(), 0u);
}

TEST(AdaptiveTpccTest, QuiescedPathWorksToo) {
  // Chiller on purpose: after the quiesced swap the two-region planner
  // engages on a layout the workload's co-location declarations were not
  // written against, and violations must degrade to the 2PL fallback
  // (txn::Transaction::force_fallback) rather than CHECK-crash — the
  // quiesced swap arms the gate via NoteLayoutMutation just like a live
  // epoch does.
  ScenarioSpec spec;
  spec.workload = "adaptive-tpcc";
  spec.protocol = "chiller";
  spec.nodes = 3;
  spec.engines_per_node = 1;
  spec.concurrency = 2;
  spec.seed = 4;
  spec.phases = PhasedPlan(/*live=*/false, /*hot_threshold=*/0.002);

  auto result = ScenarioRunner::Run(spec);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(result->adaptive.migration.moved_records, 0u);
  EXPECT_GT(result->stats.TotalCommits(), 0u);
}

// ---------------------------------------------------------------------------
// Report schema stability
// ---------------------------------------------------------------------------

TEST(MigrationReportTest, AbortFieldOnlyAppearsWhenTheGateFired) {
  cc::RunStats stats;
  stats.EnsureClass(0, "T");
  stats.classes[0].commits = 10;
  stats.window = kMillisecond;
  Json quiet = bench::ResultRow("chiller", Json::MakeObject(), stats);
  EXPECT_EQ(quiet.Get("migration_aborts"), nullptr);

  stats.classes[0].migration_aborts = 3;
  Json live = bench::ResultRow("chiller", Json::MakeObject(), stats);
  ASSERT_NE(live.Get("migration_aborts"), nullptr);
  EXPECT_EQ(live.Get("migration_aborts")->AsDouble(), 3.0);
  // Migration aborts count as attempts but never as contention.
  EXPECT_EQ(stats.TotalAttempts(), 13u);
  EXPECT_EQ(stats.TotalMigrationAborts(), 3u);
  EXPECT_DOUBLE_EQ(stats.AbortRate(), 0.0);
}

}  // namespace
}  // namespace chiller
