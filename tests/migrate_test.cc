// Tests for the live-migration subsystem (src/migrate): relayout buckets
// and the bucket lock table, per-bucket SwappablePartitioner transitions,
// MigrationPlan diffs, LiveMigrator invariants under traffic (conservation,
// single residency, the dedicated migration abort class), the live-migrate
// phase and continuous controller through ScenarioRunner, and the
// adaptive-tpcc workload.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <vector>

#include "bench/bench_report.h"
#include "migrate/adaptive_controller.h"
#include "migrate/live_migrator.h"
#include "migrate/migration_governor.h"
#include "migrate/migration_plan.h"
#include "migrate/relayout.h"
#include "partition/lookup_table.h"
#include "runner/runner.h"
#include "runner/sweep.h"

namespace chiller {
namespace {

using migrate::BucketLockTable;
using migrate::LiveMigrator;
using migrate::MigrationPlan;
using migrate::RelayoutBucketOf;
using partition::HashPartitioner;
using partition::LookupPartitioner;
using partition::SwappablePartitioner;
using runner::Phase;
using runner::ScenarioRunner;
using runner::ScenarioSpec;

// ---------------------------------------------------------------------------
// Relayout buckets and the lock table
// ---------------------------------------------------------------------------

TEST(RelayoutBucketTest, StableAndInRange) {
  for (uint32_t buckets : {1u, 7u, 64u}) {
    for (uint64_t k = 0; k < 500; ++k) {
      const RecordId rid{2, k};
      const migrate::BucketId b = RelayoutBucketOf(rid, buckets);
      EXPECT_LT(b, buckets);
      EXPECT_EQ(b, RelayoutBucketOf(rid, buckets));  // pure function
    }
  }
}

TEST(BucketLockTableTest, EpochLifecycleAndGate) {
  BucketLockTable table;
  EXPECT_FALSE(table.epoch_active());
  EXPECT_FALSE(table.ever_active());
  EXPECT_FALSE(table.IsMigrating(RecordId{0, 1}));

  table.BeginEpoch(8);
  EXPECT_TRUE(table.epoch_active());
  EXPECT_TRUE(table.ever_active());
  EXPECT_FALSE(table.IsMigrating(RecordId{0, 1}));  // nothing locked yet

  // Find a rid in bucket 3 and one outside it.
  RecordId inside{0, 0};
  RecordId outside{0, 0};
  for (uint64_t k = 0;; ++k) {
    const RecordId rid{1, k};
    if (RelayoutBucketOf(rid, 8) == 3) {
      inside = rid;
      break;
    }
  }
  for (uint64_t k = 0;; ++k) {
    const RecordId rid{1, k};
    if (RelayoutBucketOf(rid, 8) != 3) {
      outside = rid;
      break;
    }
  }
  table.Acquire(3);
  EXPECT_EQ(table.locked_buckets(), 1u);
  EXPECT_TRUE(table.IsMigrating(inside));
  EXPECT_FALSE(table.IsMigrating(outside));
  table.Release(3);
  EXPECT_FALSE(table.IsMigrating(inside));

  table.EndEpoch();
  EXPECT_FALSE(table.epoch_active());
  EXPECT_TRUE(table.ever_active());  // sticky: protocols keep checking
}

TEST(BucketLockTableTest, MultiBucketLockFreezeReleaseInterleavings) {
  // The k>1 contract (see relayout.h): several buckets held at once, any
  // lock/release order, freezes independent of bucket locks, IsMigrating
  // answering over the union of everything held.
  BucketLockTable table;
  table.BeginEpoch(16);

  // One probe rid per bucket, so membership checks are exact.
  std::vector<RecordId> probe(16, RecordId{0, 0});
  std::vector<bool> found(16, false);
  for (uint64_t k = 0; size_t(std::count(found.begin(), found.end(), true)) <
                       found.size();
       ++k) {
    const RecordId rid{1, k};
    const migrate::BucketId b = RelayoutBucketOf(rid, 16);
    if (!found[b]) {
      probe[b] = rid;
      found[b] = true;
    }
  }

  // Widen to three concurrent buckets.
  table.Acquire(2);
  table.Acquire(7);
  table.Acquire(11);
  EXPECT_EQ(table.locked_buckets(), 3u);
  for (migrate::BucketId b = 0; b < 16; ++b) {
    EXPECT_EQ(table.IsMigrating(probe[b]), b == 2 || b == 7 || b == 11);
  }

  // Escalate a freeze while multiple buckets are held; it is keyed on
  // storage buckets, not relayout buckets, and is invisible to IsMigrating.
  const BucketLockTable::StorageBucketKey frozen{1, 0, 5};
  table.FreezeStorageBucket(frozen);
  EXPECT_TRUE(table.IsStorageBucketFrozen(frozen));
  EXPECT_TRUE(table.HasFrozenStorageBuckets());

  // Release out of acquisition order; the rest stay gated.
  table.Release(7);
  EXPECT_TRUE(table.IsMigrating(probe[2]));
  EXPECT_FALSE(table.IsMigrating(probe[7]));
  EXPECT_TRUE(table.IsMigrating(probe[11]));

  // A released bucket's slot can go to a different bucket (narrow + widen
  // elsewhere), and the freeze may outlive the bucket that escalated it.
  table.Acquire(7 + 1);
  EXPECT_TRUE(table.IsMigrating(probe[8]));
  table.Release(2);
  table.Release(8);
  EXPECT_TRUE(table.IsStorageBucketFrozen(frozen));

  // Everything must be lifted before the epoch closes.
  table.Release(11);
  table.UnfreezeStorageBucket(frozen);
  EXPECT_FALSE(table.HasFrozenStorageBuckets());
  table.EndEpoch();
  EXPECT_FALSE(table.epoch_active());
}

TEST(BucketLockTableDeathTest, ContractViolationsCheck) {
  BucketLockTable table;
  table.BeginEpoch(8);
  table.Acquire(3);
  // Each bucket is acquired at most once per epoch.
  EXPECT_DEATH(table.Acquire(3), "already locked");
  // Releasing something never locked is a bug, with k>1 as with k=1.
  EXPECT_DEATH(table.Release(5), "not locked");
  // The epoch cannot close with a bucket still in flight...
  EXPECT_DEATH(table.EndEpoch(), "still locked");
  table.Release(3);
  // ...or with an escalated freeze still in place.
  table.FreezeStorageBucket({0, 0, 1});
  EXPECT_DEATH(table.EndEpoch(), "frozen");
  table.UnfreezeStorageBucket({0, 0, 1});
  table.EndEpoch();
}

// ---------------------------------------------------------------------------
// SwappablePartitioner per-bucket transition
// ---------------------------------------------------------------------------

TEST(SwappableTransitionTest, FlipRoutesOneBucketAtATime) {
  constexpr uint32_t kPartitions = 4;
  constexpr uint32_t kBuckets = 8;
  SwappablePartitioner live(std::make_unique<HashPartitioner>(kPartitions));
  const uint64_t v0 = live.version();

  // Incoming layout: every key's explicit entry moves one partition over.
  auto next = std::make_unique<LookupPartitioner>(
      std::make_unique<HashPartitioner>(kPartitions));
  std::vector<RecordId> rids;
  for (uint64_t k = 0; k < 64; ++k) {
    const RecordId rid{1, k};
    next->Assign(rid, (live.PartitionOf(rid) + 1) % kPartitions);
    rids.push_back(rid);
  }

  EXPECT_FALSE(live.in_transition());
  live.BeginTransition(std::move(next), kBuckets);
  EXPECT_TRUE(live.in_transition());
  EXPECT_GT(live.version(), v0);

  // Nothing flipped: all records still route through the old layout.
  HashPartitioner old_layout(kPartitions);
  for (const RecordId& rid : rids) {
    EXPECT_EQ(live.PartitionOf(rid), old_layout.PartitionOf(rid));
  }

  // Flip one bucket: exactly its records re-route.
  const migrate::BucketId flipped = RelayoutBucketOf(rids[0], kBuckets);
  const uint64_t v1 = live.version();
  live.FlipBucket(flipped);
  EXPECT_GT(live.version(), v1);
  for (const RecordId& rid : rids) {
    const PartitionId old_p = old_layout.PartitionOf(rid);
    if (RelayoutBucketOf(rid, kBuckets) == flipped) {
      EXPECT_EQ(live.PartitionOf(rid), (old_p + 1) % kPartitions);
    } else {
      EXPECT_EQ(live.PartitionOf(rid), old_p);
    }
  }

  // Finishing collapses: every record routes through the new layout.
  auto retired = live.FinishTransition();
  EXPECT_FALSE(live.in_transition());
  EXPECT_NE(retired, nullptr);
  for (const RecordId& rid : rids) {
    EXPECT_EQ(live.PartitionOf(rid),
              (old_layout.PartitionOf(rid) + 1) % kPartitions);
  }
}

TEST(SwappableTransitionTest, LookupEntriesSpanBothLayoutsMidTransition) {
  SwappablePartitioner live(std::make_unique<HashPartitioner>(2));
  auto next = std::make_unique<LookupPartitioner>(
      std::make_unique<HashPartitioner>(2));
  next->Assign(RecordId{0, 1}, 1);
  next->Assign(RecordId{0, 2}, 0);
  EXPECT_EQ(live.LookupEntries(), 0u);
  live.BeginTransition(std::move(next), 4);
  EXPECT_EQ(live.LookupEntries(), 2u);  // staged table is resident too
  live.FinishTransition();
  EXPECT_EQ(live.LookupEntries(), 2u);
}

// ---------------------------------------------------------------------------
// MigrationPlan
// ---------------------------------------------------------------------------

ScenarioSpec SmallAdaptive() {
  ScenarioSpec spec;
  spec.workload = "adaptive";
  spec.protocol = "chiller";
  spec.nodes = 3;
  spec.engines_per_node = 1;
  spec.concurrency = 4;
  spec.seed = 7;
  spec.options.Set("keys_per_partition", 2000);
  spec.options.Set("theta", 0.9);
  return spec;
}

/// The standard six-phase plan (warmup -> sample -> replan -> migrate or
/// live-migrate -> resettle -> measure) the runner-level tests share.
std::vector<Phase> PhasedPlan(bool live, double hot_threshold = 0.05) {
  return {
      Phase::Warmup(kMillisecond),
      Phase::Sample(2 * kMillisecond, /*rate=*/1.0),
      Phase::Replan(hot_threshold),
      live ? Phase::LiveMigrate() : Phase::Migrate(),
      Phase::Warmup(kMillisecond),
      Phase::Measure(3 * kMillisecond),
  };
}

/// A target layout that re-homes every `stride`-th record of the wired
/// cluster one partition over; cold keys keep the hash fallback the live
/// layout uses, so only the explicit entries diff.
std::unique_ptr<LookupPartitioner> ShiftedLayout(
    cc::Cluster* cluster, uint32_t partitions, uint64_t stride) {
  auto target = std::make_unique<LookupPartitioner>(
      std::make_unique<HashPartitioner>(partitions));
  uint64_t n = 0;
  for (PartitionId p = 0; p < partitions; ++p) {
    cluster->primary(p)->ForEach(
        [&](const RecordId& rid, const storage::Record&) {
          if (n++ % stride == 0) {
            target->Assign(rid, (p + 1) % partitions);
          }
        });
  }
  return target;
}

TEST(MigrationPlanTest, DiffGroupsMovesByBucketAscending) {
  auto env = ScenarioRunner::Wire(SmallAdaptive());
  ASSERT_TRUE(env.ok()) << env.status().ToString();
  const uint32_t partitions = 3;
  auto target = ShiftedLayout(env->cluster.get(), partitions, 10);
  const size_t entries = target->LookupEntries();
  ASSERT_GT(entries, 0u);

  const MigrationPlan plan =
      MigrationPlan::Diff(env->cluster.get(), *target, 16);
  EXPECT_EQ(plan.num_buckets, 16u);
  EXPECT_EQ(plan.total_moves(), entries);
  migrate::BucketId prev = 0;
  bool first = true;
  for (const migrate::MoveUnit& unit : plan.units) {
    if (!first) EXPECT_GT(unit.bucket, prev);
    prev = unit.bucket;
    first = false;
    EXPECT_FALSE(unit.moves.empty());
    for (const migrate::RecordMove& mv : unit.moves) {
      EXPECT_EQ(RelayoutBucketOf(mv.rid, 16), unit.bucket);
      EXPECT_EQ(mv.to, target->PartitionOf(mv.rid));
      EXPECT_NE(mv.from, mv.to);
      EXPECT_NE(env->cluster->primary(mv.from)->Find(mv.rid), nullptr);
    }
  }

  // One bucket degenerates to the whole diff in one unit (the quiesced
  // path's schedule).
  const MigrationPlan flat =
      MigrationPlan::Diff(env->cluster.get(), *target, 1);
  ASSERT_EQ(flat.units.size(), 1u);
  EXPECT_EQ(flat.units[0].moves.size(), entries);
}

TEST(MigrationPlanTest, IdenticalLayoutDiffsEmpty) {
  auto env = ScenarioRunner::Wire(SmallAdaptive());
  ASSERT_TRUE(env.ok()) << env.status().ToString();
  HashPartitioner same(3);  // the adaptive workload's hash-start layout
  const MigrationPlan plan = MigrationPlan::Diff(env->cluster.get(), same, 8);
  EXPECT_EQ(plan.total_moves(), 0u);
  EXPECT_TRUE(plan.units.empty());
}

// ---------------------------------------------------------------------------
// MigrationGovernor
// ---------------------------------------------------------------------------

TEST(MigrationGovernorTest, AimdWidensWhenCalmAndHalvesOnViolation) {
  migrate::MigrationGovernorOptions opts;
  opts.min_streams = 1;
  opts.max_streams = 6;
  opts.p99_budget = 100 * kMicrosecond;
  opts.max_abort_share = 0.10;
  migrate::MigrationGovernor gov(opts, /*initial_streams=*/1);
  EXPECT_EQ(gov.target(), 1u);

  // Calm epochs: additive increase, one stream per epoch, capped at max.
  migrate::GovernorSignals calm{.commits = 1000, .migration_aborts = 10,
                                .p99 = 50 * kMicrosecond};
  for (uint32_t want : {2u, 3u, 4u, 5u, 6u, 6u}) {
    EXPECT_EQ(gov.Decide(calm), want);
  }
  EXPECT_EQ(gov.report().widens, 5u);  // the capped epoch widened nothing

  // Abort-share violation: multiplicative decrease (6 -> 3 -> 1),
  // floored at min_streams.
  migrate::GovernorSignals aborting{.commits = 800, .migration_aborts = 200,
                                    .p99 = 50 * kMicrosecond};
  EXPECT_EQ(gov.Decide(aborting), 3u);
  EXPECT_EQ(gov.Decide(aborting), 1u);
  EXPECT_EQ(gov.Decide(aborting), 1u);
  EXPECT_EQ(gov.report().narrows, 2u);  // the floored epoch narrowed nothing

  // Latency violation halves too, independent of the abort share.
  EXPECT_EQ(gov.Decide(calm), 2u);
  migrate::GovernorSignals slow{.commits = 1000, .migration_aborts = 0,
                                .p99 = 200 * kMicrosecond};
  EXPECT_EQ(gov.Decide(slow), 1u);

  // An idle epoch (no outcomes at all) reads as calm, not as a violation.
  EXPECT_EQ(gov.Decide(migrate::GovernorSignals{}), 2u);

  // p99_budget = 0 disables the latency signal entirely.
  migrate::MigrationGovernorOptions no_lat = opts;
  no_lat.p99_budget = 0;
  migrate::MigrationGovernor gov2(no_lat, /*initial_streams=*/2);
  EXPECT_EQ(gov2.Decide(slow), 3u);
}

// ---------------------------------------------------------------------------
// LiveMigrator invariants under traffic
// ---------------------------------------------------------------------------

TEST(LiveMigratorTest, ConservationAndSingleResidencyHoldMidMigration) {
  ScenarioSpec spec = SmallAdaptive();
  auto env = ScenarioRunner::Wire(spec);
  ASSERT_TRUE(env.ok()) << env.status().ToString();
  cc::Cluster* cluster = env->cluster.get();
  cc::Driver* driver = env->driver.get();
  const uint32_t partitions = spec.partitions();
  const size_t initial_records = cluster->TotalPrimaryRecords();

  driver->Start();
  driver->Advance(kMillisecond);

  auto target = ShiftedLayout(cluster, partitions, 25);
  MigrationPlan plan = MigrationPlan::Diff(cluster, *target, 8);
  ASSERT_GT(plan.total_moves(), 0u);
  ASSERT_GT(plan.units.size(), 1u);
  const std::vector<migrate::MoveUnit> units = plan.units;  // keep a copy

  SwappablePartitioner* live = env->bundle->adaptive_partitioner();
  LiveMigrator migrator(cluster, env->repl.get(), live);
  const uint64_t commits_before = driver->lifetime_commits();
  ASSERT_TRUE(
      migrator.Start(std::move(plan), std::move(target)).ok());

  // Step the simulator in small slices; at every boundary the storage
  // invariants must hold even though records are mid-relayout.
  int steps = 0;
  while (!migrator.done()) {
    driver->Advance(20 * kMicrosecond);
    ASSERT_LT(++steps, 100000) << "live migration did not settle";

    EXPECT_EQ(cluster->TotalPrimaryRecords(), initial_records)
        << "record conservation violated mid-migration";
    for (const migrate::MoveUnit& unit : units) {
      for (const migrate::RecordMove& mv : unit.moves) {
        int residency = 0;
        for (PartitionId p = 0; p < partitions; ++p) {
          if (cluster->primary(p)->Find(mv.rid) != nullptr) ++residency;
        }
        EXPECT_EQ(residency, 1)
            << mv.rid.ToString() << " resident " << residency << " times";
      }
    }
  }

  // Converged: every planned record sits at its target primary, the epoch
  // is closed, and traffic flowed throughout.
  for (const migrate::MoveUnit& unit : units) {
    for (const migrate::RecordMove& mv : unit.moves) {
      EXPECT_NE(cluster->primary(mv.to)->Find(mv.rid), nullptr);
      EXPECT_EQ(cluster->primary(mv.from)->Find(mv.rid), nullptr);
      EXPECT_EQ(live->PartitionOf(mv.rid), mv.to);
    }
  }
  size_t planned = 0;
  for (const auto& unit : units) planned += unit.moves.size();
  EXPECT_EQ(migrator.stats().base.moved_records, planned);
  EXPECT_EQ(migrator.stats().buckets_moved, units.size());
  EXPECT_FALSE(cluster->bucket_locks()->epoch_active());
  EXPECT_TRUE(cluster->bucket_locks()->ever_active());
  EXPECT_FALSE(live->in_transition());
  EXPECT_GT(driver->lifetime_commits(), commits_before)
      << "no commits during the live relayout: migration stopped the world";

  driver->DrainAndStop();
  EXPECT_EQ(cluster->TotalPrimaryRecords(), initial_records);
}

TEST(LiveMigratorTest, BlockedTransactionsUseTheMigrationAbortClass) {
  // Move a large slice of the keyspace through few relayout buckets on a
  // contended workload: while each bucket is in flight, a meaningful
  // fraction of all accesses lands in it and must abort-and-retry with
  // the dedicated class, not the conflict class.
  ScenarioSpec spec = SmallAdaptive();
  auto env = ScenarioRunner::Wire(spec);
  ASSERT_TRUE(env.ok()) << env.status().ToString();
  cc::Cluster* cluster = env->cluster.get();
  cc::Driver* driver = env->driver.get();

  driver->Start();
  driver->Advance(kMillisecond);

  auto target = ShiftedLayout(cluster, spec.partitions(), 5);
  MigrationPlan plan = MigrationPlan::Diff(cluster, *target, 4);
  ASSERT_GT(plan.total_moves(), 100u);

  LiveMigrator migrator(cluster, env->repl.get(),
                        env->bundle->adaptive_partitioner());
  ASSERT_TRUE(migrator.Start(std::move(plan), std::move(target)).ok());
  int steps = 0;
  while (!migrator.done()) {
    driver->Advance(50 * kMicrosecond);
    ASSERT_LT(++steps, 100000);
  }
  EXPECT_GT(driver->lifetime_migration_aborts(), 0u);
  driver->DrainAndStop();
}

TEST(LiveMigratorTest, EmptyPlanSwapsLayoutImmediately) {
  ScenarioSpec spec = SmallAdaptive();
  auto env = ScenarioRunner::Wire(spec);
  ASSERT_TRUE(env.ok()) << env.status().ToString();
  SwappablePartitioner* live = env->bundle->adaptive_partitioner();
  auto target = std::make_unique<HashPartitioner>(spec.partitions());

  LiveMigrator migrator(env->cluster.get(), env->repl.get(), live);
  ASSERT_TRUE(migrator
                  .Start(MigrationPlan{.num_buckets = 8, .units = {}},
                         std::move(target))
                  .ok());
  EXPECT_TRUE(migrator.done());
  EXPECT_EQ(migrator.stats().base.moved_records, 0u);
  EXPECT_FALSE(live->in_transition());
  EXPECT_FALSE(env->cluster->bucket_locks()->epoch_active());
}

TEST(LiveMigratorTest, ConcurrentStreamsPreserveConservationAndResidency) {
  // The k=4 variant of the conservation test: four buckets in flight at
  // once must still never duplicate or lose a record at any observable
  // instant.
  ScenarioSpec spec = SmallAdaptive();
  auto env = ScenarioRunner::Wire(spec);
  ASSERT_TRUE(env.ok()) << env.status().ToString();
  cc::Cluster* cluster = env->cluster.get();
  cc::Driver* driver = env->driver.get();
  const uint32_t partitions = spec.partitions();
  const size_t initial_records = cluster->TotalPrimaryRecords();

  driver->Start();
  driver->Advance(kMillisecond);

  auto target = ShiftedLayout(cluster, partitions, 25);
  MigrationPlan plan = MigrationPlan::Diff(cluster, *target, 8);
  ASSERT_GT(plan.units.size(), 4u);
  const std::vector<migrate::MoveUnit> units = plan.units;

  migrate::LiveMigratorOptions mopts;
  mopts.streams = 4;
  LiveMigrator migrator(cluster, env->repl.get(),
                        env->bundle->adaptive_partitioner(), mopts);
  ASSERT_TRUE(migrator.Start(std::move(plan), std::move(target)).ok());
  EXPECT_EQ(migrator.active_streams(), 4u);

  int steps = 0;
  while (!migrator.done()) {
    driver->Advance(20 * kMicrosecond);
    ASSERT_LT(++steps, 100000) << "live migration did not settle";
    EXPECT_LE(migrator.active_streams(), 4u);
    EXPECT_EQ(cluster->TotalPrimaryRecords(), initial_records);
    for (const migrate::MoveUnit& unit : units) {
      for (const migrate::RecordMove& mv : unit.moves) {
        int residency = 0;
        for (PartitionId p = 0; p < partitions; ++p) {
          if (cluster->primary(p)->Find(mv.rid) != nullptr) ++residency;
        }
        ASSERT_EQ(residency, 1)
            << mv.rid.ToString() << " resident " << residency << " times";
      }
    }
  }

  EXPECT_EQ(migrator.stats().peak_streams, 4u);
  EXPECT_EQ(migrator.stats().buckets_moved, units.size());
  for (const migrate::MoveUnit& unit : units) {
    for (const migrate::RecordMove& mv : unit.moves) {
      EXPECT_NE(cluster->primary(mv.to)->Find(mv.rid), nullptr);
      EXPECT_EQ(cluster->primary(mv.from)->Find(mv.rid), nullptr);
    }
  }
  EXPECT_FALSE(cluster->bucket_locks()->epoch_active());
  driver->DrainAndStop();
  EXPECT_EQ(cluster->TotalPrimaryRecords(), initial_records);
}

TEST(LiveMigratorTest, MoreStreamsFinishTheSamePlanFaster) {
  // Identical sampling history -> identical plan; only the stream width
  // differs. k=4 must move the same record set in strictly less simulated
  // time than k=1.
  auto run = [](uint32_t streams) {
    ScenarioSpec spec = SmallAdaptive();
    spec.phases = PhasedPlan(/*live=*/true);
    spec.relayout_buckets = 8;
    spec.migrate_streams = streams;
    auto result = ScenarioRunner::Run(spec);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return std::move(result).value();
  };
  const runner::ScenarioResult s1 = run(1);
  const runner::ScenarioResult s4 = run(4);

  ASSERT_GT(s1.adaptive.migration.moved_records, 0u);
  EXPECT_EQ(s1.adaptive.migration.moved_records,
            s4.adaptive.migration.moved_records);
  EXPECT_EQ(s1.adaptive.buckets_moved, s4.adaptive.buckets_moved);
  EXPECT_EQ(s1.adaptive.peak_streams, 1u);
  EXPECT_GT(s4.adaptive.peak_streams, 1u);
  EXPECT_LT(s4.adaptive.migration.sim_time, s1.adaptive.migration.sim_time)
      << "4 concurrent streams did not shorten the relayout window";
  // Traffic kept flowing in both.
  EXPECT_GT(s1.adaptive.migration_window_commits, 0u);
  EXPECT_GT(s4.adaptive.migration_window_commits, 0u);
}

// ---------------------------------------------------------------------------
// The live-migrate phase and the continuous controller through the runner
// ---------------------------------------------------------------------------

TEST(LiveMigratePhaseTest, LiveAndQuiescedConvergeToTheSameLayout) {
  ScenarioSpec live = SmallAdaptive();
  live.phases = PhasedPlan(/*live=*/true);
  live.relayout_buckets = 8;
  live.timeline_slice = 250 * kMicrosecond;

  ScenarioSpec quiesced = live;
  quiesced.phases = PhasedPlan(/*live=*/false);

  auto lr = ScenarioRunner::Run(live);
  auto qr = ScenarioRunner::Run(quiesced);
  ASSERT_TRUE(lr.ok()) << lr.status().ToString();
  ASSERT_TRUE(qr.ok()) << qr.status().ToString();

  // Identical history through the replan: identical layout, identical
  // record set to move.
  EXPECT_EQ(lr->adaptive.sampled_txns, qr->adaptive.sampled_txns);
  EXPECT_EQ(lr->adaptive.hot_records, qr->adaptive.hot_records);
  EXPECT_EQ(lr->adaptive.lookup_entries, qr->adaptive.lookup_entries);
  EXPECT_GT(lr->adaptive.migration.moved_records, 0u);
  EXPECT_EQ(lr->adaptive.migration.moved_records,
            qr->adaptive.migration.moved_records);
  EXPECT_GT(lr->adaptive.buckets_moved, 0u);

  // The defining difference: commits keep landing inside the live window,
  // never inside the quiesced one.
  EXPECT_GT(lr->adaptive.migration_window_commits, 0u);
  EXPECT_EQ(qr->adaptive.migration_window_commits, 0u);
  EXPECT_GT(lr->stats.TotalCommits(), 0u);
  EXPECT_GT(qr->stats.TotalCommits(), 0u);

  // Timelines cover the run contiguously.
  for (const auto* r : {&*lr, &*qr}) {
    ASSERT_FALSE(r->adaptive.timeline.empty());
    for (size_t i = 1; i < r->adaptive.timeline.size(); ++i) {
      EXPECT_EQ(r->adaptive.timeline[i].start,
                r->adaptive.timeline[i - 1].end);
    }
  }
}

TEST(ContinuousControllerTest, ConvergesThenSettles) {
  ScenarioSpec spec;
  spec.workload = "adaptive";
  spec.protocol = "chiller";
  spec.nodes = 4;
  spec.engines_per_node = 2;
  spec.concurrency = 4;
  spec.seed = 3;
  spec.options.Set("keys_per_partition", 2000);
  spec.options.Set("theta", 0.9);
  spec.continuous = true;
  spec.warmup = kMillisecond;
  spec.measure = 12 * kMillisecond;
  spec.controller_period = kMillisecond;
  spec.relayout_buckets = 8;

  auto result = ScenarioRunner::Run(spec);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(result->adaptive.controller_epochs, 0u);
  EXPECT_GE(result->adaptive.controller_migrations, 1u);
  EXPECT_GT(result->adaptive.migration.moved_records, 0u);
  EXPECT_GT(result->adaptive.sampled_txns, 0u);
  EXPECT_GT(result->stats.TotalCommits(), 0u);
  // Hysteresis: the hash-start layout converges and the loop goes quiet
  // well before the window ends.
  EXPECT_TRUE(result->adaptive.controller_settled);
  EXPECT_LT(result->adaptive.controller_migrations, 4u);
}

TEST(GovernedLiveMigrateTest, GovernorWidensWhenTheBudgetTolerates) {
  // A tolerant SLO (any abort share passes, no latency budget): every
  // governor epoch is calm, so the width ratchets up from 1 while the
  // relayout runs. Small batches + fine advance steps give the governor
  // many epochs inside one relayout.
  ScenarioSpec spec = SmallAdaptive();
  spec.phases = PhasedPlan(/*live=*/true);
  spec.relayout_buckets = 16;
  spec.migrate_batch_records = 8;
  spec.timeline_slice = 100 * kMicrosecond;
  spec.governor = true;
  spec.governor_max_streams = 8;
  spec.governor_max_abort_share = 1.0;

  auto result = ScenarioRunner::Run(spec);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(result->adaptive.migration.moved_records, 0u);
  EXPECT_GT(result->adaptive.governor_widens, 0u);
  EXPECT_GT(result->adaptive.peak_streams, 1u);
}

TEST(GovernedLiveMigrateTest, GovernorBacksOffUnderAZeroToleranceBudget) {
  // Start wide with a budget nothing can satisfy (abort share > 0 is a
  // violation, and the contended head guarantees migration aborts): the
  // first violated epoch halves the width, never widens it.
  // A low hot threshold moves a large record set, so the k=8 relayout
  // spans many 50 us governor epochs even at full width.
  ScenarioSpec spec = SmallAdaptive();
  spec.phases = PhasedPlan(/*live=*/true, /*hot_threshold=*/0.002);
  spec.relayout_buckets = 16;
  spec.migrate_batch_records = 4;
  spec.timeline_slice = 50 * kMicrosecond;
  spec.migrate_streams = 8;  // the governor's starting width
  spec.governor = true;
  spec.governor_max_streams = 8;
  spec.governor_max_abort_share = 0.0;

  auto result = ScenarioRunner::Run(spec);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(result->adaptive.migration.moved_records, 0u);
  EXPECT_GT(result->adaptive.governor_narrows, 0u);
  EXPECT_EQ(result->adaptive.governor_widens, 0u);
  EXPECT_EQ(result->adaptive.peak_streams, 8u);  // wide until the first halve
}

TEST(ContinuousControllerTest, RotatedHotSetReArmsTheLoop) {
  // The workload's hot head rotates mid-window. A settling-only controller
  // would keep the stale layout; with rearm_threshold set, the drift
  // detector sees the settled layout's residual contention jump and
  // re-arms the full sample -> replan -> migrate loop.
  ScenarioSpec spec = SmallAdaptive();
  spec.continuous = true;
  spec.warmup = kMillisecond;
  spec.measure = 20 * kMillisecond;
  spec.controller_period = kMillisecond;
  spec.relayout_buckets = 8;
  spec.rearm_threshold = 0.25;
  spec.options.Set("shift_every_us", uint64_t{10000});
  spec.options.Set("shift_stride", uint64_t{500});

  auto result = ScenarioRunner::Run(spec);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GE(result->adaptive.controller_rearms, 1u);
  // Re-arming is not cosmetic: the loop replanned and migrated again
  // after the shift.
  EXPECT_GE(result->adaptive.controller_migrations, 2u);
  EXPECT_GT(result->adaptive.migration.moved_records, 0u);
  EXPECT_GT(result->stats.TotalCommits(), 0u);
}

TEST(ContinuousControllerTest, ShadowModeScoresWithoutMovingARecord) {
  ScenarioSpec spec = SmallAdaptive();
  spec.continuous = true;
  spec.warmup = kMillisecond;
  spec.measure = 8 * kMillisecond;
  spec.controller_period = kMillisecond;
  spec.relayout_buckets = 8;
  spec.shadow = true;

  auto result = ScenarioRunner::Run(spec);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Candidates were scored every epoch...
  EXPECT_GT(result->adaptive.shadow_evals, 0u);
  EXPECT_GT(result->adaptive.sampled_txns, 0u);
  EXPECT_NE(result->adaptive.last_drift, 0.0);
  // ...but nothing executed, and the loop never settles (it keeps
  // scoring for the whole run).
  EXPECT_EQ(result->adaptive.controller_migrations, 0u);
  EXPECT_EQ(result->adaptive.migration.moved_records, 0u);
  EXPECT_EQ(result->adaptive.buckets_moved, 0u);
  EXPECT_EQ(result->adaptive.peak_streams, 0u);
  EXPECT_FALSE(result->adaptive.controller_settled);
  EXPECT_GT(result->stats.TotalCommits(), 0u);
}

TEST(ContinuousControllerTest, FrozenWorkloadIsRejected) {
  ScenarioSpec spec = SmallAdaptive();
  spec.workload = "ycsb";  // frozen layout
  spec.continuous = true;
  auto result = ScenarioRunner::Run(spec);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsFailedPrecondition());
}

TEST(MigrateValidationTest, RejectsMalformedSpecs) {
  ScenarioSpec spec = SmallAdaptive();
  spec.phases = {Phase::Sample(kMillisecond, 1.0), Phase::LiveMigrate(),
                 Phase::Measure(kMillisecond)};  // live-migrate sans replan
  EXPECT_TRUE(ScenarioRunner::Validate(spec).IsInvalidArgument());

  spec = SmallAdaptive();
  spec.phases = PhasedPlan(/*live=*/true);
  EXPECT_TRUE(ScenarioRunner::Validate(spec).ok());
  spec.relayout_buckets = 0;
  EXPECT_TRUE(ScenarioRunner::Validate(spec).IsInvalidArgument());
  spec.relayout_buckets = 8;
  spec.migrate_batch_records = 0;
  EXPECT_TRUE(ScenarioRunner::Validate(spec).IsInvalidArgument());

  spec = SmallAdaptive();
  spec.continuous = true;
  spec.phases = PhasedPlan(/*live=*/true);  // controller owns the loop
  EXPECT_TRUE(ScenarioRunner::Validate(spec).IsInvalidArgument());

  spec = SmallAdaptive();
  spec.continuous = true;
  spec.controller_period = 0;
  EXPECT_TRUE(ScenarioRunner::Validate(spec).IsInvalidArgument());
  spec.controller_period = kMillisecond;
  spec.controller_sample_rate = 1.5;
  EXPECT_TRUE(ScenarioRunner::Validate(spec).IsInvalidArgument());
  spec.controller_sample_rate = 1.0;
  spec.controller_hysteresis = 0;
  EXPECT_TRUE(ScenarioRunner::Validate(spec).IsInvalidArgument());
  spec.controller_hysteresis = 2;
  EXPECT_TRUE(ScenarioRunner::Validate(spec).ok());

  // Concurrent streams and the governor.
  spec = SmallAdaptive();
  spec.phases = PhasedPlan(/*live=*/true);
  spec.migrate_streams = 0;
  EXPECT_TRUE(ScenarioRunner::Validate(spec).IsInvalidArgument());
  spec.migrate_streams = 4;
  spec.governor = true;
  spec.governor_min_streams = 0;
  EXPECT_TRUE(ScenarioRunner::Validate(spec).IsInvalidArgument());
  spec.governor_min_streams = 4;
  spec.governor_max_streams = 2;  // min > max
  EXPECT_TRUE(ScenarioRunner::Validate(spec).IsInvalidArgument());
  spec.governor_max_streams = 8;
  spec.governor_max_abort_share = 1.5;
  EXPECT_TRUE(ScenarioRunner::Validate(spec).IsInvalidArgument());
  spec.governor_max_abort_share = 0.1;
  EXPECT_TRUE(ScenarioRunner::Validate(spec).ok());

  // Re-arm and shadow are continuous-mode features, and exclusive.
  spec = SmallAdaptive();
  spec.phases = PhasedPlan(/*live=*/true);
  spec.rearm_threshold = -0.5;
  EXPECT_TRUE(ScenarioRunner::Validate(spec).IsInvalidArgument());
  spec.rearm_threshold = 0.2;  // re-arm without continuous
  EXPECT_TRUE(ScenarioRunner::Validate(spec).IsInvalidArgument());
  spec = SmallAdaptive();
  spec.phases = PhasedPlan(/*live=*/true);
  spec.shadow = true;  // shadow without continuous
  EXPECT_TRUE(ScenarioRunner::Validate(spec).IsInvalidArgument());
  spec = SmallAdaptive();
  spec.continuous = true;
  spec.shadow = true;
  EXPECT_TRUE(ScenarioRunner::Validate(spec).ok());
  spec.rearm_threshold = 0.2;  // shadow never settles: nothing to re-arm
  EXPECT_TRUE(ScenarioRunner::Validate(spec).IsInvalidArgument());
  spec.shadow = false;
  EXPECT_TRUE(ScenarioRunner::Validate(spec).ok());
}

// ---------------------------------------------------------------------------
// adaptive-tpcc: multi-table migration with the remote-warehouse pattern
// ---------------------------------------------------------------------------

TEST(AdaptiveTpccTest, LiveMigratesAcrossTheMultiTableSchema) {
  ScenarioSpec spec;
  spec.workload = "adaptive-tpcc";
  spec.protocol = "chiller";
  spec.nodes = 3;
  spec.engines_per_node = 1;
  spec.concurrency = 2;
  spec.seed = 11;
  spec.relayout_buckets = 8;
  // The TPC-C contended head (warehouse + district rows) is small in
  // absolute count; a lower hot threshold pulls enough of it into the
  // lookup table to make the relayout move records across the schema.
  spec.phases = PhasedPlan(/*live=*/true, /*hot_threshold=*/0.002);

  auto result = ScenarioRunner::Run(spec);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // The replan found the contended TPC-C head (warehouse/district rows)
  // on the hash-start layout and physically re-homed records while the
  // full mix — including mid-run inserts — kept running.
  EXPECT_GT(result->adaptive.sampled_txns, 0u);
  EXPECT_GT(result->adaptive.migration.moved_records, 0u);
  EXPECT_GT(result->adaptive.migration_window_commits, 0u);
  EXPECT_GT(result->stats.TotalCommits(), 0u);
}

TEST(AdaptiveTpccTest, QuiescedPathWorksToo) {
  // Chiller on purpose: after the quiesced swap the two-region planner
  // engages on a layout the workload's co-location declarations were not
  // written against, and violations must degrade to the 2PL fallback
  // (txn::Transaction::force_fallback) rather than CHECK-crash — the
  // quiesced swap arms the gate via NoteLayoutMutation just like a live
  // epoch does.
  ScenarioSpec spec;
  spec.workload = "adaptive-tpcc";
  spec.protocol = "chiller";
  spec.nodes = 3;
  spec.engines_per_node = 1;
  spec.concurrency = 2;
  spec.seed = 4;
  spec.phases = PhasedPlan(/*live=*/false, /*hot_threshold=*/0.002);

  auto result = ScenarioRunner::Run(spec);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(result->adaptive.migration.moved_records, 0u);
  EXPECT_GT(result->stats.TotalCommits(), 0u);
}

// ---------------------------------------------------------------------------
// Report schema stability
// ---------------------------------------------------------------------------

TEST(MigrationReportTest, AbortFieldOnlyAppearsWhenTheGateFired) {
  cc::RunStats stats;
  stats.EnsureClass(0, "T");
  stats.classes[0].commits = 10;
  stats.window = kMillisecond;
  Json quiet = bench::ResultRow("chiller", Json::MakeObject(), stats);
  EXPECT_EQ(quiet.Get("migration_aborts"), nullptr);

  stats.classes[0].migration_aborts = 3;
  Json live = bench::ResultRow("chiller", Json::MakeObject(), stats);
  ASSERT_NE(live.Get("migration_aborts"), nullptr);
  EXPECT_EQ(live.Get("migration_aborts")->AsDouble(), 3.0);
  // Migration aborts count as attempts but never as contention.
  EXPECT_EQ(stats.TotalAttempts(), 13u);
  EXPECT_EQ(stats.TotalMigrationAborts(), 3u);
  EXPECT_DOUBLE_EQ(stats.AbortRate(), 0.0);
}

}  // namespace
}  // namespace chiller
