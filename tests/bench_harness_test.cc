// Tests for the shared bench harness: CLI flag parsing, the JSON
// utility + report emitter, and the registry-backed protocol factory.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "bench/bench_flags.h"
#include "bench/bench_report.h"
#include "runner/registry.h"
#include "runner/runner.h"
#include "workload/tpcc/tpcc_workload.h"

namespace chiller::bench {
namespace {

namespace tpcc = workload::tpcc;

// ---------------------------------------------------------------------------
// Flag parsing
// ---------------------------------------------------------------------------

Status Parse(std::vector<const char*> argv, BenchFlags* out) {
  argv.insert(argv.begin(), "bench");
  return ParseBenchFlags(static_cast<int>(argv.size()), argv.data(), out);
}

TEST(BenchFlagsTest, DefaultsSurviveEmptyArgv) {
  BenchFlags f;
  ASSERT_TRUE(Parse({}, &f).ok());
  EXPECT_EQ(f.protocol, "chiller");
  EXPECT_EQ(f.nodes, 8u);
  EXPECT_EQ(f.engines, 10u);
  EXPECT_EQ(f.concurrency, 4u);
  EXPECT_DOUBLE_EQ(f.warmup_ms, 3.0);
  EXPECT_DOUBLE_EQ(f.duration_ms, 15.0);
  EXPECT_EQ(f.seed, 1u);
  EXPECT_EQ(f.jobs, 1u);
  EXPECT_TRUE(f.emit_json);
  EXPECT_FALSE(f.help);
  EXPECT_FALSE(f.list_protocols);
  EXPECT_FALSE(f.list_workloads);
}

TEST(BenchFlagsTest, ParsesEveryFlag) {
  BenchFlags f;
  ASSERT_TRUE(Parse({"--protocol=occ", "--nodes=4", "--engines=2",
                     "--concurrency=7", "--warmup-ms=1.5", "--duration-ms=9",
                     "--theta=0.5", "--seed=42", "--jobs=3",
                     "--json=/tmp/out.json"},
                    &f)
                  .ok());
  EXPECT_EQ(f.protocol, "occ");
  EXPECT_EQ(f.nodes, 4u);
  EXPECT_EQ(f.engines, 2u);
  EXPECT_EQ(f.concurrency, 7u);
  EXPECT_DOUBLE_EQ(f.warmup_ms, 1.5);
  EXPECT_DOUBLE_EQ(f.duration_ms, 9.0);
  EXPECT_DOUBLE_EQ(f.theta, 0.5);
  EXPECT_EQ(f.seed, 42u);
  EXPECT_EQ(f.jobs, 3u);
  EXPECT_EQ(f.json_path, "/tmp/out.json");
  EXPECT_EQ(f.JsonPathFor("fig9"), "/tmp/out.json");
}

TEST(BenchFlagsTest, JobsZeroMeansAutoAndParses) {
  BenchFlags f;
  ASSERT_TRUE(Parse({"--jobs=0"}, &f).ok());
  EXPECT_EQ(f.jobs, 0u);  // 0 = all hardware threads, resolved by the sweep
}

TEST(BenchFlagsTest, ListFlagsParse) {
  BenchFlags f;
  ASSERT_TRUE(Parse({"--list-protocols"}, &f).ok());
  EXPECT_TRUE(f.list_protocols);
  BenchFlags g;
  ASSERT_TRUE(Parse({"--list-workloads"}, &g).ok());
  EXPECT_TRUE(g.list_workloads);
}

TEST(BenchFlagsTest, NoJsonAndDefaultPath) {
  BenchFlags f;
  ASSERT_TRUE(Parse({"--no-json"}, &f).ok());
  EXPECT_FALSE(f.emit_json);
  EXPECT_EQ(f.JsonPathFor("fig9"), "BENCH_fig9.json");
}

TEST(BenchFlagsTest, HelpShortCircuits) {
  BenchFlags f;
  ASSERT_TRUE(Parse({"--help", "--garbage"}, &f).ok());
  EXPECT_TRUE(f.help);
}

TEST(BenchFlagsTest, RejectsUnknownFlagAndBadValues) {
  BenchFlags f;
  EXPECT_TRUE(Parse({"--wat=1"}, &f).IsInvalidArgument());
  EXPECT_TRUE(Parse({"positional"}, &f).IsInvalidArgument());
  EXPECT_TRUE(Parse({"--nodes=banana"}, &f).IsInvalidArgument());
  EXPECT_TRUE(Parse({"--nodes=0"}, &f).IsInvalidArgument());
  EXPECT_TRUE(Parse({"--duration-ms=0"}, &f).IsInvalidArgument());
  EXPECT_TRUE(Parse({"--seed="}, &f).IsInvalidArgument());
  EXPECT_TRUE(Parse({"--jobs=banana"}, &f).IsInvalidArgument());
}

TEST(BenchFlagsTest, UsageMentionsEveryFlag) {
  const std::string usage = UsageString("fig9");
  for (const char* flag :
       {"--protocol", "--nodes", "--engines", "--concurrency", "--warmup-ms",
        "--duration-ms", "--theta", "--seed", "--load-model", "--offered-tps",
        "--arrival", "--queue-cap", "--batch-size", "--jobs", "--json",
        "--no-json", "--list-protocols", "--list-workloads", "--help"}) {
    EXPECT_NE(usage.find(flag), std::string::npos) << flag;
  }
}

TEST(BenchFlagsTest, LoadModelFlagsParseAndApply) {
  BenchFlags f;
  ASSERT_TRUE(Parse({"--load-model=open", "--offered-tps=250000",
                     "--arrival=uniform", "--queue-cap=16",
                     "--batch-size=32"},
                    &f)
                  .ok());
  EXPECT_EQ(f.load_model, "open");
  EXPECT_DOUBLE_EQ(f.offered_tps, 250000.0);
  EXPECT_EQ(f.arrival, "uniform");
  EXPECT_EQ(f.queue_cap, 16u);
  EXPECT_EQ(f.batch_size, 32u);

  runner::ScenarioSpec spec;
  ApplyLoadModelFlags(f, &spec);
  EXPECT_EQ(spec.load_model, "open");
  EXPECT_DOUBLE_EQ(spec.offered_tps, 250000.0);
  EXPECT_EQ(spec.arrival, "uniform");
  EXPECT_EQ(spec.queue_cap, 16u);
  EXPECT_EQ(spec.batch_size, 32u);
}

TEST(BenchFlagsTest, LoadModelFlagsAreValidated) {
  BenchFlags f;
  EXPECT_TRUE(Parse({"--load-model=nope"}, &f).IsInvalidArgument());
  f = BenchFlags{};
  // Open without an offered rate is caught at parse time, not per scenario.
  EXPECT_TRUE(Parse({"--load-model=open"}, &f).IsInvalidArgument());
  f = BenchFlags{};
  EXPECT_TRUE(Parse({"--offered-tps=banana"}, &f).IsInvalidArgument());
  // The default closed model never needs an offered rate.
  f = BenchFlags{};
  EXPECT_TRUE(Parse({}, &f).ok());
  EXPECT_EQ(f.load_model, "closed");
}

TEST(BenchFlagsTest, UsageListsRegisteredProtocols) {
  const std::string usage = UsageString("fig9");
  for (const std::string& name : runner::ProtocolRegistry::Global().Names()) {
    EXPECT_NE(usage.find(name), std::string::npos) << name;
  }
}

TEST(BenchFlagsTest, UsageReflectsBenchSpecificDefaults) {
  BenchFlags d;
  d.duration_ms = 30.0;
  d.theta = 0.6;
  const std::string usage = UsageString("fig7", d);
  EXPECT_NE(usage.find("window, ms (default 30)"), std::string::npos)
      << usage;
  EXPECT_NE(usage.find("applicable (default 0.6)"), std::string::npos)
      << usage;
}

// ---------------------------------------------------------------------------
// JSON utility
// ---------------------------------------------------------------------------

TEST(JsonTest, DumpParseRoundtrip) {
  Json doc = Json::MakeObject();
  doc["name"] = "fig9";
  doc["count"] = 301;
  doc["rate"] = 0.25;
  doc["flag"] = true;
  doc["nothing"] = nullptr;
  doc["arr"].Append(1);
  doc["arr"].Append("two");
  doc["nested"]["deep"] = 7;

  for (int indent : {0, 2}) {
    auto parsed = Json::Parse(doc.Dump(indent));
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    EXPECT_EQ(parsed->Get("name")->AsString(), "fig9");
    EXPECT_DOUBLE_EQ(parsed->Get("count")->AsDouble(), 301);
    EXPECT_DOUBLE_EQ(parsed->Get("rate")->AsDouble(), 0.25);
    EXPECT_TRUE(parsed->Get("flag")->AsBool());
    EXPECT_TRUE(parsed->Get("nothing")->is_null());
    ASSERT_EQ(parsed->Get("arr")->AsArray().size(), 2u);
    EXPECT_EQ(parsed->Get("arr")->AsArray()[1].AsString(), "two");
    EXPECT_DOUBLE_EQ(parsed->Get("nested")->Get("deep")->AsDouble(), 7);
  }
}

TEST(JsonTest, EscapesStrings) {
  Json doc = Json::MakeObject();
  doc["s"] = std::string("a\"b\\c\nd");
  auto parsed = Json::Parse(doc.Dump());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->Get("s")->AsString(), "a\"b\\c\nd");
}

TEST(JsonTest, RejectsMalformedInput) {
  for (const char* bad : {"", "{", "[1,", "{\"a\":}", "tru", "01x",
                          "{\"a\":1} trailing", "\"unterminated"}) {
    EXPECT_FALSE(Json::Parse(bad).ok()) << bad;
  }
}

// ---------------------------------------------------------------------------
// Report emitter
// ---------------------------------------------------------------------------

/// A small real measurement so the latency histograms are populated.
cc::RunStats SmallTpccRun(const std::string& proto) {
  runner::ScenarioSpec spec;
  spec.workload = "tpcc";
  spec.protocol = proto;
  spec.nodes = 2;
  spec.engines_per_node = 1;
  spec.concurrency = 2;
  spec.seed = 3;
  spec.warmup = kMillisecond;
  spec.measure = 2 * kMillisecond;
  auto result = runner::ScenarioRunner::Run(spec);
  CHILLER_CHECK(result.ok()) << result.status().ToString();
  return result->stats;
}

TEST(BenchReportTest, EmittedJsonParsesAndHasRequiredKeys) {
  BenchReport report("harness_test");
  report.SetConfig("nodes", 2);
  report.SetConfig("engines_per_node", 1);

  const cc::RunStats stats = SmallTpccRun("chiller");
  ASSERT_GT(stats.TotalCommits(), 0u);
  Json params = Json::MakeObject();
  params["concurrency"] = 2;
  report.AddRun("chiller", std::move(params), stats);

  const std::string path =
      testing::TempDir() + "/BENCH_harness_test.json";
  ASSERT_TRUE(report.WriteFile(path).ok());

  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  auto parsed = Json::Parse(buf.str());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();

  EXPECT_EQ(parsed->Get("bench")->AsString(), "harness_test");
  EXPECT_DOUBLE_EQ(parsed->Get("config")->Get("nodes")->AsDouble(), 2);
  const auto& results = parsed->Get("results")->AsArray();
  ASSERT_EQ(results.size(), 1u);
  const Json& row = results[0];
  EXPECT_EQ(row.Get("protocol")->AsString(), "chiller");
  EXPECT_DOUBLE_EQ(row.Get("params")->Get("concurrency")->AsDouble(), 2);
  for (const char* key : {"throughput_tps", "abort_rate", "latency_p50_ns",
                          "latency_p99_ns", "latency_mean_ns", "commits",
                          "attempts"}) {
    ASSERT_TRUE(row.Has(key)) << key;
    EXPECT_TRUE(row.Get(key)->is_number()) << key;
  }
  EXPECT_GT(row.Get("throughput_tps")->AsDouble(), 0.0);
  EXPECT_GT(row.Get("latency_p99_ns")->AsDouble(), 0.0);
  EXPECT_GE(row.Get("latency_p99_ns")->AsDouble(),
            row.Get("latency_p50_ns")->AsDouble());
  std::remove(path.c_str());
}

TEST(BenchReportTest, QueueFieldsAppearOnlyForOpenLoopRuns) {
  // A closed-loop run never offers load through an admission queue, and
  // its row must keep the historical shape (committed BENCH_*.json files
  // are diffed byte-for-byte).
  const cc::RunStats closed = SmallTpccRun("chiller");
  const Json closed_row = ResultRow("chiller", Json::MakeObject(), closed);
  for (const char* key : {"admitted", "shed", "shed_rate",
                          "queue_delay_p50_ns", "queue_delay_p99_ns",
                          "queue_delay_mean_ns"}) {
    EXPECT_FALSE(closed_row.Has(key)) << key;
  }

  // Emission keys off the load model, not the counters: an open-loop row
  // keeps the queue fields even when its window saw no arrivals.
  cc::RunStats quiet = closed;
  quiet.open_loop = true;
  const Json quiet_row = ResultRow("chiller", Json::MakeObject(), quiet);
  EXPECT_TRUE(quiet_row.Has("admitted"));
  EXPECT_TRUE(quiet_row.Has("queue_delay_p99_ns"));

  cc::RunStats open = closed;
  open.open_loop = true;
  open.admitted = 90;
  open.shed = 10;
  open.queue_delay.Add(1000);
  open.queue_delay.Add(3000);
  const Json open_row = ResultRow("chiller", Json::MakeObject(), open);
  for (const char* key : {"admitted", "shed", "shed_rate",
                          "queue_delay_p50_ns", "queue_delay_p99_ns",
                          "queue_delay_mean_ns"}) {
    ASSERT_TRUE(open_row.Has(key)) << key;
  }
  EXPECT_DOUBLE_EQ(open_row.Get("shed_rate")->AsDouble(), 0.1);
  EXPECT_GT(open_row.Get("queue_delay_p99_ns")->AsDouble(), 0.0);
}

// ---------------------------------------------------------------------------
// Protocol registry (replaces the old bench-header MakeProtocol factory)
// ---------------------------------------------------------------------------

class ProtocolRegistryTest : public testing::Test {
 protected:
  ProtocolRegistryTest() {
    cc::ClusterConfig cfg;
    cfg.topology = net::Topology{.num_nodes = 2,
                                 .engines_per_node = 1,
                                 .replication_degree = 2};
    cfg.schema = tpcc::Schema();
    cluster_ = std::make_unique<cc::Cluster>(cfg);
    partitioner_ = std::make_unique<tpcc::TpccPartitioner>(2);
    repl_ = std::make_unique<cc::ReplicationManager>(cluster_.get());
  }

  StatusOr<std::unique_ptr<cc::Protocol>> Make(const std::string& name) {
    return runner::ProtocolRegistry::Global().Make(
        name, cluster_.get(), partitioner_.get(), repl_.get());
  }

  std::unique_ptr<cc::Cluster> cluster_;
  std::unique_ptr<tpcc::TpccPartitioner> partitioner_;
  std::unique_ptr<cc::ReplicationManager> repl_;
};

TEST_F(ProtocolRegistryTest, BuildsEveryRegisteredProtocol) {
  const std::vector<std::string> names =
      runner::ProtocolRegistry::Global().Names();
  ASSERT_GE(names.size(), 4u);
  for (const std::string& name : names) {
    auto proto = Make(name);
    ASSERT_TRUE(proto.ok()) << name;
    ASSERT_NE(proto.value(), nullptr) << name;
    EXPECT_NE(proto.value()->name(), nullptr) << name;
  }
  // The ablation variant is still the Chiller protocol underneath.
  EXPECT_STREQ(Make("chiller").value()->name(),
               Make("chiller-plain").value()->name());
}

TEST_F(ProtocolRegistryTest, UnknownNameIsInvalidArgumentNotAbort) {
  auto proto = Make("definitely-not-a-protocol");
  ASSERT_FALSE(proto.ok());
  EXPECT_TRUE(proto.status().IsInvalidArgument());
  // The message should steer the user to valid spellings.
  for (const std::string& name :
       runner::ProtocolRegistry::Global().Names()) {
    EXPECT_NE(proto.status().message().find(name), std::string::npos) << name;
  }
}

}  // namespace
}  // namespace chiller::bench
