// Unit tests for the discrete-event simulator substrate.
#include <gtest/gtest.h>

#include <functional>
#include <string>
#include <vector>

#include "sim/cpu_resource.h"
#include "sim/event_queue.h"
#include "sim/scheduler.h"
#include "sim/sharded_simulator.h"
#include "sim/simulator.h"

namespace chiller::sim {
namespace {

TEST(EventQueueTest, OrdersByTime) {
  EventQueue q;
  std::vector<int> order;
  q.Push(30, [&] { order.push_back(3); });
  q.Push(10, [&] { order.push_back(1); });
  q.Push(20, [&] { order.push_back(2); });
  while (!q.empty()) q.Pop().fn();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, FifoAtSameInstant) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.Push(5, [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.Pop().fn();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventQueueTest, NextTimeReportsEarliest) {
  EventQueue q;
  EXPECT_EQ(q.NextTime(), kSimTimeNever);
  q.Push(42, [] {});
  q.Push(7, [] {});
  EXPECT_EQ(q.NextTime(), 7u);
}

TEST(EventQueueTest, SlotReuseAfterPop) {
  EventQueue q;
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 100; ++i) q.Push(i, [] {});
    while (!q.empty()) q.Pop();
  }
  EXPECT_TRUE(q.empty());
}

TEST(SimulatorTest, TimeAdvancesMonotonically) {
  Simulator sim;
  std::vector<SimTime> times;
  sim.Schedule(100, [&] { times.push_back(sim.now()); });
  sim.Schedule(50, [&] {
    times.push_back(sim.now());
    sim.Schedule(25, [&] { times.push_back(sim.now()); });
  });
  sim.Run();
  EXPECT_EQ(times, (std::vector<SimTime>{50, 75, 100}));
}

TEST(SimulatorTest, RunUntilStopsAtBoundary) {
  Simulator sim;
  int fired = 0;
  sim.Schedule(10, [&] { ++fired; });
  sim.Schedule(20, [&] { ++fired; });
  sim.Schedule(30, [&] { ++fired; });
  sim.RunUntil(20);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.now(), 20u);
  sim.RunUntil(100);
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(sim.now(), 100u);
}

TEST(SimulatorTest, ZeroDelayRunsAtCurrentTime) {
  Simulator sim;
  bool ran = false;
  sim.Schedule(10, [&] {
    sim.Schedule(0, [&] {
      ran = true;
      EXPECT_EQ(sim.now(), 10u);
    });
  });
  sim.Run();
  EXPECT_TRUE(ran);
}

TEST(SimulatorTest, ClearDropsPending) {
  Simulator sim;
  int fired = 0;
  sim.Schedule(10, [&] { ++fired; });
  sim.Clear();
  sim.Run();
  EXPECT_EQ(fired, 0);
}

TEST(SimulatorTest, EventCountTracked) {
  Simulator sim;
  for (int i = 0; i < 5; ++i) sim.Schedule(i, [] {});
  sim.Run();
  EXPECT_EQ(sim.events_processed(), 5u);
}

TEST(SimulatorTest, DeterministicReplay) {
  auto run = []() {
    Simulator sim;
    std::vector<int> order;
    for (int i = 0; i < 50; ++i) {
      sim.Schedule((i * 7) % 13, [&order, i] { order.push_back(i); });
    }
    sim.Run();
    return order;
  };
  EXPECT_EQ(run(), run());
}

// --- The event-queue tie-breaking contract --------------------------------
//
// Events are totally ordered by (time, domain, origin, seq): earlier time
// first; at one instant the control domain (0) precedes every data domain
// and lower data domains precede higher ones; events from one origin at
// one (time, domain) fire in the order they were scheduled. The untagged
// Push keeps the historical (time, schedule order) contract as the
// degenerate case (all tags zero, internal counter).

TEST(EventQueueTest, CanonicalKeyOrder) {
  EventQueue q;
  std::vector<int> order;
  auto tag = [&order](int id) {
    return [&order, id] { order.push_back(id); };
  };
  // Pushed shuffled; must pop time-major, then domain, origin, seq.
  q.Push(5, 2, 1, 7, tag(5));
  q.Push(5, 1, 3, 0, tag(3));
  q.Push(5, 0, 0, 9, tag(1));  // control domain first at the instant
  q.Push(5, 2, 1, 3, tag(4));
  q.Push(5, 1, 1, 5, tag(2));
  q.Push(4, 9, 9, 9, tag(0));  // earlier time beats every tag
  while (!q.empty()) q.Pop().fn();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5}));
}

TEST(EventQueueTest, SameOriginFiresInScheduleOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 8; ++i) {
    // One origin, one instant, one domain: seq is the schedule counter.
    q.Push(10, 1, 2, static_cast<uint64_t>(i),
           [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.Pop().fn();
  for (int i = 0; i < 8; ++i) EXPECT_EQ(order[i], i);
}

// --- Domain scheduling on the single-threaded Simulator -------------------

TEST(SimulatorTest, ControlRunsBeforeDataAtTheSameInstant) {
  Simulator sim;
  sim.set_lookahead(1000);
  std::vector<std::string> order;
  sim.ScheduleIn(DomainOfNode(0), 1000,
                 [&] { order.push_back("data"); });
  sim.ScheduleControl(1000, [&] { order.push_back("control"); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<std::string>{"control", "data"}));
}

TEST(SimulatorTest, ZeroLatencySelfSendStaysAtTheInstant) {
  // A zero-delay send within one domain does not cross any lookahead
  // boundary: it fires at the same simulated instant, inside the window.
  Simulator sim;
  sim.set_lookahead(1000);
  std::vector<SimTime> fired;
  sim.ScheduleIn(DomainOfNode(0), 150, [&] {
    sim.Schedule(0, [&] {
      fired.push_back(sim.now());
      EXPECT_EQ(sim.current_domain(), DomainOfNode(0));
    });
  });
  sim.Run();
  EXPECT_EQ(fired, (std::vector<SimTime>{150}));
}

TEST(SimulatorTest, ControlFromDataClampsPastTheWindow) {
  // ScheduleControl from a data-domain event may not land inside the
  // window that is executing: delay 0 at t=100 rounds up to the boundary.
  Simulator sim;
  sim.set_lookahead(1000);
  SimTime fired = 0;
  sim.ScheduleIn(DomainOfNode(0), 100, [&] {
    sim.ScheduleControl(0, [&] { fired = sim.now(); });
  });
  sim.Run();
  EXPECT_EQ(fired, 1000u);
}

TEST(SimulatorTest, ControlWithoutLookaheadIsPlainScheduling) {
  Simulator sim;  // lookahead 0: no grid
  SimTime fired = 0;
  sim.ScheduleControl(70, [&] { fired = sim.now(); });
  sim.Run();
  EXPECT_EQ(fired, 70u);
}

// --- ShardedSimulator: same semantics across real threads -----------------

// A deterministic message-passing program over `nodes` domains: every node
// launches a token that hops around the ring with one lookahead of latency
// per hop, and each arrival does a zero-latency self-send before forwarding.
// Returns the per-domain observation logs (each domain's sequence is the
// determinism contract; a global interleaving across domains is not).
std::vector<std::vector<int>> RunRingProgram(Scheduler* sim,
                                             uint32_t nodes) {
  constexpr SimTime kLat = 1000;
  std::vector<std::vector<int>> log(nodes + 1);
  std::function<void(uint32_t, int, int)> forward =
      [&](uint32_t node, int token, int hops) {
        if (hops == 0) return;
        const uint32_t next = (node + 1) % nodes;
        sim->ScheduleIn(
            DomainOfNode(next), sim->now() + kLat,
            [&, next, token, hops] {
              log[DomainOfNode(next)].push_back(token * 100 + hops);
              sim->Schedule(0, [&, next, token, hops] {
                log[DomainOfNode(next)].push_back(-(token * 100 + hops));
                forward(next, token, hops - 1);
              });
            });
      };
  for (uint32_t n = 0; n < nodes; ++n) {
    forward(n, static_cast<int>(n) + 1, 6);
  }
  sim->Run();
  return log;
}

TEST(ShardedSimulatorTest, MatchesSingleThreadedAtAnyShardCount) {
  constexpr uint32_t kNodes = 4;
  Simulator reference;
  reference.set_lookahead(1000);
  const auto want = RunRingProgram(&reference, kNodes);
  for (uint32_t shards : {1u, 2u, 3u, 4u}) {
    ShardedSimulator sim(shards, kNodes + 1);
    sim.set_lookahead(1000);
    const auto got = RunRingProgram(&sim, kNodes);
    EXPECT_EQ(got, want) << "shards=" << shards;
  }
}

TEST(ShardedSimulatorTest, BarrierEdgeEventBelongsToTheNextWindow) {
  // An event exactly on a window boundary runs in the window that starts
  // there — after any control event due at the same instant, which runs
  // while every shard is parked. (Control and data callbacks here are
  // sequenced by the window barrier, so one shared log is race-free.)
  ShardedSimulator sim(2, 3);
  sim.set_lookahead(1000);
  std::vector<std::string> order;
  sim.ScheduleIn(DomainOfNode(0), 999, [&] { order.push_back("data@999"); });
  sim.ScheduleIn(DomainOfNode(0), 1000,
                 [&] { order.push_back("data@1000"); });
  sim.ScheduleControl(1000, [&] { order.push_back("control@1000"); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<std::string>{"data@999", "control@1000",
                                             "data@1000"}));
  EXPECT_EQ(sim.now(), 1000u);
  EXPECT_EQ(sim.events_processed(), 3u);
}

TEST(ShardedSimulatorTest, RunUntilClearAndIdle) {
  ShardedSimulator sim(2, 3);
  sim.set_lookahead(10);
  int fired = 0;
  sim.ScheduleIn(DomainOfNode(0), 5, [&] { ++fired; });
  sim.ScheduleIn(DomainOfNode(1), 25, [&] { ++fired; });
  sim.RunUntil(20);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), 20u);
  EXPECT_FALSE(sim.idle());
  sim.Clear();
  EXPECT_TRUE(sim.idle());
  sim.Run();
  EXPECT_EQ(fired, 1);
}

TEST(CpuResourceTest, DomainTargetedSubmit) {
  Simulator sim;
  sim.set_lookahead(100);
  CpuResource cpu(&sim, DomainOfNode(2));
  SimTime done = 0;
  DomainId dom = 999;
  cpu.Submit(50, [&] {
    done = sim.now();
    dom = sim.current_domain();
  });
  sim.Run();
  EXPECT_EQ(done, 50u);
  EXPECT_EQ(dom, DomainOfNode(2));
}

TEST(CpuResourceTest, SerialExecution) {
  Simulator sim;
  CpuResource cpu(&sim);
  std::vector<SimTime> done_at;
  cpu.Submit(100, [&] { done_at.push_back(sim.now()); });
  cpu.Submit(50, [&] { done_at.push_back(sim.now()); });
  sim.Run();
  // Second item queues behind the first: 100, then 150.
  EXPECT_EQ(done_at, (std::vector<SimTime>{100, 150}));
}

TEST(CpuResourceTest, IdleGapThenWork) {
  Simulator sim;
  CpuResource cpu(&sim);
  std::vector<SimTime> done_at;
  cpu.Submit(10, [&] { done_at.push_back(sim.now()); });
  sim.Schedule(1000, [&] {
    cpu.Submit(10, [&] { done_at.push_back(sim.now()); });
  });
  sim.Run();
  EXPECT_EQ(done_at, (std::vector<SimTime>{10, 1010}));
}

TEST(CpuResourceTest, UtilizationAccounting) {
  Simulator sim;
  CpuResource cpu(&sim);
  cpu.Submit(300, [] {});
  sim.Run();
  sim.RunUntil(1000);
  EXPECT_DOUBLE_EQ(cpu.Utilization(), 0.3);
  EXPECT_EQ(cpu.total_busy(), 300u);
}

TEST(CpuResourceTest, SaturationModel) {
  // Offered load beyond capacity: completion rate pinned to CPU capacity —
  // the mechanism behind the Figure 9a throughput plateau.
  Simulator sim;
  CpuResource cpu(&sim);
  int completed = 0;
  for (int i = 0; i < 1000; ++i) {
    cpu.Submit(100, [&] { ++completed; });
  }
  sim.RunUntil(10000);
  EXPECT_EQ(completed, 100);  // 10000 ns / 100 ns each
}

}  // namespace
}  // namespace chiller::sim
