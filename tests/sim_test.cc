// Unit tests for the discrete-event simulator substrate.
#include <gtest/gtest.h>

#include <vector>

#include "sim/cpu_resource.h"
#include "sim/event_queue.h"
#include "sim/simulator.h"

namespace chiller::sim {
namespace {

TEST(EventQueueTest, OrdersByTime) {
  EventQueue q;
  std::vector<int> order;
  q.Push(30, [&] { order.push_back(3); });
  q.Push(10, [&] { order.push_back(1); });
  q.Push(20, [&] { order.push_back(2); });
  while (!q.empty()) q.Pop().fn();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, FifoAtSameInstant) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.Push(5, [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.Pop().fn();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventQueueTest, NextTimeReportsEarliest) {
  EventQueue q;
  EXPECT_EQ(q.NextTime(), kSimTimeNever);
  q.Push(42, [] {});
  q.Push(7, [] {});
  EXPECT_EQ(q.NextTime(), 7u);
}

TEST(EventQueueTest, SlotReuseAfterPop) {
  EventQueue q;
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 100; ++i) q.Push(i, [] {});
    while (!q.empty()) q.Pop();
  }
  EXPECT_TRUE(q.empty());
}

TEST(SimulatorTest, TimeAdvancesMonotonically) {
  Simulator sim;
  std::vector<SimTime> times;
  sim.Schedule(100, [&] { times.push_back(sim.now()); });
  sim.Schedule(50, [&] {
    times.push_back(sim.now());
    sim.Schedule(25, [&] { times.push_back(sim.now()); });
  });
  sim.Run();
  EXPECT_EQ(times, (std::vector<SimTime>{50, 75, 100}));
}

TEST(SimulatorTest, RunUntilStopsAtBoundary) {
  Simulator sim;
  int fired = 0;
  sim.Schedule(10, [&] { ++fired; });
  sim.Schedule(20, [&] { ++fired; });
  sim.Schedule(30, [&] { ++fired; });
  sim.RunUntil(20);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.now(), 20u);
  sim.RunUntil(100);
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(sim.now(), 100u);
}

TEST(SimulatorTest, ZeroDelayRunsAtCurrentTime) {
  Simulator sim;
  bool ran = false;
  sim.Schedule(10, [&] {
    sim.Schedule(0, [&] {
      ran = true;
      EXPECT_EQ(sim.now(), 10u);
    });
  });
  sim.Run();
  EXPECT_TRUE(ran);
}

TEST(SimulatorTest, ClearDropsPending) {
  Simulator sim;
  int fired = 0;
  sim.Schedule(10, [&] { ++fired; });
  sim.Clear();
  sim.Run();
  EXPECT_EQ(fired, 0);
}

TEST(SimulatorTest, EventCountTracked) {
  Simulator sim;
  for (int i = 0; i < 5; ++i) sim.Schedule(i, [] {});
  sim.Run();
  EXPECT_EQ(sim.events_processed(), 5u);
}

TEST(SimulatorTest, DeterministicReplay) {
  auto run = []() {
    Simulator sim;
    std::vector<int> order;
    for (int i = 0; i < 50; ++i) {
      sim.Schedule((i * 7) % 13, [&order, i] { order.push_back(i); });
    }
    sim.Run();
    return order;
  };
  EXPECT_EQ(run(), run());
}

TEST(CpuResourceTest, SerialExecution) {
  Simulator sim;
  CpuResource cpu(&sim);
  std::vector<SimTime> done_at;
  cpu.Submit(100, [&] { done_at.push_back(sim.now()); });
  cpu.Submit(50, [&] { done_at.push_back(sim.now()); });
  sim.Run();
  // Second item queues behind the first: 100, then 150.
  EXPECT_EQ(done_at, (std::vector<SimTime>{100, 150}));
}

TEST(CpuResourceTest, IdleGapThenWork) {
  Simulator sim;
  CpuResource cpu(&sim);
  std::vector<SimTime> done_at;
  cpu.Submit(10, [&] { done_at.push_back(sim.now()); });
  sim.Schedule(1000, [&] {
    cpu.Submit(10, [&] { done_at.push_back(sim.now()); });
  });
  sim.Run();
  EXPECT_EQ(done_at, (std::vector<SimTime>{10, 1010}));
}

TEST(CpuResourceTest, UtilizationAccounting) {
  Simulator sim;
  CpuResource cpu(&sim);
  cpu.Submit(300, [] {});
  sim.Run();
  sim.RunUntil(1000);
  EXPECT_DOUBLE_EQ(cpu.Utilization(), 0.3);
  EXPECT_EQ(cpu.total_busy(), 300u);
}

TEST(CpuResourceTest, SaturationModel) {
  // Offered load beyond capacity: completion rate pinned to CPU capacity —
  // the mechanism behind the Figure 9a throughput plateau.
  Simulator sim;
  CpuResource cpu(&sim);
  int completed = 0;
  for (int i = 0; i < 1000; ++i) {
    cpu.Submit(100, [&] { ++completed; });
  }
  sim.RunUntil(10000);
  EXPECT_EQ(completed, 100);  // 10000 ns / 100 ns each
}

}  // namespace
}  // namespace chiller::sim
