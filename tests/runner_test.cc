// Tests for the scenario subsystem: OptionMap, the workload/protocol
// registries, ScenarioRunner wiring, the ycsb workload's knobs, and
// SweepExecutor ordering.
#include <gtest/gtest.h>

#include <cstdio>
#include <limits>
#include <memory>
#include <string>

#include "runner/options.h"
#include "runner/registry.h"
#include "runner/runner.h"
#include "runner/sweep.h"
#include "workload/ycsb.h"

namespace chiller::runner {
namespace {

// ---------------------------------------------------------------------------
// OptionMap
// ---------------------------------------------------------------------------

TEST(OptionMapTest, TypedRoundtrips) {
  OptionMap o;
  o.Set("name", "zipf");
  o.Set("theta", 0.75);
  o.Set("ops", 42);
  o.Set("flag", true);
  EXPECT_EQ(o.GetString("name", ""), "zipf");
  EXPECT_DOUBLE_EQ(o.GetDouble("theta", 0.0), 0.75);
  EXPECT_EQ(o.GetInt("ops", 0), 42u);
  EXPECT_TRUE(o.GetBool("flag", false));
  EXPECT_TRUE(o.Has("theta"));
  EXPECT_FALSE(o.Has("absent"));
  EXPECT_EQ(o.GetInt("absent", 7), 7u);
}

TEST(OptionMapTest, DoubleRoundtripIsExact) {
  OptionMap o;
  const double v = 0.1234567890123456789;  // forces the %.17g path
  o.Set("x", v);
  EXPECT_EQ(o.GetDouble("x", 0.0), v);
}

TEST(OptionMapTest, KeysAreSortedAndToStringStable) {
  OptionMap o;
  o.Set("b", 2);
  o.Set("a", 1);
  EXPECT_EQ(o.Keys(), (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(o.ToString(), "a=1 b=2");
}

TEST(OptionMapTest, ExpectOnlyFlagsTypos) {
  OptionMap o;
  o.Set("theta", 0.5);
  o.Set("thetta", 0.5);
  EXPECT_TRUE(o.ExpectOnly({"theta"}).IsInvalidArgument());
  const Status st = o.ExpectOnly({"theta", "thetta"});
  EXPECT_TRUE(st.ok()) << st.ToString();
}

// ---------------------------------------------------------------------------
// Registries
// ---------------------------------------------------------------------------

TEST(RegistryTest, BuiltinsAreRegistered) {
  auto& workloads = WorkloadRegistry::Global();
  for (const char* name : {"tpcc", "instacart", "flight", "ycsb"}) {
    EXPECT_TRUE(workloads.Has(name)) << name;
  }
  auto& protocols = ProtocolRegistry::Global();
  for (const char* name : {"2pl", "occ", "chiller", "chiller-plain"}) {
    EXPECT_TRUE(protocols.Has(name)) << name;
  }
}

TEST(RegistryTest, DuplicateRegistrationIsRejected) {
  auto st = WorkloadRegistry::Global().Register(
      "tpcc", [](const ScenarioSpec&) -> StatusOr<std::unique_ptr<WorkloadBundle>> {
        return Status::Internal("never called");
      });
  EXPECT_TRUE(st.IsFailedPrecondition());
  EXPECT_TRUE(ProtocolRegistry::Global()
                  .Register("2pl",
                            [](cc::Cluster*, const partition::RecordPartitioner*,
                               cc::ReplicationManager*)
                                -> std::unique_ptr<cc::Protocol> {
                              return nullptr;
                            })
                  .IsFailedPrecondition());
}

TEST(RegistryTest, UnknownWorkloadNamesAlternatives) {
  ScenarioSpec spec;
  spec.workload = "not-a-workload";
  auto result = ScenarioRunner::Run(spec);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsInvalidArgument());
  EXPECT_NE(result.status().message().find("ycsb"), std::string::npos);
}

TEST(RegistryTest, UnknownOptionFailsTheScenario) {
  ScenarioSpec spec;
  spec.workload = "ycsb";
  spec.nodes = 2;
  spec.options.Set("not-a-knob", 1);
  auto result = ScenarioRunner::Run(spec);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsInvalidArgument());
  EXPECT_NE(result.status().message().find("not-a-knob"), std::string::npos);
}

// ---------------------------------------------------------------------------
// ScenarioRunner
// ---------------------------------------------------------------------------

ScenarioSpec SmallYcsb() {
  ScenarioSpec spec;
  spec.workload = "ycsb";
  spec.protocol = "chiller";
  spec.nodes = 3;
  spec.engines_per_node = 1;
  spec.concurrency = 2;
  spec.seed = 11;
  spec.warmup = kMillisecond;
  spec.measure = 4 * kMillisecond;
  spec.options.Set("keys_per_partition", 2000);
  spec.options.Set("theta", 0.9);
  return spec;
}

TEST(ScenarioRunnerTest, ValidateRejectsDegenerateSpecs) {
  ScenarioSpec spec = SmallYcsb();
  spec.nodes = 0;
  EXPECT_TRUE(ScenarioRunner::Validate(spec).IsInvalidArgument());
  spec = SmallYcsb();
  spec.concurrency = 0;
  EXPECT_TRUE(ScenarioRunner::Validate(spec).IsInvalidArgument());
  spec = SmallYcsb();
  spec.measure = 0;
  EXPECT_TRUE(ScenarioRunner::Validate(spec).IsInvalidArgument());
}

TEST(ScenarioRunnerTest, ValidateChecksLoadModelKnobs) {
  ScenarioSpec spec = SmallYcsb();
  spec.load_model = "nope";
  EXPECT_TRUE(ScenarioRunner::Validate(spec).IsInvalidArgument());

  spec = SmallYcsb();
  spec.load_model = "open";  // offered_tps still 0
  EXPECT_TRUE(ScenarioRunner::Validate(spec).IsInvalidArgument());
  spec.offered_tps = 50000;
  EXPECT_TRUE(ScenarioRunner::Validate(spec).ok());
  spec.queue_cap = 0;
  EXPECT_TRUE(ScenarioRunner::Validate(spec).IsInvalidArgument());
  spec.queue_cap = 8;
  spec.arrival = "bursty";
  EXPECT_TRUE(ScenarioRunner::Validate(spec).IsInvalidArgument());

  spec = SmallYcsb();
  spec.load_model = "batched";
  spec.batch_size = 0;
  EXPECT_TRUE(ScenarioRunner::Validate(spec).IsInvalidArgument());
  spec.batch_size = 4;
  EXPECT_TRUE(ScenarioRunner::Validate(spec).ok());
}

TEST(ScenarioRunnerTest, WireExposesUsableEnv) {
  auto env = ScenarioRunner::Wire(SmallYcsb());
  ASSERT_TRUE(env.ok()) << env.status().ToString();
  EXPECT_EQ(env->cluster->num_engines(), 3u);
  EXPECT_GT(env->cluster->TotalPrimaryRecords(), 0u);
  ASSERT_NE(env->protocol, nullptr);
  auto stats = env->driver->Run(kMillisecond, 2 * kMillisecond);
  env->driver->DrainAndStop();
  EXPECT_GT(stats.TotalCommits(), 0u);
}

TEST(ScenarioRunnerTest, RunsEveryWorkloadUnderEveryProtocol) {
  for (const std::string& workload : WorkloadRegistry::Global().Names()) {
    for (const std::string& protocol :
         ProtocolRegistry::Global().Names()) {
      ScenarioSpec spec;
      spec.workload = workload;
      spec.protocol = protocol;
      spec.nodes = 2;
      spec.engines_per_node = 1;
      spec.concurrency = 2;
      spec.warmup = kMillisecond;
      spec.measure = 2 * kMillisecond;
      if (workload == "instacart") {
        // Keep the layout build cheap: a small catalog and trace.
        spec.options.Set("num_products", 2000);
        spec.options.Set("num_customers", 5000);
        spec.options.Set("trace_txns", 500);
      }
      if (workload == "ycsb") spec.options.Set("keys_per_partition", 1000);
      auto result = ScenarioRunner::Run(spec);
      ASSERT_TRUE(result.ok())
          << workload << "/" << protocol << ": "
          << result.status().ToString();
      EXPECT_GT(result->stats.TotalCommits(), 0u)
          << workload << "/" << protocol;
    }
  }
}

// ---------------------------------------------------------------------------
// ycsb knobs
// ---------------------------------------------------------------------------

TEST(YcsbTest, ReadOnlyWorkloadNeverConflictsUnder2pl) {
  ScenarioSpec spec = SmallYcsb();
  spec.protocol = "2pl";
  spec.options.Set("read_ratio", 1.0);
  auto result = ScenarioRunner::Run(spec);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(result->stats.TotalCommits(), 0u);
  // Shared locks are compatible: an all-read mix cannot conflict-abort.
  EXPECT_EQ(result->stats.TotalConflictAborts(), 0u);
}

TEST(YcsbTest, DistributedRatioZeroStaysSinglePartition) {
  ScenarioSpec spec = SmallYcsb();
  spec.options.Set("distributed_ratio", 0.0);
  auto result = ScenarioRunner::Run(spec);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(result->stats.TotalCommits(), 0u);
  EXPECT_DOUBLE_EQ(result->stats.DistributedRatio(), 0.0);
}

TEST(YcsbTest, DistributedRatioOneSpansPartitions) {
  ScenarioSpec spec = SmallYcsb();
  spec.options.Set("distributed_ratio", 1.0);
  auto result = ScenarioRunner::Run(spec);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(result->stats.DistributedRatio(), 0.5);
}

TEST(YcsbTest, InvalidKnobsAreRejected) {
  ScenarioSpec spec = SmallYcsb();
  spec.options.Set("theta", 1.5);
  EXPECT_TRUE(ScenarioRunner::Run(spec).status().IsInvalidArgument());
  spec = SmallYcsb();
  spec.options.Set("read_ratio", -0.5);
  EXPECT_TRUE(ScenarioRunner::Run(spec).status().IsInvalidArgument());
  spec = SmallYcsb();
  spec.options.Set("ops_per_txn", 0);
  EXPECT_TRUE(ScenarioRunner::Run(spec).status().IsInvalidArgument());
}

TEST(YcsbTest, PartitionerPlacesAndFlagsHotKeys) {
  workload::ycsb::YcsbPartitioner part(/*num_partitions=*/4,
                                       /*keys_per_partition=*/100,
                                       /*hot_keys_per_partition=*/2);
  EXPECT_EQ(part.PartitionOf({workload::ycsb::kMain, 0}), 0u);
  EXPECT_EQ(part.PartitionOf({workload::ycsb::kMain, 101}), 1u);
  EXPECT_EQ(part.PartitionOf({workload::ycsb::kMain, 399}), 3u);
  EXPECT_TRUE(part.IsHot({workload::ycsb::kMain, 201}));
  EXPECT_FALSE(part.IsHot({workload::ycsb::kMain, 202}));
  EXPECT_EQ(part.LookupEntries(), 0u);
}

// ---------------------------------------------------------------------------
// SweepExecutor
// ---------------------------------------------------------------------------

TEST(SweepExecutorTest, ResultsFollowSpecOrderRegardlessOfJobs) {
  std::vector<ScenarioSpec> specs;
  for (uint64_t seed : {31, 7, 19, 3}) {
    ScenarioSpec spec = SmallYcsb();
    spec.seed = seed;
    spec.measure = 2 * kMillisecond;
    specs.push_back(std::move(spec));
  }
  for (uint32_t jobs : {1u, 4u}) {
    auto results = SweepExecutor(jobs).Run(specs);
    ASSERT_EQ(results.size(), specs.size());
    for (size_t i = 0; i < results.size(); ++i) {
      ASSERT_TRUE(results[i].ok()) << results[i].status().ToString();
      EXPECT_EQ(results[i]->spec.seed, specs[i].seed) << "jobs=" << jobs;
    }
  }
}

TEST(SweepExecutorTest, FailedSpecDoesNotPoisonTheSweep) {
  std::vector<ScenarioSpec> specs = {SmallYcsb(), SmallYcsb()};
  specs[0].workload = "nope";
  specs[0].measure = 2 * kMillisecond;
  specs[1].measure = 2 * kMillisecond;
  auto results = SweepExecutor(2).Run(specs);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_TRUE(results[0].status().IsInvalidArgument());
  ASSERT_TRUE(results[1].ok());
  EXPECT_GT(results[1]->stats.TotalCommits(), 0u);
}

TEST(SweepExecutorTest, ProgressFiresOncePerSpec) {
  std::vector<ScenarioSpec> specs = {SmallYcsb(), SmallYcsb(), SmallYcsb()};
  for (auto& s : specs) s.measure = 2 * kMillisecond;
  std::vector<int> seen(specs.size(), 0);
  SweepExecutor(2).Run(specs,
                       [&](size_t i, const StatusOr<ScenarioResult>& r) {
                         EXPECT_TRUE(r.ok());
                         ++seen[i];
                       });
  for (int count : seen) EXPECT_EQ(count, 1);
}

TEST(ParallelMapTest, MapsEveryIndexInOrder) {
  auto out = ParallelMap(3, 100, [](size_t i) { return i * i; });
  ASSERT_EQ(out.size(), 100u);
  for (size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * i);
}

TEST(ParallelMapTest, ZeroJobsResolvesToHardware) {
  EXPECT_GE(ResolveJobs(0), 1u);
  EXPECT_EQ(ResolveJobs(5), 5u);
}

// ---------------------------------------------------------------------------
// Phase plans and the adaptive loop
// ---------------------------------------------------------------------------

std::vector<Phase> AdaptivePlan() {
  return {
      Phase::Warmup(kMillisecond),
      Phase::Sample(2 * kMillisecond, /*rate=*/1.0),
      Phase::Replan(),
      Phase::Migrate(),
      Phase::Warmup(kMillisecond),
      Phase::Measure(4 * kMillisecond),
  };
}

TEST(PhasePlanTest, LegacySpecExpandsToWarmupMeasure) {
  ScenarioSpec spec = SmallYcsb();
  const auto plan = spec.EffectivePhases();
  ASSERT_EQ(plan.size(), 2u);
  EXPECT_EQ(plan[0], Phase::Warmup(spec.warmup));
  EXPECT_EQ(plan[1], Phase::Measure(spec.measure));
}

TEST(PhasePlanTest, ValidateRejectsMalformedPlans) {
  ScenarioSpec spec = SmallYcsb();
  spec.phases = {Phase::Warmup(kMillisecond)};  // nothing measured
  EXPECT_TRUE(ScenarioRunner::Validate(spec).IsInvalidArgument());

  spec.phases = {Phase::Replan(), Phase::Migrate(),
                 Phase::Measure(kMillisecond)};  // replan without a sample
  EXPECT_TRUE(ScenarioRunner::Validate(spec).IsInvalidArgument());

  spec.phases = {Phase::Sample(kMillisecond, 1.0), Phase::Replan(),
                 Phase::Measure(kMillisecond)};  // replan never migrated
  EXPECT_TRUE(ScenarioRunner::Validate(spec).IsInvalidArgument());

  spec.phases = {Phase::Sample(kMillisecond, 1.0), Phase::Migrate(),
                 Phase::Measure(kMillisecond)};  // migrate without replan
  EXPECT_TRUE(ScenarioRunner::Validate(spec).IsInvalidArgument());

  spec.phases = {Phase::Sample(kMillisecond, 2.0), Phase::Replan(),
                 Phase::Migrate(),
                 Phase::Measure(kMillisecond)};  // bad sample rate
  EXPECT_TRUE(ScenarioRunner::Validate(spec).IsInvalidArgument());

  spec.phases = {Phase::Measure(0)};  // zero-length timed phase
  EXPECT_TRUE(ScenarioRunner::Validate(spec).IsInvalidArgument());

  spec.phases = AdaptivePlan();
  spec.workload = "adaptive";
  EXPECT_TRUE(ScenarioRunner::Validate(spec).ok());
}

TEST(PhasePlanTest, ReplanNeedsAnAdaptiveWorkload) {
  ScenarioSpec spec = SmallYcsb();  // plain ycsb: frozen layout
  spec.phases = AdaptivePlan();
  auto result = ScenarioRunner::Run(spec);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsFailedPrecondition());
}

TEST(PhasePlanTest, MultiPhasePlanMatchesLegacyRun) {
  // A plan of {warmup, measure} spelled explicitly must reproduce the
  // implicit legacy shape bit for bit — the refactor is pure.
  ScenarioSpec legacy = SmallYcsb();
  ScenarioSpec phased = SmallYcsb();
  phased.phases = {Phase::Warmup(legacy.warmup),
                   Phase::Measure(legacy.measure)};
  auto a = ScenarioRunner::Run(legacy);
  auto b = ScenarioRunner::Run(phased);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->stats.TotalCommits(), b->stats.TotalCommits());
  EXPECT_EQ(a->stats.TotalConflictAborts(), b->stats.TotalConflictAborts());
  EXPECT_EQ(a->stats.window, b->stats.window);
}

TEST(PhasePlanTest, AdaptiveRelayoutBeatsStaticHashLayout) {
  // The acceptance property of the Section 4.1 loop: starting from a hash
  // layout on a contended ycsb workload, sample -> replan -> migrate must
  // end the measure phase with strictly more committed throughput than
  // the same spec without the adaptive phases.
  ScenarioSpec adaptive;
  adaptive.workload = "adaptive";
  adaptive.protocol = "chiller";
  adaptive.nodes = 4;
  adaptive.engines_per_node = 1;
  adaptive.concurrency = 4;
  adaptive.seed = 5;
  adaptive.options.Set("keys_per_partition", 5000);
  adaptive.options.Set("theta", 0.9);
  adaptive.phases = AdaptivePlan();

  ScenarioSpec still = adaptive;
  still.phases = {Phase::Warmup(5 * kMillisecond),
                  Phase::Measure(4 * kMillisecond)};

  auto moved = ScenarioRunner::Run(adaptive);
  auto frozen = ScenarioRunner::Run(still);
  ASSERT_TRUE(moved.ok()) << moved.status().ToString();
  ASSERT_TRUE(frozen.ok()) << frozen.status().ToString();
  EXPECT_GT(moved->adaptive.sampled_txns, 0u);
  EXPECT_GT(moved->adaptive.migration.moved_records, 0u);
  EXPECT_GT(moved->stats.TotalCommits(), frozen->stats.TotalCommits());
}

// ---------------------------------------------------------------------------
// Load models through the runner
// ---------------------------------------------------------------------------

TEST(LoadModelScenarioTest, OpenLoopBelowCapacityShedsNothing) {
  ScenarioSpec spec = SmallYcsb();
  spec.load_model = "open";
  spec.offered_tps = 30000;  // far below what 3 engines sustain
  spec.queue_cap = 32;
  auto result = ScenarioRunner::Run(spec);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(result->stats.admitted, 0u);
  EXPECT_EQ(result->stats.shed, 0u);
  EXPECT_DOUBLE_EQ(result->stats.ShedRate(), 0.0);
  EXPECT_GT(result->stats.TotalCommits(), 0u);
}

TEST(LoadModelScenarioTest, OpenLoopOverloadShedsAndBoundsTheQueue) {
  ScenarioSpec spec = SmallYcsb();
  spec.load_model = "open";
  spec.offered_tps = 10000000;  // hopeless overload
  spec.queue_cap = 4;
  auto result = ScenarioRunner::Run(spec);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const cc::RunStats& stats = result->stats;
  EXPECT_GT(stats.shed, 0u);
  EXPECT_GT(stats.ShedRate(), 0.5);
  // Admissions kept flowing even while the queue was shedding.
  EXPECT_GT(stats.admitted, 0u);
  // Delivered throughput is capacity-bound, far under the offered rate.
  EXPECT_LT(stats.Throughput(), spec.offered_tps * 0.5);
  EXPECT_GT(stats.TotalCommits(), 0u);
}

TEST(LoadModelScenarioTest, BatchedModelRunsThroughTheRunner) {
  ScenarioSpec spec = SmallYcsb();
  spec.load_model = "batched";
  spec.batch_size = 4;
  auto result = ScenarioRunner::Run(spec);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(result->stats.TotalCommits(), 0u);
  EXPECT_EQ(result->stats.admitted, 0u);  // no admission queue
}

TEST(LoadModelScenarioTest, OpenLoopSurvivesQuiesceAndMigrate) {
  // The satellite property: an open-loop driver can be quiesced mid-run
  // for a layout migration and resumed, with arrival clocks re-armed and
  // already-queued requests surviving the pause.
  ScenarioSpec spec;
  spec.workload = "adaptive";
  spec.protocol = "chiller";
  spec.nodes = 3;
  spec.engines_per_node = 1;
  spec.concurrency = 2;
  spec.seed = 9;
  spec.options.Set("keys_per_partition", 2000);
  spec.options.Set("theta", 0.95);
  spec.load_model = "open";
  spec.offered_tps = 120000;
  spec.queue_cap = 16;
  spec.phases = {
      Phase::Warmup(kMillisecond),
      Phase::Sample(2 * kMillisecond, /*rate=*/1.0),
      Phase::Replan(),
      Phase::Migrate(),
      Phase::Warmup(kMillisecond),
      Phase::Measure(4 * kMillisecond),
  };
  auto result = ScenarioRunner::Run(spec);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // The loop engaged (records moved through a quiesce) and the open loop
  // kept serving afterwards: the measure phase saw commits and arrivals.
  EXPECT_GT(result->adaptive.sampled_txns, 0u);
  EXPECT_GT(result->adaptive.migration.moved_records, 0u);
  EXPECT_GT(result->stats.TotalCommits(), 0u);
  EXPECT_GT(result->stats.admitted, 0u);
}

// ---------------------------------------------------------------------------
// Memory budget
// ---------------------------------------------------------------------------

TEST(FootprintTest, EstimatesScaleWithTopologyAndKnobs) {
  ScenarioSpec spec = SmallYcsb();
  const uint64_t small = EstimateFootprint(spec);
  EXPECT_GT(small, 0u);
  spec.options.Set("keys_per_partition", 20000);
  EXPECT_GT(EstimateFootprint(spec), small);

  ScenarioSpec tpcc;
  tpcc.workload = "tpcc";
  const uint64_t one_per_engine = EstimateFootprint(tpcc);
  EXPECT_GT(one_per_engine, 0u);
  tpcc.options.Set("num_warehouses", 80);
  EXPECT_GT(EstimateFootprint(tpcc), one_per_engine);

  ScenarioSpec unknown;
  unknown.workload = "not-a-workload";
  EXPECT_EQ(EstimateFootprint(unknown), 0u);
}

TEST(SweepExecutorTest, MemBudgetStillRunsEverySpecIdentically) {
  std::vector<ScenarioSpec> specs;
  for (uint64_t seed : {31, 7, 19, 3}) {
    ScenarioSpec spec = SmallYcsb();
    spec.seed = seed;
    spec.measure = 2 * kMillisecond;
    spec.footprint_hint = EstimateFootprint(spec);
    EXPECT_GT(spec.footprint_hint, 0u);
    specs.push_back(std::move(spec));
  }
  SweepExecutor unbounded(4);
  // A budget below a single spec's hint forces scenarios to run alone
  // (the progress guarantee) without changing any result.
  SweepExecutor starved(4);
  starved.set_mem_budget_bytes(1);
  auto a = unbounded.Run(specs);
  auto b = starved.Run(specs);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_TRUE(a[i].ok());
    ASSERT_TRUE(b[i].ok());
    EXPECT_EQ(a[i]->stats.TotalCommits(), b[i]->stats.TotalCommits());
    EXPECT_EQ(a[i]->stats.TotalConflictAborts(),
              b[i]->stats.TotalConflictAborts());
  }
}

// ---------------------------------------------------------------------------
// Footprint calibration cache (persists the learned EWMA factor across
// bench invocations) and the shards x jobs coordination.
// ---------------------------------------------------------------------------

TEST(FootprintCalibrationCacheTest, SaveLoadRoundtrips) {
  const std::string path =
      testing::TempDir() + "/chiller_footprint_cache_roundtrip";
  std::remove(path.c_str());

  double factor = 99.0;
  EXPECT_FALSE(FootprintCalibrationCache::Load(path, &factor));
  EXPECT_EQ(factor, 99.0) << "a miss must not touch the output";

  const double v = 1.2345678901234567;  // needs the full %.17g precision
  ASSERT_TRUE(FootprintCalibrationCache::Save(path, v));
  ASSERT_TRUE(FootprintCalibrationCache::Load(path, &factor));
  EXPECT_EQ(factor, v);
  std::remove(path.c_str());
}

TEST(FootprintCalibrationCacheTest, ClampBoundsTheFactor) {
  EXPECT_EQ(FootprintCalibrationCache::Clamp(0.0),
            FootprintCalibrationCache::kMinFactor);
  EXPECT_EQ(FootprintCalibrationCache::Clamp(1e9),
            FootprintCalibrationCache::kMaxFactor);
  EXPECT_EQ(FootprintCalibrationCache::Clamp(1.5), 1.5);
  // Corrupt inputs (NaN/inf from a truncated file) reset to neutral.
  EXPECT_EQ(FootprintCalibrationCache::Clamp(
                std::numeric_limits<double>::quiet_NaN()),
            1.0);
  EXPECT_EQ(FootprintCalibrationCache::Clamp(
                std::numeric_limits<double>::infinity()),
            1.0);

  // Save clamps, so a wild factor never round-trips out of range.
  const std::string path =
      testing::TempDir() + "/chiller_footprint_cache_clamp";
  ASSERT_TRUE(FootprintCalibrationCache::Save(path, 1e9));
  double factor = 0.0;
  ASSERT_TRUE(FootprintCalibrationCache::Load(path, &factor));
  EXPECT_EQ(factor, FootprintCalibrationCache::kMaxFactor);
  std::remove(path.c_str());
}

TEST(FootprintCalibrationCacheTest, RejectsGarbageFiles) {
  const std::string path =
      testing::TempDir() + "/chiller_footprint_cache_garbage";
  {
    FILE* f = fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    fputs("not a cache file\n", f);
    fclose(f);
  }
  double factor = 42.0;
  EXPECT_FALSE(FootprintCalibrationCache::Load(path, &factor));
  EXPECT_EQ(factor, 42.0);
  std::remove(path.c_str());
}

TEST(FootprintCalibrationCacheTest, PathSitsNextToTheReport) {
  EXPECT_EQ(FootprintCalibrationCache::PathNextTo("out/BENCH_fig9.json"),
            "out/.chiller_footprint_cache");
  EXPECT_EQ(FootprintCalibrationCache::PathNextTo("BENCH_fig9.json"),
            ".chiller_footprint_cache");
}

TEST(SweepExecutorTest, EffectiveJobsDividesByTheWidestShardCount) {
  SweepExecutor executor(8);
  std::vector<ScenarioSpec> specs(3, SmallYcsb());
  EXPECT_EQ(executor.EffectiveJobs(specs), 8u);
  specs[1].shards = 4;
  EXPECT_EQ(executor.EffectiveJobs(specs), 2u);
  specs[2].shards = 16;  // wider than jobs: never drops below one worker
  EXPECT_EQ(executor.EffectiveJobs(specs), 1u);
}

}  // namespace
}  // namespace chiller::runner
