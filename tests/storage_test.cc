// Unit tests for the storage substrate: lock words, buckets, tables, stores.
#include <gtest/gtest.h>

#include "storage/bucket.h"
#include "storage/lock_word.h"
#include "storage/partition_store.h"
#include "storage/record.h"
#include "storage/table.h"

namespace chiller::storage {
namespace {

TEST(LockWordTest, FreshWordIsFree) {
  uint64_t w = LockWord::MakeFree(0);
  EXPECT_TRUE(LockWord::IsFree(w));
  EXPECT_FALSE(LockWord::IsExclusive(w));
  EXPECT_EQ(LockWord::SharedCount(w), 0u);
  EXPECT_EQ(LockWord::Version(w), 0u);
}

TEST(LockWordTest, SharedAcquireRelease) {
  uint64_t w = LockWord::MakeFree(5);
  EXPECT_TRUE(LockWord::TryAcquireShared(&w));
  EXPECT_TRUE(LockWord::TryAcquireShared(&w));
  EXPECT_EQ(LockWord::SharedCount(w), 2u);
  EXPECT_EQ(LockWord::Version(w), 5u);
  LockWord::ReleaseShared(&w);
  LockWord::ReleaseShared(&w);
  EXPECT_TRUE(LockWord::IsFree(w));
  EXPECT_EQ(LockWord::Version(w), 5u);  // shared release never bumps
}

TEST(LockWordTest, ExclusiveBlocksEverything) {
  uint64_t w = LockWord::MakeFree(0);
  EXPECT_TRUE(LockWord::TryAcquireExclusive(&w));
  EXPECT_FALSE(LockWord::TryAcquireExclusive(&w));
  EXPECT_FALSE(LockWord::TryAcquireShared(&w));
}

TEST(LockWordTest, SharedBlocksExclusive) {
  uint64_t w = LockWord::MakeFree(0);
  EXPECT_TRUE(LockWord::TryAcquireShared(&w));
  EXPECT_FALSE(LockWord::TryAcquireExclusive(&w));
}

TEST(LockWordTest, VersionBumpOnModifiedRelease) {
  uint64_t w = LockWord::MakeFree(7);
  ASSERT_TRUE(LockWord::TryAcquireExclusive(&w));
  LockWord::ReleaseExclusive(&w, /*modified=*/true);
  EXPECT_EQ(LockWord::Version(w), 8u);
  ASSERT_TRUE(LockWord::TryAcquireExclusive(&w));
  LockWord::ReleaseExclusive(&w, /*modified=*/false);
  EXPECT_EQ(LockWord::Version(w), 8u);
}

TEST(LockWordTest, VersionWrapsAt48Bits) {
  uint64_t w = LockWord::MakeFree(LockWord::kVersionMask);
  ASSERT_TRUE(LockWord::TryAcquireExclusive(&w));
  LockWord::ReleaseExclusive(&w, true);
  EXPECT_EQ(LockWord::Version(w), 0u);
  EXPECT_TRUE(LockWord::IsFree(w));
}

TEST(LockWordTest, ManySharedHolders) {
  uint64_t w = LockWord::MakeFree(0);
  for (int i = 0; i < 1000; ++i) ASSERT_TRUE(LockWord::TryAcquireShared(&w));
  EXPECT_EQ(LockWord::SharedCount(w), 1000u);
  for (int i = 0; i < 1000; ++i) LockWord::ReleaseShared(&w);
  EXPECT_TRUE(LockWord::IsFree(w));
}

TEST(RecordTest, FieldsRoundTrip) {
  Record r(4);
  r.Set(0, 42);
  r.Set(3, -7);
  r.Add(0, 8);
  EXPECT_EQ(r.Get(0), 50);
  EXPECT_EQ(r.Get(3), -7);
  EXPECT_EQ(r.num_fields(), 4u);
  EXPECT_EQ(r.wire_bytes(), 32u);
}

TEST(RecordTest, ExplicitWireSize) {
  Record r(2, 300);
  EXPECT_EQ(r.wire_bytes(), 300u);
}

TEST(BucketTest, InsertFindErase) {
  Bucket b;
  EXPECT_TRUE(b.Insert(1, Record(2)));
  EXPECT_TRUE(b.Insert(2, Record(2)));
  EXPECT_FALSE(b.Insert(1, Record(2)));  // duplicate
  ASSERT_NE(b.Find(1), nullptr);
  EXPECT_EQ(b.Find(3), nullptr);
  EXPECT_TRUE(b.Erase(1));
  EXPECT_FALSE(b.Erase(1));
  EXPECT_EQ(b.num_records(), 1u);
}

TEST(BucketTest, LockInterface) {
  Bucket b;
  EXPECT_TRUE(b.TryLockExclusive());
  EXPECT_FALSE(b.TryLockShared());
  b.UnlockExclusive(/*modified=*/true);
  EXPECT_EQ(b.version(), 1u);
  EXPECT_TRUE(b.TryLockShared());
  b.UnlockShared();
}

TEST(TableTest, BucketStableForKey) {
  Table t(TableSpec{.name = "x", .id = 0, .num_fields = 1,
                    .buckets_per_partition = 64});
  for (Key k = 0; k < 100; ++k) {
    EXPECT_EQ(t.BucketIndex(k), t.BucketIndex(k));
    EXPECT_LT(t.BucketIndex(k), 64u);
  }
}

TEST(TableTest, InsertAndFind) {
  Table t(TableSpec{.name = "x", .id = 0, .num_fields = 2,
                    .buckets_per_partition = 16});
  for (Key k = 0; k < 100; ++k) {
    Record r(2);
    r.Set(0, static_cast<int64_t>(k) * 10);
    ASSERT_TRUE(t.Insert(k, r).ok());
  }
  EXPECT_EQ(t.num_records(), 100u);
  for (Key k = 0; k < 100; ++k) {
    Record* r = t.Find(k);
    ASSERT_NE(r, nullptr);
    EXPECT_EQ(r->Get(0), static_cast<int64_t>(k) * 10);
  }
  EXPECT_TRUE(t.Insert(5, Record(2)).IsFailedPrecondition());
  EXPECT_TRUE(t.Erase(5).ok());
  EXPECT_TRUE(t.Erase(5).IsNotFound());
  EXPECT_EQ(t.num_records(), 99u);
}

TEST(TableTest, OverflowSharesBucketLock) {
  // Two keys in the same bucket share one lock: locking one blocks the other
  // (bucket-granularity locking, Section 6).
  Table t(TableSpec{.name = "x", .id = 0, .num_fields = 1,
                    .buckets_per_partition = 1});
  ASSERT_TRUE(t.Insert(1, Record(1)).ok());
  ASSERT_TRUE(t.Insert(2, Record(1)).ok());
  EXPECT_EQ(t.BucketFor(1), t.BucketFor(2));
  ASSERT_TRUE(t.BucketFor(1)->TryLockExclusive());
  EXPECT_FALSE(t.BucketFor(2)->TryLockExclusive());
  t.BucketFor(1)->UnlockExclusive(false);
}

std::vector<TableSpec> TwoTableSchema() {
  return {TableSpec{.name = "a", .id = 0, .num_fields = 2,
                    .buckets_per_partition = 64},
          TableSpec{.name = "b", .id = 3, .num_fields = 1,
                    .buckets_per_partition = 64}};
}

TEST(PartitionStoreTest, SparseTableIds) {
  PartitionStore store(0, TwoTableSchema());
  EXPECT_EQ(store.table(0)->spec().name, "a");
  EXPECT_EQ(store.table(3)->spec().name, "b");
}

TEST(PartitionStoreTest, LockUnlockTracking) {
  PartitionStore store(0, TwoTableSchema());
  const RecordId rid{0, 42};
  ASSERT_TRUE(store.Insert(rid, Record(2)).ok());
  EXPECT_TRUE(store.TryLock(rid, LockMode::kExclusive).ok());
  EXPECT_EQ(store.locks_held(), 1u);
  EXPECT_TRUE(store.TryLock(rid, LockMode::kShared).IsAborted());
  store.Unlock(rid, LockMode::kExclusive, /*modified=*/true);
  EXPECT_EQ(store.locks_held(), 0u);
  EXPECT_EQ(store.VersionOf(rid), 1u);
}

TEST(PartitionStoreTest, NoWaitConflictAcrossKeysInBucket) {
  std::vector<TableSpec> schema = {TableSpec{
      .name = "a", .id = 0, .num_fields = 1, .buckets_per_partition = 1}};
  PartitionStore store(0, schema);
  ASSERT_TRUE(store.Insert(RecordId{0, 1}, Record(1)).ok());
  ASSERT_TRUE(store.Insert(RecordId{0, 2}, Record(1)).ok());
  ASSERT_TRUE(store.TryLock(RecordId{0, 1}, LockMode::kExclusive).ok());
  EXPECT_TRUE(store.TryLock(RecordId{0, 2}, LockMode::kShared).IsAborted());
  store.Unlock(RecordId{0, 1}, LockMode::kExclusive, false);
}

TEST(PartitionStoreTest, RecordCount) {
  PartitionStore store(0, TwoTableSchema());
  ASSERT_TRUE(store.Insert(RecordId{0, 1}, Record(2)).ok());
  ASSERT_TRUE(store.Insert(RecordId{3, 1}, Record(1)).ok());
  EXPECT_EQ(store.num_records(), 2u);
  ASSERT_TRUE(store.Erase(RecordId{3, 1}).ok());
  EXPECT_EQ(store.num_records(), 1u);
}

// ---------------------------------------------------------------------------
// Record migration API (online repartitioning)
// ---------------------------------------------------------------------------

TEST(PartitionStoreTest, ExtractInstallRoundtrip) {
  PartitionStore from(0, TwoTableSchema());
  PartitionStore to(1, TwoTableSchema());
  Record r(2);
  r.Set(0, 11);
  r.Set(1, 22);
  ASSERT_TRUE(from.Insert(RecordId{0, 7}, r).ok());

  auto extracted = from.ExtractRecord(RecordId{0, 7});
  ASSERT_TRUE(extracted.ok()) << extracted.status().ToString();
  EXPECT_EQ(from.num_records(), 0u);
  EXPECT_EQ(from.Find(RecordId{0, 7}), nullptr);

  ASSERT_TRUE(
      to.InstallRecord(RecordId{0, 7}, std::move(extracted).value()).ok());
  Record* moved = to.Find(RecordId{0, 7});
  ASSERT_NE(moved, nullptr);
  EXPECT_EQ(moved->Get(0), 11);
  EXPECT_EQ(moved->Get(1), 22);
}

TEST(PartitionStoreTest, ExtractMissingRecordIsNotFound) {
  PartitionStore store(0, TwoTableSchema());
  EXPECT_TRUE(store.ExtractRecord(RecordId{0, 9}).status().IsNotFound());
}

TEST(PartitionStoreTest, MigrationRefusesLockedBuckets) {
  PartitionStore store(0, TwoTableSchema());
  ASSERT_TRUE(store.Insert(RecordId{0, 4}, Record(2)).ok());
  ASSERT_TRUE(store.TryLock(RecordId{0, 4}, LockMode::kShared).ok());
  EXPECT_TRUE(
      store.ExtractRecord(RecordId{0, 4}).status().IsFailedPrecondition());
  // Locking is per bucket: another key colliding into the locked bucket
  // is just as unmovable.
  Key collider = 5;
  while (store.table(0)->BucketIndex(collider) !=
         store.table(0)->BucketIndex(4)) {
    ++collider;
  }
  EXPECT_TRUE(store.InstallRecord(RecordId{0, collider}, Record(2))
                  .IsFailedPrecondition());
  store.Unlock(RecordId{0, 4}, LockMode::kShared, false);
  EXPECT_TRUE(store.ExtractRecord(RecordId{0, 4}).ok());
}

TEST(PartitionStoreTest, InstallDuplicateIsFailedPrecondition) {
  PartitionStore store(0, TwoTableSchema());
  ASSERT_TRUE(store.Insert(RecordId{0, 4}, Record(2)).ok());
  EXPECT_TRUE(store.InstallRecord(RecordId{0, 4}, Record(2))
                  .IsFailedPrecondition());
}

}  // namespace
}  // namespace chiller::storage
