// Tests for the admission-scheduling stage (schedule/scheduler.h): the
// registry, classification and routing of the built-in policies, the shed
// victim rule, validation plumbing, and the end-to-end behavior of
// scheduled admission under the open and batched load models.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "runner/runner.h"
#include "schedule/scheduler.h"
#include "workload/ycsb.h"

namespace chiller::schedule {
namespace {

// ---------------------------------------------------------------------------
// Helpers
// ---------------------------------------------------------------------------

/// A transaction touching exactly `keys` on the ycsb main table, with
/// accesses initialized and keys resolved, the state Classify() requires
/// (Driver::Draw produces the same shape).
txn::Transaction MakeTxn(
    const std::vector<std::pair<Key, bool>>& keys /* (key, is_write) */) {
  txn::Transaction t;
  for (const auto& [key, is_write] : keys) {
    txn::Operation op;
    op.type = is_write ? txn::OpType::kUpdate : txn::OpType::kRead;
    op.table = workload::ycsb::kMain;
    op.mode = is_write ? storage::LockMode::kExclusive
                       : storage::LockMode::kShared;
    op.key_fn = [key](const txn::TxnContext&) { return key; };
    t.ops.push_back(std::move(op));
  }
  t.InitAccesses();
  t.ResolveReadyKeys();
  return t;
}

/// 4 engines over 4 partitions of 100 keys each; keys {p*100, p*100+1}
/// are partition p's hot set.
SchedulerContext TestContext(const partition::RecordPartitioner* part,
                             uint32_t classes = 0) {
  SchedulerContext ctx;
  ctx.num_engines = 4;
  ctx.classes = classes;
  ctx.partitioner = part;
  return ctx;
}

std::unique_ptr<Scheduler> MustMake(const std::string& name,
                                    const SchedulerContext& ctx) {
  auto sched = SchedulerRegistry::Global().Make(name, ctx);
  EXPECT_TRUE(sched.ok()) << sched.status().ToString();
  return std::move(sched).value();
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

TEST(SchedulerRegistryTest, BuiltinsAreRegistered) {
  auto& registry = SchedulerRegistry::Global();
  for (const char* name : {"fifo", "hash-affinity", "batch-pack"}) {
    EXPECT_TRUE(registry.Has(name)) << name;
  }
}

TEST(SchedulerRegistryTest, UnknownNameListsAlternatives) {
  auto sched = SchedulerRegistry::Global().Make("not-a-scheduler",
                                                SchedulerContext{});
  ASSERT_FALSE(sched.ok());
  EXPECT_TRUE(sched.status().IsInvalidArgument());
  EXPECT_NE(sched.status().message().find("fifo"), std::string::npos);
  EXPECT_NE(sched.status().message().find("hash-affinity"),
            std::string::npos);
}

TEST(SchedulerRegistryTest, FifoNeedsNoPartitioner) {
  auto sched = SchedulerRegistry::Global().Make("fifo", SchedulerContext{});
  ASSERT_TRUE(sched.ok()) << sched.status().ToString();
  EXPECT_TRUE(sched.value()->Passthrough());
  EXPECT_FALSE(sched.value()->SerializeClasses());
}

TEST(SchedulerRegistryTest, HeatPoliciesRequireAPartitioner) {
  for (const char* name : {"hash-affinity", "batch-pack"}) {
    auto sched = SchedulerRegistry::Global().Make(name, SchedulerContext{});
    ASSERT_FALSE(sched.ok()) << name;
    EXPECT_TRUE(sched.status().IsInvalidArgument()) << name;
  }
}

TEST(SchedulerRegistryTest, DuplicateRegistrationIsRejected) {
  auto st = SchedulerRegistry::Global().Register(
      "fifo", [](const SchedulerContext&)
                  -> StatusOr<std::unique_ptr<Scheduler>> {
        return Status::InvalidArgument("never called");
      });
  EXPECT_TRUE(st.IsFailedPrecondition());
}

// ---------------------------------------------------------------------------
// Classification
// ---------------------------------------------------------------------------

class ClassifyTest : public ::testing::Test {
 protected:
  workload::ycsb::YcsbPartitioner part_{/*num_partitions=*/4,
                                        /*keys_per_partition=*/100,
                                        /*hot_keys_per_partition=*/2};
};

TEST_F(ClassifyTest, ColdTransactionsAreCold) {
  auto sched = MustMake("hash-affinity", TestContext(&part_));
  const txn::Transaction t =
      MakeTxn({{10, false}, {250, true}, {399, false}});  // no hot keys
  EXPECT_EQ(sched->Classify(t), kColdClass);
}

TEST_F(ClassifyTest, ClassificationIsDeterministic) {
  auto sched = MustMake("hash-affinity", TestContext(&part_));
  const txn::Transaction a = MakeTxn({{200, true}, {55, false}});
  const txn::Transaction b = MakeTxn({{200, true}, {55, false}});
  const uint32_t cls = sched->Classify(a);
  EXPECT_NE(cls, kColdClass);
  EXPECT_EQ(cls, sched->Classify(b));
  // A second scheduler instance over the same context agrees: the class is
  // a pure function of (record, universe), never of instance state.
  auto again = MustMake("hash-affinity", TestContext(&part_));
  EXPECT_EQ(cls, again->Classify(a));
}

TEST_F(ClassifyTest, OnlyHotWritesClassify) {
  auto sched = MustMake("hash-affinity", TestContext(&part_));
  // Reads hot key 0 first in op order but *writes* hot key 100: the
  // written record is the conflict predictor.
  const txn::Transaction mixed = MakeTxn({{0, false}, {100, true}});
  const txn::Transaction write_only = MakeTxn({{100, true}});
  EXPECT_EQ(sched->Classify(mixed), sched->Classify(write_only));
  // Hot *reads* share their lock and cannot storm: they stay cold rather
  // than serializing against the record's writers.
  const txn::Transaction read_only = MakeTxn({{0, false}, {201, false}});
  EXPECT_EQ(sched->Classify(read_only), kColdClass);
}

TEST_F(ClassifyTest, DistinctHotRecordsLandInDistinctClasses) {
  auto sched = MustMake("hash-affinity", TestContext(&part_));
  // Not guaranteed for arbitrary records (the universe is finite), but the
  // four partition-0-rank-0 keys of this layout must not all collide.
  const uint32_t c0 = sched->Classify(MakeTxn({{0, true}}));
  const uint32_t c1 = sched->Classify(MakeTxn({{100, true}}));
  const uint32_t c2 = sched->Classify(MakeTxn({{200, true}}));
  EXPECT_FALSE(c0 == c1 && c1 == c2);
}

TEST_F(ClassifyTest, ClassUniverseIsConfigurable) {
  auto sched = MustMake("hash-affinity", TestContext(&part_, /*classes=*/1));
  // One class: every hot transaction shares it, cold stays cold.
  EXPECT_EQ(sched->Classify(MakeTxn({{0, true}})),
            sched->Classify(MakeTxn({{301, true}})));
  EXPECT_EQ(sched->Classify(MakeTxn({{50, true}})), kColdClass);
}

// ---------------------------------------------------------------------------
// Routing
// ---------------------------------------------------------------------------

TEST_F(ClassifyTest, HashAffinityRoutesHotWorkToTheOwnerEngine) {
  auto sched = MustMake("hash-affinity", TestContext(&part_));
  EXPECT_TRUE(sched->SerializeClasses());
  for (Key hot : {Key{0}, Key{100}, Key{201}, Key{300}}) {
    const txn::Transaction t = MakeTxn({{hot, true}, {50, false}});
    const uint32_t cls = sched->Classify(t);
    const EngineId owner =
        static_cast<EngineId>(part_.PartitionOf({workload::ycsb::kMain, hot}));
    // The same engine regardless of where the transaction arrived.
    for (EngineId arrival = 0; arrival < 4; ++arrival) {
      EXPECT_EQ(sched->Route(t, cls, arrival), owner) << hot;
    }
  }
}

TEST_F(ClassifyTest, ColdWorkStaysOnItsArrivalEngine) {
  auto sched = MustMake("hash-affinity", TestContext(&part_));
  const txn::Transaction t = MakeTxn({{10, true}, {250, false}});
  for (EngineId arrival = 0; arrival < 4; ++arrival) {
    EXPECT_EQ(sched->Route(t, kColdClass, arrival), arrival);
  }
}

TEST_F(ClassifyTest, BatchPackClassifiesButNeverSteers) {
  auto sched = MustMake("batch-pack", TestContext(&part_));
  EXPECT_FALSE(sched->SerializeClasses());
  const txn::Transaction hot = MakeTxn({{200, true}});
  EXPECT_NE(sched->Classify(hot), kColdClass);
  for (EngineId arrival = 0; arrival < 4; ++arrival) {
    EXPECT_EQ(sched->Route(hot, sched->Classify(hot), arrival), arrival);
  }
}

// ---------------------------------------------------------------------------
// Shed policy
// ---------------------------------------------------------------------------

TEST(ShedPolicyTest, ParseAndName) {
  EXPECT_EQ(ParseShedPolicy("drop-new").value(), ShedPolicy::kDropNew);
  EXPECT_EQ(ParseShedPolicy("drop-cold").value(), ShedPolicy::kDropCold);
  EXPECT_EQ(ParseShedPolicy("drop-hot").value(), ShedPolicy::kDropHot);
  EXPECT_STREQ(ShedPolicyName(ShedPolicy::kDropCold), "drop-cold");
  auto bad = ParseShedPolicy("drop-everything");
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("drop-cold"), std::string::npos);
}

TEST(ShedPolicyTest, DropNewAlwaysShedsTheArrival) {
  EXPECT_EQ(PickVictim({false, true, false}, true, ShedPolicy::kDropNew), -1);
  EXPECT_EQ(PickVictim({false, true, false}, false, ShedPolicy::kDropNew),
            -1);
  EXPECT_EQ(PickVictim({}, true, ShedPolicy::kDropNew), -1);
}

TEST(ShedPolicyTest, DropColdEvictsTheNewestColdForAHotArrival) {
  // queue (oldest..newest): cold hot cold — the newest cold entry goes.
  EXPECT_EQ(PickVictim({false, true, false}, true, ShedPolicy::kDropCold), 2);
  EXPECT_EQ(PickVictim({false, true, true}, true, ShedPolicy::kDropCold), 0);
  // A cold arrival never displaces anyone under drop-cold.
  EXPECT_EQ(PickVictim({false, true, false}, false, ShedPolicy::kDropCold),
            -1);
  // No cold entry to evict: the hot arrival is shed.
  EXPECT_EQ(PickVictim({true, true}, true, ShedPolicy::kDropCold), -1);
}

TEST(ShedPolicyTest, DropHotIsTheMirrorImage) {
  EXPECT_EQ(PickVictim({true, false, true}, false, ShedPolicy::kDropHot), 2);
  EXPECT_EQ(PickVictim({true, false, true}, true, ShedPolicy::kDropHot), -1);
  EXPECT_EQ(PickVictim({false, false}, false, ShedPolicy::kDropHot), -1);
}

// ---------------------------------------------------------------------------
// Validation
// ---------------------------------------------------------------------------

TEST(SchedulerValidationTest, UnknownSchedulerNamesAlternatives) {
  const Status st = ValidateSchedulerNames("not-a-scheduler", "drop-new");
  ASSERT_TRUE(st.IsInvalidArgument());
  EXPECT_NE(st.message().find("fifo"), std::string::npos);
}

TEST(SchedulerValidationTest, UnknownShedPolicyNamesAlternatives) {
  const Status st = ValidateSchedulerNames("hash-affinity", "drop-all");
  ASSERT_TRUE(st.IsInvalidArgument());
  EXPECT_NE(st.message().find("drop-cold"), std::string::npos);
}

TEST(SchedulerValidationTest, TemperatureShedPoliciesNeedAClassifier) {
  const Status st = ValidateSchedulerNames("fifo", "drop-cold");
  ASSERT_TRUE(st.IsInvalidArgument());
  EXPECT_NE(st.message().find("hash-affinity"), std::string::npos);
}

TEST(SchedulerValidationTest, ModelCompatibility) {
  EXPECT_TRUE(
      ValidateSchedulerParams("fifo", "drop-new", "closed").ok());
  EXPECT_TRUE(
      ValidateSchedulerParams("hash-affinity", "drop-cold", "open").ok());
  EXPECT_TRUE(
      ValidateSchedulerParams("batch-pack", "drop-new", "batched").ok());
  EXPECT_TRUE(ValidateSchedulerParams("hash-affinity", "drop-new", "closed")
                  .IsInvalidArgument());
  EXPECT_TRUE(ValidateSchedulerParams("batch-pack", "drop-new", "open")
                  .IsInvalidArgument());
}

TEST(SchedulerValidationTest, RunnerValidateRejectsBadSchedulerSpecs) {
  runner::ScenarioSpec spec;
  spec.scheduler = "not-a-scheduler";
  Status st = runner::ScenarioRunner::Validate(spec);
  ASSERT_TRUE(st.IsInvalidArgument());
  EXPECT_NE(st.message().find("fifo"), std::string::npos);

  spec = runner::ScenarioSpec{};
  spec.shed_policy = "drop-everything";
  EXPECT_TRUE(runner::ScenarioRunner::Validate(spec).IsInvalidArgument());

  // hash-affinity on the default closed model: rejected with a pointer to
  // the open model.
  spec = runner::ScenarioSpec{};
  spec.scheduler = "hash-affinity";
  st = runner::ScenarioRunner::Validate(spec);
  ASSERT_TRUE(st.IsInvalidArgument());
  EXPECT_NE(st.message().find("open"), std::string::npos);
}

// ---------------------------------------------------------------------------
// End to end
// ---------------------------------------------------------------------------

runner::ScenarioSpec OpenYcsb(double offered_tps) {
  runner::ScenarioSpec spec;
  spec.workload = "ycsb";
  spec.protocol = "2pl";
  spec.nodes = 4;
  spec.engines_per_node = 1;
  spec.concurrency = 2;
  spec.seed = 7;
  spec.warmup = kMillisecond;
  spec.measure = 4 * kMillisecond;
  spec.load_model = "open";
  spec.offered_tps = offered_tps;
  spec.queue_cap = 8;
  spec.options.Set("keys_per_partition", 1000);
  spec.options.Set("theta", 0.95);
  return spec;
}

TEST(ScheduledAdmissionTest, HashAffinityCommitsUnderTheOpenModel) {
  runner::ScenarioSpec spec = OpenYcsb(/*offered_tps=*/200000.0);
  spec.scheduler = "hash-affinity";
  auto result = runner::ScenarioRunner::Run(spec);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(result->stats.TotalCommits(), 0u);
  EXPECT_GT(result->stats.admitted, 0u);
}

TEST(ScheduledAdmissionTest, OverloadShedsAndStillCommits) {
  runner::ScenarioSpec spec = OpenYcsb(/*offered_tps=*/5e6);
  spec.scheduler = "hash-affinity";
  spec.shed_policy = "drop-cold";
  spec.queue_cap = 4;
  auto result = runner::ScenarioRunner::Run(spec);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(result->stats.TotalCommits(), 0u);
  EXPECT_GT(result->stats.shed, 0u);
}

TEST(ScheduledAdmissionTest, DropColdAndDropHotDiverge) {
  runner::ScenarioSpec cold = OpenYcsb(/*offered_tps=*/5e6);
  cold.scheduler = "hash-affinity";
  cold.shed_policy = "drop-cold";
  cold.queue_cap = 4;
  runner::ScenarioSpec hot = cold;
  hot.shed_policy = "drop-hot";
  auto cold_result = runner::ScenarioRunner::Run(cold);
  auto hot_result = runner::ScenarioRunner::Run(hot);
  ASSERT_TRUE(cold_result.ok()) << cold_result.status().ToString();
  ASSERT_TRUE(hot_result.ok()) << hot_result.status().ToString();
  EXPECT_GT(cold_result->stats.shed, 0u);
  EXPECT_GT(hot_result->stats.shed, 0u);
  // The policies keep opposite halves of the offered mix, so the committed
  // mix must differ (both runs share every other knob and the seed).
  EXPECT_NE(cold_result->stats.TotalCommits(),
            hot_result->stats.TotalCommits());
}

TEST(ScheduledAdmissionTest, BatchPackLowersConflictAbortsAtHighSkew) {
  runner::ScenarioSpec spec;
  spec.workload = "ycsb";
  spec.protocol = "2pl";
  spec.nodes = 2;
  spec.engines_per_node = 2;
  spec.concurrency = 4;
  spec.seed = 5;
  spec.warmup = kMillisecond;
  spec.measure = 6 * kMillisecond;
  spec.load_model = "batched";
  spec.batch_size = 8;
  spec.options.Set("keys_per_partition", 1000);
  spec.options.Set("theta", 0.99);
  spec.options.Set("distributed_ratio", 0.0);
  // Single-write transactions make the predicted class *exactly* the
  // conflict: every write-write collision inside a fifo batch is one
  // batch-pack provably defers (multi-op transactions can still conflict
  // through their second-hottest record, which the single-class predictor
  // deliberately ignores).
  spec.options.Set("ops_per_txn", 1);
  spec.options.Set("read_ratio", 0.0);

  auto fifo = runner::ScenarioRunner::Run(spec);
  spec.scheduler = "batch-pack";
  auto packed = runner::ScenarioRunner::Run(spec);
  ASSERT_TRUE(fifo.ok()) << fifo.status().ToString();
  ASSERT_TRUE(packed.ok()) << packed.status().ToString();
  EXPECT_GT(packed->stats.TotalCommits(), 0u);
  EXPECT_GT(fifo->stats.TotalConflictAborts(), 0u);
  // Conflict-free batch formation must show a strict drop at this skew.
  EXPECT_LT(packed->stats.TotalConflictAborts(),
            fifo->stats.TotalConflictAborts());
}

// ---------------------------------------------------------------------------
// Routed shed accounting (the engine a request was routed *to* owns it)
// ---------------------------------------------------------------------------

/// Steers every arrival to engine 0, classifying nothing: isolates the
/// routing/accounting plumbing from the heat model.
class RouteToZeroScheduler final : public Scheduler {
 public:
  const char* name() const override { return "route-to-zero"; }
  uint32_t Classify(const txn::Transaction&) const override {
    return kColdClass;
  }
  EngineId Route(const txn::Transaction&, uint32_t,
                 EngineId) const override {
    return 0;
  }
};

void RegisterRouteToZeroOnce() {
  static const bool registered = [] {
    auto st = SchedulerRegistry::Global().Register(
        "route-to-zero",
        [](const SchedulerContext&)
            -> StatusOr<std::unique_ptr<Scheduler>> {
          return std::unique_ptr<Scheduler>(
              std::make_unique<RouteToZeroScheduler>());
        });
    return st.ok();
  }();
  ASSERT_TRUE(registered);
}

TEST(ScheduledAdmissionTest, ShedIsAccountedAtTheRoutedToEngine) {
  RegisterRouteToZeroOnce();
  runner::ScenarioSpec spec = OpenYcsb(/*offered_tps=*/2e6);
  spec.scheduler = "route-to-zero";
  spec.queue_cap = 2;
  auto env = runner::ScenarioRunner::Wire(spec);
  ASSERT_TRUE(env.ok()) << env.status().ToString();
  const cc::RunStats stats = env->driver->Run(spec.warmup, spec.measure);

  // Engine 0 absorbs the whole cluster's arrivals through a 2-deep queue:
  // it must both admit and shed; the engines the work was routed *away*
  // from never see an admission or a shed, even though their arrival
  // clocks generated the requests.
  EXPECT_GT(stats.TotalCommits(), 0u);
  EXPECT_GT(env->driver->engine_admitted(0), 0u);
  EXPECT_GT(env->driver->engine_shed(0), 0u);
  for (EngineId e = 1; e < 4; ++e) {
    EXPECT_EQ(env->driver->engine_admitted(e), 0u) << e;
    EXPECT_EQ(env->driver->engine_shed(e), 0u) << e;
  }
  EXPECT_EQ(stats.shed, env->driver->engine_shed(0));
}

}  // namespace
}  // namespace chiller::schedule
