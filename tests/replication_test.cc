// Tests for the replication protocols of paper Section 5, most importantly
// the inner-region scheme of Figure 6: the inner host streams updates to
// its replicas and moves on WITHOUT waiting; the replicas acknowledge the
// COORDINATOR; correctness rests on per-queue-pair FIFO delivery.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "cc/cluster.h"
#include "cc/replication.h"
#include "chiller/two_region.h"
#include "workload/flight.h"

namespace chiller {
namespace {

using cc::ReplUpdate;

struct ReplEnv {
  std::unique_ptr<cc::Cluster> cluster;
  std::unique_ptr<cc::ReplicationManager> repl;
};

ReplEnv MakeEnv(uint32_t nodes, uint32_t replication) {
  ReplEnv env;
  cc::ClusterConfig cfg;
  cfg.topology = net::Topology{.num_nodes = nodes,
                               .engines_per_node = 1,
                               .replication_degree = replication};
  cfg.schema = {storage::TableSpec{.name = "t", .id = 0, .num_fields = 1,
                                   .buckets_per_partition = 64}};
  env.cluster = std::make_unique<cc::Cluster>(cfg);
  env.repl = std::make_unique<cc::ReplicationManager>(env.cluster.get());
  return env;
}

ReplUpdate Put(Key k, int64_t v) {
  ReplUpdate u;
  u.kind = ReplUpdate::Kind::kPut;
  u.rid = RecordId{0, k};
  u.image = storage::Record(1);
  u.image.Set(0, v);
  return u;
}

TEST(ReplicationTest, UpdatesReachEveryReplica) {
  ReplEnv env = MakeEnv(3, 3);
  bool done = false;
  env.repl->Replicate(0, 0, {Put(1, 42), Put(2, 7)}, 0, [&] { done = true; });
  env.cluster->sim()->Run();
  ASSERT_TRUE(done);
  for (uint32_t r = 1; r < 3; ++r) {
    auto* store = env.cluster->replica(0, r);
    ASSERT_NE(store->Find({0, 1}), nullptr);
    EXPECT_EQ(store->Find({0, 1})->Get(0), 42);
    EXPECT_EQ(store->Find({0, 2})->Get(0), 7);
  }
}

TEST(ReplicationTest, AckGoesToCoordinatorNotSender) {
  // Figure 6: the inner host (engine 1) streams; the coordinator (engine 0)
  // receives the acknowledgements. The coordinator may continue only after
  // one full one-way trip host->replica plus one replica->coordinator trip.
  ReplEnv env = MakeEnv(3, 2);
  const net::Topology& topo = env.cluster->topology();
  const EngineId inner_host = 1;
  const EngineId coordinator = 0;
  const EngineId replica_engine = topo.ReplicaEngine(1, 1);
  ASSERT_NE(topo.NodeOfEngine(replica_engine), topo.NodeOfEngine(inner_host));

  SimTime acked_at = 0;
  env.repl->Replicate(inner_host, 1, {Put(5, 1)}, coordinator,
                      [&] { acked_at = env.cluster->sim()->now(); });
  env.cluster->sim()->Run();
  ASSERT_GT(acked_at, 0u);
  // Lower bound: two one-way network trips (host->replica, replica->coord).
  const SimTime two_trips = 2 * env.cluster->config().network.OneWay(0);
  EXPECT_GT(acked_at, two_trips);
}

TEST(ReplicationTest, SenderDoesNotWait) {
  // The inner host's side of Replicate returns control immediately: no
  // event at the sender depends on the acks (fire-and-continue). We assert
  // the sender engine's CPU is idle right after the call.
  ReplEnv env = MakeEnv(3, 2);
  env.repl->Replicate(1, 1, {Put(5, 1)}, 0, [] {});
  // The send consumed only the RPC post cost at engine 1.
  EXPECT_LE(env.cluster->engine(1)->cpu()->busy_until(),
            env.cluster->config().network.post_cost);
  env.cluster->sim()->Run();
}

TEST(ReplicationTest, FifoStreamsApplyInOrder) {
  // Two batches updating the same record: the second must win at every
  // replica, because queue pairs are FIFO (Section 5's correctness
  // argument; "it cannot happen that any update gets lost or overwritten
  // while its subsequent updates have been applied").
  ReplEnv env = MakeEnv(3, 3);
  int acks = 0;
  env.repl->Replicate(0, 0, {Put(1, 111)}, 0, [&] { ++acks; });
  env.repl->Replicate(0, 0, {Put(1, 222)}, 0, [&] { ++acks; });
  env.cluster->sim()->Run();
  EXPECT_EQ(acks, 2);
  for (uint32_t r = 1; r < 3; ++r) {
    EXPECT_EQ(env.cluster->replica(0, r)->Find({0, 1})->Get(0), 222);
  }
}

TEST(ReplicationTest, ManyInterleavedStreamsConverge) {
  ReplEnv env = MakeEnv(4, 2);
  // Partition 2's primary streams 50 ordered updates; interleave with
  // streams to other partitions to stress queue-pair independence.
  for (int i = 1; i <= 50; ++i) {
    env.repl->Replicate(2, 2, {Put(9, i)}, 0, [] {});
    env.repl->Replicate(1, 1, {Put(9, i * 1000)}, 0, [] {});
  }
  env.cluster->sim()->Run();
  EXPECT_EQ(env.cluster->replica(2, 1)->Find({0, 9})->Get(0), 50);
  EXPECT_EQ(env.cluster->replica(1, 1)->Find({0, 9})->Get(0), 50000);
}

TEST(ReplicationTest, EraseStreamsApply) {
  ReplEnv env = MakeEnv(3, 2);
  bool done = false;
  env.repl->Replicate(0, 0, {Put(3, 1)}, 0, [] {});
  ReplUpdate erase;
  erase.kind = ReplUpdate::Kind::kErase;
  erase.rid = RecordId{0, 3};
  env.repl->Replicate(0, 0, {erase}, 0, [&] { done = true; });
  env.cluster->sim()->Run();
  ASSERT_TRUE(done);
  EXPECT_EQ(env.cluster->replica(0, 1)->Find({0, 3}), nullptr);
}

TEST(ReplicationTest, ZeroReplicasCompletesImmediately) {
  ReplEnv env = MakeEnv(2, 1);
  bool done = false;
  env.repl->Replicate(0, 0, {Put(1, 5)}, 0, [&] { done = true; });
  env.cluster->sim()->Run();
  EXPECT_TRUE(done);
  EXPECT_EQ(env.repl->batches_sent(), 0u);
}

TEST(ReplicationTest, BatchCounting) {
  ReplEnv env = MakeEnv(3, 2);
  env.repl->Replicate(0, 0, {Put(1, 1)}, 0, [] {});
  env.repl->Replicate(1, 1, {Put(2, 2)}, 0, [] {});
  env.cluster->sim()->Run();
  EXPECT_EQ(env.repl->batches_sent(), 2u);
}

}  // namespace
}  // namespace chiller
