// Tests for the replication protocols of paper Section 5, most importantly
// the inner-region scheme of Figure 6: the inner host streams updates to
// its replicas and moves on WITHOUT waiting; the replicas acknowledge the
// COORDINATOR; correctness rests on per-queue-pair FIFO delivery.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "cc/cluster.h"
#include "cc/migration.h"
#include "cc/replication.h"
#include "chiller/two_region.h"
#include "partition/lookup_table.h"
#include "workload/flight.h"

namespace chiller {
namespace {

using cc::ReplUpdate;

struct ReplEnv {
  std::unique_ptr<cc::Cluster> cluster;
  std::unique_ptr<cc::ReplicationManager> repl;
};

ReplEnv MakeEnv(uint32_t nodes, uint32_t replication) {
  ReplEnv env;
  cc::ClusterConfig cfg;
  cfg.topology = net::Topology{.num_nodes = nodes,
                               .engines_per_node = 1,
                               .replication_degree = replication};
  cfg.schema = {storage::TableSpec{.name = "t", .id = 0, .num_fields = 1,
                                   .buckets_per_partition = 64}};
  env.cluster = std::make_unique<cc::Cluster>(cfg);
  env.repl = std::make_unique<cc::ReplicationManager>(env.cluster.get());
  return env;
}

ReplUpdate Put(Key k, int64_t v) {
  ReplUpdate u;
  u.kind = ReplUpdate::Kind::kPut;
  u.rid = RecordId{0, k};
  u.image = storage::Record(1);
  u.image.Set(0, v);
  return u;
}

TEST(ReplicationTest, UpdatesReachEveryReplica) {
  ReplEnv env = MakeEnv(3, 3);
  bool done = false;
  env.repl->Replicate(0, 0, {Put(1, 42), Put(2, 7)}, 0, [&] { done = true; });
  env.cluster->sim()->Run();
  ASSERT_TRUE(done);
  for (uint32_t r = 1; r < 3; ++r) {
    auto* store = env.cluster->replica(0, r);
    ASSERT_NE(store->Find({0, 1}), nullptr);
    EXPECT_EQ(store->Find({0, 1})->Get(0), 42);
    EXPECT_EQ(store->Find({0, 2})->Get(0), 7);
  }
}

TEST(ReplicationTest, AckGoesToCoordinatorNotSender) {
  // Figure 6: the inner host (engine 1) streams; the coordinator (engine 0)
  // receives the acknowledgements. The coordinator may continue only after
  // one full one-way trip host->replica plus one replica->coordinator trip.
  ReplEnv env = MakeEnv(3, 2);
  const net::Topology& topo = env.cluster->topology();
  const EngineId inner_host = 1;
  const EngineId coordinator = 0;
  const EngineId replica_engine = topo.ReplicaEngine(1, 1);
  ASSERT_NE(topo.NodeOfEngine(replica_engine), topo.NodeOfEngine(inner_host));

  SimTime acked_at = 0;
  env.repl->Replicate(inner_host, 1, {Put(5, 1)}, coordinator,
                      [&] { acked_at = env.cluster->sim()->now(); });
  env.cluster->sim()->Run();
  ASSERT_GT(acked_at, 0u);
  // Lower bound: two one-way network trips (host->replica, replica->coord).
  const SimTime two_trips = 2 * env.cluster->config().network.OneWay(0);
  EXPECT_GT(acked_at, two_trips);
}

TEST(ReplicationTest, SenderDoesNotWait) {
  // The inner host's side of Replicate returns control immediately: no
  // event at the sender depends on the acks (fire-and-continue). We assert
  // the sender engine's CPU is idle right after the call.
  ReplEnv env = MakeEnv(3, 2);
  env.repl->Replicate(1, 1, {Put(5, 1)}, 0, [] {});
  // The send consumed only the RPC post cost at engine 1.
  EXPECT_LE(env.cluster->engine(1)->cpu()->busy_until(),
            env.cluster->config().network.post_cost);
  env.cluster->sim()->Run();
}

TEST(ReplicationTest, FifoStreamsApplyInOrder) {
  // Two batches updating the same record: the second must win at every
  // replica, because queue pairs are FIFO (Section 5's correctness
  // argument; "it cannot happen that any update gets lost or overwritten
  // while its subsequent updates have been applied").
  ReplEnv env = MakeEnv(3, 3);
  int acks = 0;
  env.repl->Replicate(0, 0, {Put(1, 111)}, 0, [&] { ++acks; });
  env.repl->Replicate(0, 0, {Put(1, 222)}, 0, [&] { ++acks; });
  env.cluster->sim()->Run();
  EXPECT_EQ(acks, 2);
  for (uint32_t r = 1; r < 3; ++r) {
    EXPECT_EQ(env.cluster->replica(0, r)->Find({0, 1})->Get(0), 222);
  }
}

TEST(ReplicationTest, ManyInterleavedStreamsConverge) {
  ReplEnv env = MakeEnv(4, 2);
  // Partition 2's primary streams 50 ordered updates; interleave with
  // streams to other partitions to stress queue-pair independence.
  for (int i = 1; i <= 50; ++i) {
    env.repl->Replicate(2, 2, {Put(9, i)}, 0, [] {});
    env.repl->Replicate(1, 1, {Put(9, i * 1000)}, 0, [] {});
  }
  env.cluster->sim()->Run();
  EXPECT_EQ(env.cluster->replica(2, 1)->Find({0, 9})->Get(0), 50);
  EXPECT_EQ(env.cluster->replica(1, 1)->Find({0, 9})->Get(0), 50000);
}

TEST(ReplicationTest, EraseStreamsApply) {
  ReplEnv env = MakeEnv(3, 2);
  bool done = false;
  env.repl->Replicate(0, 0, {Put(3, 1)}, 0, [] {});
  ReplUpdate erase;
  erase.kind = ReplUpdate::Kind::kErase;
  erase.rid = RecordId{0, 3};
  env.repl->Replicate(0, 0, {erase}, 0, [&] { done = true; });
  env.cluster->sim()->Run();
  ASSERT_TRUE(done);
  EXPECT_EQ(env.cluster->replica(0, 1)->Find({0, 3}), nullptr);
}

TEST(ReplicationTest, ZeroReplicasCompletesImmediately) {
  ReplEnv env = MakeEnv(2, 1);
  bool done = false;
  env.repl->Replicate(0, 0, {Put(1, 5)}, 0, [&] { done = true; });
  env.cluster->sim()->Run();
  EXPECT_TRUE(done);
  EXPECT_EQ(env.repl->batches_sent(), 0u);
}

TEST(ReplicationTest, BatchCounting) {
  ReplEnv env = MakeEnv(3, 2);
  env.repl->Replicate(0, 0, {Put(1, 1)}, 0, [] {});
  env.repl->Replicate(1, 1, {Put(2, 2)}, 0, [] {});
  env.cluster->sim()->Run();
  EXPECT_EQ(env.repl->batches_sent(), 2u);
}

// ---------------------------------------------------------------------------
// Record migration: relayout a quiesced cluster and resync its replicas.
// ---------------------------------------------------------------------------

/// Loads keys 0..n-1 into `env` under `layout`, value = key.
void LoadSequential(ReplEnv* env, uint64_t n,
                    const partition::RecordPartitioner& layout) {
  for (uint64_t k = 0; k < n; ++k) {
    storage::Record r(1);
    r.Set(0, static_cast<int64_t>(k));
    env->cluster->LoadRecord(RecordId{0, k}, r, layout);
  }
}

/// Asserts the cluster's physical placement matches `layout` exactly:
/// every record lives in the primary the layout names (hence in exactly
/// one primary), and each partition's replicas mirror its primary.
void ExpectPlacementMatches(ReplEnv* env, uint64_t n, uint32_t partitions,
                            uint32_t replication,
                            const partition::RecordPartitioner& layout) {
  for (uint64_t k = 0; k < n; ++k) {
    const RecordId rid{0, k};
    const PartitionId home = layout.PartitionOf(rid);
    for (PartitionId p = 0; p < partitions; ++p) {
      storage::Record* rec = env->cluster->primary(p)->Find(rid);
      if (p == home) {
        ASSERT_NE(rec, nullptr) << rid.ToString() << " missing at " << p;
        EXPECT_EQ(rec->Get(0), static_cast<int64_t>(k));
      } else {
        EXPECT_EQ(rec, nullptr)
            << rid.ToString() << " resident in two primaries";
      }
      for (uint32_t i = 1; i < replication; ++i) {
        storage::Record* replica = env->cluster->replica(p, i)->Find(rid);
        if (p == home) {
          ASSERT_NE(replica, nullptr)
              << rid.ToString() << " not resynced to replica " << i;
          EXPECT_EQ(replica->Get(0), static_cast<int64_t>(k));
        } else {
          EXPECT_EQ(replica, nullptr)
              << rid.ToString() << " stale at replica of " << p;
        }
      }
    }
  }
}

TEST(MigrationTest, RelayoutConservesRecordsAndResyncsReplicas) {
  constexpr uint32_t kNodes = 4;
  constexpr uint32_t kRepl = 2;
  constexpr uint64_t kKeys = 256;
  ReplEnv env = MakeEnv(kNodes, kRepl);
  partition::HashPartitioner initial(kNodes);
  LoadSequential(&env, kKeys, initial);
  ASSERT_EQ(env.cluster->TotalPrimaryRecords(), kKeys);

  // Target layout: pin the first 32 keys to partition 0 explicitly (as a
  // replan's lookup table would), everything else keeps its hash home.
  partition::LookupPartitioner target(
      std::make_unique<partition::HashPartitioner>(kNodes));
  for (uint64_t k = 0; k < 32; ++k) target.Assign(RecordId{0, k}, 0);

  auto stats = cc::MigrateToLayout(env.cluster.get(), env.repl.get(), target);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_GT(stats->moved_records, 0u);
  EXPECT_GT(stats->moved_bytes, 0u);
  EXPECT_GT(stats->sim_time, 0u);  // moves pay simulated network time

  EXPECT_EQ(env.cluster->TotalPrimaryRecords(), kKeys);
  ExpectPlacementMatches(&env, kKeys, kNodes, kRepl, target);
}

TEST(MigrationTest, NoopWhenLayoutAlreadyMatches) {
  ReplEnv env = MakeEnv(3, 2);
  partition::HashPartitioner layout(3);
  LoadSequential(&env, 64, layout);
  auto stats = cc::MigrateToLayout(env.cluster.get(), env.repl.get(), layout);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->moved_records, 0u);
  EXPECT_EQ(stats->moved_bytes, 0u);
  EXPECT_EQ(env.cluster->TotalPrimaryRecords(), 64u);
}

TEST(MigrationTest, FullyReplicatedRecordsStayEverywhere) {
  ReplEnv env = MakeEnv(3, 2);
  partition::HashPartitioner layout(3);
  LoadSequential(&env, 64, layout);
  storage::Record item(1);
  item.Set(0, 99);
  env.cluster->LoadEverywhere(RecordId{0, 1000}, item);

  // Whatever the layout says about the replicated record, it must not move
  // (it is already everywhere) and the rest must still migrate correctly.
  partition::LookupPartitioner target(
      std::make_unique<partition::HashPartitioner>(3));
  target.Assign(RecordId{0, 1000}, 2);
  for (uint64_t k = 0; k < 8; ++k) target.Assign(RecordId{0, k}, 1);
  auto stats = cc::MigrateToLayout(env.cluster.get(), env.repl.get(), target);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  for (PartitionId p = 0; p < 3; ++p) {
    ASSERT_NE(env.cluster->primary(p)->Find(RecordId{0, 1000}), nullptr);
  }
  for (uint64_t k = 0; k < 8; ++k) {
    EXPECT_NE(env.cluster->primary(1)->Find(RecordId{0, k}), nullptr);
  }
}

TEST(MigrationTest, RefusesClustersHoldingLocks) {
  ReplEnv env = MakeEnv(3, 2);
  partition::HashPartitioner layout(3);
  LoadSequential(&env, 16, layout);
  const RecordId rid{0, 3};
  storage::PartitionStore* holder =
      env.cluster->primary(layout.PartitionOf(rid));
  ASSERT_TRUE(holder->TryLock(rid, storage::LockMode::kExclusive).ok());
  partition::LookupPartitioner target(
      std::make_unique<partition::HashPartitioner>(3));
  target.Assign(rid, (layout.PartitionOf(rid) + 1) % 3);
  EXPECT_TRUE(cc::MigrateToLayout(env.cluster.get(), env.repl.get(), target)
                  .status()
                  .IsFailedPrecondition());
  holder->Unlock(rid, storage::LockMode::kExclusive, false);
}

}  // namespace
}  // namespace chiller
