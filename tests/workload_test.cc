// Workload tests: TPC-C generator conformance and spec consistency
// conditions under all three protocols; Instacart-like generator marginals.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>

#include "cc/cluster.h"
#include "cc/driver.h"
#include "cc/occ.h"
#include "cc/twopl.h"
#include "chiller/two_region.h"
#include "partition/chiller_partitioner.h"
#include "partition/metrics.h"
#include "txn/dependency_graph.h"
#include "workload/instacart.h"
#include "workload/tpcc/tpcc_workload.h"

namespace chiller {
namespace {

namespace tpcc = workload::tpcc;
namespace instacart = workload::instacart;

// ---------- TPC-C generator conformance ----------

TEST(TpccGenTest, NURandInRange) {
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    const uint64_t v = tpcc::NURand(&rng, 255, 0, 599);
    EXPECT_LT(v, 600u);
  }
}

TEST(TpccGenTest, NURandIsSkewed) {
  Rng rng(2);
  std::map<uint64_t, int> counts;
  for (int i = 0; i < 100000; ++i) ++counts[tpcc::RandomCustomer(&rng)];
  // NURand concentrates mass: the most popular customer id should appear
  // far more often than the uniform expectation.
  int max_count = 0;
  for (const auto& [k, c] : counts) max_count = std::max(max_count, c);
  EXPECT_GT(max_count, 2 * 100000 / 600);
}

TEST(TpccGenTest, KeyEncodingsRoundTrip) {
  for (uint64_t w : {0ull, 3ull, 79ull}) {
    EXPECT_EQ(tpcc::WarehouseOfKey(tpcc::kWarehouse, tpcc::WarehouseKey(w)),
              w);
    EXPECT_EQ(tpcc::WarehouseOfKey(tpcc::kDistrict, tpcc::DistrictKey(w, 9)),
              w);
    EXPECT_EQ(
        tpcc::WarehouseOfKey(tpcc::kCustomer, tpcc::CustomerKey(w, 9, 599)),
        w);
    EXPECT_EQ(tpcc::WarehouseOfKey(tpcc::kStock, tpcc::StockKey(w, 4999)), w);
    EXPECT_EQ(tpcc::WarehouseOfKey(tpcc::kOrder,
                                   tpcc::OrderKey(w, 9, 12345)),
              w);
    EXPECT_EQ(tpcc::WarehouseOfKey(
                  tpcc::kOrderLine,
                  tpcc::OrderLineKey(tpcc::OrderKey(w, 9, 12345), 15)),
              w);
    EXPECT_EQ(tpcc::WarehouseOfKey(tpcc::kHistory, tpcc::HistoryKey(w, 777)),
              w);
  }
}

TEST(TpccGenTest, MixRatios) {
  tpcc::TpccWorkload wl(tpcc::TpccWorkload::Options{.num_warehouses = 4});
  Rng rng(3);
  std::map<uint32_t, int> counts;
  const int n = 20000;
  for (int i = 0; i < n; ++i) ++counts[wl.Next(i % 4, &rng)->txn_class];
  EXPECT_NEAR(counts[tpcc::kNewOrderTxn] / double(n), 0.45, 0.02);
  EXPECT_NEAR(counts[tpcc::kPaymentTxn] / double(n), 0.43, 0.02);
  EXPECT_NEAR(counts[tpcc::kOrderStatusTxn] / double(n), 0.04, 0.01);
  EXPECT_NEAR(counts[tpcc::kDeliveryTxn] / double(n), 0.04, 0.01);
  EXPECT_NEAR(counts[tpcc::kStockLevelTxn] / double(n), 0.04, 0.01);
}

TEST(TpccGenTest, RemoteProbabilitiesHonored) {
  tpcc::TpccWorkload::Options opts;
  opts.num_warehouses = 8;
  opts.remote_new_order_prob = 0.3;
  opts.remote_payment_prob = 0.5;
  tpcc::TpccWorkload wl(opts);
  Rng rng(5);
  int no = 0, no_remote = 0, pay = 0, pay_remote = 0;
  for (int i = 0; i < 30000; ++i) {
    auto t = wl.Next(2, &rng);
    if (t->txn_class == tpcc::kNewOrderTxn) {
      ++no;
      const auto& p = t->ctx.params;
      bool remote = false;
      for (int64_t l = 0; l < p[3]; ++l) {
        if (p[6 + 3 * l] != p[0]) remote = true;
      }
      no_remote += remote;
    } else if (t->txn_class == tpcc::kPaymentTxn) {
      ++pay;
      pay_remote += (t->ctx.params[2] != t->ctx.params[0]);
    }
  }
  EXPECT_NEAR(no_remote / double(no), 0.3, 0.02);
  EXPECT_NEAR(pay_remote / double(pay), 0.5, 0.02);
}

TEST(TpccGenTest, AllBuildersValidate) {
  tpcc::TpccWorkload wl(tpcc::TpccWorkload::Options{.num_warehouses = 4});
  Rng rng(7);
  for (int i = 0; i < 500; ++i) {
    auto t = wl.Next(i % 4, &rng);
    EXPECT_TRUE(txn::DependencyAnalysis::Validate(t->ops).ok())
        << "class " << t->txn_class;
  }
}

TEST(TpccGenTest, RebuildPreservesClassAndParams) {
  tpcc::TpccWorkload wl(tpcc::TpccWorkload::Options{.num_warehouses = 4});
  Rng rng(9);
  for (int i = 0; i < 100; ++i) {
    auto t = wl.Next(i % 4, &rng);
    auto r = wl.Rebuild(*t);
    EXPECT_EQ(r->txn_class, t->txn_class);
    EXPECT_EQ(r->ctx.params, t->ctx.params);
    EXPECT_EQ(r->ops.size(), t->ops.size());
  }
}

// ---------- TPC-C consistency under every protocol ----------

struct TpccEnv {
  std::unique_ptr<cc::Cluster> cluster;
  std::unique_ptr<tpcc::TpccPartitioner> partitioner;
  std::unique_ptr<tpcc::TpccWorkload> workload;
  std::unique_ptr<cc::ReplicationManager> repl;
  std::unique_ptr<cc::Protocol> protocol;
  std::unique_ptr<cc::Driver> driver;
  uint32_t warehouses;
};

TpccEnv MakeTpccEnv(const std::string& proto, uint32_t warehouses,
                    uint32_t concurrency) {
  TpccEnv env;
  env.warehouses = warehouses;
  cc::ClusterConfig cfg;
  cfg.topology = net::Topology{.num_nodes = warehouses,
                               .engines_per_node = 1,
                               .replication_degree = 2};
  cfg.schema = tpcc::Schema();
  env.cluster = std::make_unique<cc::Cluster>(cfg);
  env.partitioner = std::make_unique<tpcc::TpccPartitioner>(warehouses);
  tpcc::PopulateTpcc(
      warehouses,
      [&](const RecordId& rid, const storage::Record& rec) {
        env.cluster->LoadRecord(rid, rec, *env.partitioner);
      },
      [&](const RecordId& rid, const storage::Record& rec) {
        env.cluster->LoadEverywhere(rid, rec);
      });
  env.workload = std::make_unique<tpcc::TpccWorkload>(
      tpcc::TpccWorkload::Options{.num_warehouses = warehouses});
  env.repl = std::make_unique<cc::ReplicationManager>(env.cluster.get());
  if (proto == "2pl") {
    env.protocol = std::make_unique<cc::TwoPhaseLocking>(
        env.cluster.get(), env.partitioner.get(), env.repl.get());
  } else if (proto == "occ") {
    env.protocol = std::make_unique<cc::Occ>(
        env.cluster.get(), env.partitioner.get(), env.repl.get());
  } else {
    env.protocol = std::make_unique<core::ChillerProtocol>(
        env.cluster.get(), env.partitioner.get(), env.repl.get());
  }
  env.driver = std::make_unique<cc::Driver>(
      env.cluster.get(), env.protocol.get(), env.workload.get(), concurrency);
  return env;
}

/// TPC-C consistency conditions (clause 3.3.2), adapted to the
/// starts-empty order tables:
///  1. W_YTD == sum of the warehouse's D_YTD.
///  2. D_NEXT_O_ID - 1 == number of ORDER rows in the district.
///  3. Every ORDER has exactly O_OL_CNT order lines.
///  4. NEWORDER rows == ORDER rows with no carrier (undelivered).
///  5. Money conservation: sum(balances) + sum(W_YTD) - delivered refunds
///     == initial balances.
void CheckTpccConsistency(TpccEnv& env) {
  std::map<Key, int64_t> w_ytd, d_ytd_sum, d_next;
  std::map<Key, int64_t> orders_per_district, ol_per_district,
      expected_ol_per_district;
  int64_t neworder_rows = 0, undelivered_orders = 0;
  int64_t balances = 0, warehouse_ytd_total = 0, delivered_refunds = 0;
  int64_t customers = 0;

  for (uint32_t pid = 0; pid < env.warehouses; ++pid) {
    EXPECT_EQ(env.cluster->primary(pid)->locks_held(), 0u);
    env.cluster->primary(pid)->ForEach([&](const RecordId& rid,
                                           const storage::Record& rec) {
      switch (rid.table) {
        case tpcc::kWarehouse:
          w_ytd[rid.key] = rec.Get(tpcc::WarehouseF::kYtd);
          warehouse_ytd_total += rec.Get(tpcc::WarehouseF::kYtd);
          break;
        case tpcc::kDistrict:
          d_ytd_sum[rid.key / tpcc::kDistrictsPerWarehouse] +=
              rec.Get(tpcc::DistrictF::kYtd);
          d_next[rid.key] = rec.Get(tpcc::DistrictF::kNextOid);
          break;
        case tpcc::kOrder: {
          const Key district = rid.key / tpcc::kOrderStride;
          ++orders_per_district[district];
          expected_ol_per_district[district] +=
              rec.Get(tpcc::OrderF::kOlCnt);
          if (rec.Get(tpcc::OrderF::kCarrier) == 0) ++undelivered_orders;
          break;
        }
        case tpcc::kOrderLine: {
          const Key district =
              rid.key / (tpcc::kMaxOrderLines + 1) / tpcc::kOrderStride;
          ++ol_per_district[district];
          if (rec.Get(tpcc::OrderLineF::kDeliveryD) != 0) {
            delivered_refunds += rec.Get(tpcc::OrderLineF::kAmount);
          }
          break;
        }
        case tpcc::kNewOrder:
          ++neworder_rows;
          break;
        case tpcc::kCustomer:
          balances += rec.Get(tpcc::CustomerF::kBalance);
          ++customers;
          break;
        default:
          break;
      }
    });
  }

  // (1) warehouse YTD vs district YTDs.
  for (const auto& [w, ytd] : w_ytd) {
    EXPECT_EQ(ytd, d_ytd_sum[w]) << "warehouse " << w;
  }
  // (2) order counts match next_o_id.
  for (const auto& [district, next] : d_next) {
    EXPECT_EQ(next - 1, orders_per_district[district])
        << "district " << district;
  }
  // (3) order line counts match the orders' OL_CNT.
  for (const auto& [district, expected] : expected_ol_per_district) {
    EXPECT_EQ(expected, ol_per_district[district]) << "district " << district;
  }
  // (4) undelivered orders carry NEWORDER rows.
  EXPECT_EQ(neworder_rows, undelivered_orders);
  // (5) money conservation: Payments move balance -> W_YTD 1:1; Delivery
  // refunds the first order line's amount.
  EXPECT_EQ(balances + warehouse_ytd_total - delivered_refunds,
            customers * -1000);
}

class TpccProtocolTest : public ::testing::TestWithParam<std::string> {};

TEST_P(TpccProtocolTest, ConsistencyAfterMixedRun) {
  TpccEnv env = MakeTpccEnv(GetParam(), 4, /*concurrency=*/3);
  auto stats = env.driver->Run(2 * kMillisecond, 25 * kMillisecond);
  env.driver->DrainAndStop();
  EXPECT_GT(stats.TotalCommits(), 200u);
  // Every class committed at least once.
  for (uint32_t cls = 0; cls < 5; ++cls) {
    EXPECT_GT(stats.classes[cls].commits, 0u) << env.workload->ClassName(cls);
  }
  CheckTpccConsistency(env);
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, TpccProtocolTest,
                         ::testing::Values("2pl", "occ", "chiller"));

TEST(TpccChillerTest, WarehouseAndDistrictGoInner) {
  TpccEnv env = MakeTpccEnv("chiller", 4, 2);
  env.driver->Run(1 * kMillisecond, 10 * kMillisecond);
  env.driver->DrainAndStop();
  auto* chiller = static_cast<core::ChillerProtocol*>(env.protocol.get());
  // NewOrder and Payment both touch hot records, so the two-region path
  // must dominate.
  EXPECT_GT(chiller->counters().two_region_txns,
            chiller->counters().fallback_txns);
}

TEST(TpccPipelineTest, ContentionModelFindsWarehouseAndDistrict) {
  // Dogfood the Section 4 pipeline on a TPC-C trace: warehouse and district
  // rows must surface as the most contended records.
  tpcc::TpccWorkload wl(tpcc::TpccWorkload::Options{.num_warehouses = 4});
  Rng rng(11);
  auto traces = wl.GenerateTrace(5000, &rng);
  partition::StatsCollector stats;
  for (const auto& t : traces) stats.ObserveTrace(t);
  auto pcs = stats.ContentionLikelihoods(16.0);
  ASSERT_GE(pcs.size(), 10u);
  // The 4 hottest records must all be warehouse rows (every Payment writes
  // one), followed by district rows.
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(pcs[static_cast<size_t>(i)].first.table, tpcc::kWarehouse);
  }
  int districts_in_top = 0;
  for (int i = 4; i < 44 && i < static_cast<int>(pcs.size()); ++i) {
    districts_in_top +=
        (pcs[static_cast<size_t>(i)].first.table == tpcc::kDistrict);
  }
  EXPECT_GE(districts_in_top, 30);
}

// ---------- Instacart-like generator ----------

TEST(InstacartTest, TopItemBasketShares) {
  instacart::InstacartWorkload::Options opts;
  opts.num_products = 5000;
  opts.num_customers = 10000;
  instacart::InstacartWorkload wl(opts);
  Rng rng(13);
  int with_top1 = 0, with_top2 = 0;
  double total_items = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    auto basket = wl.SampleBasket(&rng);
    total_items += static_cast<double>(basket.size());
    bool t1 = false, t2 = false;
    for (uint64_t item : basket) {
      t1 |= (item == 0);
      t2 |= (item == 1);
    }
    with_top1 += t1;
    with_top2 += t2;
  }
  // The paper's measured shares: bananas 15%, strawberries 8%.
  EXPECT_NEAR(with_top1 / double(n), 0.15, 0.03);
  EXPECT_NEAR(with_top2 / double(n), 0.08, 0.02);
  EXPECT_NEAR(total_items / n, 10.0, 2.5);
}

TEST(InstacartTest, TraceAndTxnAgree) {
  instacart::InstacartWorkload::Options opts;
  opts.num_products = 2000;
  opts.num_customers = 5000;
  instacart::InstacartWorkload wl(opts);
  Rng rng(17);
  auto t = wl.Next(0, &rng);
  EXPECT_TRUE(txn::DependencyAnalysis::Validate(t->ops).ok());
  // ops: one stock update per item + 1 order insert
  EXPECT_EQ(t->ops.size(), static_cast<size_t>(t->ctx.params[2]) + 1);
  auto r = wl.Rebuild(*t);
  EXPECT_EQ(r->ctx.params, t->ctx.params);
}

TEST(InstacartTest, StockConservationUnderChiller) {
  instacart::InstacartWorkload::Options opts;
  opts.num_products = 2000;
  opts.num_customers = 2000;
  opts.seed = 19;
  instacart::InstacartWorkload wl(opts);

  // Partition with the full Chiller pipeline trained on a trace.
  Rng trng(21);
  auto traces = wl.GenerateTrace(3000, &trng);
  partition::ChillerPartitioner::Options popts;
  popts.k = 4;
  popts.hot_threshold = 0.01;
  popts.fallback_fn = instacart::InstacartFallback;
  auto built = partition::ChillerPartitioner::Build(traces, popts);

  cc::ClusterConfig cfg;
  cfg.topology = net::Topology{.num_nodes = 4,
                               .engines_per_node = 1,
                               .replication_degree = 2};
  cfg.schema = instacart::Schema();
  cc::Cluster cluster(cfg);
  wl.ForEachRecord([&](const RecordId& rid, const storage::Record& rec) {
    cluster.LoadRecord(rid, rec, *built.partitioner);
  });
  cc::ReplicationManager repl(&cluster);
  core::ChillerProtocol protocol(&cluster, built.partitioner.get(), &repl);
  cc::Driver driver(&cluster, &protocol, &wl, /*concurrent=*/3);
  auto stats = driver.Run(1 * kMillisecond, 15 * kMillisecond);
  driver.DrainAndStop();
  EXPECT_GT(stats.TotalCommits(), 100u);

  // Conservation: total stock decrements == total items in order rows.
  int64_t decrements = 0, ordered_items = 0;
  for (uint32_t p = 0; p < 4; ++p) {
    EXPECT_EQ(cluster.primary(p)->locks_held(), 0u);
    cluster.primary(p)->ForEach(
        [&](const RecordId& rid, const storage::Record& rec) {
          if (rid.table == instacart::kStock) {
            decrements += opts.initial_stock - rec.Get(0);
            EXPECT_EQ(opts.initial_stock - rec.Get(0), rec.Get(1));
          } else if (rid.table == instacart::kOrder) {
            ordered_items += rec.Get(0);
          }
        });
  }
  EXPECT_EQ(decrements, ordered_items);
}

TEST(InstacartTest, ChillerPartitioningBeatsHashOnContention) {
  instacart::InstacartWorkload::Options opts;
  opts.num_products = 5000;
  opts.num_customers = 10000;
  instacart::InstacartWorkload wl(opts);
  Rng rng(23);
  auto traces = wl.GenerateTrace(4000, &rng);
  partition::StatsCollector stats;
  for (const auto& t : traces) stats.ObserveTrace(t);

  auto chiller = partition::ChillerPartitioner::Build(
      traces, {.k = 8, .hot_threshold = 0.01});
  partition::HashPartitioner hash(8);
  const double chiller_resid = partition::ResidualContention(
      traces, *chiller.partitioner, stats, 16.0);
  const double hash_resid =
      partition::ResidualContention(traces, hash, stats, 16.0);
  EXPECT_LT(chiller_resid, hash_resid * 0.8);
}

}  // namespace
}  // namespace chiller
