// Unit tests for src/obs: TraceRecorder (sampling rule, Chrome trace-event
// formatting, canonical merge order) and MetricsRegistry (handle identity,
// engine-sharded accumulation, trace snapshots).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/metrics_registry.h"
#include "obs/trace_recorder.h"

namespace chiller::obs {
namespace {

TraceRecorder MakeRecorder(uint32_t sample_every, uint32_t num_nodes,
                           uint32_t engines_per_node) {
  std::vector<uint32_t> node_of_engine;
  for (uint32_t n = 0; n < num_nodes; ++n) {
    for (uint32_t e = 0; e < engines_per_node; ++e) {
      node_of_engine.push_back(n);
    }
  }
  return TraceRecorder(sample_every, num_nodes, std::move(node_of_engine));
}

TEST(TraceRecorderTest, InactiveWhenSampleEveryZero) {
  TraceRecorder t = MakeRecorder(0, 2, 1);
  EXPECT_FALSE(t.active());
  EXPECT_FALSE(t.Sampled(1));
  t.Span(0, 10, 20, "attempt", 1, 0);
  t.Instant(1, 15, "commit", 1, 0);
  t.Counter(20, "driver.commits", 5);
  EXPECT_EQ(t.events_recorded(), 0u);
}

TEST(TraceRecorderTest, SamplingRuleCoversEveryEngine) {
  // 2 engines, sample every 3rd draw: logical ids are issued per engine as
  // k * 2 + e + 1, and engine e's k-th draw is traced iff k % 3 == 0. Both
  // engines must sample their first draw (ids 1 and 2).
  TraceRecorder t = MakeRecorder(3, 2, 1);
  ASSERT_TRUE(t.active());
  EXPECT_TRUE(t.Sampled(1));   // engine 0, k = 0
  EXPECT_TRUE(t.Sampled(2));   // engine 1, k = 0
  EXPECT_FALSE(t.Sampled(3));  // engine 0, k = 1
  EXPECT_FALSE(t.Sampled(4));  // engine 1, k = 1
  EXPECT_FALSE(t.Sampled(5));  // k = 2
  EXPECT_FALSE(t.Sampled(6));
  EXPECT_TRUE(t.Sampled(7));   // engine 0, k = 3
  EXPECT_TRUE(t.Sampled(8));   // engine 1, k = 3
}

TEST(TraceRecorderTest, SampleEveryOneTracesEverything) {
  TraceRecorder t = MakeRecorder(1, 1, 4);
  for (TxnId id = 1; id <= 64; ++id) EXPECT_TRUE(t.Sampled(id));
}

TEST(TraceRecorderTest, TimestampsAreIntegerMicrosWithNanoFraction) {
  TraceRecorder t = MakeRecorder(1, 1, 1);
  t.Span(0, 1500, 4750, "attempt", 1, 0);
  const std::string json = t.DumpJson();
  // 1500 ns -> 1.500 us, duration 3250 ns -> 3.250 us.
  EXPECT_NE(json.find("\"ts\":1.500"), std::string::npos) << json;
  EXPECT_NE(json.find("\"dur\":3.250"), std::string::npos) << json;
}

TEST(TraceRecorderTest, EventJsonCarriesTxnReasonAndArg) {
  TraceRecorder t = MakeRecorder(1, 1, 1);
  t.Span(0, 0, 10, "attempt", 7, 2, "contention");
  t.Instant(0, 10, "sched_route", 7, 0, nullptr, "target", 3);
  const std::string json = t.DumpJson();
  EXPECT_NE(json.find("\"name\":\"attempt\",\"ph\":\"X\""),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"txn\":7,\"attempt\":2,\"reason\":\"contention\""),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"name\":\"sched_route\",\"ph\":\"i\""),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"target\":3"), std::string::npos) << json;
  // Instants are thread-scoped.
  EXPECT_NE(json.find("\"s\":\"t\""), std::string::npos) << json;
}

TEST(TraceRecorderTest, MergeOrderIsCanonicalAcrossBuffers) {
  // Record out of global time order across engine buffers; the dump must
  // come out sorted by (ts, node, engine) regardless.
  TraceRecorder t = MakeRecorder(1, 2, 1);
  t.Instant(1, 300, "late", 2, 0);
  t.Instant(0, 100, "early", 1, 0);
  t.Counter(200, "driver.commits", 1);
  const std::string json = t.DumpJson();
  const size_t early = json.find("\"name\":\"early\"");
  const size_t counter = json.find("\"name\":\"driver.commits\"");
  const size_t late = json.find("\"name\":\"late\"");
  ASSERT_NE(early, std::string::npos);
  ASSERT_NE(counter, std::string::npos);
  ASSERT_NE(late, std::string::npos);
  EXPECT_LT(early, counter);
  EXPECT_LT(counter, late);
}

TEST(TraceRecorderTest, CountersLandOnClusterPseudoProcess) {
  TraceRecorder t = MakeRecorder(1, 2, 1);
  t.Counter(50, "driver.commits", 9);
  const std::string json = t.DumpJson();
  // num_nodes == 2, so the cluster pseudo-process is pid 2.
  EXPECT_NE(json.find("\"ph\":\"C\",\"ts\":0.050,\"pid\":2,\"tid\":0,"
                      "\"args\":{\"value\":9}"),
            std::string::npos)
      << json;
}

TEST(TraceRecorderTest, AppendEventsShiftsPidsAndPrefixesLabel) {
  TraceRecorder t = MakeRecorder(1, 1, 1);
  t.Instant(0, 10, "commit", 1, 0);
  EXPECT_EQ(t.num_pids(), 2u);  // one node + the cluster pseudo-process
  std::string out;
  t.AppendEvents(&out, /*pid_offset=*/5, "fig9");
  EXPECT_NE(out.find("\"args\":{\"name\":\"fig9 node 0\"}"),
            std::string::npos)
      << out;
  EXPECT_NE(out.find("\"args\":{\"name\":\"fig9 cluster\"}"),
            std::string::npos)
      << out;
  EXPECT_NE(out.find("\"pid\":5"), std::string::npos) << out;
  EXPECT_NE(out.find("\"pid\":6"), std::string::npos) << out;
  EXPECT_EQ(out.find("\"pid\":0"), std::string::npos) << out;
}

TEST(TraceRecorderTest, DumpIsIndependentOfRecordingInterleave) {
  // Two recorders see the same per-engine event streams delivered in
  // different global interleaves (what different shard counts produce);
  // their dumps must be byte-identical.
  TraceRecorder a = MakeRecorder(1, 2, 1);
  TraceRecorder b = MakeRecorder(1, 2, 1);
  a.Span(0, 10, 20, "attempt", 1, 0);
  a.Span(1, 12, 18, "attempt", 2, 0);
  a.Instant(0, 20, "commit", 1, 0);
  a.Instant(1, 18, "commit", 2, 0);
  b.Span(1, 12, 18, "attempt", 2, 0);
  b.Instant(1, 18, "commit", 2, 0);
  b.Span(0, 10, 20, "attempt", 1, 0);
  b.Instant(0, 20, "commit", 1, 0);
  EXPECT_EQ(a.DumpJson(), b.DumpJson());
}

TEST(TraceRecorderTest, WrapTraceProducesDocument) {
  EXPECT_EQ(TraceRecorder::WrapTrace(""), "{\"traceEvents\":[\n\n]}\n");
  const std::string doc = TraceRecorder::WrapTrace("{\"a\":1},\n{\"b\":2}");
  EXPECT_EQ(doc, "{\"traceEvents\":[\n{\"a\":1},\n{\"b\":2}\n]}\n");
}

TEST(MetricsRegistryTest, GetOrRegisterReturnsSameHandle) {
  MetricsRegistry reg(2);
  MetricsRegistry::Counter* a = reg.GetCounter("driver.commits");
  MetricsRegistry::Counter* b = reg.GetCounter("driver.commits");
  EXPECT_EQ(a, b);
  EXPECT_NE(reg.GetCounter("driver.aborts.contention"), a);
  EXPECT_EQ(reg.GetGauge("admission.queue_depth"),
            reg.GetGauge("admission.queue_depth"));
  EXPECT_EQ(reg.GetHistogram("driver.commit_latency_window"),
            reg.GetHistogram("driver.commit_latency_window"));
}

TEST(MetricsRegistryTest, CounterMergesEngineCellsAndControl) {
  MetricsRegistry reg(3);
  MetricsRegistry::Counter* c = reg.GetCounter("x");
  c->Add(0);
  c->Add(1, 5);
  c->Add(2, 2);
  c->AddControl(10);
  EXPECT_EQ(c->Sum(), 18u);
}

TEST(MetricsRegistryTest, GaugeAppliesDeltasAndControlSet) {
  MetricsRegistry reg(2);
  MetricsRegistry::Gauge* g = reg.GetGauge("depth");
  g->Add(0, 3);
  g->Add(1, 2);
  g->Add(0, -1);
  EXPECT_EQ(g->Value(), 4);
  MetricsRegistry::Gauge* w = reg.GetGauge("width");
  w->Set(7);
  EXPECT_EQ(w->Value(), 7);
  w->Set(2);
  EXPECT_EQ(w->Value(), 2);
}

TEST(MetricsRegistryTest, HistogramTakeMergedDrains) {
  MetricsRegistry reg(2);
  MetricsRegistry::Hist* h = reg.GetHistogram("lat");
  h->Add(0, 100);
  h->Add(1, 300);
  Histogram merged = h->TakeMerged();
  EXPECT_EQ(merged.count(), 2u);
  EXPECT_EQ(merged.min(), 100u);
  EXPECT_EQ(merged.max(), 300u);
  EXPECT_EQ(h->Merged().count(), 0u);  // drained
  h->Add(0, 50);
  EXPECT_EQ(h->TakeMerged().count(), 1u);
}

TEST(MetricsRegistryTest, SnapshotEmitsNameSortedCounterSamples) {
  MetricsRegistry reg(1);
  reg.GetCounter("b.counter")->Add(0, 2);
  reg.GetCounter("a.counter")->Add(0, 1);
  reg.GetGauge("a.gauge")->Add(0, 5);
  TraceRecorder trace = MakeRecorder(1, 1, 1);
  reg.Snapshot(1000, &trace);
  EXPECT_EQ(trace.events_recorded(), 3u);
  const std::string json = trace.DumpJson();
  const size_t a = json.find("\"name\":\"a.counter\"");
  const size_t b = json.find("\"name\":\"b.counter\"");
  const size_t g = json.find("\"name\":\"a.gauge\"");
  ASSERT_NE(a, std::string::npos);
  ASSERT_NE(b, std::string::npos);
  ASSERT_NE(g, std::string::npos);
  // Counters in name order, then gauges.
  EXPECT_LT(a, b);
  EXPECT_LT(b, g);
}

TEST(MetricsRegistryTest, SnapshotIntoInactiveTraceIsNoOp) {
  MetricsRegistry reg(1);
  reg.GetCounter("x")->Add(0);
  TraceRecorder off = MakeRecorder(0, 1, 1);
  reg.Snapshot(10, &off);
  EXPECT_EQ(off.events_recorded(), 0u);
  reg.Snapshot(10, nullptr);  // must not crash
}

}  // namespace
}  // namespace chiller::obs
