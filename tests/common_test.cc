// Unit tests for src/common: Status, Rng, Zipf/Alias samplers, Histogram.
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <set>

#include "common/histogram.h"
#include "common/random.h"
#include "common/status.h"
#include "common/types.h"
#include "common/zipf.h"

namespace chiller {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, CodesAndPredicates) {
  EXPECT_TRUE(Status::NotFound().IsNotFound());
  EXPECT_TRUE(Status::Aborted().IsAborted());
  EXPECT_TRUE(Status::InvalidArgument().IsInvalidArgument());
  EXPECT_TRUE(Status::FailedPrecondition().IsFailedPrecondition());
  EXPECT_TRUE(Status::Internal().IsInternal());
  EXPECT_FALSE(Status::Aborted().ok());
}

TEST(StatusTest, MessageInToString) {
  EXPECT_EQ(Status::Aborted("lock conflict").ToString(),
            "Aborted: lock conflict");
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v(42);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v(Status::NotFound("nope"));
  ASSERT_FALSE(v.ok());
  EXPECT_TRUE(v.status().IsNotFound());
}

TEST(RecordIdTest, OrderingAndEquality) {
  RecordId a{1, 5}, b{1, 6}, c{2, 0};
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
  EXPECT_EQ(a, (RecordId{1, 5}));
  EXPECT_NE(a, b);
}

TEST(RecordIdTest, HashSpreadsKeys) {
  std::set<size_t> hashes;
  for (Key k = 0; k < 1000; ++k) hashes.insert(RecordIdHash{}(RecordId{0, k}));
  EXPECT_GT(hashes.size(), 990u);  // essentially no collisions
}

TEST(RngTest, Deterministic) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, SeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.Next() == b.Next());
  EXPECT_EQ(same, 0);
}

TEST(RngTest, UniformInBounds) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
    const uint64_t v = rng.UniformRange(5, 9);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 9u);
  }
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, BernoulliMatchesProbability) {
  Rng rng(13);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, WeightedRespectsWeights) {
  Rng rng(17);
  std::vector<double> w = {1.0, 3.0};
  int ones = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) ones += (rng.Weighted(w) == 1);
  EXPECT_NEAR(static_cast<double>(ones) / n, 0.75, 0.01);
}

TEST(RngTest, ShufflePermutes) {
  Rng rng(19);
  std::vector<int> v = {0, 1, 2, 3, 4, 5, 6, 7};
  auto orig = v;
  rng.Shuffle(&v);
  std::multiset<int> a(v.begin(), v.end()), b(orig.begin(), orig.end());
  EXPECT_EQ(a, b);
}

TEST(ZipfTest, UniformWhenThetaZero) {
  ZipfGenerator z(10, 0.0);
  Rng rng(23);
  std::map<uint64_t, int> counts;
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[z.Next(&rng)];
  for (const auto& [rank, c] : counts) {
    EXPECT_NEAR(static_cast<double>(c) / n, 0.1, 0.02) << "rank " << rank;
  }
}

TEST(ZipfTest, SkewMatchesPmf) {
  const double theta = 0.9;
  ZipfGenerator z(1000, theta);
  Rng rng(29);
  std::map<uint64_t, int> counts;
  const int n = 200000;
  for (int i = 0; i < n; ++i) ++counts[z.Next(&rng)];
  // Rank 0 must be the most frequent and close to its analytic mass.
  const double p0 = static_cast<double>(counts[0]) / n;
  EXPECT_NEAR(p0, z.Pmf(0), 0.03);
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[10], counts[500]);
}

TEST(ZipfTest, RanksInRange) {
  ZipfGenerator z(50, 0.99);
  Rng rng(31);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(z.Next(&rng), 50u);
}

TEST(ZipfTest, PmfSumsToOne) {
  ZipfGenerator z(100, 0.5);
  double sum = 0;
  for (uint64_t r = 0; r < 100; ++r) sum += z.Pmf(r);
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(AliasSamplerTest, MatchesWeights) {
  std::vector<double> w = {0.1, 0.2, 0.3, 0.4};
  AliasSampler sampler(w);
  Rng rng(37);
  std::vector<int> counts(4, 0);
  const int n = 200000;
  for (int i = 0; i < n; ++i) ++counts[sampler.Next(&rng)];
  for (int i = 0; i < 4; ++i) {
    EXPECT_NEAR(static_cast<double>(counts[i]) / n, w[i], 0.01);
  }
}

TEST(AliasSamplerTest, HandlesZeros) {
  std::vector<double> w = {0.0, 1.0, 0.0};
  AliasSampler sampler(w);
  Rng rng(41);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(sampler.Next(&rng), 1u);
}

TEST(AliasSamplerTest, HeavySkew) {
  std::vector<double> w(100, 1.0);
  w[0] = 10000.0;
  AliasSampler sampler(w);
  Rng rng(43);
  int zeros = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) zeros += (sampler.Next(&rng) == 0);
  EXPECT_GT(static_cast<double>(zeros) / n, 0.95);
}

TEST(HistogramTest, EmptyIsZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Percentile(50), 0u);
  EXPECT_EQ(h.Mean(), 0.0);
}

TEST(HistogramTest, ExactSmallValues) {
  Histogram h;
  for (uint64_t v = 0; v < 32; ++v) h.Add(v);
  EXPECT_EQ(h.count(), 32u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 31u);
  EXPECT_NEAR(h.Mean(), 15.5, 1e-9);
}

TEST(HistogramTest, PercentileWithinRelativeError) {
  Histogram h;
  for (uint64_t v = 1; v <= 100000; ++v) h.Add(v);
  const uint64_t p50 = h.Percentile(50);
  const uint64_t p99 = h.Percentile(99);
  EXPECT_NEAR(static_cast<double>(p50), 50000.0, 50000.0 * 0.05);
  EXPECT_NEAR(static_cast<double>(p99), 99000.0, 99000.0 * 0.05);
}

TEST(HistogramTest, MergeCombines) {
  Histogram a, b;
  a.Add(10);
  b.Add(1000);
  a.Merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.min(), 10u);
  EXPECT_EQ(a.max(), 1000u);
}

TEST(HistogramTest, LargeValuesDoNotOverflow) {
  Histogram h;
  h.Add(1ull << 62);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.max(), 1ull << 62);
  EXPECT_GE(h.Percentile(100), (1ull << 62) / 2);
}

TEST(HistogramTest, MergeWithEmptyIsIdentity) {
  Histogram a, empty;
  a.Add(10);
  a.Add(500);
  a.Merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.min(), 10u);
  EXPECT_EQ(a.max(), 500u);
  // Merging into an empty histogram adopts the other side wholesale.
  Histogram b;
  b.Merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_EQ(b.min(), 10u);
  EXPECT_EQ(b.max(), 500u);
}

TEST(HistogramTest, ResetClearsExtremes) {
  Histogram h;
  h.Add(7);
  h.Add(1ull << 40);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Percentile(50), 0u);
  EXPECT_EQ(h.Mean(), 0.0);
  // A post-Reset sample must define fresh extremes — no stale min/max.
  h.Add(42);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 42u);
  EXPECT_EQ(h.max(), 42u);
}

TEST(HistogramTest, PercentileBoundsBracketSamples) {
  Histogram h;
  for (uint64_t v = 100; v <= 10000; v += 100) h.Add(v);
  // p = 0 reports at or below the smallest sample's bucket bound; p = 100
  // at or above the largest sample (within the ~3% bucket error).
  EXPECT_LE(h.Percentile(0), 100u);
  EXPECT_GE(h.Percentile(100), 10000u * 97 / 100);
  EXPECT_LE(h.Percentile(0), h.Percentile(50));
  EXPECT_LE(h.Percentile(50), h.Percentile(100));
}

TEST(HistogramTest, TopOctaveValuesStayOrdered) {
  // Values at and beyond the top octave's sub-bucket resolution must land
  // in valid buckets and keep percentile monotonicity (no wraparound).
  Histogram h;
  const uint64_t kMax = ~0ull;
  h.Add(kMax);
  h.Add(kMax - 1);
  h.Add(1ull << 63);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.max(), kMax);
  EXPECT_EQ(h.min(), 1ull << 63);
  EXPECT_GE(h.Percentile(100), 1ull << 63);
  EXPECT_LE(h.Percentile(0), h.Percentile(100));
}

TEST(RunningStatTest, MeanAndVariance) {
  RunningStat s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_NEAR(s.Mean(), 5.0, 1e-9);
  EXPECT_NEAR(s.Variance(), 32.0 / 7.0, 1e-9);
}

}  // namespace
}  // namespace chiller
