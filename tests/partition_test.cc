// Tests for the partitioning pipeline: contention model (Section 4.1), star
// and co-access graphs (Section 4.2), the multilevel partitioner (METIS
// substitute), and the Schism / Chiller pipelines — including the paper's
// Figure 5 example workload.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/random.h"
#include "common/zipf.h"
#include "partition/chiller_partitioner.h"
#include "partition/contention_model.h"
#include "partition/metrics.h"
#include "partition/multilevel_partitioner.h"
#include "partition/schism.h"
#include "partition/stats_collector.h"
#include "partition/workload_graph.h"

namespace chiller::partition {
namespace {

// ---------- Contention model ----------

TEST(ContentionModelTest, ZeroWritesMeansZeroConflict) {
  // Shared locks are compatible: no writes => no conflicts, whatever the
  // read rate.
  EXPECT_DOUBLE_EQ(ContentionModel::ConflictLikelihood(0.0, 0.0), 0.0);
  EXPECT_NEAR(ContentionModel::ConflictLikelihood(0.0, 100.0), 0.0, 1e-12);
}

TEST(ContentionModelTest, MatchesTwoTermDefinition) {
  // The closed form must equal P(Xw>1)P(Xr=0) + P(Xw>0)P(Xr>0).
  for (double lw : {0.01, 0.1, 0.5, 1.0, 3.0}) {
    for (double lr : {0.0, 0.05, 0.7, 2.0}) {
      const double p_w_gt1 = 1.0 - std::exp(-lw) - lw * std::exp(-lw);
      const double p_r_eq0 = std::exp(-lr);
      const double p_w_gt0 = 1.0 - std::exp(-lw);
      const double p_r_gt0 = 1.0 - std::exp(-lr);
      const double expected = p_w_gt1 * p_r_eq0 + p_w_gt0 * p_r_gt0;
      EXPECT_NEAR(ContentionModel::ConflictLikelihood(lw, lr), expected,
                  1e-12);
    }
  }
}

TEST(ContentionModelTest, MonotoneInWriteRate) {
  double prev = -1.0;
  for (double lw = 0.0; lw <= 5.0; lw += 0.1) {
    const double pc = ContentionModel::ConflictLikelihood(lw, 0.5);
    EXPECT_GT(pc, prev - 1e-12);
    prev = pc;
  }
}

TEST(ContentionModelTest, ReadsAmplifyWriteConflicts) {
  const double with_reads = ContentionModel::ConflictLikelihood(0.5, 2.0);
  const double without = ContentionModel::ConflictLikelihood(0.5, 0.0);
  EXPECT_GT(with_reads, without);
}

TEST(ContentionModelTest, SaturatesAtOne) {
  EXPECT_NEAR(ContentionModel::ConflictLikelihood(50.0, 50.0), 1.0, 1e-9);
  EXPECT_LE(ContentionModel::ConflictLikelihood(50.0, 50.0), 1.0);
}

// ---------- Stats collector ----------

TxnAccessTrace Trace(std::vector<std::pair<Key, bool>> keys,
                     uint64_t mult = 1) {
  TxnAccessTrace t;
  t.multiplicity = mult;
  for (auto [k, w] : keys) t.accesses.emplace_back(RecordId{0, k}, w);
  return t;
}

TEST(StatsCollectorTest, CountsReadsAndWrites) {
  StatsCollector s;
  s.ObserveTrace(Trace({{1, true}, {2, false}}));
  s.ObserveTrace(Trace({{1, true}, {3, false}}));
  EXPECT_EQ(s.sampled_txns(), 2u);
  EXPECT_EQ(s.records().at({0, 1}).writes, 2u);
  EXPECT_EQ(s.records().at({0, 2}).reads, 1u);
}

TEST(StatsCollectorTest, LambdaNormalization) {
  StatsCollector s;
  for (int i = 0; i < 10; ++i) s.ObserveTrace(Trace({{1, true}}));
  // Written in every transaction: lambda_w = window size.
  EXPECT_DOUBLE_EQ(s.LambdaW({0, 1}, 16.0), 16.0);
  EXPECT_DOUBLE_EQ(s.LambdaR({0, 1}, 16.0), 0.0);
  EXPECT_DOUBLE_EQ(s.LambdaW({0, 99}, 16.0), 0.0);
}

TEST(StatsCollectorTest, MultiplicityCounts) {
  StatsCollector s;
  s.ObserveTrace(Trace({{1, true}}, 100));
  s.ObserveTrace(Trace({{2, true}}, 1));
  EXPECT_EQ(s.sampled_txns(), 101u);
  EXPECT_NEAR(s.LambdaW({0, 1}, 1.0), 100.0 / 101.0, 1e-12);
}

TEST(StatsCollectorTest, ContentionLikelihoodsSorted) {
  StatsCollector s;
  for (int i = 0; i < 50; ++i) s.ObserveTrace(Trace({{1, true}, {2, false}}));
  for (int i = 0; i < 5; ++i) s.ObserveTrace(Trace({{3, true}}));
  auto pcs = s.ContentionLikelihoods(16.0);
  ASSERT_EQ(pcs.size(), 3u);
  EXPECT_EQ(pcs[0].first, (RecordId{0, 1}));  // hottest: written most
  for (size_t i = 1; i < pcs.size(); ++i) {
    EXPECT_LE(pcs[i].second, pcs[i - 1].second);
  }
}

TEST(StatsCollectorTest, SamplingReducesVolume) {
  StatsCollector s(/*sample_rate=*/0.1, /*seed=*/7);
  txn::Transaction t;  // Observe() path needs a real transaction
  (void)t;
  // Use the trace path with Bernoulli behavior checked statistically via
  // Observe(): construct a minimal transaction.
  for (int i = 0; i < 2000; ++i) {
    txn::Transaction tx;
    txn::Operation op;
    op.type = txn::OpType::kUpdate;
    op.table = 0;
    op.mode = storage::LockMode::kExclusive;
    op.key_fn = [](const txn::TxnContext&) { return Key{1}; };
    op.on_apply = [](txn::TxnContext&, storage::Record*) {};
    tx.ops = {op};
    tx.InitAccesses();
    tx.ResolveReadyKeys();
    s.Observe(tx);
  }
  EXPECT_GT(s.sampled_txns(), 100u);
  EXPECT_LT(s.sampled_txns(), 400u);  // ~200 expected at 10%
}

// ---------- Workload graphs ----------

TEST(WorkloadGraphTest, StarHasNEdgesPerTxn) {
  // Section 4.4: n edges per transaction vs Schism's n(n-1)/2.
  std::vector<TxnAccessTrace> traces = {
      Trace({{1, true}, {2, true}, {3, true}, {4, true}})};
  StatsCollector stats;
  for (const auto& t : traces) stats.ObserveTrace(t);
  auto star = WorkloadGraphBuilder::BuildStar(traces, stats, {});
  auto co = WorkloadGraphBuilder::BuildCoAccess(traces);
  EXPECT_EQ(star.graph.num_edges(), 4u);      // n
  EXPECT_EQ(co.graph.num_edges(), 6u);        // n(n-1)/2
  EXPECT_EQ(star.graph.num_vertices(), 5u);   // 4 records + 1 t-vertex
  EXPECT_EQ(co.graph.num_vertices(), 4u);
}

TEST(WorkloadGraphTest, DedupeMergesIdenticalTxns) {
  std::vector<TxnAccessTrace> traces;
  for (int i = 0; i < 10; ++i) traces.push_back(Trace({{1, true}, {2, true}}));
  StatsCollector stats;
  for (const auto& t : traces) stats.ObserveTrace(t);
  WorkloadGraphBuilder::StarOptions opts;
  opts.dedupe_identical_txns = true;
  auto star = WorkloadGraphBuilder::BuildStar(traces, stats, opts);
  EXPECT_EQ(star.num_t_vertices, 1u);
  opts.dedupe_identical_txns = false;
  auto star2 = WorkloadGraphBuilder::BuildStar(traces, stats, opts);
  EXPECT_EQ(star2.num_t_vertices, 10u);
}

TEST(WorkloadGraphTest, EdgeWeightIsContentionLikelihood) {
  std::vector<TxnAccessTrace> traces = {Trace({{1, true}, {2, false}})};
  StatsCollector stats;
  stats.ObserveTrace(traces[0]);
  WorkloadGraphBuilder::StarOptions opts;
  opts.lock_window_txns = 16.0;
  auto star = WorkloadGraphBuilder::BuildStar(traces, stats, opts);
  // Find vertex of record 1 and check its star edge weight.
  for (uint32_t v = 0; v < star.records.size(); ++v) {
    const double expected = ContentionModel::ConflictLikelihood(
        stats.LambdaW(star.records[v], 16.0),
        stats.LambdaR(star.records[v], 16.0));
    ASSERT_EQ(star.graph.adj[v].size(), 1u);
    EXPECT_DOUBLE_EQ(star.graph.adj[v][0].second, expected);
    EXPECT_DOUBLE_EQ(star.contention[v], expected);
  }
}

TEST(WorkloadGraphTest, MinEdgeWeightCoOptimization) {
  std::vector<TxnAccessTrace> traces = {Trace({{1, false}, {2, false}})};
  StatsCollector stats;
  stats.ObserveTrace(traces[0]);
  WorkloadGraphBuilder::StarOptions opts;
  opts.min_edge_weight = 0.25;
  auto star = WorkloadGraphBuilder::BuildStar(traces, stats, opts);
  // Read-only records have Pc = 0; the floor keeps the edges meaningful.
  for (uint32_t v = 0; v < star.records.size(); ++v) {
    EXPECT_DOUBLE_EQ(star.graph.adj[v][0].second, 0.25);
  }
}

TEST(WorkloadGraphTest, LoadMetricVertexWeights) {
  std::vector<TxnAccessTrace> traces = {Trace({{1, true}, {2, false}}, 3)};
  StatsCollector stats;
  stats.ObserveTrace(traces[0]);
  WorkloadGraphBuilder::StarOptions opts;
  opts.metric = LoadMetric::kTxnCount;
  auto star = WorkloadGraphBuilder::BuildStar(traces, stats, opts);
  // t-vertex carries the multiplicity; r-vertices weigh nothing.
  EXPECT_DOUBLE_EQ(star.graph.vwgt[star.records.size()], 3.0);
  EXPECT_DOUBLE_EQ(star.graph.vwgt[0], 0.0);

  opts.metric = LoadMetric::kAccessCount;
  auto star2 = WorkloadGraphBuilder::BuildStar(traces, stats, opts);
  EXPECT_DOUBLE_EQ(star2.graph.vwgt[0], 3.0);  // 3 accesses (multiplicity)
}

// ---------- Multilevel partitioner ----------

Graph TwoCliques(uint32_t size, double bridge_weight) {
  Graph g;
  g.adj.resize(2 * size);
  g.vwgt.assign(2 * size, 1.0);
  auto add = [&](uint32_t a, uint32_t b, double w) {
    g.adj[a].emplace_back(b, w);
    g.adj[b].emplace_back(a, w);
  };
  for (uint32_t c = 0; c < 2; ++c) {
    for (uint32_t i = 0; i < size; ++i) {
      for (uint32_t j = i + 1; j < size; ++j) {
        add(c * size + i, c * size + j, 1.0);
      }
    }
  }
  add(0, size, bridge_weight);
  return g;
}

TEST(MultilevelPartitionerTest, FindsObviousBisection) {
  Graph g = TwoCliques(20, 0.5);
  auto result = MultilevelPartitioner::Partition(g, {.k = 2, .seed = 3});
  // The only cut edge should be the bridge.
  EXPECT_DOUBLE_EQ(result.cut_weight, 0.5);
  // Each clique wholly on one side.
  for (uint32_t v = 1; v < 20; ++v) {
    EXPECT_EQ(result.assignment[v], result.assignment[0]);
  }
  for (uint32_t v = 21; v < 40; ++v) {
    EXPECT_EQ(result.assignment[v], result.assignment[20]);
  }
}

TEST(MultilevelPartitionerTest, RespectsBalanceBound) {
  Rng rng(11);
  Graph g;
  const uint32_t n = 500;
  g.adj.resize(n);
  g.vwgt.assign(n, 1.0);
  for (uint32_t e = 0; e < 2000; ++e) {
    uint32_t a = rng.Uniform(n), b = rng.Uniform(n);
    if (a == b) continue;
    const double w = 1.0 + rng.NextDouble();
    g.adj[a].emplace_back(b, w);
    g.adj[b].emplace_back(a, w);
  }
  for (uint32_t k : {2u, 4u, 8u}) {
    auto result = MultilevelPartitioner::Partition(
        g, {.k = k, .epsilon = 0.1, .seed = 5});
    auto loads = MultilevelPartitioner::Loads(g, result.assignment, k);
    const double avg = g.TotalVertexWeight() / k;
    for (double load : loads) {
      EXPECT_LE(load, (1.0 + 0.1) * avg + 1.0) << "k=" << k;
    }
    // All partitions used.
    std::set<uint32_t> used(result.assignment.begin(),
                            result.assignment.end());
    EXPECT_EQ(used.size(), k);
  }
}

TEST(MultilevelPartitionerTest, BeatsRandomAssignment) {
  Rng rng(13);
  // Ring of clusters: strong intra-cluster edges, weak ring edges.
  Graph g;
  const uint32_t clusters = 8, per = 25;
  const uint32_t n = clusters * per;
  g.adj.resize(n);
  g.vwgt.assign(n, 1.0);
  auto add = [&](uint32_t a, uint32_t b, double w) {
    g.adj[a].emplace_back(b, w);
    g.adj[b].emplace_back(a, w);
  };
  for (uint32_t c = 0; c < clusters; ++c) {
    for (uint32_t i = 0; i < per; ++i) {
      for (uint32_t j = i + 1; j < per; ++j) {
        add(c * per + i, c * per + j, 5.0);
      }
    }
    add(c * per, ((c + 1) % clusters) * per, 0.1);
  }
  auto result = MultilevelPartitioner::Partition(
      g, {.k = 4, .epsilon = 0.1, .seed = 17});
  std::vector<uint32_t> random(n);
  for (auto& p : random) p = static_cast<uint32_t>(rng.Uniform(4));
  const double random_cut = MultilevelPartitioner::CutWeight(g, random);
  EXPECT_LT(result.cut_weight, random_cut / 10.0);
}

TEST(MultilevelPartitionerTest, DeterministicForSeed) {
  Graph g = TwoCliques(30, 1.0);
  auto a = MultilevelPartitioner::Partition(g, {.k = 2, .seed = 42});
  auto b = MultilevelPartitioner::Partition(g, {.k = 2, .seed = 42});
  EXPECT_EQ(a.assignment, b.assignment);
  EXPECT_EQ(a.cut_weight, b.cut_weight);
}

TEST(MultilevelPartitionerTest, SinglePartitionTrivial) {
  Graph g = TwoCliques(10, 1.0);
  auto result = MultilevelPartitioner::Partition(g, {.k = 1});
  EXPECT_DOUBLE_EQ(result.cut_weight, 0.0);
  for (uint32_t p : result.assignment) EXPECT_EQ(p, 0u);
}

TEST(MultilevelPartitionerTest, ZeroWeightVerticesDontBreakBalance) {
  Graph g;
  g.adj.resize(100);
  g.vwgt.assign(100, 0.0);
  for (uint32_t v = 0; v < 50; ++v) g.vwgt[v] = 1.0;
  for (uint32_t v = 0; v + 1 < 100; ++v) {
    g.adj[v].emplace_back(v + 1, 1.0);
    g.adj[v + 1].emplace_back(v, 1.0);
  }
  auto result = MultilevelPartitioner::Partition(
      g, {.k = 2, .epsilon = 0.1, .seed = 9});
  auto loads = MultilevelPartitioner::Loads(g, result.assignment, 2);
  EXPECT_LE(std::max(loads[0], loads[1]), 1.1 * 25.0 + 1.0);
}

// ---------- Figure 5 example ----------

/// The 7-record, 4-transaction workload of paper Figure 5. Record keys:
/// 1..7; t2 and t3 write the contended records, t1/t4 read.
std::vector<TxnAccessTrace> Figure5Workload() {
  std::vector<TxnAccessTrace> traces;
  // t1: reads 1, 2, 3 (account sums)
  traces.push_back(Trace({{1, false}, {2, false}, {3, false}}, 40));
  // t2: updates 3, 4, 6
  traces.push_back(Trace({{3, true}, {4, true}, {6, true}}, 40));
  // t3: updates 4, 5
  traces.push_back(Trace({{4, true}, {5, true}}, 40));
  // t4: reads 4, 7
  traces.push_back(Trace({{4, false}, {7, false}}, 40));
  return traces;
}

TEST(Figure5Test, Record4IsHottest) {
  StatsCollector stats;
  for (const auto& t : Figure5Workload()) stats.ObserveTrace(t);
  auto pcs = stats.ContentionLikelihoods(4.0);
  // Record 4 is written by t2 and t3 and read by t4: the darkest red.
  EXPECT_EQ(pcs[0].first, (RecordId{0, 4}));
}

TEST(Figure5Test, ChillerCoLocatesContendedRecords) {
  auto traces = Figure5Workload();
  ChillerPartitioner::Options opts;
  opts.k = 2;
  opts.epsilon = 0.4;  // the example wants a 4/3-ish split of 7 records
  opts.lock_window_txns = 4.0;
  opts.hot_threshold = 1e-3;
  auto out = ChillerPartitioner::Build(traces, opts);
  auto& part = *out.partitioner;
  // The contended cluster {3,4,5,6} of t2/t3 must be co-located so a single
  // inner region can hold every hot record (Figure 5c).
  const PartitionId p4 = part.PartitionOf({0, 4});
  EXPECT_EQ(part.PartitionOf({0, 3}), p4);
  EXPECT_EQ(part.PartitionOf({0, 5}), p4);
  EXPECT_EQ(part.PartitionOf({0, 6}), p4);
  // Records 4 (and friends) are flagged hot.
  EXPECT_TRUE(part.IsHot({0, 4}));
}

TEST(Figure5Test, SchismMinimizesDistributedTxns) {
  auto traces = Figure5Workload();
  auto schism = SchismPartitioner::Build(traces, {.k = 2, .epsilon = 0.4});
  auto chiller = ChillerPartitioner::Build(
      traces, {.k = 2, .epsilon = 0.4, .lock_window_txns = 4.0});
  const double schism_dist = DistributedRatio(traces, *schism.partitioner);
  const double chiller_dist = DistributedRatio(traces, *chiller.partitioner);
  // Schism's objective is fewer distributed transactions...
  EXPECT_LE(schism_dist, chiller_dist + 1e-9);
  // ...but Chiller achieves lower residual contention (the new objective).
  StatsCollector stats;
  for (const auto& t : traces) stats.ObserveTrace(t);
  const double schism_cont =
      ResidualContention(traces, *schism.partitioner, stats, 4.0);
  const double chiller_cont =
      ResidualContention(traces, *chiller.partitioner, stats, 4.0);
  EXPECT_LE(chiller_cont, schism_cont + 1e-9);
}

// ---------- Pipelines ----------

std::vector<TxnAccessTrace> SkewedWorkload(uint64_t seed, int txns) {
  Rng rng(seed);
  ZipfGenerator zipf(1000, 0.9);
  std::vector<TxnAccessTrace> traces;
  for (int i = 0; i < txns; ++i) {
    TxnAccessTrace t;
    std::set<Key> keys;
    while (keys.size() < 5) keys.insert(zipf.Next(&rng));
    for (Key k : keys) t.accesses.emplace_back(RecordId{0, k}, true);
    traces.push_back(std::move(t));
  }
  return traces;
}

TEST(ChillerPartitionerTest, HotOnlyLookupIsSmall) {
  auto traces = SkewedWorkload(3, 2000);
  ChillerPartitioner::Options opts;
  opts.k = 4;
  opts.hot_threshold = 0.05;
  auto out = ChillerPartitioner::Build(traces, opts);
  // Hot-only lookup table (Section 4.4): far fewer entries than records.
  EXPECT_GT(out.report.lookup_entries, 0u);
  EXPECT_LT(out.report.lookup_entries, 200u);
  EXPECT_EQ(out.report.lookup_entries, out.report.hot_entries);
  // Schism must store every record it saw.
  auto schism = SchismPartitioner::Build(traces, {.k = 4});
  EXPECT_GT(schism.report.lookup_entries,
            5 * out.report.lookup_entries);
}

TEST(ChillerPartitionerTest, StoreColdGrowsLookup) {
  auto traces = SkewedWorkload(5, 1000);
  ChillerPartitioner::Options opts;
  opts.k = 2;
  opts.hot_threshold = 0.05;
  opts.store_cold_placements = true;
  auto out = ChillerPartitioner::Build(traces, opts);
  EXPECT_GT(out.report.lookup_entries, out.report.hot_entries);
}

TEST(ChillerPartitionerTest, ColdRecordsFallBackToHash) {
  auto traces = SkewedWorkload(7, 500);
  auto out = ChillerPartitioner::Build(traces, {.k = 4});
  // A record never observed must still resolve to a valid partition.
  for (Key k = 100000; k < 100100; ++k) {
    EXPECT_LT(out.partitioner->PartitionOf({0, k}), 4u);
    EXPECT_FALSE(out.partitioner->IsHot({0, k}));
  }
}

TEST(ChillerPartitionerTest, StarGraphSmallerThanSchism) {
  auto traces = SkewedWorkload(9, 2000);
  auto chiller = ChillerPartitioner::Build(traces, {.k = 4});
  auto schism = SchismPartitioner::Build(traces, {.k = 4});
  EXPECT_LT(chiller.report.graph_edges, schism.report.graph_edges);
}

TEST(ChillerPartitionerTest, HotRecordsSortedByContention) {
  auto traces = SkewedWorkload(11, 1000);
  auto out = ChillerPartitioner::Build(traces, {.k = 2});
  for (size_t i = 1; i < out.hot_records.size(); ++i) {
    EXPECT_GE(out.hot_records[i - 1].second, out.hot_records[i].second);
  }
}

TEST(MetricsTest, DistributedRatioBounds) {
  auto traces = SkewedWorkload(13, 300);
  HashPartitioner hash(4);
  const double r = DistributedRatio(traces, hash);
  EXPECT_GE(r, 0.0);
  EXPECT_LE(r, 1.0);
  HashPartitioner one(1);
  EXPECT_DOUBLE_EQ(DistributedRatio(traces, one), 0.0);
}

}  // namespace
}  // namespace chiller::partition
