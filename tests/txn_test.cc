// Tests for the transaction framework: op validation, dependency analysis,
// and the two-region run-time decision (paper Sections 3.2-3.3), exercised
// on synthetic op lists and on the Figure 4 flight-booking procedure.
#include <gtest/gtest.h>

#include <algorithm>

#include "txn/dependency_graph.h"
#include "txn/operation.h"
#include "txn/transaction.h"
#include "workload/flight.h"

namespace chiller::txn {
namespace {

using storage::LockMode;
using workload::FlightPartitioner;
using workload::FlightSchema;

/// A minimal update op on table 0 keyed by param `p`.
Operation SimpleOp(int tmpl, Key key, OpType type = OpType::kUpdate) {
  Operation op;
  op.template_id = tmpl;
  op.type = type;
  op.table = 0;
  op.mode = type == OpType::kRead ? LockMode::kShared : LockMode::kExclusive;
  op.key_fn = [key](const TxnContext&) { return key; };
  if (type == OpType::kUpdate) {
    op.on_apply = [](TxnContext&, storage::Record* r) { r->Add(0, 1); };
  }
  if (type == OpType::kInsert) {
    op.make_record = [](const TxnContext&) { return storage::Record(1); };
  }
  return op;
}

Transaction MakeTxn(std::vector<Operation> ops) {
  Transaction t;
  t.ops = std::move(ops);
  t.InitAccesses();
  return t;
}

// ---------- Validate ----------

TEST(ValidateTest, AcceptsWellFormed) {
  auto t = MakeTxn({SimpleOp(0, 1), SimpleOp(1, 2)});
  EXPECT_TRUE(DependencyAnalysis::Validate(t.ops).ok());
}

TEST(ValidateTest, RejectsForwardPkDep) {
  auto ops = std::vector<Operation>{SimpleOp(0, 1), SimpleOp(1, 2)};
  ops[0].pk_deps = {1};  // depends on a later op
  EXPECT_TRUE(DependencyAnalysis::Validate(ops).IsInvalidArgument());
}

TEST(ValidateTest, RejectsSelfVDep) {
  auto ops = std::vector<Operation>{SimpleOp(0, 1)};
  ops[0].v_deps = {0};
  EXPECT_TRUE(DependencyAnalysis::Validate(ops).IsInvalidArgument());
}

TEST(ValidateTest, RejectsInsertWithoutMakeRecord) {
  auto ops = std::vector<Operation>{SimpleOp(0, 1, OpType::kInsert)};
  ops[0].make_record = nullptr;
  EXPECT_TRUE(DependencyAnalysis::Validate(ops).IsInvalidArgument());
}

TEST(ValidateTest, RejectsSharedModeWrite) {
  auto ops = std::vector<Operation>{SimpleOp(0, 1)};
  ops[0].mode = LockMode::kShared;
  EXPECT_TRUE(DependencyAnalysis::Validate(ops).IsInvalidArgument());
}

TEST(ValidateTest, RejectsCoLocationWithoutParent) {
  auto ops = std::vector<Operation>{SimpleOp(0, 1)};
  ops[0].co_located_with_dep = true;
  EXPECT_TRUE(DependencyAnalysis::Validate(ops).IsInvalidArgument());
}

TEST(ValidateTest, RejectsMissingKeyFn) {
  auto ops = std::vector<Operation>{SimpleOp(0, 1)};
  ops[0].key_fn = nullptr;
  EXPECT_TRUE(DependencyAnalysis::Validate(ops).IsInvalidArgument());
}

TEST(PkChildrenTest, InvertsEdges) {
  auto ops = std::vector<Operation>{SimpleOp(0, 1), SimpleOp(1, 2),
                                    SimpleOp(2, 3)};
  ops[1].pk_deps = {0};
  ops[2].pk_deps = {0, 1};
  auto children = DependencyAnalysis::PkChildren(ops);
  EXPECT_EQ(children[0], (std::vector<int>{1, 2}));
  EXPECT_EQ(children[1], (std::vector<int>{2}));
  EXPECT_TRUE(children[2].empty());
}

// ---------- Plan on synthetic transactions ----------

/// Everything on table 0 partitions by key; keys < 100 are hot.
PartitionFn KeyModPartitions(uint32_t k) {
  return [k](const RecordId& rid) {
    return static_cast<PartitionId>(rid.key % k);
  };
}
HotFn KeysBelow(Key hot_below) {
  return [hot_below](const RecordId& rid) { return rid.key < hot_below; };
}

TEST(PlanTest, NoHotRecordsFallsBack) {
  auto t = MakeTxn({SimpleOp(0, 200), SimpleOp(1, 301)});
  t.ResolveReadyKeys();
  for (auto& a : t.accesses) a.partition = a.rid.key % 4;
  auto plan = DependencyAnalysis::Plan(t, KeysBelow(100),
                                       KeyModPartitions(4));
  EXPECT_FALSE(plan.two_region);
  EXPECT_EQ(plan.fallback_reason, "no eligible hot records");
}

TEST(PlanTest, SingleHotRecordBecomesInner) {
  auto t = MakeTxn({SimpleOp(0, 5), SimpleOp(1, 202), SimpleOp(2, 303)});
  t.ResolveReadyKeys();
  for (auto& a : t.accesses) a.partition = a.rid.key % 4;
  auto plan = DependencyAnalysis::Plan(t, KeysBelow(100),
                                       KeyModPartitions(4));
  ASSERT_TRUE(plan.two_region);
  EXPECT_EQ(plan.inner_host, 5u % 4);
  EXPECT_EQ(plan.inner_ops, (std::vector<int>{0}));
  EXPECT_EQ(plan.outer_ops, (std::vector<int>{1, 2}));
  EXPECT_TRUE(plan.deferred_apply.empty());
}

TEST(PlanTest, HostWithMostHotRecordsWins) {
  // Hot keys 4 and 8 on partition 0 (two records), hot key 5 on partition 1.
  auto t = MakeTxn({SimpleOp(0, 4), SimpleOp(1, 8), SimpleOp(2, 5)});
  t.ResolveReadyKeys();
  for (auto& a : t.accesses) a.partition = a.rid.key % 4;
  auto plan = DependencyAnalysis::Plan(t, KeysBelow(100),
                                       KeyModPartitions(4));
  ASSERT_TRUE(plan.two_region);
  EXPECT_EQ(plan.inner_host, 0u);
  EXPECT_EQ(plan.inner_ops, (std::vector<int>{0, 1}));
  // The hot record on partition 1 must stay in the outer region: at most
  // one inner host per transaction (Section 2.2).
  EXPECT_EQ(plan.outer_ops, (std::vector<int>{2}));
}

TEST(PlanTest, ColdOpOnInnerHostJoinsInner) {
  // Key 4 hot on partition 0; key 8 cold but also on partition 0.
  auto t = MakeTxn({SimpleOp(0, 4), SimpleOp(1, 8)});
  t.ResolveReadyKeys();
  for (auto& a : t.accesses) a.partition = a.rid.key % 4;
  auto plan = DependencyAnalysis::Plan(t, KeysBelow(5), KeyModPartitions(4));
  ASSERT_TRUE(plan.two_region);
  EXPECT_EQ(plan.inner_ops, (std::vector<int>{0, 1}));
}

TEST(PlanTest, HotRecordWithRemoteChildStaysOuter) {
  // Op 1's key derives from hot op 0 but resolves to another partition and
  // carries no co-location guarantee: op 0 cannot enter an inner region
  // (Section 3.3 step 1).
  auto ops = std::vector<Operation>{SimpleOp(0, 4), SimpleOp(1, 0)};
  ops[1].pk_deps = {0};
  ops[1].key_fn = [](const TxnContext&) { return Key{7}; };
  auto t = MakeTxn(std::move(ops));
  t.ResolveReadyKeys();  // only op 0 resolves
  ASSERT_TRUE(t.accesses[0].key_resolved);
  ASSERT_FALSE(t.accesses[1].key_resolved);
  t.accesses[0].partition = 0;
  auto plan = DependencyAnalysis::Plan(t, KeysBelow(5), KeyModPartitions(4));
  EXPECT_FALSE(plan.two_region);
}

TEST(PlanTest, CoLocatedChildFollowsParentIntoInner) {
  auto ops = std::vector<Operation>{SimpleOp(0, 4), SimpleOp(1, 0)};
  ops[1].pk_deps = {0};
  ops[1].co_located_with_dep = true;
  auto t = MakeTxn(std::move(ops));
  t.ResolveReadyKeys();
  t.accesses[0].partition = 0;
  auto plan = DependencyAnalysis::Plan(t, KeysBelow(5), KeyModPartitions(4));
  ASSERT_TRUE(plan.two_region);
  EXPECT_EQ(plan.inner_ops, (std::vector<int>{0, 1}));
}

TEST(PlanTest, OuterGuardOnInnerReadForcesFallback) {
  // Op 1 (cold, remote partition) has a guard that value-depends on hot
  // op 0's read: evaluating it after the inner region committed could
  // demand a post-commit abort, so the planner must fall back.
  auto ops = std::vector<Operation>{SimpleOp(0, 4), SimpleOp(1, 201)};
  ops[1].v_deps = {0};
  ops[1].guard = [](const TxnContext&) { return true; };
  auto t = MakeTxn(std::move(ops));
  t.ResolveReadyKeys();
  for (auto& a : t.accesses) a.partition = a.rid.key % 4;
  auto plan = DependencyAnalysis::Plan(t, KeysBelow(5), KeyModPartitions(4));
  EXPECT_FALSE(plan.two_region);
}

TEST(PlanTest, OuterWriteWithInnerVDepIsDeferred) {
  auto ops = std::vector<Operation>{SimpleOp(0, 4), SimpleOp(1, 201)};
  ops[1].v_deps = {0};
  auto t = MakeTxn(std::move(ops));
  t.ResolveReadyKeys();
  for (auto& a : t.accesses) a.partition = a.rid.key % 4;
  auto plan = DependencyAnalysis::Plan(t, KeysBelow(5), KeyModPartitions(4));
  ASSERT_TRUE(plan.two_region);
  EXPECT_EQ(plan.deferred_apply, (std::vector<int>{1}));
}

TEST(PlanTest, AtMostOneInnerHostProperty) {
  // Property sweep: whatever the key mix, all inner ops share one partition.
  for (uint64_t seed = 0; seed < 50; ++seed) {
    Rng rng(seed);
    std::vector<Operation> ops;
    for (int i = 0; i < 8; ++i) {
      ops.push_back(SimpleOp(i, rng.Uniform(300)));
    }
    auto t = MakeTxn(std::move(ops));
    t.ResolveReadyKeys();
    for (auto& a : t.accesses) a.partition = a.rid.key % 5;
    auto plan = DependencyAnalysis::Plan(t, KeysBelow(50),
                                         KeyModPartitions(5));
    if (!plan.two_region) continue;
    for (int i : plan.inner_ops) {
      EXPECT_EQ(t.accesses[static_cast<size_t>(i)].partition,
                plan.inner_host);
    }
    // inner + outer is a partition of all ops
    EXPECT_EQ(plan.inner_ops.size() + plan.outer_ops.size(), t.ops.size());
  }
}

// ---------- The Figure 4 flight procedure ----------

TEST(FlightPlanTest, ValidatesAndMatchesPaperDecomposition) {
  // Pick a flight on partition 1 and a customer that hashes elsewhere.
  FlightPartitioner part(4, /*hot_flights=*/10);
  const Key flight = 5;  // partition 1, hot
  Key cust = 0;
  while (part.PartitionOf({FlightSchema::kCustomer, cust}) ==
         part.PartitionOf({FlightSchema::kFlight, flight})) {
    ++cust;
  }
  auto t = workload::MakeBookingTxn(flight, cust);
  ASSERT_TRUE(DependencyAnalysis::Validate(t->ops).ok());

  t->ResolveReadyKeys();
  for (auto& a : t->accesses) {
    if (a.key_resolved) a.partition = part.PartitionOf(a.rid);
  }
  // tread (op 2) and sins (op 5) have unresolved keys before execution.
  EXPECT_FALSE(t->accesses[2].key_resolved);
  EXPECT_FALSE(t->accesses[5].key_resolved);

  auto plan = DependencyAnalysis::Plan(
      *t, [&](const RecordId& r) { return part.IsHot(r); },
      [&](const RecordId& r) { return part.PartitionOf(r); });
  ASSERT_TRUE(plan.two_region) << plan.fallback_reason;
  EXPECT_EQ(plan.inner_host, part.PartitionOf({FlightSchema::kFlight, flight}));
  // Inner: fread (0), fupd (3), sins (5). Outer: cread (1), tread (2),
  // cupd (4) with cupd deferred to phase 2 — the paper's decomposition.
  EXPECT_EQ(plan.inner_ops, (std::vector<int>{0, 3, 5}));
  EXPECT_EQ(plan.outer_ops, (std::vector<int>{1, 2, 4}));
  EXPECT_EQ(plan.deferred_apply, (std::vector<int>{4}));
}

TEST(FlightPlanTest, ColdFlightRunsNormally) {
  FlightPartitioner part(4, /*hot_flights=*/10);
  auto t = workload::MakeBookingTxn(/*flight=*/500, /*cust=*/3);
  t->ResolveReadyKeys();
  for (auto& a : t->accesses) {
    if (a.key_resolved) a.partition = part.PartitionOf(a.rid);
  }
  auto plan = DependencyAnalysis::Plan(
      *t, [&](const RecordId& r) { return part.IsHot(r); },
      [&](const RecordId& r) { return part.PartitionOf(r); });
  EXPECT_FALSE(plan.two_region);
}

TEST(FlightPlanTest, SeatsCoLocatedWithFlight) {
  FlightPartitioner part(8, 10);
  for (Key f = 0; f < 100; ++f) {
    const PartitionId pf = part.PartitionOf({FlightSchema::kFlight, f});
    for (Key s = 0; s < 5; ++s) {
      EXPECT_EQ(part.PartitionOf(
                    {FlightSchema::kSeats, f * FlightSchema::kSeatStride + s}),
                pf);
    }
  }
}

}  // namespace
}  // namespace chiller::txn
