// Quickstart: declare two scenarios — the paper's Figure 5 mini-workload
// under plain 2PL+2PC and under Chiller two-region execution — and run
// them through the scenario runner.
//
//   $ ./build/examples/quickstart
#include <cstdio>

#include "runner/sweep.h"

using namespace chiller;

int main() {
  // One spec per protocol: 3 nodes, one engine each, replication degree 2,
  // the flight-booking workload with 6 contended hot flights. Everything
  // else (schema, partitioner, data load, driver) is wired by the runner.
  std::vector<runner::ScenarioSpec> specs;
  for (const char* proto : {"chiller-plain", "chiller"}) {
    runner::ScenarioSpec spec;
    spec.label = proto;
    spec.workload = "flight";
    spec.protocol = proto;
    spec.nodes = 3;
    spec.engines_per_node = 1;
    spec.concurrency = 4;
    spec.warmup = 2 * kMillisecond;
    spec.measure = 40 * kMillisecond;
    spec.options.Set("hot_flights", 6);
    specs.push_back(std::move(spec));
  }

  std::printf("Flight booking on 3 nodes, hot flights contended:\n\n");

  // The two simulated clusters are independent, so they can run on two
  // worker threads; results come back in spec order either way.
  runner::SweepExecutor executor(/*jobs=*/2);
  auto results = executor.Run(specs);
  for (const auto& r : results) {
    if (!r.ok()) {
      std::fprintf(stderr, "%s\n", r.status().ToString().c_str());
      return 1;
    }
  }

  const char* names[] = {"plain 2PL + 2PC", "Chiller two-region"};
  for (size_t i = 0; i < results.size(); ++i) {
    const cc::RunStats& stats = results[i]->stats;
    std::printf("%-24s throughput=%7.1f K txns/s  abort-rate=%.3f  "
                "p99 latency=%.1f us\n",
                names[i], stats.Throughput() / 1000.0, stats.AbortRate(),
                stats.FindClass(0) == nullptr
                    ? 0.0
                    : stats.FindClass(0)->latency.Percentile(99) / 1000.0);
  }

  const cc::RunStats& plain = results[0]->stats;
  const cc::RunStats& chiller = results[1]->stats;
  std::printf("\nChiller speedup: %.2fx, abort reduction: %.1f%% -> %.1f%%\n",
              chiller.Throughput() / plain.Throughput(),
              100.0 * plain.AbortRate(), 100.0 * chiller.AbortRate());
  return 0;
}
