// Quickstart: build a 3-node simulated cluster, run the paper's Figure 5
// mini-workload under 2PL and under Chiller, and print the stats.
//
//   $ ./build/examples/quickstart
#include <cstdio>
#include <memory>

#include "cc/cluster.h"
#include "cc/driver.h"
#include "cc/twopl.h"
#include "chiller/two_region.h"
#include "common/random.h"
#include "partition/lookup_table.h"
#include "workload/flight.h"

using namespace chiller;

int main() {
  // 1. Describe the cluster: 3 nodes, one engine each, one replica per
  //    partition, RDMA-class network defaults.
  cc::ClusterConfig config;
  config.topology = net::Topology{.num_nodes = 3,
                                  .engines_per_node = 1,
                                  .replication_degree = 2};
  config.schema = workload::FlightSchema::Specs();

  // 2. Pick a workload and a partitioning. The flight-booking workload is
  //    the paper's Figure 4 running example; its partitioner places seats
  //    with their flight and marks the hot flights.
  workload::FlightWorkload::Options wopts;
  wopts.hot_flights = 6;
  workload::FlightWorkload workload(wopts);
  workload::FlightPartitioner partitioner(3, wopts.hot_flights);

  auto run = [&](const char* name, bool two_region) {
    cc::Cluster cluster(config);
    workload.ForEachRecord(
        [&](const RecordId& rid, const storage::Record& rec) {
          cluster.LoadRecord(rid, rec, partitioner);
        });
    cc::ReplicationManager repl(&cluster);
    core::ChillerProtocol protocol(&cluster, &partitioner, &repl, two_region);
    cc::Driver driver(&cluster, &protocol, &workload, /*concurrent=*/4);
    auto stats = driver.Run(2 * kMillisecond, 40 * kMillisecond);
    driver.DrainAndStop();
    std::printf("%-24s throughput=%7.1f K txns/s  abort-rate=%.3f  "
                "p99 latency=%.1f us\n",
                name, stats.Throughput() / 1000.0, stats.AbortRate(),
                stats.classes[0].latency.Percentile(99) / 1000.0);
    return stats;
  };

  std::printf("Flight booking on 3 nodes, hot flights contended:\n\n");
  auto plain = run("plain 2PL + 2PC", false);
  auto chiller = run("Chiller two-region", true);

  std::printf("\nChiller speedup: %.2fx, abort reduction: %.1f%% -> %.1f%%\n",
              chiller.Throughput() / plain.Throughput(),
              100.0 * plain.AbortRate(), 100.0 * chiller.AbortRate());
  return 0;
}
