// Runs the full contention-centric partitioning pipeline (Section 4) on
// the Instacart-like grocery workload and compares the resulting layout
// against Schism and hashing, using the shared layout builder that the
// scenario runner's instacart workload also uses.
//
//   $ ./build/examples/instacart_partitioning
#include <cstdio>

#include "partition/metrics.h"
#include "workload/instacart.h"

using namespace chiller;
namespace instacart = workload::instacart;

int main() {
  instacart::InstacartWorkload::Options wopts;
  wopts.num_products = 20000;
  wopts.num_customers = 50000;
  instacart::InstacartWorkload workload(wopts);

  // 1. Capture a workload trace and build all three layouts for 8
  //    partitions (the sampling statistics service + Section 4 pipeline;
  //    the same call backs every "layout" option of the runner registry's
  //    instacart workload).
  const uint32_t k = 8;
  auto layouts = instacart::BuildInstacartLayouts(&workload, k,
                                                  /*trace_txns=*/10000,
                                                  /*seed=*/7);

  // 2. Contention likelihoods (Section 4.1).
  auto pcs = layouts.stats.ContentionLikelihoods(/*lock_window_txns=*/16.0);
  std::printf("hottest records (Poisson conflict model):\n");
  for (int i = 0; i < 5; ++i) {
    std::printf("  product %-8llu Pc = %.3f\n",
                static_cast<unsigned long long>(pcs[i].first.key),
                pcs[i].second);
  }

  // 3. Compare: the objective each scheme actually optimizes, evaluated on
  //    a fresh sample from the same distribution.
  Rng eval_rng(8);
  auto eval = workload.GenerateTrace(10000, &eval_rng);
  std::printf("\n%-10s %16s %18s %14s %12s\n", "scheme", "distributed-ratio",
              "residual-contention", "lookup-entries", "graph-edges");
  auto report = [&](const char* name, const partition::RecordPartitioner& p,
                    size_t entries, size_t edges) {
    std::printf("%-10s %16.3f %18.1f %14zu %12zu\n", name,
                partition::DistributedRatio(eval, p),
                partition::ResidualContention(eval, p, layouts.stats, 16.0),
                entries, edges);
  };
  report("hash", *layouts.hash_base, 0, 0);
  report("schism", *layouts.schism_out.partitioner,
         layouts.schism_out.report.lookup_entries,
         layouts.schism_out.report.graph_edges);
  report("chiller", *layouts.chiller_out.partitioner,
         layouts.chiller_out.report.lookup_entries,
         layouts.chiller_out.report.graph_edges);

  std::printf("\nchiller hot lookup entries: %zu of %zu records seen "
              "(Section 4.4 optimization)\n",
              layouts.chiller_out.report.hot_entries,
              layouts.schism_out.report.lookup_entries);
  std::printf("note: chiller accepts MORE distributed transactions yet has "
              "far LESS residual contention —\nthe paper's thesis in one "
              "table.\n");
  return 0;
}
