// Runs the full contention-centric partitioning pipeline (Section 4) on
// the Instacart-like grocery workload and compares the resulting layout
// against Schism and hashing.
//
//   $ ./build/examples/instacart_partitioning
#include <cstdio>

#include "partition/chiller_partitioner.h"
#include "partition/metrics.h"
#include "partition/schism.h"
#include "workload/instacart.h"

using namespace chiller;
namespace instacart = workload::instacart;

int main() {
  instacart::InstacartWorkload::Options wopts;
  wopts.num_products = 20000;
  wopts.num_customers = 50000;
  instacart::InstacartWorkload workload(wopts);

  // 1. Capture a workload trace (the sampling statistics service).
  Rng rng(7);
  auto traces = workload.GenerateTrace(10000, &rng);
  partition::StatsCollector stats;
  for (const auto& t : traces) stats.ObserveTrace(t);

  // 2. Contention likelihoods (Section 4.1).
  auto pcs = stats.ContentionLikelihoods(/*lock_window_txns=*/16.0);
  std::printf("hottest records (Poisson conflict model):\n");
  for (int i = 0; i < 5; ++i) {
    std::printf("  product %-8llu Pc = %.3f\n",
                static_cast<unsigned long long>(pcs[i].first.key),
                pcs[i].second);
  }

  // 3. Build all three layouts for 8 partitions.
  const uint32_t k = 8;
  partition::ChillerPartitioner::Options copts;
  copts.k = k;
  copts.hot_threshold = 0.01;
  copts.metric = partition::LoadMetric::kAccessCount;
  copts.fallback_fn = instacart::InstacartFallback;
  auto chiller = partition::ChillerPartitioner::Build(traces, copts);
  auto schism = partition::SchismPartitioner::Build(
      traces, {.k = k, .fallback_fn = instacart::InstacartFallback});
  partition::HashPartitioner hash(k, instacart::InstacartFallback);

  // 4. Compare: the objective each scheme actually optimizes.
  Rng eval_rng(8);
  auto eval = workload.GenerateTrace(10000, &eval_rng);
  std::printf("\n%-10s %16s %18s %14s %12s\n", "scheme", "distributed-ratio",
              "residual-contention", "lookup-entries", "graph-edges");
  auto report = [&](const char* name, const partition::RecordPartitioner& p,
                    size_t entries, size_t edges) {
    std::printf("%-10s %16.3f %18.1f %14zu %12zu\n", name,
                partition::DistributedRatio(eval, p),
                partition::ResidualContention(eval, p, stats, 16.0), entries,
                edges);
  };
  report("hash", hash, 0, 0);
  report("schism", *schism.partitioner, schism.report.lookup_entries,
         schism.report.graph_edges);
  report("chiller", *chiller.partitioner, chiller.report.lookup_entries,
         chiller.report.graph_edges);

  std::printf("\nchiller hot lookup entries: %zu of %zu records seen "
              "(Section 4.4 optimization)\n",
              chiller.report.hot_entries, schism.report.lookup_entries);
  std::printf("note: chiller accepts MORE distributed transactions yet has "
              "far LESS residual contention —\nthe paper's thesis in one "
              "table.\n");
  return 0;
}
