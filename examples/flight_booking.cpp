// Walks through the paper's Figure 4 end to end: the stored procedure, its
// dependency graph, the run-time two-region decision, and one execution
// trace on a cluster wired by ScenarioRunner::Wire (the runner's
// inspection entry point — it hands back the live protocol so this example
// can read the two-region counters after the run).
//
//   $ ./build/examples/flight_booking
#include <cstdio>

#include "chiller/two_region.h"
#include "runner/runner.h"
#include "txn/dependency_graph.h"
#include "workload/flight.h"

using namespace chiller;

namespace {
const char* kOpNames[] = {"fread", "cread", "tread", "fupd", "cupd", "sins"};
}

int main() {
  std::printf("The Figure 4 flight-booking procedure\n");
  std::printf("=====================================\n\n");

  workload::FlightPartitioner partitioner(4, /*hot_flights=*/10);
  auto txn = workload::MakeBookingTxn(/*flight=*/5, /*cust=*/1234);

  // --- static analysis: the dependency graph ---
  auto status = txn::DependencyAnalysis::Validate(txn->ops);
  std::printf("static analysis: %s\n\n", status.ToString().c_str());
  auto children = txn::DependencyAnalysis::PkChildren(txn->ops);
  for (size_t i = 0; i < txn->ops.size(); ++i) {
    std::printf("  op %zu %-6s table=%u pk-deps:[", i, kOpNames[i],
                txn->ops[i].table);
    for (int d : txn->ops[i].pk_deps) std::printf(" %s", kOpNames[d]);
    std::printf(" ] v-deps:[");
    for (int d : txn->ops[i].v_deps) std::printf(" %s", kOpNames[d]);
    std::printf(" ]%s%s\n", txn->ops[i].guard ? " [guarded]" : "",
                txn->ops[i].co_located_with_dep ? " [co-located]" : "");
  }

  // --- run-time decision (Section 3.3 steps 1-2) ---
  txn->InitAccesses();
  txn->ResolveReadyKeys();
  for (auto& a : txn->accesses) {
    if (a.key_resolved) a.partition = partitioner.PartitionOf(a.rid);
  }
  auto plan = txn::DependencyAnalysis::Plan(
      *txn, [&](const RecordId& r) { return partitioner.IsHot(r); },
      [&](const RecordId& r) { return partitioner.PartitionOf(r); });

  std::printf("\nrun-time decision: %s\n",
              plan.two_region ? "two-region execution"
                              : plan.fallback_reason.c_str());
  std::printf("  inner host: partition %u\n", plan.inner_host);
  std::printf("  inner region:");
  for (int i : plan.inner_ops) std::printf(" %s", kOpNames[i]);
  std::printf("\n  outer region:");
  for (int i : plan.outer_ops) std::printf(" %s", kOpNames[i]);
  std::printf("\n  deferred to outer phase 2:");
  for (int i : plan.deferred_apply) std::printf(" %s", kOpNames[i]);
  std::printf("\n\n");

  // --- execute it on a live simulated cluster ---
  runner::ScenarioSpec spec;
  spec.workload = "flight";
  spec.protocol = "chiller";
  spec.nodes = 4;
  spec.engines_per_node = 1;
  spec.concurrency = 2;
  spec.warmup = 1 * kMillisecond;
  spec.measure = 20 * kMillisecond;

  auto env = runner::ScenarioRunner::Wire(spec);
  if (!env.ok()) {
    std::fprintf(stderr, "%s\n", env.status().ToString().c_str());
    return 1;
  }
  auto stats = env->driver->Run(spec.warmup, spec.measure);
  env->driver->DrainAndStop();

  const auto* protocol =
      dynamic_cast<const core::ChillerProtocol*>(env->protocol.get());
  if (protocol == nullptr) {
    std::fprintf(stderr, "registry returned a non-Chiller protocol\n");
    return 1;
  }
  std::printf("executed %llu bookings (%.1f%% as two-region, %.1f%% "
              "fallback 2PL)\n",
              static_cast<unsigned long long>(stats.TotalCommits()),
              100.0 * protocol->counters().two_region_txns /
                  (protocol->counters().two_region_txns +
                   protocol->counters().fallback_txns),
              100.0 * protocol->counters().fallback_txns /
                  (protocol->counters().two_region_txns +
                   protocol->counters().fallback_txns));
  std::printf("inner aborts: %llu, outer aborts: %llu\n",
              static_cast<unsigned long long>(
                  protocol->counters().inner_aborts),
              static_cast<unsigned long long>(
                  protocol->counters().outer_aborts));
  return 0;
}
