// Small-scale TPC-C comparison of the three execution models: 4 warehouses,
// standard mix, by-warehouse partitioning (the Figure 9 setup in miniature).
//
//   $ ./build/examples/tpcc_demo
#include <cstdio>
#include <memory>

#include "cc/cluster.h"
#include "cc/driver.h"
#include "cc/occ.h"
#include "cc/twopl.h"
#include "chiller/two_region.h"
#include "workload/tpcc/tpcc_workload.h"

using namespace chiller;
namespace tpcc = workload::tpcc;

int main() {
  const uint32_t warehouses = 4;
  const uint32_t concurrency = 4;

  std::printf("TPC-C, %u warehouses (one engine each), %u concurrent txns "
              "per warehouse\n\n",
              warehouses, concurrency);
  std::printf("%-10s %14s %12s %18s %18s\n", "protocol", "throughput",
              "abort-rate", "NewOrder aborts", "Payment aborts");

  for (const char* proto : {"2pl", "occ", "chiller"}) {
    cc::ClusterConfig config;
    config.topology = net::Topology{.num_nodes = warehouses,
                                    .engines_per_node = 1,
                                    .replication_degree = 2};
    config.schema = tpcc::Schema();
    cc::Cluster cluster(config);
    tpcc::TpccPartitioner partitioner(warehouses);
    tpcc::PopulateTpcc(
        warehouses,
        [&](const RecordId& rid, const storage::Record& rec) {
          cluster.LoadRecord(rid, rec, partitioner);
        },
        [&](const RecordId& rid, const storage::Record& rec) {
          cluster.LoadEverywhere(rid, rec);
        });
    tpcc::TpccWorkload workload(
        tpcc::TpccWorkload::Options{.num_warehouses = warehouses});
    cc::ReplicationManager repl(&cluster);
    std::unique_ptr<cc::Protocol> protocol;
    if (std::string_view(proto) == "2pl") {
      protocol = std::make_unique<cc::TwoPhaseLocking>(&cluster, &partitioner,
                                                       &repl);
    } else if (std::string_view(proto) == "occ") {
      protocol = std::make_unique<cc::Occ>(&cluster, &partitioner, &repl);
    } else {
      protocol = std::make_unique<core::ChillerProtocol>(&cluster,
                                                         &partitioner, &repl);
    }
    cc::Driver driver(&cluster, protocol.get(), &workload, concurrency);
    auto stats = driver.Run(3 * kMillisecond, 40 * kMillisecond);
    driver.DrainAndStop();
    std::printf("%-10s %11.1f K/s %12.3f %18.3f %18.3f\n", proto,
                stats.Throughput() / 1000.0, stats.AbortRate(),
                stats.classes[tpcc::kNewOrderTxn].AbortRate(),
                stats.classes[tpcc::kPaymentTxn].AbortRate());
  }

  std::printf("\nexpected shape: Chiller commits the most and aborts the "
              "least; Payment suffers\nmost under 2PL (exclusive warehouse "
              "lock vs NewOrder's shared locks).\n");
  return 0;
}
