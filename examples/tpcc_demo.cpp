// Small-scale TPC-C comparison of the three execution models: 4 warehouses,
// standard mix, by-warehouse partitioning (the Figure 9 setup in miniature)
// — three declarative scenarios run through the scenario runner.
//
//   $ ./build/examples/tpcc_demo
#include <cstdio>

#include "runner/sweep.h"
#include "workload/tpcc/tpcc_workload.h"

using namespace chiller;
namespace tpcc = workload::tpcc;

int main() {
  const uint32_t warehouses = 4;
  const uint32_t concurrency = 4;

  std::printf("TPC-C, %u warehouses (one engine each), %u concurrent txns "
              "per warehouse\n\n",
              warehouses, concurrency);
  std::printf("%-10s %14s %12s %18s %18s\n", "protocol", "throughput",
              "abort-rate", "NewOrder aborts", "Payment aborts");

  std::vector<runner::ScenarioSpec> specs;
  for (const char* proto : {"2pl", "occ", "chiller"}) {
    runner::ScenarioSpec spec;
    spec.label = proto;
    spec.workload = "tpcc";
    spec.protocol = proto;
    spec.nodes = warehouses;
    spec.engines_per_node = 1;
    spec.concurrency = concurrency;
    spec.warmup = 3 * kMillisecond;
    spec.measure = 40 * kMillisecond;
    specs.push_back(std::move(spec));
  }

  auto results = runner::SweepExecutor(/*jobs=*/0).Run(specs);
  for (size_t i = 0; i < results.size(); ++i) {
    if (!results[i].ok()) {
      std::fprintf(stderr, "%s\n", results[i].status().ToString().c_str());
      return 1;
    }
    const cc::RunStats& stats = results[i]->stats;
    std::printf("%-10s %11.1f K/s %12.3f %18.3f %18.3f\n",
                specs[i].label.c_str(), stats.Throughput() / 1000.0,
                stats.AbortRate(), stats.ClassAbortRate(tpcc::kNewOrderTxn),
                stats.ClassAbortRate(tpcc::kPaymentTxn));
  }

  std::printf("\nexpected shape: Chiller commits the most and aborts the "
              "least; Payment suffers\nmost under 2PL (exclusive warehouse "
              "lock vs NewOrder's shared locks).\n");
  return 0;
}
