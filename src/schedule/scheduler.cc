#include "schedule/scheduler.h"

#include <utility>

#include "common/logging.h"

namespace chiller::schedule {

namespace {

std::string JoinNames(const std::vector<std::string>& names) {
  std::string out;
  for (const std::string& n : names) {
    if (!out.empty()) out += ", ";
    out += n;
  }
  return out;
}

/// The first hot *written* record of `t` in op order. Writes only, on
/// purpose: under NO_WAIT locking the abort storms worth serializing are
/// exclusive-lock collisions on a hot record, while hot *reads* share
/// their lock freely — classifying readers would serialize work that
/// cannot conflict and turn the class queue itself into the bottleneck.
/// Unresolved keys (pk-dependent ops ahead of execution) are skipped —
/// classification only sees what is knowable at admission. Returns false
/// when no resolved write is hot.
bool FirstHotRecord(const txn::Transaction& t,
                    const partition::RecordPartitioner& part,
                    RecordId* out) {
  for (size_t i = 0; i < t.ops.size(); ++i) {
    if (!t.ops[i].IsWrite()) continue;
    const txn::Access& a = t.accesses[i];
    if (!a.key_resolved) continue;
    if (part.IsHot(a.rid)) {
      *out = a.rid;
      return true;
    }
  }
  return false;
}

/// Stable class of a hot record: the shared RecordId hash folded into the
/// class universe. Pure function of (record, classes) — identical across
/// retries, engines, shard counts, and processes.
uint32_t ClassOfRecord(const RecordId& rid, uint32_t classes) {
  return static_cast<uint32_t>(RecordIdHash{}(rid) % classes);
}

// ---------------------------------------------------------------------------
// fifo — the passthrough
// ---------------------------------------------------------------------------

class FifoScheduler final : public Scheduler {
 public:
  const char* name() const override { return "fifo"; }
  bool Passthrough() const override { return true; }
  uint32_t Classify(const txn::Transaction&) const override {
    return kColdClass;
  }
  EngineId Route(const txn::Transaction&, uint32_t,
                 EngineId arrival) const override {
    return arrival;
  }
};

// ---------------------------------------------------------------------------
// Heat-classified policies
// ---------------------------------------------------------------------------

/// Shared classification for the contention-aware policies: class = hash
/// of the transaction's first hot record (writes preferred), cold when it
/// touches none.
class HeatScheduler : public Scheduler {
 public:
  explicit HeatScheduler(const SchedulerContext& ctx)
      : num_engines_(ctx.num_engines),
        classes_(ctx.EffectiveClasses()),
        partitioner_(ctx.partitioner) {
    CHILLER_CHECK(partitioner_ != nullptr);
    CHILLER_CHECK(num_engines_ >= 1);
  }

  uint32_t Classify(const txn::Transaction& t) const override {
    RecordId hot;
    if (!FirstHotRecord(t, *partitioner_, &hot)) return kColdClass;
    return ClassOfRecord(hot, classes_);
  }

 protected:
  uint32_t num_engines_;
  uint32_t classes_;
  const partition::RecordPartitioner* partitioner_;
};

/// Open-model steering: a hot transaction goes to the engine that owns
/// its hot record (partitions map 1:1 onto engines), which makes the
/// contended access local *and* gives that engine a complete view of the
/// record's conflict class for serialized admission. Cold transactions
/// stay on their arrival engine — steering them would only add a
/// forwarding hop.
class HashAffinityScheduler final : public HeatScheduler {
 public:
  using HeatScheduler::HeatScheduler;

  const char* name() const override { return "hash-affinity"; }
  bool SerializeClasses() const override { return true; }

  EngineId Route(const txn::Transaction& t, uint32_t cls,
                 EngineId arrival) const override {
    if (cls == kColdClass) return arrival;
    RecordId hot;
    if (!FirstHotRecord(t, *partitioner_, &hot)) return arrival;
    return static_cast<EngineId>(partitioner_->PartitionOf(hot) %
                                 num_engines_);
  }
};

/// Batched-model policy: classification only — the batched load model
/// forms conflict-free batches from the classes; there is no cross-engine
/// steering (a batch belongs to its engine).
class BatchPackScheduler final : public HeatScheduler {
 public:
  using HeatScheduler::HeatScheduler;

  const char* name() const override { return "batch-pack"; }

  EngineId Route(const txn::Transaction&, uint32_t,
                 EngineId arrival) const override {
    return arrival;
  }
};

}  // namespace

// ---------------------------------------------------------------------------
// Shed policy
// ---------------------------------------------------------------------------

StatusOr<ShedPolicy> ParseShedPolicy(const std::string& name) {
  if (name == "drop-new") return ShedPolicy::kDropNew;
  if (name == "drop-cold") return ShedPolicy::kDropCold;
  if (name == "drop-hot") return ShedPolicy::kDropHot;
  return Status::InvalidArgument("unknown shed policy '" + name +
                                 "' (known: drop-new, drop-cold, drop-hot)");
}

const char* ShedPolicyName(ShedPolicy policy) {
  switch (policy) {
    case ShedPolicy::kDropNew:
      return "drop-new";
    case ShedPolicy::kDropCold:
      return "drop-cold";
    case ShedPolicy::kDropHot:
      return "drop-hot";
  }
  return "?";
}

int PickVictim(const std::vector<bool>& queued_is_hot, bool arriving_is_hot,
               ShedPolicy policy) {
  if (policy == ShedPolicy::kDropNew) return -1;
  const bool evict_hot = policy == ShedPolicy::kDropHot;
  // The arrival only displaces the *other* temperature; same-temperature
  // contests keep the queue order (shed the arrival).
  if (arriving_is_hot == evict_hot) return -1;
  for (size_t i = queued_is_hot.size(); i > 0; --i) {
    if (queued_is_hot[i - 1] == evict_hot) return static_cast<int>(i - 1);
  }
  return -1;
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

SchedulerRegistry& SchedulerRegistry::Global() {
  static SchedulerRegistry* registry = [] {
    auto* r = new SchedulerRegistry();
    auto must = [](const Status& st) {
      CHILLER_CHECK(st.ok()) << st.ToString();
    };
    must(r->Register("fifo", [](const SchedulerContext&)
                                 -> StatusOr<std::unique_ptr<Scheduler>> {
      return std::unique_ptr<Scheduler>(std::make_unique<FifoScheduler>());
    }));
    must(r->Register(
        "hash-affinity",
        [](const SchedulerContext& ctx)
            -> StatusOr<std::unique_ptr<Scheduler>> {
          if (ctx.partitioner == nullptr) {
            return Status::InvalidArgument(
                "hash-affinity needs a partitioner (the heat source)");
          }
          return std::unique_ptr<Scheduler>(
              std::make_unique<HashAffinityScheduler>(ctx));
        }));
    must(r->Register(
        "batch-pack",
        [](const SchedulerContext& ctx)
            -> StatusOr<std::unique_ptr<Scheduler>> {
          if (ctx.partitioner == nullptr) {
            return Status::InvalidArgument(
                "batch-pack needs a partitioner (the heat source)");
          }
          return std::unique_ptr<Scheduler>(
              std::make_unique<BatchPackScheduler>(ctx));
        }));
    return r;
  }();
  return *registry;
}

Status SchedulerRegistry::Register(const std::string& name,
                                   SchedulerFactory factory) {
  std::lock_guard<std::mutex> lock(mu_);
  if (factories_.contains(name)) {
    return Status::FailedPrecondition("scheduler '" + name +
                                      "' already registered");
  }
  factories_[name] = std::move(factory);
  return Status::OK();
}

StatusOr<std::unique_ptr<Scheduler>> SchedulerRegistry::Make(
    const std::string& name, const SchedulerContext& ctx) const {
  SchedulerFactory factory;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = factories_.find(name);
    if (it == factories_.end()) {
      return Status::InvalidArgument("unknown scheduler '" + name +
                                     "' (known: " + JoinNames(NamesLocked()) +
                                     ")");
    }
    factory = it->second;
  }
  return factory(ctx);
}

bool SchedulerRegistry::Has(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  return factories_.contains(name);
}

std::vector<std::string> SchedulerRegistry::Names() const {
  std::lock_guard<std::mutex> lock(mu_);
  return NamesLocked();
}

std::vector<std::string> SchedulerRegistry::NamesLocked() const {
  std::vector<std::string> names;
  names.reserve(factories_.size());
  for (const auto& [name, factory] : factories_) names.push_back(name);
  return names;
}

// ---------------------------------------------------------------------------
// Validation
// ---------------------------------------------------------------------------

Status ValidateSchedulerNames(const std::string& scheduler,
                              const std::string& shed_policy) {
  if (!SchedulerRegistry::Global().Has(scheduler)) {
    return Status::InvalidArgument(
        "unknown scheduler '" + scheduler +
        "' (known: " + JoinNames(SchedulerRegistry::Global().Names()) + ")");
  }
  auto policy = ParseShedPolicy(shed_policy);
  if (!policy.ok()) return policy.status();
  if (policy.value() != ShedPolicy::kDropNew && scheduler == "fifo") {
    return Status::InvalidArgument(
        "shed policy '" + shed_policy +
        "' needs a classifying scheduler to tell hot from cold; fifo never "
        "classifies (use --scheduler=hash-affinity)");
  }
  return Status::OK();
}

Status ValidateSchedulerParams(const std::string& scheduler,
                               const std::string& shed_policy,
                               const std::string& load_model) {
  Status st = ValidateSchedulerNames(scheduler, shed_policy);
  if (!st.ok()) return st;
  if (scheduler == "hash-affinity" && load_model != "open") {
    return Status::InvalidArgument(
        "scheduler 'hash-affinity' steers an admission queue and needs the "
        "open load model (got '" + load_model +
        "'); use --load-model=open with --offered-tps");
  }
  if (scheduler == "batch-pack" && load_model != "batched") {
    return Status::InvalidArgument(
        "scheduler 'batch-pack' forms conflict-free batches and needs the "
        "batched load model (got '" + load_model +
        "'); use --load-model=batched");
  }
  return Status::OK();
}

}  // namespace chiller::schedule
