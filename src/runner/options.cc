#include "runner/options.h"

#include <charconv>
#include <cstdio>
#include <cstdlib>

namespace chiller::runner {

void OptionMap::Set(const std::string& key, const std::string& value) {
  values_[key] = value;
}

void OptionMap::Set(const std::string& key, const char* value) {
  values_[key] = value;
}

void OptionMap::Set(const std::string& key, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  values_[key] = buf;
}

void OptionMap::Set(const std::string& key, uint64_t value) {
  values_[key] = std::to_string(value);
}

void OptionMap::Set(const std::string& key, bool value) {
  values_[key] = value ? "true" : "false";
}

std::string OptionMap::GetString(const std::string& key,
                                 const std::string& fallback) const {
  auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

double OptionMap::GetDouble(const std::string& key, double fallback) const {
  auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  // std::from_chars<double> is incomplete on some libstdc++ versions; strtod
  // matches the snprintf %.17g round-trip exactly.
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  CHILLER_CHECK(!it->second.empty() &&
                end == it->second.c_str() + it->second.size())
      << "option '" << key << "' = '" << it->second << "' is not a number";
  return v;
}

uint64_t OptionMap::GetInt(const std::string& key, uint64_t fallback) const {
  auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  uint64_t v = 0;
  const char* first = it->second.data();
  const char* last = first + it->second.size();
  auto [ptr, ec] = std::from_chars(first, last, v);
  CHILLER_CHECK(ec == std::errc() && ptr == last)
      << "option '" << key << "' = '" << it->second
      << "' is not an unsigned integer";
  return v;
}

bool OptionMap::GetBool(const std::string& key, bool fallback) const {
  auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  if (it->second == "true" || it->second == "1") return true;
  CHILLER_CHECK(it->second == "false" || it->second == "0")
      << "option '" << key << "' = '" << it->second << "' is not a bool";
  return false;
}

std::vector<std::string> OptionMap::Keys() const {
  std::vector<std::string> keys;
  keys.reserve(values_.size());
  for (const auto& [k, v] : values_) keys.push_back(k);
  return keys;
}

Status OptionMap::ExpectOnly(
    std::initializer_list<std::string_view> allowed) const {
  for (const auto& [key, value] : values_) {
    bool found = false;
    for (std::string_view a : allowed) {
      if (key == a) {
        found = true;
        break;
      }
    }
    if (!found) {
      std::string known;
      for (std::string_view a : allowed) {
        if (!known.empty()) known += ", ";
        known += a;
      }
      return Status::InvalidArgument("unknown option '" + key +
                                     "' (known: " + known + ")");
    }
  }
  return Status::OK();
}

std::string OptionMap::ToString() const {
  std::string out;
  for (const auto& [k, v] : values_) {
    if (!out.empty()) out += ' ';
    out += k;
    out += '=';
    out += v;
  }
  return out;
}

}  // namespace chiller::runner
