// WorkloadBundle implementations for the built-in workloads, absorbing the
// wiring that used to be hand-rolled per bench binary (MakeTpccEnv,
// MakeInstacartEnv + BuildInstacartLayouts, and the example mains).
//
// Each factory reads its knobs from ScenarioSpec::options (validated
// against an allow-list, so a typo'd key fails the scenario instead of
// silently running defaults) and returns a self-contained bundle: sweeps
// run bundles on concurrent workers, so factories never share state.
#include "runner/registry.h"

#include "common/random.h"
#include "workload/flight.h"
#include "workload/instacart.h"
#include "workload/tpcc/tpcc_workload.h"
#include "workload/ycsb.h"

namespace chiller::runner {
namespace {

namespace flight = chiller::workload;
namespace instacart = chiller::workload::instacart;
namespace tpcc = chiller::workload::tpcc;
namespace ycsb = chiller::workload::ycsb;

// ---------------------------------------------------------------------------
// tpcc — one warehouse per engine, partitioned by warehouse (Figures 9/10)
// ---------------------------------------------------------------------------

/// Shared TPC-C knob parsing for the tpcc and adaptive-tpcc factories
/// (same option surface; only the layout differs).
StatusOr<tpcc::TpccWorkload::Options> ParseTpccOptions(
    const ScenarioSpec& spec) {
  const OptionMap& o = spec.options;
  Status st = o.ExpectOnly(
      {"num_warehouses", "remote_new_order_prob", "remote_payment_prob",
       "pct_new_order", "pct_payment", "pct_order_status", "pct_delivery",
       "pct_stock_level", "invalid_item_prob", "stock_level_orders"});
  if (!st.ok()) return st;

  tpcc::TpccWorkload::Options w;
  // The paper's setup: exactly one warehouse per engine/partition.
  w.num_warehouses = static_cast<uint32_t>(
      o.GetInt("num_warehouses", spec.partitions()));
  w.remote_new_order_prob =
      o.GetDouble("remote_new_order_prob", w.remote_new_order_prob);
  w.remote_payment_prob =
      o.GetDouble("remote_payment_prob", w.remote_payment_prob);
  w.pct_new_order =
      static_cast<uint32_t>(o.GetInt("pct_new_order", w.pct_new_order));
  w.pct_payment =
      static_cast<uint32_t>(o.GetInt("pct_payment", w.pct_payment));
  w.pct_order_status =
      static_cast<uint32_t>(o.GetInt("pct_order_status", w.pct_order_status));
  w.pct_delivery =
      static_cast<uint32_t>(o.GetInt("pct_delivery", w.pct_delivery));
  w.pct_stock_level =
      static_cast<uint32_t>(o.GetInt("pct_stock_level", w.pct_stock_level));
  w.invalid_item_prob =
      o.GetDouble("invalid_item_prob", w.invalid_item_prob);
  w.stock_level_orders = static_cast<uint32_t>(
      o.GetInt("stock_level_orders", w.stock_level_orders));
  if (w.pct_new_order + w.pct_payment + w.pct_order_status + w.pct_delivery +
          w.pct_stock_level !=
      100) {
    return Status::InvalidArgument("tpcc mix percentages must sum to 100");
  }
  return w;
}

/// Shared initial-database load: partitioned tables through `partitioner`,
/// ITEM replicated everywhere.
void LoadTpccInto(cc::Cluster* cluster, uint32_t num_warehouses,
                  const partition::RecordPartitioner& partitioner) {
  tpcc::PopulateTpcc(
      num_warehouses,
      [&](const RecordId& rid, const storage::Record& rec) {
        cluster->LoadRecord(rid, rec, partitioner);
      },
      [&](const RecordId& rid, const storage::Record& rec) {
        cluster->LoadEverywhere(rid, rec);
      });
}

class TpccBundle : public WorkloadBundle {
 public:
  TpccBundle(tpcc::TpccWorkload::Options options, uint32_t partitions)
      : workload_(options), partitioner_(partitions) {}

  std::vector<storage::TableSpec> Schema() const override {
    return tpcc::Schema();
  }
  const partition::RecordPartitioner* partitioner() const override {
    return &partitioner_;
  }
  cc::WorkloadSource* source() override { return &workload_; }

  void Load(cc::Cluster* cluster) const override {
    LoadTpccInto(cluster, workload_.options().num_warehouses, partitioner_);
  }

 private:
  tpcc::TpccWorkload workload_;
  tpcc::TpccPartitioner partitioner_;
};

StatusOr<std::unique_ptr<WorkloadBundle>> MakeTpcc(const ScenarioSpec& spec) {
  auto w = ParseTpccOptions(spec);
  if (!w.ok()) return w.status();
  return std::unique_ptr<WorkloadBundle>(
      std::make_unique<TpccBundle>(w.value(), spec.partitions()));
}

// ---------------------------------------------------------------------------
// instacart — grocery checkout under a trace-built layout (Figures 7/8)
// ---------------------------------------------------------------------------

class InstacartBundle : public WorkloadBundle {
 public:
  InstacartBundle(instacart::InstacartWorkload::Options options,
                  instacart::InstacartLayouts layouts,
                  const partition::RecordPartitioner* active)
      : workload_(options), layouts_(std::move(layouts)), active_(active) {}

  std::vector<storage::TableSpec> Schema() const override {
    return instacart::Schema();
  }
  const partition::RecordPartitioner* partitioner() const override {
    return active_;
  }
  cc::WorkloadSource* source() override { return &workload_; }

  void Load(cc::Cluster* cluster) const override {
    workload_.ForEachRecord(
        [&](const RecordId& rid, const storage::Record& rec) {
          cluster->LoadRecord(rid, rec, *active_);
        });
  }

 private:
  instacart::InstacartWorkload workload_;
  instacart::InstacartLayouts layouts_;
  const partition::RecordPartitioner* active_;
};

StatusOr<std::unique_ptr<WorkloadBundle>> MakeInstacart(
    const ScenarioSpec& spec) {
  const OptionMap& o = spec.options;
  Status st = o.ExpectOnly({"num_products", "num_customers", "tail_theta",
                            "layout", "trace_txns", "layout_seed",
                            "hot_threshold"});
  if (!st.ok()) return st;

  instacart::InstacartWorkload::Options w;
  w.num_products = o.GetInt("num_products", w.num_products);
  w.num_customers = o.GetInt("num_customers", w.num_customers);
  w.tail_theta = o.GetDouble("tail_theta", w.tail_theta);

  const std::string layout = o.GetString("layout", "chiller");
  if (layout != "chiller" && layout != "schism" && layout != "hash") {
    return Status::InvalidArgument("unknown instacart layout '" + layout +
                                   "' (known: chiller, hash, schism)");
  }

  // The trace workload is a separate instance from the driver source so the
  // layout never depends on how long the measured run goes on. The Schism
  // build is the expensive one and feeds nothing else, so only the schism
  // layout pays for it.
  instacart::InstacartWorkload trace_workload(w);
  instacart::InstacartLayouts layouts = instacart::BuildInstacartLayouts(
      &trace_workload, spec.partitions(),
      static_cast<size_t>(o.GetInt("trace_txns", 8000)),
      o.GetInt("layout_seed", 7), o.GetDouble("hot_threshold", 0.01),
      /*with_schism=*/layout == "schism");

  const partition::RecordPartitioner* active =
      layout == "chiller" ? layouts.chiller_out.partitioner.get()
      : layout == "schism" ? static_cast<const partition::RecordPartitioner*>(
                                 layouts.schism.get())
                           : layouts.hashing.get();
  return std::unique_ptr<WorkloadBundle>(std::make_unique<InstacartBundle>(
      w, std::move(layouts), active));
}

// ---------------------------------------------------------------------------
// flight — the Figure 4 running example
// ---------------------------------------------------------------------------

class FlightBundle : public WorkloadBundle {
 public:
  FlightBundle(flight::FlightWorkload::Options options, uint32_t partitions)
      : workload_(options),
        partitioner_(partitions, options.hot_flights) {}

  std::vector<storage::TableSpec> Schema() const override {
    return flight::FlightSchema::Specs();
  }
  const partition::RecordPartitioner* partitioner() const override {
    return &partitioner_;
  }
  cc::WorkloadSource* source() override { return &workload_; }

  void Load(cc::Cluster* cluster) const override {
    workload_.ForEachRecord(
        [&](const RecordId& rid, const storage::Record& rec) {
          cluster->LoadRecord(rid, rec, partitioner_);
        });
  }

 private:
  flight::FlightWorkload workload_;
  flight::FlightPartitioner partitioner_;
};

StatusOr<std::unique_ptr<WorkloadBundle>> MakeFlight(
    const ScenarioSpec& spec) {
  const OptionMap& o = spec.options;
  Status st = o.ExpectOnly({"num_flights", "num_customers", "num_states",
                            "hot_flights", "hot_fraction", "initial_seats",
                            "initial_balance"});
  if (!st.ok()) return st;

  flight::FlightWorkload::Options w;
  w.num_flights = o.GetInt("num_flights", w.num_flights);
  w.num_customers = o.GetInt("num_customers", w.num_customers);
  w.num_states = o.GetInt("num_states", w.num_states);
  w.hot_flights = o.GetInt("hot_flights", w.hot_flights);
  w.hot_fraction = o.GetDouble("hot_fraction", w.hot_fraction);
  w.initial_seats =
      static_cast<int64_t>(o.GetInt("initial_seats", w.initial_seats));
  w.initial_balance =
      static_cast<int64_t>(o.GetInt("initial_balance", w.initial_balance));
  return std::unique_ptr<WorkloadBundle>(
      std::make_unique<FlightBundle>(w, spec.partitions()));
}

// ---------------------------------------------------------------------------
// ycsb — synthetic zipf/read-ratio/distributed-ratio workload
// ---------------------------------------------------------------------------

class YcsbBundle : public WorkloadBundle {
 public:
  explicit YcsbBundle(ycsb::YcsbWorkload::Options options)
      : workload_(options),
        partitioner_(options.num_partitions, options.keys_per_partition,
                     options.hot_keys_per_partition) {}

  std::vector<storage::TableSpec> Schema() const override {
    return ycsb::Schema();
  }
  const partition::RecordPartitioner* partitioner() const override {
    return &partitioner_;
  }
  cc::WorkloadSource* source() override { return &workload_; }

  void Load(cc::Cluster* cluster) const override {
    workload_.ForEachRecord(
        [&](const RecordId& rid, const storage::Record& rec) {
          cluster->LoadRecord(rid, rec, partitioner_);
        });
  }

 private:
  ycsb::YcsbWorkload workload_;
  ycsb::YcsbPartitioner partitioner_;
};

StatusOr<ycsb::YcsbWorkload::Options> ParseYcsbOptions(
    const ScenarioSpec& spec) {
  const OptionMap& o = spec.options;
  ycsb::YcsbWorkload::Options w;
  w.num_partitions = spec.partitions();
  w.keys_per_partition = o.GetInt("keys_per_partition", w.keys_per_partition);
  w.theta = o.GetDouble("theta", w.theta);
  w.read_ratio = o.GetDouble("read_ratio", w.read_ratio);
  w.distributed_ratio = o.GetDouble("distributed_ratio", w.distributed_ratio);
  w.ops_per_txn = static_cast<uint32_t>(o.GetInt("ops_per_txn", w.ops_per_txn));
  w.hot_keys_per_partition =
      o.GetInt("hot_keys_per_partition", w.hot_keys_per_partition);
  w.initial_value =
      static_cast<int64_t>(o.GetInt("initial_value", w.initial_value));
  w.shift_every =
      static_cast<SimTime>(o.GetInt("shift_every_us", 0)) * kMicrosecond;
  w.shift_stride = static_cast<uint64_t>(o.GetInt("shift_stride", 0));
  if ((w.shift_every > 0) != (w.shift_stride > 0)) {
    return Status::InvalidArgument(
        "shift_every_us and shift_stride enable the shifting hot set "
        "together (both > 0 or both absent)");
  }
  if (w.shift_stride >= w.keys_per_partition) {
    return Status::InvalidArgument(
        "shift_stride must be < keys_per_partition (the rotation is "
        "modular)");
  }
  if (w.theta < 0.0 || w.theta >= 1.0) {
    return Status::InvalidArgument("ycsb theta must be in [0, 1)");
  }
  if (w.read_ratio < 0.0 || w.read_ratio > 1.0 ||
      w.distributed_ratio < 0.0 || w.distributed_ratio > 1.0) {
    return Status::InvalidArgument(
        "ycsb read_ratio and distributed_ratio must be in [0, 1]");
  }
  if (w.ops_per_txn == 0 || w.ops_per_txn > w.keys_per_partition) {
    return Status::InvalidArgument(
        "ycsb ops_per_txn must be in [1, keys_per_partition]");
  }
  return w;
}

StatusOr<std::unique_ptr<WorkloadBundle>> MakeYcsb(const ScenarioSpec& spec) {
  Status st = spec.options.ExpectOnly(
      {"keys_per_partition", "theta", "read_ratio", "distributed_ratio",
       "ops_per_txn", "hot_keys_per_partition", "initial_value"});
  if (!st.ok()) return st;
  auto w = ParseYcsbOptions(spec);
  if (!w.ok()) return w.status();
  return std::unique_ptr<WorkloadBundle>(
      std::make_unique<YcsbBundle>(w.value()));
}

// ---------------------------------------------------------------------------
// adaptive — ycsb traffic on a layout the runner may rebuild while it runs
// ---------------------------------------------------------------------------

/// The online-repartitioning scenario family (paper Section 4.1 end to
/// end): ycsb traffic starts on a contention-oblivious HashPartitioner
/// layout, and the bundle exposes the live partitioner as swappable so
/// sample/replan/migrate phases can converge it onto a Chiller layout.
class AdaptiveYcsbBundle : public WorkloadBundle {
 public:
  explicit AdaptiveYcsbBundle(ycsb::YcsbWorkload::Options options)
      : workload_(options),
        swappable_(std::make_unique<partition::HashPartitioner>(
            options.num_partitions)) {}

  std::vector<storage::TableSpec> Schema() const override {
    return ycsb::Schema();
  }
  const partition::RecordPartitioner* partitioner() const override {
    return &swappable_;
  }
  partition::SwappablePartitioner* adaptive_partitioner() override {
    return &swappable_;
  }
  cc::WorkloadSource* source() override { return &workload_; }

  void Load(cc::Cluster* cluster) const override {
    // Bind the shifting hot set (if configured) to this cluster's simulated
    // clock; Next() draws happen in engine events, where now() is
    // shard-invariant. Load() is the one hook that sees the cluster.
    workload_.SetClock([cluster] { return cluster->sim()->now(); });
    workload_.ForEachRecord(
        [&](const RecordId& rid, const storage::Record& rec) {
          cluster->LoadRecord(rid, rec, swappable_);
        });
  }

 private:
  /// mutable: Load(cluster) is const in the WorkloadBundle interface but
  /// must bind the clock for the shifting hot set.
  mutable ycsb::YcsbWorkload workload_;
  partition::SwappablePartitioner swappable_;
};

StatusOr<std::unique_ptr<WorkloadBundle>> MakeAdaptive(
    const ScenarioSpec& spec) {
  // hot_keys_per_partition is deliberately not a knob here: pre-replan the
  // hash layout knows no hot records, and post-replan hotness comes from
  // the sampled contention likelihoods, not a rank threshold.
  // shift_every_us / shift_stride stay adaptive-only: a shifting hot set
  // on a frozen layout is just a slower hash workload, and allowing it
  // there would invite apples-to-oranges grids.
  Status st = spec.options.ExpectOnly(
      {"keys_per_partition", "theta", "read_ratio", "distributed_ratio",
       "ops_per_txn", "initial_value", "shift_every_us", "shift_stride"});
  if (!st.ok()) return st;
  auto w = ParseYcsbOptions(spec);
  if (!w.ok()) return w.status();
  return std::unique_ptr<WorkloadBundle>(
      std::make_unique<AdaptiveYcsbBundle>(w.value()));
}

// ---------------------------------------------------------------------------
// adaptive-tpcc — TPC-C traffic on a hash-start layout the runner rebuilds
// ---------------------------------------------------------------------------

/// The multi-table migration scenario: full TPC-C traffic starts on a
/// contention-oblivious record-hash layout (NOT the by-warehouse layout —
/// warehouse affinity is exactly what the replan has to discover), and the
/// swappable partitioner lets sample/replan/migrate phases or the
/// continuous controller converge it. The replan's lookup fallback is the
/// same record hash, so keys born mid-relayout (orders, order lines,
/// history rows) place identically under the outgoing and incoming layouts
/// — the invariant live migration relies on.
class AdaptiveTpccBundle : public WorkloadBundle {
 public:
  AdaptiveTpccBundle(tpcc::TpccWorkload::Options options, uint32_t partitions)
      : workload_(options),
        swappable_(std::make_unique<partition::HashPartitioner>(partitions)) {
  }

  std::vector<storage::TableSpec> Schema() const override {
    return tpcc::Schema();
  }
  const partition::RecordPartitioner* partitioner() const override {
    return &swappable_;
  }
  partition::SwappablePartitioner* adaptive_partitioner() override {
    return &swappable_;
  }
  cc::WorkloadSource* source() override { return &workload_; }

  void Load(cc::Cluster* cluster) const override {
    LoadTpccInto(cluster, workload_.options().num_warehouses, swappable_);
  }

 private:
  tpcc::TpccWorkload workload_;
  partition::SwappablePartitioner swappable_;
};

StatusOr<std::unique_ptr<WorkloadBundle>> MakeAdaptiveTpcc(
    const ScenarioSpec& spec) {
  auto w = ParseTpccOptions(spec);
  if (!w.ok()) return w.status();
  return std::unique_ptr<WorkloadBundle>(
      std::make_unique<AdaptiveTpccBundle>(w.value(), spec.partitions()));
}

}  // namespace

void RegisterBuiltinWorkloads(WorkloadRegistry* registry) {
  auto must = [](const Status& st) { CHILLER_CHECK(st.ok()) << st.ToString(); };
  must(registry->Register("tpcc", MakeTpcc));
  must(registry->Register("instacart", MakeInstacart));
  must(registry->Register("flight", MakeFlight));
  must(registry->Register("ycsb", MakeYcsb));
  must(registry->Register("adaptive", MakeAdaptive));
  must(registry->Register("adaptive-tpcc", MakeAdaptiveTpcc));
}

}  // namespace chiller::runner
