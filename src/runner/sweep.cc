#include "runner/sweep.h"

#include <mutex>
#include <optional>

namespace chiller::runner {

uint32_t ResolveJobs(uint32_t jobs) {
  if (jobs != 0) return jobs;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<uint32_t>(hw);
}

std::vector<StatusOr<ScenarioResult>> SweepExecutor::Run(
    const std::vector<ScenarioSpec>& specs, const ProgressFn& progress) const {
  std::mutex progress_mu;
  auto run_one = [&](size_t i) -> StatusOr<ScenarioResult> {
    StatusOr<ScenarioResult> result = ScenarioRunner::Run(specs[i]);
    if (progress) {
      std::lock_guard<std::mutex> lock(progress_mu);
      progress(i, result);
    }
    return result;
  };
  // ParallelMap needs default-constructed slots; StatusOr has no default
  // state, so map into optionals and unwrap after the barrier.
  auto slots = ParallelMap(
      jobs_, specs.size(),
      [&](size_t i) -> std::optional<StatusOr<ScenarioResult>> {
        return run_one(i);
      });
  std::vector<StatusOr<ScenarioResult>> results;
  results.reserve(slots.size());
  for (auto& slot : slots) results.push_back(std::move(*slot));
  return results;
}

}  // namespace chiller::runner
