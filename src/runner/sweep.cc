#include "runner/sweep.h"

#include <algorithm>
#include <cmath>
#include <condition_variable>
#include <cstdio>
#include <mutex>
#include <optional>

#if defined(__linux__)
#include <unistd.h>
#endif

#include "common/logging.h"
#include "obs/trace_recorder.h"

namespace chiller::runner {

namespace {

/// printf-style float rendering for CHILLER_LOG lines (the stream carries
/// strings; precision lives in the format).
std::string Fmt(const char* format, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), format, v);
  return buf;
}

}  // namespace

uint32_t ResolveJobs(uint32_t jobs) {
  if (jobs != 0) return jobs;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<uint32_t>(hw);
}

double FootprintCalibrationCache::Clamp(double factor) {
  if (!std::isfinite(factor)) return 1.0;
  return std::clamp(factor, kMinFactor, kMaxFactor);
}

bool FootprintCalibrationCache::Load(const std::string& path,
                                     double* factor) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return false;
  double stored = 0.0;
  const int parsed = std::fscanf(f, "chiller-footprint-cache v1 %lf",
                                 &stored);
  std::fclose(f);
  if (parsed != 1 || !std::isfinite(stored)) return false;
  *factor = Clamp(stored);
  return true;
}

bool FootprintCalibrationCache::Save(const std::string& path, double factor) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const int written = std::fprintf(f, "chiller-footprint-cache v1 %.17g\n",
                                   Clamp(factor));
  return std::fclose(f) == 0 && written > 0;
}

std::string FootprintCalibrationCache::PathNextTo(
    const std::string& report_path) {
  constexpr const char* kName = ".chiller_footprint_cache";
  const size_t slash = report_path.find_last_of('/');
  if (slash == std::string::npos) return kName;
  return report_path.substr(0, slash + 1) + kName;
}

uint32_t SweepExecutor::EffectiveJobs(
    const std::vector<ScenarioSpec>& specs) const {
  uint32_t max_shards = 1;
  for (const ScenarioSpec& s : specs) {
    max_shards = std::max(max_shards, std::max<uint32_t>(s.shards, 1));
  }
  return std::max<uint32_t>(1, jobs_ / max_shards);
}

std::vector<StatusOr<ScenarioResult>> SweepExecutor::Run(
    const std::vector<ScenarioSpec>& specs, const ProgressFn& progress) const {
  std::mutex progress_mu;

  // Memory-budget gate: a worker reserves its spec's footprint hint before
  // wiring the scenario and releases it after. The "alone" clause (a
  // worker with nothing else in flight always proceeds) guarantees
  // progress for specs larger than the whole budget.
  //
  // The gate self-calibrates: each completed scenario's observed RSS
  // growth (runner::CurrentRssBytes sampled across wiring + loading)
  // updates an EWMA of actual/hint, and later reservations are scaled by
  // it (clamped to [1/4, 4] — whole-process RSS over-counts under
  // concurrency, so the correction is a trend, not an audit). Only the
  // gate's admission changes; every scenario's results stay a pure
  // function of its spec.
  std::mutex budget_mu;
  std::condition_variable budget_cv;
  uint64_t budget_in_use = 0;
  double calibration = 1.0;
  bool calibrated = false;
  const uint64_t budget = mem_budget_bytes_;
  if (!calibration_cache_.empty() &&
      FootprintCalibrationCache::Load(calibration_cache_, &calibration)) {
    calibrated = true;
    CHILLER_LOG(INFO) << "[sweep] footprint gate calibration x"
                      << Fmt("%.2f", calibration) << " loaded from "
                      << calibration_cache_;
  }
  auto corrected = [&](uint64_t hint) -> uint64_t {
    // Caller holds budget_mu.
    return static_cast<uint64_t>(static_cast<double>(hint) * calibration);
  };
  auto reserve = [&](uint64_t hint) -> uint64_t {
    if (budget == 0 || hint == 0) return 0;
    std::unique_lock<std::mutex> lock(budget_mu);
    uint64_t charge = 0;
    budget_cv.wait(lock, [&] {
      charge = corrected(hint);
      return budget_in_use == 0 || budget_in_use + charge <= budget;
    });
    budget_in_use += charge;
    return charge;
  };
  auto release = [&](uint64_t charge, uint64_t hint, uint64_t observed) {
    if (budget == 0 || hint == 0) return;
    {
      std::lock_guard<std::mutex> lock(budget_mu);
      budget_in_use -= charge;
      if (observed > 0) {
        const double ratio = static_cast<double>(observed) /
                             static_cast<double>(hint);
        constexpr double kAlpha = 0.3;
        calibration = calibrated
                          ? (1.0 - kAlpha) * calibration + kAlpha * ratio
                          : ratio;
        calibration = FootprintCalibrationCache::Clamp(calibration);
        calibrated = true;
      }
    }
    budget_cv.notify_all();
  };

  auto run_one = [&](size_t i) -> StatusOr<ScenarioResult> {
    const uint64_t hint = specs[i].footprint_hint;
    const uint64_t charge = reserve(hint);
    StatusOr<ScenarioResult> result = ScenarioRunner::Run(specs[i]);
    const uint64_t observed = result.ok() ? result->loaded_rss_delta : 0;
    if (budget != 0 && result.ok()) {
      // Estimate-vs-actual log for the self-calibrating gate: the static
      // hint, the correction this reservation was charged at, and the RSS
      // growth observed while this scenario's cluster was loading.
      constexpr double kMb = 1024.0 * 1024.0;
      if (observed == 0) {
        CHILLER_LOG(INFO)
            << "[sweep] scenario " << i << ": footprint hint "
            << Fmt("%.1f", static_cast<double>(hint) / kMb)
            << " MB, charged "
            << Fmt("%.1f", static_cast<double>(charge) / kMb)
            << " MB (RSS probe unavailable or no growth observed)";
      } else {
        CHILLER_LOG(INFO)
            << "[sweep] scenario " << i << ": footprint hint "
            << Fmt("%.1f", static_cast<double>(hint) / kMb)
            << " MB, charged "
            << Fmt("%.1f", static_cast<double>(charge) / kMb)
            << " MB, loaded RSS delta "
            << Fmt("%.1f", static_cast<double>(observed) / kMb)
            << " MB (gate calibration x"
            << Fmt("%.2f", static_cast<double>(observed) /
                               static_cast<double>(hint))
            << ")";
      }
    }
    release(charge, hint, observed);
    if (progress) {
      std::lock_guard<std::mutex> lock(progress_mu);
      progress(i, result);
    }
    return result;
  };
  // Sharded specs occupy several cores each; shrink the worker pool so
  // jobs x shards stays at the machine scale the user asked for.
  const uint32_t workers = EffectiveJobs(specs);
  if (workers != jobs_) {
    CHILLER_LOG(INFO) << "[sweep] sharded scenarios in the grid: running "
                      << workers << " sweep worker(s) instead of " << jobs_
                      << " so jobs x shards does not oversubscribe";
  }
  // ParallelMap needs default-constructed slots; StatusOr has no default
  // state, so map into optionals and unwrap after the barrier.
  auto slots = ParallelMap(
      workers, specs.size(),
      [&](size_t i) -> std::optional<StatusOr<ScenarioResult>> {
        return run_one(i);
      });
  if (!calibration_cache_.empty() && calibrated) {
    if (!FootprintCalibrationCache::Save(calibration_cache_, calibration)) {
      CHILLER_LOG(WARN) << "[sweep] could not persist footprint calibration "
                           "to "
                        << calibration_cache_;
    }
  }
  std::vector<StatusOr<ScenarioResult>> results;
  results.reserve(slots.size());
  for (auto& slot : slots) results.push_back(std::move(*slot));
  if (!trace_out_.empty()) {
    // Merge this call's traces into the cumulative event buffer in spec
    // order (completion order is scheduling-dependent; spec order is not)
    // and rewrite the whole file, so the trace on disk is valid JSON after
    // every Run call. Each scenario's nodes get a fresh pid range.
    for (const StatusOr<ScenarioResult>& r : results) {
      if (!r.ok() || r->trace == nullptr || !r->trace->active()) continue;
      const std::string label =
          r->spec.label.empty() ? r->spec.workload + "/" + r->spec.protocol
                                : r->spec.label;
      r->trace->AppendEvents(&trace_events_, trace_pid_base_, label);
      trace_pid_base_ += r->trace->num_pids();
    }
    const std::string json = obs::TraceRecorder::WrapTrace(trace_events_);
    std::FILE* f = std::fopen(trace_out_.c_str(), "w");
    if (f == nullptr) {
      CHILLER_LOG(WARN) << "[sweep] could not open trace output "
                        << trace_out_;
    } else {
      std::fwrite(json.data(), 1, json.size(), f);
      std::fclose(f);
    }
  }
  return results;
}

uint64_t EstimateFootprint(const ScenarioSpec& spec) {
  // Every store keeps records as vectors of int64 fields plus bucket and
  // index overhead; replicas multiply the whole database.
  const uint64_t copies = spec.replication_degree;
  constexpr uint64_t kPerRecordOverhead = 96;  // bucket entry + vector slack

  uint64_t records = 0;
  uint64_t bytes_per_record = 0;
  if (spec.workload == "tpcc" || spec.workload == "adaptive-tpcc") {
    // Dominated by STOCK (100k rows/warehouse) and CUSTOMER (30k).
    const uint64_t warehouses =
        spec.options.GetInt("num_warehouses", spec.partitions());
    records = warehouses * 150000;
    bytes_per_record = 330;
  } else if (spec.workload == "ycsb" || spec.workload == "adaptive") {
    records = static_cast<uint64_t>(spec.partitions()) *
              spec.options.GetInt("keys_per_partition", 10000);
    bytes_per_record = 8 * 8;
  } else if (spec.workload == "instacart") {
    records = spec.options.GetInt("num_products", 49688) +
              spec.options.GetInt("num_customers", 200000);
    bytes_per_record = 64;
  } else if (spec.workload == "flight") {
    records = spec.options.GetInt("num_flights", 1000) +
              spec.options.GetInt("num_customers", 100000) +
              spec.options.GetInt("num_states", 50);
    bytes_per_record = 64;
  } else {
    return 0;  // unknown workload: never gate on a guess
  }
  return copies * records * (bytes_per_record + kPerRecordOverhead);
}

uint64_t CurrentRssBytes() {
#if defined(__linux__)
  std::FILE* f = std::fopen("/proc/self/statm", "r");
  if (f == nullptr) return 0;
  unsigned long long total_pages = 0;
  unsigned long long resident_pages = 0;
  const int parsed = std::fscanf(f, "%llu %llu", &total_pages,
                                 &resident_pages);
  std::fclose(f);
  if (parsed != 2) return 0;
  const long page = sysconf(_SC_PAGESIZE);
  if (page <= 0) return 0;
  return static_cast<uint64_t>(resident_pages) * static_cast<uint64_t>(page);
#else
  return 0;
#endif
}

}  // namespace chiller::runner
