// String-keyed registries for workloads and protocols.
//
// The registries make "add a scenario" a registration instead of a new
// binary's worth of wiring: benches, tests, and examples resolve both axes
// of an experiment by name, and --list-workloads / --list-protocols print
// what a build supports. Global() instances come pre-loaded with the
// built-ins (workloads: tpcc, instacart, flight, ycsb, plus the hash-start
// adaptive family adaptive / adaptive-tpcc; protocols: 2pl, occ, chiller,
// chiller-plain) and accept further Register() calls, e.g. from
// out-of-tree experiment binaries.
#ifndef CHILLER_RUNNER_REGISTRY_H_
#define CHILLER_RUNNER_REGISTRY_H_

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "cc/cluster.h"
#include "cc/driver.h"
#include "cc/protocol.h"
#include "cc/replication.h"
#include "common/status.h"
#include "partition/lookup_table.h"
#include "runner/scenario.h"
#include "storage/record.h"

namespace chiller::runner {

/// Everything a scenario needs from its workload, bundled with the state
/// that keeps it alive: the schema, a placement (plus hotness) decision,
/// the record loader, and the transaction source. One bundle serves one
/// scenario; factories must return independent instances so sweeps can run
/// bundles on concurrent workers.
class WorkloadBundle {
 public:
  virtual ~WorkloadBundle() = default;

  virtual std::vector<storage::TableSpec> Schema() const = 0;
  virtual const partition::RecordPartitioner* partitioner() const = 0;
  virtual cc::WorkloadSource* source() = 0;

  /// Non-null iff this workload's layout may be rebuilt while it runs: the
  /// replan/migrate phases swap the returned partitioner's delegate. The
  /// default (frozen layout) is null, and plans with adaptive phases fail
  /// on such bundles instead of silently measuring a stale layout.
  virtual partition::SwappablePartitioner* adaptive_partitioner() {
    return nullptr;
  }

  /// Loads the initial database into the cluster (via LoadRecord /
  /// LoadEverywhere) using this bundle's partitioner.
  virtual void Load(cc::Cluster* cluster) const = 0;
};

using WorkloadFactory =
    std::function<StatusOr<std::unique_ptr<WorkloadBundle>>(
        const ScenarioSpec&)>;

class WorkloadRegistry {
 public:
  /// The process-wide registry, pre-loaded with the built-in workloads.
  static WorkloadRegistry& Global();

  /// FailedPrecondition if `name` is already taken.
  Status Register(const std::string& name, WorkloadFactory factory);

  /// Builds a bundle for `spec.workload`; InvalidArgument names the known
  /// workloads when the key is unknown.
  StatusOr<std::unique_ptr<WorkloadBundle>> Make(
      const ScenarioSpec& spec) const;

  bool Has(const std::string& name) const;
  std::vector<std::string> Names() const;  ///< sorted

 private:
  std::vector<std::string> NamesLocked() const;

  mutable std::mutex mu_;
  std::map<std::string, WorkloadFactory> factories_;
};

using ProtocolFactory = std::function<std::unique_ptr<cc::Protocol>(
    cc::Cluster*, const partition::RecordPartitioner*,
    cc::ReplicationManager*)>;

class ProtocolRegistry {
 public:
  /// The process-wide registry, pre-loaded with the built-in protocols.
  static ProtocolRegistry& Global();

  /// FailedPrecondition if `name` is already taken.
  Status Register(const std::string& name, ProtocolFactory factory);

  /// InvalidArgument names the known protocols when the key is unknown.
  StatusOr<std::unique_ptr<cc::Protocol>> Make(
      const std::string& name, cc::Cluster* cluster,
      const partition::RecordPartitioner* partitioner,
      cc::ReplicationManager* replication) const;

  bool Has(const std::string& name) const;
  std::vector<std::string> Names() const;  ///< sorted

 private:
  std::vector<std::string> NamesLocked() const;

  mutable std::mutex mu_;
  std::map<std::string, ProtocolFactory> factories_;
};

}  // namespace chiller::runner

#endif  // CHILLER_RUNNER_REGISTRY_H_
