// String-keyed option bag for declarative scenario specs.
//
// Workload factories take their knobs (zipf theta, mix percentages, layout
// names, ...) from an OptionMap so a ScenarioSpec stays a plain value type
// that can be built in a loop, printed, and compared — no per-workload
// struct plumbed through the runner. Values are stored as strings; typed
// getters parse on access and fall back to a caller default, and
// ExpectOnly() turns typos into InvalidArgument instead of silent defaults.
#ifndef CHILLER_RUNNER_OPTIONS_H_
#define CHILLER_RUNNER_OPTIONS_H_

#include <cstdint>
#include <initializer_list>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace chiller::runner {

class OptionMap {
 public:
  OptionMap() = default;

  void Set(const std::string& key, const std::string& value);
  void Set(const std::string& key, const char* value);
  void Set(const std::string& key, double value);
  void Set(const std::string& key, uint64_t value);
  void Set(const std::string& key, int value) {
    Set(key, static_cast<uint64_t>(value));
  }
  void Set(const std::string& key, uint32_t value) {
    Set(key, static_cast<uint64_t>(value));
  }
  void Set(const std::string& key, bool value);

  bool Has(const std::string& key) const { return values_.contains(key); }

  /// Typed accessors: return `fallback` when the key is absent. A present
  /// value that does not parse as the requested type is always a caller
  /// bug (the typed Set overloads only write well-formed values), so it
  /// CHECK-fails loudly instead of silently running the fallback config.
  std::string GetString(const std::string& key,
                        const std::string& fallback) const;
  double GetDouble(const std::string& key, double fallback) const;
  uint64_t GetInt(const std::string& key, uint64_t fallback) const;
  bool GetBool(const std::string& key, bool fallback) const;

  /// Keys in sorted order (map iteration order), for printing and hashing.
  std::vector<std::string> Keys() const;

  /// InvalidArgument naming the first key not in `allowed` (a typo in a
  /// spec would otherwise silently run the default scenario).
  Status ExpectOnly(std::initializer_list<std::string_view> allowed) const;

  /// Canonical "k1=v1 k2=v2" rendering, stable across runs.
  std::string ToString() const;

  friend bool operator==(const OptionMap&, const OptionMap&) = default;

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace chiller::runner

#endif  // CHILLER_RUNNER_OPTIONS_H_
