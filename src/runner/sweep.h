// Parallel sweep execution over independent scenarios.
//
// Every scenario owns a private sim::Simulator (inside its Cluster), so a
// grid of (protocol, config) points is embarrassingly parallel: the sweep
// fans specs across a std::thread pool and merges results back in spec
// order. Determinism is preserved by construction — each scenario is a
// pure function of its spec, and nothing is shared between workers — so
// --jobs N produces byte-identical per-point results to --jobs 1, in
// roughly 1/N the wall-clock.
#ifndef CHILLER_RUNNER_SWEEP_H_
#define CHILLER_RUNNER_SWEEP_H_

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <functional>
#include <string>
#include <thread>
#include <type_traits>
#include <vector>

#include "runner/runner.h"
#include "runner/scenario.h"

namespace chiller::runner {

/// 0 = one job per hardware thread; otherwise the value itself.
uint32_t ResolveJobs(uint32_t jobs);

/// Runs fn(0), ..., fn(n-1) on up to `jobs` worker threads and returns the
/// results indexed by input — the order never depends on scheduling. The
/// analysis benches (layout builds, metric evaluation) sweep through this
/// directly; SweepExecutor uses it for simulator scenarios. `fn` must be
/// safe to call concurrently from multiple threads.
template <typename Fn>
auto ParallelMap(uint32_t jobs, size_t n, Fn&& fn)
    -> std::vector<std::invoke_result_t<Fn&, size_t>> {
  using R = std::invoke_result_t<Fn&, size_t>;
  static_assert(!std::is_same_v<R, bool>,
                "vector<bool> packs bits: concurrent writes to results[i] "
                "would race. Return a struct or int instead.");
  std::vector<R> results(n);
  const uint32_t workers =
      static_cast<uint32_t>(std::min<size_t>(ResolveJobs(jobs), n));
  if (workers <= 1) {
    for (size_t i = 0; i < n; ++i) results[i] = fn(i);
    return results;
  }
  std::atomic<size_t> next{0};
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (uint32_t w = 0; w < workers; ++w) {
    pool.emplace_back([&] {
      for (size_t i = next.fetch_add(1); i < n; i = next.fetch_add(1)) {
        results[i] = fn(i);
      }
    });
  }
  for (std::thread& t : pool) t.join();
  return results;
}

/// Persists the footprint gate's learned EWMA actual/hint factor across
/// bench invocations, so a second run of the same binary starts from the
/// calibration the first one converged to instead of re-learning from the
/// static estimates. The file lives next to the bench report
/// (`.chiller_footprint_cache`) and holds a single clamped factor.
/// Scheduling-only state: results never depend on it.
struct FootprintCalibrationCache {
  /// The gate's clamp bounds — whole-process RSS over-counts under
  /// concurrency, so the correction is held to a trend, not an audit.
  static constexpr double kMinFactor = 0.25;
  static constexpr double kMaxFactor = 4.0;

  static double Clamp(double factor);

  /// Reads the stored factor into `*factor` (clamped). Returns false — and
  /// leaves `*factor` untouched — when the file is missing, unreadable, or
  /// not a finite number.
  static bool Load(const std::string& path, double* factor);

  /// Writes the (clamped) factor. Returns false on I/O failure; callers
  /// treat that as best-effort (a lost cache only costs re-learning).
  static bool Save(const std::string& path, double factor);

  /// The conventional cache location for a bench report:
  /// `<report dir>/.chiller_footprint_cache`.
  static std::string PathNextTo(const std::string& report_path);
};

class SweepExecutor {
 public:
  /// `jobs`: worker threads; 0 = one per hardware thread.
  explicit SweepExecutor(uint32_t jobs = 1) : jobs_(ResolveJobs(jobs)) {}

  uint32_t jobs() const { return jobs_; }

  /// When set, the memory-budget gate seeds its EWMA calibration from this
  /// file before the sweep and persists the converged factor after it
  /// (see FootprintCalibrationCache). Empty = in-process learning only.
  void set_calibration_cache(std::string path) {
    calibration_cache_ = std::move(path);
  }
  const std::string& calibration_cache() const { return calibration_cache_; }

  /// When set, every completed traced scenario's spans are appended to
  /// this Chrome trace-event file (one "process" per node per scenario,
  /// pids striped in spec order). Cumulative across Run calls on the same
  /// executor — each call rewrites the file with everything gathered so
  /// far, so a bench that sweeps figure-by-figure still emits one trace.
  /// Scenarios run with trace_sample_every == 0 contribute nothing.
  void set_trace_out(std::string path) { trace_out_ = std::move(path); }
  const std::string& trace_out() const { return trace_out_; }

  /// Caps the summed ScenarioSpec::footprint_hint of concurrently-running
  /// scenarios (N concurrent TPC-C clusters multiply peak RSS). 0 =
  /// unlimited. A worker whose next spec would exceed the budget waits for
  /// in-flight scenarios to finish; a single spec over budget still runs,
  /// alone. Specs with hint 0 (unknown) are never gated. The gate
  /// self-calibrates across the sweep: observed RSS growth per completed
  /// scenario (CurrentRssBytes) feeds an EWMA of actual/hint that scales
  /// later reservations (clamped; the applied correction is logged).
  /// Results are unaffected — each scenario stays a pure function of its
  /// spec.
  void set_mem_budget_bytes(uint64_t bytes) { mem_budget_bytes_ = bytes; }
  uint64_t mem_budget_bytes() const { return mem_budget_bytes_; }

  /// Called after each scenario completes (any thread, serialized by the
  /// executor): the spec index and its result. Completion order follows
  /// scheduling; the returned vector always follows spec order.
  using ProgressFn = std::function<void(size_t, const StatusOr<ScenarioResult>&)>;

  /// Runs every spec through ScenarioRunner::Run. Results are merged in
  /// spec order; a failed spec carries its Status without aborting the
  /// rest of the sweep.
  std::vector<StatusOr<ScenarioResult>> Run(
      const std::vector<ScenarioSpec>& specs,
      const ProgressFn& progress = nullptr) const;

  /// Worker threads actually used for `specs`: `jobs`, scaled down when the
  /// specs themselves run sharded simulators (each scenario at shards = S
  /// occupies S cores, so jobs x S would oversubscribe the machine). At
  /// least 1; scheduling-only — per-spec results are identical either way.
  uint32_t EffectiveJobs(const std::vector<ScenarioSpec>& specs) const;

 private:
  uint32_t jobs_;
  uint64_t mem_budget_bytes_ = 0;
  std::string calibration_cache_;
  std::string trace_out_;
  // Cumulative trace state across Run calls (traces merge in spec order
  // on the bench thread after the parallel barrier, so no lock is needed).
  mutable std::string trace_events_;
  mutable uint32_t trace_pid_base_ = 0;
};

/// Rough peak resident bytes for one wired scenario (primary + replica
/// stores, all tables), for ScenarioSpec::footprint_hint. Deliberately
/// coarse — the budget gate needs relative magnitudes, not an allocator
/// audit. Returns 0 (unknown) for unrecognized workload keys.
uint64_t EstimateFootprint(const ScenarioSpec& spec);

/// This process's current resident set in bytes, read from
/// /proc/self/statm. Returns 0 where the probe is unavailable (non-Linux
/// builds, restricted /proc). When the memory-budget gate is active,
/// SweepExecutor logs each scenario's observed RSS growth next to its
/// footprint hint AND feeds the ratio back into the gate's calibration
/// factor, so the static EstimateFootprint numbers self-correct across a
/// sweep (scheduling only; results never depend on it).
uint64_t CurrentRssBytes();

}  // namespace chiller::runner

#endif  // CHILLER_RUNNER_SWEEP_H_
