#include "runner/runner.h"

#include <algorithm>
#include <chrono>
#include <memory>
#include <utility>

#include "common/logging.h"

#include "cc/load_model.h"
#include "cc/migration.h"
#include "migrate/adaptive_controller.h"
#include "migrate/live_migrator.h"
#include "migrate/migration_governor.h"
#include "migrate/migration_plan.h"
#include "net/topology.h"
#include "partition/chiller_partitioner.h"
#include "partition/stats_collector.h"
#include "runner/sweep.h"

namespace chiller::runner {

namespace {

/// Plan-structure checks shared by Validate: every adaptive plan must
/// sample before it replans and migrate immediately after, so the live
/// layout never disagrees with the physical record placement.
Status ValidatePhases(const std::vector<Phase>& phases) {
  bool sampled = false;
  bool measured = false;
  bool pending_replan = false;
  for (size_t i = 0; i < phases.size(); ++i) {
    const Phase& ph = phases[i];
    if (pending_replan && ph.kind != PhaseKind::kMigrate &&
        ph.kind != PhaseKind::kLiveMigrate) {
      return Status::InvalidArgument(
          "a replan phase must be followed immediately by a migrate or "
          "live-migrate phase (the built layout is not live until records "
          "move)");
    }
    switch (ph.kind) {
      case PhaseKind::kWarmup:
      case PhaseKind::kMeasure:
        if (ph.duration == 0) {
          return Status::InvalidArgument("timed phases must have duration > 0");
        }
        measured |= ph.kind == PhaseKind::kMeasure;
        break;
      case PhaseKind::kSample:
        if (ph.duration == 0) {
          return Status::InvalidArgument("timed phases must have duration > 0");
        }
        if (ph.sample_rate <= 0.0 || ph.sample_rate > 1.0) {
          return Status::InvalidArgument("sample_rate must be in (0, 1]");
        }
        sampled = true;
        break;
      case PhaseKind::kReplan:
        if (!sampled) {
          return Status::InvalidArgument(
              "a replan phase needs an earlier sample phase");
        }
        pending_replan = true;
        break;
      case PhaseKind::kMigrate:
      case PhaseKind::kLiveMigrate:
        if (!pending_replan) {
          return Status::InvalidArgument(
              "a migrate phase needs an immediately preceding replan phase");
        }
        pending_replan = false;
        break;
    }
  }
  if (pending_replan) {
    return Status::InvalidArgument("a replan phase must not end the plan");
  }
  if (!measured) {
    return Status::InvalidArgument("the phase plan must measure something");
  }
  return Status::OK();
}

}  // namespace

Status ScenarioRunner::Validate(const ScenarioSpec& spec) {
  if (spec.nodes == 0 || spec.engines_per_node == 0) {
    return Status::InvalidArgument("topology must have >= 1 node and engine");
  }
  if (spec.replication_degree == 0) {
    return Status::InvalidArgument(
        "replication_degree counts the primary and must be >= 1");
  }
  if (spec.concurrency == 0) {
    return Status::InvalidArgument("concurrency must be >= 1");
  }
  if (spec.shards == 0) {
    return Status::InvalidArgument("shards must be >= 1");
  }
  // One source of truth for load-model validity (also what Wire() builds
  // with), run here so a bad spec fails before any data is loaded.
  Status lm_st = cc::ValidateLoadModelParams(spec.load_model,
                                             spec.MakeLoadModelParams());
  if (!lm_st.ok()) return lm_st;
  // Same single-source rule for the admission scheduler: an unknown
  // scheduler or shed policy, or a scheduler/load-model mismatch, fails
  // here with an actionable message instead of falling through.
  Status sched_st = schedule::ValidateSchedulerParams(
      spec.scheduler, spec.shed_policy, spec.load_model);
  if (!sched_st.ok()) return sched_st;
  if (spec.relayout_buckets == 0) {
    return Status::InvalidArgument("relayout_buckets must be >= 1");
  }
  if (spec.migrate_batch_records == 0) {
    return Status::InvalidArgument("migrate_batch_records must be >= 1");
  }
  if (spec.migrate_streams == 0) {
    return Status::InvalidArgument("migrate_streams must be >= 1");
  }
  if (spec.governor) {
    if (spec.governor_min_streams == 0) {
      return Status::InvalidArgument("governor_min_streams must be >= 1");
    }
    if (spec.governor_min_streams > spec.governor_max_streams) {
      return Status::InvalidArgument(
          "governor_min_streams must be <= governor_max_streams");
    }
    if (spec.governor_max_abort_share < 0.0 ||
        spec.governor_max_abort_share > 1.0) {
      return Status::InvalidArgument(
          "governor_max_abort_share must be in [0, 1]");
    }
  }
  if (spec.rearm_threshold < 0.0) {
    return Status::InvalidArgument("rearm_threshold must be >= 0");
  }
  if (spec.rearm_threshold > 0.0 && !spec.continuous) {
    return Status::InvalidArgument(
        "rearm_threshold re-arms the continuous controller; set "
        "continuous=true");
  }
  if (spec.shadow && !spec.continuous) {
    return Status::InvalidArgument(
        "shadow mode is the continuous controller's scoring-only mode; set "
        "continuous=true");
  }
  if (spec.shadow && spec.rearm_threshold > 0.0) {
    return Status::InvalidArgument(
        "shadow mode never settles, so there is nothing to re-arm; drop "
        "one of shadow / rearm_threshold");
  }
  if (spec.continuous) {
    if (!spec.phases.empty()) {
      return Status::InvalidArgument(
          "continuous mode drives its own sample/replan/migrate loop; use "
          "the legacy warmup/measure fields, not a phase plan");
    }
    if (spec.controller_period == 0) {
      return Status::InvalidArgument("controller_period must be > 0");
    }
    if (spec.controller_sample_rate <= 0.0 ||
        spec.controller_sample_rate > 1.0) {
      return Status::InvalidArgument(
          "controller_sample_rate must be in (0, 1]");
    }
    if (spec.controller_drift_threshold < 0.0) {
      return Status::InvalidArgument(
          "controller_drift_threshold must be >= 0");
    }
    if (spec.controller_hysteresis == 0) {
      return Status::InvalidArgument("controller_hysteresis must be >= 1");
    }
  }
  if (spec.phases.empty()) {
    if (spec.measure == 0) {
      return Status::InvalidArgument("measurement window must be > 0");
    }
    return Status::OK();
  }
  return ValidatePhases(spec.phases);
}

StatusOr<ScenarioEnv> ScenarioRunner::Wire(const ScenarioSpec& spec) {
  Status st = Validate(spec);
  if (!st.ok()) return st;

  auto bundle = WorkloadRegistry::Global().Make(spec);
  if (!bundle.ok()) return bundle.status();

  ScenarioEnv env;
  env.bundle = std::move(bundle).value();

  cc::ClusterConfig cfg;
  cfg.topology = net::Topology{.num_nodes = spec.nodes,
                               .engines_per_node = spec.engines_per_node,
                               .replication_degree = spec.replication_degree};
  cfg.schema = env.bundle->Schema();
  cfg.shards = spec.shards;
  cfg.trace_sample_every = spec.trace_sample_every;
  env.cluster = std::make_unique<cc::Cluster>(cfg);
  env.bundle->Load(env.cluster.get());

  env.repl = std::make_unique<cc::ReplicationManager>(env.cluster.get());
  auto protocol = ProtocolRegistry::Global().Make(
      spec.protocol, env.cluster.get(), env.bundle->partitioner(),
      env.repl.get());
  if (!protocol.ok()) return protocol.status();
  env.protocol = std::move(protocol).value();

  auto model =
      cc::MakeLoadModel(spec.load_model, spec.MakeLoadModelParams());
  if (!model.ok()) return model.status();

  env.driver = std::make_unique<cc::Driver>(
      env.cluster.get(), env.protocol.get(), env.bundle->source(),
      std::move(model).value(), spec.seed);

  // The admission scheduler. Passthrough policies (fifo) are built for
  // validation parity but never installed: with a null scheduler the load
  // models keep their legacy code paths, byte for byte.
  schedule::SchedulerContext sctx;
  sctx.num_engines = env.cluster->num_engines();
  sctx.classes = spec.sched_classes;
  sctx.partitioner = env.bundle->partitioner();
  sctx.seed = spec.seed;
  auto sched = schedule::SchedulerRegistry::Global().Make(spec.scheduler,
                                                          sctx);
  if (!sched.ok()) return sched.status();
  if (!sched.value()->Passthrough()) {
    env.scheduler = std::move(sched).value();
    env.driver->set_scheduler(env.scheduler.get());
  }
  return env;
}

StatusOr<ScenarioResult> ScenarioRunner::Run(const ScenarioSpec& spec) {
  const auto wall_start = std::chrono::steady_clock::now();
  const uint64_t rss_before = CurrentRssBytes();
  auto env = Wire(spec);
  if (!env.ok()) return env.status();
  const uint64_t rss_after = CurrentRssBytes();

  ScenarioResult result;
  result.spec = spec;
  result.loaded_rss_delta =
      rss_after > rss_before ? rss_after - rss_before : 0;

  cc::Driver* driver = env->driver.get();
  sim::Scheduler* sim = env->cluster->sim();

  // Timeline recorder: timed work advances in timeline_slice steps and
  // every slice's lifetime-counter deltas are appended (slicing RunUntil
  // is free — the event sequence is identical).
  std::vector<TimelineSlice>* timeline =
      spec.timeline_slice > 0 ? &result.adaptive.timeline : nullptr;
  auto push_slice = [&](SimTime t0, uint64_t c0, uint64_t l0) {
    if (timeline == nullptr) return;
    timeline->push_back(TimelineSlice{
        .start = t0,
        .end = sim->now(),
        .commits = driver->lifetime_commits() - c0,
        .latency_ns_sum = driver->lifetime_latency_ns() - l0});
    // Slice boundaries double as the trace's counter-sampling points: one
    // registry snapshot per slice puts every counter/gauge track on the
    // same timeline as the spans.
    env->cluster->metrics()->Snapshot(sim->now(), env->cluster->trace());
  };
  auto advance_recorded = [&](SimTime duration) {
    if (timeline == nullptr) {
      driver->Advance(duration);
      return;
    }
    SimTime left = duration;
    while (left > 0) {
      const SimTime step = std::min(spec.timeline_slice, left);
      const SimTime t0 = sim->now();
      const uint64_t c0 = driver->lifetime_commits();
      const uint64_t l0 = driver->lifetime_latency_ns();
      driver->Advance(step);
      push_slice(t0, c0, l0);
      left -= step;
    }
  };
  auto finish = [&]() -> ScenarioResult {
    result.stats = driver->stats();
    result.trace = env->cluster->shared_trace();
    driver->DrainAndStop();
    result.wall_ms = std::chrono::duration<double, std::milli>(
                         std::chrono::steady_clock::now() - wall_start)
                         .count();
    return std::move(result);
  };

  if (spec.continuous) {
    // The measure window runs under the continuous adaptivity controller:
    // sample -> replan -> live-migrate epochs interleaved with traffic.
    partition::SwappablePartitioner* live =
        env->bundle->adaptive_partitioner();
    if (live == nullptr) {
      return Status::FailedPrecondition(
          "workload '" + spec.workload +
          "' has a frozen layout; continuous mode needs an adaptive "
          "workload (one whose bundle exposes a swappable partitioner)");
    }
    driver->Start();
    advance_recorded(spec.warmup);
    driver->ResetStats();
    driver->set_measuring(true);

    migrate::AdaptiveControllerOptions copts;
    copts.period = spec.controller_period;
    copts.sample_rate = spec.controller_sample_rate;
    copts.drift_threshold = spec.controller_drift_threshold;
    copts.hysteresis_epochs = spec.controller_hysteresis;
    copts.lock_window_txns =
        static_cast<double>(spec.concurrency) * spec.partitions();
    copts.relayout_buckets = spec.relayout_buckets;
    copts.migrator.batch_records = spec.migrate_batch_records;
    copts.migrator.streams = spec.migrate_streams;
    copts.governor = spec.governor;
    copts.governor_opts.min_streams = spec.governor_min_streams;
    copts.governor_opts.max_streams = spec.governor_max_streams;
    copts.governor_opts.p99_budget = spec.governor_p99_budget;
    copts.governor_opts.max_abort_share = spec.governor_max_abort_share;
    copts.rearm_threshold = spec.rearm_threshold;
    copts.shadow = spec.shadow;
    copts.seed = spec.seed;
    migrate::AdaptiveController controller(driver, env->cluster.get(),
                                           env->repl.get(), live, copts);
    auto advanced = controller.RunFor(
        spec.measure, [&](SimTime d) { advance_recorded(d); });
    if (!advanced.ok()) return advanced.status();
    driver->set_measuring(false);
    driver->set_measured_window(advanced.value());

    const migrate::AdaptiveControllerReport& rep = controller.report();
    result.adaptive.sampled_txns = rep.sampled_txns;
    result.adaptive.lookup_entries = live->LookupEntries();
    result.adaptive.migration.moved_records = rep.moved_records;
    result.adaptive.migration.moved_bytes = rep.moved_bytes;
    result.adaptive.migration.sim_time = rep.migration_sim_time;
    result.adaptive.migration_start = rep.first_migration_start;
    result.adaptive.migration_end = rep.last_migration_end;
    result.adaptive.migration_window_commits = rep.window_commits;
    result.adaptive.migration_window_aborts = rep.window_aborts;
    result.adaptive.buckets_moved = rep.buckets_moved;
    result.adaptive.controller_epochs = rep.epochs;
    result.adaptive.controller_migrations = rep.migrations;
    result.adaptive.controller_settled = rep.settled;
    result.adaptive.controller_rearms = rep.rearms;
    result.adaptive.shadow_evals = rep.shadow_evals;
    result.adaptive.last_drift = rep.last_drift;
    result.adaptive.peak_streams = rep.peak_streams;
    result.adaptive.governor_widens = rep.governor_widens;
    result.adaptive.governor_narrows = rep.governor_narrows;
    return finish();
  }

  const std::vector<Phase> plan = spec.EffectivePhases();

  // Section 4.1 loop state, alive across phases: the sampling statistics
  // service and the layout the last replan built but has not yet migrated.
  std::unique_ptr<partition::StatsCollector> collector;
  std::unique_ptr<partition::LookupPartitioner> pending_layout;

  driver->Start();
  SimTime measured = 0;
  bool stats_reset = false;
  for (const Phase& ph : plan) {
    switch (ph.kind) {
      case PhaseKind::kWarmup:
        advance_recorded(ph.duration);
        break;

      case PhaseKind::kSample: {
        if (collector == nullptr) {
          collector = std::make_unique<partition::StatsCollector>(
              ph.sample_rate, spec.seed);
          collector->set_retain_traces(true);
          // Commit observers fire from the committing engine's shard
          // thread; per-engine shards keep the sampling stream (and thus
          // the traces) independent of the simulator's shard count.
          collector->EnableEngineSharding(env->cluster->num_engines());
        } else {
          // A later sample phase accumulates into the same collector (the
          // service's view of the workload only grows) at its own rate.
          collector->set_sample_rate(ph.sample_rate);
        }
        partition::StatsCollector* stats = collector.get();
        driver->SetCommitObserver(
            [stats](const txn::Transaction& t) { stats->Observe(t); });
        advance_recorded(ph.duration);
        driver->SetCommitObserver(nullptr);
        result.adaptive.sampled_txns = collector->sampled_txns();
        break;
      }

      case PhaseKind::kReplan: {
        if (env->bundle->adaptive_partitioner() == nullptr) {
          return Status::FailedPrecondition(
              "workload '" + spec.workload +
              "' has a frozen layout; replan phases need an adaptive "
              "workload (one whose bundle exposes a swappable partitioner)");
        }
        partition::ChillerPartitioner::Options popts;
        popts.k = spec.partitions();
        popts.seed = spec.seed;
        popts.hot_threshold = ph.hot_threshold;
        // The collector's per-record frequencies are relative to the
        // cluster-wide commit stream, so the lock window that turns them
        // into arrival rates is everything concurrently in flight
        // cluster-wide. The hot threshold (phase knob) then bounds the
        // hot set to the contended head — Section 4.4's small lookup
        // table — rather than the whole sampled tail.
        popts.lock_window_txns =
            static_cast<double>(spec.concurrency) * spec.partitions();
        auto out =
            partition::ChillerPartitioner::Build(collector->traces(), popts);
        result.adaptive.hot_records = out.hot_records.size();
        result.adaptive.lookup_entries = out.report.lookup_entries;
        pending_layout = std::move(out.partitioner);
        break;
      }

      case PhaseKind::kMigrate: {
        // Drain in-flight transactions, make the new layout live, move the
        // records to match it, then re-arm the closed loop. The swap and
        // the moves are invisible to execution: nothing runs in between.
        // The drain is recorded as its own timeline slice so the
        // stop-the-world window that follows is exactly the zero-commit
        // migration pause.
        {
          const SimTime t0 = sim->now();
          const uint64_t c0 = driver->lifetime_commits();
          const uint64_t l0 = driver->lifetime_latency_ns();
          driver->Quiesce();
          push_slice(t0, c0, l0);
        }
        partition::SwappablePartitioner* live =
            env->bundle->adaptive_partitioner();
        live->Swap(std::move(pending_layout));
        // The layout no longer matches what the workload was written
        // against: arm the protocols' layout-assumption checks (e.g.
        // Chiller's co-location contract degrades to the fallback instead
        // of CHECK-failing). Host-side only — the checks cannot fire on a
        // quiesced swap's consistent placement, so results are unchanged.
        env->cluster->bucket_locks()->NoteLayoutMutation();
        const SimTime mig_t0 = sim->now();
        const uint64_t mig_c0 = driver->lifetime_commits();
        const uint64_t mig_l0 = driver->lifetime_latency_ns();
        auto migration =
            cc::MigrateToLayout(env->cluster.get(), env->repl.get(), *live);
        if (!migration.ok()) return migration.status();
        result.adaptive.migration = migration.value();
        result.adaptive.migration_start = mig_t0;
        result.adaptive.migration_end = sim->now();
        result.adaptive.migration_window_commits =
            driver->lifetime_commits() - mig_c0;
        push_slice(mig_t0, mig_c0, mig_l0);
        driver->Resume();
        break;
      }

      case PhaseKind::kLiveMigrate: {
        // Incremental relayout under traffic (src/migrate): diff the
        // physical placement against the replanned layout, then keep the
        // driver advancing while the migrator walks the plan bucket by
        // bucket. No quiesce, no resume — commits keep flowing.
        partition::SwappablePartitioner* live =
            env->bundle->adaptive_partitioner();
        migrate::MigrationPlan mplan = migrate::MigrationPlan::Diff(
            env->cluster.get(), *pending_layout, spec.relayout_buckets);
        migrate::LiveMigratorOptions mopts;
        mopts.batch_records = spec.migrate_batch_records;
        mopts.streams = spec.migrate_streams;
        migrate::LiveMigrator migrator(env->cluster.get(), env->repl.get(),
                                       live, mopts);
        std::unique_ptr<migrate::MigrationGovernor> governor;
        if (spec.governor) {
          governor = std::make_unique<migrate::MigrationGovernor>(
              migrate::MigrationGovernorOptions{
                  .min_streams = spec.governor_min_streams,
                  .max_streams = spec.governor_max_streams,
                  .p99_budget = spec.governor_p99_budget,
                  .max_abort_share = spec.governor_max_abort_share},
              spec.migrate_streams, env->cluster->metrics());
        }
        const SimTime t0 = sim->now();
        const uint64_t c0 = driver->lifetime_commits();
        const uint64_t a0 = driver->lifetime_migration_aborts();
        Status mst = migrator.Start(std::move(mplan),
                                    std::move(pending_layout));
        if (!mst.ok()) return mst;
        const SimTime step = spec.timeline_slice > 0
                                 ? spec.timeline_slice
                                 : 100 * kMicrosecond;
        // Scope the governor's p99 window to the relayout's steps.
        if (governor != nullptr) driver->TakeCommitLatencyWindow();
        uint64_t guard = 0;
        while (!migrator.done()) {
          const uint64_t gc0 = driver->lifetime_commits();
          const uint64_t ga0 = driver->lifetime_migration_aborts();
          advance_recorded(step);
          if (governor != nullptr && !migrator.done()) {
            // One governor epoch per advance step: fold the step's
            // foreground signals into the stream width.
            migrate::GovernorSignals signals;
            signals.commits = driver->lifetime_commits() - gc0;
            signals.migration_aborts =
                driver->lifetime_migration_aborts() - ga0;
            const Histogram window = driver->TakeCommitLatencyWindow();
            signals.p99 =
                window.count() == 0 ? 0 : window.Percentile(99.0);
            migrator.SetTargetStreams(governor->Decide(signals));
          }
          CHILLER_CHECK(++guard < (1u << 20))
              << "live migration did not settle";
        }
        result.adaptive.migration = migrator.stats().base;
        result.adaptive.buckets_moved = migrator.stats().buckets_moved;
        result.adaptive.peak_streams = std::max(
            result.adaptive.peak_streams, migrator.stats().peak_streams);
        if (governor != nullptr) {
          result.adaptive.governor_widens += governor->report().widens;
          result.adaptive.governor_narrows += governor->report().narrows;
        }
        result.adaptive.migration_start = t0;
        result.adaptive.migration_end = t0 + migrator.stats().base.sim_time;
        // Window deltas include the tail of the slice in which the last
        // bucket flipped (at most one slice of overshoot).
        result.adaptive.migration_window_commits =
            driver->lifetime_commits() - c0;
        result.adaptive.migration_window_aborts =
            driver->lifetime_migration_aborts() - a0;
        break;
      }

      case PhaseKind::kMeasure:
        if (!stats_reset) {
          driver->ResetStats();
          stats_reset = true;
        }
        driver->set_measuring(true);
        advance_recorded(ph.duration);
        driver->set_measuring(false);
        measured += ph.duration;
        break;
    }
  }
  driver->set_measured_window(measured);
  return finish();
}

}  // namespace chiller::runner
