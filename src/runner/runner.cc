#include "runner/runner.h"

#include <chrono>
#include <memory>
#include <utility>

#include "cc/load_model.h"
#include "cc/migration.h"
#include "net/topology.h"
#include "partition/chiller_partitioner.h"
#include "partition/stats_collector.h"
#include "runner/sweep.h"

namespace chiller::runner {

namespace {

/// Plan-structure checks shared by Validate: every adaptive plan must
/// sample before it replans and migrate immediately after, so the live
/// layout never disagrees with the physical record placement.
Status ValidatePhases(const std::vector<Phase>& phases) {
  bool sampled = false;
  bool measured = false;
  bool pending_replan = false;
  for (size_t i = 0; i < phases.size(); ++i) {
    const Phase& ph = phases[i];
    if (pending_replan && ph.kind != PhaseKind::kMigrate) {
      return Status::InvalidArgument(
          "a replan phase must be followed immediately by a migrate phase "
          "(the built layout is not live until records move)");
    }
    switch (ph.kind) {
      case PhaseKind::kWarmup:
      case PhaseKind::kMeasure:
        if (ph.duration == 0) {
          return Status::InvalidArgument("timed phases must have duration > 0");
        }
        measured |= ph.kind == PhaseKind::kMeasure;
        break;
      case PhaseKind::kSample:
        if (ph.duration == 0) {
          return Status::InvalidArgument("timed phases must have duration > 0");
        }
        if (ph.sample_rate <= 0.0 || ph.sample_rate > 1.0) {
          return Status::InvalidArgument("sample_rate must be in (0, 1]");
        }
        sampled = true;
        break;
      case PhaseKind::kReplan:
        if (!sampled) {
          return Status::InvalidArgument(
              "a replan phase needs an earlier sample phase");
        }
        pending_replan = true;
        break;
      case PhaseKind::kMigrate:
        if (!pending_replan) {
          return Status::InvalidArgument(
              "a migrate phase needs an immediately preceding replan phase");
        }
        pending_replan = false;
        break;
    }
  }
  if (pending_replan) {
    return Status::InvalidArgument("a replan phase must not end the plan");
  }
  if (!measured) {
    return Status::InvalidArgument("the phase plan must measure something");
  }
  return Status::OK();
}

}  // namespace

Status ScenarioRunner::Validate(const ScenarioSpec& spec) {
  if (spec.nodes == 0 || spec.engines_per_node == 0) {
    return Status::InvalidArgument("topology must have >= 1 node and engine");
  }
  if (spec.replication_degree == 0) {
    return Status::InvalidArgument(
        "replication_degree counts the primary and must be >= 1");
  }
  if (spec.concurrency == 0) {
    return Status::InvalidArgument("concurrency must be >= 1");
  }
  // One source of truth for load-model validity (also what Wire() builds
  // with), run here so a bad spec fails before any data is loaded.
  Status lm_st = cc::ValidateLoadModelParams(spec.load_model,
                                             spec.MakeLoadModelParams());
  if (!lm_st.ok()) return lm_st;
  if (spec.phases.empty()) {
    if (spec.measure == 0) {
      return Status::InvalidArgument("measurement window must be > 0");
    }
    return Status::OK();
  }
  return ValidatePhases(spec.phases);
}

StatusOr<ScenarioEnv> ScenarioRunner::Wire(const ScenarioSpec& spec) {
  Status st = Validate(spec);
  if (!st.ok()) return st;

  auto bundle = WorkloadRegistry::Global().Make(spec);
  if (!bundle.ok()) return bundle.status();

  ScenarioEnv env;
  env.bundle = std::move(bundle).value();

  cc::ClusterConfig cfg;
  cfg.topology = net::Topology{.num_nodes = spec.nodes,
                               .engines_per_node = spec.engines_per_node,
                               .replication_degree = spec.replication_degree};
  cfg.schema = env.bundle->Schema();
  env.cluster = std::make_unique<cc::Cluster>(cfg);
  env.bundle->Load(env.cluster.get());

  env.repl = std::make_unique<cc::ReplicationManager>(env.cluster.get());
  auto protocol = ProtocolRegistry::Global().Make(
      spec.protocol, env.cluster.get(), env.bundle->partitioner(),
      env.repl.get());
  if (!protocol.ok()) return protocol.status();
  env.protocol = std::move(protocol).value();

  auto model =
      cc::MakeLoadModel(spec.load_model, spec.MakeLoadModelParams());
  if (!model.ok()) return model.status();

  env.driver = std::make_unique<cc::Driver>(
      env.cluster.get(), env.protocol.get(), env.bundle->source(),
      std::move(model).value(), spec.seed);
  return env;
}

StatusOr<ScenarioResult> ScenarioRunner::Run(const ScenarioSpec& spec) {
  const auto wall_start = std::chrono::steady_clock::now();
  const uint64_t rss_before = CurrentRssBytes();
  auto env = Wire(spec);
  if (!env.ok()) return env.status();
  const uint64_t rss_after = CurrentRssBytes();

  ScenarioResult result;
  result.spec = spec;
  result.loaded_rss_delta =
      rss_after > rss_before ? rss_after - rss_before : 0;

  cc::Driver* driver = env->driver.get();
  const std::vector<Phase> plan = spec.EffectivePhases();

  // Section 4.1 loop state, alive across phases: the sampling statistics
  // service and the layout the last replan built but has not yet migrated.
  std::unique_ptr<partition::StatsCollector> collector;
  std::unique_ptr<partition::LookupPartitioner> pending_layout;

  driver->Start();
  SimTime measured = 0;
  bool stats_reset = false;
  for (const Phase& ph : plan) {
    switch (ph.kind) {
      case PhaseKind::kWarmup:
        driver->Advance(ph.duration);
        break;

      case PhaseKind::kSample: {
        if (collector == nullptr) {
          collector = std::make_unique<partition::StatsCollector>(
              ph.sample_rate, spec.seed);
          collector->set_retain_traces(true);
        } else {
          // A later sample phase accumulates into the same collector (the
          // service's view of the workload only grows) at its own rate.
          collector->set_sample_rate(ph.sample_rate);
        }
        partition::StatsCollector* stats = collector.get();
        driver->SetCommitObserver(
            [stats](const txn::Transaction& t) { stats->Observe(t); });
        driver->Advance(ph.duration);
        driver->SetCommitObserver(nullptr);
        result.adaptive.sampled_txns = collector->sampled_txns();
        break;
      }

      case PhaseKind::kReplan: {
        if (env->bundle->adaptive_partitioner() == nullptr) {
          return Status::FailedPrecondition(
              "workload '" + spec.workload +
              "' has a frozen layout; replan phases need an adaptive "
              "workload (one whose bundle exposes a swappable partitioner)");
        }
        partition::ChillerPartitioner::Options popts;
        popts.k = spec.partitions();
        popts.seed = spec.seed;
        popts.hot_threshold = ph.hot_threshold;
        // The collector's per-record frequencies are relative to the
        // cluster-wide commit stream, so the lock window that turns them
        // into arrival rates is everything concurrently in flight
        // cluster-wide. The hot threshold (phase knob) then bounds the
        // hot set to the contended head — Section 4.4's small lookup
        // table — rather than the whole sampled tail.
        popts.lock_window_txns =
            static_cast<double>(spec.concurrency) * spec.partitions();
        auto out =
            partition::ChillerPartitioner::Build(collector->traces(), popts);
        result.adaptive.hot_records = out.hot_records.size();
        result.adaptive.lookup_entries = out.report.lookup_entries;
        pending_layout = std::move(out.partitioner);
        break;
      }

      case PhaseKind::kMigrate: {
        // Drain in-flight transactions, make the new layout live, move the
        // records to match it, then re-arm the closed loop. The swap and
        // the moves are invisible to execution: nothing runs in between.
        driver->Quiesce();
        partition::SwappablePartitioner* live =
            env->bundle->adaptive_partitioner();
        live->Swap(std::move(pending_layout));
        auto migration =
            cc::MigrateToLayout(env->cluster.get(), env->repl.get(), *live);
        if (!migration.ok()) return migration.status();
        result.adaptive.migration = migration.value();
        driver->Resume();
        break;
      }

      case PhaseKind::kMeasure:
        if (!stats_reset) {
          driver->ResetStats();
          stats_reset = true;
        }
        driver->set_measuring(true);
        driver->Advance(ph.duration);
        driver->set_measuring(false);
        measured += ph.duration;
        break;
    }
  }
  driver->set_measured_window(measured);
  result.stats = driver->stats();
  driver->DrainAndStop();

  result.wall_ms = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - wall_start)
                       .count();
  return result;
}

}  // namespace chiller::runner
