#include "runner/runner.h"

#include <chrono>
#include <utility>

#include "net/topology.h"

namespace chiller::runner {

Status ScenarioRunner::Validate(const ScenarioSpec& spec) {
  if (spec.nodes == 0 || spec.engines_per_node == 0) {
    return Status::InvalidArgument("topology must have >= 1 node and engine");
  }
  if (spec.replication_degree == 0) {
    return Status::InvalidArgument(
        "replication_degree counts the primary and must be >= 1");
  }
  if (spec.concurrency == 0) {
    return Status::InvalidArgument("concurrency must be >= 1");
  }
  if (spec.measure == 0) {
    return Status::InvalidArgument("measurement window must be > 0");
  }
  return Status::OK();
}

StatusOr<ScenarioEnv> ScenarioRunner::Wire(const ScenarioSpec& spec) {
  Status st = Validate(spec);
  if (!st.ok()) return st;

  auto bundle = WorkloadRegistry::Global().Make(spec);
  if (!bundle.ok()) return bundle.status();

  ScenarioEnv env;
  env.bundle = std::move(bundle).value();

  cc::ClusterConfig cfg;
  cfg.topology = net::Topology{.num_nodes = spec.nodes,
                               .engines_per_node = spec.engines_per_node,
                               .replication_degree = spec.replication_degree};
  cfg.schema = env.bundle->Schema();
  env.cluster = std::make_unique<cc::Cluster>(cfg);
  env.bundle->Load(env.cluster.get());

  env.repl = std::make_unique<cc::ReplicationManager>(env.cluster.get());
  auto protocol = ProtocolRegistry::Global().Make(
      spec.protocol, env.cluster.get(), env.bundle->partitioner(),
      env.repl.get());
  if (!protocol.ok()) return protocol.status();
  env.protocol = std::move(protocol).value();

  env.driver = std::make_unique<cc::Driver>(
      env.cluster.get(), env.protocol.get(), env.bundle->source(),
      spec.concurrency, spec.seed);
  return env;
}

StatusOr<ScenarioResult> ScenarioRunner::Run(const ScenarioSpec& spec) {
  const auto wall_start = std::chrono::steady_clock::now();
  auto env = Wire(spec);
  if (!env.ok()) return env.status();

  ScenarioResult result;
  result.spec = spec;
  result.stats = env->driver->Run(spec.warmup, spec.measure);
  env->driver->DrainAndStop();
  result.wall_ms = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - wall_start)
                       .count();
  return result;
}

}  // namespace chiller::runner
