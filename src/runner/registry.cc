#include "runner/registry.h"

#include "cc/occ.h"
#include "cc/twopl.h"
#include "chiller/two_region.h"

namespace chiller::runner {

namespace {

std::string JoinNames(const std::vector<std::string>& names) {
  std::string out;
  for (const std::string& n : names) {
    if (!out.empty()) out += ", ";
    out += n;
  }
  return out;
}

}  // namespace

// Defined in builtin_workloads.cc; called once from Global().
void RegisterBuiltinWorkloads(WorkloadRegistry* registry);

WorkloadRegistry& WorkloadRegistry::Global() {
  static WorkloadRegistry* registry = [] {
    auto* r = new WorkloadRegistry();
    RegisterBuiltinWorkloads(r);
    return r;
  }();
  return *registry;
}

Status WorkloadRegistry::Register(const std::string& name,
                                  WorkloadFactory factory) {
  std::lock_guard<std::mutex> lock(mu_);
  if (factories_.contains(name)) {
    return Status::FailedPrecondition("workload '" + name +
                                      "' already registered");
  }
  factories_[name] = std::move(factory);
  return Status::OK();
}

StatusOr<std::unique_ptr<WorkloadBundle>> WorkloadRegistry::Make(
    const ScenarioSpec& spec) const {
  WorkloadFactory factory;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = factories_.find(spec.workload);
    if (it == factories_.end()) {
      return Status::InvalidArgument("unknown workload '" + spec.workload +
                                     "' (known: " + JoinNames(NamesLocked()) +
                                     ")");
    }
    factory = it->second;
  }
  return factory(spec);
}

bool WorkloadRegistry::Has(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  return factories_.contains(name);
}

std::vector<std::string> WorkloadRegistry::Names() const {
  std::lock_guard<std::mutex> lock(mu_);
  return NamesLocked();
}

std::vector<std::string> WorkloadRegistry::NamesLocked() const {
  std::vector<std::string> names;
  names.reserve(factories_.size());
  for (const auto& [name, factory] : factories_) names.push_back(name);
  return names;
}

ProtocolRegistry& ProtocolRegistry::Global() {
  static ProtocolRegistry* registry = [] {
    auto* r = new ProtocolRegistry();
    auto must = [](const Status& st) {
      CHILLER_CHECK(st.ok()) << st.ToString();
    };
    must(r->Register(
        "2pl", [](cc::Cluster* c, const partition::RecordPartitioner* p,
                  cc::ReplicationManager* repl) -> std::unique_ptr<cc::Protocol> {
          return std::make_unique<cc::TwoPhaseLocking>(c, p, repl);
        }));
    must(r->Register(
        "occ", [](cc::Cluster* c, const partition::RecordPartitioner* p,
                  cc::ReplicationManager* repl) -> std::unique_ptr<cc::Protocol> {
          return std::make_unique<cc::Occ>(c, p, repl);
        }));
    must(r->Register(
        "chiller",
        [](cc::Cluster* c, const partition::RecordPartitioner* p,
           cc::ReplicationManager* repl) -> std::unique_ptr<cc::Protocol> {
          return std::make_unique<core::ChillerProtocol>(c, p, repl);
        }));
    // Chiller partitioning with two-region execution disabled: the
    // re-ordering ablation of Section 1.
    must(r->Register(
        "chiller-plain",
        [](cc::Cluster* c, const partition::RecordPartitioner* p,
           cc::ReplicationManager* repl) -> std::unique_ptr<cc::Protocol> {
          return std::make_unique<core::ChillerProtocol>(
              c, p, repl, /*enable_two_region=*/false);
        }));
    return r;
  }();
  return *registry;
}

Status ProtocolRegistry::Register(const std::string& name,
                                  ProtocolFactory factory) {
  std::lock_guard<std::mutex> lock(mu_);
  if (factories_.contains(name)) {
    return Status::FailedPrecondition("protocol '" + name +
                                      "' already registered");
  }
  factories_[name] = std::move(factory);
  return Status::OK();
}

StatusOr<std::unique_ptr<cc::Protocol>> ProtocolRegistry::Make(
    const std::string& name, cc::Cluster* cluster,
    const partition::RecordPartitioner* partitioner,
    cc::ReplicationManager* replication) const {
  ProtocolFactory factory;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = factories_.find(name);
    if (it == factories_.end()) {
      return Status::InvalidArgument("unknown protocol '" + name +
                                     "' (known: " + JoinNames(NamesLocked()) +
                                     ")");
    }
    factory = it->second;
  }
  return factory(cluster, partitioner, replication);
}

bool ProtocolRegistry::Has(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  return factories_.contains(name);
}

std::vector<std::string> ProtocolRegistry::Names() const {
  std::lock_guard<std::mutex> lock(mu_);
  return NamesLocked();
}

std::vector<std::string> ProtocolRegistry::NamesLocked() const {
  std::vector<std::string> names;
  names.reserve(factories_.size());
  for (const auto& [name, factory] : factories_) names.push_back(name);
  return names;
}

}  // namespace chiller::runner
