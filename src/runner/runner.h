// ScenarioRunner: turns a declarative ScenarioSpec into a wired simulated
// cluster and a measured run.
#ifndef CHILLER_RUNNER_RUNNER_H_
#define CHILLER_RUNNER_RUNNER_H_

#include <memory>

#include "cc/cluster.h"
#include "cc/driver.h"
#include "cc/protocol.h"
#include "cc/replication.h"
#include "common/status.h"
#include "runner/registry.h"
#include "runner/scenario.h"
#include "schedule/scheduler.h"

namespace chiller::runner {

/// A fully wired scenario: cluster + loaded data + protocol + driver, with
/// every owning pointer in teardown-safe member order. Examples and tests
/// that need to poke the wiring (protocol counters, storage invariants)
/// use Wire() and drive this directly; everything else uses Run().
struct ScenarioEnv {
  std::unique_ptr<WorkloadBundle> bundle;
  std::unique_ptr<cc::Cluster> cluster;
  std::unique_ptr<cc::ReplicationManager> repl;
  std::unique_ptr<cc::Protocol> protocol;
  /// Admission scheduler the driver consults (null for passthrough
  /// policies — fifo installs nothing, keeping legacy paths
  /// byte-identical). Declared before driver: members destroy in reverse
  /// order, so the driver never outlives the scheduler it points at.
  std::unique_ptr<schedule::Scheduler> scheduler;
  std::unique_ptr<cc::Driver> driver;
};

class ScenarioRunner {
 public:
  /// Structural checks that need no registry lookup (positive topology,
  /// positive concurrency, a known load model with sane knobs — open needs
  /// offered_tps > 0 and queue_cap >= 1 — and a well-formed phase plan:
  /// timed phases have positive durations, sampling precedes replanning,
  /// and every replan is immediately migrated).
  static Status Validate(const ScenarioSpec& spec);

  /// Resolves the workload and protocol from the global registries, builds
  /// the cluster, and loads the initial database. Does not run anything.
  static StatusOr<ScenarioEnv> Wire(const ScenarioSpec& spec);

  /// Wire() + the spec's phase plan + drain. The default plan is the
  /// classic warmup -> measure pair; adaptive plans interleave live stats
  /// sampling, a layout replan, and a record migration — quiesced
  /// (Phase::Migrate) or incremental under traffic (Phase::LiveMigrate,
  /// src/migrate). Continuous specs instead run the measure window under a
  /// migrate::AdaptiveController (periodic sample -> replan -> live-migrate
  /// epochs with drift gating and hysteresis). The result is a pure
  /// function of the spec: scenarios can run on any thread in any order.
  static StatusOr<ScenarioResult> Run(const ScenarioSpec& spec);
};

}  // namespace chiller::runner

#endif  // CHILLER_RUNNER_RUNNER_H_
