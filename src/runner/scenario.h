// Declarative scenario description: one simulated experiment point.
//
// A ScenarioSpec names a workload and a protocol (registry keys), the
// cluster topology, the concurrency knob, the seed, and the measurement
// window. Benches build vectors of these and hand them to SweepExecutor;
// tests and examples run single specs through ScenarioRunner. The spec is
// a plain value: copyable, comparable, and independent of any live cluster.
#ifndef CHILLER_RUNNER_SCENARIO_H_
#define CHILLER_RUNNER_SCENARIO_H_

#include <string>
#include <vector>

#include "cc/load_model.h"
#include "cc/migration.h"
#include "cc/protocol.h"
#include "common/types.h"
#include "runner/options.h"

namespace chiller::runner {

/// One step of a scenario's phase plan (see ScenarioSpec::phases).
enum class PhaseKind : uint8_t {
  kWarmup,   ///< run the closed loop, discard stats
  kSample,   ///< run the closed loop with a sampling StatsCollector attached
  kReplan,   ///< build a Chiller layout from the samples (no simulated time)
  kMigrate,  ///< quiesce, swap the live layout, physically move records
  kMeasure,  ///< run the closed loop, count stats
};

/// A phase plan entry. Timed phases (warmup/sample/measure) advance the
/// simulator by `duration`; replan/migrate are instantaneous decisions whose
/// cost shows up as the simulated migration pause. Build entries with the
/// factories so irrelevant knobs stay at their comparable defaults.
struct Phase {
  PhaseKind kind = PhaseKind::kMeasure;
  SimTime duration = 0;
  /// kSample: fraction of committed transactions recorded (paper: 0.001).
  double sample_rate = 1.0;
  /// kReplan: contention-likelihood threshold for the hot lookup table.
  /// The default keeps the hot set small (tens of records per partition on
  /// a zipf-0.9 workload) — the Section 4.4 regime the lookup table and
  /// the two-region planner are designed for.
  double hot_threshold = 0.05;

  static Phase Warmup(SimTime d) {
    return {.kind = PhaseKind::kWarmup, .duration = d};
  }
  static Phase Sample(SimTime d, double rate) {
    return {.kind = PhaseKind::kSample, .duration = d, .sample_rate = rate};
  }
  static Phase Replan(double hot_threshold = 0.05) {
    return {.kind = PhaseKind::kReplan, .hot_threshold = hot_threshold};
  }
  static Phase Migrate() { return {.kind = PhaseKind::kMigrate}; }
  static Phase Measure(SimTime d) {
    return {.kind = PhaseKind::kMeasure, .duration = d};
  }

  friend bool operator==(const Phase&, const Phase&) = default;
};

struct ScenarioSpec {
  /// Free-form tag carried into the result (series name, grid point, ...).
  std::string label;

  /// Registry keys; see WorkloadRegistry / ProtocolRegistry.
  std::string workload = "tpcc";
  std::string protocol = "chiller";

  /// Workload-specific knobs, interpreted by the workload factory.
  OptionMap options;

  // Cluster topology (one partition per engine, as in the paper).
  uint32_t nodes = 8;
  uint32_t engines_per_node = 1;
  uint32_t replication_degree = 2;

  /// Open transactions per engine (the paper's Figure 9 knob). Under the
  /// open load model this is the per-engine service parallelism instead:
  /// how many admitted transactions may execute concurrently.
  uint32_t concurrency = 4;

  // Load model (see cc/load_model.h): how work is offered to the engines.
  /// "closed" (default, the paper's closed loop), "open" (offered-load
  /// arrivals + bounded admission queue), or "batched" (group admission).
  std::string load_model = "closed";
  /// open: cluster-wide offered load, txns per simulated second, split
  /// evenly across engines. Required > 0 when load_model == "open".
  double offered_tps = 0.0;
  /// open: interarrival process, "poisson" or "uniform".
  std::string arrival = "poisson";
  /// open: bounded per-engine admission queue; arrivals beyond it are shed
  /// (counted in RunStats::shed).
  uint32_t queue_cap = 64;
  /// batched: transactions admitted per engine batch.
  uint32_t batch_size = 8;

  /// Base RNG seed: the whole scenario is a pure function of the spec.
  uint64_t seed = 1;

  SimTime warmup = 3 * kMillisecond;
  SimTime measure = 15 * kMillisecond;

  /// Execution phase plan. Empty means the classic two-phase run,
  /// warmup -> measure, taken from the fields above (which the plan
  /// supersedes when non-empty). Sample/replan/migrate phases reproduce the
  /// paper's Section 4.1 adaptive loop and require a workload whose bundle
  /// exposes an adaptive partitioner (e.g. the `adaptive` family).
  std::vector<Phase> phases;

  /// Approximate peak resident bytes this scenario needs while loaded
  /// (cluster + replicas). 0 = unknown. SweepExecutor uses it to cap the
  /// scenarios loaded concurrently against a memory budget; see
  /// EstimateFootprint() for a rough per-workload estimate.
  uint64_t footprint_hint = 0;

  uint32_t partitions() const { return nodes * engines_per_node; }

  /// The spec's load-model knobs in cc terms — the single conversion
  /// behind validation (ScenarioRunner::Validate and bench flag parsing)
  /// and model construction (ScenarioRunner::Wire), so the field mapping
  /// cannot drift between them.
  cc::LoadModelParams MakeLoadModelParams() const {
    return {.slots_per_engine = concurrency,
            .offered_tps = offered_tps,
            .arrival = arrival,
            .queue_cap = queue_cap,
            .batch_size = batch_size,
            .seed = seed};
  }

  /// The plan Run() executes: `phases`, or the legacy two-phase shape.
  std::vector<Phase> EffectivePhases() const {
    if (!phases.empty()) return phases;
    return {Phase::Warmup(warmup), Phase::Measure(measure)};
  }

  friend bool operator==(const ScenarioSpec&, const ScenarioSpec&) = default;
};

/// Adaptive-loop accounting for one scenario run: what the sampling service
/// saw, what the replan decided, and what the migration cost. All zero for
/// plans without sample/replan/migrate phases.
struct AdaptiveReport {
  uint64_t sampled_txns = 0;
  size_t hot_records = 0;
  size_t lookup_entries = 0;
  cc::MigrationStats migration;
};

/// Outcome of one scenario: the spec it ran plus the measurement-window
/// stats and the host wall-clock the run took (sweep speedup accounting).
struct ScenarioResult {
  ScenarioSpec spec;
  cc::RunStats stats;
  AdaptiveReport adaptive;
  double wall_ms = 0.0;
  /// Process-RSS growth observed across wiring + loading this scenario's
  /// cluster (bytes; 0 when the probe is unavailable). Sampled while the
  /// data is resident — concurrent scenarios inflate each other's numbers,
  /// so this calibrates footprint_hint estimates, it does not audit them.
  uint64_t loaded_rss_delta = 0;
};

}  // namespace chiller::runner

#endif  // CHILLER_RUNNER_SCENARIO_H_
