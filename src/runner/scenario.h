// Declarative scenario description: one simulated experiment point.
//
// A ScenarioSpec names a workload and a protocol (registry keys), the
// cluster topology, the concurrency knob, the seed, and the measurement
// window. Benches build vectors of these and hand them to SweepExecutor;
// tests and examples run single specs through ScenarioRunner. The spec is
// a plain value: copyable, comparable, and independent of any live cluster.
#ifndef CHILLER_RUNNER_SCENARIO_H_
#define CHILLER_RUNNER_SCENARIO_H_

#include <string>

#include "cc/protocol.h"
#include "common/types.h"
#include "runner/options.h"

namespace chiller::runner {

struct ScenarioSpec {
  /// Free-form tag carried into the result (series name, grid point, ...).
  std::string label;

  /// Registry keys; see WorkloadRegistry / ProtocolRegistry.
  std::string workload = "tpcc";
  std::string protocol = "chiller";

  /// Workload-specific knobs, interpreted by the workload factory.
  OptionMap options;

  // Cluster topology (one partition per engine, as in the paper).
  uint32_t nodes = 8;
  uint32_t engines_per_node = 1;
  uint32_t replication_degree = 2;

  /// Open transactions per engine (the paper's Figure 9 knob).
  uint32_t concurrency = 4;

  /// Base RNG seed: the whole scenario is a pure function of the spec.
  uint64_t seed = 1;

  SimTime warmup = 3 * kMillisecond;
  SimTime measure = 15 * kMillisecond;

  uint32_t partitions() const { return nodes * engines_per_node; }

  friend bool operator==(const ScenarioSpec&, const ScenarioSpec&) = default;
};

/// Outcome of one scenario: the spec it ran plus the measurement-window
/// stats and the host wall-clock the run took (sweep speedup accounting).
struct ScenarioResult {
  ScenarioSpec spec;
  cc::RunStats stats;
  double wall_ms = 0.0;
};

}  // namespace chiller::runner

#endif  // CHILLER_RUNNER_SCENARIO_H_
