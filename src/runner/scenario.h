// Declarative scenario description: one simulated experiment point.
//
// A ScenarioSpec names a workload and a protocol (registry keys), the
// cluster topology, the concurrency knob, the seed, and the measurement
// window. Benches build vectors of these and hand them to SweepExecutor;
// tests and examples run single specs through ScenarioRunner. The spec is
// a plain value: copyable, comparable, and independent of any live cluster.
#ifndef CHILLER_RUNNER_SCENARIO_H_
#define CHILLER_RUNNER_SCENARIO_H_

#include <memory>
#include <string>
#include <vector>

#include "cc/load_model.h"
#include "cc/migration.h"
#include "cc/protocol.h"
#include "common/types.h"
#include "obs/trace_recorder.h"
#include "runner/options.h"

namespace chiller::runner {

/// One step of a scenario's phase plan (see ScenarioSpec::phases).
enum class PhaseKind : uint8_t {
  kWarmup,   ///< run the closed loop, discard stats
  kSample,   ///< run the closed loop with a sampling StatsCollector attached
  kReplan,   ///< build a Chiller layout from the samples (no simulated time)
  kMigrate,  ///< quiesce, swap the live layout, physically move records
  /// Live relayout (src/migrate): move records bucket-by-bucket while
  /// traffic keeps flowing; transactions hitting an in-flight bucket
  /// retry with the dedicated migration abort class.
  kLiveMigrate,
  kMeasure,  ///< run the closed loop, count stats
};

/// A phase plan entry. Timed phases (warmup/sample/measure) advance the
/// simulator by `duration`; replan/migrate are instantaneous decisions whose
/// cost shows up as the simulated migration pause. Build entries with the
/// factories so irrelevant knobs stay at their comparable defaults.
struct Phase {
  PhaseKind kind = PhaseKind::kMeasure;
  SimTime duration = 0;
  /// kSample: fraction of committed transactions recorded (paper: 0.001).
  double sample_rate = 1.0;
  /// kReplan: contention-likelihood threshold for the hot lookup table.
  /// The default keeps the hot set small (tens of records per partition on
  /// a zipf-0.9 workload) — the Section 4.4 regime the lookup table and
  /// the two-region planner are designed for.
  double hot_threshold = 0.05;

  static Phase Warmup(SimTime d) {
    return {.kind = PhaseKind::kWarmup, .duration = d};
  }
  static Phase Sample(SimTime d, double rate) {
    return {.kind = PhaseKind::kSample, .duration = d, .sample_rate = rate};
  }
  static Phase Replan(double hot_threshold = 0.05) {
    return {.kind = PhaseKind::kReplan, .hot_threshold = hot_threshold};
  }
  static Phase Migrate() { return {.kind = PhaseKind::kMigrate}; }
  static Phase LiveMigrate() { return {.kind = PhaseKind::kLiveMigrate}; }
  static Phase Measure(SimTime d) {
    return {.kind = PhaseKind::kMeasure, .duration = d};
  }

  friend bool operator==(const Phase&, const Phase&) = default;
};

struct ScenarioSpec {
  /// Free-form tag carried into the result (series name, grid point, ...).
  std::string label;

  /// Registry keys; see WorkloadRegistry / ProtocolRegistry.
  std::string workload = "tpcc";
  std::string protocol = "chiller";

  /// Workload-specific knobs, interpreted by the workload factory.
  OptionMap options;

  // Cluster topology (one partition per engine, as in the paper).
  uint32_t nodes = 8;
  uint32_t engines_per_node = 1;
  uint32_t replication_degree = 2;

  /// Open transactions per engine (the paper's Figure 9 knob). Under the
  /// open load model this is the per-engine service parallelism instead:
  /// how many admitted transactions may execute concurrently.
  uint32_t concurrency = 4;

  // Load model (see cc/load_model.h): how work is offered to the engines.
  /// "closed" (default, the paper's closed loop), "open" (offered-load
  /// arrivals + bounded admission queue), or "batched" (group admission).
  std::string load_model = "closed";
  /// open: cluster-wide offered load, txns per simulated second, split
  /// evenly across engines. Required > 0 when load_model == "open".
  double offered_tps = 0.0;
  /// open: interarrival process, "poisson" or "uniform".
  std::string arrival = "poisson";
  /// open: bounded per-engine admission queue; arrivals beyond it are shed
  /// (counted in RunStats::shed).
  uint32_t queue_cap = 64;
  /// batched: transactions admitted per engine batch.
  uint32_t batch_size = 8;

  // Admission scheduler (see schedule/scheduler.h): which transaction is
  // admitted where, ahead of the load model's when.
  /// Registry key: "fifo" (default, byte-identical to no scheduler),
  /// "hash-affinity" (open model), "batch-pack" (batched model).
  std::string scheduler = "fifo";
  /// Conflict-class universe size for classifying schedulers; 0 = a
  /// default large enough that distinct hot records rarely share a class.
  uint32_t sched_classes = 0;
  /// Overflow policy of the scheduled admission queue: "drop-new"
  /// (legacy: shed the arrival), "drop-cold", or "drop-hot". Non-default
  /// values need a classifying scheduler.
  std::string shed_policy = "drop-new";

  /// Base RNG seed: the whole scenario is a pure function of the spec.
  uint64_t seed = 1;

  /// Simulator shards: real threads running the scenario's event space
  /// (partitioned by node). Results are byte-identical for any value — the
  /// knob only trades wall-clock time for cores, which is why it is NOT
  /// part of the result identity (reports never emit it).
  uint32_t shards = 1;

  SimTime warmup = 3 * kMillisecond;
  SimTime measure = 15 * kMillisecond;

  /// Execution phase plan. Empty means the classic two-phase run,
  /// warmup -> measure, taken from the fields above (which the plan
  /// supersedes when non-empty). Sample/replan/migrate phases reproduce the
  /// paper's Section 4.1 adaptive loop and require a workload whose bundle
  /// exposes an adaptive partitioner (e.g. the `adaptive` family).
  std::vector<Phase> phases;

  // --- live relayout / continuous adaptivity (src/migrate) ----------------
  /// Relayout bucket count for live-migrate phases and the continuous
  /// controller: the granule of incremental migration (locked buckets
  /// gate their traffic; everything else keeps flowing).
  uint32_t relayout_buckets = 64;
  /// Records per migration RPC batch (live path only).
  uint32_t migrate_batch_records = 128;
  /// Relayout buckets streamed concurrently by the live path (the
  /// migrator's k). 1 = the legacy sequential walk, byte for byte.
  uint32_t migrate_streams = 1;
  /// Attach a migrate::MigrationGovernor: every controller epoch (or
  /// advance step of a live-migrate phase) retunes the stream width
  /// between [governor_min_streams, governor_max_streams] against the
  /// foreground SLO below. migrate_streams is its starting width.
  bool governor = false;
  uint32_t governor_min_streams = 1;
  uint32_t governor_max_streams = 8;
  /// Foreground commit-latency p99 budget per epoch, ns; 0 disables the
  /// latency signal (abort share still governs).
  SimTime governor_p99_budget = 0;
  /// Largest tolerated per-epoch share of foreground outcomes aborted by
  /// the migration bucket gate, in [0, 1].
  double governor_max_abort_share = 0.05;
  /// Continuous mode: instead of a phase plan, the measure window runs
  /// under a migrate::AdaptiveController that periodically samples,
  /// replans, and live-migrates when workload drift exceeds the threshold
  /// (with hysteresis). Requires an adaptive workload and an empty
  /// `phases` vector (the controller owns the loop).
  bool continuous = false;
  /// Continuous mode: epoch length (one sample window + replan decision).
  SimTime controller_period = 2 * kMillisecond;
  /// Continuous mode: per-epoch commit sample rate, in (0, 1].
  double controller_sample_rate = 1.0;
  /// Continuous mode: drift above which a relayout starts — the relative
  /// residual-contention improvement a replanned layout would deliver on
  /// the epoch's traces (see migrate::AdaptiveControllerOptions).
  double controller_drift_threshold = 0.1;
  /// Continuous mode: consecutive calm epochs before the loop settles.
  uint32_t controller_hysteresis = 2;
  /// Continuous mode: relative worsening of the live layout's residual
  /// contention (vs the calm-state baseline) that re-arms a settled loop.
  /// 0 = settling is terminal (legacy).
  double rearm_threshold = 0.0;
  /// Continuous mode: score candidate layouts every epoch but never
  /// migrate and never settle (zero-risk shadow deployment).
  bool shadow = false;
  /// Throughput/latency timeline: when > 0, timed phases advance in slices
  /// of this length and every slice's commit count and latency sum land in
  /// AdaptiveReport::timeline (quiesced migration pauses show up as a
  /// zero-commit slice). 0 = no timeline.
  SimTime timeline_slice = 0;
  // ------------------------------------------------------------------------

  /// Trace every engine's k-th logical transaction when
  /// k % trace_sample_every == 0 (see obs::TraceRecorder::Sampled); 0
  /// disables tracing. Like shards, tracing must never change results:
  /// spans record from the same domain events that already run, so stats
  /// bytes are identical with tracing on or off.
  uint32_t trace_sample_every = 0;

  /// Approximate peak resident bytes this scenario needs while loaded
  /// (cluster + replicas). 0 = unknown. SweepExecutor uses it to cap the
  /// scenarios loaded concurrently against a memory budget; see
  /// EstimateFootprint() for a rough per-workload estimate.
  uint64_t footprint_hint = 0;

  uint32_t partitions() const { return nodes * engines_per_node; }

  /// The spec's load-model knobs in cc terms — the single conversion
  /// behind validation (ScenarioRunner::Validate and bench flag parsing)
  /// and model construction (ScenarioRunner::Wire), so the field mapping
  /// cannot drift between them.
  cc::LoadModelParams MakeLoadModelParams() const {
    return {.slots_per_engine = concurrency,
            .offered_tps = offered_tps,
            .arrival = arrival,
            .queue_cap = queue_cap,
            .batch_size = batch_size,
            .shed_policy = shed_policy,
            .seed = seed};
  }

  /// The plan Run() executes: `phases`, or the legacy two-phase shape.
  std::vector<Phase> EffectivePhases() const {
    if (!phases.empty()) return phases;
    return {Phase::Warmup(warmup), Phase::Measure(measure)};
  }

  friend bool operator==(const ScenarioSpec&, const ScenarioSpec&) = default;
};

/// One timeline slice: commit flow over [start, end) of simulated time,
/// from the driver's lifetime counters (measuring toggles do not affect
/// it). latency_ns_sum / commits is the slice's mean commit latency.
struct TimelineSlice {
  SimTime start = 0;
  SimTime end = 0;
  uint64_t commits = 0;
  uint64_t latency_ns_sum = 0;

  friend bool operator==(const TimelineSlice&, const TimelineSlice&) =
      default;
};

/// Adaptive-loop accounting for one scenario run: what the sampling service
/// saw, what the replan decided, and what the migration cost. All zero for
/// plans without sample/replan/migrate phases.
struct AdaptiveReport {
  uint64_t sampled_txns = 0;
  size_t hot_records = 0;
  size_t lookup_entries = 0;
  cc::MigrationStats migration;

  // Relayout window on the simulator clock (quiesced pause or live span;
  // for continuous mode, the first relayout's start to the last one's end).
  SimTime migration_start = 0;
  SimTime migration_end = 0;
  /// Commits that landed inside the window: 0 by construction for the
  /// quiesced path, > 0 when live migration keeps traffic flowing.
  /// Continuous mode counts at epoch granularity — up to one controller
  /// period of post-relayout traffic rides along per relayout.
  uint64_t migration_window_commits = 0;
  /// Attempts aborted by the bucket gate inside the window.
  uint64_t migration_window_aborts = 0;
  /// Relayout buckets completed by the live path (0 for quiesced).
  uint32_t buckets_moved = 0;

  // Continuous-controller accounting (see migrate::AdaptiveController).
  uint32_t controller_epochs = 0;
  uint32_t controller_migrations = 0;
  bool controller_settled = false;
  /// Settled -> re-armed transitions (rearm_threshold > 0).
  uint32_t controller_rearms = 0;
  /// Shadow-mode candidate scorings (never executed).
  uint32_t shadow_evals = 0;
  /// Most recent replan's drift reading.
  double last_drift = 0.0;

  // Concurrent-stream accounting (live migrate phases and continuous).
  /// Max relayout buckets concurrently in flight across the run.
  uint32_t peak_streams = 0;
  uint32_t governor_widens = 0;
  uint32_t governor_narrows = 0;

  /// Per-slice commit flow when ScenarioSpec::timeline_slice > 0.
  std::vector<TimelineSlice> timeline;
};

/// Outcome of one scenario: the spec it ran plus the measurement-window
/// stats and the host wall-clock the run took (sweep speedup accounting).
struct ScenarioResult {
  ScenarioSpec spec;
  cc::RunStats stats;
  AdaptiveReport adaptive;
  /// The run's trace recorder (never null after ScenarioRunner::Run;
  /// inactive unless spec.trace_sample_every > 0). Shared so the recorder
  /// outlives the run's cluster — SweepExecutor merges the per-scenario
  /// recorders into one --trace-out file after the sweep.
  std::shared_ptr<const obs::TraceRecorder> trace;
  double wall_ms = 0.0;
  /// Process-RSS growth observed across wiring + loading this scenario's
  /// cluster (bytes; 0 when the probe is unavailable). Sampled while the
  /// data is resident — concurrent scenarios inflate each other's numbers,
  /// so this calibrates footprint_hint estimates, it does not audit them.
  uint64_t loaded_rss_delta = 0;
};

}  // namespace chiller::runner

#endif  // CHILLER_RUNNER_SCENARIO_H_
