#include "sim/simulator.h"

#include <utility>

#include "common/logging.h"

namespace chiller::sim {

void Simulator::Schedule(SimTime delay, std::function<void()> fn) {
  queue_.Push(now_ + delay, std::move(fn));
}

void Simulator::ScheduleAt(SimTime when, std::function<void()> fn) {
  CHILLER_CHECK(when >= now_) << "scheduling into the past: " << when << " < "
                              << now_;
  queue_.Push(when, std::move(fn));
}

void Simulator::Run() {
  while (!queue_.empty()) {
    Event e = queue_.Pop();
    CHILLER_DCHECK(e.time >= now_);
    now_ = e.time;
    ++events_processed_;
    e.fn();
  }
}

void Simulator::RunUntil(SimTime until) {
  while (!queue_.empty() && queue_.NextTime() <= until) {
    Event e = queue_.Pop();
    now_ = e.time;
    ++events_processed_;
    e.fn();
  }
  now_ = std::max(now_, until);
}

void Simulator::Clear() {
  while (!queue_.empty()) queue_.Pop();
}

}  // namespace chiller::sim
