#include "sim/simulator.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"

namespace chiller::sim {

uint64_t Simulator::NextSeq(DomainId origin) {
  if (seq_.size() <= origin) seq_.resize(origin + 1, 0);
  return seq_[origin]++;
}

void Simulator::ScheduleIn(DomainId domain, SimTime when,
                           std::function<void()> fn) {
  CHILLER_CHECK(when >= now_) << "scheduling into the past: " << when << " < "
                              << now_;
  // Conservative-synchronization contract: a data-domain event may reach a
  // *different* data domain no earlier than the next lookahead boundary.
  // The network layer guarantees this by construction (cross-node latency
  // >= lookahead); anything else would be unrunnable on the sharded
  // implementation.
  CHILLER_DCHECK(lookahead() == 0 || current_domain_ == kControlDomain ||
                 domain == kControlDomain || domain == current_domain_ ||
                 when >= WindowEnd(now_))
      << "cross-domain event inside a lookahead window: " << current_domain_
      << " -> " << domain << " at " << when;
  queue_.Push(when, domain, current_domain_, NextSeq(current_domain_),
              std::move(fn));
}

void Simulator::ScheduleControl(SimTime delay, std::function<void()> fn) {
  const SimTime when = ControlFireTime(delay);
  queue_.Push(when, kControlDomain, current_domain_,
              NextSeq(current_domain_), std::move(fn));
}

void Simulator::Execute(Event e) {
  CHILLER_DCHECK(e.time >= now_);
  now_ = e.time;
  current_domain_ = e.domain;
  ++events_processed_;
  e.fn();
  current_domain_ = kControlDomain;
}

void Simulator::Run() {
  while (!queue_.empty()) Execute(queue_.Pop());
}

void Simulator::RunUntil(SimTime until) {
  while (!queue_.empty() && queue_.NextTime() <= until) {
    Execute(queue_.Pop());
  }
  now_ = std::max(now_, until);
}

void Simulator::Clear() {
  while (!queue_.empty()) queue_.Pop();
}

}  // namespace chiller::sim
