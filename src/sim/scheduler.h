// Scheduling interface shared by the single-threaded Simulator and the
// multi-threaded ShardedSimulator, plus the event-domain vocabulary both
// implementations order events by.
//
// ## Domains
//
// Every event belongs to a *domain*: a serial island of simulated state.
// Domain 0 (kControlDomain) is the control plane — quiesced migrations,
// live-migrator bucket completions, phase bookkeeping — which may touch any
// state because it only ever runs while every other domain is paused. Data
// domains (1 + node id) carry the per-node execution: engine CPUs, primary
// and replica stores hosted on that node, and the node's network send
// horizons. Two events in different data domains never touch the same
// state within one lookahead window (messages between nodes carry at least
// one window of simulated latency), which is what lets the sharded
// implementation run domains on real threads without changing any result.
//
// ## The canonical event order
//
// Both implementations execute events in an order consistent with the
// total key (time, domain, origin_domain, origin_seq):
//
//   - time           the simulated instant the event fires;
//   - domain         the domain it fires in (control sorts before data, so
//                    a control batch at a window boundary runs before the
//                    window that starts there);
//   - origin_domain  the domain that was executing when the event was
//                    scheduled;
//   - origin_seq     a per-origin-domain schedule counter.
//
// The last two make ties deterministic *independently of thread
// interleaving*: each domain's execution sequence — and therefore its
// schedule sequence — is identical for any shard count, so the key never
// depends on how domains happened to interleave on real threads. The
// single-threaded Simulator executes exactly this total order; the sharded
// one executes a per-domain-consistent interleaving of it, which produces
// byte-identical results because same-time events in different data
// domains commute.
#ifndef CHILLER_SIM_SCHEDULER_H_
#define CHILLER_SIM_SCHEDULER_H_

#include <cstdint>
#include <functional>

#include "common/types.h"

namespace chiller::sim {

/// A serial island of simulated state; see the header comment.
using DomainId = uint32_t;

/// The control plane: runs only while every data domain is paused, may
/// touch anything, and sorts before data events at the same instant.
inline constexpr DomainId kControlDomain = 0;

/// The data domain hosting node `n`'s engines, stores and send horizons.
constexpr DomainId DomainOfNode(NodeId n) { return n + 1; }

/// What Schedule/ScheduleAt/ScheduleIn and Run/RunUntil/Clear mean is
/// defined here once; Simulator (one thread, one queue) and
/// ShardedSimulator (one queue per shard, conservative lookahead windows)
/// are interchangeable behind this interface — protocol code never names a
/// concrete implementation.
class Scheduler {
 public:
  virtual ~Scheduler() = default;

  /// Current simulated time: the executing event's timestamp inside an
  /// event, the last Run/RunUntil horizon outside one.
  virtual SimTime now() const = 0;

  /// Domain of the event currently executing; kControlDomain outside
  /// events (external callers are control-plane by definition: they run
  /// between Run/RunUntil calls, with every domain paused).
  virtual DomainId current_domain() const = 0;

  /// Schedules `fn` in `domain` at absolute time `when` (>= now()). From a
  /// data-domain event into a *different* data domain, `when` must not
  /// precede the next lookahead boundary — cross-domain interaction inside
  /// a window is exactly what the conservative synchronization forbids.
  /// The network layer satisfies this by construction (every cross-node
  /// message carries at least one window of latency); a DCHECK enforces it.
  virtual void ScheduleIn(DomainId domain, SimTime when,
                          std::function<void()> fn) = 0;

  /// Schedules `fn` on the control plane. The fire time is now() + delay
  /// rounded *up* to the lookahead grid (control runs only at window
  /// boundaries, where every domain is paused); from a data-domain event
  /// it is additionally clamped past the current window's end. With no
  /// lookahead configured (standalone single-threaded use) it degenerates
  /// to plain control-domain scheduling at now() + delay. The rounding is
  /// pure arithmetic on (now, delay, lookahead) — identical for every
  /// shard count.
  virtual void ScheduleControl(SimTime delay, std::function<void()> fn) = 0;

  /// Runs events until every queue drains. Leaves now() at the last
  /// event's timestamp.
  virtual void Run() = 0;

  /// Runs all events with time <= `until`, then sets now() to `until`.
  virtual void RunUntil(SimTime until) = 0;

  /// Drops every pending event (tests; ending a measurement run).
  virtual void Clear() = 0;

  virtual uint64_t events_processed() const = 0;
  virtual bool idle() const = 0;

  /// The conservative-synchronization lookahead: the minimum simulated
  /// latency of any cross-domain message (one-way network propagation +
  /// NIC processing). Cluster wiring sets it from the network config on
  /// both implementations, so their control-plane rounding agrees; 0 means
  /// "no grid" (standalone single-threaded use).
  void set_lookahead(SimTime lookahead) { lookahead_ = lookahead; }
  SimTime lookahead() const { return lookahead_; }

  /// Schedules `fn` in the *current* domain, `delay` ns from now.
  void Schedule(SimTime delay, std::function<void()> fn) {
    ScheduleIn(current_domain(), now() + delay, std::move(fn));
  }

  /// Schedules `fn` in the current domain at absolute time `when`.
  void ScheduleAt(SimTime when, std::function<void()> fn) {
    ScheduleIn(current_domain(), when, std::move(fn));
  }

 protected:
  /// First lookahead-grid point at or after `t`; `t` itself when no grid
  /// is configured.
  SimTime GridCeil(SimTime t) const {
    if (lookahead_ == 0) return t;
    return (t + lookahead_ - 1) / lookahead_ * lookahead_;
  }

  /// End of the lookahead window containing `t` (the next boundary
  /// strictly after `t` when `t` sits exactly on the grid).
  SimTime WindowEnd(SimTime t) const {
    if (lookahead_ == 0) return t;
    return (t / lookahead_ + 1) * lookahead_;
  }

  /// Control-plane fire time for ScheduleControl: grid-rounded, and — from
  /// a data-domain event — never inside the window that is executing.
  SimTime ControlFireTime(SimTime delay) const {
    const SimTime target = GridCeil(now() + delay);
    if (current_domain() == kControlDomain) return target;
    return target > WindowEnd(now()) ? target : WindowEnd(now());
  }

 private:
  SimTime lookahead_ = 0;
};

}  // namespace chiller::sim

#endif  // CHILLER_SIM_SCHEDULER_H_
