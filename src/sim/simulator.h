// Discrete-event simulator: the substrate standing in for the paper's
// 8-machine InfiniBand testbed. See DESIGN.md section 1 for the fidelity
// argument.
#ifndef CHILLER_SIM_SIMULATOR_H_
#define CHILLER_SIM_SIMULATOR_H_

#include <cstdint>
#include <functional>

#include "common/types.h"
#include "sim/event_queue.h"

namespace chiller::sim {

/// Single-threaded deterministic event loop. All cluster components
/// (engines, NICs, the network) schedule callbacks here; simulated time
/// advances only between events, never inside one.
class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time.
  SimTime now() const { return now_; }

  /// Schedules `fn` to run `delay` ns from now.
  void Schedule(SimTime delay, std::function<void()> fn);

  /// Schedules `fn` at absolute simulated time `when` (>= now()).
  void ScheduleAt(SimTime when, std::function<void()> fn);

  /// Runs events until the queue drains.
  void Run();

  /// Runs all events with time <= `until`, then sets now() to `until`.
  void RunUntil(SimTime until);

  /// Drops every pending event (used by tests and to end measurement runs).
  void Clear();

  uint64_t events_processed() const { return events_processed_; }
  bool idle() const { return queue_.empty(); }

 private:
  EventQueue queue_;
  SimTime now_ = 0;
  uint64_t events_processed_ = 0;
};

}  // namespace chiller::sim

#endif  // CHILLER_SIM_SIMULATOR_H_
