// Discrete-event simulator: the substrate standing in for the paper's
// 8-machine InfiniBand testbed. See DESIGN.md section 1 for the fidelity
// argument.
#ifndef CHILLER_SIM_SIMULATOR_H_
#define CHILLER_SIM_SIMULATOR_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/types.h"
#include "sim/event_queue.h"
#include "sim/scheduler.h"

namespace chiller::sim {

/// Single-threaded deterministic event loop. All cluster components
/// (engines, NICs, the network) schedule callbacks here; simulated time
/// advances only between events, never inside one. Events execute in
/// exactly the canonical (time, domain, origin, seq) order, which is the
/// order the multi-threaded ShardedSimulator reproduces per domain — the
/// two are interchangeable behind sim::Scheduler, byte for byte.
class Simulator : public Scheduler {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime now() const override { return now_; }
  DomainId current_domain() const override { return current_domain_; }

  void ScheduleIn(DomainId domain, SimTime when,
                  std::function<void()> fn) override;
  void ScheduleControl(SimTime delay, std::function<void()> fn) override;

  /// Runs events until the queue drains.
  void Run() override;

  /// Runs all events with time <= `until`, then sets now() to `until`.
  void RunUntil(SimTime until) override;

  /// Drops every pending event (used by tests and to end measurement runs).
  void Clear() override;

  uint64_t events_processed() const override { return events_processed_; }
  bool idle() const override { return queue_.empty(); }

 private:
  void Execute(Event e);
  uint64_t NextSeq(DomainId origin);

  EventQueue queue_;
  SimTime now_ = 0;
  DomainId current_domain_ = kControlDomain;
  std::vector<uint64_t> seq_;  ///< per-origin-domain schedule counters
  uint64_t events_processed_ = 0;
};

}  // namespace chiller::sim

#endif  // CHILLER_SIM_SIMULATOR_H_
