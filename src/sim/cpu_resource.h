// Serial CPU model for a transaction execution engine.
#ifndef CHILLER_SIM_CPU_RESOURCE_H_
#define CHILLER_SIM_CPU_RESOURCE_H_

#include <functional>

#include "common/types.h"
#include "sim/scheduler.h"

namespace chiller::sim {

/// Models one pinned core running an execution engine (paper Section 6).
///
/// Work items are served FIFO and non-preemptively: a submission at time t
/// starts at max(t, busy_until) and completes `cost` ns later. This captures
/// the two CPU effects the evaluation depends on:
///   - the engine is never idle while work is pending (co-routine model), and
///   - throughput saturates once offered work exceeds core capacity
///     (the Figure 9a plateau at ~4 concurrent transactions).
///
/// The core lives in one event domain (its node's); completions are
/// scheduled there so the sharded simulator keeps all of a node's CPU state
/// on one thread.
class CpuResource {
 public:
  explicit CpuResource(Scheduler* sim, DomainId domain = kControlDomain)
      : sim_(sim), domain_(domain) {}

  /// Enqueues work consuming `cost` CPU-ns; `fn` runs at completion time.
  void Submit(SimTime cost, std::function<void()> fn);

  /// Time at which the last queued work item completes.
  SimTime busy_until() const { return busy_until_; }

  /// Total CPU-ns consumed so far (for utilization reporting).
  SimTime total_busy() const { return total_busy_; }

  /// Utilization over [0, now].
  double Utilization() const;

 private:
  Scheduler* sim_;
  DomainId domain_;
  SimTime busy_until_ = 0;
  SimTime total_busy_ = 0;
};

}  // namespace chiller::sim

#endif  // CHILLER_SIM_CPU_RESOURCE_H_
