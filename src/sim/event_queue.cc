#include "sim/event_queue.h"

#include <utility>

#include "common/logging.h"

namespace chiller::sim {

void EventQueue::Push(SimTime time, std::function<void()> fn) {
  Push(time, 0, 0, next_seq_++, std::move(fn));
}

void EventQueue::Push(SimTime time, uint32_t domain, uint32_t origin,
                      uint64_t seq, std::function<void()> fn) {
  size_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
    fns_[slot] = std::move(fn);
  } else {
    slot = fns_.size();
    fns_.push_back(std::move(fn));
  }
  heap_.push(Entry{time, domain, origin, seq, slot});
}

SimTime EventQueue::NextTime() const {
  return heap_.empty() ? kSimTimeNever : heap_.top().time;
}

Event EventQueue::Pop() {
  CHILLER_CHECK(!heap_.empty());
  const Entry top = heap_.top();
  heap_.pop();
  Event e{top.time, top.domain, top.origin, top.seq,
          std::move(fns_[top.slot])};
  fns_[top.slot] = nullptr;
  free_slots_.push_back(top.slot);
  return e;
}

}  // namespace chiller::sim
