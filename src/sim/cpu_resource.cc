#include "sim/cpu_resource.h"

#include <algorithm>
#include <utility>

namespace chiller::sim {

void CpuResource::Submit(SimTime cost, std::function<void()> fn) {
  const SimTime start = std::max(sim_->now(), busy_until_);
  const SimTime end = start + cost;
  busy_until_ = end;
  total_busy_ += cost;
  sim_->ScheduleIn(domain_, end, std::move(fn));
}

double CpuResource::Utilization() const {
  const SimTime now = sim_->now();
  if (now == 0) return 0.0;
  const SimTime busy = std::min(total_busy_, now);
  return static_cast<double>(busy) / static_cast<double>(now);
}

}  // namespace chiller::sim
