// Deterministic event queue for the discrete-event simulator.
#ifndef CHILLER_SIM_EVENT_QUEUE_H_
#define CHILLER_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/types.h"

namespace chiller::sim {

/// A scheduled callback. Events are totally ordered by (time, seq): two
/// events at the same instant fire in the order they were scheduled, which
/// makes simulations bit-for-bit reproducible.
struct Event {
  SimTime time = 0;
  uint64_t seq = 0;
  std::function<void()> fn;
};

/// Min-heap of events ordered by (time, seq).
class EventQueue {
 public:
  /// Schedules `fn` at absolute time `time`.
  void Push(SimTime time, std::function<void()> fn);

  bool empty() const { return heap_.empty(); }
  size_t size() const { return heap_.size(); }

  /// Time of the earliest pending event; kSimTimeNever when empty.
  SimTime NextTime() const;

  /// Removes and returns the earliest event. Queue must be non-empty.
  Event Pop();

 private:
  struct Entry {
    SimTime time;
    uint64_t seq;
    size_t slot;  // index into fns_
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      return a.time != b.time ? a.time > b.time : a.seq > b.seq;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::vector<std::function<void()>> fns_;
  std::vector<size_t> free_slots_;
  uint64_t next_seq_ = 0;
};

}  // namespace chiller::sim

#endif  // CHILLER_SIM_EVENT_QUEUE_H_
