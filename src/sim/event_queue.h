// Deterministic event queue for the discrete-event simulator.
#ifndef CHILLER_SIM_EVENT_QUEUE_H_
#define CHILLER_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/types.h"

namespace chiller::sim {

/// A scheduled callback. Events are totally ordered by the canonical key
/// (time, domain, origin, seq) — see sim/scheduler.h for why that order is
/// independent of thread interleaving. Two events at the same instant in
/// the same domain from the same origin fire in the order they were
/// scheduled, which makes simulations bit-for-bit reproducible; the
/// plain Push(time, fn) overload tags everything (domain 0, origin 0), so
/// for standalone use the order degenerates to the classic (time,
/// schedule order) contract.
struct Event {
  SimTime time = 0;
  uint32_t domain = 0;  ///< domain the event fires in
  uint32_t origin = 0;  ///< domain that scheduled it
  uint64_t seq = 0;     ///< per-origin schedule counter
  std::function<void()> fn;
};

/// Min-heap of events ordered by (time, domain, origin, seq).
class EventQueue {
 public:
  /// Schedules `fn` at absolute time `time` with the default tags and an
  /// internal schedule counter (standalone single-origin use).
  void Push(SimTime time, std::function<void()> fn);

  /// Schedules `fn` with an explicit (domain, origin, seq) tag. The caller
  /// owns seq assignment (one counter per origin domain); mixing this with
  /// the untagged overload on one queue forfeits the uniqueness of keys.
  void Push(SimTime time, uint32_t domain, uint32_t origin, uint64_t seq,
            std::function<void()> fn);

  bool empty() const { return heap_.empty(); }
  size_t size() const { return heap_.size(); }

  /// Time of the earliest pending event; kSimTimeNever when empty.
  SimTime NextTime() const;

  /// Removes and returns the earliest event. Queue must be non-empty.
  Event Pop();

 private:
  struct Entry {
    SimTime time;
    uint32_t domain;
    uint32_t origin;
    uint64_t seq;
    size_t slot;  // index into fns_
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      if (a.domain != b.domain) return a.domain > b.domain;
      if (a.origin != b.origin) return a.origin > b.origin;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::vector<std::function<void()>> fns_;
  std::vector<size_t> free_slots_;
  uint64_t next_seq_ = 0;
};

}  // namespace chiller::sim

#endif  // CHILLER_SIM_EVENT_QUEUE_H_
