// Multi-threaded conservative-synchronization simulator: the same event
// semantics as sim::Simulator, executed across real threads.
#ifndef CHILLER_SIM_SHARDED_SIMULATOR_H_
#define CHILLER_SIM_SHARDED_SIMULATOR_H_

#include <barrier>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "common/types.h"
#include "sim/event_queue.h"
#include "sim/scheduler.h"

namespace chiller::sim {

/// Runs the event space partitioned into shards, one event queue and one
/// clock per shard, on a pool of std::threads. Domains map statically to
/// shards (domain d > 0 lives on shard (d - 1) % num_shards; the control
/// domain lives on the coordinating thread). Shards advance in lock-step
/// *windows* bounded by the lookahead grid: within a window [kL, (k+1)L)
/// every shard drains its own events concurrently; at the boundary all
/// shards park on a barrier while the coordinator drains the cross-shard
/// mailboxes and runs any due control events. Cross-shard messages carry
/// at least one lookahead of simulated latency, so nothing a shard does in
/// window k can affect another shard before window k+1 — each shard can
/// run its window without looking at the others.
///
/// Determinism: every event carries the canonical (time, domain, origin,
/// seq) key (see sim/scheduler.h). Keys are unique and assigned by
/// per-domain counters that do not depend on thread interleaving, each
/// shard pops its queue in canonical key order, and same-time events in
/// different data domains touch disjoint state. The execution is therefore
/// byte-identical to the single-threaded Simulator's total order — for any
/// shard count and any thread schedule.
class ShardedSimulator : public Scheduler {
 public:
  /// `num_domains` must cover every DomainId that will ever be scheduled
  /// (control + one per node). Worker threads are spawned only when
  /// `num_shards` > 1; with one shard the window body runs inline.
  ShardedSimulator(uint32_t num_shards, uint32_t num_domains);
  ~ShardedSimulator() override;
  ShardedSimulator(const ShardedSimulator&) = delete;
  ShardedSimulator& operator=(const ShardedSimulator&) = delete;

  SimTime now() const override;
  DomainId current_domain() const override;

  void ScheduleIn(DomainId domain, SimTime when,
                  std::function<void()> fn) override;
  void ScheduleControl(SimTime delay, std::function<void()> fn) override;

  void Run() override;
  void RunUntil(SimTime until) override;
  void Clear() override;

  uint64_t events_processed() const override;
  bool idle() const override;

  uint32_t num_shards() const { return num_shards_; }

 private:
  /// An event in flight between shards, parked in a mailbox until the next
  /// window boundary. Carries the full canonical key assigned at send time.
  struct Pending {
    SimTime when;
    DomainId domain;
    DomainId origin;
    uint64_t seq;
    std::function<void()> fn;
  };

  /// Everything one shard's worker thread touches during a window. Padded
  /// so two workers never share a cache line through this struct.
  struct alignas(64) Shard {
    EventQueue queue;
    /// outbox[d]: events bound for shard d; single-producer (this shard's
    /// worker), drained by the coordinator at the barrier.
    std::vector<std::vector<Pending>> outbox;
    std::vector<Pending> control_outbox;
    uint64_t processed = 0;
    SimTime last_time = 0;
  };

  uint32_t ShardOfDomain(DomainId d) const { return (d - 1) % num_shards_; }
  uint64_t NextSeq(DomainId origin) { return seq_[origin]++; }

  /// Drains shard `s`'s events with time < window_end and time <= until.
  /// Runs on the shard's worker thread (or inline when single-sharded).
  void RunWindow(uint32_t s);

  /// Coordinator: moves every outbox entry into its destination queue.
  /// Runs only while all workers are parked.
  void DrainMailboxes();

  void WorkerLoop(uint32_t s);

  /// Advances until queues drain (run_all) or the next event exceeds
  /// `until`; shared body of Run and RunUntil.
  void Drive(SimTime until, bool run_all);

  const uint32_t num_shards_;
  std::vector<Shard> shards_;
  EventQueue control_queue_;
  std::vector<uint64_t> seq_;  ///< per-origin-domain schedule counters

  SimTime global_now_ = 0;
  uint64_t control_processed_ = 0;
  /// Window bounds for the current barrier cycle, written by the
  /// coordinator before releasing the workers.
  SimTime window_end_ = 0;
  SimTime window_until_ = 0;
  bool exit_ = false;

  std::unique_ptr<std::barrier<>> sync_;  ///< num_shards_ + 1 participants
  std::vector<std::thread> threads_;
};

}  // namespace chiller::sim

#endif  // CHILLER_SIM_SHARDED_SIMULATOR_H_
