#include "sim/sharded_simulator.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"

namespace chiller::sim {

namespace {

/// Per-thread execution context. A worker thread owns one shard of one
/// simulator; the coordinating thread (owner == nullptr here) uses the
/// simulator's global state instead.
struct Tls {
  const ShardedSimulator* owner = nullptr;
  uint32_t shard = 0;
  SimTime now = 0;
  DomainId domain = kControlDomain;
};

thread_local Tls tls;

}  // namespace

ShardedSimulator::ShardedSimulator(uint32_t num_shards, uint32_t num_domains)
    : num_shards_(num_shards),
      shards_(num_shards),
      seq_(num_domains, 0) {
  CHILLER_CHECK(num_shards >= 1);
  CHILLER_CHECK(num_domains >= 1);
  for (Shard& s : shards_) s.outbox.resize(num_shards_);
  if (num_shards_ > 1) {
    sync_ = std::make_unique<std::barrier<>>(num_shards_ + 1);
    threads_.reserve(num_shards_);
    for (uint32_t s = 0; s < num_shards_; ++s) {
      threads_.emplace_back([this, s] { WorkerLoop(s); });
    }
  }
}

ShardedSimulator::~ShardedSimulator() {
  if (!threads_.empty()) {
    exit_ = true;
    sync_->arrive_and_wait();  // release workers; they observe exit_
    for (std::thread& t : threads_) t.join();
  }
}

SimTime ShardedSimulator::now() const {
  if (tls.owner == this) return tls.now;
  return global_now_;
}

DomainId ShardedSimulator::current_domain() const {
  if (tls.owner == this) return tls.domain;
  // The coordinator runs control events and external calls; both are
  // control-plane by definition.
  return kControlDomain;
}

void ShardedSimulator::ScheduleIn(DomainId domain, SimTime when,
                                  std::function<void()> fn) {
  CHILLER_CHECK(domain < seq_.size()) << "unknown domain " << domain;
  const SimTime t_now = now();
  const DomainId origin = current_domain();
  CHILLER_CHECK(when >= t_now)
      << "scheduling into the past: " << when << " < " << t_now;
  CHILLER_DCHECK(lookahead() == 0 || origin == kControlDomain ||
                 domain == kControlDomain || domain == origin ||
                 when >= WindowEnd(t_now))
      << "cross-domain event inside a lookahead window: " << origin << " -> "
      << domain << " at " << when;
  const uint64_t seq = NextSeq(origin);
  if (tls.owner == this) {
    // Worker thread: same-shard events go straight into our queue; anything
    // else parks in a mailbox until the window boundary.
    Shard& self = shards_[tls.shard];
    if (domain == kControlDomain) {
      self.control_outbox.push_back(
          Pending{when, domain, origin, seq, std::move(fn)});
    } else if (ShardOfDomain(domain) == tls.shard) {
      self.queue.Push(when, domain, origin, seq, std::move(fn));
    } else {
      self.outbox[ShardOfDomain(domain)].push_back(
          Pending{when, domain, origin, seq, std::move(fn)});
    }
    return;
  }
  // Coordinator: every worker is parked, so destination queues are ours to
  // touch directly.
  if (domain == kControlDomain) {
    control_queue_.Push(when, domain, origin, seq, std::move(fn));
  } else {
    shards_[ShardOfDomain(domain)].queue.Push(when, domain, origin, seq,
                                              std::move(fn));
  }
}

void ShardedSimulator::ScheduleControl(SimTime delay,
                                       std::function<void()> fn) {
  ScheduleIn(kControlDomain, ControlFireTime(delay), std::move(fn));
}

void ShardedSimulator::RunWindow(uint32_t s) {
  Shard& shard = shards_[s];
  while (!shard.queue.empty() && shard.queue.NextTime() < window_end_ &&
         shard.queue.NextTime() <= window_until_) {
    Event e = shard.queue.Pop();
    tls.now = e.time;
    tls.domain = e.domain;
    shard.last_time = e.time;
    ++shard.processed;
    e.fn();
  }
  tls.domain = kControlDomain;
}

void ShardedSimulator::WorkerLoop(uint32_t s) {
  tls.owner = this;
  tls.shard = s;
  for (;;) {
    sync_->arrive_and_wait();  // coordinator published window bounds
    if (exit_) break;
    RunWindow(s);
    sync_->arrive_and_wait();  // window done; coordinator resumes
  }
}

void ShardedSimulator::DrainMailboxes() {
  for (Shard& src : shards_) {
    for (uint32_t d = 0; d < num_shards_; ++d) {
      for (Pending& p : src.outbox[d]) {
        shards_[d].queue.Push(p.when, p.domain, p.origin, p.seq,
                              std::move(p.fn));
      }
      src.outbox[d].clear();
    }
    for (Pending& p : src.control_outbox) {
      control_queue_.Push(p.when, p.domain, p.origin, p.seq, std::move(p.fn));
    }
    src.control_outbox.clear();
  }
}

void ShardedSimulator::Drive(SimTime until, bool run_all) {
  CHILLER_CHECK(num_shards_ == 1 || lookahead() > 0)
      << "multi-shard execution requires a lookahead";
  for (;;) {
    const SimTime tc = control_queue_.NextTime();
    SimTime td = kSimTimeNever;
    for (const Shard& s : shards_) td = std::min(td, s.queue.NextTime());
    const SimTime next = std::min(tc, td);
    if (next == kSimTimeNever) break;
    if (!run_all && next > until) break;
    if (tc <= td) {
      // Control batch: the control domain sorts before data at equal time,
      // and runs only while every shard is parked — which they all are.
      Event e = control_queue_.Pop();
      global_now_ = e.time;
      ++control_processed_;
      e.fn();
      continue;
    }
    // Data window containing the earliest data event. Idle windows are
    // skipped by construction (k jumps straight to td's window).
    const SimTime la = lookahead();
    window_end_ = la == 0 ? kSimTimeNever : (td / la + 1) * la;
    window_until_ = run_all ? kSimTimeNever : until;
    if (threads_.empty()) {
      // Single shard: run the window inline, but under the same per-thread
      // context a worker would have, so now()/current_domain()/routing
      // behave identically.
      tls.owner = this;
      tls.shard = 0;
      RunWindow(0);
      tls.owner = nullptr;
    } else {
      sync_->arrive_and_wait();  // release workers into the window
      sync_->arrive_and_wait();  // wait for every shard to finish it
    }
    for (const Shard& s : shards_) {
      global_now_ = std::max(global_now_, s.last_time);
    }
    DrainMailboxes();
  }
}

void ShardedSimulator::Run() { Drive(kSimTimeNever, /*run_all=*/true); }

void ShardedSimulator::RunUntil(SimTime until) {
  Drive(until, /*run_all=*/false);
  global_now_ = std::max(global_now_, until);
}

void ShardedSimulator::Clear() {
  for (Shard& s : shards_) {
    while (!s.queue.empty()) s.queue.Pop();
    for (auto& box : s.outbox) box.clear();
    s.control_outbox.clear();
  }
  while (!control_queue_.empty()) control_queue_.Pop();
}

uint64_t ShardedSimulator::events_processed() const {
  uint64_t total = control_processed_;
  for (const Shard& s : shards_) total += s.processed;
  return total;
}

bool ShardedSimulator::idle() const {
  if (!control_queue_.empty()) return false;
  for (const Shard& s : shards_) {
    if (!s.queue.empty()) return false;
  }
  return true;
}

}  // namespace chiller::sim
