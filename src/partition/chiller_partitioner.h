// Chiller's contention-centric partitioning pipeline (paper Section 4).
#ifndef CHILLER_PARTITION_CHILLER_PARTITIONER_H_
#define CHILLER_PARTITION_CHILLER_PARTITIONER_H_

#include <memory>

#include "partition/lookup_table.h"
#include "partition/multilevel_partitioner.h"
#include "partition/schism.h"
#include "partition/stats_collector.h"
#include "partition/workload_graph.h"

namespace chiller::partition {

/// The full pipeline:
///   sampled access traces
///     -> per-record Poisson contention likelihood (Section 4.1)
///     -> star workload graph with contention edge weights (Section 4.2)
///     -> multilevel min-cut under the load-balance constraint (Section 4.3)
///     -> hot-only lookup table; cold records fall back to hash
///        partitioning (the Section 4.4 optimization).
class ChillerPartitioner {
 public:
  struct Options {
    uint32_t k = 2;
    double epsilon = 0.05;
    uint64_t seed = 1;
    /// Lock-window size in concurrent transactions (lambda normalization).
    double lock_window_txns = 16.0;
    LoadMetric metric = LoadMetric::kRecordCount;
    /// Records with contention likelihood >= threshold enter the lookup
    /// table and are flagged hot for the two-region run-time decision.
    double hot_threshold = 1e-4;
    /// Keep explicit placements for cold records too (lookup table grows
    /// to Schism size; used by the lookup-table ablation).
    bool store_cold_placements = false;
    /// Section 4.4 co-optimization: minimum weight added to every star
    /// edge, co-optimizing for fewer distributed transactions.
    double min_edge_weight = 0.0;
    /// Placement rule for cold/unseen records (see SchismPartitioner).
    HashPartitioner::KeyToPartition fallback_fn = nullptr;
  };

  struct Output {
    std::unique_ptr<LookupPartitioner> partitioner;
    PartitioningReport report;
    /// Records flagged hot, descending by contention likelihood.
    std::vector<std::pair<RecordId, double>> hot_records;
  };

  static Output Build(const std::vector<TxnAccessTrace>& traces,
                      const Options& options);
};

}  // namespace chiller::partition

#endif  // CHILLER_PARTITION_CHILLER_PARTITIONER_H_
