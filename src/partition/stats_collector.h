// Sampling statistics collection — the per-partition managers plus the
// global statistics service of paper Section 4.1.
#ifndef CHILLER_PARTITION_STATS_COLLECTOR_H_
#define CHILLER_PARTITION_STATS_COLLECTOR_H_

#include <unordered_map>
#include <utility>
#include <vector>

#include "common/random.h"
#include "common/types.h"
#include "txn/transaction.h"

namespace chiller::partition {

/// One sampled transaction's access set. `write` marks modifying accesses.
/// Identical transactions may be aggregated via `multiplicity`.
struct TxnAccessTrace {
  uint32_t txn_class = 0;
  std::vector<std::pair<RecordId, bool>> accesses;
  uint64_t multiplicity = 1;
};

/// Samples running transactions (or ingests an offline trace) and
/// aggregates per-record read/write frequencies; converts them to the
/// Poisson arrival rates the contention model consumes.
///
/// Two modes:
///  - plain (default): one stream of state; Observe/ObserveTrace may only
///    be called from one thread at a time. Offline consumers use this.
///  - engine-sharded (EnableEngineSharding): Observe routes into a
///    per-home-engine shard — its own sampling RNG, trace list and counts —
///    so commit observers can run concurrently from the sharded simulator's
///    threads. Read accessors merge the shards engine-ascending (each
///    engine's sequence is deterministic), so results are identical for any
///    simulator shard count; they must only be called at control.
class StatsCollector {
 public:
  /// `sample_rate` in (0, 1]: fraction of transactions recorded. The paper
  /// finds 0.001 sufficient; tests use 1.0 for determinism.
  explicit StatsCollector(double sample_rate = 1.0, uint64_t seed = 1)
      : sample_rate_(sample_rate), seed_(seed), rng_(seed) {}

  /// Switches to engine-sharded mode (idempotent; must happen before the
  /// first Observe). Each engine's sampling RNG is seeded as a pure
  /// function of (seed, engine), decorrelating the streams while keeping
  /// every decision independent of engine interleaving.
  void EnableEngineSharding(uint32_t num_engines);

  /// Retunes the sampling rate mid-stream (a later sample phase may widen
  /// or narrow the net); already-recorded samples are kept.
  void set_sample_rate(double rate) { sample_rate_ = rate; }

  /// Online path: called with an executed transaction; applies sampling.
  /// In engine-sharded mode, safe to call concurrently for different home
  /// engines.
  void Observe(const txn::Transaction& t);

  /// Offline path: ingests a pre-extracted access set (no sampling).
  /// Plain mode only (offline feeds and online sharded sampling never mix).
  void ObserveTrace(const TxnAccessTrace& trace);

  /// Keep every sampled access set, not just the aggregate counts. The
  /// online repartitioning loop needs the raw traces (co-access structure)
  /// to rebuild the workload graph; pure frequency consumers leave this off.
  void set_retain_traces(bool retain) { retain_traces_ = retain; }
  const std::vector<TxnAccessTrace>& traces() const;

  struct RecordCounts {
    uint64_t reads = 0;
    uint64_t writes = 0;
  };

  const std::unordered_map<RecordId, RecordCounts>& records() const;
  uint64_t sampled_txns() const;

  /// Expected accesses to `rid` within a lock window spanning
  /// `window_txns` concurrently running transactions: the time-normalized
  /// access frequency of Section 4.1.
  double LambdaR(const RecordId& rid, double window_txns) const;
  double LambdaW(const RecordId& rid, double window_txns) const;

  /// Contention likelihood of every observed record, descending by Pc.
  std::vector<std::pair<RecordId, double>> ContentionLikelihoods(
      double window_txns) const;

 private:
  /// Per-home-engine sampling state; padded so observers on different
  /// simulator shards never false-share.
  struct alignas(64) Shard {
    Rng rng{1};
    std::vector<TxnAccessTrace> traces;
    std::unordered_map<RecordId, RecordCounts> records;
    uint64_t sampled = 0;
  };

  /// Rebuilds the merged read view if any shard changed since the last
  /// merge. Control-plane only.
  void MergeShards() const;

  double sample_rate_;
  uint64_t seed_;
  Rng rng_;  ///< sampling stream in plain mode
  bool retain_traces_ = false;
  std::vector<Shard> shards_;  ///< empty = plain mode

  // In plain mode these ARE the state; in sharded mode they are the merged
  // read view, rebuilt lazily.
  mutable std::vector<TxnAccessTrace> traces_;
  mutable std::unordered_map<RecordId, RecordCounts> records_;
  mutable uint64_t sampled_txns_ = 0;
  mutable uint64_t merged_upto_ = 0;  ///< shard samples in the merged view
};

}  // namespace chiller::partition

#endif  // CHILLER_PARTITION_STATS_COLLECTOR_H_
