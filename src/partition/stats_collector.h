// Sampling statistics collection — the per-partition managers plus the
// global statistics service of paper Section 4.1.
#ifndef CHILLER_PARTITION_STATS_COLLECTOR_H_
#define CHILLER_PARTITION_STATS_COLLECTOR_H_

#include <unordered_map>
#include <utility>
#include <vector>

#include "common/random.h"
#include "common/types.h"
#include "txn/transaction.h"

namespace chiller::partition {

/// One sampled transaction's access set. `write` marks modifying accesses.
/// Identical transactions may be aggregated via `multiplicity`.
struct TxnAccessTrace {
  uint32_t txn_class = 0;
  std::vector<std::pair<RecordId, bool>> accesses;
  uint64_t multiplicity = 1;
};

/// Samples running transactions (or ingests an offline trace) and
/// aggregates per-record read/write frequencies; converts them to the
/// Poisson arrival rates the contention model consumes.
class StatsCollector {
 public:
  /// `sample_rate` in (0, 1]: fraction of transactions recorded. The paper
  /// finds 0.001 sufficient; tests use 1.0 for determinism.
  explicit StatsCollector(double sample_rate = 1.0, uint64_t seed = 1)
      : sample_rate_(sample_rate), rng_(seed) {}

  /// Retunes the sampling rate mid-stream (a later sample phase may widen
  /// or narrow the net); already-recorded samples are kept.
  void set_sample_rate(double rate) { sample_rate_ = rate; }

  /// Online path: called with an executed transaction; applies sampling.
  void Observe(const txn::Transaction& t);

  /// Offline path: ingests a pre-extracted access set (no sampling).
  void ObserveTrace(const TxnAccessTrace& trace);

  /// Keep every sampled access set, not just the aggregate counts. The
  /// online repartitioning loop needs the raw traces (co-access structure)
  /// to rebuild the workload graph; pure frequency consumers leave this off.
  void set_retain_traces(bool retain) { retain_traces_ = retain; }
  const std::vector<TxnAccessTrace>& traces() const { return traces_; }

  struct RecordCounts {
    uint64_t reads = 0;
    uint64_t writes = 0;
  };

  const std::unordered_map<RecordId, RecordCounts>& records() const {
    return records_;
  }
  uint64_t sampled_txns() const { return sampled_txns_; }

  /// Expected accesses to `rid` within a lock window spanning
  /// `window_txns` concurrently running transactions: the time-normalized
  /// access frequency of Section 4.1.
  double LambdaR(const RecordId& rid, double window_txns) const;
  double LambdaW(const RecordId& rid, double window_txns) const;

  /// Contention likelihood of every observed record, descending by Pc.
  std::vector<std::pair<RecordId, double>> ContentionLikelihoods(
      double window_txns) const;

 private:
  double sample_rate_;
  Rng rng_;
  bool retain_traces_ = false;
  std::vector<TxnAccessTrace> traces_;
  std::unordered_map<RecordId, RecordCounts> records_;
  uint64_t sampled_txns_ = 0;
};

}  // namespace chiller::partition

#endif  // CHILLER_PARTITION_STATS_COLLECTOR_H_
