// Workload graph representations: Chiller's star graph (Section 4.2) and
// the Schism-style record co-access graph it is compared against.
#ifndef CHILLER_PARTITION_WORKLOAD_GRAPH_H_
#define CHILLER_PARTITION_WORKLOAD_GRAPH_H_

#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "partition/stats_collector.h"

namespace chiller::partition {

/// Undirected weighted graph in adjacency-list form, the input to the
/// multilevel partitioner. Parallel edges must be pre-merged.
struct Graph {
  /// adj[v] = (neighbor, edge weight). Each undirected edge appears in both
  /// endpoint lists.
  std::vector<std::vector<std::pair<uint32_t, double>>> adj;
  /// Balance weight per vertex (load metric, Section 4.3).
  std::vector<double> vwgt;

  size_t num_vertices() const { return adj.size(); }
  size_t num_edges() const;  ///< undirected edge count
  double TotalVertexWeight() const;
};

/// Which load metric balances partitions (Section 4.3).
enum class LoadMetric {
  kTxnCount,     ///< t-vertices weigh 1, r-vertices 0
  kRecordCount,  ///< r-vertices weigh 1, t-vertices 0
  kAccessCount,  ///< r-vertices weigh reads+writes, t-vertices 0
};

/// Chiller's star representation: one r-vertex per record, one t-vertex per
/// (deduplicated) transaction, an edge t—r with weight equal to the
/// record's contention likelihood. n edges per transaction instead of
/// Schism's n(n-1)/2 (Section 4.4).
struct StarGraph {
  Graph graph;
  /// r-vertex v (< records.size()) is records[v]; vertices >= records.size()
  /// are t-vertices.
  std::vector<RecordId> records;
  size_t num_t_vertices = 0;
  /// Per-record contention likelihood, aligned with `records`.
  std::vector<double> contention;

  bool IsRecordVertex(uint32_t v) const { return v < records.size(); }
};

/// Schism's representation: r-vertices only, clique edges weighted by
/// co-access frequency.
struct CoAccessGraph {
  Graph graph;
  std::vector<RecordId> records;
};

class WorkloadGraphBuilder {
 public:
  struct StarOptions {
    double lock_window_txns = 16.0;
    LoadMetric metric = LoadMetric::kRecordCount;
    /// Minimum weight added to every edge: the co-optimization knob of
    /// Section 4.4 (0 = pure contention objective; larger values also pull
    /// co-accessed records together, trading contention for fewer
    /// distributed transactions).
    double min_edge_weight = 0.0;
    /// Merge transactions with identical access sets into one t-vertex.
    bool dedupe_identical_txns = true;
  };

  static StarGraph BuildStar(const std::vector<TxnAccessTrace>& traces,
                             const StatsCollector& stats,
                             const StarOptions& options);

  static CoAccessGraph BuildCoAccess(
      const std::vector<TxnAccessTrace>& traces);
};

}  // namespace chiller::partition

#endif  // CHILLER_PARTITION_WORKLOAD_GRAPH_H_
