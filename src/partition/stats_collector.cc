#include "partition/stats_collector.h"

#include <algorithm>

#include "partition/contention_model.h"

namespace chiller::partition {

void StatsCollector::Observe(const txn::Transaction& t) {
  if (sample_rate_ < 1.0 && !rng_.Bernoulli(sample_rate_)) return;
  TxnAccessTrace trace;
  trace.txn_class = t.txn_class;
  for (size_t i = 0; i < t.ops.size(); ++i) {
    if (!t.accesses[i].key_resolved || t.accesses[i].alias_of >= 0) continue;
    trace.accesses.emplace_back(t.accesses[i].rid, t.ops[i].IsWrite());
  }
  ObserveTrace(trace);
}

void StatsCollector::ObserveTrace(const TxnAccessTrace& trace) {
  if (retain_traces_) traces_.push_back(trace);
  sampled_txns_ += trace.multiplicity;
  for (const auto& [rid, write] : trace.accesses) {
    RecordCounts& c = records_[rid];
    if (write) {
      c.writes += trace.multiplicity;
    } else {
      c.reads += trace.multiplicity;
    }
  }
}

double StatsCollector::LambdaR(const RecordId& rid,
                               double window_txns) const {
  auto it = records_.find(rid);
  if (it == records_.end() || sampled_txns_ == 0) return 0.0;
  return static_cast<double>(it->second.reads) /
         static_cast<double>(sampled_txns_) * window_txns;
}

double StatsCollector::LambdaW(const RecordId& rid,
                               double window_txns) const {
  auto it = records_.find(rid);
  if (it == records_.end() || sampled_txns_ == 0) return 0.0;
  return static_cast<double>(it->second.writes) /
         static_cast<double>(sampled_txns_) * window_txns;
}

std::vector<std::pair<RecordId, double>>
StatsCollector::ContentionLikelihoods(double window_txns) const {
  std::vector<std::pair<RecordId, double>> out;
  out.reserve(records_.size());
  for (const auto& [rid, counts] : records_) {
    (void)counts;
    out.emplace_back(rid,
                     ContentionModel::ConflictLikelihood(
                         LambdaW(rid, window_txns), LambdaR(rid, window_txns)));
  }
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;  // deterministic tie-break
  });
  return out;
}

}  // namespace chiller::partition
