#include "partition/stats_collector.h"

#include <algorithm>

#include "common/logging.h"
#include "partition/contention_model.h"

namespace chiller::partition {

namespace {

void CountTrace(const TxnAccessTrace& trace,
                std::unordered_map<RecordId, StatsCollector::RecordCounts>*
                    records) {
  for (const auto& [rid, write] : trace.accesses) {
    StatsCollector::RecordCounts& c = (*records)[rid];
    if (write) {
      c.writes += trace.multiplicity;
    } else {
      c.reads += trace.multiplicity;
    }
  }
}

TxnAccessTrace TraceOf(const txn::Transaction& t) {
  TxnAccessTrace trace;
  trace.txn_class = t.txn_class;
  for (size_t i = 0; i < t.ops.size(); ++i) {
    if (!t.accesses[i].key_resolved || t.accesses[i].alias_of >= 0) continue;
    // Probes that found no record (may_be_missing misses) and ops skipped as
    // part of a dead group never touched a record; sampling them would let a
    // replan mint a lookup entry for a record that does not exist, and a later
    // insert of that key would route to its pre-flip fallback home while
    // readers follow the post-flip entry — stranding it.
    if (t.accesses[i].missing || t.IsSkipped(i)) continue;
    trace.accesses.emplace_back(t.accesses[i].rid, t.ops[i].IsWrite());
  }
  return trace;
}

}  // namespace

void StatsCollector::EnableEngineSharding(uint32_t num_engines) {
  if (!shards_.empty()) {
    CHILLER_CHECK(shards_.size() == num_engines);
    return;
  }
  CHILLER_CHECK(sampled_txns_ == 0 && traces_.empty())
      << "sharding must be enabled before the first observation";
  shards_.resize(num_engines);
  for (uint32_t e = 0; e < num_engines; ++e) {
    shards_[e].rng.Seed(seed_ + 0x9e3779b97f4a7c15ULL * (e + 1));
  }
}

void StatsCollector::Observe(const txn::Transaction& t) {
  if (shards_.empty()) {
    if (sample_rate_ < 1.0 && !rng_.Bernoulli(sample_rate_)) return;
    ObserveTrace(TraceOf(t));
    return;
  }
  Shard& shard = shards_[t.home];
  if (sample_rate_ < 1.0 && !shard.rng.Bernoulli(sample_rate_)) return;
  TxnAccessTrace trace = TraceOf(t);
  if (retain_traces_) shard.traces.push_back(trace);
  shard.sampled += trace.multiplicity;
  CountTrace(trace, &shard.records);
}

void StatsCollector::ObserveTrace(const TxnAccessTrace& trace) {
  CHILLER_CHECK(shards_.empty())
      << "offline traces and engine-sharded online sampling do not mix";
  if (retain_traces_) traces_.push_back(trace);
  sampled_txns_ += trace.multiplicity;
  CountTrace(trace, &records_);
}

void StatsCollector::MergeShards() const {
  if (shards_.empty()) return;
  uint64_t total = 0;
  for (const Shard& s : shards_) total += s.sampled;
  if (total == merged_upto_) return;
  traces_.clear();
  records_.clear();
  sampled_txns_ = 0;
  for (const Shard& s : shards_) {
    traces_.insert(traces_.end(), s.traces.begin(), s.traces.end());
    sampled_txns_ += s.sampled;
    for (const auto& [rid, counts] : s.records) {
      RecordCounts& c = records_[rid];
      c.reads += counts.reads;
      c.writes += counts.writes;
    }
  }
  merged_upto_ = total;
}

const std::vector<TxnAccessTrace>& StatsCollector::traces() const {
  MergeShards();
  return traces_;
}

const std::unordered_map<RecordId, StatsCollector::RecordCounts>&
StatsCollector::records() const {
  MergeShards();
  return records_;
}

uint64_t StatsCollector::sampled_txns() const {
  MergeShards();
  return sampled_txns_;
}

double StatsCollector::LambdaR(const RecordId& rid,
                               double window_txns) const {
  MergeShards();
  auto it = records_.find(rid);
  if (it == records_.end() || sampled_txns_ == 0) return 0.0;
  return static_cast<double>(it->second.reads) /
         static_cast<double>(sampled_txns_) * window_txns;
}

double StatsCollector::LambdaW(const RecordId& rid,
                               double window_txns) const {
  MergeShards();
  auto it = records_.find(rid);
  if (it == records_.end() || sampled_txns_ == 0) return 0.0;
  return static_cast<double>(it->second.writes) /
         static_cast<double>(sampled_txns_) * window_txns;
}

std::vector<std::pair<RecordId, double>>
StatsCollector::ContentionLikelihoods(double window_txns) const {
  MergeShards();
  std::vector<std::pair<RecordId, double>> out;
  out.reserve(records_.size());
  for (const auto& [rid, counts] : records_) {
    (void)counts;
    out.emplace_back(rid,
                     ContentionModel::ConflictLikelihood(
                         LambdaW(rid, window_txns), LambdaR(rid, window_txns)));
  }
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;  // deterministic tie-break
  });
  return out;
}

}  // namespace chiller::partition
