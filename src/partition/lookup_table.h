// Record-to-partition mapping interfaces and the two-level lookup table.
#ifndef CHILLER_PARTITION_LOOKUP_TABLE_H_
#define CHILLER_PARTITION_LOOKUP_TABLE_H_

#include <memory>
#include <unordered_map>
#include <unordered_set>

#include "common/types.h"

namespace chiller::partition {

/// Where does a record live, and is it hot? Every execution protocol
/// consults this interface; concrete implementations come from the
/// partitioning pipeline (hash, Schism, Chiller).
class RecordPartitioner {
 public:
  virtual ~RecordPartitioner() = default;

  virtual PartitionId PartitionOf(const RecordId& rid) const = 0;

  /// True iff the record is in the hot lookup table (drives the two-region
  /// run-time decision, Section 3.3 step 1).
  virtual bool IsHot(const RecordId& rid) const {
    (void)rid;
    return false;
  }

  /// Number of explicit lookup-table entries this scheme must store
  /// (the metric of Section 7.2.2's lookup-table comparison).
  virtual size_t LookupEntries() const { return 0; }
};

/// Default partitioner: hash on the primary key (zero lookup state).
/// An optional per-table override supports "partition by warehouse" style
/// layouts where the key encodes the partition (see tpcc_schema.h).
class HashPartitioner : public RecordPartitioner {
 public:
  using KeyToPartition = PartitionId (*)(const RecordId&, uint32_t);

  explicit HashPartitioner(uint32_t num_partitions,
                           KeyToPartition fn = nullptr)
      : num_partitions_(num_partitions), fn_(fn) {}

  PartitionId PartitionOf(const RecordId& rid) const override {
    if (fn_ != nullptr) return fn_(rid, num_partitions_);
    return static_cast<PartitionId>(RecordIdHash{}(rid) % num_partitions_);
  }

 private:
  uint32_t num_partitions_;
  KeyToPartition fn_;
};

/// Explicit record placement on top of a fallback partitioner.
///
/// Two modes, matching the paper:
///  - full table (Schism-style): every record that appeared in the workload
///    trace has an entry — LookupEntries() is large;
///  - hot-only (Chiller, Section 4.4): only records whose contention
///    likelihood clears the threshold get entries; cold records fall back
///    to the default partitioner.
class LookupPartitioner : public RecordPartitioner {
 public:
  explicit LookupPartitioner(std::unique_ptr<RecordPartitioner> fallback)
      : fallback_(std::move(fallback)) {}

  void Assign(const RecordId& rid, PartitionId p) { entries_[rid] = p; }
  void MarkHot(const RecordId& rid) { hot_.insert(rid); }

  PartitionId PartitionOf(const RecordId& rid) const override {
    auto it = entries_.find(rid);
    if (it != entries_.end()) return it->second;
    return fallback_->PartitionOf(rid);
  }

  bool IsHot(const RecordId& rid) const override {
    return hot_.contains(rid);
  }

  size_t LookupEntries() const override { return entries_.size(); }
  size_t HotEntries() const { return hot_.size(); }

 private:
  std::unique_ptr<RecordPartitioner> fallback_;
  std::unordered_map<RecordId, PartitionId> entries_;
  std::unordered_set<RecordId> hot_;
};

/// Mutable indirection for online repartitioning (paper Section 4.1's
/// observe -> replan -> migrate loop): protocols hold a stable
/// RecordPartitioner* for the lifetime of a run, while the runner swaps the
/// delegate between execution phases. Swapping is only safe while the
/// cluster is quiesced AND the physical placement has been migrated to
/// match the new delegate — the runner's migrate phase owns that protocol.
class SwappablePartitioner : public RecordPartitioner {
 public:
  explicit SwappablePartitioner(std::unique_ptr<RecordPartitioner> initial)
      : active_(std::move(initial)) {}

  const RecordPartitioner* active() const { return active_.get(); }

  /// Installs `next` as the live layout and returns the previous one.
  std::unique_ptr<RecordPartitioner> Swap(
      std::unique_ptr<RecordPartitioner> next) {
    active_.swap(next);
    return next;
  }

  PartitionId PartitionOf(const RecordId& rid) const override {
    return active_->PartitionOf(rid);
  }
  bool IsHot(const RecordId& rid) const override {
    return active_->IsHot(rid);
  }
  size_t LookupEntries() const override { return active_->LookupEntries(); }

 private:
  std::unique_ptr<RecordPartitioner> active_;
};

}  // namespace chiller::partition

#endif  // CHILLER_PARTITION_LOOKUP_TABLE_H_
