// Record-to-partition mapping interfaces and the two-level lookup table.
#ifndef CHILLER_PARTITION_LOOKUP_TABLE_H_
#define CHILLER_PARTITION_LOOKUP_TABLE_H_

#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/logging.h"
#include "common/types.h"
#include "migrate/relayout.h"

namespace chiller::partition {

/// Where does a record live, and is it hot? Every execution protocol
/// consults this interface; concrete implementations come from the
/// partitioning pipeline (hash, Schism, Chiller).
class RecordPartitioner {
 public:
  virtual ~RecordPartitioner() = default;

  virtual PartitionId PartitionOf(const RecordId& rid) const = 0;

  /// True iff the record is in the hot lookup table (drives the two-region
  /// run-time decision, Section 3.3 step 1).
  virtual bool IsHot(const RecordId& rid) const {
    (void)rid;
    return false;
  }

  /// Number of explicit lookup-table entries this scheme must store
  /// (the metric of Section 7.2.2's lookup-table comparison).
  virtual size_t LookupEntries() const { return 0; }
};

/// Default partitioner: hash on the primary key (zero lookup state).
/// An optional per-table override supports "partition by warehouse" style
/// layouts where the key encodes the partition (see tpcc_schema.h).
class HashPartitioner : public RecordPartitioner {
 public:
  using KeyToPartition = PartitionId (*)(const RecordId&, uint32_t);

  explicit HashPartitioner(uint32_t num_partitions,
                           KeyToPartition fn = nullptr)
      : num_partitions_(num_partitions), fn_(fn) {}

  PartitionId PartitionOf(const RecordId& rid) const override {
    if (fn_ != nullptr) return fn_(rid, num_partitions_);
    return static_cast<PartitionId>(RecordIdHash{}(rid) % num_partitions_);
  }

 private:
  uint32_t num_partitions_;
  KeyToPartition fn_;
};

/// Explicit record placement on top of a fallback partitioner.
///
/// Two modes, matching the paper:
///  - full table (Schism-style): every record that appeared in the workload
///    trace has an entry — LookupEntries() is large;
///  - hot-only (Chiller, Section 4.4): only records whose contention
///    likelihood clears the threshold get entries; cold records fall back
///    to the default partitioner.
class LookupPartitioner : public RecordPartitioner {
 public:
  explicit LookupPartitioner(std::unique_ptr<RecordPartitioner> fallback)
      : fallback_(std::move(fallback)) {}

  void Assign(const RecordId& rid, PartitionId p) { entries_[rid] = p; }
  void MarkHot(const RecordId& rid) { hot_.insert(rid); }

  PartitionId PartitionOf(const RecordId& rid) const override {
    auto it = entries_.find(rid);
    if (it != entries_.end()) return it->second;
    return fallback_->PartitionOf(rid);
  }

  bool IsHot(const RecordId& rid) const override {
    return hot_.contains(rid);
  }

  size_t LookupEntries() const override { return entries_.size(); }
  size_t HotEntries() const { return hot_.size(); }

 private:
  std::unique_ptr<RecordPartitioner> fallback_;
  std::unordered_map<RecordId, PartitionId> entries_;
  std::unordered_set<RecordId> hot_;
};

/// Mutable indirection for online repartitioning (paper Section 4.1's
/// observe -> replan -> migrate loop): protocols hold a stable
/// RecordPartitioner* for the lifetime of a run, while the runner swaps the
/// delegate between execution phases. Two swap modes:
///
///  - Swap(): whole-layout replacement. Only safe while the cluster is
///    quiesced AND the physical placement has been migrated to match the
///    new delegate — the runner's quiesced migrate phase owns that
///    protocol.
///  - BeginTransition() / FlipBucket() / FinishTransition(): per-bucket
///    indirection for *live* migration (src/migrate). The incoming layout
///    is staged next to the active one and records keep routing through
///    the active layout until their relayout bucket (migrate::
///    RelayoutBucketOf, the same bucket space the BucketLockTable guards)
///    is flipped; the LiveMigrator flips each bucket in the same simulator
///    event that completes its record moves, so routing and physical
///    placement never disagree.
///
/// Every layout change bumps version() — the lookup-table version readers
/// can use to invalidate cached placement decisions.
class SwappablePartitioner : public RecordPartitioner {
 public:
  explicit SwappablePartitioner(std::unique_ptr<RecordPartitioner> initial)
      : active_(std::move(initial)) {}

  const RecordPartitioner* active() const { return active_.get(); }

  /// Installs `next` as the live layout and returns the previous one.
  std::unique_ptr<RecordPartitioner> Swap(
      std::unique_ptr<RecordPartitioner> next) {
    CHILLER_CHECK(!in_transition())
        << "whole-layout Swap during an incremental transition";
    active_.swap(next);
    ++version_;
    return next;
  }

  /// Stages `next` as the incoming layout of an incremental relayout over
  /// `num_buckets` relayout buckets; no routing changes yet.
  void BeginTransition(std::unique_ptr<RecordPartitioner> next,
                       uint32_t num_buckets) {
    CHILLER_CHECK(!in_transition()) << "transition already in flight";
    CHILLER_CHECK(next != nullptr && num_buckets > 0);
    next_ = std::move(next);
    num_buckets_ = num_buckets;
    flipped_.assign(num_buckets, false);
    ++version_;
  }

  /// Routes bucket `b` through the incoming layout from now on (its
  /// records' new physical placement just became live).
  void FlipBucket(migrate::BucketId b) {
    CHILLER_CHECK(in_transition()) << "FlipBucket outside a transition";
    CHILLER_CHECK(b < num_buckets_ && !flipped_[b]);
    flipped_[b] = true;
    ++version_;
  }

  /// Collapses the indirection: the incoming layout becomes active for
  /// every bucket (buckets that never flipped had no placement diffs) and
  /// the retired layout is returned.
  std::unique_ptr<RecordPartitioner> FinishTransition() {
    CHILLER_CHECK(in_transition()) << "no transition to finish";
    active_.swap(next_);
    flipped_.clear();
    num_buckets_ = 0;
    ++version_;
    return std::move(next_);
  }

  bool in_transition() const { return next_ != nullptr; }

  /// Monotonic layout version, bumped by every Swap / BeginTransition /
  /// FlipBucket / FinishTransition.
  uint64_t version() const { return version_; }

  PartitionId PartitionOf(const RecordId& rid) const override {
    return Route(rid)->PartitionOf(rid);
  }
  bool IsHot(const RecordId& rid) const override {
    return Route(rid)->IsHot(rid);
  }
  /// During a transition both layouts are resident, so the lookup state
  /// this scheme must store is the sum of the two tables.
  size_t LookupEntries() const override {
    return active_->LookupEntries() +
           (in_transition() ? next_->LookupEntries() : 0);
  }

 private:
  const RecordPartitioner* Route(const RecordId& rid) const {
    if (next_ != nullptr &&
        flipped_[migrate::RelayoutBucketOf(rid, num_buckets_)]) {
      return next_.get();
    }
    return active_.get();
  }

  std::unique_ptr<RecordPartitioner> active_;
  std::unique_ptr<RecordPartitioner> next_;
  std::vector<bool> flipped_;
  uint32_t num_buckets_ = 0;
  uint64_t version_ = 0;
};

}  // namespace chiller::partition

#endif  // CHILLER_PARTITION_LOOKUP_TABLE_H_
