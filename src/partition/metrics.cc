#include "partition/metrics.h"

#include <map>
#include <set>

#include "partition/contention_model.h"

namespace chiller::partition {

double DistributedRatio(const std::vector<TxnAccessTrace>& traces,
                        const RecordPartitioner& partitioner) {
  uint64_t total = 0, distributed = 0;
  for (const TxnAccessTrace& t : traces) {
    if (t.accesses.empty()) continue;
    std::set<PartitionId> parts;
    for (const auto& [rid, write] : t.accesses) {
      (void)write;
      parts.insert(partitioner.PartitionOf(rid));
    }
    total += t.multiplicity;
    if (parts.size() > 1) distributed += t.multiplicity;
  }
  return total == 0 ? 0.0
                    : static_cast<double>(distributed) /
                          static_cast<double>(total);
}

double ResidualContention(const std::vector<TxnAccessTrace>& traces,
                          const RecordPartitioner& partitioner,
                          const StatsCollector& stats,
                          double lock_window_txns) {
  double total = 0.0;
  for (const TxnAccessTrace& t : traces) {
    std::map<PartitionId, double> mass;
    std::map<RecordId, double> pc;
    for (const auto& [rid, write] : t.accesses) {
      (void)write;
      if (pc.contains(rid)) continue;
      const double likelihood = ContentionModel::ConflictLikelihood(
          stats.LambdaW(rid, lock_window_txns),
          stats.LambdaR(rid, lock_window_txns));
      pc[rid] = likelihood;
      mass[partitioner.PartitionOf(rid)] += likelihood;
    }
    // Best single inner host = partition with the most contention mass.
    PartitionId host = kInvalidPartition;
    double best = -1.0;
    for (const auto& [p, m] : mass) {
      if (m > best) {
        best = m;
        host = p;
      }
    }
    for (const auto& [rid, likelihood] : pc) {
      if (partitioner.PartitionOf(rid) != host) {
        total += likelihood * static_cast<double>(t.multiplicity);
      }
    }
  }
  return total;
}

}  // namespace chiller::partition
