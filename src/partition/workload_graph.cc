#include "partition/workload_graph.h"

#include <algorithm>
#include <map>

#include "common/logging.h"
#include "partition/contention_model.h"

namespace chiller::partition {

size_t Graph::num_edges() const {
  size_t twice = 0;
  for (const auto& nbrs : adj) twice += nbrs.size();
  return twice / 2;
}

double Graph::TotalVertexWeight() const {
  double total = 0;
  for (double w : vwgt) total += w;
  return total;
}

namespace {

/// Interns records into dense vertex ids.
class RecordInterner {
 public:
  uint32_t Intern(const RecordId& rid) {
    auto [it, inserted] = ids_.try_emplace(rid, records_.size());
    if (inserted) records_.push_back(rid);
    return it->second;
  }
  size_t size() const { return records_.size(); }
  std::vector<RecordId> Take() { return std::move(records_); }

 private:
  std::unordered_map<RecordId, uint32_t> ids_;
  std::vector<RecordId> records_;
};

/// Canonical form of an access set for transaction dedup: sorted unique
/// (record, write) pairs, writes folded in.
std::vector<std::pair<uint32_t, bool>> CanonicalAccesses(
    const TxnAccessTrace& trace, RecordInterner* interner) {
  std::map<uint32_t, bool> by_vertex;
  for (const auto& [rid, write] : trace.accesses) {
    const uint32_t v = interner->Intern(rid);
    by_vertex[v] = by_vertex[v] || write;
  }
  return {by_vertex.begin(), by_vertex.end()};
}

}  // namespace

StarGraph WorkloadGraphBuilder::BuildStar(
    const std::vector<TxnAccessTrace>& traces, const StatsCollector& stats,
    const StarOptions& options) {
  StarGraph out;
  RecordInterner interner;

  // Deduplicate transactions with identical access sets; their multiplicity
  // feeds the txn-count load metric.
  std::vector<std::pair<std::vector<std::pair<uint32_t, bool>>, uint64_t>>
      txn_groups;
  if (options.dedupe_identical_txns) {
    std::map<std::vector<std::pair<uint32_t, bool>>, uint64_t> merged;
    for (const TxnAccessTrace& trace : traces) {
      auto canon = CanonicalAccesses(trace, &interner);
      if (canon.empty()) continue;
      merged[std::move(canon)] += trace.multiplicity;
    }
    txn_groups.assign(merged.begin(), merged.end());
  } else {
    for (const TxnAccessTrace& trace : traces) {
      auto canon = CanonicalAccesses(trace, &interner);
      if (canon.empty()) continue;
      txn_groups.emplace_back(std::move(canon), trace.multiplicity);
    }
  }

  const size_t num_records = interner.size();
  out.records = interner.Take();
  out.num_t_vertices = txn_groups.size();
  Graph& g = out.graph;
  g.adj.resize(num_records + txn_groups.size());
  g.vwgt.assign(num_records + txn_groups.size(), 0.0);

  // Per-record contention likelihood = edge weight of all its star edges.
  out.contention.resize(num_records);
  for (size_t v = 0; v < num_records; ++v) {
    out.contention[v] = ContentionModel::ConflictLikelihood(
        stats.LambdaW(out.records[v], options.lock_window_txns),
        stats.LambdaR(out.records[v], options.lock_window_txns));
  }

  // Vertex weights per load metric (Section 4.3).
  if (options.metric == LoadMetric::kRecordCount) {
    for (size_t v = 0; v < num_records; ++v) g.vwgt[v] = 1.0;
  } else if (options.metric == LoadMetric::kAccessCount) {
    for (size_t v = 0; v < num_records; ++v) {
      auto it = stats.records().find(out.records[v]);
      g.vwgt[v] = it == stats.records().end()
                      ? 0.0
                      : static_cast<double>(it->second.reads +
                                            it->second.writes);
    }
  }

  uint32_t t_vertex = static_cast<uint32_t>(num_records);
  for (const auto& [accesses, multiplicity] : txn_groups) {
    if (options.metric == LoadMetric::kTxnCount) {
      g.vwgt[t_vertex] = static_cast<double>(multiplicity);
    }
    for (const auto& [r_vertex, write] : accesses) {
      (void)write;
      const double w = out.contention[r_vertex] + options.min_edge_weight;
      g.adj[t_vertex].emplace_back(r_vertex, w);
      g.adj[r_vertex].emplace_back(t_vertex, w);
    }
    ++t_vertex;
  }
  return out;
}

CoAccessGraph WorkloadGraphBuilder::BuildCoAccess(
    const std::vector<TxnAccessTrace>& traces) {
  CoAccessGraph out;
  RecordInterner interner;
  // Accumulate clique edges; key is (min, max) vertex pair.
  std::map<std::pair<uint32_t, uint32_t>, double> edges;
  for (const TxnAccessTrace& trace : traces) {
    auto canon = CanonicalAccesses(trace, &interner);
    for (size_t a = 0; a < canon.size(); ++a) {
      for (size_t b = a + 1; b < canon.size(); ++b) {
        auto key = std::minmax(canon[a].first, canon[b].first);
        edges[{key.first, key.second}] +=
            static_cast<double>(trace.multiplicity);
      }
    }
  }
  const size_t n = interner.size();
  out.records = interner.Take();
  out.graph.adj.resize(n);
  out.graph.vwgt.assign(n, 1.0);  // Schism balances record counts
  for (const auto& [pair, w] : edges) {
    out.graph.adj[pair.first].emplace_back(pair.second, w);
    out.graph.adj[pair.second].emplace_back(pair.first, w);
  }
  return out;
}

}  // namespace chiller::partition
