#include "partition/chiller_partitioner.h"

#include <algorithm>
#include <chrono>
#include <numeric>
#include <unordered_map>
#include <utility>

namespace chiller::partition {

namespace {

/// Places the hot records first — the heart of Section 4: contended
/// records that are frequently accessed together must share a partition so
/// one inner region can cover them, while no partition may accumulate too
/// much contention mass (the load-balance constraint).
///
/// Greedy affinity clustering: order hot records by contention; assign each
/// to the partition holding the most co-accessed already-placed hot mass.
/// The balance constraint follows the paper's load definition (Section
/// 4.3): a partition may not hoard more than (1+eps)/k of the workload's
/// total record *accesses* — contention itself is deliberately allowed to
/// concentrate (Figure 5c co-locates every contended record).
void SeedHotClusters(const StarGraph& star, const StatsCollector& stats,
                     uint32_t k, double epsilon, double hot_threshold,
                     std::vector<uint32_t>* assignment) {
  const size_t num_records = star.records.size();
  std::vector<uint32_t> hot;
  for (uint32_t r = 0; r < num_records; ++r) {
    if (star.contention[r] >= hot_threshold) hot.push_back(r);
  }
  double total_accesses = 0.0;
  auto accesses_of = [&](uint32_t r) {
    auto it = stats.records().find(star.records[r]);
    return it == stats.records().end()
               ? 0.0
               : static_cast<double>(it->second.reads + it->second.writes);
  };
  for (uint32_t r = 0; r < num_records; ++r) {
    total_accesses += accesses_of(r);
  }
  if (hot.empty()) return;
  std::sort(hot.begin(), hot.end(), [&](uint32_t a, uint32_t b) {
    if (star.contention[a] != star.contention[b]) {
      return star.contention[a] > star.contention[b];
    }
    return a < b;
  });
  std::vector<bool> is_hot(num_records, false);
  std::vector<int> placed(num_records, -1);
  for (uint32_t r : hot) is_hot[r] = true;

  // Pairwise co-access affinity between hot records, via their t-vertices.
  std::unordered_map<uint64_t, double> affinity;
  for (uint32_t t = static_cast<uint32_t>(num_records);
       t < star.graph.num_vertices(); ++t) {
    std::vector<uint32_t> members;
    for (const auto& [r, w] : star.graph.adj[t]) {
      (void)w;
      if (r < num_records && is_hot[r]) members.push_back(r);
    }
    for (size_t a = 0; a < members.size(); ++a) {
      for (size_t b = a + 1; b < members.size(); ++b) {
        const auto [lo, hi] = std::minmax(members[a], members[b]);
        affinity[(static_cast<uint64_t>(lo) << 32) | hi] +=
            star.contention[lo] + star.contention[hi];
      }
    }
  }
  auto pair_affinity = [&](uint32_t a, uint32_t b) {
    const auto [lo, hi] = std::minmax(a, b);
    auto it = affinity.find((static_cast<uint64_t>(lo) << 32) | hi);
    return it == affinity.end() ? 0.0 : it->second;
  };

  const double cap = (1.0 + epsilon) * total_accesses / k;
  std::vector<double> access_load(k, 0.0);
  std::vector<std::vector<uint32_t>> members_of(k);
  for (uint32_t h : hot) {
    uint32_t best = 0;
    double best_score = -1.0;
    for (uint32_t p = 0; p < k; ++p) {
      if (access_load[p] + accesses_of(h) > cap && access_load[p] > 0) {
        continue;
      }
      double score = 0.0;
      for (uint32_t other : members_of[p]) score += pair_affinity(h, other);
      // Tie-break toward the least access-loaded partition.
      score -= access_load[p] * 1e-9;
      if (score > best_score) {
        best_score = score;
        best = p;
      }
    }
    (*assignment)[h] = best;
    access_load[best] += accesses_of(h);
    members_of[best].push_back(h);
  }
}

/// Alternating refinement specialized to the bipartite star graph: snap
/// every t-vertex to its strongest-connected partition (t-vertices are free
/// under the record-count metric), then greedily move r-vertices — hottest
/// first — to their strongest partition subject to the balance bound.
/// This escapes the chicken-and-egg local optima generic boundary
/// refinement hits on star graphs (a hot record only profits from moving
/// if its transactions follow, and vice versa).
void AlternatingStarRefine(const StarGraph& star, uint32_t k, double epsilon,
                           uint32_t rounds,
                           std::vector<uint32_t>* assignment) {
  const Graph& g = star.graph;
  const size_t num_records = star.records.size();
  const double total = g.TotalVertexWeight();
  const double max_load = (1.0 + epsilon) * total / k;

  std::vector<double> loads(k, 0.0);
  for (uint32_t v = 0; v < g.num_vertices(); ++v) {
    loads[(*assignment)[v]] += g.vwgt[v];
  }

  // Hottest records first: their placement anchors everything else.
  std::vector<uint32_t> r_order(num_records);
  std::iota(r_order.begin(), r_order.end(), 0);
  std::sort(r_order.begin(), r_order.end(), [&](uint32_t a, uint32_t b) {
    if (star.contention[a] != star.contention[b]) {
      return star.contention[a] > star.contention[b];
    }
    return a < b;
  });

  std::vector<double> conn(k, 0.0);
  auto best_partition = [&](uint32_t v, bool respect_balance) {
    std::fill(conn.begin(), conn.end(), 0.0);
    for (const auto& [u, w] : g.adj[v]) conn[(*assignment)[u]] += w;
    const uint32_t own = (*assignment)[v];
    uint32_t best = own;
    for (uint32_t p = 0; p < k; ++p) {
      if (p == own) continue;
      if (respect_balance && g.vwgt[v] > 0 &&
          loads[p] + g.vwgt[v] > max_load) {
        continue;
      }
      if (conn[p] > conn[best]) best = p;
    }
    return best;
  };

  for (uint32_t round = 0; round < rounds; ++round) {
    bool changed = false;
    for (uint32_t t = static_cast<uint32_t>(num_records);
         t < g.num_vertices(); ++t) {
      const uint32_t best = best_partition(t, /*respect_balance=*/true);
      if (best != (*assignment)[t]) {
        loads[(*assignment)[t]] -= g.vwgt[t];
        loads[best] += g.vwgt[t];
        (*assignment)[t] = best;
        changed = true;
      }
    }
    for (uint32_t r : r_order) {
      const uint32_t best = best_partition(r, /*respect_balance=*/true);
      if (best != (*assignment)[r]) {
        loads[(*assignment)[r]] -= g.vwgt[r];
        loads[best] += g.vwgt[r];
        (*assignment)[r] = best;
        changed = true;
      }
    }
    if (!changed) break;
  }

  // Hot seeding may have concentrated more weight than the bound allows;
  // shed overload by evicting the records whose departure damages the cut
  // least (coldest, least-connected first).
  for (uint32_t p = 0; p < k; ++p) {
    if (loads[p] <= max_load) continue;
    std::vector<std::pair<double, uint32_t>> damage;  // (cut damage, vertex)
    for (uint32_t r = 0; r < num_records; ++r) {
      if ((*assignment)[r] != p || g.vwgt[r] == 0.0) continue;
      std::fill(conn.begin(), conn.end(), 0.0);
      for (const auto& [u, w] : g.adj[r]) conn[(*assignment)[u]] += w;
      double best_other = 0.0;
      for (uint32_t q = 0; q < k; ++q) {
        if (q != p) best_other = std::max(best_other, conn[q]);
      }
      damage.emplace_back(conn[p] - best_other, r);
    }
    std::sort(damage.begin(), damage.end());
    for (const auto& [dmg, r] : damage) {
      (void)dmg;
      if (loads[p] <= max_load) break;
      uint32_t target = p;
      for (uint32_t q = 0; q < k; ++q) {
        if (q != p && (target == p || loads[q] < loads[target])) target = q;
      }
      if (target == p || loads[target] + g.vwgt[r] > max_load) continue;
      loads[p] -= g.vwgt[r];
      loads[target] += g.vwgt[r];
      (*assignment)[r] = target;
    }
  }
}

}  // namespace

ChillerPartitioner::Output ChillerPartitioner::Build(
    const std::vector<TxnAccessTrace>& traces, const Options& options) {
  const auto start = std::chrono::steady_clock::now();

  // Global statistics service: aggregate the sampled traces.
  StatsCollector stats(/*sample_rate=*/1.0, options.seed);
  for (const TxnAccessTrace& t : traces) stats.ObserveTrace(t);

  // Star graph with contention-likelihood edge weights.
  WorkloadGraphBuilder::StarOptions gopts;
  gopts.lock_window_txns = options.lock_window_txns;
  gopts.metric = options.metric;
  gopts.min_edge_weight = options.min_edge_weight;
  StarGraph star = WorkloadGraphBuilder::BuildStar(traces, stats, gopts);

  // Min-cut under the balance constraint: multilevel pass, then the
  // star-specialized alternating refinement.
  MultilevelPartitioner::Options mopts;
  mopts.k = options.k;
  mopts.epsilon = options.epsilon;
  mopts.seed = options.seed;
  auto result = MultilevelPartitioner::Partition(star.graph, mopts);
  SeedHotClusters(star, stats, options.k, options.epsilon,
                  options.hot_threshold, &result.assignment);
  AlternatingStarRefine(star, options.k, options.epsilon, /*rounds=*/12,
                        &result.assignment);
  result.cut_weight =
      MultilevelPartitioner::CutWeight(star.graph, result.assignment);
  {
    auto loads = MultilevelPartitioner::Loads(star.graph, result.assignment,
                                              options.k);
    result.max_load = *std::max_element(loads.begin(), loads.end());
  }

  Output out;
  out.partitioner = std::make_unique<LookupPartitioner>(
      std::make_unique<HashPartitioner>(options.k, options.fallback_fn));
  for (uint32_t v = 0; v < star.records.size(); ++v) {
    const bool hot = star.contention[v] >= options.hot_threshold;
    if (hot || options.store_cold_placements) {
      out.partitioner->Assign(star.records[v], result.assignment[v]);
    }
    if (hot) {
      out.partitioner->MarkHot(star.records[v]);
      out.hot_records.emplace_back(star.records[v], star.contention[v]);
    }
  }
  std::sort(out.hot_records.begin(), out.hot_records.end(),
            [](const auto& a, const auto& b) {
              if (a.second != b.second) return a.second > b.second;
              return a.first < b.first;
            });

  const auto end = std::chrono::steady_clock::now();
  out.report.graph_vertices = star.graph.num_vertices();
  out.report.graph_edges = star.graph.num_edges();
  out.report.lookup_entries = out.partitioner->LookupEntries();
  out.report.hot_entries = out.partitioner->HotEntries();
  out.report.cut_weight = result.cut_weight;
  out.report.max_load = result.max_load;
  out.report.avg_load = result.avg_load;
  out.report.build_micros = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(end - start)
          .count());
  return out;
}

}  // namespace chiller::partition
