#include "partition/multilevel_partitioner.h"

#include <algorithm>
#include <numeric>
#include <unordered_map>

#include "common/logging.h"
#include "common/random.h"

namespace chiller::partition {

namespace {

/// One level of the multilevel hierarchy.
struct Level {
  Graph graph;
  /// coarse_of[v] = vertex in the next-coarser graph that v contracted into.
  std::vector<uint32_t> coarse_of;
};

/// Heavy-edge matching: random visit order; each unmatched vertex matches
/// its unmatched neighbor with the heaviest connecting edge.
std::vector<uint32_t> HeavyEdgeMatching(const Graph& g, Rng* rng) {
  const size_t n = g.num_vertices();
  std::vector<uint32_t> match(n, UINT32_MAX);
  std::vector<uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::vector<uint32_t> shuffled(order.begin(), order.end());
  for (size_t i = shuffled.size(); i > 1; --i) {
    std::swap(shuffled[i - 1], shuffled[rng->Uniform(i)]);
  }
  for (uint32_t v : shuffled) {
    if (match[v] != UINT32_MAX) continue;
    uint32_t best = v;  // self-match = stays single
    double best_w = -1.0;
    for (const auto& [u, w] : g.adj[v]) {
      if (u != v && match[u] == UINT32_MAX && w > best_w) {
        best = u;
        best_w = w;
      }
    }
    match[v] = best;
    match[best] = v;
  }
  return match;
}

/// Contracts matched pairs into a coarser graph.
Level Coarsen(const Graph& g, Rng* rng) {
  const size_t n = g.num_vertices();
  const auto match = HeavyEdgeMatching(g, rng);

  Level level;
  level.coarse_of.assign(n, UINT32_MAX);
  uint32_t next = 0;
  for (uint32_t v = 0; v < n; ++v) {
    if (level.coarse_of[v] != UINT32_MAX) continue;
    level.coarse_of[v] = next;
    const uint32_t m = match[v];
    if (m != v && m != UINT32_MAX) level.coarse_of[m] = next;
    ++next;
  }

  Graph& cg = level.graph;
  cg.adj.resize(next);
  cg.vwgt.assign(next, 0.0);
  for (uint32_t v = 0; v < n; ++v) {
    cg.vwgt[level.coarse_of[v]] += g.vwgt[v];
  }
  // Merge adjacency, accumulating parallel edges.
  std::unordered_map<uint64_t, double> merged;
  for (uint32_t v = 0; v < n; ++v) {
    const uint32_t cv = level.coarse_of[v];
    for (const auto& [u, w] : g.adj[v]) {
      const uint32_t cu = level.coarse_of[u];
      if (cu == cv) continue;  // contracted edge disappears
      if (cv < cu) {
        merged[(static_cast<uint64_t>(cv) << 32) | cu] += w;
      }
    }
  }
  for (const auto& [key, w] : merged) {
    const uint32_t a = static_cast<uint32_t>(key >> 32);
    const uint32_t b = static_cast<uint32_t>(key & 0xffffffffu);
    cg.adj[a].emplace_back(b, w);
    cg.adj[b].emplace_back(a, w);
  }
  return level;
}

/// Greedy region growing for the initial k-way partition of the coarsest
/// graph. Grows each region by repeatedly absorbing the frontier vertex
/// with the strongest connection until the region reaches its weight share.
std::vector<uint32_t> InitialPartition(const Graph& g, uint32_t k, Rng* rng) {
  const size_t n = g.num_vertices();
  std::vector<uint32_t> part(n, UINT32_MAX);
  const double total = g.TotalVertexWeight();
  const double target = total / k;

  std::vector<uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  for (size_t i = n; i > 1; --i) {
    std::swap(order[i - 1], order[rng->Uniform(i)]);
  }
  size_t cursor = 0;

  for (uint32_t p = 0; p + 1 < k; ++p) {
    // Seed with the first unassigned vertex.
    while (cursor < n && part[order[cursor]] != UINT32_MAX) ++cursor;
    if (cursor == n) break;
    double load = 0.0;
    std::vector<uint32_t> frontier{order[cursor]};
    part[order[cursor]] = p;
    load += g.vwgt[order[cursor]];
    while (load < target && !frontier.empty()) {
      // Strongest-connected unassigned neighbor of the region.
      uint32_t best = UINT32_MAX;
      double best_w = -1.0;
      for (uint32_t v : frontier) {
        for (const auto& [u, w] : g.adj[v]) {
          if (part[u] == UINT32_MAX && w > best_w) {
            best = u;
            best_w = w;
          }
        }
      }
      if (best == UINT32_MAX) {
        // Region disconnected from remaining vertices: jump elsewhere.
        while (cursor < n && part[order[cursor]] != UINT32_MAX) ++cursor;
        if (cursor == n) break;
        best = order[cursor];
      }
      part[best] = p;
      load += g.vwgt[best];
      frontier.push_back(best);
      if (frontier.size() > 64) {  // keep the frontier scan bounded
        frontier.erase(frontier.begin(), frontier.begin() + 32);
      }
    }
  }
  for (uint32_t v = 0; v < n; ++v) {
    if (part[v] == UINT32_MAX) part[v] = k - 1;
  }
  return part;
}

/// One boundary-refinement pass. Moves vertices to the neighboring
/// partition with the highest positive gain, respecting the balance bound.
/// Returns total gain achieved.
double RefinePass(const Graph& g, uint32_t k, double max_load,
                  std::vector<uint32_t>* part, std::vector<double>* loads) {
  const size_t n = g.num_vertices();
  double total_gain = 0.0;
  std::vector<double> conn(k, 0.0);
  for (uint32_t v = 0; v < n; ++v) {
    if (g.adj[v].empty()) continue;
    std::fill(conn.begin(), conn.end(), 0.0);
    for (const auto& [u, w] : g.adj[v]) conn[(*part)[u]] += w;
    const uint32_t own = (*part)[v];
    uint32_t best = own;
    double best_gain = 0.0;
    for (uint32_t p = 0; p < k; ++p) {
      if (p == own) continue;
      const double gain = conn[p] - conn[own];
      if (gain > best_gain &&
          (*loads)[p] + g.vwgt[v] <= max_load) {
        best = p;
        best_gain = gain;
      }
    }
    if (best != own) {
      (*part)[v] = best;
      (*loads)[own] -= g.vwgt[v];
      (*loads)[best] += g.vwgt[v];
      total_gain += best_gain;
    }
  }
  return total_gain;
}

/// Moves vertices out of overloaded partitions until the balance bound
/// holds (cheapest-cut-damage first among the overloaded partition's
/// vertices, scanned in index order for determinism).
void ForceBalance(const Graph& g, uint32_t k, double max_load,
                  std::vector<uint32_t>* part, std::vector<double>* loads) {
  for (uint32_t p = 0; p < k; ++p) {
    int guard = 0;
    while ((*loads)[p] > max_load && guard++ < 10000) {
      // Find the lightest-loaded partition as the target.
      uint32_t target = 0;
      for (uint32_t q = 1; q < k; ++q) {
        if ((*loads)[q] < (*loads)[target]) target = q;
      }
      if (target == p) break;
      // Move the first vertex that has weight and tolerable damage.
      bool moved = false;
      for (uint32_t v = 0; v < g.num_vertices(); ++v) {
        if ((*part)[v] != p || g.vwgt[v] == 0.0) continue;
        (*part)[v] = target;
        (*loads)[p] -= g.vwgt[v];
        (*loads)[target] += g.vwgt[v];
        moved = true;
        break;
      }
      if (!moved) break;
    }
  }
}

}  // namespace

double MultilevelPartitioner::CutWeight(
    const Graph& graph, const std::vector<uint32_t>& assignment) {
  double cut = 0.0;
  for (uint32_t v = 0; v < graph.num_vertices(); ++v) {
    for (const auto& [u, w] : graph.adj[v]) {
      if (v < u && assignment[v] != assignment[u]) cut += w;
    }
  }
  return cut;
}

std::vector<double> MultilevelPartitioner::Loads(
    const Graph& graph, const std::vector<uint32_t>& assignment, uint32_t k) {
  std::vector<double> loads(k, 0.0);
  for (uint32_t v = 0; v < graph.num_vertices(); ++v) {
    loads[assignment[v]] += graph.vwgt[v];
  }
  return loads;
}

MultilevelPartitioner::Result MultilevelPartitioner::Partition(
    const Graph& graph, const Options& options) {
  CHILLER_CHECK(options.k >= 1);
  Result result;
  const size_t n = graph.num_vertices();
  if (options.k == 1 || n == 0) {
    result.assignment.assign(n, 0);
    result.avg_load = result.max_load = graph.TotalVertexWeight();
    return result;
  }

  Rng rng(options.seed);
  const uint32_t stop_at =
      std::max(options.coarsen_to, 16 * options.k);

  // Phase 1: coarsen.
  std::vector<Level> levels;
  const Graph* current = &graph;
  while (current->num_vertices() > stop_at) {
    Level level = Coarsen(*current, &rng);
    const size_t coarse_n = level.graph.num_vertices();
    if (coarse_n > current->num_vertices() * 95 / 100) break;  // stalled
    levels.push_back(std::move(level));
    current = &levels.back().graph;
  }
  result.levels = static_cast<uint32_t>(levels.size());

  // Phase 2: initial partition of the coarsest graph.
  std::vector<uint32_t> part = InitialPartition(*current, options.k, &rng);

  const double total = graph.TotalVertexWeight();
  const double avg = total / options.k;
  const double max_load = (1.0 + options.epsilon) * avg;

  // Phase 3: uncoarsen with refinement at every level.
  auto refine = [&](const Graph& g, std::vector<uint32_t>* p) {
    auto loads = Loads(g, *p, options.k);
    ForceBalance(g, options.k, max_load, p, &loads);
    for (uint32_t pass = 0; pass < options.refine_passes; ++pass) {
      if (RefinePass(g, options.k, max_load, p, &loads) <= 0.0) break;
    }
  };

  refine(*current, &part);
  for (size_t li = levels.size(); li-- > 0;) {
    const Graph& finer =
        li == 0 ? graph : levels[li - 1].graph;
    std::vector<uint32_t> finer_part(finer.num_vertices());
    for (uint32_t v = 0; v < finer.num_vertices(); ++v) {
      finer_part[v] = part[levels[li].coarse_of[v]];
    }
    part = std::move(finer_part);
    refine(finer, &part);
  }

  auto loads = Loads(graph, part, options.k);
  result.assignment = std::move(part);
  result.cut_weight = CutWeight(graph, result.assignment);
  result.avg_load = avg;
  result.max_load = *std::max_element(loads.begin(), loads.end());
  return result;
}

}  // namespace chiller::partition
