// From-scratch multilevel k-way graph partitioner — the repo's METIS
// substitute (see DESIGN.md section 1).
#ifndef CHILLER_PARTITION_MULTILEVEL_PARTITIONER_H_
#define CHILLER_PARTITION_MULTILEVEL_PARTITIONER_H_

#include <cstdint>
#include <vector>

#include "partition/workload_graph.h"

namespace chiller::partition {

/// Multilevel k-way partitioning:
///   1. coarsening via heavy-edge matching (repeated until the graph is
///      small or contraction stalls),
///   2. greedy region-growing initial partitioning on the coarsest graph,
///   3. uncoarsening with Fiduccia–Mattheyses-style boundary refinement at
///      every level, under the balance constraint
///      L(p) <= (1 + epsilon) * mu (paper Section 4.3).
///
/// The same algorithm family as METIS; deterministic for a fixed seed.
class MultilevelPartitioner {
 public:
  struct Options {
    uint32_t k = 2;
    double epsilon = 0.05;
    /// Stop coarsening below max(coarsen_to, 16 * k) vertices.
    uint32_t coarsen_to = 128;
    uint32_t refine_passes = 6;
    uint64_t seed = 1;
  };

  struct Result {
    std::vector<uint32_t> assignment;  ///< partition id per vertex
    double cut_weight = 0.0;           ///< total weight of cut edges
    double max_load = 0.0;
    double avg_load = 0.0;
    uint32_t levels = 0;               ///< coarsening depth used
  };

  static Result Partition(const Graph& graph, const Options& options);

  /// Total weight of edges crossing partitions under `assignment`.
  static double CutWeight(const Graph& graph,
                          const std::vector<uint32_t>& assignment);

  /// Per-partition vertex-weight loads.
  static std::vector<double> Loads(const Graph& graph,
                                   const std::vector<uint32_t>& assignment,
                                   uint32_t k);
};

}  // namespace chiller::partition

#endif  // CHILLER_PARTITION_MULTILEVEL_PARTITIONER_H_
