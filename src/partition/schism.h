// Schism-style baseline partitioner (Curino et al., VLDB 2010), as the
// paper's primary comparison point: minimize distributed transactions via
// min-cut on the record co-access graph.
#ifndef CHILLER_PARTITION_SCHISM_H_
#define CHILLER_PARTITION_SCHISM_H_

#include <memory>

#include "partition/lookup_table.h"
#include "partition/multilevel_partitioner.h"
#include "partition/stats_collector.h"
#include "partition/workload_graph.h"

namespace chiller::partition {

/// Build metadata shared by the partitioning pipelines; feeds the Section
/// 4.4 / 7.2.2 cost and lookup-table-size comparisons.
struct PartitioningReport {
  size_t graph_vertices = 0;
  size_t graph_edges = 0;
  size_t lookup_entries = 0;
  size_t hot_entries = 0;
  double cut_weight = 0.0;
  double max_load = 0.0;
  double avg_load = 0.0;
  /// Wall-clock time for graph construction + partitioning, microseconds.
  uint64_t build_micros = 0;
};

/// Schism pipeline: co-access clique graph -> multilevel min-cut ->
/// full per-record lookup table (every record in the trace gets an entry;
/// records never seen fall back to hashing).
class SchismPartitioner {
 public:
  struct Options {
    uint32_t k = 2;
    double epsilon = 0.05;
    uint64_t seed = 1;
    /// Placement rule for records outside the lookup table (workload-
    /// specific key-encoded placements, e.g. Instacart order rows).
    HashPartitioner::KeyToPartition fallback_fn = nullptr;
  };

  struct Output {
    std::unique_ptr<LookupPartitioner> partitioner;
    PartitioningReport report;
  };

  static Output Build(const std::vector<TxnAccessTrace>& traces,
                      const Options& options);
};

}  // namespace chiller::partition

#endif  // CHILLER_PARTITION_SCHISM_H_
