#include "partition/schism.h"

#include <chrono>
#include <utility>

namespace chiller::partition {

SchismPartitioner::Output SchismPartitioner::Build(
    const std::vector<TxnAccessTrace>& traces, const Options& options) {
  const auto start = std::chrono::steady_clock::now();

  CoAccessGraph graph = WorkloadGraphBuilder::BuildCoAccess(traces);

  MultilevelPartitioner::Options mopts;
  mopts.k = options.k;
  mopts.epsilon = options.epsilon;
  mopts.seed = options.seed;
  auto result = MultilevelPartitioner::Partition(graph.graph, mopts);

  Output out;
  out.partitioner = std::make_unique<LookupPartitioner>(
      std::make_unique<HashPartitioner>(options.k, options.fallback_fn));
  for (uint32_t v = 0; v < graph.records.size(); ++v) {
    out.partitioner->Assign(graph.records[v], result.assignment[v]);
  }

  const auto end = std::chrono::steady_clock::now();
  out.report.graph_vertices = graph.graph.num_vertices();
  out.report.graph_edges = graph.graph.num_edges();
  out.report.lookup_entries = out.partitioner->LookupEntries();
  out.report.hot_entries = 0;
  out.report.cut_weight = result.cut_weight;
  out.report.max_load = result.max_load;
  out.report.avg_load = result.avg_load;
  out.report.build_micros = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(end - start)
          .count());
  return out;
}

}  // namespace chiller::partition
