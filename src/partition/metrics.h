// Layout-quality metrics: distributed-transaction ratio and the residual
// contention objective of Section 4.3.
#ifndef CHILLER_PARTITION_METRICS_H_
#define CHILLER_PARTITION_METRICS_H_

#include <vector>

#include "partition/lookup_table.h"
#include "partition/stats_collector.h"

namespace chiller::partition {

/// Fraction of transactions whose access set spans more than one partition
/// under `partitioner` (the Figure 8 metric).
double DistributedRatio(const std::vector<TxnAccessTrace>& traces,
                        const RecordPartitioner& partitioner);

/// The residual contention objective: for each transaction, the best single
/// inner host is the partition carrying the most contention mass; every
/// record outside it contributes its conflict likelihood (it would be
/// locked across the outer region's span). Lower is better. This evaluates
/// a layout against the paper's min-sum-of-cut-weights objective without
/// running the system.
double ResidualContention(const std::vector<TxnAccessTrace>& traces,
                          const RecordPartitioner& partitioner,
                          const StatsCollector& stats,
                          double lock_window_txns);

}  // namespace chiller::partition

#endif  // CHILLER_PARTITION_METRICS_H_
