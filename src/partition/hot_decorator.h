// Adds a hot-record set on top of any placement scheme.
#ifndef CHILLER_PARTITION_HOT_DECORATOR_H_
#define CHILLER_PARTITION_HOT_DECORATOR_H_

#include <unordered_set>
#include <utility>
#include <vector>

#include "partition/lookup_table.h"

namespace chiller::partition {

/// Wraps a base partitioner (hash, Schism, ...) and flags a given record
/// set as hot. Used to run Chiller's two-region execution on layouts that
/// were NOT produced by the contention-aware pipeline — the Figure 7
/// comparison runs every layout under the same execution engine, so hotness
/// must be decoupled from placement.
class HotDecorator : public RecordPartitioner {
 public:
  HotDecorator(const RecordPartitioner* base,
               std::vector<RecordId> hot_records)
      : base_(base), hot_(hot_records.begin(), hot_records.end()) {}

  PartitionId PartitionOf(const RecordId& rid) const override {
    return base_->PartitionOf(rid);
  }
  bool IsHot(const RecordId& rid) const override {
    return hot_.contains(rid);
  }
  size_t LookupEntries() const override { return base_->LookupEntries(); }

 private:
  const RecordPartitioner* base_;
  std::unordered_set<RecordId> hot_;
};

}  // namespace chiller::partition

#endif  // CHILLER_PARTITION_HOT_DECORATOR_H_
