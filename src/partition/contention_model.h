// The Poisson contention-likelihood model of paper Section 4.1.
#ifndef CHILLER_PARTITION_CONTENTION_MODEL_H_
#define CHILLER_PARTITION_CONTENTION_MODEL_H_

namespace chiller::partition {

/// Conflict probability for one record given Poisson read/write arrival
/// rates within a lock window:
///
///   Pc(Xw, Xr) = P(Xw > 1) P(Xr = 0) + P(Xw > 0) P(Xr > 0)
///              = 1 - e^{-lw} - lw e^{-lw} e^{-lr}
///
/// where lw / lr are the expected number of writes / reads to the record
/// while a lock is held. Pc is zero when the record is never written
/// (shared locks are compatible) and rises with both rates otherwise.
class ContentionModel {
 public:
  /// The closed form above. lambda_w, lambda_r >= 0.
  static double ConflictLikelihood(double lambda_w, double lambda_r);
};

}  // namespace chiller::partition

#endif  // CHILLER_PARTITION_CONTENTION_MODEL_H_
