#include "partition/contention_model.h"

#include <cmath>

#include "common/logging.h"

namespace chiller::partition {

double ContentionModel::ConflictLikelihood(double lambda_w, double lambda_r) {
  CHILLER_DCHECK(lambda_w >= 0 && lambda_r >= 0);
  const double ew = std::exp(-lambda_w);
  return 1.0 - ew - lambda_w * ew * std::exp(-lambda_r);
}

}  // namespace chiller::partition
