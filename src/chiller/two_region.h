// Chiller's two-region transaction execution (paper Section 3).
#ifndef CHILLER_CHILLER_TWO_REGION_H_
#define CHILLER_CHILLER_TWO_REGION_H_

#include <atomic>
#include <functional>
#include <memory>

#include "cc/protocol.h"

namespace chiller::core {

/// Per-protocol counters specific to two-region execution (tests and the
/// ablation benches read these). Atomics because inner_aborts is bumped at
/// the inner host's node while the others are bumped at the coordinator's —
/// under the sharded simulator those are different threads. Relaxed
/// increments: each field is an independent tally, read only at control.
struct TwoRegionCounters {
  std::atomic<uint64_t> two_region_txns{0};  ///< attempts planned two-region
  std::atomic<uint64_t> fallback_txns{0};    ///< attempts run as plain 2PL
  std::atomic<uint64_t> inner_aborts{0};     ///< inner region reported abort
  std::atomic<uint64_t> outer_aborts{0};     ///< outer region lock conflict
  std::atomic<uint64_t> inner_local{0};      ///< inner host == coordinator
};

/// The contention-centric execution protocol:
///
///  1. run-time decision — consult the hot-record lookup table and the
///     dependency graph to split ops into inner and outer regions and pick
///     the single inner host (DependencyAnalysis::Plan);
///  2. outer region — acquire locks and read every outer record (NO_WAIT);
///  3. inner region — delegate via RPC to the inner host, which executes
///     and *commits* its part unilaterally, then streams updates to its
///     replicas without waiting (the replicas ack the coordinator,
///     Figure 6);
///  4. outer commit — apply deferred value-dependent writes, replicate the
///     outer write set, apply and unlock.
///
/// The contention span of hot records collapses from two-plus network round
/// trips (Figure 3a) to the inner host's local execution time (Figure 3b).
/// Transactions with no eligible hot records fall back to plain 2PL + 2PC.
class ChillerProtocol : public cc::Protocol {
 public:
  /// `enable_two_region=false` turns the protocol into plain 2PL while
  /// keeping the Chiller partitioning — the knob behind the re-ordering
  /// ablation bench.
  ChillerProtocol(cc::Cluster* cluster,
                  const partition::RecordPartitioner* partitioner,
                  cc::ReplicationManager* replication,
                  bool enable_two_region = true)
      : Protocol(cluster, partitioner, replication),
        enable_two_region_(enable_two_region) {}

  const char* name() const override { return "Chiller"; }

  void Execute(std::shared_ptr<txn::Transaction> t,
               std::function<void()> done) override;

  const TwoRegionCounters& counters() const { return counters_; }

 private:
  friend class ChillerRun;
  bool enable_two_region_;
  TwoRegionCounters counters_;
};

}  // namespace chiller::core

#endif  // CHILLER_CHILLER_TWO_REGION_H_
