#include "chiller/two_region.h"

#include <memory>
#include <utility>
#include <vector>

#include "cc/exec_common.h"
#include "cc/twopl.h"
#include "common/logging.h"
#include "txn/dependency_graph.h"

namespace chiller::core {

namespace exec = ::chiller::cc::exec;

namespace {

using cc::Engine;
using cc::ReplUpdate;
using txn::Outcome;
using txn::Transaction;
using txn::TwoRegionPlan;

/// Result of an inner-region execution at the inner host.
struct InnerResult {
  Outcome status = Outcome::kPending;
  bool had_writes = false;
};

}  // namespace

/// One two-region transaction attempt (Section 3.3 steps 3-5).
class ChillerRun : public std::enable_shared_from_this<ChillerRun> {
 public:
  ChillerRun(ChillerProtocol* proto, std::shared_ptr<Transaction> t,
             TwoRegionPlan plan, std::function<void()> done)
      : proto_(proto),
        deps_{proto->cluster(), proto->partitioner()},
        t_(std::move(t)),
        plan_(std::move(plan)),
        done_(std::move(done)) {
    coord_ = deps_.cluster->engine(
        deps_.cluster->topology().EngineOfPartition(t_->home));
    inner_eng_ = deps_.cluster->engine(
        deps_.cluster->topology().EngineOfPartition(plan_.inner_host));
  }

  /// Step 3: read and lock records in the outer region.
  void Start() { OuterNext(0); }

 private:
  bool IsDeferred(int op_index) const {
    for (int d : plan_.deferred_apply) {
      if (d == op_index) return true;
    }
    return false;
  }

  void OuterNext(size_t k) {
    if (k == plan_.outer_ops.size()) {
      DispatchInner();
      return;
    }
    const size_t i = static_cast<size_t>(plan_.outer_ops[k]);
    auto self = shared_from_this();
    coord_->cpu()->Submit(deps_.cluster->costs().op_logic, [self, k, i]() {
      Transaction& t = *self->t_;
      const txn::Operation& op = t.ops[i];
      if (t.IsSkipped(i)) {
        self->OuterNext(k + 1);
        return;
      }
      // Outer guards depend only on outer reads (planner invariant), so
      // every possible user abort happens before the inner region runs.
      if (op.guard && !op.guard(t.ctx)) {
        self->FinishOuterAbort(Outcome::kAbortUser);
        return;
      }
      if (!t.accesses[i].key_resolved) {
        CHILLER_CHECK(t.KeyReady(i));
        t.ResolveKey(i);
        t.accesses[i].partition = exec::ResolvePartition(self->deps_, t, i);
      }
      const bool deferred = self->IsDeferred(static_cast<int>(i));
      exec::LockAndFetch(self->deps_, self->t_.get(), i, self->coord_,
                         /*apply_inline=*/!deferred, [self, k](bool ok) {
                           if (!ok) {
                             ++self->proto_->counters_.outer_aborts;
                             self->FinishOuterAbort(Outcome::kAbortConflict);
                             return;
                           }
                           self->OuterNext(k + 1);
                         });
    });
  }

  /// Step 4: delegate the inner region to its host. After this point the
  /// coordinator can no longer abort the transaction — the decision belongs
  /// to the inner host alone.
  void DispatchInner() {
    auto self = shared_from_this();
    auto result = std::make_shared<InnerResult>();
    if (plan_.inner_host == t_->home) {
      ++proto_->counters_.inner_local;
      ExecuteInner(result, [self, result]() { self->OnInnerReply(result); });
      return;
    }
    // RPC with all information needed to execute and commit (txn id,
    // operation ids, input parameters — modeled as bytes).
    const size_t req_bytes = 64 + 24 * plan_.inner_ops.size() +
                             8 * t_->ctx.params.size();
    if (t_->traced) {
      deps_.cluster->trace()->Instant(
          coord_->id(), deps_.cluster->sim()->now(), "inner_dispatch",
          t_->logical_id, t_->attempt, /*reason=*/nullptr, "bytes", req_bytes);
    }
    deps_.cluster->rpc()->Send(
        coord_->id(), inner_eng_->id(), req_bytes,
        deps_.cluster->costs().inner_dispatch, [self, result]() {
          self->ExecuteInner(result, [self, result]() {
            // Reply to the coordinator with the outcome and result values.
            self->deps_.cluster->rpc()->Send(
                self->inner_eng_->id(), self->coord_->id(), 64, 0,
                [self, result]() { self->OnInnerReply(result); });
          });
        });
  }

  /// Runs at the inner host: executes all inner ops locally, commits
  /// unilaterally, and fires the replica stream (without waiting — the
  /// replicas ack the coordinator; Figure 6).
  void ExecuteInner(std::shared_ptr<InnerResult> result,
                    std::function<void()> reply) {
    inner_start_ = deps_.cluster->sim()->now();
    InnerOpNext(0, result, std::move(reply));
  }

  void InnerOpNext(size_t k, std::shared_ptr<InnerResult> result,
                   std::function<void()> reply) {
    if (k == plan_.inner_ops.size()) {
      InnerCommit(result, std::move(reply));
      return;
    }
    const size_t i = static_cast<size_t>(plan_.inner_ops[k]);
    auto self = shared_from_this();
    inner_eng_->cpu()->Submit(
        deps_.cluster->costs().op_logic,
        [self, k, i, result, reply = std::move(reply)]() mutable {
          Transaction& t = *self->t_;
          const txn::Operation& op = t.ops[i];
          if (t.IsSkipped(i)) {
            self->InnerOpNext(k + 1, result, std::move(reply));
            return;
          }
          if (op.guard && !op.guard(t.ctx)) {
            self->InnerAbort(Outcome::kAbortUser, result, std::move(reply));
            return;
          }
          if (!t.accesses[i].key_resolved) {
            CHILLER_CHECK(t.KeyReady(i));
            t.ResolveKey(i);
            t.accesses[i].partition = exec::ResolvePartition(self->deps_, t, i);
          }
          // The dependency graph guarantees every inner record is local to
          // the host (Section 3.3 step 4). Under a layout produced by
          // online relayout that guarantee can break for late-resolved
          // keys — the workload's co_located_with_dep declarations assume
          // the layout it was written against. Abort the attempt and pin
          // its retries to the fallback protocol: replanning would build
          // the same broken inner region forever.
          if (t.accesses[i].partition != self->plan_.inner_host) {
            CHILLER_CHECK(
                self->deps_.cluster->bucket_locks()->ever_active())
                << "inner op " << i << " not on inner host";
            t.force_fallback = true;
            self->InnerAbort(Outcome::kAbortConflict, result,
                             std::move(reply));
            return;
          }
          exec::LockAndFetch(
              self->deps_, self->t_.get(), i, self->inner_eng_,
              /*apply_inline=*/true,
              [self, k, result, reply = std::move(reply)](bool ok) mutable {
                if (!ok) {
                  self->InnerAbort(Outcome::kAbortConflict, result,
                                   std::move(reply));
                  return;
                }
                self->InnerOpNext(k + 1, result, std::move(reply));
              });
        });
  }

  std::vector<size_t> InnerHeld() const {
    std::vector<size_t> held;
    for (int i : plan_.inner_ops) {
      if (t_->accesses[static_cast<size_t>(i)].lock_held) {
        held.push_back(static_cast<size_t>(i));
      }
    }
    return held;
  }

  /// "The inner region commits upon completion" — apply, unlock, stream to
  /// replicas, reply. All local to the host; the hot records' contention
  /// span ends here.
  void InnerCommit(std::shared_ptr<InnerResult> result,
                   std::function<void()> reply) {
    auto self = shared_from_this();
    const auto held = InnerHeld();
    auto writes = exec::CollectWrites(*t_, held);
    CHILLER_CHECK(writes.size() <= 1) << "inner writes span partitions";
    result->status = Outcome::kCommitted;
    result->had_writes = !writes.empty();
    exec::ApplyAndUnlock(
        deps_, t_.get(), held, inner_eng_,
        [self, result, writes = std::move(writes),
         reply = std::move(reply)]() mutable {
          if (self->t_->traced) {
            // Runs on the inner host's engine — the hot records' contention
            // span, the quantity the paper's argument is about.
            self->deps_.cluster->trace()->Span(
                self->inner_eng_->id(), self->inner_start_,
                self->deps_.cluster->sim()->now(), "inner_region",
                self->t_->logical_id, self->t_->attempt, "commit");
          }
          if (result->had_writes) {
            // Fire-and-continue: the inner host does NOT wait for acks.
            self->proto_->replication()->Replicate(
                self->inner_eng_->id(), self->plan_.inner_host,
                std::move(writes.begin()->second), self->coord_->id(),
                [self]() { self->OnInnerReplicaAcks(); });
          }
          reply();
        });
  }

  void InnerAbort(Outcome why, std::shared_ptr<InnerResult> result,
                  std::function<void()> reply) {
    ++proto_->counters_.inner_aborts;
    result->status = why;
    auto self = shared_from_this();
    // Roll back is lock release only: primaries were untouched.
    exec::Release(deps_, t_.get(), InnerHeld(), inner_eng_,
                  [self, reply = std::move(reply)]() {
                    if (self->t_->traced) {
                      self->deps_.cluster->trace()->Span(
                          self->inner_eng_->id(), self->inner_start_,
                          self->deps_.cluster->sim()->now(), "inner_region",
                          self->t_->logical_id, self->t_->attempt, "abort");
                    }
                    reply();
                  });
  }

  // ---- coordinator side, after the inner region ----

  void OnInnerReplicaAcks() {
    inner_replicated_ = true;
    MaybeFinishInnerWait();
  }

  void OnInnerReply(std::shared_ptr<InnerResult> result) {
    if (t_->traced) {
      deps_.cluster->trace()->Instant(
          coord_->id(), deps_.cluster->sim()->now(), "inner_reply",
          t_->logical_id, t_->attempt,
          result->status == Outcome::kCommitted ? "commit" : "abort");
    }
    inner_result_ = *result;
    inner_replied_ = true;
    MaybeFinishInnerWait();
  }

  void MaybeFinishInnerWait() {
    if (!inner_replied_ || inner_wait_done_) return;
    if (inner_result_.status != Outcome::kCommitted) {
      inner_wait_done_ = true;
      // Inner aborted: unroll the outer region.
      FinishOuterAbort(inner_result_.status);
      return;
    }
    const bool need_acks =
        inner_result_.had_writes &&
        deps_.cluster->topology().num_replicas() > 0;
    if (need_acks && !inner_replicated_) return;
    inner_wait_done_ = true;
    OuterPhase2();
  }

  /// Step 5: the transaction is already committed; apply deferred writes,
  /// replicate the outer write set, make outer changes visible.
  void OuterPhase2() {
    auto self = shared_from_this();
    const SimTime cost = deps_.cluster->costs().op_logic *
                         std::max<size_t>(1, plan_.deferred_apply.size());
    coord_->cpu()->Submit(cost, [self]() {
      exec::ApplyDeferred(self->t_.get(), self->plan_.deferred_apply);
      const auto held = exec::HeldIndices(*self->t_);
      auto writes = exec::CollectWrites(*self->t_, held);
      if (writes.empty()) {
        self->OuterApply();
        return;
      }
      auto pending = std::make_shared<size_t>(writes.size());
      for (auto& [p, updates] : writes) {
        self->proto_->replication()->Replicate(
            self->coord_->id(), p, std::move(updates), self->coord_->id(),
            [self, pending]() {
              if (--*pending == 0) self->OuterApply();
            });
      }
    });
  }

  void OuterApply() {
    auto self = shared_from_this();
    exec::ApplyAndUnlock(deps_, t_.get(), exec::HeldIndices(*t_), coord_,
                         [self]() { self->Done(Outcome::kCommitted); });
  }

  void FinishOuterAbort(Outcome outcome) {
    CHILLER_CHECK(outcome != Outcome::kCommitted);
    auto self = shared_from_this();
    exec::Release(deps_, t_.get(), exec::HeldIndices(*t_), coord_,
                  [self, outcome]() { self->Done(outcome); });
  }

  void Done(Outcome outcome) {
    t_->outcome = outcome;
    t_->end_time = deps_.cluster->sim()->now();
    done_();
  }

  ChillerProtocol* proto_;
  exec::Deps deps_;
  std::shared_ptr<Transaction> t_;
  TwoRegionPlan plan_;
  std::function<void()> done_;
  Engine* coord_;
  Engine* inner_eng_;

  bool inner_replied_ = false;
  bool inner_replicated_ = false;
  bool inner_wait_done_ = false;
  SimTime inner_start_ = 0;  ///< set on the inner host at region entry
  InnerResult inner_result_;
};

void ChillerProtocol::Execute(std::shared_ptr<Transaction> t,
                              std::function<void()> done) {
  auto self = this;
  Engine* coord = cluster_->engine(
      cluster_->topology().EngineOfPartition(t->home));
  coord->cpu()->Submit(cluster_->costs().txn_setup, [self, t = std::move(t),
                                                     done = std::move(
                                                         done)]() mutable {
    t->ResolveReadyKeys();
    exec::Deps deps{self->cluster_, self->partitioner_};
    for (size_t i = 0; i < t->accesses.size(); ++i) {
      if (t->accesses[i].key_resolved) {
        t->accesses[i].partition = exec::ResolvePartition(deps, *t, i);
      }
    }
    TwoRegionPlan plan;
    if (self->enable_two_region_ && !t->force_fallback) {
      plan = txn::DependencyAnalysis::Plan(
          *t,
          [self](const RecordId& rid) {
            return self->partitioner_->IsHot(rid);
          },
          [self](const RecordId& rid) {
            return self->partitioner_->PartitionOf(rid);
          });
    } else {
      plan.fallback_reason = t->force_fallback
                                 ? "co-location violated under live layout"
                                 : "two-region execution disabled";
    }
    if (!plan.two_region) {
      ++self->counters_.fallback_txns;
      cc::TwoPhaseLocking::Run(self, std::move(t), std::move(done));
      return;
    }
    ++self->counters_.two_region_txns;
    std::make_shared<ChillerRun>(self, std::move(t), std::move(plan),
                                 std::move(done))
        ->Start();
  });
}

}  // namespace chiller::core
