// AdaptiveController: the continuous sample -> replan -> migrate loop of
// paper Section 4.1, run as a periodic background activity instead of a
// one-shot phase pair.
//
// The controller interleaves with the driver's Advance loop: each epoch it
// attaches a sampling StatsCollector to the commit observer, advances one
// period of simulated time, rebuilds a candidate Chiller layout from the
// epoch's traces, and measures *drift* — the fraction of resident primary
// records whose placement would change under the candidate. Drift above
// the threshold starts a LiveMigrator (traffic keeps flowing; the
// controller skips replanning while a relayout is in flight). Hysteresis:
// after `hysteresis_epochs` consecutive calm epochs the controller settles
// — sampling and replanning stop, so a stable workload pays nothing.
//
// Three extensions on that loop:
//
//   * governor — while a relayout is in flight, a MigrationGovernor reads
//     the epoch's foreground signals (commit-latency p99 from the driver's
//     latency window, migration-abort share from the lifetime counters)
//     and retunes the migrator's concurrent stream width each epoch;
//   * re-arm (rearm_threshold > 0) — settling stops being terminal: every
//     settled epoch attaches a fresh probe collector, scores the live
//     layout's per-trace residual contention on the probe, and compares it
//     with the calm-state baseline (the best probe seen since settling). A
//     relative worsening beyond the threshold (hot-set rotation, diurnal
//     swing) re-arms sample -> replan -> migrate, discarding the old
//     regime's cumulative traces;
//   * shadow — the loop samples and scores candidates every epoch but
//     never starts a migrator and never settles: a zero-risk observer
//     whose drift readings show what the layout *would* gain.
#ifndef CHILLER_MIGRATE_ADAPTIVE_CONTROLLER_H_
#define CHILLER_MIGRATE_ADAPTIVE_CONTROLLER_H_

#include <functional>
#include <memory>

#include "cc/driver.h"
#include "cc/replication.h"
#include "common/status.h"
#include "migrate/live_migrator.h"
#include "migrate/migration_governor.h"
#include "partition/lookup_table.h"
#include "partition/stats_collector.h"

namespace chiller::migrate {

struct AdaptiveControllerOptions {
  /// Epoch length: one sample window + one replan decision per period.
  SimTime period = 2 * kMillisecond;
  /// Fraction of committed transactions the epoch collector records.
  double sample_rate = 1.0;
  /// Drift above which a relayout starts: the *relative residual-
  /// contention improvement* (partition::ResidualContention on the epoch's
  /// traces) the candidate layout would deliver over the live one. ~1.0
  /// means the live layout is obsolete (hash start, workload shift); ~0
  /// means converged — deliberately cost-based, so the min-cut's symmetric
  /// relabelings of an already-good layout read as zero drift.
  double drift_threshold = 0.1;
  /// Consecutive calm (below-threshold) epochs before the controller
  /// settles and stops sampling.
  uint32_t hysteresis_epochs = 2;
  /// Replan knobs (see partition::ChillerPartitioner::Options).
  double hot_threshold = 0.05;
  double lock_window_txns = 16.0;
  /// Relayout bucket count for plans and the lock-table epoch.
  uint32_t relayout_buckets = 64;
  /// migrator.streams is the relayout width at Start (and the governor's
  /// starting point when the governor is enabled).
  LiveMigratorOptions migrator;
  /// Attach a MigrationGovernor: every mid-relayout epoch retunes the
  /// stream width against the foreground SLO in governor_opts.
  bool governor = false;
  MigrationGovernorOptions governor_opts;
  /// Relative worsening of the live layout's per-trace residual contention
  /// (vs the calm-state baseline probed after settling) that re-arms the
  /// loop. 0 keeps the legacy behavior: settling is terminal.
  double rearm_threshold = 0.0;
  /// Score candidates every epoch but never migrate and never settle.
  bool shadow = false;
  /// Seed for the epoch collectors (stream-split per epoch).
  uint64_t seed = 1;
};

struct AdaptiveControllerReport {
  uint32_t epochs = 0;           ///< periods advanced
  uint32_t migrations = 0;       ///< relayouts started
  uint64_t sampled_txns = 0;     ///< across every epoch collector
  uint64_t moved_records = 0;
  uint64_t moved_bytes = 0;
  SimTime migration_sim_time = 0;  ///< summed in-flight spans
  uint32_t buckets_moved = 0;      ///< relayout buckets completed
  /// Relayout window on the simulator clock, at epoch granularity: the
  /// first relayout's start to the epoch boundary where the last one was
  /// harvested (zero when no relayout ran). The exact in-flight span is
  /// migration_sim_time; this window matches the counters below, so
  /// commits / (end - start) is a consistent rate.
  SimTime first_migration_start = 0;
  SimTime last_migration_end = 0;
  /// Commits / bucket-gate aborts inside [first_migration_start,
  /// last_migration_end] — up to one period of post-completion traffic
  /// per relayout rides along, matching the window above.
  uint64_t window_commits = 0;
  uint64_t window_aborts = 0;
  bool settled = false;          ///< hysteresis tripped; loop went quiet
  uint32_t rearms = 0;           ///< settled -> re-armed transitions
  uint32_t shadow_evals = 0;     ///< shadow-mode candidate scorings
  double last_drift = 0.0;       ///< most recent replan's drift reading
  uint32_t peak_streams = 0;     ///< max concurrent streams, any relayout
  uint32_t governor_widens = 0;
  uint32_t governor_narrows = 0;
};

class AdaptiveController {
 public:
  AdaptiveController(cc::Driver* driver, cc::Cluster* cluster,
                     cc::ReplicationManager* repl,
                     partition::SwappablePartitioner* live,
                     AdaptiveControllerOptions options);
  ~AdaptiveController();

  /// Runs at least `duration` of simulated time in period-sized epochs,
  /// advancing through `advance` (defaults to driver->Advance; the runner
  /// injects a timeline-slicing wrapper). If a relayout is still in flight
  /// when the duration elapses, advancing continues in period steps until
  /// it settles, so the loop never ends with routing mid-transition.
  /// Returns the total simulated time advanced.
  StatusOr<SimTime> RunFor(
      SimTime duration,
      const std::function<void(SimTime)>& advance = nullptr);

  const AdaptiveControllerReport& report() const { return report_; }

 private:
  /// Arms the epoch's observer (cumulative collector while hunting, probe
  /// collector while settled with re-arm) and snapshots the governor's
  /// epoch-start counters when a relayout is in flight.
  void BeginEpoch();
  /// Ends the epoch: detach sampling, replan, measure drift, maybe start a
  /// relayout, update hysteresis. Governs the stream width instead while a
  /// relayout is in flight, and probes for re-arm while settled.
  void CloseEpoch();
  /// Settled-epoch drift probe: compare the probe collector's live-layout
  /// residual with the calm-state baseline, re-arm past the threshold.
  void MaybeRearm();

  cc::Driver* driver_;
  cc::Cluster* cluster_;
  cc::ReplicationManager* repl_;
  partition::SwappablePartitioner* live_;
  AdaptiveControllerOptions opts_;

  std::unique_ptr<partition::StatsCollector> collector_;
  std::unique_ptr<LiveMigrator> migrator_;
  std::unique_ptr<MigrationGovernor> governor_;
  // Registry mirrors of the loop's own control-plane accounting
  // ("controller.*"): the report stays the derived JSON source, the
  // registry puts the loop's activity on the trace timeline.
  obs::MetricsRegistry::Counter* c_epochs_ = nullptr;
  obs::MetricsRegistry::Counter* c_migrations_ = nullptr;
  obs::MetricsRegistry::Counter* c_rearms_ = nullptr;
  /// Fresh per-epoch collector while settled with re-arm enabled.
  std::unique_ptr<partition::StatsCollector> probe_;
  uint32_t calm_epochs_ = 0;
  /// Calm-state per-trace residual of the live layout, ratcheted down over
  /// settled epochs; 0 until the first settled probe lands.
  double baseline_residual_ = 0.0;
  /// sampled_txns() of collectors already retired (re-arm discards them).
  uint64_t sampled_retired_ = 0;
  // Governor epoch-start snapshots (lifetime counters).
  uint64_t epoch_commits_ = 0;
  uint64_t epoch_aborts_ = 0;
  // In-flight relayout bookkeeping (see the window fields of the report).
  SimTime migration_start_ = 0;
  uint64_t commits_at_start_ = 0;
  uint64_t aborts_at_start_ = 0;
  AdaptiveControllerReport report_;
};

}  // namespace chiller::migrate

#endif  // CHILLER_MIGRATE_ADAPTIVE_CONTROLLER_H_
