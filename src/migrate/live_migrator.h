// LiveMigrator: incremental, per-bucket record relayout that runs
// concurrently with transaction traffic.
//
// Where cc::MigrateToLayout quiesces the whole cluster and moves everything
// in one stop-the-world pause, the LiveMigrator walks a MigrationPlan one
// relayout bucket at a time:
//
//   1. lock the bucket in the cluster's BucketLockTable — transactions
//      touching it abort with the dedicated migration abort class and
//      retry through their load model's backoff; all other traffic flows;
//   2. ship the bucket's moves as per-(from,to) batches over the RPC layer
//      (paying the same simulated transfer + install cost per batch as the
//      quiesced path);
//   3. at each batch's arrival, atomically extract + install its records —
//      a single simulator event, so record conservation and single
//      residency hold at every observable instant. Storage-bucket lock
//      words still held by transactions that got in before the bucket lock
//      delay the batch (retried on a short interval) until they drain;
//   4. resync replicas (erases stream from the old primary's engine, so
//      per-queue-pair FIFO ordering keeps them behind any still-in-flight
//      commit replication; puts stream from the new primary's engine);
//   5. once every batch and replica ack of the bucket has settled, flip the
//      bucket's entry in the SwappablePartitioner and release its lock in
//      the same event — routing and physical placement never disagree.
//
// When the last unit finishes, the partitioner transition collapses
// (buckets without placement diffs flip implicitly) and the epoch closes.
//
// Assumption inherited from the layout pipeline: records without an
// explicit lookup entry place identically under the outgoing and incoming
// layouts (both fall back to the same hash), so keys inserted while the
// plan executes never strand. Records deleted after planning are skipped
// (counted in stats().skipped_records).
#ifndef CHILLER_MIGRATE_LIVE_MIGRATOR_H_
#define CHILLER_MIGRATE_LIVE_MIGRATOR_H_

#include <memory>
#include <vector>

#include "cc/cluster.h"
#include "cc/migration.h"
#include "cc/replication.h"
#include "common/status.h"
#include "migrate/migration_plan.h"
#include "partition/lookup_table.h"

namespace chiller::migrate {

struct LiveMigratorOptions {
  /// Records per RPC batch; a (from, to) group larger than this splits
  /// into several batches, each paying its own header + transfer.
  uint32_t batch_records = 128;
  /// Recheck interval while a batch waits for storage-bucket lock words
  /// (transactions that acquired them before the bucket lock) to drain.
  SimTime retry_interval = 2 * kMicrosecond;
  /// After this many rechecks the batch escalates: it freezes the exact
  /// storage buckets it needs in the BucketLockTable, so colliding keys
  /// from other relayout buckets stop re-locking them and the drain is
  /// guaranteed to terminate (the relayout-bucket gate alone cannot stop
  /// those keys).
  uint32_t freeze_after_retries = 16;
};

/// Accounting beyond the shared MigrationStats shape.
struct LiveMigrationStats {
  cc::MigrationStats base;       ///< moved records/bytes + in-flight span
  uint64_t batches = 0;          ///< RPC batches shipped
  uint64_t lock_retries = 0;     ///< batch completions delayed by held locks
  uint64_t freezes = 0;          ///< batches that escalated to a freeze
  uint64_t skipped_records = 0;  ///< planned moves whose record vanished
  uint32_t buckets_moved = 0;    ///< units completed (locked -> flipped)
};

/// One live relayout execution. Drive it by advancing the cluster's
/// simulator (e.g. cc::Driver::Advance) after Start(): all migrator work
/// runs as simulator events interleaved with transaction traffic. One
/// relayout at a time per cluster (the BucketLockTable enforces it).
class LiveMigrator {
 public:
  LiveMigrator(cc::Cluster* cluster, cc::ReplicationManager* repl,
               partition::SwappablePartitioner* live,
               LiveMigratorOptions options = {});

  /// Stages `next` as the incoming layout (per-bucket indirection on
  /// `live`), opens the lock-table epoch, and schedules the first unit.
  /// `plan` must have been diffed against `next` over the same bucket
  /// count. FailedPrecondition if a relayout is already in flight.
  Status Start(MigrationPlan plan,
               std::unique_ptr<partition::RecordPartitioner> next);

  /// True once every unit has flipped and the epoch is closed.
  bool done() const { return done_; }

  const LiveMigrationStats& stats() const { return stats_; }

 private:
  struct Batch {
    size_t unit_index = 0;
    std::vector<RecordMove> moves;
    size_t bytes = 0;  ///< launch-time transfer-cost estimate
    uint32_t retries = 0;
    /// Storage buckets this batch froze (escalated drain); lifted when
    /// the batch completes.
    std::vector<BucketLockTable::StorageBucketKey> frozen;
  };

  void BeginUnit(size_t u);
  void LaunchBatches(size_t u);
  void TryCompleteBatch(std::shared_ptr<Batch> batch);
  void OnUnitEvent(size_t u);  ///< one outstanding completion arrived
  void FinishUnit(size_t u);
  void FinishAll();

  cc::Cluster* cluster_;
  cc::ReplicationManager* repl_;
  partition::SwappablePartitioner* live_;
  BucketLockTable* locks_;
  LiveMigratorOptions opts_;

  MigrationPlan plan_;
  LiveMigrationStats stats_;
  SimTime start_time_ = 0;
  size_t unit_outstanding_ = 0;  ///< unmoved batches + unacked streams
  bool running_ = false;
  bool done_ = false;
};

}  // namespace chiller::migrate

#endif  // CHILLER_MIGRATE_LIVE_MIGRATOR_H_
