// LiveMigrator: incremental, per-bucket record relayout that runs
// concurrently with transaction traffic.
//
// Where cc::MigrateToLayout quiesces the whole cluster and moves everything
// in one stop-the-world pause, the LiveMigrator streams a MigrationPlan
// through up to `streams` relayout buckets concurrently (k = 1 degenerates
// to the classic one-bucket-at-a-time walk, event for event). Each
// in-flight bucket advances independently through the same pipeline:
//
//   1. lock the bucket in the cluster's BucketLockTable — transactions
//      touching it abort with the dedicated migration abort class and
//      retry through their load model's backoff; all other traffic flows;
//   2. ship the bucket's moves as per-(from,to) batches over the RPC layer
//      (paying the same simulated transfer + install cost per batch as the
//      quiesced path); batches of different buckets overlap in flight;
//   3. at each batch's arrival, atomically extract + install its records —
//      a single simulator event, so record conservation and single
//      residency hold at every observable instant. Storage-bucket lock
//      words still held by transactions that got in before the bucket lock
//      delay the batch (retried on a short interval) until they drain;
//   4. resync replicas (erases stream from the old primary's engine, so
//      per-queue-pair FIFO ordering keeps them behind any still-in-flight
//      commit replication; puts stream from the new primary's engine);
//   5. once every batch and replica ack of the bucket has settled, flip the
//      bucket's entry in the SwappablePartitioner and release its lock in
//      the same event — routing and physical placement never disagree.
//      That unlock event also pulls the next unstarted bucket into the
//      freed stream slot.
//
// Escalation (storage-bucket freezes) is per batch and therefore per
// stream: concurrent buckets never share a freeze — the
// IsStorageBucketFrozen guard keeps ownership exclusive even when two
// streams collide on the same storage bucket.
//
// The stream width is live: SetTargetStreams(k) widens immediately (idle
// slots fill from the plan cursor in the same control event) and narrows
// by attrition (in-flight buckets finish; no new ones start until the
// width is below target). The MigrationGovernor drives this knob each
// controller epoch against the foreground SLO.
//
// Every migrator mutation runs as a control-plane event with the canonical
// (time, domain, origin, seq) order, so k > 1 changes wall-clock shape
// only through the simulated overlap — results stay byte-identical for
// any shard count.
//
// When the last unit finishes, the partitioner transition collapses
// (buckets without placement diffs flip implicitly) and the epoch closes.
//
// Assumption inherited from the layout pipeline: records without an
// explicit lookup entry place identically under the outgoing and incoming
// layouts (both fall back to the same hash), so keys inserted while the
// plan executes never strand. Records deleted after planning are skipped
// (counted in stats().skipped_records).
#ifndef CHILLER_MIGRATE_LIVE_MIGRATOR_H_
#define CHILLER_MIGRATE_LIVE_MIGRATOR_H_

#include <memory>
#include <vector>

#include "cc/cluster.h"
#include "cc/migration.h"
#include "cc/replication.h"
#include "common/status.h"
#include "migrate/migration_plan.h"
#include "partition/lookup_table.h"

namespace chiller::migrate {

struct LiveMigratorOptions {
  /// Records per RPC batch; a (from, to) group larger than this splits
  /// into several batches, each paying its own header + transfer.
  uint32_t batch_records = 128;
  /// Recheck interval while a batch waits for storage-bucket lock words
  /// (transactions that acquired them before the bucket lock) to drain.
  SimTime retry_interval = 2 * kMicrosecond;
  /// After this many rechecks the batch escalates: it freezes the exact
  /// storage buckets it needs in the BucketLockTable, so colliding keys
  /// from other relayout buckets stop re-locking them and the drain is
  /// guaranteed to terminate (the relayout-bucket gate alone cannot stop
  /// those keys).
  uint32_t freeze_after_retries = 16;
  /// Relayout buckets streamed concurrently (k). 1 reproduces the legacy
  /// sequential walk event for event; SetTargetStreams can retune a
  /// running relayout (the governor's knob).
  uint32_t streams = 1;
};

/// Accounting beyond the shared MigrationStats shape.
struct LiveMigrationStats {
  cc::MigrationStats base;       ///< moved records/bytes + in-flight span
  uint64_t batches = 0;          ///< RPC batches shipped
  uint64_t lock_retries = 0;     ///< batch completions delayed by held locks
  uint64_t freezes = 0;          ///< batches that escalated to a freeze
  uint64_t skipped_records = 0;  ///< planned moves whose record vanished
  uint32_t buckets_moved = 0;    ///< units completed (locked -> flipped)
  uint32_t peak_streams = 0;     ///< max buckets concurrently in flight
};

/// One live relayout execution. Drive it by advancing the cluster's
/// simulator (e.g. cc::Driver::Advance) after Start(): all migrator work
/// runs as simulator events interleaved with transaction traffic. One
/// relayout at a time per cluster (the BucketLockTable enforces it),
/// with up to target_streams() buckets of that relayout in flight at once.
class LiveMigrator {
 public:
  LiveMigrator(cc::Cluster* cluster, cc::ReplicationManager* repl,
               partition::SwappablePartitioner* live,
               LiveMigratorOptions options = {});

  /// Stages `next` as the incoming layout (per-bucket indirection on
  /// `live`), opens the lock-table epoch, and schedules the first
  /// min(streams, units) buckets. `plan` must have been diffed against
  /// `next` over the same bucket count. FailedPrecondition if a relayout
  /// is already in flight.
  Status Start(MigrationPlan plan,
               std::unique_ptr<partition::RecordPartitioner> next);

  /// Retunes the concurrent stream width mid-relayout. Widening takes
  /// effect immediately (idle slots fill in this call); narrowing decays
  /// as in-flight buckets finish. Clamped to >= 1. Control-plane only —
  /// call it from outside the simulation or from a control event, like
  /// every other migrator entry point.
  void SetTargetStreams(uint32_t streams);
  uint32_t target_streams() const { return target_streams_; }
  /// Buckets currently locked + in flight.
  uint32_t active_streams() const {
    return static_cast<uint32_t>(active_units_);
  }

  /// True once every unit has flipped and the epoch is closed.
  bool done() const { return done_; }

  const LiveMigrationStats& stats() const { return stats_; }

 private:
  struct Batch {
    size_t unit_index = 0;
    std::vector<RecordMove> moves;
    size_t bytes = 0;  ///< launch-time transfer-cost estimate
    uint32_t retries = 0;
    /// Storage buckets this batch froze (escalated drain); lifted when
    /// the batch completes.
    std::vector<BucketLockTable::StorageBucketKey> frozen;
  };

  /// Starts unstarted units until the width reaches target_streams_ (or
  /// the plan cursor runs out), then closes the epoch when nothing is
  /// left. Reentrant-safe: a unit whose batches all vanished finishes
  /// synchronously inside BeginUnit and re-enters here.
  void PumpStreams();
  void BeginUnit(size_t u);
  void LaunchBatches(size_t u);
  void TryCompleteBatch(std::shared_ptr<Batch> batch);
  void OnUnitEvent(size_t u);  ///< one outstanding completion arrived
  void FinishUnit(size_t u);
  void FinishAll();

  cc::Cluster* cluster_;
  cc::ReplicationManager* repl_;
  partition::SwappablePartitioner* live_;
  BucketLockTable* locks_;
  LiveMigratorOptions opts_;

  MigrationPlan plan_;
  LiveMigrationStats stats_;
  // Registry mirrors of the relayout's control-plane accounting, so the
  // trace timeline's slice snapshots can show migration progress next to
  // commits ("migrate.*"). The per-run LiveMigrationStats stays the source
  // of the report fields.
  obs::MetricsRegistry::Gauge* g_streams_ = nullptr;
  obs::MetricsRegistry::Counter* c_batches_ = nullptr;
  obs::MetricsRegistry::Counter* c_buckets_moved_ = nullptr;
  obs::MetricsRegistry::Counter* c_moved_records_ = nullptr;
  SimTime start_time_ = 0;
  /// Per-unit unmoved batches + unacked replica streams; indexed like
  /// plan_.units so concurrent buckets never share a counter.
  std::vector<size_t> outstanding_;
  size_t next_unit_ = 0;    ///< plan cursor: first unstarted unit
  size_t active_units_ = 0; ///< units locked + in flight right now
  uint32_t target_streams_ = 1;
  bool pumping_ = false;    ///< PumpStreams reentrancy guard
  bool running_ = false;
  bool done_ = false;
};

}  // namespace chiller::migrate

#endif  // CHILLER_MIGRATE_LIVE_MIGRATOR_H_
