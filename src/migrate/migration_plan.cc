#include "migrate/migration_plan.h"

#include <map>
#include <utility>

namespace chiller::migrate {

MigrationPlan MigrationPlan::Diff(cc::Cluster* cluster,
                                  const partition::RecordPartitioner& target,
                                  uint32_t num_buckets) {
  CHILLER_CHECK(num_buckets > 0);
  MigrationPlan plan;
  plan.num_buckets = num_buckets;

  // Deterministic partition/bucket scan order (the same order the legacy
  // quiesced path used), grouped by relayout bucket. std::map keeps the
  // units in ascending bucket order without a sort pass.
  std::map<BucketId, std::vector<RecordMove>> by_bucket;
  const uint32_t partitions = cluster->topology().num_partitions();
  for (PartitionId p = 0; p < partitions; ++p) {
    cluster->primary(p)->ForEach(
        [&](const RecordId& rid, const storage::Record&) {
          const PartitionId to = target.PartitionOf(rid);
          if (to == p) return;
          if (cluster->primary(to)->Find(rid) != nullptr) return;
          by_bucket[RelayoutBucketOf(rid, num_buckets)].push_back(
              RecordMove{.rid = rid, .from = p, .to = to});
        });
  }

  plan.units.reserve(by_bucket.size());
  for (auto& [bucket, moves] : by_bucket) {
    plan.units.push_back(MoveUnit{.bucket = bucket, .moves = std::move(moves)});
  }
  return plan;
}

}  // namespace chiller::migrate
