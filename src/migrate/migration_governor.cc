#include "migrate/migration_governor.h"

#include <algorithm>

#include "common/logging.h"

namespace chiller::migrate {

MigrationGovernor::MigrationGovernor(MigrationGovernorOptions options,
                                     uint32_t initial_streams,
                                     obs::MetricsRegistry* registry)
    : opts_(options) {
  CHILLER_CHECK(opts_.min_streams >= 1);
  CHILLER_CHECK(opts_.min_streams <= opts_.max_streams);
  CHILLER_CHECK(opts_.max_abort_share >= 0.0 && opts_.max_abort_share <= 1.0);
  target_ = std::clamp(initial_streams, opts_.min_streams, opts_.max_streams);
  if (registry != nullptr) {
    c_decisions_ = registry->GetCounter("governor.decisions");
    c_widens_ = registry->GetCounter("governor.widens");
    c_narrows_ = registry->GetCounter("governor.narrows");
    g_width_ = registry->GetGauge("governor.stream_width");
    base_decisions_ = c_decisions_->Sum();
    base_widens_ = c_widens_->Sum();
    base_narrows_ = c_narrows_->Sum();
    g_width_->Set(static_cast<int64_t>(target_));
  }
}

const MigrationGovernorReport& MigrationGovernor::report() const {
  if (c_decisions_ != nullptr) {
    report_.decisions =
        static_cast<uint32_t>(c_decisions_->Sum() - base_decisions_);
    report_.widens = static_cast<uint32_t>(c_widens_->Sum() - base_widens_);
    report_.narrows = static_cast<uint32_t>(c_narrows_->Sum() - base_narrows_);
  }
  return report_;
}

uint32_t MigrationGovernor::Decide(const GovernorSignals& signals) {
  if (c_decisions_ != nullptr) {
    c_decisions_->AddControl();
  } else {
    ++report_.decisions;
  }
  const uint64_t outcomes = signals.commits + signals.migration_aborts;
  const double abort_share =
      outcomes == 0
          ? 0.0
          : static_cast<double>(signals.migration_aborts) /
                static_cast<double>(outcomes);
  const bool latency_violated =
      opts_.p99_budget > 0 && signals.p99 > opts_.p99_budget;
  const bool aborts_violated = abort_share > opts_.max_abort_share;
  if (latency_violated || aborts_violated) {
    const uint32_t next = std::max(opts_.min_streams, target_ / 2);
    if (next < target_) {
      if (c_narrows_ != nullptr) {
        c_narrows_->AddControl();
      } else {
        ++report_.narrows;
      }
    }
    target_ = next;
  } else {
    const uint32_t next = std::min(opts_.max_streams, target_ + 1);
    if (next > target_) {
      if (c_widens_ != nullptr) {
        c_widens_->AddControl();
      } else {
        ++report_.widens;
      }
    }
    target_ = next;
  }
  if (g_width_ != nullptr) g_width_->Set(static_cast<int64_t>(target_));
  return target_;
}

}  // namespace chiller::migrate
