#include "migrate/migration_governor.h"

#include <algorithm>

#include "common/logging.h"

namespace chiller::migrate {

MigrationGovernor::MigrationGovernor(MigrationGovernorOptions options,
                                     uint32_t initial_streams)
    : opts_(options) {
  CHILLER_CHECK(opts_.min_streams >= 1);
  CHILLER_CHECK(opts_.min_streams <= opts_.max_streams);
  CHILLER_CHECK(opts_.max_abort_share >= 0.0 && opts_.max_abort_share <= 1.0);
  target_ = std::clamp(initial_streams, opts_.min_streams, opts_.max_streams);
}

uint32_t MigrationGovernor::Decide(const GovernorSignals& signals) {
  ++report_.decisions;
  const uint64_t outcomes = signals.commits + signals.migration_aborts;
  const double abort_share =
      outcomes == 0
          ? 0.0
          : static_cast<double>(signals.migration_aborts) /
                static_cast<double>(outcomes);
  const bool latency_violated =
      opts_.p99_budget > 0 && signals.p99 > opts_.p99_budget;
  const bool aborts_violated = abort_share > opts_.max_abort_share;
  if (latency_violated || aborts_violated) {
    const uint32_t next = std::max(opts_.min_streams, target_ / 2);
    if (next < target_) ++report_.narrows;
    target_ = next;
  } else {
    const uint32_t next = std::min(opts_.max_streams, target_ + 1);
    if (next > target_) ++report_.widens;
    target_ = next;
  }
  return target_;
}

}  // namespace chiller::migrate
