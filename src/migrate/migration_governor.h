// MigrationGovernor: the SLO-driven pacer for concurrent relayout streams.
//
// The LiveMigrator exposes one live knob — how many relayout buckets are
// in flight at once (SetTargetStreams). The governor turns that knob once
// per controller epoch from two foreground signals measured over the
// epoch just closed:
//
//   * abort pressure — the share of foreground outcomes the bucket gate
//     turned into migration aborts (migration_aborts /
//     (commits + migration_aborts));
//   * commit latency — the p99 of foreground commit latency, against a
//     spec'd budget.
//
// The policy is AIMD, the shape throughput-vs-pressure trades want (see
// the transaction-scheduling line of work in PAPERS.md): every calm epoch
// widens by one stream (additive increase, so relayout tends toward ~1/k
// of the serial window on calm workloads), any violated budget halves the
// width (multiplicative decrease, floor min_streams) so a latency or
// abort spike sheds migration pressure within one epoch. Decisions are a
// pure function of the signals, so governed runs stay byte-identical for
// any shard count.
#ifndef CHILLER_MIGRATE_MIGRATION_GOVERNOR_H_
#define CHILLER_MIGRATE_MIGRATION_GOVERNOR_H_

#include <cstdint>

#include "common/types.h"
#include "obs/metrics_registry.h"

namespace chiller::migrate {

struct MigrationGovernorOptions {
  uint32_t min_streams = 1;
  uint32_t max_streams = 8;
  /// Foreground commit-latency p99 budget per epoch; 0 disables the
  /// latency signal (abort share still governs).
  SimTime p99_budget = 0;
  /// Largest tolerated share of foreground outcomes aborted by the
  /// migration bucket gate per epoch, in [0, 1].
  double max_abort_share = 0.05;
};

/// One epoch's foreground observations, as deltas over the epoch.
struct GovernorSignals {
  uint64_t commits = 0;
  uint64_t migration_aborts = 0;
  /// Foreground commit-latency p99 over the epoch; 0 when no commits
  /// landed (treated as calm — an idle epoch is not a latency violation).
  SimTime p99 = 0;
};

struct MigrationGovernorReport {
  uint32_t decisions = 0;
  uint32_t widens = 0;   ///< epochs that grew the stream width
  uint32_t narrows = 0;  ///< epochs that halved it
};

class MigrationGovernor {
 public:
  /// With a registry, the decision/widen/narrow counters live in named
  /// registry counters ("governor.*") and report() derives from them by
  /// base-diff — a governor reconstructed each relayout keeps accumulating
  /// into the same cluster-wide handles, and the stream-width gauge lands
  /// on the trace timeline via registry snapshots. Without one (unit
  /// tests), plain members back the report; the bytes are identical.
  MigrationGovernor(MigrationGovernorOptions options, uint32_t initial_streams,
                    obs::MetricsRegistry* registry = nullptr);

  /// Folds one epoch's signals into the width and returns the new target
  /// (feed it straight to LiveMigrator::SetTargetStreams).
  uint32_t Decide(const GovernorSignals& signals);

  uint32_t target() const { return target_; }
  const MigrationGovernorReport& report() const;

 private:
  MigrationGovernorOptions opts_;
  uint32_t target_;
  mutable MigrationGovernorReport report_;
  // Registry-backed counters (null without a registry) and this
  // governor's base offsets into them.
  obs::MetricsRegistry::Counter* c_decisions_ = nullptr;
  obs::MetricsRegistry::Counter* c_widens_ = nullptr;
  obs::MetricsRegistry::Counter* c_narrows_ = nullptr;
  obs::MetricsRegistry::Gauge* g_width_ = nullptr;
  uint64_t base_decisions_ = 0;
  uint64_t base_widens_ = 0;
  uint64_t base_narrows_ = 0;
};

}  // namespace chiller::migrate

#endif  // CHILLER_MIGRATE_MIGRATION_GOVERNOR_H_
