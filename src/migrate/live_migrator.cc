#include "migrate/live_migrator.h"

#include <algorithm>
#include <map>
#include <utility>

#include "common/logging.h"
#include "storage/lock_word.h"

namespace chiller::migrate {

namespace {

/// True when the storage bucket owning `rid` at partition `p` holds no
/// lock word — the extract/install precondition.
bool StorageBucketFree(cc::Cluster* cluster, PartitionId p,
                       const RecordId& rid) {
  storage::Table* table = cluster->primary(p)->table(rid.table);
  return storage::LockWord::IsFree(table->BucketFor(rid.key)->lock_word());
}

}  // namespace

LiveMigrator::LiveMigrator(cc::Cluster* cluster, cc::ReplicationManager* repl,
                           partition::SwappablePartitioner* live,
                           LiveMigratorOptions options)
    : cluster_(cluster),
      repl_(repl),
      live_(live),
      locks_(cluster->bucket_locks()),
      opts_(options) {
  CHILLER_CHECK(opts_.batch_records >= 1);
  CHILLER_CHECK(opts_.retry_interval >= 1);
  obs::MetricsRegistry* reg = cluster_->metrics();
  g_streams_ = reg->GetGauge("migrate.active_streams");
  c_batches_ = reg->GetCounter("migrate.batches");
  c_buckets_moved_ = reg->GetCounter("migrate.buckets_moved");
  c_moved_records_ = reg->GetCounter("migrate.moved_records");
}

Status LiveMigrator::Start(
    MigrationPlan plan, std::unique_ptr<partition::RecordPartitioner> next) {
  if (running_) {
    return Status::FailedPrecondition("a live migration is already running");
  }
  if (locks_->epoch_active()) {
    return Status::FailedPrecondition(
        "another relayout epoch is in flight on this cluster");
  }
  if (live_->in_transition()) {
    return Status::FailedPrecondition(
        "the live partitioner is already mid-transition");
  }
  plan_ = std::move(plan);
  stats_ = LiveMigrationStats{};
  start_time_ = cluster_->sim()->now();
  outstanding_.assign(plan_.units.size(), 0);
  next_unit_ = 0;
  active_units_ = 0;
  target_streams_ = std::max<uint32_t>(1, opts_.streams);
  running_ = true;
  done_ = false;

  live_->BeginTransition(std::move(next), plan_.num_buckets);
  locks_->BeginEpoch(plan_.num_buckets);
  PumpStreams();  // fills the first min(streams, units) slots; an empty
                  // plan closes the epoch right here
  return Status::OK();
}

void LiveMigrator::SetTargetStreams(uint32_t streams) {
  target_streams_ = std::max<uint32_t>(1, streams);
  if (running_) PumpStreams();
}

void LiveMigrator::PumpStreams() {
  if (pumping_) return;
  pumping_ = true;
  while (running_ && active_units_ < target_streams_ &&
         next_unit_ < plan_.units.size()) {
    ++active_units_;
    g_streams_->Set(static_cast<int64_t>(active_units_));
    stats_.peak_streams = std::max(stats_.peak_streams,
                                   static_cast<uint32_t>(active_units_));
    // BeginUnit can finish synchronously (all planned moves vanished) and
    // re-enter PumpStreams; the guard makes that a no-op and the loop
    // condition re-reads the decremented active_units_.
    BeginUnit(next_unit_++);
  }
  pumping_ = false;
  if (running_ && active_units_ == 0 && next_unit_ == plan_.units.size()) {
    FinishAll();
  }
}

void LiveMigrator::BeginUnit(size_t u) {
  locks_->Acquire(plan_.units[u].bucket);
  LaunchBatches(u);
}

void LiveMigrator::LaunchBatches(size_t u) {
  const MoveUnit& unit = plan_.units[u];

  // Per-(from, to) grouping in deterministic pair order, split into
  // batches of at most batch_records. Batch bytes come from the records'
  // current images; they are a transfer-cost estimate — the authoritative
  // images are extracted at arrival, inside the atomic move event.
  std::map<std::pair<PartitionId, PartitionId>, std::vector<RecordMove>>
      groups;
  for (const RecordMove& mv : unit.moves) {
    groups[{mv.from, mv.to}].push_back(mv);
  }

  std::vector<std::shared_ptr<Batch>> batches;
  for (auto& [pair, moves] : groups) {
    (void)pair;
    for (size_t begin = 0; begin < moves.size();
         begin += opts_.batch_records) {
      const size_t end =
          std::min(moves.size(), begin + opts_.batch_records);
      auto batch = std::make_shared<Batch>();
      batch->unit_index = u;
      batch->moves.assign(moves.begin() + static_cast<ptrdiff_t>(begin),
                          moves.begin() + static_cast<ptrdiff_t>(end));
      batch->bytes = cc::kMigrationBatchHeaderBytes;
      for (const RecordMove& mv : batch->moves) {
        const storage::Record* rec = cluster_->primary(mv.from)->Find(mv.rid);
        if (rec != nullptr) {
          batch->bytes += cc::kMigrationPerRecordOverheadBytes +
                          rec->wire_bytes();
        }
      }
      batches.push_back(std::move(batch));
    }
  }

  if (batches.empty()) {
    // Every planned move of this bucket vanished before launch.
    stats_.skipped_records += unit.moves.size();
    FinishUnit(u);
    return;
  }

  outstanding_[u] = batches.size();
  for (auto& batch : batches) {
    const PartitionId from = batch->moves.front().from;
    const PartitionId to = batch->moves.front().to;
    const EngineId from_engine = cluster_->topology().EngineOfPartition(from);
    const EngineId to_engine = cluster_->topology().EngineOfPartition(to);
    const SimTime install_cost =
        cluster_->costs().replica_apply *
        static_cast<SimTime>(batch->moves.size());
    ++stats_.batches;
    c_batches_->AddControl();
    // The transfer itself rides the normal rpc path for cost realism, but
    // the completion touches both partitions' stores, the bucket-lock
    // table and the migrator's own state — control-plane work. Hop there
    // on arrival; the control event lands at the next window boundary,
    // where every engine is paused.
    cluster_->rpc()->Send(
        from_engine, to_engine, batch->bytes, install_cost, [this, batch]() {
          cluster_->sim()->ScheduleControl(
              0, [this, batch]() { TryCompleteBatch(batch); });
        });
  }
}

void LiveMigrator::TryCompleteBatch(std::shared_ptr<Batch> batch) {
  // The atomic move below must not slide records out from under a held
  // storage-bucket lock. Wait for every involved lock word (source and
  // target side) to be free, rechecking on a short interval. The
  // relayout-bucket gate keeps *this* bucket's keys from taking new
  // locks, but keys of other relayout buckets sharing a storage bucket
  // can keep re-locking it — after freeze_after_retries rechecks the
  // batch escalates and freezes the exact storage buckets it needs in
  // the BucketLockTable (new lockers on them abort like any
  // migration-blocked access), which makes the drain terminate.
  bool all_free = true;
  for (const RecordMove& mv : batch->moves) {
    if (!StorageBucketFree(cluster_, mv.from, mv.rid) ||
        !StorageBucketFree(cluster_, mv.to, mv.rid)) {
      all_free = false;
      break;
    }
  }
  if (!all_free) {
    ++stats_.lock_retries;
    // >= so a batch whose freeze was beaten to a bucket by a sibling batch
    // (and lifted when that sibling completed) re-escalates on its next
    // recheck; the IsStorageBucketFrozen guard keeps ownership exclusive.
    if (++batch->retries >= opts_.freeze_after_retries) {
      bool froze_any = false;
      for (const RecordMove& mv : batch->moves) {
        for (const PartitionId p : {mv.from, mv.to}) {
          const BucketLockTable::StorageBucketKey key{
              p, mv.rid.table,
              cluster_->primary(p)->table(mv.rid.table)
                  ->BucketIndex(mv.rid.key)};
          if (!locks_->IsStorageBucketFrozen(key)) {
            locks_->FreezeStorageBucket(key);
            batch->frozen.push_back(key);
            froze_any = true;
          }
        }
      }
      if (froze_any) ++stats_.freezes;
    }
    cluster_->sim()->ScheduleControl(
        opts_.retry_interval, [this, batch]() { TryCompleteBatch(batch); });
    return;
  }

  // Atomic move: extract + install every record of the batch inside this
  // single control event (every engine paused). No other event can observe
  // the intermediate state, so conservation and single residency hold at
  // every instant.
  const PartitionId from = batch->moves.front().from;
  const PartitionId to = batch->moves.front().to;
  std::vector<cc::ReplUpdate> puts;
  std::vector<cc::ReplUpdate> erases;
  puts.reserve(batch->moves.size());
  erases.reserve(batch->moves.size());
  // Bytes are accounted from the records actually extracted (matching the
  // quiesced path's accounting); batch->bytes was only the launch-time
  // transfer-cost estimate and may include records that vanished since.
  size_t actual_bytes = cc::kMigrationBatchHeaderBytes;
  for (const RecordMove& mv : batch->moves) {
    auto rec = cluster_->ExtractRecord(mv.rid, mv.from);
    if (!rec.ok()) {
      // Deleted since the plan was diffed; nothing to move.
      ++stats_.skipped_records;
      continue;
    }
    const Status st = cluster_->InstallRecord(mv.rid, mv.to, rec.value());
    CHILLER_CHECK(st.ok()) << st.ToString();
    ++stats_.base.moved_records;
    c_moved_records_->AddControl();
    actual_bytes +=
        cc::kMigrationPerRecordOverheadBytes + rec.value().wire_bytes();
    puts.push_back(cc::ReplUpdate{.kind = cc::ReplUpdate::Kind::kPut,
                                  .rid = mv.rid,
                                  .image = std::move(rec).value()});
    erases.push_back(cc::ReplUpdate{.kind = cc::ReplUpdate::Kind::kErase,
                                    .rid = mv.rid,
                                    .image = storage::Record()});
  }
  stats_.base.moved_bytes += actual_bytes;

  for (const BucketLockTable::StorageBucketKey& key : batch->frozen) {
    locks_->UnfreezeStorageBucket(key);
  }
  batch->frozen.clear();

  const size_t u = batch->unit_index;
  if (!puts.empty()) {
    const EngineId from_engine = cluster_->topology().EngineOfPartition(from);
    const EngineId to_engine = cluster_->topology().EngineOfPartition(to);
    // The new primary streams the images to its replicas; the old
    // primary's replicas drop their stale copies. Sourcing the erases at
    // the old primary's engine keeps them FIFO-behind any commit
    // replication still in flight from pre-lock transactions.
    outstanding_[u] += 2;
    // The acks land in the ack engines' domains; OnUnitEvent mutates
    // migrator state and may flip the bucket, so bounce it to control.
    repl_->Replicate(to_engine, to, std::move(puts), to_engine, [this, u]() {
      cluster_->sim()->ScheduleControl(0, [this, u]() { OnUnitEvent(u); });
    });
    repl_->Replicate(from_engine, from, std::move(erases), from_engine,
                     [this, u]() {
                       cluster_->sim()->ScheduleControl(
                           0, [this, u]() { OnUnitEvent(u); });
                     });
  }
  OnUnitEvent(u);  // the batch itself has landed
}

void LiveMigrator::OnUnitEvent(size_t u) {
  CHILLER_CHECK(outstanding_[u] > 0);
  if (--outstanding_[u] == 0) FinishUnit(u);
}

void LiveMigrator::FinishUnit(size_t u) {
  // Flip + unlock in the same event as the last settle: a transaction
  // retrying after a migration abort resolves placement against the new
  // layout the moment the bucket reopens.
  live_->FlipBucket(plan_.units[u].bucket);
  locks_->Release(plan_.units[u].bucket);
  ++stats_.buckets_moved;
  c_buckets_moved_->AddControl();
  CHILLER_CHECK(active_units_ > 0);
  --active_units_;
  g_streams_->Set(static_cast<int64_t>(active_units_));
  // Refill the freed slot from the plan cursor (or close the epoch if this
  // was the last unit). With target_streams_ == 1 this is exactly the old
  // sequential BeginUnit(u + 1) walk, event for event.
  PumpStreams();
}

void LiveMigrator::FinishAll() {
  live_->FinishTransition();
  locks_->EndEpoch();
  stats_.base.sim_time = cluster_->sim()->now() - start_time_;
  running_ = false;
  done_ = true;
}

}  // namespace chiller::migrate
