// MigrationPlan: the diff between the cluster's current physical record
// placement and a target layout, grouped into per-relayout-bucket move
// units — the schedule both migration paths execute (cc::MigrateToLayout
// runs the whole plan under a quiesced cluster; migrate::LiveMigrator
// streams up to `streams` buckets of it concurrently under live traffic).
#ifndef CHILLER_MIGRATE_MIGRATION_PLAN_H_
#define CHILLER_MIGRATE_MIGRATION_PLAN_H_

#include <vector>

#include "cc/cluster.h"
#include "migrate/relayout.h"
#include "partition/lookup_table.h"

namespace chiller::migrate {

/// One record that must change primaries.
struct RecordMove {
  RecordId rid;
  PartitionId from = kInvalidPartition;
  PartitionId to = kInvalidPartition;

  friend bool operator==(const RecordMove&, const RecordMove&) = default;
};

/// All moves of one relayout bucket — the unit the live migrator locks,
/// ships, and flips atomically with respect to transaction traffic.
struct MoveUnit {
  BucketId bucket = 0;
  std::vector<RecordMove> moves;
};

struct MigrationPlan {
  /// The relayout bucket space this plan was diffed over. Must match the
  /// BucketLockTable epoch and the SwappablePartitioner transition.
  uint32_t num_buckets = 1;

  /// Units in ascending bucket order; buckets with no placement diffs are
  /// omitted (they flip implicitly when the transition finishes). Within a
  /// unit, moves follow the deterministic partition/table/bucket scan
  /// order of the diff.
  std::vector<MoveUnit> units;

  size_t total_moves() const {
    size_t n = 0;
    for (const MoveUnit& u : units) n += u.moves.size();
    return n;
  }

  /// Scans every primary record and diffs its current residency against
  /// `target`. Records already present at their target primary are records
  /// loaded everywhere (fully replicated read-only tables): their placement
  /// is "everywhere" and they never move. With num_buckets == 1 the plan
  /// degenerates to a single unit holding the whole diff in scan order —
  /// exactly the legacy quiesced schedule.
  static MigrationPlan Diff(cc::Cluster* cluster,
                            const partition::RecordPartitioner& target,
                            uint32_t num_buckets);
};

}  // namespace chiller::migrate

#endif  // CHILLER_MIGRATE_MIGRATION_PLAN_H_
