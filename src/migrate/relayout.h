// Relayout buckets: the unit of incremental live migration.
//
// A relayout epoch partitions the record-id space into `num_buckets`
// hash buckets (independent of the storage-level hash buckets inside a
// Table). The LiveMigrator streams up to k relayout buckets concurrently;
// the BucketLockTable below is the coordination point between the migrator
// and the execution protocols: while a bucket is in flight, any transaction
// access landing in it aborts with the dedicated migration abort class
// (txn::Transaction::blocked_by_migration) and retries through the load
// model's normal backoff, while traffic on every other bucket flows freely.
//
// This header is deliberately leaf-level (common/ only): cc::Cluster owns
// the table, partition::SwappablePartitioner shares the same bucket space
// for its per-bucket layout indirection, and src/migrate builds the plan
// and the mover on top.
#ifndef CHILLER_MIGRATE_RELAYOUT_H_
#define CHILLER_MIGRATE_RELAYOUT_H_

#include <set>
#include <tuple>
#include <unordered_set>

#include "common/logging.h"
#include "common/types.h"

namespace chiller::migrate {

/// Index of a relayout bucket within one epoch's bucket space.
using BucketId = uint32_t;

/// The record's relayout bucket: a pure function of (rid, num_buckets), so
/// the plan, the lock table, and the partitioner indirection always agree.
inline BucketId RelayoutBucketOf(const RecordId& rid, uint32_t num_buckets) {
  CHILLER_DCHECK(num_buckets > 0);
  return static_cast<BucketId>(RecordIdHash{}(rid) % num_buckets);
}

/// Bucket-granular migration locks, shared between the LiveMigrator (the
/// only writer) and the execution protocols (readers, via
/// cc::Cluster::bucket_locks). Not a mutual-exclusion lock in the thread
/// sense — the simulator is single-threaded — but an abort gate: a locked
/// bucket makes every transaction access in it fail its attempt.
class BucketLockTable {
 public:
  /// Opens a relayout epoch over `num_buckets` buckets. One epoch at a
  /// time: the migrator serializes relayouts.
  void BeginEpoch(uint32_t num_buckets) {
    CHILLER_CHECK(!active_) << "a relayout epoch is already in flight";
    CHILLER_CHECK(num_buckets > 0);
    num_buckets_ = num_buckets;
    active_ = true;
    ever_active_ = true;
  }

  /// Closes the epoch; every bucket must have been released and every
  /// escalated storage-bucket freeze lifted.
  void EndEpoch() {
    CHILLER_CHECK(active_) << "no relayout epoch to end";
    CHILLER_CHECK(locked_.empty()) << "epoch ended with buckets still locked";
    CHILLER_CHECK(frozen_.empty()) << "epoch ended with frozen storage buckets";
    active_ = false;
  }

  bool epoch_active() const { return active_; }

  /// True once the cluster's layout has ever been mutated — by a live
  /// relayout epoch or by a quiesced swap (the runner's migrate phase
  /// calls NoteLayoutMutation). Protocols use this as a zero-cost gate:
  /// scenarios on a frozen layout skip the per-access migration checks
  /// entirely (byte-identical legacy behavior), and layout-assumption
  /// violations (e.g. Chiller's co-location contract) degrade gracefully
  /// instead of crashing only when this is set.
  bool ever_active() const { return ever_active_; }

  /// Records that a quiesced whole-layout swap mutated the layout without
  /// opening an epoch (see ever_active()).
  void NoteLayoutMutation() { ever_active_ = true; }

  /// Marks bucket `b` in flight. Multi-bucket contract: the migrator holds
  /// up to its stream width (target_streams) concurrently; each bucket is
  /// acquired at most once per epoch (double-Acquire is a CHECK failure),
  /// buckets lock and release in any interleaving, and storage-bucket
  /// freezes are independent of bucket locks (a freeze may outlive or
  /// precede any particular bucket's release, as long as every freeze is
  /// lifted before EndEpoch). IsMigrating answers over the union of all
  /// locked buckets.
  void Acquire(BucketId b) {
    CHILLER_CHECK(active_) << "Acquire outside a relayout epoch";
    CHILLER_CHECK(b < num_buckets_);
    CHILLER_CHECK(locked_.insert(b).second) << "bucket already locked";
  }

  void Release(BucketId b) {
    CHILLER_CHECK(locked_.erase(b) == 1) << "bucket not locked";
  }

  /// The protocol-side check: is `rid`'s relayout bucket in flight?
  bool IsMigrating(const RecordId& rid) const {
    if (locked_.empty()) return false;
    return locked_.contains(RelayoutBucketOf(rid, num_buckets_));
  }

  size_t locked_buckets() const { return locked_.size(); }

  // --- storage-bucket freeze escalation ------------------------------------
  // The relayout-bucket gate cannot drain *storage*-bucket lock words:
  // keys from other relayout buckets may share a storage bucket with a
  // moving record and keep re-locking it. When a batch has waited too
  // long, the migrator freezes the specific storage buckets it needs —
  // new lockers on them abort like migration-blocked accesses, existing
  // holders finish, and the batch is guaranteed to observe a free
  // instant. Empty in the common case, so the protocol-side check is one
  // branch.

  /// One storage bucket: (partition, table, bucket index within table).
  using StorageBucketKey = std::tuple<PartitionId, TableId, size_t>;

  void FreezeStorageBucket(const StorageBucketKey& key) {
    CHILLER_CHECK(active_) << "freeze outside a relayout epoch";
    frozen_.insert(key);
  }
  void UnfreezeStorageBucket(const StorageBucketKey& key) {
    frozen_.erase(key);
  }
  bool HasFrozenStorageBuckets() const { return !frozen_.empty(); }
  bool IsStorageBucketFrozen(const StorageBucketKey& key) const {
    return frozen_.contains(key);
  }

 private:
  uint32_t num_buckets_ = 0;
  bool active_ = false;
  bool ever_active_ = false;
  std::unordered_set<BucketId> locked_;
  std::set<StorageBucketKey> frozen_;
};

}  // namespace chiller::migrate

#endif  // CHILLER_MIGRATE_RELAYOUT_H_
