#include "migrate/adaptive_controller.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"
#include "partition/chiller_partitioner.h"
#include "partition/metrics.h"
#include "partition/stats_collector.h"

namespace chiller::migrate {

AdaptiveController::AdaptiveController(cc::Driver* driver,
                                       cc::Cluster* cluster,
                                       cc::ReplicationManager* repl,
                                       partition::SwappablePartitioner* live,
                                       AdaptiveControllerOptions options)
    : driver_(driver),
      cluster_(cluster),
      repl_(repl),
      live_(live),
      opts_(options) {
  CHILLER_CHECK(opts_.period > 0);
  CHILLER_CHECK(opts_.sample_rate > 0.0 && opts_.sample_rate <= 1.0);
  CHILLER_CHECK(opts_.drift_threshold >= 0.0);
  CHILLER_CHECK(opts_.hysteresis_epochs >= 1);
  CHILLER_CHECK(opts_.relayout_buckets >= 1);
}

AdaptiveController::~AdaptiveController() = default;

StatusOr<SimTime> AdaptiveController::RunFor(
    SimTime duration, const std::function<void(SimTime)>& advance) {
  auto step = [&](SimTime d) {
    if (advance) {
      advance(d);
    } else {
      driver_->Advance(d);
    }
  };

  SimTime advanced = 0;
  while (advanced < duration) {
    const SimTime this_step = std::min(opts_.period, duration - advanced);
    const bool migrating = migrator_ != nullptr && !migrator_->done();
    if (!report_.settled && !migrating) {
      // One collector for the whole run — the statistics service's view of
      // the workload only grows (paper Section 4.1), which is what lets a
      // stable workload converge: single-epoch samples are thin enough
      // that every fresh candidate would genuinely beat the last noisy
      // one, and the loop would churn forever.
      if (collector_ == nullptr) {
        collector_ = std::make_unique<partition::StatsCollector>(
            opts_.sample_rate, opts_.seed);
        collector_->set_retain_traces(true);
        // Commit observers fire from the committing engine's shard
        // thread; per-engine shards keep the sampled stream independent
        // of the simulator's shard count.
        collector_->EnableEngineSharding(cluster_->num_engines());
      }
      partition::StatsCollector* stats = collector_.get();
      driver_->SetCommitObserver(
          [stats](const txn::Transaction& t) { stats->Observe(t); });
    }
    step(this_step);
    advanced += this_step;
    ++report_.epochs;
    CloseEpoch();
  }

  // Never hand control back mid-transition: routing must be collapsed
  // before the caller reads final state.
  while (migrator_ != nullptr && !migrator_->done()) {
    step(opts_.period);
    advanced += opts_.period;
    ++report_.epochs;
    CloseEpoch();
  }
  return advanced;
}

void AdaptiveController::CloseEpoch() {
  if (migrator_ != nullptr && migrator_->done()) {
    // Harvest the finished relayout's accounting exactly once. No replan
    // this epoch — it sampled nothing while the relayout ran.
    const LiveMigrationStats& ms = migrator_->stats();
    report_.moved_records += ms.base.moved_records;
    report_.moved_bytes += ms.base.moved_bytes;
    report_.migration_sim_time += ms.base.sim_time;
    report_.buckets_moved += ms.buckets_moved;
    if (report_.first_migration_start == 0) {
      report_.first_migration_start = migration_start_;
    }
    // Harvest boundary, not the exact in-flight end: the window counters
    // below are read here, so span and counters describe the same
    // interval (the exact span lives in migration_sim_time).
    report_.last_migration_end = cluster_->sim()->now();
    report_.window_commits +=
        driver_->lifetime_commits() - commits_at_start_;
    report_.window_aborts +=
        driver_->lifetime_migration_aborts() - aborts_at_start_;
    migrator_.reset();
    return;
  }
  if (report_.settled || migrator_ != nullptr) return;
  if (collector_ == nullptr) return;

  driver_->SetCommitObserver(nullptr);
  report_.sampled_txns = collector_->sampled_txns();

  // Holdout split over the cumulative trace set: the candidate trains on
  // the even-indexed traces and both layouts are scored on the odd-indexed
  // ones. Without the split, the candidate is evaluated on its own
  // training sample and "improves" by its overfit margin every epoch —
  // the controller would re-migrate a stable workload forever.
  const std::vector<partition::TxnAccessTrace>& all = collector_->traces();
  std::vector<partition::TxnAccessTrace> train;
  std::vector<partition::TxnAccessTrace> eval;
  train.reserve(all.size() / 2 + 1);
  eval.reserve(all.size() / 2);
  for (size_t i = 0; i < all.size(); ++i) {
    (i % 2 == 0 ? train : eval).push_back(all[i]);
  }

  partition::ChillerPartitioner::Options popts;
  popts.k = cluster_->topology().num_partitions();
  popts.seed = opts_.seed;
  popts.hot_threshold = opts_.hot_threshold;
  popts.lock_window_txns = opts_.lock_window_txns;
  auto out = partition::ChillerPartitioner::Build(train, popts);

  // Drift: the relative residual-contention improvement the candidate
  // layout delivers on the held-out traces. Cost-based rather than
  // placement-diff-based on purpose — the min-cut has many symmetric
  // optima, and a converged layout must read as "no drift" even when the
  // candidate relabels partitions. A relayout only starts when it would
  // actually pay (the reaction-worth-the-cost rule of the production
  // loop).
  const double live_cost = partition::ResidualContention(
      eval, *live_, *collector_, opts_.lock_window_txns);
  const double cand_cost = partition::ResidualContention(
      eval, *out.partitioner, *collector_, opts_.lock_window_txns);
  const double drift =
      live_cost <= 0.0 ? 0.0 : (live_cost - cand_cost) / live_cost;

  MigrationPlan plan;
  if (drift > opts_.drift_threshold) {
    plan = MigrationPlan::Diff(cluster_, *out.partitioner,
                               opts_.relayout_buckets);
  }
  if (plan.total_moves() > 0) {
    calm_epochs_ = 0;
    migrator_ = std::make_unique<LiveMigrator>(cluster_, repl_, live_,
                                               opts_.migrator);
    migration_start_ = cluster_->sim()->now();
    commits_at_start_ = driver_->lifetime_commits();
    aborts_at_start_ = driver_->lifetime_migration_aborts();
    const Status st =
        migrator_->Start(std::move(plan), std::move(out.partitioner));
    CHILLER_CHECK(st.ok()) << st.ToString();
    ++report_.migrations;
  } else if (++calm_epochs_ >= opts_.hysteresis_epochs) {
    report_.settled = true;
  }
}

}  // namespace chiller::migrate
