#include "migrate/adaptive_controller.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"
#include "partition/chiller_partitioner.h"
#include "partition/metrics.h"
#include "partition/stats_collector.h"

namespace chiller::migrate {

namespace {

/// Settled-epoch probes thinner than this are too noisy to judge a regime
/// shift; skip the comparison and keep the baseline.
constexpr size_t kMinProbeTraces = 8;

}  // namespace

AdaptiveController::AdaptiveController(cc::Driver* driver,
                                       cc::Cluster* cluster,
                                       cc::ReplicationManager* repl,
                                       partition::SwappablePartitioner* live,
                                       AdaptiveControllerOptions options)
    : driver_(driver),
      cluster_(cluster),
      repl_(repl),
      live_(live),
      opts_(options) {
  CHILLER_CHECK(opts_.period > 0);
  CHILLER_CHECK(opts_.sample_rate > 0.0 && opts_.sample_rate <= 1.0);
  CHILLER_CHECK(opts_.drift_threshold >= 0.0);
  CHILLER_CHECK(opts_.hysteresis_epochs >= 1);
  CHILLER_CHECK(opts_.relayout_buckets >= 1);
  CHILLER_CHECK(opts_.rearm_threshold >= 0.0);
  obs::MetricsRegistry* reg = cluster_->metrics();
  c_epochs_ = reg->GetCounter("controller.epochs");
  c_migrations_ = reg->GetCounter("controller.migrations");
  c_rearms_ = reg->GetCounter("controller.rearms");
  if (opts_.governor) {
    // The governor's option checks fire here, at construction.
    governor_ = std::make_unique<MigrationGovernor>(
        opts_.governor_opts, std::max<uint32_t>(1, opts_.migrator.streams),
        reg);
  }
}

AdaptiveController::~AdaptiveController() = default;

void AdaptiveController::BeginEpoch() {
  const bool migrating = migrator_ != nullptr && !migrator_->done();
  if (!report_.settled && !migrating) {
    // One collector for the whole hunt — the statistics service's view of
    // the workload only grows (paper Section 4.1), which is what lets a
    // stable workload converge: single-epoch samples are thin enough
    // that every fresh candidate would genuinely beat the last noisy
    // one, and the loop would churn forever. A re-arm retires it, so a
    // shifted regime is not anchored by the old one's traces.
    if (collector_ == nullptr) {
      collector_ = std::make_unique<partition::StatsCollector>(
          opts_.sample_rate, opts_.seed);
      collector_->set_retain_traces(true);
      // Commit observers fire from the committing engine's shard
      // thread; per-engine shards keep the sampled stream independent
      // of the simulator's shard count.
      collector_->EnableEngineSharding(cluster_->num_engines());
    }
    partition::StatsCollector* stats = collector_.get();
    driver_->SetCommitObserver(
        [stats](const txn::Transaction& t) { stats->Observe(t); });
  } else if (report_.settled && opts_.rearm_threshold > 0.0) {
    // Drift probe: a fresh collector per settled epoch, so the live
    // layout's residual is scored on *current* traffic only. Seed salted
    // per epoch to decorrelate the probes' sampling streams.
    probe_ = std::make_unique<partition::StatsCollector>(
        opts_.sample_rate,
        opts_.seed ^ (0x9e3779b97f4a7c15ull * (report_.epochs + 1)));
    probe_->set_retain_traces(true);
    probe_->EnableEngineSharding(cluster_->num_engines());
    partition::StatsCollector* stats = probe_.get();
    driver_->SetCommitObserver(
        [stats](const txn::Transaction& t) { stats->Observe(t); });
  }
  if (migrating && governor_ != nullptr) {
    // Epoch-start snapshots for the governor's signals; draining the
    // latency window here scopes its p99 to this epoch alone.
    epoch_commits_ = driver_->lifetime_commits();
    epoch_aborts_ = driver_->lifetime_migration_aborts();
    driver_->TakeCommitLatencyWindow();
  }
}

StatusOr<SimTime> AdaptiveController::RunFor(
    SimTime duration, const std::function<void(SimTime)>& advance) {
  auto step = [&](SimTime d) {
    if (advance) {
      advance(d);
    } else {
      driver_->Advance(d);
    }
  };

  SimTime advanced = 0;
  while (advanced < duration) {
    const SimTime this_step = std::min(opts_.period, duration - advanced);
    BeginEpoch();
    step(this_step);
    advanced += this_step;
    ++report_.epochs;
    c_epochs_->AddControl();
    CloseEpoch();
  }

  // Never hand control back mid-transition: routing must be collapsed
  // before the caller reads final state.
  while (migrator_ != nullptr && !migrator_->done()) {
    BeginEpoch();
    step(opts_.period);
    advanced += opts_.period;
    ++report_.epochs;
    c_epochs_->AddControl();
    CloseEpoch();
  }
  return advanced;
}

void AdaptiveController::CloseEpoch() {
  if (migrator_ != nullptr && migrator_->done()) {
    // Harvest the finished relayout's accounting exactly once. No replan
    // this epoch — it sampled nothing while the relayout ran.
    const LiveMigrationStats& ms = migrator_->stats();
    report_.moved_records += ms.base.moved_records;
    report_.moved_bytes += ms.base.moved_bytes;
    report_.migration_sim_time += ms.base.sim_time;
    report_.buckets_moved += ms.buckets_moved;
    if (report_.first_migration_start == 0) {
      report_.first_migration_start = migration_start_;
    }
    // Harvest boundary, not the exact in-flight end: the window counters
    // below are read here, so span and counters describe the same
    // interval (the exact span lives in migration_sim_time).
    report_.last_migration_end = cluster_->sim()->now();
    report_.window_commits +=
        driver_->lifetime_commits() - commits_at_start_;
    report_.window_aborts +=
        driver_->lifetime_migration_aborts() - aborts_at_start_;
    report_.peak_streams =
        std::max(report_.peak_streams, ms.peak_streams);
    migrator_.reset();
    return;
  }
  if (migrator_ != nullptr) {
    // Mid-relayout epoch: no replanning (nothing sampled), but the
    // governor folds this epoch's foreground signals into the stream
    // width. The decision is a pure function of shard-invariant counters,
    // so governed runs stay byte-identical for any shard count.
    if (governor_ != nullptr) {
      GovernorSignals signals;
      signals.commits = driver_->lifetime_commits() - epoch_commits_;
      signals.migration_aborts =
          driver_->lifetime_migration_aborts() - epoch_aborts_;
      const Histogram window = driver_->TakeCommitLatencyWindow();
      signals.p99 =
          window.count() == 0 ? 0 : window.Percentile(99.0);
      migrator_->SetTargetStreams(governor_->Decide(signals));
      report_.governor_widens = governor_->report().widens;
      report_.governor_narrows = governor_->report().narrows;
    }
    return;
  }
  if (report_.settled) {
    MaybeRearm();
    return;
  }
  if (collector_ == nullptr) return;

  driver_->SetCommitObserver(nullptr);
  report_.sampled_txns = sampled_retired_ + collector_->sampled_txns();

  // Holdout split over the cumulative trace set: the candidate trains on
  // the even-indexed traces and both layouts are scored on the odd-indexed
  // ones. Without the split, the candidate is evaluated on its own
  // training sample and "improves" by its overfit margin every epoch —
  // the controller would re-migrate a stable workload forever.
  const std::vector<partition::TxnAccessTrace>& all = collector_->traces();
  std::vector<partition::TxnAccessTrace> train;
  std::vector<partition::TxnAccessTrace> eval;
  train.reserve(all.size() / 2 + 1);
  eval.reserve(all.size() / 2);
  for (size_t i = 0; i < all.size(); ++i) {
    (i % 2 == 0 ? train : eval).push_back(all[i]);
  }

  partition::ChillerPartitioner::Options popts;
  popts.k = cluster_->topology().num_partitions();
  popts.seed = opts_.seed;
  popts.hot_threshold = opts_.hot_threshold;
  popts.lock_window_txns = opts_.lock_window_txns;
  auto out = partition::ChillerPartitioner::Build(train, popts);

  // Drift: the relative residual-contention improvement the candidate
  // layout delivers on the held-out traces. Cost-based rather than
  // placement-diff-based on purpose — the min-cut has many symmetric
  // optima, and a converged layout must read as "no drift" even when the
  // candidate relabels partitions. A relayout only starts when it would
  // actually pay (the reaction-worth-the-cost rule of the production
  // loop).
  const double live_cost = partition::ResidualContention(
      eval, *live_, *collector_, opts_.lock_window_txns);
  const double cand_cost = partition::ResidualContention(
      eval, *out.partitioner, *collector_, opts_.lock_window_txns);
  const double drift =
      live_cost <= 0.0 ? 0.0 : (live_cost - cand_cost) / live_cost;
  report_.last_drift = drift;

  if (opts_.shadow) {
    // Zero-risk observer: the candidate is scored (last_drift shows what a
    // relayout would gain) but never executed, and the loop never settles
    // — it keeps scoring for the whole run.
    ++report_.shadow_evals;
    return;
  }

  MigrationPlan plan;
  if (drift > opts_.drift_threshold) {
    plan = MigrationPlan::Diff(cluster_, *out.partitioner,
                               opts_.relayout_buckets);
  }
  if (plan.total_moves() > 0) {
    calm_epochs_ = 0;
    migrator_ = std::make_unique<LiveMigrator>(cluster_, repl_, live_,
                                               opts_.migrator);
    migration_start_ = cluster_->sim()->now();
    commits_at_start_ = driver_->lifetime_commits();
    aborts_at_start_ = driver_->lifetime_migration_aborts();
    const Status st =
        migrator_->Start(std::move(plan), std::move(out.partitioner));
    CHILLER_CHECK(st.ok()) << st.ToString();
    ++report_.migrations;
    c_migrations_->AddControl();
  } else if (++calm_epochs_ >= opts_.hysteresis_epochs) {
    report_.settled = true;
    // The calm-state baseline comes from the first settled probe (same
    // estimator as every later probe, so the comparison is unbiased),
    // not from this epoch's cumulative holdout.
    baseline_residual_ = 0.0;
  }
}

void AdaptiveController::MaybeRearm() {
  if (opts_.rearm_threshold <= 0.0 || probe_ == nullptr) return;
  driver_->SetCommitObserver(nullptr);
  std::unique_ptr<partition::StatsCollector> probe = std::move(probe_);
  sampled_retired_ += probe->sampled_txns();
  report_.sampled_txns =
      sampled_retired_ +
      (collector_ != nullptr ? collector_->sampled_txns() : 0);
  const std::vector<partition::TxnAccessTrace>& traces = probe->traces();
  if (traces.size() < kMinProbeTraces) return;
  // Per-trace normalization: ResidualContention sums over traces, and
  // probes of different epochs catch different trace counts.
  const double live_residual =
      partition::ResidualContention(traces, *live_, *probe,
                                    opts_.lock_window_txns) /
      static_cast<double>(traces.size());
  if (baseline_residual_ <= 0.0 || live_residual < baseline_residual_) {
    // First probe after settling, or a calmer epoch than any seen: this is
    // the calm-state estimate. Ratcheting down (never up) keeps a slow
    // worsening from dragging the baseline along with it.
    baseline_residual_ = live_residual;
    return;
  }
  const double shift =
      (live_residual - baseline_residual_) / baseline_residual_;
  if (shift > opts_.rearm_threshold) {
    // Regime shift: re-arm the full sample -> replan -> migrate loop. The
    // cumulative collector is retired with its traces — the old regime
    // would anchor every candidate the new one trains.
    ++report_.rearms;
    c_rearms_->AddControl();
    report_.settled = false;
    calm_epochs_ = 0;
    baseline_residual_ = 0.0;
    if (collector_ != nullptr) {
      sampled_retired_ += collector_->sampled_txns();
      collector_.reset();
    }
  }
}

}  // namespace chiller::migrate
