// The flight-booking stored procedure of paper Figure 4.
//
// Reserves a seat on a flight and deducts the cost from the customer:
//   f = read(flight, flight_id)            -- hot record
//   c = read_with_wl(customer, cust_id)
//   t = read(tax, c.state)                 -- pk-dep on c
//   if (c.balance >= cost && f.seats > 0):
//     update(f, seats - 1)
//     update(c, balance - cost)            -- v-dep on inner (cost)
//     insert(seats, [flight_id, seat_id])  -- pk-dep on f, co-located
//
// With the flight record hot, the planner puts {fread, fupd, sins} in the
// inner region and {cread, tread, cupd} in the outer region, deferring
// cupd's apply to outer phase 2 — exactly the decomposition in the paper.
#ifndef CHILLER_WORKLOAD_FLIGHT_H_
#define CHILLER_WORKLOAD_FLIGHT_H_

#include <memory>
#include <string>
#include <vector>

#include "cc/driver.h"
#include "partition/lookup_table.h"
#include "storage/record.h"
#include "txn/transaction.h"

namespace chiller::workload {

/// Table ids and record layouts for the flight schema.
struct FlightSchema {
  static constexpr TableId kFlight = 0;   // fields: price, seats
  static constexpr TableId kCustomer = 1; // fields: balance, state, name
  static constexpr TableId kTax = 2;      // fields: rate
  static constexpr TableId kSeats = 3;    // fields: cust_id, cust_name
  /// Seats are keyed flight_id * kSeatStride + seat_index, so the flight id
  /// is recoverable from the key (the co-location guarantee).
  static constexpr Key kSeatStride = 10000;

  static std::vector<storage::TableSpec> Specs();
};

/// Context variable slots used by the procedure's closures.
struct FlightVars {
  static constexpr size_t kBalance = 0;
  static constexpr size_t kState = 1;
  static constexpr size_t kName = 2;
  static constexpr size_t kPrice = 3;
  static constexpr size_t kSeatsLeft = 4;
  static constexpr size_t kTaxRate = 5;
  static constexpr size_t kCost = 6;
  static constexpr size_t kSeatId = 7;
};

/// Builds one booking transaction. params = {flight_id, cust_id}.
std::unique_ptr<txn::Transaction> MakeBookingTxn(Key flight_id, Key cust_id);

/// Partitioner for the flight schema: flights (and their seats, via the key
/// stride) partition by flight id; customers and taxes hash. Marks the
/// `hot_flights` lowest flight ids as hot.
class FlightPartitioner : public partition::RecordPartitioner {
 public:
  FlightPartitioner(uint32_t num_partitions, Key hot_flights)
      : num_partitions_(num_partitions), hot_flights_(hot_flights) {}

  PartitionId PartitionOf(const RecordId& rid) const override;
  bool IsHot(const RecordId& rid) const override;
  size_t LookupEntries() const override {
    return static_cast<size_t>(hot_flights_);
  }

 private:
  uint32_t num_partitions_;
  Key hot_flights_;
};

/// Workload source: a configurable mix of bookings over a small set of hot
/// flights and a long tail of cold ones.
class FlightWorkload : public cc::WorkloadSource {
 public:
  struct Options {
    Key num_flights = 1000;
    Key num_customers = 100000;
    Key num_states = 50;
    Key hot_flights = 10;
    /// Probability a booking targets a hot flight.
    double hot_fraction = 0.8;
    /// Must stay below FlightSchema::kSeatStride so seat keys never collide
    /// across flights (checked at load time).
    int64_t initial_seats = 5000;
    int64_t initial_balance = 1000000;
  };

  explicit FlightWorkload(Options options) : options_(options) {}

  const Options& options() const { return options_; }

  /// Loads flights, customers, taxes into `load` (called once per record).
  void ForEachRecord(
      const std::function<void(const RecordId&, const storage::Record&)>&
          load) const;

  std::unique_ptr<txn::Transaction> Next(PartitionId home, Rng* rng) override;
  std::unique_ptr<txn::Transaction> Rebuild(
      const txn::Transaction& t) override;
  uint32_t NumClasses() const override { return 1; }
  std::string ClassName(uint32_t) const override { return "book"; }

 private:
  Options options_;
};

}  // namespace chiller::workload

#endif  // CHILLER_WORKLOAD_FLIGHT_H_
