#include "workload/flight.h"

#include <utility>

#include "common/logging.h"

namespace chiller::workload {

namespace {
using storage::LockMode;
using storage::Record;
using txn::Operation;
using txn::OpType;
using txn::Transaction;
using txn::TxnContext;
using V = FlightVars;
}  // namespace

std::vector<storage::TableSpec> FlightSchema::Specs() {
  return {
      {.name = "flight", .id = kFlight, .num_fields = 2, .wire_bytes = 64,
       .buckets_per_partition = 1 << 10},
      {.name = "customer", .id = kCustomer, .num_fields = 3, .wire_bytes = 96,
       .buckets_per_partition = 1 << 14},
      {.name = "tax", .id = kTax, .num_fields = 1, .wire_bytes = 16,
       .buckets_per_partition = 1 << 8},
      {.name = "seats", .id = kSeats, .num_fields = 2, .wire_bytes = 48,
       .buckets_per_partition = 1 << 14},
  };
}

std::unique_ptr<txn::Transaction> MakeBookingTxn(Key flight_id, Key cust_id) {
  auto t = std::make_unique<Transaction>();
  t->txn_class = 0;
  t->ctx.params = {static_cast<int64_t>(flight_id),
                   static_cast<int64_t>(cust_id)};
  t->ctx.vars.assign(8, 0);

  // Op 0 (fread): read the flight with a write lock — it is updated below.
  Operation fread;
  fread.template_id = 0;
  fread.type = OpType::kRead;
  fread.table = FlightSchema::kFlight;
  fread.mode = LockMode::kExclusive;
  fread.key_fn = [](const TxnContext& c) {
    return static_cast<Key>(c.Param(0));
  };
  fread.on_read = [](TxnContext& c, const Record& r) {
    c.SetVar(V::kPrice, r.Get(0));
    c.SetVar(V::kSeatsLeft, r.Get(1));
  };

  // Op 1 (cread): read the customer with a write lock (Figure 4's
  // read_with_wl) — the balance update below aliases this lock.
  Operation cread;
  cread.template_id = 1;
  cread.type = OpType::kRead;
  cread.table = FlightSchema::kCustomer;
  cread.mode = LockMode::kExclusive;
  cread.key_fn = [](const TxnContext& c) {
    return static_cast<Key>(c.Param(1));
  };
  cread.on_read = [](TxnContext& c, const Record& r) {
    c.SetVar(V::kBalance, r.Get(0));
    c.SetVar(V::kState, r.Get(1));
    c.SetVar(V::kName, r.Get(2));
  };

  // Op 2 (tread): the tax row's key is the customer's state — a pk-dep.
  Operation tread;
  tread.template_id = 2;
  tread.type = OpType::kRead;
  tread.table = FlightSchema::kTax;
  tread.mode = LockMode::kShared;
  tread.pk_deps = {1};
  tread.key_fn = [](const TxnContext& c) {
    return static_cast<Key>(c.Var(V::kState));
  };
  tread.on_read = [](TxnContext& c, const Record& r) {
    c.SetVar(V::kTaxRate, r.Get(0));
  };

  // Op 3 (fupd): decrement seats, guarded by the availability/balance check.
  Operation fupd;
  fupd.template_id = 3;
  fupd.type = OpType::kUpdate;
  fupd.table = FlightSchema::kFlight;
  fupd.mode = LockMode::kExclusive;
  fupd.v_deps = {0, 1, 2};
  fupd.key_fn = [](const TxnContext& c) {
    return static_cast<Key>(c.Param(0));
  };
  fupd.guard = [](const TxnContext& c) {
    const int64_t cost = c.Var(V::kPrice) + c.Var(V::kTaxRate);
    return c.Var(V::kBalance) >= cost && c.Var(V::kSeatsLeft) > 0;
  };
  fupd.on_apply = [](TxnContext& c, Record* r) {
    c.SetVar(V::kCost, c.Var(V::kPrice) + c.Var(V::kTaxRate));
    c.SetVar(V::kSeatId, r->Get(1));
    r->Add(1, -1);
  };

  // Op 4 (cupd): deduct the cost — value-depends on the inner-computed
  // cost, so under two-region execution its apply defers to outer phase 2.
  Operation cupd;
  cupd.template_id = 4;
  cupd.type = OpType::kUpdate;
  cupd.table = FlightSchema::kCustomer;
  cupd.mode = LockMode::kExclusive;
  cupd.v_deps = {1, 3};
  cupd.key_fn = [](const TxnContext& c) {
    return static_cast<Key>(c.Param(1));
  };
  cupd.on_apply = [](TxnContext& c, Record* r) {
    r->Add(0, -c.Var(V::kCost));
  };

  // Op 5 (sins): insert the seat assignment; key derives from the flight
  // record (pk-dep) and lands on the flight's partition (co-located).
  Operation sins;
  sins.template_id = 5;
  sins.type = OpType::kInsert;
  sins.table = FlightSchema::kSeats;
  sins.mode = LockMode::kExclusive;
  sins.pk_deps = {0, 3};
  sins.v_deps = {1};
  sins.co_located_with_dep = true;
  sins.key_fn = [](const TxnContext& c) {
    return static_cast<Key>(c.Param(0)) * FlightSchema::kSeatStride +
           static_cast<Key>(c.Var(V::kSeatId));
  };
  sins.make_record = [](const TxnContext& c) {
    Record r(2, 48);
    r.Set(0, c.Param(1));
    r.Set(1, c.Var(V::kName));
    return r;
  };

  t->ops = {std::move(fread), std::move(cread), std::move(tread),
            std::move(fupd), std::move(cupd), std::move(sins)};
  t->InitAccesses();
  return t;
}

PartitionId FlightPartitioner::PartitionOf(const RecordId& rid) const {
  switch (rid.table) {
    case FlightSchema::kFlight:
      return static_cast<PartitionId>(rid.key % num_partitions_);
    case FlightSchema::kSeats:
      // Seats follow their flight: the co-location guarantee.
      return static_cast<PartitionId>((rid.key / FlightSchema::kSeatStride) %
                                      num_partitions_);
    default:
      return static_cast<PartitionId>(RecordIdHash{}(rid) % num_partitions_);
  }
}

bool FlightPartitioner::IsHot(const RecordId& rid) const {
  return rid.table == FlightSchema::kFlight && rid.key < hot_flights_;
}

void FlightWorkload::ForEachRecord(
    const std::function<void(const RecordId&, const storage::Record&)>& load)
    const {
  CHILLER_CHECK(options_.initial_seats <
                static_cast<int64_t>(FlightSchema::kSeatStride))
      << "seat ids would collide across flights";
  for (Key f = 0; f < options_.num_flights; ++f) {
    storage::Record r(2, 64);
    r.Set(0, 100 + static_cast<int64_t>(f % 400));  // price
    r.Set(1, options_.initial_seats);
    load(RecordId{FlightSchema::kFlight, f}, r);
  }
  for (Key c = 0; c < options_.num_customers; ++c) {
    storage::Record r(3, 96);
    r.Set(0, options_.initial_balance);
    r.Set(1, static_cast<int64_t>(c % options_.num_states));
    r.Set(2, static_cast<int64_t>(c));  // "name"
    load(RecordId{FlightSchema::kCustomer, c}, r);
  }
  for (Key s = 0; s < options_.num_states; ++s) {
    storage::Record r(1, 16);
    r.Set(0, static_cast<int64_t>(s % 20));  // flat tax amount
    load(RecordId{FlightSchema::kTax, s}, r);
  }
}

std::unique_ptr<txn::Transaction> FlightWorkload::Next(PartitionId home,
                                                       Rng* rng) {
  (void)home;
  Key flight;
  if (rng->Bernoulli(options_.hot_fraction)) {
    flight = rng->Uniform(options_.hot_flights);
  } else {
    flight = options_.hot_flights +
             rng->Uniform(options_.num_flights - options_.hot_flights);
  }
  const Key cust = rng->Uniform(options_.num_customers);
  return MakeBookingTxn(flight, cust);
}

std::unique_ptr<txn::Transaction> FlightWorkload::Rebuild(
    const txn::Transaction& t) {
  return MakeBookingTxn(static_cast<Key>(t.ctx.params[0]),
                        static_cast<Key>(t.ctx.params[1]));
}

}  // namespace chiller::workload
