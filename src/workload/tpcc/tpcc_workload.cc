#include "workload/tpcc/tpcc_workload.h"

#include <utility>

#include "common/logging.h"

namespace chiller::workload::tpcc {

namespace {
using storage::LockMode;
using storage::Record;
using txn::Operation;
using txn::OpType;
using txn::Transaction;
using txn::TxnContext;

// Context variable slots.
constexpr size_t kVWTax = 0;
constexpr size_t kVDTax = 1;
constexpr size_t kVOid = 2;
constexpr size_t kVBelowThreshold = 3;
constexpr size_t kVLinePriceBase = 8;    // NewOrder: price of line l
constexpr size_t kVDeliveryCidBase = 8;  // Delivery: c_id per district
constexpr size_t kVDeliveryAmtBase = 18; // Delivery: refund per district
constexpr size_t kVSLItemBase = 8;       // StockLevel: item per (order,line)

Operation ReadOp(TableId table, txn::KeyFn key_fn,
                 txn::ReadFn on_read = nullptr,
                 LockMode mode = LockMode::kShared) {
  Operation op;
  op.type = OpType::kRead;
  op.table = table;
  op.mode = mode;
  op.key_fn = std::move(key_fn);
  op.on_read = std::move(on_read);
  return op;
}

Operation UpdateOp(TableId table, txn::KeyFn key_fn, txn::ReadFn on_read,
                   txn::ApplyFn on_apply) {
  Operation op;
  op.type = OpType::kUpdate;
  op.table = table;
  op.mode = LockMode::kExclusive;
  op.key_fn = std::move(key_fn);
  op.on_read = std::move(on_read);
  op.on_apply = std::move(on_apply);
  return op;
}

Operation InsertOp(TableId table, txn::KeyFn key_fn,
                   txn::MakeRecordFn make_record) {
  Operation op;
  op.type = OpType::kInsert;
  op.table = table;
  op.mode = LockMode::kExclusive;
  op.key_fn = std::move(key_fn);
  op.make_record = std::move(make_record);
  return op;
}

}  // namespace

// ---------------------------------------------------------------------------
// NewOrder. Params: [w, d, c, ol_cnt, invalid, (i_id, supply_w, qty) x cnt]
// ---------------------------------------------------------------------------
std::unique_ptr<Transaction> BuildNewOrder(std::vector<int64_t> params) {
  auto t = std::make_unique<Transaction>();
  t->txn_class = kNewOrderTxn;
  t->ctx.params = std::move(params);
  t->ctx.vars.assign(32, 0);
  const auto& p = t->ctx.params;
  const uint64_t w = static_cast<uint64_t>(p[0]);
  const uint64_t d = static_cast<uint64_t>(p[1]);
  const int64_t ol_cnt = p[3];

  std::vector<Operation> ops;
  // 0: warehouse tax — a shared lock on the warehouse contention point.
  ops.push_back(ReadOp(kWarehouse,
                       [w](const TxnContext&) { return WarehouseKey(w); },
                       [](TxnContext& c, const Record& r) {
                         c.SetVar(kVWTax, r.Get(WarehouseF::kTax));
                       }));
  // 1: district — reads D_TAX and the order id, increments D_NEXT_O_ID.
  //    The paper's first contention point.
  ops.push_back(UpdateOp(kDistrict,
                         [w, d](const TxnContext&) {
                           return DistrictKey(w, d);
                         },
                         [](TxnContext& c, const Record& r) {
                           c.SetVar(kVDTax, r.Get(DistrictF::kTax));
                           c.SetVar(kVOid, r.Get(DistrictF::kNextOid));
                         },
                         [](TxnContext&, Record* r) {
                           r->Add(DistrictF::kNextOid, 1);
                         }));
  // 2: customer (discount/credit in the spec; modeled as a shared read).
  const uint64_t cust = static_cast<uint64_t>(p[2]);
  ops.push_back(ReadOp(kCustomer, [w, d, cust](const TxnContext&) {
    return CustomerKey(w, d, cust);
  }));
  const int district_op = 1;
  // 3: ORDER insert, keyed by the district's order id (pk-dep).
  {
    Operation op = InsertOp(kOrder,
                            [w, d](const TxnContext& c) {
                              return OrderKey(
                                  w, d, static_cast<uint64_t>(c.Var(kVOid)));
                            },
                            [ol_cnt](const TxnContext& c) {
                              Record r(3, 32);
                              r.Set(OrderF::kCid, c.Param(2));
                              r.Set(OrderF::kOlCnt, ol_cnt);
                              r.Set(OrderF::kCarrier, 0);
                              return r;
                            });
    op.pk_deps = {district_op};
    op.co_located_with_dep = true;
    ops.push_back(std::move(op));
  }
  // 4: NEWORDER insert (same key space).
  {
    Operation op = InsertOp(kNewOrder,
                            [w, d](const TxnContext& c) {
                              return OrderKey(
                                  w, d, static_cast<uint64_t>(c.Var(kVOid)));
                            },
                            [](const TxnContext&) { return Record(1, 12); });
    op.pk_deps = {district_op};
    op.co_located_with_dep = true;
    ops.push_back(std::move(op));
  }
  // Per order line: item read (replicated table), stock update, OL insert.
  for (int64_t l = 0; l < ol_cnt; ++l) {
    const uint64_t i_id = static_cast<uint64_t>(p[5 + 3 * l]);
    const uint64_t supply_w = static_cast<uint64_t>(p[6 + 3 * l]);
    const int64_t qty = p[7 + 3 * l];
    const size_t price_var = kVLinePriceBase + static_cast<size_t>(l);

    Operation item = ReadOp(kItem,
                            [i_id](const TxnContext&) {
                              return ItemKey(i_id);
                            },
                            [price_var](TxnContext& c, const Record& r) {
                              c.SetVar(price_var, r.Get(ItemF::kPrice));
                            });
    item.access_local_replica = true;
    if (l == ol_cnt - 1) {
      // Spec clause 2.4.1.4: ~1% of NewOrders carry an unused item id and
      // must roll back after the work so far.
      item.guard = [](const TxnContext& c) { return c.Param(4) == 0; };
    }
    const int item_op = static_cast<int>(ops.size());
    ops.push_back(std::move(item));

    const bool remote = supply_w != w;
    ops.push_back(UpdateOp(
        kStock,
        [supply_w, i_id](const TxnContext&) {
          return StockKey(supply_w, i_id);
        },
        nullptr,
        [qty, remote](TxnContext&, Record* r) {
          const int64_t q = r->Get(StockF::kQuantity);
          r->Set(StockF::kQuantity, q - qty >= 10 ? q - qty : q - qty + 91);
          r->Add(StockF::kYtd, qty);
          r->Add(StockF::kOrderCnt, 1);
          if (remote) r->Add(StockF::kRemoteCnt, 1);
        }));

    Operation ol = InsertOp(
        kOrderLine,
        [w, d, l](const TxnContext& c) {
          return OrderLineKey(
              OrderKey(w, d, static_cast<uint64_t>(c.Var(kVOid))),
              static_cast<uint64_t>(l + 1));
        },
        [i_id, qty, price_var](const TxnContext& c) {
          Record r(4, 56);
          r.Set(OrderLineF::kIid, static_cast<int64_t>(i_id));
          r.Set(OrderLineF::kQty, qty);
          r.Set(OrderLineF::kAmount, c.Var(price_var) * qty);
          r.Set(OrderLineF::kDeliveryD, 0);
          return r;
        });
    ol.pk_deps = {district_op};
    ol.v_deps = {item_op};
    ol.co_located_with_dep = true;
    ops.push_back(std::move(ol));
  }

  t->ops = std::move(ops);
  t->InitAccesses();
  return t;
}

// ---------------------------------------------------------------------------
// Payment. Params: [w, d, c_w, c_d, c, amount, h_seq]
// ---------------------------------------------------------------------------
std::unique_ptr<Transaction> BuildPayment(std::vector<int64_t> params) {
  auto t = std::make_unique<Transaction>();
  t->txn_class = kPaymentTxn;
  t->ctx.params = std::move(params);
  t->ctx.vars.assign(8, 0);
  const auto& p = t->ctx.params;
  const uint64_t w = static_cast<uint64_t>(p[0]);
  const uint64_t d = static_cast<uint64_t>(p[1]);
  const uint64_t cw = static_cast<uint64_t>(p[2]);
  const uint64_t cd = static_cast<uint64_t>(p[3]);
  const uint64_t c = static_cast<uint64_t>(p[4]);
  const int64_t amount = p[5];
  const uint64_t h_seq = static_cast<uint64_t>(p[6]);

  std::vector<Operation> ops;
  // 0: W_YTD += amount — the paper's severest contention point: an
  //    exclusive lock on the single warehouse row.
  ops.push_back(UpdateOp(kWarehouse,
                         [w](const TxnContext&) { return WarehouseKey(w); },
                         nullptr, [amount](TxnContext&, Record* r) {
                           r->Add(WarehouseF::kYtd, amount);
                         }));
  // 1: D_YTD += amount.
  ops.push_back(UpdateOp(kDistrict,
                         [w, d](const TxnContext&) {
                           return DistrictKey(w, d);
                         },
                         nullptr, [amount](TxnContext&, Record* r) {
                           r->Add(DistrictF::kYtd, amount);
                         }));
  // 2: customer balance (possibly at a remote warehouse — 15% by default).
  ops.push_back(UpdateOp(kCustomer,
                         [cw, cd, c](const TxnContext&) {
                           return CustomerKey(cw, cd, c);
                         },
                         nullptr, [amount](TxnContext&, Record* r) {
                           r->Add(CustomerF::kBalance, -amount);
                           r->Add(CustomerF::kYtdPayment, amount);
                           r->Add(CustomerF::kPaymentCnt, 1);
                         }));
  // 3: history insert at the home warehouse.
  ops.push_back(InsertOp(kHistory,
                         [w, h_seq](const TxnContext&) {
                           return HistoryKey(w, h_seq);
                         },
                         [amount](const TxnContext&) {
                           Record r(1, 48);
                           r.Set(HistoryF::kAmount, amount);
                           return r;
                         }));
  t->ops = std::move(ops);
  t->InitAccesses();
  return t;
}

// ---------------------------------------------------------------------------
// OrderStatus. Params: [w, d, c, o_guess]
// ---------------------------------------------------------------------------
std::unique_ptr<Transaction> BuildOrderStatus(std::vector<int64_t> params) {
  auto t = std::make_unique<Transaction>();
  t->txn_class = kOrderStatusTxn;
  t->ctx.params = std::move(params);
  t->ctx.vars.assign(8, 0);
  const auto& p = t->ctx.params;
  const uint64_t w = static_cast<uint64_t>(p[0]);
  const uint64_t d = static_cast<uint64_t>(p[1]);
  const uint64_t c = static_cast<uint64_t>(p[2]);
  const uint64_t o = static_cast<uint64_t>(p[3]);

  std::vector<Operation> ops;
  ops.push_back(ReadOp(kCustomer, [w, d, c](const TxnContext&) {
    return CustomerKey(w, d, c);
  }));
  // The order probe may miss (the guess comes from a generator-side
  // counter); a miss skips the order-line reads.
  Operation order = ReadOp(kOrder, [w, d, o](const TxnContext&) {
    return OrderKey(w, d, o);
  });
  order.may_be_missing = true;
  order.skip_group = 0;
  ops.push_back(std::move(order));
  for (uint64_t l = 1; l <= 3; ++l) {
    Operation ol = ReadOp(kOrderLine, [w, d, o, l](const TxnContext&) {
      return OrderLineKey(OrderKey(w, d, o), l);
    });
    ol.may_be_missing = true;
    ol.skip_group = 0;
    ops.push_back(std::move(ol));
  }
  t->ops = std::move(ops);
  t->InitAccesses();
  return t;
}

// ---------------------------------------------------------------------------
// Delivery. Params: [w, carrier, o_guess[0..9]]
// ---------------------------------------------------------------------------
std::unique_ptr<Transaction> BuildDelivery(std::vector<int64_t> params) {
  auto t = std::make_unique<Transaction>();
  t->txn_class = kDeliveryTxn;
  t->ctx.params = std::move(params);
  t->ctx.vars.assign(32, 0);
  const auto& p = t->ctx.params;
  const uint64_t w = static_cast<uint64_t>(p[0]);
  const int64_t carrier = p[1];

  std::vector<Operation> ops;
  for (uint64_t d = 0; d < kDistrictsPerWarehouse; ++d) {
    const uint64_t o = static_cast<uint64_t>(p[2 + d]);
    const int group = static_cast<int>(d);
    const size_t cid_var = kVDeliveryCidBase + d;
    const size_t amt_var = kVDeliveryAmtBase + d;

    // a) consume the NEWORDER row; if it is absent (nothing undelivered or
    //    already delivered), the whole district group is skipped.
    Operation no;
    no.type = OpType::kErase;
    no.table = kNewOrder;
    no.mode = LockMode::kExclusive;
    no.key_fn = [w, d, o](const TxnContext&) { return OrderKey(w, d, o); };
    no.may_be_missing = true;
    no.skip_group = group;
    ops.push_back(std::move(no));

    // b) stamp the carrier on the ORDER row; read the customer id.
    Operation order = UpdateOp(kOrder,
                               [w, d, o](const TxnContext&) {
                                 return OrderKey(w, d, o);
                               },
                               [cid_var](TxnContext& c, const Record& r) {
                                 c.SetVar(cid_var, r.Get(OrderF::kCid));
                               },
                               [carrier](TxnContext&, Record* r) {
                                 r->Set(OrderF::kCarrier, carrier);
                               });
    order.skip_group = group;
    ops.push_back(std::move(order));

    // c) stamp the delivery date on the first order line; read its amount.
    Operation ol = UpdateOp(kOrderLine,
                            [w, d, o](const TxnContext&) {
                              return OrderLineKey(OrderKey(w, d, o), 1);
                            },
                            [amt_var](TxnContext& c, const Record& r) {
                              c.SetVar(amt_var, r.Get(OrderLineF::kAmount));
                            },
                            [](TxnContext&, Record* r) {
                              r->Set(OrderLineF::kDeliveryD, 1);
                            });
    ol.skip_group = group;
    ops.push_back(std::move(ol));

    // d) credit the customer; its key derives from the ORDER read (pk-dep,
    //    co-located: same warehouse and district).
    const int order_op = static_cast<int>(ops.size()) - 2;
    Operation cust = UpdateOp(
        kCustomer,
        [w, d, cid_var](const TxnContext& c) {
          return CustomerKey(w, d, static_cast<uint64_t>(c.Var(cid_var)));
        },
        nullptr,
        [amt_var](TxnContext& c, Record* r) {
          r->Add(CustomerF::kBalance, c.Var(amt_var));
          r->Add(CustomerF::kDeliveryCnt, 1);
        });
    cust.pk_deps = {order_op};
    cust.v_deps = {order_op + 1};
    cust.co_located_with_dep = true;
    cust.skip_group = group;
    ops.push_back(std::move(cust));
  }
  t->ops = std::move(ops);
  t->InitAccesses();
  return t;
}

// ---------------------------------------------------------------------------
// StockLevel. Params: [w, d, threshold, num_orders]
// ---------------------------------------------------------------------------
std::unique_ptr<Transaction> BuildStockLevel(std::vector<int64_t> params) {
  auto t = std::make_unique<Transaction>();
  t->txn_class = kStockLevelTxn;
  t->ctx.params = std::move(params);
  t->ctx.vars.assign(40, 0);
  const auto& p = t->ctx.params;
  const uint64_t w = static_cast<uint64_t>(p[0]);
  const uint64_t d = static_cast<uint64_t>(p[1]);
  const int64_t threshold = p[2];
  const uint64_t num_orders = static_cast<uint64_t>(p[3]);
  constexpr uint64_t kLinesPerOrder = 5;

  std::vector<Operation> ops;
  // 0: D_NEXT_O_ID — shared lock on the district contention point.
  ops.push_back(ReadOp(kDistrict,
                       [w, d](const TxnContext&) {
                         return DistrictKey(w, d);
                       },
                       [](TxnContext& c, const Record& r) {
                         c.SetVar(kVOid, r.Get(DistrictF::kNextOid));
                       }));
  for (uint64_t j = 1; j <= num_orders; ++j) {
    const int group = static_cast<int>(j);
    for (uint64_t l = 1; l <= kLinesPerOrder; ++l) {
      const size_t item_var =
          kVSLItemBase + (j - 1) * kLinesPerOrder + (l - 1);
      // Order-line keys derive from the district's next order id.
      Operation ol = ReadOp(
          kOrderLine,
          [w, d, j, l](const TxnContext& c) {
            const uint64_t next = static_cast<uint64_t>(c.Var(kVOid));
            const uint64_t o = next > j ? next - j : 0;  // 0 never exists
            return OrderLineKey(OrderKey(w, d, o), l);
          },
          [item_var](TxnContext& c, const Record& r) {
            c.SetVar(item_var, r.Get(OrderLineF::kIid));
          });
      ol.pk_deps = {0};
      ol.co_located_with_dep = true;
      ol.may_be_missing = true;
      // Line granularity: a missing line only skips its own stock read.
      ol.skip_group = group * 100 + static_cast<int>(l);
      const int ol_op = static_cast<int>(ops.size());
      ops.push_back(std::move(ol));

      Operation stock = ReadOp(
          kStock,
          [w, item_var](const TxnContext& c) {
            return StockKey(w, static_cast<uint64_t>(c.Var(item_var)));
          },
          [threshold](TxnContext& c, const Record& r) {
            if (r.Get(StockF::kQuantity) < threshold) {
              c.SetVar(kVBelowThreshold, c.Var(kVBelowThreshold) + 1);
            }
          });
      stock.pk_deps = {ol_op};
      stock.co_located_with_dep = true;
      stock.skip_group = group * 100 + static_cast<int>(l);
      ops.push_back(std::move(stock));
    }
  }
  t->ops = std::move(ops);
  t->InitAccesses();
  return t;
}

// ---------------------------------------------------------------------------
// Workload source
// ---------------------------------------------------------------------------

TpccWorkload::TpccWorkload(Options options) : options_(options) {
  CHILLER_CHECK(options_.pct_new_order + options_.pct_payment +
                    options_.pct_order_status + options_.pct_delivery +
                    options_.pct_stock_level ==
                100)
      << "mix must sum to 100";
  history_seq_.assign(options_.num_warehouses, 0);
  delivery_next_.assign(
      options_.num_warehouses * kDistrictsPerWarehouse, 1);
  orders_issued_.assign(
      options_.num_warehouses * kDistrictsPerWarehouse, 0);
}

std::string TpccWorkload::ClassName(uint32_t cls) const {
  switch (cls) {
    case kNewOrderTxn:
      return "NewOrder";
    case kPaymentTxn:
      return "Payment";
    case kOrderStatusTxn:
      return "OrderStatus";
    case kDeliveryTxn:
      return "Delivery";
    case kStockLevelTxn:
      return "StockLevel";
  }
  return "?";
}

std::vector<int64_t> TpccWorkload::NewOrderParams(uint64_t w, Rng* rng) {
  const uint64_t d = rng->Uniform(kDistrictsPerWarehouse);
  const uint64_t c = RandomCustomer(rng);
  const int64_t ol_cnt = static_cast<int64_t>(rng->UniformRange(5, 15));
  const int64_t invalid = rng->Bernoulli(options_.invalid_item_prob) ? 1 : 0;
  std::vector<int64_t> p = {static_cast<int64_t>(w), static_cast<int64_t>(d),
                            static_cast<int64_t>(c), ol_cnt, invalid};
  // "At least one remote item" with the configured probability.
  int64_t remote_line = -1;
  if (options_.num_warehouses > 1 &&
      rng->Bernoulli(options_.remote_new_order_prob)) {
    remote_line = static_cast<int64_t>(rng->Uniform(
        static_cast<uint64_t>(ol_cnt)));
  }
  for (int64_t l = 0; l < ol_cnt; ++l) {
    uint64_t supply = w;
    if (l == remote_line) {
      do {
        supply = rng->Uniform(options_.num_warehouses);
      } while (supply == w);
    }
    p.push_back(static_cast<int64_t>(RandomItem(rng)));
    p.push_back(static_cast<int64_t>(supply));
    p.push_back(static_cast<int64_t>(rng->UniformRange(1, 10)));
  }
  ++orders_issued_[w * kDistrictsPerWarehouse + d];
  return p;
}

std::vector<int64_t> TpccWorkload::PaymentParams(uint64_t w, Rng* rng) {
  const uint64_t d = rng->Uniform(kDistrictsPerWarehouse);
  uint64_t cw = w, cd = d;
  if (options_.num_warehouses > 1 &&
      rng->Bernoulli(options_.remote_payment_prob)) {
    do {
      cw = rng->Uniform(options_.num_warehouses);
    } while (cw == w);
    cd = rng->Uniform(kDistrictsPerWarehouse);
  }
  const uint64_t c = RandomCustomer(rng);
  const int64_t amount = static_cast<int64_t>(rng->UniformRange(100, 500000));
  return {static_cast<int64_t>(w),
          static_cast<int64_t>(d),
          static_cast<int64_t>(cw),
          static_cast<int64_t>(cd),
          static_cast<int64_t>(c),
          amount,
          static_cast<int64_t>(history_seq_[w]++)};
}

std::unique_ptr<Transaction> TpccWorkload::Next(PartitionId home, Rng* rng) {
  const uint64_t w = home % options_.num_warehouses;
  const uint64_t roll = rng->Uniform(100);
  const uint32_t no_edge = options_.pct_new_order;
  const uint32_t pay_edge = no_edge + options_.pct_payment;
  const uint32_t os_edge = pay_edge + options_.pct_order_status;
  const uint32_t dl_edge = os_edge + options_.pct_delivery;

  if (roll < no_edge) return BuildNewOrder(NewOrderParams(w, rng));
  if (roll < pay_edge) return BuildPayment(PaymentParams(w, rng));
  if (roll < os_edge) {
    const uint64_t d = rng->Uniform(kDistrictsPerWarehouse);
    const uint64_t issued = orders_issued_[w * kDistrictsPerWarehouse + d];
    const uint64_t guess = issued == 0 ? 1 : 1 + rng->Uniform(issued);
    return BuildOrderStatus({static_cast<int64_t>(w),
                             static_cast<int64_t>(d),
                             static_cast<int64_t>(RandomCustomer(rng)),
                             static_cast<int64_t>(guess)});
  }
  if (roll < dl_edge) {
    std::vector<int64_t> p = {static_cast<int64_t>(w),
                              static_cast<int64_t>(rng->UniformRange(1, 10))};
    for (uint64_t d = 0; d < kDistrictsPerWarehouse; ++d) {
      p.push_back(static_cast<int64_t>(
          delivery_next_[w * kDistrictsPerWarehouse + d]++));
    }
    return BuildDelivery(std::move(p));
  }
  return BuildStockLevel({static_cast<int64_t>(w),
                          static_cast<int64_t>(
                              rng->Uniform(kDistrictsPerWarehouse)),
                          static_cast<int64_t>(rng->UniformRange(10, 20)),
                          static_cast<int64_t>(options_.stock_level_orders)});
}

std::unique_ptr<Transaction> TpccWorkload::Rebuild(const Transaction& t) {
  switch (t.txn_class) {
    case kNewOrderTxn:
      return BuildNewOrder(t.ctx.params);
    case kPaymentTxn:
      return BuildPayment(t.ctx.params);
    case kOrderStatusTxn:
      return BuildOrderStatus(t.ctx.params);
    case kDeliveryTxn:
      return BuildDelivery(t.ctx.params);
    case kStockLevelTxn:
      return BuildStockLevel(t.ctx.params);
  }
  CHILLER_CHECK(false) << "unknown txn class " << t.txn_class;
  return nullptr;
}

std::vector<partition::TxnAccessTrace> TpccWorkload::GenerateTrace(
    size_t n, Rng* rng) {
  std::vector<partition::TxnAccessTrace> traces;
  traces.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const uint64_t w = rng->Uniform(options_.num_warehouses);
    partition::TxnAccessTrace trace;
    if (rng->Uniform(100) < options_.pct_new_order +
                               options_.pct_order_status +
                               options_.pct_delivery +
                               options_.pct_stock_level) {
      // Approximate the read/write set of a NewOrder (the dominant class).
      trace.txn_class = kNewOrderTxn;
      auto p = NewOrderParams(w, rng);
      trace.accesses.emplace_back(RecordId{kWarehouse, WarehouseKey(w)},
                                  false);
      trace.accesses.emplace_back(
          RecordId{kDistrict,
                   DistrictKey(w, static_cast<uint64_t>(p[1]))},
          true);
      trace.accesses.emplace_back(
          RecordId{kCustomer,
                   CustomerKey(w, static_cast<uint64_t>(p[1]),
                               static_cast<uint64_t>(p[2]))},
          false);
      for (int64_t l = 0; l < p[3]; ++l) {
        trace.accesses.emplace_back(
            RecordId{kStock, StockKey(static_cast<uint64_t>(p[6 + 3 * l]),
                                      static_cast<uint64_t>(p[5 + 3 * l]))},
            true);
      }
    } else {
      trace.txn_class = kPaymentTxn;
      auto p = PaymentParams(w, rng);
      trace.accesses.emplace_back(RecordId{kWarehouse, WarehouseKey(w)},
                                  true);
      trace.accesses.emplace_back(
          RecordId{kDistrict,
                   DistrictKey(w, static_cast<uint64_t>(p[1]))},
          true);
      trace.accesses.emplace_back(
          RecordId{kCustomer,
                   CustomerKey(static_cast<uint64_t>(p[2]),
                               static_cast<uint64_t>(p[3]),
                               static_cast<uint64_t>(p[4]))},
          true);
    }
    traces.push_back(std::move(trace));
  }
  return traces;
}

}  // namespace chiller::workload::tpcc
