// TPC-C schema: tables, composite-key encodings, field layouts, and the
// by-warehouse partitioner used in the paper's Figures 9 and 10.
#ifndef CHILLER_WORKLOAD_TPCC_TPCC_SCHEMA_H_
#define CHILLER_WORKLOAD_TPCC_TPCC_SCHEMA_H_

#include <vector>

#include "common/types.h"
#include "partition/lookup_table.h"
#include "storage/record.h"

namespace chiller::workload::tpcc {

/// Table ids. ITEM is read-only and fully replicated to every partition
/// (accessed via Operation::access_local_replica).
enum Table : TableId {
  kWarehouse = 0,
  kDistrict = 1,
  kCustomer = 2,
  kHistory = 3,
  kNewOrder = 4,
  kOrder = 5,
  kOrderLine = 6,
  kStock = 7,
  kItem = 8,
};

inline constexpr uint32_t kDistrictsPerWarehouse = 10;
/// Scaled from the spec's 3000 / 100000 so that a full 8-node, 80-warehouse
/// simulated cluster loads in seconds; the contention points the paper
/// analyzes (WAREHOUSE and DISTRICT rows) are unaffected by this scaling,
/// and NURand constants are scaled proportionally. See DESIGN.md.
inline constexpr uint32_t kCustomersPerDistrict = 600;
inline constexpr uint32_t kItemCount = 5000;
inline constexpr uint32_t kMaxOrderLines = 15;
/// Order ids per district before key collision — effectively unbounded for
/// any simulated run length.
inline constexpr uint64_t kOrderStride = 100000000ULL;

// ---- key encodings (w is 0-based warehouse id) ----
inline Key WarehouseKey(uint64_t w) { return w; }
inline Key DistrictKey(uint64_t w, uint64_t d) {
  return w * kDistrictsPerWarehouse + d;
}
inline Key CustomerKey(uint64_t w, uint64_t d, uint64_t c) {
  return DistrictKey(w, d) * kCustomersPerDistrict + c;
}
inline Key StockKey(uint64_t w, uint64_t i) {
  return w * (2ULL * kItemCount) + i;
}
inline Key ItemKey(uint64_t i) { return i; }
inline Key OrderKey(uint64_t w, uint64_t d, uint64_t o) {
  return DistrictKey(w, d) * kOrderStride + o;
}
inline Key OrderLineKey(Key order_key, uint64_t line) {
  return order_key * (kMaxOrderLines + 1) + line;
}
inline Key HistoryKey(uint64_t w, uint64_t seq) {
  return w * (1ULL << 40) + seq;
}

// ---- warehouse recovery from keys (drives partitioning) ----
inline uint64_t WarehouseOfKey(TableId table, Key key) {
  switch (table) {
    case kWarehouse:
      return key;
    case kDistrict:
      return key / kDistrictsPerWarehouse;
    case kCustomer:
      return key / kCustomersPerDistrict / kDistrictsPerWarehouse;
    case kHistory:
      return key >> 40;
    case kNewOrder:
    case kOrder:
      return key / kOrderStride / kDistrictsPerWarehouse;
    case kOrderLine:
      return key / (kMaxOrderLines + 1) / kOrderStride /
             kDistrictsPerWarehouse;
    case kStock:
      return key / (2ULL * kItemCount);
    default:
      return 0;  // kItem: replicated, warehouse-less
  }
}

// ---- field indices ----
struct WarehouseF {
  static constexpr size_t kYtd = 0;
  static constexpr size_t kTax = 1;
};
struct DistrictF {
  static constexpr size_t kYtd = 0;
  static constexpr size_t kTax = 1;
  static constexpr size_t kNextOid = 2;
};
struct CustomerF {
  static constexpr size_t kBalance = 0;
  static constexpr size_t kYtdPayment = 1;
  static constexpr size_t kPaymentCnt = 2;
  static constexpr size_t kDeliveryCnt = 3;
};
struct HistoryF {
  static constexpr size_t kAmount = 0;
};
struct OrderF {
  static constexpr size_t kCid = 0;
  static constexpr size_t kOlCnt = 1;
  static constexpr size_t kCarrier = 2;
};
struct OrderLineF {
  static constexpr size_t kIid = 0;
  static constexpr size_t kQty = 1;
  static constexpr size_t kAmount = 2;
  static constexpr size_t kDeliveryD = 3;
};
struct StockF {
  static constexpr size_t kQuantity = 0;
  static constexpr size_t kYtd = 1;
  static constexpr size_t kOrderCnt = 2;
  static constexpr size_t kRemoteCnt = 3;
};
struct ItemF {
  static constexpr size_t kPrice = 0;
};

/// Table specs sized for `warehouses_per_partition` warehouses per
/// partition (the paper uses exactly 1: one warehouse per engine).
std::vector<storage::TableSpec> Schema(uint32_t warehouses_per_partition = 1);

/// The by-warehouse layout of Section 7.3.1: partition = warehouse id
/// modulo partitions; WAREHOUSE and DISTRICT records are flagged hot
/// (they are the two contention points the paper names).
class TpccPartitioner : public partition::RecordPartitioner {
 public:
  TpccPartitioner(uint32_t num_partitions, bool mark_hot = true)
      : num_partitions_(num_partitions), mark_hot_(mark_hot) {}

  PartitionId PartitionOf(const RecordId& rid) const override {
    return static_cast<PartitionId>(WarehouseOfKey(rid.table, rid.key) %
                                    num_partitions_);
  }

  bool IsHot(const RecordId& rid) const override {
    return mark_hot_ &&
           (rid.table == kWarehouse || rid.table == kDistrict);
  }

  /// By-warehouse ranges need no per-record entries.
  size_t LookupEntries() const override { return 0; }

 private:
  uint32_t num_partitions_;
  bool mark_hot_;
};

}  // namespace chiller::workload::tpcc

#endif  // CHILLER_WORKLOAD_TPCC_TPCC_SCHEMA_H_
