// TPC-C data population and spec-conformant random input generation.
#ifndef CHILLER_WORKLOAD_TPCC_TPCC_GEN_H_
#define CHILLER_WORKLOAD_TPCC_TPCC_GEN_H_

#include <functional>

#include "common/random.h"
#include "storage/record.h"
#include "workload/tpcc/tpcc_schema.h"

namespace chiller::workload::tpcc {

/// The non-uniform random function of TPC-C clause 2.1.6:
/// NURand(A, x, y) = (((rand(0,A) | rand(x,y)) + C) % (y - x + 1)) + x.
uint64_t NURand(Rng* rng, uint64_t a, uint64_t x, uint64_t y);

/// Spec helpers: customer id (NURand 1023) and item id (NURand 8191),
/// both 0-based here.
uint64_t RandomCustomer(Rng* rng);
uint64_t RandomItem(Rng* rng);

/// Populates initial records for `num_warehouses` warehouses. Emits every
/// partitioned record through `load` and every ITEM record through
/// `load_replicated` (ITEM lives on every partition). Order-family tables
/// start empty; Delivery and StockLevel tolerate missing rows via skip
/// groups, so no 3000-order preload is required.
void PopulateTpcc(
    uint32_t num_warehouses,
    const std::function<void(const RecordId&, const storage::Record&)>& load,
    const std::function<void(const RecordId&, const storage::Record&)>&
        load_replicated);

}  // namespace chiller::workload::tpcc

#endif  // CHILLER_WORKLOAD_TPCC_TPCC_GEN_H_
