#include "workload/tpcc/tpcc_gen.h"

namespace chiller::workload::tpcc {

namespace {
// Fixed C constants (clause 2.1.6.1 allows any constant per run).
constexpr uint64_t kCLast = 173;
constexpr uint64_t kCCust = 319;
constexpr uint64_t kCItem = 3849;
}  // namespace

uint64_t NURand(Rng* rng, uint64_t a, uint64_t x, uint64_t y) {
  const uint64_t c = a == 1023 ? kCCust : (a == 8191 ? kCItem : kCLast);
  const uint64_t r1 = rng->UniformRange(0, a);
  const uint64_t r2 = rng->UniformRange(x, y);
  return (((r1 | r2) + c) % (y - x + 1)) + x;
}

// NURand A constants scaled with the table sizes to keep the spec's
// A/range skew ratio (1023/3000 and 8191/100000 respectively).
uint64_t RandomCustomer(Rng* rng) {
  return NURand(rng, 255, 0, kCustomersPerDistrict - 1);
}

uint64_t RandomItem(Rng* rng) { return NURand(rng, 511, 0, kItemCount - 1); }

void PopulateTpcc(
    uint32_t num_warehouses,
    const std::function<void(const RecordId&, const storage::Record&)>& load,
    const std::function<void(const RecordId&, const storage::Record&)>&
        load_replicated) {
  Rng rng(0xC0FFEE);

  for (uint64_t i = 0; i < kItemCount; ++i) {
    storage::Record item(1, 88);
    item.Set(ItemF::kPrice, 100 + static_cast<int64_t>(i % 9900));
    load_replicated(RecordId{kItem, ItemKey(i)}, item);
  }

  for (uint64_t w = 0; w < num_warehouses; ++w) {
    storage::Record wh(2, 96);
    wh.Set(WarehouseF::kYtd, 0);
    wh.Set(WarehouseF::kTax, static_cast<int64_t>(rng.Uniform(2000)));
    load(RecordId{kWarehouse, WarehouseKey(w)}, wh);

    for (uint64_t d = 0; d < kDistrictsPerWarehouse; ++d) {
      storage::Record dist(3, 112);
      dist.Set(DistrictF::kYtd, 0);
      dist.Set(DistrictF::kTax, static_cast<int64_t>(rng.Uniform(2000)));
      dist.Set(DistrictF::kNextOid, 1);
      load(RecordId{kDistrict, DistrictKey(w, d)}, dist);

      for (uint64_t c = 0; c < kCustomersPerDistrict; ++c) {
        storage::Record cust(4, 672);
        cust.Set(CustomerF::kBalance, -1000);  // spec: C_BALANCE = -10.00
        cust.Set(CustomerF::kYtdPayment, 1000);
        cust.Set(CustomerF::kPaymentCnt, 1);
        cust.Set(CustomerF::kDeliveryCnt, 0);
        load(RecordId{kCustomer, CustomerKey(w, d, c)}, cust);
      }
    }

    for (uint64_t i = 0; i < kItemCount; ++i) {
      storage::Record stock(4, 320);
      stock.Set(StockF::kQuantity,
                static_cast<int64_t>(rng.UniformRange(10, 100)));
      stock.Set(StockF::kYtd, 0);
      stock.Set(StockF::kOrderCnt, 0);
      stock.Set(StockF::kRemoteCnt, 0);
      load(RecordId{kStock, StockKey(w, i)}, stock);
    }
  }
}

}  // namespace chiller::workload::tpcc
