#include "workload/tpcc/tpcc_schema.h"

namespace chiller::workload::tpcc {

std::vector<storage::TableSpec> Schema(uint32_t warehouses_per_partition) {
  const uint32_t w = warehouses_per_partition;
  // Bucket counts sized ~2x the expected records per partition so bucket
  // collisions (false lock sharing) stay rare, matching a well-configured
  // deployment. Order-family tables grow at run time; give them headroom.
  return {
      {.name = "warehouse", .id = kWarehouse, .num_fields = 2,
       .wire_bytes = 96, .buckets_per_partition = std::max(2 * w, 4u)},
      {.name = "district", .id = kDistrict, .num_fields = 3,
       .wire_bytes = 112, .buckets_per_partition = 2 * w *
                                                    kDistrictsPerWarehouse},
      {.name = "customer", .id = kCustomer, .num_fields = 4,
       .wire_bytes = 672,
       .buckets_per_partition =
           2 * w * kDistrictsPerWarehouse * kCustomersPerDistrict},
      {.name = "history", .id = kHistory, .num_fields = 1, .wire_bytes = 48,
       .buckets_per_partition = 1u << 13},
      {.name = "neworder", .id = kNewOrder, .num_fields = 1, .wire_bytes = 12,
       .buckets_per_partition = 1u << 12},
      {.name = "order", .id = kOrder, .num_fields = 3, .wire_bytes = 32,
       .buckets_per_partition = 1u << 13},
      {.name = "orderline", .id = kOrderLine, .num_fields = 4,
       .wire_bytes = 56, .buckets_per_partition = 1u << 15},
      {.name = "stock", .id = kStock, .num_fields = 4, .wire_bytes = 320,
       .buckets_per_partition = 2 * w * kItemCount},
      {.name = "item", .id = kItem, .num_fields = 1, .wire_bytes = 88,
       .buckets_per_partition = 2 * kItemCount},
  };
}

}  // namespace chiller::workload::tpcc
