// Full TPC-C transaction mix as declarative stored procedures.
#ifndef CHILLER_WORKLOAD_TPCC_TPCC_WORKLOAD_H_
#define CHILLER_WORKLOAD_TPCC_TPCC_WORKLOAD_H_

#include <memory>
#include <string>
#include <vector>

#include "cc/driver.h"
#include "partition/stats_collector.h"
#include "txn/transaction.h"
#include "workload/tpcc/tpcc_gen.h"
#include "workload/tpcc/tpcc_schema.h"

namespace chiller::workload::tpcc {

/// Transaction class ids (indices into RunStats).
enum TxnClass : uint32_t {
  kNewOrderTxn = 0,
  kPaymentTxn = 1,
  kOrderStatusTxn = 2,
  kDeliveryTxn = 3,
  kStockLevelTxn = 4,
};

/// Builders: parameters fully describe a transaction, so retries rebuild
/// the same logical transaction. Layouts are documented in the .cc.
std::unique_ptr<txn::Transaction> BuildNewOrder(std::vector<int64_t> params);
std::unique_ptr<txn::Transaction> BuildPayment(std::vector<int64_t> params);
std::unique_ptr<txn::Transaction> BuildOrderStatus(
    std::vector<int64_t> params);
std::unique_ptr<txn::Transaction> BuildDelivery(std::vector<int64_t> params);
std::unique_ptr<txn::Transaction> BuildStockLevel(
    std::vector<int64_t> params);

/// The TPC-C workload source: standard mix, spec NURand skew, one
/// warehouse per engine/partition (Section 7.3.1).
class TpccWorkload : public cc::WorkloadSource {
 public:
  struct Options {
    uint32_t num_warehouses = 8;
    /// Probability that a NewOrder has at least one remote item
    /// (TPC-C default ~10%); the Figure 10 sweep varies this.
    double remote_new_order_prob = 0.10;
    /// Probability that Payment pays a customer of a remote warehouse
    /// (TPC-C default 15%).
    double remote_payment_prob = 0.15;
    /// Mix in percent; must sum to 100. Defaults are the standard mix.
    uint32_t pct_new_order = 45;
    uint32_t pct_payment = 43;
    uint32_t pct_order_status = 4;
    uint32_t pct_delivery = 4;
    uint32_t pct_stock_level = 4;
    /// Fraction of NewOrders rolled back due to an invalid item (spec: 1%).
    double invalid_item_prob = 0.01;
    /// StockLevel examines this many recent orders (spec: 20; scaled so a
    /// simulated StockLevel stays ~40 operations).
    uint32_t stock_level_orders = 4;
  };

  explicit TpccWorkload(Options options);

  const Options& options() const { return options_; }

  std::unique_ptr<txn::Transaction> Next(PartitionId home, Rng* rng) override;
  std::unique_ptr<txn::Transaction> Rebuild(
      const txn::Transaction& t) override;
  uint32_t NumClasses() const override { return 5; }
  std::string ClassName(uint32_t cls) const override;

  /// Access-set traces for the partitioning pipeline (no execution needed):
  /// the record sets a sampled run of the mix would touch.
  std::vector<partition::TxnAccessTrace> GenerateTrace(size_t n, Rng* rng);

 private:
  std::vector<int64_t> NewOrderParams(uint64_t w, Rng* rng);
  std::vector<int64_t> PaymentParams(uint64_t w, Rng* rng);

  Options options_;
  /// Per-warehouse history-key sequence; per-(w,d) delivery frontier and
  /// issued-order counters (generator-side bookkeeping, not database state).
  std::vector<uint64_t> history_seq_;
  std::vector<uint64_t> delivery_next_;
  std::vector<uint64_t> orders_issued_;
};

}  // namespace chiller::workload::tpcc

#endif  // CHILLER_WORKLOAD_TPCC_TPCC_WORKLOAD_H_
