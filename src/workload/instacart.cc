#include "workload/instacart.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <utility>

#include "common/logging.h"

namespace chiller::workload::instacart {

namespace {
using storage::LockMode;
using storage::Record;
using txn::Operation;
using txn::OpType;
using txn::Transaction;
using txn::TxnContext;
}  // namespace

std::vector<storage::TableSpec> Schema() {
  return {
      {.name = "stock", .id = kStock, .num_fields = 2, .wire_bytes = 64,
       .buckets_per_partition = 1u << 16},
      {.name = "order", .id = kOrder, .num_fields = 1, .wire_bytes = 96,
       .buckets_per_partition = 1u << 16},
  };
}

PartitionId InstacartFallback(const RecordId& rid, uint32_t k) {
  if (rid.table == kOrder) return HomeOfOrder(rid.key) % k;
  return static_cast<PartitionId>(RecordIdHash{}(rid) % k);
}

std::unique_ptr<Transaction> BuildOrderTxn(std::vector<int64_t> params) {
  auto t = std::make_unique<Transaction>();
  t->txn_class = 0;
  t->ctx.params = std::move(params);
  t->ctx.vars.assign(2, 0);
  const auto& p = t->ctx.params;
  const PartitionId home = static_cast<PartitionId>(p[0]);
  const uint64_t seq = static_cast<uint64_t>(p[1]);
  const int64_t num_items = p[2];

  std::vector<Operation> ops;
  // Stock decrement per basket item — the contended accesses.
  for (int64_t l = 0; l < num_items; ++l) {
    const Key product = static_cast<Key>(p[3 + l]);
    Operation op;
    op.type = OpType::kUpdate;
    op.table = kStock;
    op.mode = LockMode::kExclusive;
    op.key_fn = [product](const TxnContext&) { return product; };
    op.on_apply = [](TxnContext&, Record* r) {
      r->Add(0, -1);  // quantity
      r->Add(1, 1);   // ytd
    };
    ops.push_back(std::move(op));
  }
  // Order insert at the home partition (key-encoded placement).
  {
    Operation op;
    op.type = OpType::kInsert;
    op.table = kOrder;
    op.mode = LockMode::kExclusive;
    op.key_fn = [home, seq](const TxnContext&) {
      return OrderKeyFor(home, seq);
    };
    op.make_record = [num_items](const TxnContext&) {
      Record r(1, 96);
      r.Set(0, num_items);
      return r;
    };
    ops.push_back(std::move(op));
  }
  t->ops = std::move(ops);
  t->InitAccesses();
  return t;
}

InstacartWorkload::InstacartWorkload(Options options)
    : options_(options) {
  CHILLER_CHECK(options_.num_products > 100);
  CHILLER_CHECK(options_.mean_basket >= 2.0);
  // The two headline items are included per basket by independent
  // Bernoulli draws at exactly the published shares (15% / 8%); the
  // popularity sampler covers the Zipf tail.
  weights_.assign(options_.num_products, 0.0);
  for (uint64_t i = 2; i < options_.num_products; ++i) {
    weights_[i] = 1.0 / std::pow(static_cast<double>(i - 1),
                                 options_.tail_theta);
  }
  popularity_ = std::make_unique<AliasSampler>(weights_);
  order_seq_.assign(1024, 0);  // up to 1024 home partitions
}

uint64_t InstacartWorkload::AisleOf(uint64_t product) const {
  // Popular products concentrate in a handful of popular departments
  // (produce, dairy, snacks, ...) rather than one aisle or a uniform
  // spread — matching the real dataset, where the top sellers span a few
  // departments. This gives the workload several distinct hot clusters
  // whose members co-occur in baskets: the structure contention-aware
  // partitioning exploits.
  constexpr uint64_t kPopularBand = 256;
  constexpr uint64_t kPopularAisles = 8;
  // Groups of four adjacent popularity ranks share a department, so the
  // headline items co-occur strongly via basket themes (bananas, organic
  // bananas and strawberries are all produce in the real dataset).
  if (product < kPopularBand) return (product / 4) % kPopularAisles;
  uint64_t x = product * 0x9e3779b97f4a7c15ULL;
  x ^= x >> 29;
  return kPopularAisles + x % (options_.num_aisles - kPopularAisles);
}

std::vector<uint64_t> InstacartWorkload::SampleBasket(Rng* rng) {
  // Basket size: shifted geometric-ish around the mean, clamped to [2, 25].
  const double u = rng->NextDouble();
  uint64_t size = 2 + static_cast<uint64_t>(-std::log(1.0 - u) *
                                            (options_.mean_basket - 2.0));
  size = std::min<uint64_t>(size, 25);

  // Theme aisles chosen via the popularity of a seed product, so popular
  // aisles are popular themes (a produce-heavy basket is common).
  const uint64_t theme_a = AisleOf(popularity_->Next(rng));
  const uint64_t theme_b = rng->NextDouble() < options_.single_theme_prob
                               ? theme_a
                               : AisleOf(popularity_->Next(rng));
  std::set<uint64_t> basket;
  // Headline items: exact basket-share inclusion (both live in aisle 0).
  if (rng->NextDouble() < options_.top1_basket_share) basket.insert(0);
  if (rng->NextDouble() < options_.top2_basket_share) basket.insert(1);
  int guard = 0;
  while (basket.size() < size && guard++ < 1000) {
    uint64_t product = popularity_->Next(rng);
    if (rng->NextDouble() < options_.theme_fraction) {
      // Re-draw until the product matches one of the basket's theme aisles
      // (bounded retries keep the popularity profile intact).
      for (int tries = 0;
           tries < 24 && AisleOf(product) != theme_a &&
           AisleOf(product) != theme_b;
           ++tries) {
        product = popularity_->Next(rng);
      }
    }
    basket.insert(product);
  }
  return {basket.begin(), basket.end()};
}

void InstacartWorkload::ForEachRecord(
    const std::function<void(const RecordId&, const storage::Record&)>& load)
    const {
  for (uint64_t i = 0; i < options_.num_products; ++i) {
    Record r(2, 64);
    r.Set(0, options_.initial_stock);
    r.Set(1, 0);
    load(RecordId{kStock, i}, r);
  }
}

std::vector<partition::TxnAccessTrace> InstacartWorkload::GenerateTrace(
    size_t n, Rng* rng) {
  std::vector<partition::TxnAccessTrace> traces;
  traces.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    partition::TxnAccessTrace trace;
    for (uint64_t product : SampleBasket(rng)) {
      trace.accesses.emplace_back(RecordId{kStock, product}, true);
    }
    traces.push_back(std::move(trace));
  }
  return traces;
}

std::unique_ptr<Transaction> InstacartWorkload::Next(PartitionId home,
                                                     Rng* rng) {
  CHILLER_CHECK(home < order_seq_.size());
  const auto basket = SampleBasket(rng);
  std::vector<int64_t> params = {static_cast<int64_t>(home),
                                 static_cast<int64_t>(order_seq_[home]++),
                                 static_cast<int64_t>(basket.size())};
  for (uint64_t item : basket) params.push_back(static_cast<int64_t>(item));
  return BuildOrderTxn(std::move(params));
}

std::unique_ptr<Transaction> InstacartWorkload::Rebuild(
    const Transaction& t) {
  return BuildOrderTxn(t.ctx.params);
}

InstacartLayouts BuildInstacartLayouts(InstacartWorkload* workload, uint32_t k,
                                       size_t trace_txns, uint64_t seed,
                                       double hot_threshold,
                                       bool with_schism) {
  InstacartLayouts out;
  Rng rng(seed);
  out.traces = workload->GenerateTrace(trace_txns, &rng);
  for (const auto& t : out.traces) out.stats.ObserveTrace(t);

  partition::ChillerPartitioner::Options copts;
  copts.k = k;
  copts.hot_threshold = hot_threshold;
  copts.epsilon = 0.1;
  // Balance record *accesses* per partition (Section 4.3's third load
  // metric): the skewed grocery workload overloads a popular partition
  // under a plain record-count balance.
  copts.metric = partition::LoadMetric::kAccessCount;
  copts.fallback_fn = InstacartFallback;
  out.chiller_out = partition::ChillerPartitioner::Build(out.traces, copts);

  std::vector<RecordId> hot;
  for (const auto& [rid, pc] : out.chiller_out.hot_records) {
    (void)pc;
    hot.push_back(rid);
  }
  out.hash_base =
      std::make_unique<partition::HashPartitioner>(k, InstacartFallback);
  out.hashing =
      std::make_unique<partition::HotDecorator>(out.hash_base.get(), hot);
  if (with_schism) {
    out.schism_out = partition::SchismPartitioner::Build(
        out.traces, {.k = k, .epsilon = 0.1, .fallback_fn = InstacartFallback});
    out.schism = std::make_unique<partition::HotDecorator>(
        out.schism_out.partitioner.get(), hot);
  }
  return out;
}

}  // namespace chiller::workload::instacart
