// Synthetic Instacart-like grocery workload (substitution for the real
// Instacart 2017 dataset — see DESIGN.md section 1).
//
// Reproduces the two measured properties the paper's partitioning
// experiments depend on:
//  - heavy item-popularity skew: the top product appears in ~15% of
//    baskets, the second in ~8%, with a Zipf tail (Section 7.2.1), which
//    translates directly into stock-record contention;
//  - cross-category baskets (~10 items spanning several aisles), which
//    defeat range partitioning and give Schism's co-access graph no clean
//    cut.
#ifndef CHILLER_WORKLOAD_INSTACART_H_
#define CHILLER_WORKLOAD_INSTACART_H_

#include <memory>
#include <string>
#include <vector>

#include "cc/driver.h"
#include "common/zipf.h"
#include "partition/chiller_partitioner.h"
#include "partition/hot_decorator.h"
#include "partition/schism.h"
#include "partition/stats_collector.h"
#include "storage/record.h"
#include "txn/transaction.h"

namespace chiller::workload::instacart {

/// Table ids and layouts.
enum Table : TableId {
  kStock = 0,  // fields: quantity, ytd   key: product id
  kOrder = 1,  // fields: num_items       key: home partition * stride + seq
};

/// Order rows are created at the coordinator's partition (like TPC-C orders
/// at their home warehouse); the key encodes that placement.
inline constexpr Key kOrderStride = 1ULL << 40;

inline Key OrderKeyFor(PartitionId home, uint64_t seq) {
  return static_cast<Key>(home) * kOrderStride + seq;
}
inline PartitionId HomeOfOrder(Key order_key) {
  return static_cast<PartitionId>(order_key / kOrderStride);
}

std::vector<storage::TableSpec> Schema();

/// Partition rule shared by every Instacart layout: order rows live on the
/// partition their key encodes; everything else hashes. Pass as the
/// fallback of LookupPartitioner / the custom fn of HashPartitioner.
PartitionId InstacartFallback(const RecordId& rid, uint32_t k);

/// The NewOrder-style grocery checkout of Section 7.2.1: decrements the
/// stock of every basket item and inserts an order row at the home
/// partition ("reads the stock values of a number of items, subtracts each
/// one by 1, and inserts a new record in the order table").
/// Params: [home, order_seq, num_items, item...].
std::unique_ptr<txn::Transaction> BuildOrderTxn(std::vector<int64_t> params);

/// Generates baskets with the popularity profile above. Also emits access
/// traces for the partitioning pipelines.
class InstacartWorkload : public cc::WorkloadSource {
 public:
  struct Options {
    uint64_t num_products = 49688;  // catalog size of the real dataset
    uint64_t num_customers = 200000;
    uint32_t num_aisles = 134;
    double mean_basket = 10.0;
    /// Inclusion probabilities of the two headline items (15% / 8%).
    double top1_basket_share = 0.15;
    double top2_basket_share = 0.08;
    /// Zipf skew of the remaining catalog.
    double tail_theta = 0.6;
    /// Fraction of each basket drawn from the basket's theme aisles
    /// (cross-category structure). Real grocery baskets are dominated by
    /// one or two departments with a long cross-category tail.
    double theme_fraction = 0.85;
    /// Probability that the basket has a single theme aisle (vs. two).
    double single_theme_prob = 0.6;
    int64_t initial_stock = 1'000'000'000;
    uint64_t seed = 42;
  };

  explicit InstacartWorkload(Options options);

  const Options& options() const { return options_; }

  /// Loads stock records (orders are created at run time).
  void ForEachRecord(
      const std::function<void(const RecordId&, const storage::Record&)>&
          load) const;

  /// Samples one basket of product ids (no duplicates).
  std::vector<uint64_t> SampleBasket(Rng* rng);

  /// Access traces for the partitioner training phase: the stock writes
  /// (order inserts are new records and appear in no trace, as in any real
  /// workload capture).
  std::vector<partition::TxnAccessTrace> GenerateTrace(size_t n, Rng* rng);

  std::unique_ptr<txn::Transaction> Next(PartitionId home, Rng* rng) override;
  std::unique_ptr<txn::Transaction> Rebuild(
      const txn::Transaction& t) override;
  uint32_t NumClasses() const override { return 1; }
  std::string ClassName(uint32_t) const override { return "GroceryOrder"; }

 private:
  uint64_t AisleOf(uint64_t product) const;

  Options options_;
  std::unique_ptr<AliasSampler> popularity_;
  std::vector<double> weights_;
  std::vector<uint64_t> order_seq_;  // per home partition
};

/// The three layouts of the paper's Figures 7/8, built from one trace and
/// all exposing the same hot-record set, so the run-time two-region
/// decision is identical across layouts and only placement differs.
struct InstacartLayouts {
  std::unique_ptr<partition::RecordPartitioner> hash_base;
  std::unique_ptr<partition::HotDecorator> hashing;
  partition::SchismPartitioner::Output schism_out;
  std::unique_ptr<partition::HotDecorator> schism;
  partition::ChillerPartitioner::Output chiller_out;
  std::vector<partition::TxnAccessTrace> traces;
  partition::StatsCollector stats;
};

/// Samples `trace_txns` baskets from `workload` with Rng(seed) and builds
/// the layouts for `k` partitions. Deterministic in (workload options, k,
/// trace_txns, seed, hot_threshold) — scenario workers may rebuild layouts
/// independently and get identical placements. `with_schism` = false skips
/// the Schism build (up to 5x costlier than Chiller's, and its output does
/// not feed the other layouts' hot sets): scenarios that run only the hash
/// or chiller layout leave `schism_out`/`schism` null.
InstacartLayouts BuildInstacartLayouts(InstacartWorkload* workload, uint32_t k,
                                       size_t trace_txns, uint64_t seed = 7,
                                       double hot_threshold = 0.01,
                                       bool with_schism = true);

}  // namespace chiller::workload::instacart

#endif  // CHILLER_WORKLOAD_INSTACART_H_
