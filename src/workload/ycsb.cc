#include "workload/ycsb.h"

#include <algorithm>
#include <set>
#include <utility>

#include "common/logging.h"

namespace chiller::workload::ycsb {

namespace {
using storage::LockMode;
using storage::Record;
using txn::Operation;
using txn::OpType;
using txn::Transaction;
using txn::TxnContext;

constexpr size_t kFieldsPerRecord = 8;
constexpr size_t kWireBytes = 100;  // the YCSB-standard 10x10B payload
}  // namespace

std::vector<storage::TableSpec> Schema() {
  return {
      {.name = "usertable", .id = kMain, .num_fields = kFieldsPerRecord,
       .wire_bytes = kWireBytes, .buckets_per_partition = 1u << 16},
  };
}

std::unique_ptr<Transaction> BuildYcsbTxn(std::vector<int64_t> params) {
  auto t = std::make_unique<Transaction>();
  t->txn_class = 0;
  t->ctx.params = std::move(params);
  const auto& p = t->ctx.params;
  const int64_t num_ops = p[0];

  // The engine forbids lock upgrades within a transaction (Figure 4's
  // read_with_wl): once any op writes, every read of the transaction takes
  // the write lock up front — two keys may share a bucket, and a shared
  // bucket holder would block a later exclusive piggyback. Read-only
  // transactions keep shared locks and stay fully concurrent.
  bool has_write = false;
  for (int64_t i = 0; i < num_ops; ++i) has_write |= p[2 + 2 * i] != 0;

  std::vector<Operation> ops;
  ops.reserve(static_cast<size_t>(num_ops));
  for (int64_t i = 0; i < num_ops; ++i) {
    const Key key = static_cast<Key>(p[1 + 2 * i]);
    const bool is_write = p[2 + 2 * i] != 0;
    Operation op;
    op.table = kMain;
    op.key_fn = [key](const TxnContext&) { return key; };
    op.mode = has_write ? LockMode::kExclusive : LockMode::kShared;
    if (is_write) {
      op.type = OpType::kUpdate;
      op.on_apply = [](TxnContext&, Record* r) {
        r->Add(0, 1);  // bump the counter field; fields 1..7 are payload
      };
    } else {
      op.type = OpType::kRead;
    }
    ops.push_back(std::move(op));
  }
  t->ops = std::move(ops);
  t->InitAccesses();
  return t;
}

YcsbWorkload::YcsbWorkload(Options options)
    : options_(options),
      zipf_(options.keys_per_partition, options.theta) {
  CHILLER_CHECK(options_.num_partitions >= 1);
  CHILLER_CHECK(options_.keys_per_partition >= options_.ops_per_txn)
      << "a transaction must be able to draw distinct keys";
  CHILLER_CHECK(options_.ops_per_txn >= 1);
  CHILLER_CHECK(options_.hot_keys_per_partition <=
                options_.keys_per_partition);
  CHILLER_CHECK(options_.shift_stride < options_.keys_per_partition)
      << "the rotation is modular; a full-circle stride is a no-op";
  CHILLER_CHECK((options_.shift_every > 0) == (options_.shift_stride > 0))
      << "shift_every and shift_stride enable the shifting hot set together";
}

void YcsbWorkload::ForEachRecord(
    const std::function<void(const RecordId&, const storage::Record&)>& load)
    const {
  for (uint32_t p = 0; p < options_.num_partitions; ++p) {
    for (uint64_t k = 0; k < options_.keys_per_partition; ++k) {
      Record r(kFieldsPerRecord, kWireBytes);
      r.Set(0, options_.initial_value);
      load(RecordId{kMain, p * options_.keys_per_partition + k}, r);
    }
  }
}

std::vector<Key> YcsbWorkload::SampleKeys(PartitionId home, Rng* rng) {
  const bool distributed = rng->Bernoulli(options_.distributed_ratio);
  // Popularity rotation for the shifting hot set: the Zipf draw yields a
  // *rank*; the rank-to-key mapping slides by shift_stride per elapsed
  // window. Pure arithmetic on the (shard-invariant) clock, so the drawn
  // key stream is the same for any shard count.
  uint64_t rotation = 0;
  if (options_.shift_every > 0 && clock_) {
    rotation = (static_cast<uint64_t>(clock_()) /
                static_cast<uint64_t>(options_.shift_every)) *
               options_.shift_stride;
  }
  std::set<Key> keys;
  int guard = 0;
  while (keys.size() < options_.ops_per_txn && guard++ < 10000) {
    const uint64_t part =
        distributed ? rng->Uniform(options_.num_partitions) : home;
    const uint64_t rank =
        (zipf_.Next(rng) + rotation) % options_.keys_per_partition;
    keys.insert(part * options_.keys_per_partition + rank);
  }
  return {keys.begin(), keys.end()};
}

std::vector<partition::TxnAccessTrace> YcsbWorkload::GenerateTrace(size_t n,
                                                                  Rng* rng) {
  std::vector<partition::TxnAccessTrace> traces;
  traces.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const PartitionId home =
        static_cast<PartitionId>(rng->Uniform(options_.num_partitions));
    partition::TxnAccessTrace trace;
    for (Key key : SampleKeys(home, rng)) {
      trace.accesses.emplace_back(RecordId{kMain, key},
                                  !rng->Bernoulli(options_.read_ratio));
    }
    traces.push_back(std::move(trace));
  }
  return traces;
}

std::unique_ptr<Transaction> YcsbWorkload::Next(PartitionId home, Rng* rng) {
  const auto keys = SampleKeys(home, rng);
  std::vector<int64_t> params = {static_cast<int64_t>(keys.size())};
  params.reserve(1 + 2 * keys.size());
  for (Key key : keys) {
    params.push_back(static_cast<int64_t>(key));
    params.push_back(rng->Bernoulli(options_.read_ratio) ? 0 : 1);
  }
  return BuildYcsbTxn(std::move(params));
}

std::unique_ptr<Transaction> YcsbWorkload::Rebuild(const Transaction& t) {
  return BuildYcsbTxn(t.ctx.params);
}

}  // namespace chiller::workload::ycsb
