// Synthetic YCSB-style key-value workload with tunable contention.
//
// One table of 8-field records, range-partitioned by key. Each transaction
// touches `ops_per_txn` distinct keys: per-operation Zipf skew (`theta`),
// read/update mix (`read_ratio`), and a per-transaction probability of
// spanning partitions (`distributed_ratio`). These are exactly the
// sensitivity-analysis knobs of the paper's evaluation grid — skew drives
// record contention, the distributed ratio drives the Figure 10 x-axis —
// exposed as one registry workload so new scenario families need no new
// generator. The first `hot_keys_per_partition` Zipf ranks of each
// partition are flagged hot, which is what lets Chiller's two-region
// planner engage on this workload.
#ifndef CHILLER_WORKLOAD_YCSB_H_
#define CHILLER_WORKLOAD_YCSB_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "cc/driver.h"
#include "common/zipf.h"
#include "partition/lookup_table.h"
#include "partition/stats_collector.h"
#include "storage/record.h"
#include "txn/transaction.h"

namespace chiller::workload::ycsb {

inline constexpr TableId kMain = 0;

std::vector<storage::TableSpec> Schema();

/// Key layout: partition * keys_per_partition + zipf rank (rank 0 is the
/// partition's hottest key). Placement is recoverable from the key alone.
class YcsbPartitioner : public partition::RecordPartitioner {
 public:
  YcsbPartitioner(uint32_t num_partitions, uint64_t keys_per_partition,
                  uint64_t hot_keys_per_partition)
      : num_partitions_(num_partitions),
        keys_per_partition_(keys_per_partition),
        hot_keys_(hot_keys_per_partition) {}

  PartitionId PartitionOf(const RecordId& rid) const override {
    return static_cast<PartitionId>((rid.key / keys_per_partition_) %
                                    num_partitions_);
  }
  bool IsHot(const RecordId& rid) const override {
    return rid.key % keys_per_partition_ < hot_keys_;
  }
  /// Range placement + rank threshold need no per-record entries.
  size_t LookupEntries() const override { return 0; }

 private:
  uint32_t num_partitions_;
  uint64_t keys_per_partition_;
  uint64_t hot_keys_;
};

/// Builds one transaction. params = [num_ops, (key, is_write)...].
std::unique_ptr<txn::Transaction> BuildYcsbTxn(std::vector<int64_t> params);

class YcsbWorkload : public cc::WorkloadSource {
 public:
  struct Options {
    uint32_t num_partitions = 8;
    uint64_t keys_per_partition = 10000;
    /// Zipf skew of per-partition key popularity (0 = uniform).
    double theta = 0.9;
    /// Per-operation probability of a read (vs. a read-modify-write).
    double read_ratio = 0.5;
    /// Probability that a transaction draws keys from the whole cluster
    /// instead of only its home partition.
    double distributed_ratio = 0.1;
    uint32_t ops_per_txn = 10;
    /// Zipf ranks below this are flagged hot on every partition.
    uint64_t hot_keys_per_partition = 4;
    int64_t initial_value = 0;
    /// Phase-shifting hot set: every `shift_every` of simulated time the
    /// per-partition popularity ranking rotates by `shift_stride` keys
    /// (rank r maps to key (r + windows_elapsed * stride) mod
    /// keys_per_partition), so yesterday's cold keys become today's hot
    /// ones — the diurnal/hot-set-rotation regime the adaptive
    /// controller's re-arm exists for. 0 (the default) disables shifting;
    /// enabling it requires SetClock. Retries rebuild from absolute keys
    /// in the params, so a transaction straddling a shift keeps its
    /// original keys.
    SimTime shift_every = 0;
    uint64_t shift_stride = 0;
  };

  explicit YcsbWorkload(Options options);

  const Options& options() const { return options_; }

  /// Binds the simulated-time source the shifting hot set rotates on
  /// (typically the cluster's simulator clock). Draws happen in engine
  /// events, where now() is shard-invariant, so shifting workloads stay
  /// byte-identical for any shard count.
  void SetClock(std::function<SimTime()> clock) { clock_ = std::move(clock); }

  /// Loads every key of every partition with an 8-field record.
  void ForEachRecord(
      const std::function<void(const RecordId&, const storage::Record&)>&
          load) const;

  /// Access traces for the partitioning pipeline (same sampling as Next).
  std::vector<partition::TxnAccessTrace> GenerateTrace(size_t n, Rng* rng);

  std::unique_ptr<txn::Transaction> Next(PartitionId home, Rng* rng) override;
  std::unique_ptr<txn::Transaction> Rebuild(
      const txn::Transaction& t) override;
  uint32_t NumClasses() const override { return 1; }
  std::string ClassName(uint32_t) const override { return "YcsbMix"; }

 private:
  /// Distinct keys for one transaction homed at `home`.
  std::vector<Key> SampleKeys(PartitionId home, Rng* rng);

  Options options_;
  ZipfGenerator zipf_;
  std::function<SimTime()> clock_;  ///< unset => rotation pinned at 0
};

}  // namespace chiller::workload::ycsb

#endif  // CHILLER_WORKLOAD_YCSB_H_
