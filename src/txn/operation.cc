#include "txn/operation.h"

// Operation is header-only; this TU anchors the module in the build.
namespace chiller::txn {}
