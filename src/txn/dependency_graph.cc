#include "txn/dependency_graph.h"

#include <algorithm>
#include <map>

#include "common/logging.h"

namespace chiller::txn {

std::vector<std::vector<int>> DependencyAnalysis::PkChildren(
    const std::vector<Operation>& ops) {
  std::vector<std::vector<int>> children(ops.size());
  for (size_t i = 0; i < ops.size(); ++i) {
    for (int d : ops[i].pk_deps) {
      children[static_cast<size_t>(d)].push_back(static_cast<int>(i));
    }
  }
  return children;
}

Status DependencyAnalysis::Validate(const std::vector<Operation>& ops) {
  for (size_t i = 0; i < ops.size(); ++i) {
    const Operation& op = ops[i];
    if (!op.key_fn) {
      return Status::InvalidArgument("op " + std::to_string(i) +
                                     " missing key_fn");
    }
    for (int d : op.pk_deps) {
      if (d < 0 || static_cast<size_t>(d) >= i) {
        return Status::InvalidArgument("op " + std::to_string(i) +
                                       " pk-dep out of order");
      }
    }
    for (int d : op.v_deps) {
      if (d < 0 || static_cast<size_t>(d) >= i) {
        return Status::InvalidArgument("op " + std::to_string(i) +
                                       " v-dep out of order");
      }
    }
    if (op.type == OpType::kInsert && !op.make_record) {
      return Status::InvalidArgument("insert op " + std::to_string(i) +
                                     " missing make_record");
    }
    if (op.type == OpType::kUpdate && !op.on_apply && !op.on_read) {
      return Status::InvalidArgument("update op " + std::to_string(i) +
                                     " has no closure");
    }
    if (op.IsWrite() && op.mode != storage::LockMode::kExclusive) {
      return Status::InvalidArgument("write op " + std::to_string(i) +
                                     " must lock exclusive");
    }
    if (op.co_located_with_dep && op.pk_deps.empty()) {
      return Status::InvalidArgument("op " + std::to_string(i) +
                                     " co-located without pk-dep");
    }
  }
  return Status::OK();
}

namespace {

/// Can op `i` execute inside an inner region hosted on partition `host`?
/// Recursively requires every pk-descendant to be placeable there too
/// (Section 3.3 step 1: a record cannot move to the inner region if any
/// child's key is unknown or lives on another partition).
bool CanJoinInner(const Transaction& txn,
                  const std::vector<std::vector<int>>& children, size_t i,
                  PartitionId host) {
  const Access& acc = txn.accesses[i];
  if (acc.key_resolved) {
    if (acc.partition != host) return false;
  } else {
    // Unresolved key: only a static co-location guarantee makes this legal.
    if (!txn.ops[i].co_located_with_dep) return false;
  }
  for (int c : children[i]) {
    if (!CanJoinInner(txn, children, static_cast<size_t>(c), host)) {
      return false;
    }
  }
  return true;
}

}  // namespace

TwoRegionPlan DependencyAnalysis::Plan(const Transaction& txn,
                                       const HotFn& is_hot,
                                       const PartitionFn& partition_of) {
  // Accesses already carry their partition (InitAccesses); the fn stays in
  // the signature for callers that plan before placement is materialized.
  (void)partition_of;
  TwoRegionPlan plan;
  const size_t n = txn.ops.size();
  CHILLER_CHECK(txn.accesses.size() == n) << "InitAccesses not called";
  const auto children = PkChildren(txn.ops);

  // Step 1: hot records eligible for an inner region, grouped by partition.
  std::map<PartitionId, int> hot_per_partition;
  for (size_t i = 0; i < n; ++i) {
    const Access& acc = txn.accesses[i];
    if (!acc.key_resolved || !is_hot(acc.rid)) continue;
    const PartitionId p = acc.partition;
    if (CanJoinInner(txn, children, i, p)) ++hot_per_partition[p];
  }
  if (hot_per_partition.empty()) {
    plan.fallback_reason = "no eligible hot records";
    return plan;
  }

  // Step 2: single inner host = candidate partition with most hot records
  // (ties broken toward the lowest id for determinism).
  PartitionId host = kInvalidPartition;
  int best = -1;
  for (const auto& [p, cnt] : hot_per_partition) {
    if (cnt > best) {
      best = cnt;
      host = p;
    }
  }

  // Closure: every op on the host partition joins the inner region when its
  // pk-descendant closure allows; everything else is outer. Membership of
  // unresolved-key ops follows their co-location parent.
  std::vector<bool> inner(n, false);
  for (size_t i = 0; i < n; ++i) {
    const Access& acc = txn.accesses[i];
    if (acc.key_resolved && acc.partition == host &&
        CanJoinInner(txn, children, i, host)) {
      inner[i] = true;
    }
  }
  // Pull in co-located children of inner ops (keys resolve inside the
  // inner region; the guarantee says they land on the host partition).
  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t i = 0; i < n; ++i) {
      if (inner[i] || txn.accesses[i].key_resolved) continue;
      if (!txn.ops[i].co_located_with_dep) continue;
      const int parent = txn.ops[i].pk_deps.front();
      if (inner[static_cast<size_t>(parent)]) {
        inner[i] = true;
        changed = true;
      }
    }
  }

  // Guard legality: every guard must run before the inner region commits.
  // An outer op's guard may only depend on outer reads.
  for (size_t i = 0; i < n; ++i) {
    if (inner[i] || !txn.ops[i].guard) continue;
    for (int d : txn.ops[i].v_deps) {
      if (inner[static_cast<size_t>(d)]) {
        plan.fallback_reason =
            "outer guard depends on inner read (op " + std::to_string(i) + ")";
        return plan;
      }
    }
  }

  // Skip-group legality: a group member must never execute before the probe
  // that can disable its group. The outer region runs first, so an outer
  // member whose group can be killed by an earlier inner op (a may_be_missing
  // probe) would access a record the probe was meant to skip.
  for (size_t i = 0; i < n; ++i) {
    if (inner[i] || txn.ops[i].skip_group < 0) continue;
    for (size_t j = 0; j < i; ++j) {
      if (inner[j] && txn.ops[j].may_be_missing &&
          txn.ops[j].skip_group == txn.ops[i].skip_group) {
        plan.fallback_reason = "outer op in a skip group guarded by an inner "
                               "probe (op " +
                               std::to_string(i) + ")";
        return plan;
      }
    }
  }

  // An outer op whose *key* depends on an inner read is illegal: its lock
  // could only be taken after the inner region committed.
  for (size_t i = 0; i < n; ++i) {
    if (inner[i]) continue;
    for (int d : txn.ops[i].pk_deps) {
      if (inner[static_cast<size_t>(d)]) {
        plan.fallback_reason =
            "outer op pk-depends on inner op (op " + std::to_string(i) + ")";
        return plan;
      }
    }
  }

  for (size_t i = 0; i < n; ++i) {
    if (inner[i]) {
      plan.inner_ops.push_back(static_cast<int>(i));
    } else {
      plan.outer_ops.push_back(static_cast<int>(i));
      // Defer the apply of outer writes that consume inner results.
      bool deferred = false;
      for (int d : txn.ops[i].v_deps) {
        if (inner[static_cast<size_t>(d)]) deferred = true;
      }
      if (deferred && txn.ops[i].IsWrite()) {
        plan.deferred_apply.push_back(static_cast<int>(i));
      }
    }
  }

  plan.two_region = !plan.inner_ops.empty();
  plan.inner_host = host;
  if (!plan.two_region) {
    // Fallback plans carry no op lists: the transaction executes whole
    // under plain 2PL + 2PC.
    plan.fallback_reason = "empty inner region";
    plan.inner_host = kInvalidPartition;
    plan.outer_ops.clear();
    plan.deferred_apply.clear();
  }
  return plan;
}

}  // namespace chiller::txn
