// Dependency-graph analysis: re-ordering constraints and the run-time
// two-region decision (paper Sections 3.2 and 3.3).
#ifndef CHILLER_TXN_DEPENDENCY_GRAPH_H_
#define CHILLER_TXN_DEPENDENCY_GRAPH_H_

#include <functional>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "txn/transaction.h"

namespace chiller::txn {

/// Predicate over records: is this record in the hot lookup table?
using HotFn = std::function<bool(const RecordId&)>;
/// Record-to-partition mapping (the lookup table + default partitioner).
using PartitionFn = std::function<PartitionId(const RecordId&)>;

/// Output of the run-time decision (Section 3.3 steps 1-2): which operations
/// run in the inner region on which host, which run in the outer region, and
/// which outer applies must wait for inner results (value dependencies).
struct TwoRegionPlan {
  /// False => execute as a normal transaction (plain 2PL + 2PC).
  bool two_region = false;
  PartitionId inner_host = kInvalidPartition;
  /// Instance indices, preserving original relative order.
  std::vector<int> inner_ops;
  std::vector<int> outer_ops;
  /// Subset of outer_ops whose on_apply must run after the inner region
  /// returns (their new values depend on inner reads), i.e. "outer region
  /// phase 2" in Figure 4.
  std::vector<int> deferred_apply;
  /// Human-readable reason when two_region is false (for tests/diagnostics).
  std::string fallback_reason;
};

/// Static + runtime dependency analysis over a transaction's op list.
/// Ops are given in program order; pk_deps/v_deps must reference earlier
/// indices, so the instance graph is a DAG by construction (validated).
class DependencyAnalysis {
 public:
  /// children[i] = indices of ops with a pk-dependency on op i.
  static std::vector<std::vector<int>> PkChildren(
      const std::vector<Operation>& ops);

  /// Checks the structural invariants of an op list: dependency indices in
  /// range and strictly smaller than the dependent op (program order is a
  /// topological order), insert/update closures present, key_fn set.
  static Status Validate(const std::vector<Operation>& ops);

  /// The run-time decision of Section 3.3:
  ///  step 1 — find hot records that may move to the inner region: a hot
  ///           record qualifies iff every pk-descendant either has a
  ///           resolved key on the same partition or carries a static
  ///           co-location guarantee;
  ///  step 2 — among candidate partitions, pick the one holding the most
  ///           hot records as the single inner host;
  ///  closure — every op on the inner host partition joins the inner region
  ///           when legal; pk-descendants of inner ops are pulled in;
  ///  guards  — a guard must run before the inner region commits, so an
  ///           outer op whose guard value-depends on inner reads forces a
  ///           fallback to normal execution (never a post-commit abort);
  ///  phase 2 — outer updates value-depending on inner reads are deferred.
  ///
  /// Requires txn.ResolveReadyKeys() to have run.
  static TwoRegionPlan Plan(const Transaction& txn, const HotFn& is_hot,
                            const PartitionFn& partition_of);
};

}  // namespace chiller::txn

#endif  // CHILLER_TXN_DEPENDENCY_GRAPH_H_
