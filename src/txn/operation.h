// Declarative transaction operations.
//
// A stored procedure compiles into a list of Operations. Each operation
// touches exactly one record (multi-record logic, e.g. a TPC-C order's item
// loop, expands into one operation per record at generation time). The
// declarative structure — key functions, pk-/v-dependencies, guards — is
// what the dependency-graph analysis of paper Section 3.2 consumes.
#ifndef CHILLER_TXN_OPERATION_H_
#define CHILLER_TXN_OPERATION_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/logging.h"
#include "common/types.h"
#include "storage/partition_store.h"
#include "storage/record.h"

namespace chiller::txn {

/// What the operation does to its record.
enum class OpType {
  kRead,    ///< shared or exclusive read; on_read captures values
  kUpdate,  ///< read-modify-write; on_read then on_apply
  kInsert,  ///< creates a record via make_record
  kErase,   ///< deletes the record
};

/// Runtime state a transaction's closures read and write: the procedure's
/// input parameters plus slot-addressed local variables (e.g. a computed
/// order total, a flight price read earlier).
struct TxnContext {
  std::vector<int64_t> params;
  std::vector<int64_t> vars;

  int64_t Param(size_t i) const {
    CHILLER_DCHECK(i < params.size());
    return params[i];
  }
  int64_t Var(size_t i) const {
    CHILLER_DCHECK(i < vars.size());
    return vars[i];
  }
  void SetVar(size_t i, int64_t v) {
    if (i >= vars.size()) vars.resize(i + 1, 0);
    vars[i] = v;
  }
};

/// Computes the primary key of an operation's record. For operations with
/// pk-dependencies the function may read context variables produced by the
/// parent operation (e.g. seat_id derived from the flight record).
using KeyFn = std::function<Key(const TxnContext&)>;

/// Runs when the record's current value is fetched (under the lock).
using ReadFn = std::function<void(TxnContext&, const storage::Record&)>;

/// Mutates the (buffered) record image; runs at apply time.
using ApplyFn = std::function<void(TxnContext&, storage::Record*)>;

/// Value constraint ("if" condition). False => the transaction must abort
/// with a user abort. Guards are evaluated where the operation executes;
/// placement legality is enforced by the two-region planner.
using GuardFn = std::function<bool(const TxnContext&)>;

/// Builds the record image for an insert.
using MakeRecordFn = std::function<storage::Record(const TxnContext&)>;

/// One record access inside a transaction.
struct Operation {
  /// Stable id of the stored-procedure template this op instantiates
  /// (several instances may share one template, e.g. per-item stock ops).
  int template_id = -1;

  OpType type = OpType::kRead;
  TableId table = 0;
  storage::LockMode mode = storage::LockMode::kShared;

  /// Key computation; callable once every op in `pk_deps` has executed.
  KeyFn key_fn;

  /// Instance indices of operations whose *read results determine this
  /// op's primary key* (solid edges in Figure 4). Restricts re-ordering.
  std::vector<int> pk_deps;

  /// Instance indices of operations whose read results feed this op's new
  /// values or guard (dashed edges in Figure 4). Do not restrict lock
  /// order, but do force apply-order and guard placement.
  std::vector<int> v_deps;

  GuardFn guard;             ///< optional value constraint
  ReadFn on_read;            ///< optional
  ApplyFn on_apply;          ///< optional (kUpdate)
  MakeRecordFn make_record;  ///< kInsert only

  /// Static guarantee that this op's key lands on the same partition as its
  /// first pk-dependency's record (e.g. a composite key sharing the
  /// partitioning prefix, like the seats table keyed by flight_id). Allows
  /// the parent to enter an inner region despite the unresolved child key
  /// (Section 3.3 step 1, case (b)).
  bool co_located_with_dep = false;

  /// The table is fully replicated to every partition and read-only (TPC-C
  /// ITEM): the access is served from the coordinator's local copy instead
  /// of the partitioner's placement. Must be a read.
  bool access_local_replica = false;

  /// The record may legitimately be absent (e.g. TPC-C Delivery probing for
  /// an undelivered order). A miss is not an error: the op becomes a no-op
  /// and, if `skip_group` is set, the rest of its group is skipped.
  bool may_be_missing = false;

  /// Conditional-execution group: when a may_be_missing op in this group
  /// misses, every later op with the same group id is skipped. -1 = none.
  int skip_group = -1;

  bool IsWrite() const { return type != OpType::kRead; }
};

}  // namespace chiller::txn

#endif  // CHILLER_TXN_OPERATION_H_
