// Runtime transaction instance shared by all protocols.
#ifndef CHILLER_TXN_TRANSACTION_H_
#define CHILLER_TXN_TRANSACTION_H_

#include <set>
#include <string>
#include <vector>

#include "common/types.h"
#include "storage/record.h"
#include "txn/operation.h"

namespace chiller::txn {

/// Final fate of one transaction attempt.
enum class Outcome {
  kPending,
  kCommitted,
  kAbortConflict,  ///< NO_WAIT lock conflict or failed OCC validation
  kAbortUser,      ///< a guard (value constraint) evaluated to false
};

/// Per-operation runtime access state. `local_copy` is the buffered record
/// image all protocols mutate; primaries only see it at commit time, which
/// gives uniform roll-back semantics.
struct Access {
  bool key_resolved = false;
  RecordId rid;
  PartitionId partition = kInvalidPartition;
  bool lock_held = false;
  bool fetched = false;
  bool applied = false;
  /// Index of an earlier access of this transaction that already holds the
  /// lock on the same record (read-own-writes aliasing); -1 if none.
  int alias_of = -1;
  /// The record was absent (only possible for may_be_missing ops); aliases
  /// of a missing holder are misses too.
  bool missing = false;
  /// This access's bucket is already locked by an earlier access of the
  /// same transaction on a *different* key (hash collision): it fetched
  /// and buffers its own record but holds no lock itself — its write-back
  /// rides on the holder's bucket lock and must land before the unlock.
  bool bucket_piggyback = false;
  /// Set on the lock-holding access when it, or any alias of it, buffered a
  /// write — the commit phase writes these back and replicates them.
  bool wrote = false;
  uint64_t observed_version = 0;  ///< OCC validation stamp
  storage::Record local_copy;
};

/// One transaction attempt: the op list (instance-level dependency DAG),
/// its context, and per-op access state.
class Transaction {
 public:
  TxnId id = 0;
  /// Workload-defined class (e.g. TPC-C NewOrder=0, Payment=1, ...).
  uint32_t txn_class = 0;
  /// Partition whose engine coordinates this transaction (the "home").
  PartitionId home = 0;

  std::vector<Operation> ops;
  TxnContext ctx;
  std::vector<Access> accesses;  // sized 1:1 with ops

  /// Skip groups whose guard record was missing (see
  /// Operation::skip_group); later ops in these groups become no-ops.
  std::set<int> dead_groups;

  /// True if op `i` must be skipped because its group is dead.
  bool IsSkipped(size_t i) const {
    return ops[i].skip_group >= 0 && dead_groups.contains(ops[i].skip_group);
  }

  Outcome outcome = Outcome::kPending;
  /// Set when this attempt aborted because a live migration held the
  /// relayout bucket of one of its records (or re-homed the record after
  /// placement was resolved). The outcome stays kAbortConflict — the retry
  /// machinery is identical — but the driver counts the attempt into the
  /// dedicated migration abort class instead of the conflict class.
  bool blocked_by_migration = false;
  /// Set when a two-region attempt discovered at runtime that an op's
  /// declared co-location does not hold under the live layout (possible
  /// once online relayout replaces the layout the workload was written
  /// against). Carried across retries: the rebuilt attempt runs the
  /// fallback protocol instead of replanning the same broken inner region.
  bool force_fallback = false;
  uint32_t attempt = 0;
  SimTime start_time = 0;
  SimTime end_time = 0;
  /// Open-loop load models: how long this request waited in the admission
  /// queue before its first attempt launched (carried across retries). 0
  /// under closed-loop and batched admission.
  SimTime admission_delay = 0;
  /// Predicted conflict class assigned by the admission scheduler
  /// (schedule::Scheduler), or the cold sentinel when no conflict is
  /// expected / no classifying scheduler is installed. Carried across
  /// retries: a retried attempt keeps both its slot and its class, so
  /// class-serialized admission stays consistent until the logical
  /// transaction settles. The value matches schedule::kColdClass.
  uint32_t sched_class = 0xffffffffu;
  /// Identity of the *logical* transaction across its retry attempts.
  /// Issued per engine as k * num_engines + e + 1 (so each engine counts
  /// its own draws) the first time the driver sees the transaction; `id`
  /// stays per-attempt. 0 means not yet assigned.
  TxnId logical_id = 0;
  /// True when the trace recorder sampled this logical transaction; every
  /// span/instant recording site checks this flag. Carried across retries.
  bool traced = false;

  /// Must be called once after `ops` is filled.
  void InitAccesses() { accesses.assign(ops.size(), Access{}); }

  /// True when all pk-dependencies of op `i` have been applied, i.e. its
  /// key function may run.
  bool KeyReady(size_t i) const {
    for (int d : ops[i].pk_deps) {
      if (!accesses[static_cast<size_t>(d)].fetched) return false;
    }
    return true;
  }

  /// Runs the key function of op `i` and records the resolved RecordId.
  void ResolveKey(size_t i) {
    accesses[i].rid = RecordId{ops[i].table, ops[i].key_fn(ctx)};
    accesses[i].key_resolved = true;
  }

  /// Resolves every operation whose dependencies are already satisfied
  /// (all ops with no pk-deps, ahead of execution).
  void ResolveReadyKeys() {
    for (size_t i = 0; i < ops.size(); ++i) {
      if (!accesses[i].key_resolved && KeyReady(i)) ResolveKey(i);
    }
  }

  bool HasConflictAbort() const { return outcome == Outcome::kAbortConflict; }
};

}  // namespace chiller::txn

#endif  // CHILLER_TXN_TRANSACTION_H_
