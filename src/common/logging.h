// Minimal logging and checked assertions (no external dependencies).
#ifndef CHILLER_COMMON_LOGGING_H_
#define CHILLER_COMMON_LOGGING_H_

#include <atomic>
#include <cstdlib>
#include <iostream>
#include <sstream>

namespace chiller {

/// Severity levels for CHILLER_LOG. kOff silences everything.
enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kOff = 3 };

namespace internal {

inline std::atomic<int>& MinLogLevelStorage() {
  static std::atomic<int> level{static_cast<int>(LogLevel::kInfo)};
  return level;
}

}  // namespace internal

/// Runtime log threshold: messages below it are skipped entirely (the
/// stream arguments are not evaluated). Defaults to kInfo, so debug-only
/// diagnostics stay quiet unless a test or tool opts in.
inline LogLevel MinLogLevel() {
  return static_cast<LogLevel>(
      internal::MinLogLevelStorage().load(std::memory_order_relaxed));
}
inline void SetMinLogLevel(LogLevel level) {
  internal::MinLogLevelStorage().store(static_cast<int>(level),
                                       std::memory_order_relaxed);
}

namespace internal {

/// Accumulates one log line and writes it to stderr on destruction.
/// Used only via the CHILLER_LOG macro below.
class LogStream {
 public:
  explicit LogStream(const char* tag) { stream_ << "[" << tag << "] "; }
  ~LogStream() { std::cerr << stream_.str() << std::endl; }
  template <typename T>
  LogStream& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

/// Accumulates a failure message and aborts the process on destruction.
/// Used only via the CHILLER_CHECK macros below.
class CheckFailStream {
 public:
  CheckFailStream(const char* file, int line, const char* expr) {
    stream_ << "CHECK failed at " << file << ":" << line << ": " << expr
            << " ";
  }
  ~CheckFailStream() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }
  template <typename T>
  CheckFailStream& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

/// Swallows streamed values when a check is compiled out.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

/// Lower-precedence-than-<< adapter so the ternary in the macro has type
/// void on both branches (the glog voidify trick).
struct Voidify {
  void operator&(const CheckFailStream&) {}
  void operator&(const NullStream&) {}
  void operator&(const LogStream&) {}
};

// Macro-friendly aliases for the CHILLER_LOG severity tokens.
inline constexpr LogLevel kLogLevelDEBUG = LogLevel::kDebug;
inline constexpr LogLevel kLogLevelINFO = LogLevel::kInfo;
inline constexpr LogLevel kLogLevelWARN = LogLevel::kWarn;

}  // namespace internal
}  // namespace chiller

/// Severity-leveled structured logging with a runtime minimum level:
///   CHILLER_LOG(INFO) << "sweep worker count " << jobs;
/// Levels: DEBUG, INFO, WARN. Lines render as "[LEVEL] message\n" on
/// stderr. Below-threshold messages cost one atomic load; their stream
/// arguments are never evaluated (<< binds into the ternary's live
/// branch), so hot paths can log freely at DEBUG.
#define CHILLER_LOG(severity)                                       \
  (::chiller::internal::kLogLevel##severity < ::chiller::MinLogLevel()) \
      ? (void)0                                                     \
      : ::chiller::internal::Voidify{} &                            \
            ::chiller::internal::LogStream(#severity)

/// Aborts with a message if `cond` is false. Always on (used to guard
/// protocol invariants whose violation would silently corrupt results).
/// Supports streaming extra context: CHILLER_CHECK(x > 0) << "got " << x;
#define CHILLER_CHECK(cond)                 \
  (cond) ? (void)0                          \
         : ::chiller::internal::Voidify{} & \
               ::chiller::internal::CheckFailStream(__FILE__, __LINE__, #cond)

#ifndef NDEBUG
#define CHILLER_DCHECK(cond) CHILLER_CHECK(cond)
#else
#define CHILLER_DCHECK(cond)                      \
  true ? (void)0 : ::chiller::internal::Voidify{} & \
                       ::chiller::internal::NullStream()
#endif

#endif  // CHILLER_COMMON_LOGGING_H_
