// Minimal logging and checked assertions (no external dependencies).
#ifndef CHILLER_COMMON_LOGGING_H_
#define CHILLER_COMMON_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace chiller {
namespace internal {

/// Accumulates a failure message and aborts the process on destruction.
/// Used only via the CHILLER_CHECK macros below.
class CheckFailStream {
 public:
  CheckFailStream(const char* file, int line, const char* expr) {
    stream_ << "CHECK failed at " << file << ":" << line << ": " << expr
            << " ";
  }
  ~CheckFailStream() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }
  template <typename T>
  CheckFailStream& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

/// Swallows streamed values when a check is compiled out.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

/// Lower-precedence-than-<< adapter so the ternary in the macro has type
/// void on both branches (the glog voidify trick).
struct Voidify {
  void operator&(const CheckFailStream&) {}
  void operator&(const NullStream&) {}
};

}  // namespace internal
}  // namespace chiller

/// Aborts with a message if `cond` is false. Always on (used to guard
/// protocol invariants whose violation would silently corrupt results).
/// Supports streaming extra context: CHILLER_CHECK(x > 0) << "got " << x;
#define CHILLER_CHECK(cond)                 \
  (cond) ? (void)0                          \
         : ::chiller::internal::Voidify{} & \
               ::chiller::internal::CheckFailStream(__FILE__, __LINE__, #cond)

#ifndef NDEBUG
#define CHILLER_DCHECK(cond) CHILLER_CHECK(cond)
#else
#define CHILLER_DCHECK(cond)                      \
  true ? (void)0 : ::chiller::internal::Voidify{} & \
                       ::chiller::internal::NullStream()
#endif

#endif  // CHILLER_COMMON_LOGGING_H_
