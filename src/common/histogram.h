// Latency/value histogram with log-scale buckets (HdrHistogram-lite).
#ifndef CHILLER_COMMON_HISTOGRAM_H_
#define CHILLER_COMMON_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace chiller {

/// Records non-negative 64-bit samples and answers mean / percentile queries
/// with bounded relative error (~3%). Used for transaction latency stats.
class Histogram {
 public:
  Histogram();

  void Add(uint64_t value);
  void Merge(const Histogram& other);
  void Reset();

  uint64_t count() const { return count_; }
  uint64_t min() const;
  uint64_t max() const;
  double Mean() const;
  /// p in [0, 100].
  uint64_t Percentile(double p) const;

  std::string Summary() const;

 private:
  static constexpr int kSubBucketBits = 5;  // 32 sub-buckets per octave
  static size_t BucketFor(uint64_t value);
  static uint64_t BucketUpperBound(size_t bucket);

  std::vector<uint64_t> buckets_;
  uint64_t count_;
  uint64_t sum_;
  uint64_t min_;
  uint64_t max_;
};

/// Streaming mean/variance accumulator (Welford).
class RunningStat {
 public:
  void Add(double x) {
    ++n_;
    const double d = x - mean_;
    mean_ += d / static_cast<double>(n_);
    m2_ += d * (x - mean_);
  }
  uint64_t count() const { return n_; }
  double Mean() const { return mean_; }
  double Variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }

 private:
  uint64_t n_ = 0;
  double mean_ = 0;
  double m2_ = 0;
};

}  // namespace chiller

#endif  // CHILLER_COMMON_HISTOGRAM_H_
