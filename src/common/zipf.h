// Zipfian distribution sampling for skewed workload generation.
#ifndef CHILLER_COMMON_ZIPF_H_
#define CHILLER_COMMON_ZIPF_H_

#include <cstdint>
#include <vector>

#include "common/random.h"

namespace chiller {

/// Samples ranks 0..n-1 with probability proportional to 1/(rank+1)^theta.
///
/// Uses the O(1) approximation of Gray et al. ("Quickly generating
/// billion-record synthetic databases", SIGMOD 1994), the same method YCSB
/// uses. theta in [0, 1): 0 = uniform, 0.99 = heavily skewed.
class ZipfGenerator {
 public:
  ZipfGenerator(uint64_t n, double theta);

  /// Returns a rank in [0, n); rank 0 is the most popular.
  uint64_t Next(Rng* rng) const;

  uint64_t n() const { return n_; }
  double theta() const { return theta_; }

  /// Exact probability mass of a given rank (for tests and analytics).
  double Pmf(uint64_t rank) const;

 private:
  uint64_t n_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
  double half_pow_theta_;
};

/// Samples from an arbitrary discrete distribution in O(1) via the alias
/// method (Walker/Vose). Used by the Instacart-like generator, whose item
/// popularity is an empirical distribution rather than a pure Zipf.
class AliasSampler {
 public:
  /// `weights` need not be normalized; must be non-empty and non-negative
  /// with a positive sum.
  explicit AliasSampler(const std::vector<double>& weights);

  /// Returns an index in [0, size()).
  size_t Next(Rng* rng) const;

  size_t size() const { return prob_.size(); }

 private:
  std::vector<double> prob_;
  std::vector<uint32_t> alias_;
};

}  // namespace chiller

#endif  // CHILLER_COMMON_ZIPF_H_
