#include "common/zipf.h"

#include <cmath>

#include "common/logging.h"

namespace chiller {

namespace {
double Zeta(uint64_t n, double theta) {
  double sum = 0;
  for (uint64_t i = 1; i <= n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i), theta);
  }
  return sum;
}
}  // namespace

ZipfGenerator::ZipfGenerator(uint64_t n, double theta) : n_(n), theta_(theta) {
  CHILLER_CHECK(n >= 1);
  CHILLER_CHECK(theta >= 0 && theta < 1.0) << "theta must be in [0,1)";
  zetan_ = Zeta(n, theta);
  const double zeta2 = Zeta(2, theta);
  alpha_ = 1.0 / (1.0 - theta);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) /
         (1.0 - zeta2 / zetan_);
  half_pow_theta_ = 1.0 + std::pow(0.5, theta);
}

uint64_t ZipfGenerator::Next(Rng* rng) const {
  const double u = rng->NextDouble();
  const double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < half_pow_theta_) return 1;
  const uint64_t rank = static_cast<uint64_t>(
      static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
  return rank >= n_ ? n_ - 1 : rank;
}

double ZipfGenerator::Pmf(uint64_t rank) const {
  CHILLER_CHECK(rank < n_);
  return 1.0 / (std::pow(static_cast<double>(rank + 1), theta_) * zetan_);
}

AliasSampler::AliasSampler(const std::vector<double>& weights) {
  CHILLER_CHECK(!weights.empty());
  const size_t n = weights.size();
  double total = 0;
  for (double w : weights) {
    CHILLER_CHECK(w >= 0);
    total += w;
  }
  CHILLER_CHECK(total > 0);

  prob_.assign(n, 0.0);
  alias_.assign(n, 0);
  std::vector<double> scaled(n);
  std::vector<uint32_t> small, large;
  for (size_t i = 0; i < n; ++i) {
    scaled[i] = weights[i] * static_cast<double>(n) / total;
    (scaled[i] < 1.0 ? small : large).push_back(static_cast<uint32_t>(i));
  }
  while (!small.empty() && !large.empty()) {
    const uint32_t s = small.back();
    small.pop_back();
    const uint32_t l = large.back();
    large.pop_back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    (scaled[l] < 1.0 ? small : large).push_back(l);
  }
  for (uint32_t i : large) prob_[i] = 1.0;
  for (uint32_t i : small) prob_[i] = 1.0;  // numerical leftovers
}

size_t AliasSampler::Next(Rng* rng) const {
  const size_t i = static_cast<size_t>(rng->Uniform(prob_.size()));
  return rng->NextDouble() < prob_[i] ? i : alias_[i];
}

}  // namespace chiller
