// Minimal JSON document: build, serialize, parse. No external dependency.
//
// This is not a general-purpose JSON library; it covers what the repo needs:
// machine-readable benchmark output (BENCH_*.json) and reading it back in
// tests/tooling. Numbers are stored as double, which is exact for the
// integer counters the benches emit (< 2^53).
#ifndef CHILLER_COMMON_JSON_H_
#define CHILLER_COMMON_JSON_H_

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "common/status.h"

namespace chiller {

/// A JSON value: null, bool, number, string, array, or object. Objects keep
/// keys sorted (std::map) so serialization is deterministic — important for
/// diffing committed BENCH_*.json files across runs.
class Json {
 public:
  using Array = std::vector<Json>;
  using Object = std::map<std::string, Json>;

  Json() : v_(nullptr) {}
  Json(std::nullptr_t) : v_(nullptr) {}        // NOLINT: implicit by design
  Json(bool b) : v_(b) {}                      // NOLINT
  Json(double d) : v_(d) {}                    // NOLINT
  Json(int i) : v_(static_cast<double>(i)) {}  // NOLINT
  Json(int64_t i) : v_(static_cast<double>(i)) {}   // NOLINT
  Json(uint32_t i) : v_(static_cast<double>(i)) {}  // NOLINT
  Json(uint64_t i) : v_(static_cast<double>(i)) {}  // NOLINT
  Json(const char* s) : v_(std::string(s)) {}  // NOLINT
  Json(std::string s) : v_(std::move(s)) {}    // NOLINT
  Json(Array a) : v_(std::move(a)) {}          // NOLINT
  Json(Object o) : v_(std::move(o)) {}         // NOLINT

  static Json MakeObject() { return Json(Object{}); }
  static Json MakeArray() { return Json(Array{}); }

  bool is_null() const { return std::holds_alternative<std::nullptr_t>(v_); }
  bool is_bool() const { return std::holds_alternative<bool>(v_); }
  bool is_number() const { return std::holds_alternative<double>(v_); }
  bool is_string() const { return std::holds_alternative<std::string>(v_); }
  bool is_array() const { return std::holds_alternative<Array>(v_); }
  bool is_object() const { return std::holds_alternative<Object>(v_); }

  bool AsBool() const { return std::get<bool>(v_); }
  double AsDouble() const { return std::get<double>(v_); }
  const std::string& AsString() const { return std::get<std::string>(v_); }
  const Array& AsArray() const { return std::get<Array>(v_); }
  Array& AsArray() { return std::get<Array>(v_); }
  const Object& AsObject() const { return std::get<Object>(v_); }
  Object& AsObject() { return std::get<Object>(v_); }

  /// Object access. `operator[]` creates the key (converting null to an
  /// object first, so `Json j; j["a"]["b"] = 1;` works); `Get` returns
  /// nullptr when the value is not an object or lacks the key.
  Json& operator[](const std::string& key);
  const Json* Get(const std::string& key) const;
  bool Has(const std::string& key) const { return Get(key) != nullptr; }

  /// Array append. Converts null to an array first.
  void Append(Json v);

  /// Serializes the document. `indent` > 0 pretty-prints with that many
  /// spaces per level; 0 emits a single line.
  std::string Dump(int indent = 0) const;

  /// Parses a complete JSON document; trailing non-whitespace is an error.
  static StatusOr<Json> Parse(const std::string& text);

 private:
  std::variant<std::nullptr_t, bool, double, std::string, Array, Object> v_;
};

}  // namespace chiller

#endif  // CHILLER_COMMON_JSON_H_
