// Core identifier and time types shared by every module.
#ifndef CHILLER_COMMON_TYPES_H_
#define CHILLER_COMMON_TYPES_H_

#include <cstdint>
#include <functional>
#include <limits>
#include <string>

namespace chiller {

/// A physical machine in the (simulated) cluster.
using NodeId = uint32_t;

/// A transaction execution engine; the paper pins one engine per core and one
/// partition per engine (Section 6).
using EngineId = uint32_t;

/// A horizontal partition of the database. Partitions map 1:1 to engines in
/// the evaluation setup, but the types are kept distinct.
using PartitionId = uint32_t;

/// A table within the database schema.
using TableId = uint16_t;

/// A primary key. All workloads in this repo encode composite primary keys
/// into a single 64-bit integer (see workload/tpcc/tpcc_schema.h).
using Key = uint64_t;

/// A globally unique transaction identifier.
using TxnId = uint64_t;

inline constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();
inline constexpr PartitionId kInvalidPartition =
    std::numeric_limits<PartitionId>::max();

/// Simulated time in nanoseconds since simulation start.
using SimTime = uint64_t;

inline constexpr SimTime kNanosecond = 1;
inline constexpr SimTime kMicrosecond = 1000;
inline constexpr SimTime kMillisecond = 1000 * kMicrosecond;
inline constexpr SimTime kSecond = 1000 * kMillisecond;
inline constexpr SimTime kSimTimeNever = std::numeric_limits<SimTime>::max();

/// Identifies one record: a (table, primary key) pair.
struct RecordId {
  TableId table = 0;
  Key key = 0;

  friend bool operator==(const RecordId& a, const RecordId& b) {
    return a.table == b.table && a.key == b.key;
  }
  friend bool operator!=(const RecordId& a, const RecordId& b) {
    return !(a == b);
  }
  friend bool operator<(const RecordId& a, const RecordId& b) {
    return a.table != b.table ? a.table < b.table : a.key < b.key;
  }

  std::string ToString() const {
    // Built with += rather than operator+ chains: GCC 12 flags the latter
    // with a spurious -Wrestrict when inlined (GCC PR 105651).
    std::string out = "t";
    out += std::to_string(table);
    out += "/k";
    out += std::to_string(key);
    return out;
  }
};

struct RecordIdHash {
  size_t operator()(const RecordId& r) const {
    // SplitMix64-style finalizer over the combined 80 bits.
    uint64_t x = r.key ^ (static_cast<uint64_t>(r.table) << 48);
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebULL;
    x ^= x >> 31;
    return static_cast<size_t>(x);
  }
};

}  // namespace chiller

template <>
struct std::hash<chiller::RecordId> {
  size_t operator()(const chiller::RecordId& r) const {
    return chiller::RecordIdHash{}(r);
  }
};

#endif  // CHILLER_COMMON_TYPES_H_
