#include "common/json.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

// GCC 12 emits spurious -Wmaybe-uninitialized from inside libstdc++ for
// std::variant moves at -O2 (GCC PR 105593); the diagnostic points at
// basic_string.h/stl_vector.h, not at code in this file.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif

namespace chiller {
namespace {

void EscapeTo(const std::string& s, std::string* out) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\t': *out += "\\t"; break;
      case '\r': *out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void NumberTo(double d, std::string* out) {
  if (std::isnan(d) || std::isinf(d)) {  // JSON has no NaN/Inf
    *out += "null";
    return;
  }
  if (d == std::floor(d) && std::fabs(d) < 9.0e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", d);
    *out += buf;
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", d);
  *out += buf;
}

struct Parser {
  const char* p = nullptr;
  const char* end = nullptr;
  const char* start = nullptr;

  void SkipWs() {
    while (p < end && (*p == ' ' || *p == '\t' || *p == '\n' || *p == '\r')) {
      ++p;
    }
  }

  Status Error(const std::string& what) const {
    return Status::InvalidArgument("JSON parse error at offset " +
                                   std::to_string(pos()) + ": " + what);
  }
  size_t pos() const { return static_cast<size_t>(p - start); }

  StatusOr<Json> ParseValue(int depth) {
    if (depth > 128) return Error("nesting too deep");
    SkipWs();
    if (p >= end) return Error("unexpected end of input");
    switch (*p) {
      case '{': return ParseObject(depth);
      case '[': return ParseArray(depth);
      case '"': {
        std::string s;
        Status st = ParseString(&s);
        if (!st.ok()) return st;
        return Json(std::move(s));
      }
      case 't':
        if (Consume("true")) return Json(true);
        return Error("bad literal");
      case 'f':
        if (Consume("false")) return Json(false);
        return Error("bad literal");
      case 'n':
        if (Consume("null")) return Json(nullptr);
        return Error("bad literal");
      default: return ParseNumber();
    }
  }

  bool Consume(const char* lit) {
    const char* q = p;
    while (*lit) {
      if (q >= end || *q != *lit) return false;
      ++q;
      ++lit;
    }
    p = q;
    return true;
  }

  Status ParseString(std::string* out) {
    ++p;  // opening quote
    while (p < end && *p != '"') {
      if (*p == '\\') {
        ++p;
        if (p >= end) return Error("unterminated escape");
        switch (*p) {
          case '"': out->push_back('"'); break;
          case '\\': out->push_back('\\'); break;
          case '/': out->push_back('/'); break;
          case 'n': out->push_back('\n'); break;
          case 't': out->push_back('\t'); break;
          case 'r': out->push_back('\r'); break;
          case 'b': out->push_back('\b'); break;
          case 'f': out->push_back('\f'); break;
          case 'u': {
            if (end - p < 5) return Error("bad \\u escape");
            unsigned code = 0;
            for (int i = 1; i <= 4; ++i) {
              const char c = p[i];
              code <<= 4;
              if (c >= '0' && c <= '9') code |= static_cast<unsigned>(c - '0');
              else if (c >= 'a' && c <= 'f') code |= static_cast<unsigned>(c - 'a' + 10);
              else if (c >= 'A' && c <= 'F') code |= static_cast<unsigned>(c - 'A' + 10);
              else return Error("bad \\u escape");
            }
            p += 4;
            // UTF-8 encode (BMP only; surrogate pairs are not needed for
            // the ASCII metric names the harness emits).
            if (code < 0x80) {
              out->push_back(static_cast<char>(code));
            } else if (code < 0x800) {
              out->push_back(static_cast<char>(0xC0 | (code >> 6)));
              out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
            } else {
              out->push_back(static_cast<char>(0xE0 | (code >> 12)));
              out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
              out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
            }
            break;
          }
          default: return Error("bad escape");
        }
        ++p;
      } else {
        out->push_back(*p++);
      }
    }
    if (p >= end) return Error("unterminated string");
    ++p;  // closing quote
    return Status::OK();
  }

  StatusOr<Json> ParseNumber() {
    const char* first = p;
    if (p < end && (*p == '-' || *p == '+')) ++p;
    bool any = false;
    while (p < end && (std::isdigit(static_cast<unsigned char>(*p)) ||
                       *p == '.' || *p == 'e' || *p == 'E' || *p == '-' ||
                       *p == '+')) {
      ++p;
      any = true;
    }
    if (!any) return Error("expected a value");
    double d = 0;
    auto [ptr, ec] = std::from_chars(first, p, d);
    if (ec != std::errc() || ptr != p) return Error("bad number");
    return Json(d);
  }

  StatusOr<Json> ParseArray(int depth) {
    ++p;  // '['
    Json::Array arr;
    SkipWs();
    if (p < end && *p == ']') {
      ++p;
      return Json(std::move(arr));
    }
    while (true) {
      auto v = ParseValue(depth + 1);
      if (!v.ok()) return v.status();
      arr.push_back(std::move(v).value());
      SkipWs();
      if (p < end && *p == ',') {
        ++p;
        continue;
      }
      if (p < end && *p == ']') {
        ++p;
        return Json(std::move(arr));
      }
      return Error("expected ',' or ']'");
    }
  }

  StatusOr<Json> ParseObject(int depth) {
    ++p;  // '{'
    Json::Object obj;
    SkipWs();
    if (p < end && *p == '}') {
      ++p;
      return Json(std::move(obj));
    }
    while (true) {
      SkipWs();
      if (p >= end || *p != '"') return Error("expected object key");
      std::string key;
      Status st = ParseString(&key);
      if (!st.ok()) return st;
      SkipWs();
      if (p >= end || *p != ':') return Error("expected ':'");
      ++p;
      auto v = ParseValue(depth + 1);
      if (!v.ok()) return v.status();
      obj[std::move(key)] = std::move(v).value();
      SkipWs();
      if (p < end && *p == ',') {
        ++p;
        continue;
      }
      if (p < end && *p == '}') {
        ++p;
        return Json(std::move(obj));
      }
      return Error("expected ',' or '}'");
    }
  }
};

void DumpTo(const Json& j, int indent, int level, std::string* out);

void DumpArray(const Json::Array& arr, int indent, int level,
               std::string* out) {
  if (arr.empty()) {
    *out += "[]";
    return;
  }
  out->push_back('[');
  const std::string pad(indent * (level + 1), ' ');
  bool first = true;
  for (const Json& v : arr) {
    if (!first) out->push_back(',');
    first = false;
    if (indent > 0) {
      out->push_back('\n');
      *out += pad;
    }
    DumpTo(v, indent, level + 1, out);
  }
  if (indent > 0) {
    out->push_back('\n');
    *out += std::string(indent * level, ' ');
  }
  out->push_back(']');
}

void DumpObject(const Json::Object& obj, int indent, int level,
                std::string* out) {
  if (obj.empty()) {
    *out += "{}";
    return;
  }
  out->push_back('{');
  const std::string pad(indent * (level + 1), ' ');
  bool first = true;
  for (const auto& [k, v] : obj) {
    if (!first) out->push_back(',');
    first = false;
    if (indent > 0) {
      out->push_back('\n');
      *out += pad;
    }
    EscapeTo(k, out);
    out->push_back(':');
    if (indent > 0) out->push_back(' ');
    DumpTo(v, indent, level + 1, out);
  }
  if (indent > 0) {
    out->push_back('\n');
    *out += std::string(indent * level, ' ');
  }
  out->push_back('}');
}

void DumpTo(const Json& j, int indent, int level, std::string* out) {
  if (j.is_null()) {
    *out += "null";
  } else if (j.is_bool()) {
    *out += j.AsBool() ? "true" : "false";
  } else if (j.is_number()) {
    NumberTo(j.AsDouble(), out);
  } else if (j.is_string()) {
    EscapeTo(j.AsString(), out);
  } else if (j.is_array()) {
    DumpArray(j.AsArray(), indent, level, out);
  } else {
    DumpObject(j.AsObject(), indent, level, out);
  }
}

}  // namespace

Json& Json::operator[](const std::string& key) {
  if (is_null()) v_ = Object{};
  return std::get<Object>(v_)[key];
}

const Json* Json::Get(const std::string& key) const {
  if (!is_object()) return nullptr;
  const Object& obj = std::get<Object>(v_);
  auto it = obj.find(key);
  return it == obj.end() ? nullptr : &it->second;
}

void Json::Append(Json v) {
  if (is_null()) v_ = Array{};
  std::get<Array>(v_).push_back(std::move(v));
}

std::string Json::Dump(int indent) const {
  std::string out;
  DumpTo(*this, indent, 0, &out);
  if (indent > 0) out.push_back('\n');
  return out;
}

StatusOr<Json> Json::Parse(const std::string& text) {
  Parser parser{text.data(), text.data() + text.size(), text.data()};
  auto v = parser.ParseValue(0);
  if (!v.ok()) return v.status();
  parser.SkipWs();
  if (parser.p != parser.end) return parser.Error("trailing content");
  return v;
}

}  // namespace chiller
