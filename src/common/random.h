// Deterministic, seedable pseudo-random number generation.
//
// Every stochastic component in the library (workload generators, the network
// jitter model, sampling stats collectors) draws from an explicitly seeded
// Rng so that experiments and tests are exactly reproducible.
#ifndef CHILLER_COMMON_RANDOM_H_
#define CHILLER_COMMON_RANDOM_H_

#include <cstdint>
#include <vector>

#include "common/logging.h"

namespace chiller {

/// xoshiro256**-based generator. Small, fast, and good enough statistical
/// quality for workload generation (not for cryptography).
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) { Seed(seed); }

  /// Re-seeds the full state from a single 64-bit value via SplitMix64.
  void Seed(uint64_t seed) {
    for (auto& word : s_) {
      seed += 0x9e3779b97f4a7c15ULL;
      uint64_t z = seed;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  /// Uniform over all 64-bit values.
  uint64_t Next() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, bound). `bound` must be positive.
  uint64_t Uniform(uint64_t bound) {
    CHILLER_DCHECK(bound > 0);
    // Lemire's nearly-divisionless method would be faster; the simple
    // modulo bias here is < 2^-40 for all bounds used in this repo.
    return Next() % bound;
  }

  /// Uniform in [lo, hi] inclusive.
  uint64_t UniformRange(uint64_t lo, uint64_t hi) {
    CHILLER_DCHECK(lo <= hi);
    return lo + Uniform(hi - lo + 1);
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// True with probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(Uniform(i));
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

  /// Samples an index in [0, weights.size()) proportionally to weights.
  size_t Weighted(const std::vector<double>& weights) {
    CHILLER_DCHECK(!weights.empty());
    double total = 0;
    for (double w : weights) total += w;
    double x = NextDouble() * total;
    for (size_t i = 0; i < weights.size(); ++i) {
      x -= weights[i];
      if (x <= 0) return i;
    }
    return weights.size() - 1;
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t s_[4];
};

}  // namespace chiller

#endif  // CHILLER_COMMON_RANDOM_H_
