#include "common/histogram.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <sstream>

#include "common/logging.h"

namespace chiller {

Histogram::Histogram() { Reset(); }

void Histogram::Reset() {
  buckets_.assign(64 << kSubBucketBits, 0);
  count_ = 0;
  sum_ = 0;
  min_ = UINT64_MAX;
  max_ = 0;
}

size_t Histogram::BucketFor(uint64_t value) {
  if (value < (1u << kSubBucketBits)) return static_cast<size_t>(value);
  const int msb = 63 - std::countl_zero(value);
  const int shift = msb - kSubBucketBits;
  const uint64_t sub = (value >> shift) & ((1u << kSubBucketBits) - 1);
  return static_cast<size_t>((msb - kSubBucketBits + 1))
             * (1u << kSubBucketBits) +
         static_cast<size_t>(sub);
}

uint64_t Histogram::BucketUpperBound(size_t bucket) {
  const size_t per = 1u << kSubBucketBits;
  if (bucket < per) return bucket;
  const size_t octave = bucket / per;  // >= 1
  const size_t sub = bucket % per;
  const int shift = static_cast<int>(octave) - 1;
  return ((per + sub + 1) << shift) - 1;
}

void Histogram::Add(uint64_t value) {
  const size_t b = BucketFor(value);
  CHILLER_DCHECK(b < buckets_.size());
  ++buckets_[b];
  ++count_;
  sum_ += value;
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
}

void Histogram::Merge(const Histogram& other) {
  CHILLER_CHECK(buckets_.size() == other.buckets_.size());
  for (size_t i = 0; i < buckets_.size(); ++i) buckets_[i] += other.buckets_[i];
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

uint64_t Histogram::min() const { return count_ == 0 ? 0 : min_; }
uint64_t Histogram::max() const { return max_; }

double Histogram::Mean() const {
  return count_ == 0 ? 0.0
                     : static_cast<double>(sum_) / static_cast<double>(count_);
}

uint64_t Histogram::Percentile(double p) const {
  if (count_ == 0) return 0;
  const double target = p / 100.0 * static_cast<double>(count_);
  uint64_t seen = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (static_cast<double>(seen) >= target) {
      return std::min<uint64_t>(BucketUpperBound(i), max_);
    }
  }
  return max_;
}

std::string Histogram::Summary() const {
  std::ostringstream os;
  os << "count=" << count_ << " mean=" << Mean() << " p50=" << Percentile(50)
     << " p99=" << Percentile(99) << " max=" << max();
  return os.str();
}

}  // namespace chiller
