// RocksDB-style Status / StatusOr error handling. The library does not throw.
#ifndef CHILLER_COMMON_STATUS_H_
#define CHILLER_COMMON_STATUS_H_

#include <string>
#include <utility>
#include <variant>

#include "common/logging.h"

namespace chiller {

/// Outcome of a fallible library operation.
///
/// Codes follow the small set the system actually needs:
///  - kAborted: a transaction lost a NO_WAIT conflict or failed validation.
///  - kNotFound: key/record absent.
///  - kInvalidArgument / kFailedPrecondition: caller errors.
///  - kInternal: invariant violation inside the library.
class Status {
 public:
  enum class Code {
    kOk = 0,
    kNotFound,
    kAborted,
    kInvalidArgument,
    kFailedPrecondition,
    kInternal,
  };

  Status() : code_(Code::kOk) {}

  static Status OK() { return Status(); }
  static Status NotFound(std::string msg = "") {
    return Status(Code::kNotFound, std::move(msg));
  }
  static Status Aborted(std::string msg = "") {
    return Status(Code::kAborted, std::move(msg));
  }
  static Status InvalidArgument(std::string msg = "") {
    return Status(Code::kInvalidArgument, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg = "") {
    return Status(Code::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg = "") {
    return Status(Code::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == Code::kOk; }
  bool IsNotFound() const { return code_ == Code::kNotFound; }
  bool IsAborted() const { return code_ == Code::kAborted; }
  bool IsInvalidArgument() const { return code_ == Code::kInvalidArgument; }
  bool IsFailedPrecondition() const {
    return code_ == Code::kFailedPrecondition;
  }
  bool IsInternal() const { return code_ == Code::kInternal; }

  Code code() const { return code_; }
  const std::string& message() const { return msg_; }
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_;
  }

 private:
  Status(Code code, std::string msg) : code_(code), msg_(std::move(msg)) {}

  Code code_;
  std::string msg_;
};

/// Either a value or a non-OK Status.
template <typename T>
class StatusOr {
 public:
  StatusOr(T value) : v_(std::move(value)) {}  // NOLINT: implicit by design
  StatusOr(Status status) : v_(std::move(status)) {  // NOLINT
    CHILLER_CHECK(!std::get<Status>(v_).ok())
        << "StatusOr constructed from OK status";
  }

  bool ok() const { return std::holds_alternative<T>(v_); }

  const Status& status() const {
    static const Status kOk;
    return ok() ? kOk : std::get<Status>(v_);
  }

  const T& value() const& {
    CHILLER_CHECK(ok()) << "value() on error StatusOr: " << status().ToString();
    return std::get<T>(v_);
  }
  T& value() & {
    CHILLER_CHECK(ok()) << "value() on error StatusOr: " << status().ToString();
    return std::get<T>(v_);
  }
  T&& value() && {
    CHILLER_CHECK(ok()) << "value() on error StatusOr: " << status().ToString();
    return std::get<T>(std::move(v_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> v_;
};

}  // namespace chiller

#endif  // CHILLER_COMMON_STATUS_H_
