#include "common/status.h"

namespace chiller {

namespace {
const char* CodeName(Status::Code code) {
  switch (code) {
    case Status::Code::kOk:
      return "OK";
    case Status::Code::kNotFound:
      return "NotFound";
    case Status::Code::kAborted:
      return "Aborted";
    case Status::Code::kInvalidArgument:
      return "InvalidArgument";
    case Status::Code::kFailedPrecondition:
      return "FailedPrecondition";
    case Status::Code::kInternal:
      return "Internal";
  }
  return "Unknown";
}
}  // namespace

std::string Status::ToString() const {
  std::string s = CodeName(code_);
  if (!msg_.empty()) {
    s += ": ";
    s += msg_;
  }
  return s;
}

}  // namespace chiller
