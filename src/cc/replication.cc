#include "cc/replication.h"

#include <memory>
#include <utility>

#include "common/logging.h"

namespace chiller::cc {

void ReplicationManager::ApplyAtReplica(storage::PartitionStore* store,
                                        const std::vector<ReplUpdate>& ups) {
  for (const ReplUpdate& u : ups) {
    switch (u.kind) {
      case ReplUpdate::Kind::kPut: {
        storage::Record* rec = store->Find(u.rid);
        if (rec != nullptr) {
          *rec = u.image;
        } else {
          CHILLER_CHECK(store->Insert(u.rid, u.image).ok());
        }
        break;
      }
      case ReplUpdate::Kind::kErase:
        // The stream is FIFO, so the record must exist at the replica.
        CHILLER_CHECK(store->Erase(u.rid).ok());
        break;
    }
  }
}

void ReplicationManager::Replicate(EngineId src_engine, PartitionId p,
                                   std::vector<ReplUpdate> updates,
                                   EngineId ack_engine,
                                   std::function<void()> on_done) {
  const net::Topology& topo = cluster_->topology();
  const uint32_t replicas = topo.num_replicas();
  if (replicas == 0) {
    cluster_->sim()->Schedule(0, std::move(on_done));
    return;
  }
  ++batches_sent_[cluster_->sim()->current_domain()];

  size_t bytes = 64;
  for (const auto& u : updates) bytes += 24 + u.image.wire_bytes();
  const SimTime apply_cost =
      cluster_->costs().replica_apply *
      std::max<SimTime>(1, static_cast<SimTime>(updates.size()));

  auto pending = std::make_shared<uint32_t>(replicas);
  auto shared_updates =
      std::make_shared<std::vector<ReplUpdate>>(std::move(updates));
  auto shared_done = std::make_shared<std::function<void()>>(std::move(on_done));

  for (uint32_t i = 1; i <= replicas; ++i) {
    const EngineId replica_engine = topo.ReplicaEngine(p, i);
    storage::PartitionStore* store =
        cluster_->engine(replica_engine)->replica(p);
    cluster_->rpc()->Send(
        src_engine, replica_engine, bytes, apply_cost,
        [this, store, shared_updates, replica_engine, ack_engine, pending,
         shared_done]() {
          ApplyAtReplica(store, *shared_updates);
          // Ack goes to the coordinator of the transaction, not (necessarily)
          // back to the sender — the Figure 6 inner-region protocol.
          cluster_->rpc()->Send(replica_engine, ack_engine, 32, 0,
                                [pending, shared_done]() {
                                  CHILLER_CHECK(*pending > 0);
                                  if (--*pending == 0) (*shared_done)();
                                });
        });
  }
}

}  // namespace chiller::cc
