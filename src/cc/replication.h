// Replication of committed updates to partition replicas.
#ifndef CHILLER_CC_REPLICATION_H_
#define CHILLER_CC_REPLICATION_H_

#include <functional>
#include <numeric>
#include <vector>

#include "cc/cluster.h"
#include "common/types.h"
#include "storage/record.h"

namespace chiller::cc {

/// One replicated effect on a record.
struct ReplUpdate {
  enum class Kind { kPut, kErase };
  Kind kind = Kind::kPut;
  RecordId rid;
  storage::Record image;  ///< new record image for kPut
};

/// Ships update streams to the replicas of a partition.
///
/// Two uses, per paper Section 5:
///  - outer region / baselines: the coordinator replicates its write set
///    before releasing locks, and waits for acks itself;
///  - inner region (Figure 6): the *inner host* streams updates to its
///    replicas without waiting, and the replicas ack the *coordinator* —
///    correctness rests on per-queue-pair in-order delivery, which
///    net::Network guarantees.
class ReplicationManager {
 public:
  explicit ReplicationManager(Cluster* cluster)
      : cluster_(cluster),
        batches_sent_(cluster->topology().num_nodes + 1u, 0) {}

  /// Sends `updates` of partition `p` from `src_engine` to each replica of
  /// `p`. Each replica applies the batch and acks `ack_engine`; `on_done`
  /// runs at ack_engine once all replicas acked. With zero replicas,
  /// `on_done` fires on the next simulator step.
  void Replicate(EngineId src_engine, PartitionId p,
                 std::vector<ReplUpdate> updates, EngineId ack_engine,
                 std::function<void()> on_done);

  uint64_t batches_sent() const {
    return std::accumulate(batches_sent_.begin(), batches_sent_.end(),
                           uint64_t{0});
  }

 private:
  void ApplyAtReplica(storage::PartitionStore* store,
                      const std::vector<ReplUpdate>& updates);

  Cluster* cluster_;
  std::vector<uint64_t> batches_sent_;  // per event domain, summed on read
};

}  // namespace chiller::cc

#endif  // CHILLER_CC_REPLICATION_H_
