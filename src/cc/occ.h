// Baseline: MaaT-inspired distributed optimistic concurrency control.
#ifndef CHILLER_CC_OCC_H_
#define CHILLER_CC_OCC_H_

#include <functional>
#include <memory>

#include "cc/protocol.h"

namespace chiller::cc {

/// Optimistic execution: reads take no locks (version stamps are recorded),
/// writes are buffered. Commit runs a validation phase — exclusive locks on
/// the write set plus version checks on the read set, via one-sided CAS /
/// READ — followed by replication, apply, and release.
///
/// This is the failure mode the paper highlights (Section 7.3.2): under
/// contention a transaction does all of its work, including remote reads,
/// before discovering at validation time that it must abort. The MaaT
/// refinement (dynamic timestamp ranges) changes when an abort is detected,
/// not this wasted-work shape; see DESIGN.md for the substitution note.
class Occ : public Protocol {
 public:
  using Protocol::Protocol;

  const char* name() const override { return "OCC"; }

  void Execute(std::shared_ptr<txn::Transaction> t,
               std::function<void()> done) override;
};

}  // namespace chiller::cc

#endif  // CHILLER_CC_OCC_H_
