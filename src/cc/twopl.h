// Baseline: distributed two-phase locking (NO_WAIT) with two-phase commit.
#ifndef CHILLER_CC_TWOPL_H_
#define CHILLER_CC_TWOPL_H_

#include <functional>
#include <memory>

#include "cc/protocol.h"

namespace chiller::cc {

/// The conventional execution of paper Figure 3a: the coordinator acquires
/// locks and reads records op-by-op (local access or one-sided CAS+READ),
/// the prepare phase is piggybacked onto the last execution step, the write
/// set is replicated, and finally updates are applied and locks released.
/// NO_WAIT: any lock conflict aborts the transaction immediately, so
/// deadlocks are impossible.
class TwoPhaseLocking : public Protocol {
 public:
  using Protocol::Protocol;

  const char* name() const override { return "2PL"; }

  void Execute(std::shared_ptr<txn::Transaction> t,
               std::function<void()> done) override;

  /// Runs the plain-2PL state machine on `t`. Exposed so Chiller can fall
  /// back to normal execution for transactions with no eligible inner
  /// region (Section 3.1: "when a transaction deals only with cold data it
  /// is executed normally, using 2PC at the end").
  static void Run(Protocol* proto, std::shared_ptr<txn::Transaction> t,
                  std::function<void()> done);
};

}  // namespace chiller::cc

#endif  // CHILLER_CC_TWOPL_H_
