// A transaction execution engine: one pinned core owning one partition.
#ifndef CHILLER_CC_ENGINE_H_
#define CHILLER_CC_ENGINE_H_

#include <unordered_map>

#include "common/logging.h"
#include "common/types.h"
#include "sim/cpu_resource.h"
#include "storage/partition_store.h"

namespace chiller::cc {

/// Pairs a CPU with the storage it can touch without the network: the
/// primary copy of its own partition plus replica copies of remote
/// partitions hosted on its node (paper Section 6: compute co-located with
/// storage, remote storage reached via RDMA).
class Engine {
 public:
  /// `domain` is the event domain of the node hosting this engine; the CPU
  /// schedules its completions there so all of a node's work stays on one
  /// simulator shard.
  Engine(EngineId id, sim::Scheduler* sim, sim::DomainId domain)
      : id_(id), cpu_(sim, domain) {}

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  EngineId id() const { return id_; }
  sim::CpuResource* cpu() { return &cpu_; }

  void AttachPrimary(storage::PartitionStore* store) { primary_ = store; }
  void AttachReplica(PartitionId p, storage::PartitionStore* store) {
    replicas_[p] = store;
  }

  /// The primary copy of this engine's own partition.
  storage::PartitionStore* primary() const {
    CHILLER_CHECK(primary_ != nullptr);
    return primary_;
  }

  /// The replica copy of partition `p` hosted by this engine (never null;
  /// asserts the replica placement actually routed `p` here).
  storage::PartitionStore* replica(PartitionId p) const {
    auto it = replicas_.find(p);
    CHILLER_CHECK(it != replicas_.end())
        << "engine " << id_ << " hosts no replica of partition " << p;
    return it->second;
  }

 private:
  EngineId id_;
  sim::CpuResource cpu_;
  storage::PartitionStore* primary_ = nullptr;
  std::unordered_map<PartitionId, storage::PartitionStore*> replicas_;
};

}  // namespace chiller::cc

#endif  // CHILLER_CC_ENGINE_H_
