// Closed-loop workload driver: transaction slots, retries, measurement.
#ifndef CHILLER_CC_DRIVER_H_
#define CHILLER_CC_DRIVER_H_

#include <memory>
#include <string>

#include "cc/protocol.h"
#include "common/random.h"
#include "txn/transaction.h"

namespace chiller::cc {

/// Supplies transactions for the driver. Implementations live in
/// src/workload (TPC-C, Instacart-like, flight booking).
class WorkloadSource {
 public:
  virtual ~WorkloadSource() = default;

  /// Builds a fresh transaction homed at partition `home`.
  virtual std::unique_ptr<txn::Transaction> Next(PartitionId home,
                                                 Rng* rng) = 0;

  /// Rebuilds the same logical transaction (same class, same parameters)
  /// for a retry after a conflict abort.
  virtual std::unique_ptr<txn::Transaction> Rebuild(
      const txn::Transaction& t) = 0;

  virtual uint32_t NumClasses() const = 0;
  virtual std::string ClassName(uint32_t cls) const = 0;
};

/// Drives a protocol on a cluster, closed-loop: each engine keeps
/// `concurrent_per_engine` transactions open at all times (the paper's
/// "# concurrent txns per warehouse" knob, Figure 9). Conflict-aborted
/// transactions retry with a small jittered backoff; committed and
/// user-aborted slots draw a fresh transaction.
///
/// The closed loop is exposed as phase primitives (Start / Advance /
/// Quiesce / Resume, plus the measurement toggles) so a caller can compose
/// arbitrary phase plans — warmup, live stats sampling, a quiesced layout
/// migration, measurement — on one driver. Run() is the classic two-phase
/// warmup+measure composition of those primitives.
class Driver {
 public:
  /// Observes every *committed* transaction, whether or not the driver is
  /// measuring. The paper's Section 4.1 statistics service attaches a
  /// sampling StatsCollector here during sample phases.
  using CommitObserver = std::function<void(const txn::Transaction&)>;

  Driver(Cluster* cluster, Protocol* protocol, WorkloadSource* source,
         uint32_t concurrent_per_engine, uint64_t seed = 1);

  /// Runs `warmup` of simulated time, resets counters, then measures for
  /// `measure`. Returns the stats of the measurement window.
  RunStats Run(SimTime warmup, SimTime measure);

  /// Fills every engine's transaction slots. Idempotent: only the first
  /// call launches anything.
  void Start();

  /// Advances the simulator `duration` ns past its current time, with the
  /// closed loop refilling slots throughout (one phase of a phase plan).
  void Advance(SimTime duration);

  /// Stops refilling slots and drains every in-flight transaction (all
  /// locks released, replication quiesced); simulated time advances to the
  /// last settling event. The cluster is then safe to mutate structurally
  /// (e.g. record migration). Resume() restarts the closed loop.
  void Quiesce();

  /// Refills every slot after a Quiesce() and re-arms the closed loop.
  void Resume();

  /// Installs (or, with nullptr, removes) the commit observer.
  void SetCommitObserver(CommitObserver observer);

  /// Clears the per-class counters, keeping class names (end of warmup).
  void ResetStats();

  /// Toggles whether finished transactions are counted into stats().
  void set_measuring(bool measuring) { measuring_ = measuring; }

  /// Records the total measured window length into stats().
  void set_measured_window(SimTime window) { stats_.window = window; }

  /// Alias of Quiesce() for the classic Run() call sites: integration
  /// tests call this before checking storage invariants.
  void DrainAndStop();

  const RunStats& stats() const { return stats_; }

 private:
  void StartSlot(EngineId e);
  void Launch(EngineId e, std::shared_ptr<txn::Transaction> t);
  void OnDone(EngineId e, const std::shared_ptr<txn::Transaction>& t);

  Cluster* cluster_;
  Protocol* protocol_;
  WorkloadSource* source_;
  uint32_t concurrent_;
  Rng rng_;
  RunStats stats_;
  CommitObserver observer_;
  bool measuring_ = false;
  bool started_ = false;
  bool stopped_ = false;
  TxnId next_id_ = 1;
};

}  // namespace chiller::cc

#endif  // CHILLER_CC_DRIVER_H_
