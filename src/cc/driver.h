// Closed-loop workload driver: transaction slots, retries, measurement.
#ifndef CHILLER_CC_DRIVER_H_
#define CHILLER_CC_DRIVER_H_

#include <memory>
#include <string>

#include "cc/protocol.h"
#include "common/random.h"
#include "txn/transaction.h"

namespace chiller::cc {

/// Supplies transactions for the driver. Implementations live in
/// src/workload (TPC-C, Instacart-like, flight booking).
class WorkloadSource {
 public:
  virtual ~WorkloadSource() = default;

  /// Builds a fresh transaction homed at partition `home`.
  virtual std::unique_ptr<txn::Transaction> Next(PartitionId home,
                                                 Rng* rng) = 0;

  /// Rebuilds the same logical transaction (same class, same parameters)
  /// for a retry after a conflict abort.
  virtual std::unique_ptr<txn::Transaction> Rebuild(
      const txn::Transaction& t) = 0;

  virtual uint32_t NumClasses() const = 0;
  virtual std::string ClassName(uint32_t cls) const = 0;
};

/// Drives a protocol on a cluster, closed-loop: each engine keeps
/// `concurrent_per_engine` transactions open at all times (the paper's
/// "# concurrent txns per warehouse" knob, Figure 9). Conflict-aborted
/// transactions retry with a small jittered backoff; committed and
/// user-aborted slots draw a fresh transaction.
class Driver {
 public:
  Driver(Cluster* cluster, Protocol* protocol, WorkloadSource* source,
         uint32_t concurrent_per_engine, uint64_t seed = 1);

  /// Runs `warmup` of simulated time, resets counters, then measures for
  /// `measure`. Returns the stats of the measurement window.
  RunStats Run(SimTime warmup, SimTime measure);

  /// Stops refilling slots and runs the simulator until every in-flight
  /// transaction settles (all locks released, replication quiesced).
  /// Integration tests call this before checking storage invariants.
  void DrainAndStop();

  const RunStats& stats() const { return stats_; }

 private:
  void StartSlot(EngineId e);
  void Launch(EngineId e, std::shared_ptr<txn::Transaction> t);
  void OnDone(EngineId e, const std::shared_ptr<txn::Transaction>& t);

  Cluster* cluster_;
  Protocol* protocol_;
  WorkloadSource* source_;
  uint32_t concurrent_;
  Rng rng_;
  RunStats stats_;
  bool measuring_ = false;
  bool stopped_ = false;
  TxnId next_id_ = 1;
};

}  // namespace chiller::cc

#endif  // CHILLER_CC_DRIVER_H_
