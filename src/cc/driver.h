// Workload driver: transaction slots, retries, measurement, with the load
// model (closed loop, open loop, batched) injected as policy.
#ifndef CHILLER_CC_DRIVER_H_
#define CHILLER_CC_DRIVER_H_

#include <memory>
#include <string>
#include <vector>

#include "cc/protocol.h"
#include "common/random.h"
#include "obs/metrics_registry.h"
#include "txn/transaction.h"

namespace chiller::schedule {
class Scheduler;
}  // namespace chiller::schedule

namespace chiller::cc {

class LoadModel;

/// Supplies transactions for the driver. Implementations live in
/// src/workload (TPC-C, Instacart-like, flight booking).
class WorkloadSource {
 public:
  virtual ~WorkloadSource() = default;

  /// Builds a fresh transaction homed at partition `home`.
  virtual std::unique_ptr<txn::Transaction> Next(PartitionId home,
                                                 Rng* rng) = 0;

  /// Rebuilds the same logical transaction (same class, same parameters)
  /// for a retry after a conflict abort.
  virtual std::unique_ptr<txn::Transaction> Rebuild(
      const txn::Transaction& t) = 0;

  virtual uint32_t NumClasses() const = 0;
  virtual std::string ClassName(uint32_t cls) const = 0;
};

/// Drives a protocol on a cluster. The *mechanics* of an attempt — ids,
/// timestamps, protocol dispatch, stats, the commit observer — live here;
/// the *load model* (when work arrives, how slots refill, what a freed slot
/// does) is an injected LoadModel policy (see cc/load_model.h). The default
/// model is the paper's closed loop: each engine keeps
/// `concurrent_per_engine` transactions open at all times (the "# concurrent
/// txns per warehouse" knob, Figure 9).
///
/// Execution is exposed as phase primitives (Start / Advance / Quiesce /
/// Resume, plus the measurement toggles) so a caller can compose arbitrary
/// phase plans — warmup, live stats sampling, a quiesced layout migration,
/// measurement — on one driver. Run() is the classic two-phase
/// warmup+measure composition of those primitives.
class Driver {
 public:
  /// Observes every *committed* transaction, whether or not the driver is
  /// measuring. The paper's Section 4.1 statistics service attaches a
  /// sampling StatsCollector here during sample phases.
  using CommitObserver = std::function<void(const txn::Transaction&)>;

  /// Classic closed-loop driver (equivalent to injecting
  /// ClosedLoop{concurrent_per_engine}).
  Driver(Cluster* cluster, Protocol* protocol, WorkloadSource* source,
         uint32_t concurrent_per_engine, uint64_t seed = 1);

  /// Driver with an explicit load model.
  Driver(Cluster* cluster, Protocol* protocol, WorkloadSource* source,
         std::unique_ptr<LoadModel> model, uint64_t seed = 1);

  ~Driver();

  /// Runs `warmup` of simulated time, resets counters, then measures for
  /// `measure`. Returns the stats of the measurement window.
  RunStats Run(SimTime warmup, SimTime measure);

  /// Arms the load model on every engine (filling slots / starting arrival
  /// clocks). Idempotent: only the first call launches anything.
  void Start();

  /// Advances the simulator `duration` ns past its current time, with the
  /// load model feeding the engines throughout (one phase of a phase plan).
  void Advance(SimTime duration);

  /// Stops the load model (no refills, no new arrivals) and drains every
  /// in-flight transaction (all locks released, replication quiesced);
  /// simulated time advances to the last settling event — for an open-loop
  /// model that includes each engine's one already-scheduled (and
  /// discarded) arrival, up to about one interarrival gap. The cluster is
  /// then safe to mutate structurally (e.g. record migration). Resume()
  /// re-arms the load model.
  void Quiesce();

  /// Re-arms the load model on every engine after a Quiesce(). Open-loop
  /// requests that were already admitted to a queue launch first.
  void Resume();

  /// Installs (or, with nullptr, removes) the commit observer. The observer
  /// runs in the committing transaction's home-engine context; under the
  /// sharded simulator that means concurrently from several threads, so it
  /// must shard its own state per engine (StatsCollector does).
  void SetCommitObserver(CommitObserver observer);

  /// Clears the per-class counters and the load-model accounting
  /// (admissions, sheds, queueing delay), keeping class names (end of
  /// warmup).
  void ResetStats();

  /// Toggles whether finished transactions are counted into stats().
  void set_measuring(bool measuring) { measuring_ = measuring; }

  /// Records the total measured window length into stats().
  void set_measured_window(SimTime window) { window_ = window; }

  /// Exact synonym of Quiesce(), kept for the classic Run() call sites
  /// (integration tests call this before checking storage invariants).
  /// There is deliberately no second drain path: this delegates.
  void DrainAndStop() { Quiesce(); }

  /// Statistics of the current window, merged across the per-engine shards
  /// (engine-ascending, so the result is identical for any simulator shard
  /// count). Only call from outside the simulation or at control — it reads
  /// every engine's counters.
  const RunStats& stats() const;

  // Lifetime counters, independent of the measuring toggle and never
  // reset: timeline consumers diff them across slice boundaries to see
  // commit flow through warmup and migration windows that stats() does not
  // cover. Summed across engines on read (control-plane only).
  /// Committed transactions since construction.
  uint64_t lifetime_commits() const;
  /// Summed commit latency (end - start, ns) since construction.
  uint64_t lifetime_latency_ns() const;
  /// Attempts aborted by the live-migration bucket gate since construction.
  uint64_t lifetime_migration_aborts() const;

  /// Commit-latency histogram accumulated since the previous call (or
  /// construction), merged across engines and then cleared — the migration
  /// governor takes one window per controller epoch to read the epoch's
  /// foreground p99. Like the lifetime counters it fills regardless of the
  /// measuring toggle. Control-plane only: it reads and resets every
  /// engine's shard.
  Histogram TakeCommitLatencyWindow();

  /// The injected policy (never null).
  const LoadModel& load_model() const { return *model_; }

  /// Installs a non-owning admission scheduler (see schedule/scheduler.h):
  /// the load models consult it to classify, steer, and serialize
  /// admissions. Must be called before Start(); null (the default) keeps
  /// every legacy admission path byte-identical. The caller owns the
  /// scheduler and must keep it alive for the driver's lifetime
  /// (runner::ScenarioEnv does).
  void set_scheduler(schedule::Scheduler* scheduler);
  schedule::Scheduler* scheduler() const { return scheduler_; }

  // --- Load-model surface -------------------------------------------------
  // Called by LoadModel implementations; not meant for other callers.

  Cluster* cluster() { return cluster_; }
  /// Engine `e`'s workload RNG (transaction parameters, retry jitter). One
  /// stream per engine keeps draws independent of how engines interleave —
  /// the property the any-shard-count determinism rests on.
  Rng* rng(EngineId e) { return &per_engine_[e].rng; }
  /// True between Quiesce() and Resume(): models must stop producing work.
  bool quiesced() const { return stopped_; }

  /// Draws a fresh transaction for engine `e` from the workload source and
  /// executes it now. `admission_delay` is how long the request waited in
  /// an admission queue (0 for immediate admission); it rides along on
  /// retries of the same logical transaction.
  void LaunchFresh(EngineId e, SimTime admission_delay = 0);

  /// Executes transaction `t` on engine `e` now (retry callbacks land
  /// here; Quiesce() lets already-scheduled retries run to completion).
  void Launch(EngineId e, std::shared_ptr<txn::Transaction> t);

  /// Draws a fresh transaction from engine `e`'s workload stream *without*
  /// launching it, with accesses initialized and ready keys resolved so a
  /// scheduler can classify it. Scheduled admission paths pair this with
  /// LaunchRouted; the draw consumes e's workload RNG exactly like
  /// LaunchFresh, so fifo (which never calls it) stays byte-identical.
  std::shared_ptr<txn::Transaction> Draw(EngineId e);

  /// Executes a previously drawn (possibly steered) transaction on engine
  /// `e` now. `admission_delay` as in LaunchFresh.
  void LaunchRouted(EngineId e, std::shared_ptr<txn::Transaction> t,
                    SimTime admission_delay = 0);

  /// Rebuilds `t` for its next attempt (same logical transaction,
  /// attempt + 1, admission delay carried over).
  std::shared_ptr<txn::Transaction> RebuildForRetry(const txn::Transaction& t);

  /// Open-loop accounting for engine `e`, counted only while measuring: an
  /// arrival was admitted (launched or queued) / shed at a full queue / a
  /// finished request's admission-queue wait (committed or user-aborted —
  /// the wait is a property of admission, not of outcome).
  void NoteAdmitted(EngineId e);
  void NoteShed(EngineId e);
  void NoteQueueDelay(EngineId e, SimTime delay);
  /// A queued request on engine `e` was evicted by a shed policy in favor
  /// of a new arrival: counts a shed and, when the victim's admission was
  /// counted in the current window (`counted_admitted`), takes that
  /// admission back — per-engine `admitted` stays "requests that entered
  /// service or still wait", consistent with `shed`.
  void NoteShedEvicted(EngineId e, bool counted_admitted);
  /// True while finished work counts into stats() (scheduled admission
  /// queues record it per entry to keep eviction accounting exact across
  /// warmup/measure boundaries).
  bool measuring() const { return measuring_; }
  /// Per-engine accounting reads, control-plane only (tests assert that
  /// sheds land on the engine a request was routed *to*).
  uint64_t engine_admitted(EngineId e) const {
    return per_engine_[e].stats.admitted;
  }
  uint64_t engine_shed(EngineId e) const { return per_engine_[e].stats.shed; }
  // ------------------------------------------------------------------------

 private:
  /// Everything the driver mutates from engine `e`'s execution context.
  /// Sharding by engine keeps all hot-path writes on the engine's simulator
  /// shard; reads merge across engines and happen only at control. Padded
  /// so engines on different shards never share a cache line here.
  struct alignas(64) EngineState {
    Rng rng{1};
    TxnId next_local = 0;  ///< per-engine txn counter; global id derived
    /// Per-engine *logical* transaction counter: one tick per fresh draw,
    /// shared by all retry attempts of that draw. Feeds the trace sampler.
    TxnId next_logical = 0;
    RunStats stats;
  };

  void OnDone(EngineId e, const std::shared_ptr<txn::Transaction>& t);

  /// Assigns the logical id and the trace sampling decision on the first
  /// sighting of a transaction (Draw for scheduled admission, Launch
  /// otherwise). Idempotent per logical transaction: retries carry both.
  void AssignIdentity(EngineId e, txn::Transaction* t);

  Cluster* cluster_;
  Protocol* protocol_;
  WorkloadSource* source_;
  std::unique_ptr<LoadModel> model_;
  schedule::Scheduler* scheduler_ = nullptr;  ///< non-owning; null = fifo
  std::vector<EngineState> per_engine_;
  mutable RunStats merged_;  ///< scratch for stats(); control-plane only
  // Registry-backed lifetime metrics (the source the lifetime_* reads and
  // the latency window derive from). Engine-sharded inside the handles.
  obs::MetricsRegistry::Counter* m_commits_;
  obs::MetricsRegistry::Counter* m_latency_ns_;
  obs::MetricsRegistry::Counter* m_migration_aborts_;
  obs::MetricsRegistry::Counter* m_contention_aborts_;
  obs::MetricsRegistry::Counter* m_fallback_aborts_;
  obs::MetricsRegistry::Counter* m_user_aborts_;
  obs::MetricsRegistry::Counter* m_shed_;
  obs::MetricsRegistry::Hist* m_window_latency_;
  CommitObserver observer_;
  SimTime window_ = 0;
  bool open_loop_ = false;
  bool measuring_ = false;
  bool started_ = false;
  bool stopped_ = false;
};

}  // namespace chiller::cc

#endif  // CHILLER_CC_DRIVER_H_
