#include "cc/load_model.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>
#include <utility>
#include <vector>

#include "cc/cluster.h"
#include "common/logging.h"

namespace chiller::cc {

namespace {
/// Modeled size of a forwarded admission request: the scheduler steers a
/// transaction *descriptor* (procedure id + parameters) across the fabric,
/// not record data. Charged on every cross-engine route.
constexpr size_t kForwardRequestBytes = 64;
}  // namespace

void LoadModel::RetryAfterBackoff(EngineId e, const txn::Transaction& t) {
  Driver* d = driver_;
  const ExecCosts& costs = d->cluster()->costs();
  const uint32_t shift = std::min<uint32_t>(t.attempt, 5);
  const SimTime backoff =
      (costs.retry_backoff_fixed << shift) +
      d->rng(e)->Uniform(costs.retry_backoff_jitter << shift);
  std::shared_ptr<txn::Transaction> retry = d->RebuildForRetry(t);
  // Explicitly target e's own domain: the relaunch belongs to the engine
  // regardless of what context the slot was freed from.
  sim::Scheduler* sim = d->cluster()->sim();
  if (retry->traced) {
    // OnSlotFree runs in e's event context, so the span records from the
    // engine's own domain (the trace determinism rule).
    d->cluster()->trace()->Span(e, sim->now(), sim->now() + backoff,
                                "retry_backoff", retry->logical_id,
                                retry->attempt);
  }
  sim->ScheduleIn(
      sim::DomainOfNode(d->cluster()->topology().NodeOfEngine(e)),
      sim->now() + backoff, [d, e, retry]() { d->Launch(e, retry); });
}

// ---------------------------------------------------------------------------
// ClosedLoop
// ---------------------------------------------------------------------------

ClosedLoop::ClosedLoop(uint32_t slots_per_engine) : slots_(slots_per_engine) {
  CHILLER_CHECK(slots_ >= 1);
}

void ClosedLoop::StartEngine(EngineId e) {
  for (uint32_t s = 0; s < slots_; ++s) driver_->LaunchFresh(e);
}

void ClosedLoop::OnSlotFree(EngineId e, const txn::Transaction& t) {
  if (t.outcome == txn::Outcome::kAbortConflict) {
    RetryAfterBackoff(e, t);
    return;
  }
  driver_->LaunchFresh(e);
}

// ---------------------------------------------------------------------------
// OpenLoop
// ---------------------------------------------------------------------------

OpenLoop::OpenLoop(OpenLoopOptions options) : opts_(std::move(options)) {
  CHILLER_CHECK(opts_.offered_tps > 0.0);
  CHILLER_CHECK(opts_.slots_per_engine >= 1);
  CHILLER_CHECK(opts_.queue_cap >= 1);
  CHILLER_CHECK(opts_.arrival == "poisson" || opts_.arrival == "uniform")
      << "unknown arrival process '" << opts_.arrival << "'";
}

void OpenLoop::OnBind() {
  obs::MetricsRegistry* reg = driver_->cluster()->metrics();
  m_queue_depth_ = reg->GetGauge("admission.queue_depth");
  m_routed_remote_ = reg->GetCounter("sched.routed_remote");
}

void OpenLoop::StartEngine(EngineId e) {
  if (engines_.empty()) {
    engines_.resize(driver_->cluster()->num_engines());
    // The per-engine arrival rate: the cluster-wide offered load split
    // evenly. Computed once so every engine paces identically.
    const double per_engine_tps =
        opts_.offered_tps / static_cast<double>(engines_.size());
    mean_interarrival_ = std::max<SimTime>(
        1, static_cast<SimTime>(
               std::llround(static_cast<double>(kSecond) / per_engine_tps)));
  }
  EngineState& s = engines_[e];
  if (!s.initialized) {
    s.initialized = true;
    // SplitMix64-style stream split keeps engine clocks decorrelated while
    // staying a pure function of (seed, engine).
    s.arrivals.Seed(opts_.seed + 0x9e3779b97f4a7c15ULL * (e + 1));
    s.free_slots = opts_.slots_per_engine;
  }
  // After a quiesce every in-flight transaction has settled, so all slots
  // are free again; requests that were already admitted to the queue keep
  // their place (and their admission timestamps) and launch first.
  s.free_slots = opts_.slots_per_engine;
  if (driver_->scheduler() != nullptr) {
    // Everything in flight settled, so no class is held anymore.
    s.inflight_classes.clear();
    TryAdmitScheduled(e);
    ScheduleNextArrival(e);
    return;
  }
  while (s.free_slots > 0 && !s.queue.empty()) AdmitFromQueue(e);
  ScheduleNextArrival(e);
}

void OpenLoop::ScheduleNextArrival(EngineId e) {
  EngineState& s = engines_[e];
  const double u = s.arrivals.NextDouble();
  SimTime gap;
  if (opts_.arrival == "poisson") {
    // Exponential interarrival; clamp the (measure-zero) u == 0 draw.
    const double x = -std::log(std::max(u, 1e-300));
    gap = static_cast<SimTime>(
        std::llround(x * static_cast<double>(mean_interarrival_)));
  } else {
    // Uniform in [0, 2*mean): same offered rate, bounded burstiness.
    gap = static_cast<SimTime>(
        std::llround(u * 2.0 * static_cast<double>(mean_interarrival_)));
  }
  // StartEngine arms this clock from control; later ticks re-arm it from
  // the engine's own context. Target the engine's domain explicitly so both
  // paths land the arrival in the same place.
  sim::Scheduler* sim = driver_->cluster()->sim();
  sim->ScheduleIn(
      sim::DomainOfNode(driver_->cluster()->topology().NodeOfEngine(e)),
      sim->now() + std::max<SimTime>(gap, 1), [this, e]() { Arrive(e); });
}

void OpenLoop::Arrive(EngineId e) {
  // A quiesce drains the event queue, which fires pending arrivals early;
  // discard them and leave the clock disarmed — Resume() restarts it.
  if (driver_->quiesced()) return;
  if (const schedule::Scheduler* sched = driver_->scheduler()) {
    // Scheduled path: draw at arrival (instead of at launch) so the
    // scheduler can classify and steer before admission. The draw
    // consumes e's workload RNG exactly where the legacy path would for
    // an immediate admission; under fifo this branch never runs, which is
    // what keeps legacy runs byte-identical.
    std::shared_ptr<txn::Transaction> t = driver_->Draw(e);
    t->sched_class = sched->Classify(*t);
    const EngineId target = sched->Route(*t, t->sched_class, e);
    if (t->traced) {
      obs::TraceRecorder* trace = driver_->cluster()->trace();
      const SimTime now = driver_->cluster()->sim()->now();
      trace->Instant(e, now, "sched_classify", t->logical_id, t->attempt,
                     /*reason=*/nullptr, "class", t->sched_class);
      trace->Instant(e, now, "sched_route", t->logical_id, t->attempt,
                     /*reason=*/nullptr, "target", target);
    }
    if (target == e) {
      AdmitScheduled(e, std::move(t));
    } else {
      // Cross-engine steering goes through the fabric: the admission
      // decision must run in the target engine's event domain (the
      // sharded simulator's ownership rule), and the hop charges its real
      // one-way latency. The shed decision therefore lands on the engine
      // the request was routed *to* — per-engine shed stays consistent
      // with admitted.
      m_routed_remote_->Add(e);
      Cluster* cluster = driver_->cluster();
      cluster->network()->Deliver(
          cluster->topology().NodeOfEngine(e),
          cluster->topology().NodeOfEngine(target), kForwardRequestBytes,
          [this, target, t]() {
            // Mirrors the arrival-discard rule: a request in flight when
            // a quiesce drains the simulator is dropped, not admitted.
            if (driver_->quiesced()) return;
            AdmitScheduled(target, t);
          });
    }
    ScheduleNextArrival(e);
    return;
  }
  EngineState& s = engines_[e];
  if (s.free_slots > 0) {
    --s.free_slots;
    driver_->NoteAdmitted(e);
    driver_->LaunchFresh(e, /*admission_delay=*/0);
  } else if (s.queue.size() < opts_.queue_cap) {
    driver_->NoteAdmitted(e);
    s.queue.push_back(driver_->cluster()->sim()->now());
    m_queue_depth_->Add(e, 1);
  } else {
    driver_->NoteShed(e);
  }
  ScheduleNextArrival(e);
}

void OpenLoop::AdmitFromQueue(EngineId e) {
  EngineState& s = engines_[e];
  const SimTime waited = driver_->cluster()->sim()->now() - s.queue.front();
  s.queue.pop_front();
  m_queue_depth_->Add(e, -1);
  --s.free_slots;
  driver_->LaunchFresh(e, waited);
}

bool OpenLoop::ClassAdmissible(const EngineState& s, uint32_t cls) const {
  if (cls == schedule::kColdClass) return true;
  if (!driver_->scheduler()->SerializeClasses()) return true;
  return !s.inflight_classes.contains(cls);
}

void OpenLoop::AdmitScheduled(EngineId e, std::shared_ptr<txn::Transaction> t) {
  EngineState& s = engines_[e];
  const uint32_t cls = t->sched_class;
  if (s.free_slots > 0 && ClassAdmissible(s, cls)) {
    --s.free_slots;
    if (cls != schedule::kColdClass &&
        driver_->scheduler()->SerializeClasses()) {
      ++s.inflight_classes[cls];
    }
    driver_->NoteAdmitted(e);
    driver_->LaunchRouted(e, std::move(t), /*admission_delay=*/0);
    return;
  }
  if (s.sched_queue.size() < opts_.queue_cap) {
    driver_->NoteAdmitted(e);
    s.sched_queue.push_back({std::move(t), driver_->cluster()->sim()->now(),
                             driver_->measuring()});
    m_queue_depth_->Add(e, 1);
    return;
  }
  // Queue full: the shed policy chooses between the arrival and a queued
  // victim of the opposite temperature.
  std::vector<bool> hot(s.sched_queue.size());
  for (size_t i = 0; i < s.sched_queue.size(); ++i) {
    hot[i] = s.sched_queue[i].txn->sched_class != schedule::kColdClass;
  }
  const int victim = schedule::PickVictim(
      hot, cls != schedule::kColdClass, opts_.shed_policy);
  obs::TraceRecorder* trace = driver_->cluster()->trace();
  const SimTime now = driver_->cluster()->sim()->now();
  if (victim < 0) {
    if (t->traced) {
      trace->Instant(e, now, "shed", t->logical_id, t->attempt, "shed");
    }
    driver_->NoteShed(e);
    return;
  }
  const ScheduledRequest& evicted =
      s.sched_queue[static_cast<size_t>(victim)];
  if (evicted.txn->traced) {
    trace->Instant(e, now, "shed_evicted", evicted.txn->logical_id,
                   evicted.txn->attempt, "shed");
  }
  driver_->NoteShedEvicted(e, evicted.counted);
  s.sched_queue.erase(s.sched_queue.begin() + victim);
  driver_->NoteAdmitted(e);
  s.sched_queue.push_back({std::move(t), driver_->cluster()->sim()->now(),
                           driver_->measuring()});
}

void OpenLoop::TryAdmitScheduled(EngineId e) {
  EngineState& s = engines_[e];
  while (s.free_slots > 0) {
    // First admissible request in queue order: a blocked hot class lets
    // the work behind it through instead of head-of-line blocking, and
    // the scan order is deterministic.
    size_t pick = s.sched_queue.size();
    for (size_t i = 0; i < s.sched_queue.size(); ++i) {
      if (ClassAdmissible(s, s.sched_queue[i].txn->sched_class)) {
        pick = i;
        break;
      }
    }
    if (pick == s.sched_queue.size()) return;
    ScheduledRequest req = std::move(s.sched_queue[pick]);
    s.sched_queue.erase(s.sched_queue.begin() + static_cast<long>(pick));
    m_queue_depth_->Add(e, -1);
    const SimTime waited =
        driver_->cluster()->sim()->now() - req.enqueued;
    --s.free_slots;
    const uint32_t cls = req.txn->sched_class;
    if (cls != schedule::kColdClass &&
        driver_->scheduler()->SerializeClasses()) {
      ++s.inflight_classes[cls];
    }
    driver_->LaunchRouted(e, std::move(req.txn), waited);
  }
}

void OpenLoop::OnSlotFree(EngineId e, const txn::Transaction& t) {
  if (t.outcome == txn::Outcome::kAbortConflict) {
    // The retried request keeps its slot: admitted work finishes before
    // queued work starts, so a conflict storm lengthens the queue instead
    // of multiplying the in-flight population. On the scheduled path it
    // also keeps its conflict class held.
    RetryAfterBackoff(e, t);
    return;
  }
  driver_->NoteQueueDelay(e, t.admission_delay);
  EngineState& s = engines_[e];
  ++s.free_slots;
  if (driver_->scheduler() != nullptr) {
    const uint32_t cls = t.sched_class;
    if (cls != schedule::kColdClass) {
      auto it = s.inflight_classes.find(cls);
      if (it != s.inflight_classes.end() && --it->second == 0) {
        s.inflight_classes.erase(it);
      }
    }
    TryAdmitScheduled(e);
    return;
  }
  if (!s.queue.empty()) AdmitFromQueue(e);
}

// ---------------------------------------------------------------------------
// Batched
// ---------------------------------------------------------------------------

Batched::Batched(uint32_t batch_size) : batch_(batch_size) {
  CHILLER_CHECK(batch_ >= 1);
}

void Batched::StartEngine(EngineId e) {
  if (engines_.empty()) engines_.resize(driver_->cluster()->num_engines());
  engines_[e].outstanding = 0;
  LaunchBatch(e);
}

void Batched::LaunchBatch(EngineId e) {
  if (driver_->scheduler() != nullptr) {
    LaunchPackedBatch(e);
    return;
  }
  EngineState& s = engines_[e];
  s.outstanding = batch_;
  for (uint32_t i = 0; i < batch_; ++i) driver_->LaunchFresh(e);
}

void Batched::LaunchPackedBatch(EngineId e) {
  const schedule::Scheduler* sched = driver_->scheduler();
  EngineState& s = engines_[e];
  std::vector<std::shared_ptr<txn::Transaction>> batch;
  std::unordered_set<uint32_t> used;
  const auto admissible = [&](uint32_t cls) {
    return cls == schedule::kColdClass || !used.contains(cls);
  };
  const auto take = [&](std::shared_ptr<txn::Transaction> t) {
    if (t->sched_class != schedule::kColdClass) used.insert(t->sched_class);
    batch.push_back(std::move(t));
  };
  // Deferred work first, oldest first: a draw parked by an earlier batch's
  // class collision must not starve behind fresh draws.
  for (auto it = s.deferred.begin();
       it != s.deferred.end() && batch.size() < batch_;) {
    if (admissible((*it)->sched_class)) {
      take(std::move(*it));
      it = s.deferred.erase(it);
    } else {
      ++it;
    }
  }
  // Fresh draws fill the rest. Collisions are deferred up to a bounded
  // backlog; past the cap the collision is admitted anyway (the batch
  // degrades toward legacy behavior instead of deferring unboundedly),
  // and the draw bound keeps batch formation O(batch) per refill.
  const size_t defer_cap = static_cast<size_t>(batch_) * 4;
  for (uint32_t draws = 0; batch.size() < batch_ && draws < batch_ * 4;
       ++draws) {
    std::shared_ptr<txn::Transaction> t = driver_->Draw(e);
    t->sched_class = sched->Classify(*t);
    if (admissible(t->sched_class)) {
      take(std::move(t));
    } else if (s.deferred.size() < defer_cap) {
      s.deferred.push_back(std::move(t));
    } else {
      take(std::move(t));
    }
  }
  // Progress is structural: an empty `used` set admits any first draw (or
  // any first deferred entry), so a batch is never empty.
  CHILLER_CHECK(!batch.empty());
  s.outstanding = static_cast<uint32_t>(batch.size());
  for (std::shared_ptr<txn::Transaction>& t : batch) {
    driver_->LaunchRouted(e, std::move(t));
  }
}

void Batched::OnSlotFree(EngineId e, const txn::Transaction& t) {
  if (t.outcome == txn::Outcome::kAbortConflict) {
    RetryAfterBackoff(e, t);  // the retry stays a member of its batch
    return;
  }
  EngineState& s = engines_[e];
  CHILLER_DCHECK(s.outstanding > 0);
  if (--s.outstanding == 0) LaunchBatch(e);
}

// ---------------------------------------------------------------------------
// Factory
// ---------------------------------------------------------------------------

Status ValidateLoadModelParams(const std::string& name,
                               const LoadModelParams& params) {
  if (params.slots_per_engine == 0) {
    return Status::InvalidArgument("load model needs slots_per_engine >= 1");
  }
  if (name == "closed") return Status::OK();
  if (name == "open") {
    if (params.offered_tps <= 0.0) {
      return Status::InvalidArgument(
          "open load model needs offered_tps > 0 (cluster-wide offered "
          "load, txns/sec)");
    }
    if (params.queue_cap == 0) {
      return Status::InvalidArgument(
          "open load model needs queue_cap >= 1 (bounded admission queue)");
    }
    if (params.arrival != "poisson" && params.arrival != "uniform") {
      return Status::InvalidArgument("unknown arrival process '" +
                                     params.arrival +
                                     "' (known: poisson, uniform)");
    }
    return Status::OK();
  }
  if (name == "batched") {
    if (params.batch_size == 0) {
      return Status::InvalidArgument(
          "batched load model needs batch_size >= 1");
    }
    return Status::OK();
  }
  return Status::InvalidArgument("unknown load model '" + name +
                                 "' (known: closed, open, batched)");
}

StatusOr<std::unique_ptr<LoadModel>> MakeLoadModel(
    const std::string& name, const LoadModelParams& params) {
  Status st = ValidateLoadModelParams(name, params);
  if (!st.ok()) return st;
  if (name == "closed") {
    return std::unique_ptr<LoadModel>(
        std::make_unique<ClosedLoop>(params.slots_per_engine));
  }
  if (name == "open") {
    OpenLoopOptions o;
    o.offered_tps = params.offered_tps;
    o.arrival = params.arrival;
    o.slots_per_engine = params.slots_per_engine;
    o.queue_cap = params.queue_cap;
    o.seed = params.seed;
    auto policy = schedule::ParseShedPolicy(params.shed_policy);
    if (!policy.ok()) return policy.status();
    o.shed_policy = policy.value();
    return std::unique_ptr<LoadModel>(std::make_unique<OpenLoop>(o));
  }
  return std::unique_ptr<LoadModel>(
      std::make_unique<Batched>(params.batch_size));
}

}  // namespace chiller::cc
