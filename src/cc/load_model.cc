#include "cc/load_model.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "cc/cluster.h"
#include "common/logging.h"

namespace chiller::cc {

void LoadModel::RetryAfterBackoff(EngineId e, const txn::Transaction& t) {
  Driver* d = driver_;
  const ExecCosts& costs = d->cluster()->costs();
  const uint32_t shift = std::min<uint32_t>(t.attempt, 5);
  const SimTime backoff =
      (costs.retry_backoff_fixed << shift) +
      d->rng(e)->Uniform(costs.retry_backoff_jitter << shift);
  std::shared_ptr<txn::Transaction> retry = d->RebuildForRetry(t);
  // Explicitly target e's own domain: the relaunch belongs to the engine
  // regardless of what context the slot was freed from.
  sim::Scheduler* sim = d->cluster()->sim();
  sim->ScheduleIn(
      sim::DomainOfNode(d->cluster()->topology().NodeOfEngine(e)),
      sim->now() + backoff, [d, e, retry]() { d->Launch(e, retry); });
}

// ---------------------------------------------------------------------------
// ClosedLoop
// ---------------------------------------------------------------------------

ClosedLoop::ClosedLoop(uint32_t slots_per_engine) : slots_(slots_per_engine) {
  CHILLER_CHECK(slots_ >= 1);
}

void ClosedLoop::StartEngine(EngineId e) {
  for (uint32_t s = 0; s < slots_; ++s) driver_->LaunchFresh(e);
}

void ClosedLoop::OnSlotFree(EngineId e, const txn::Transaction& t) {
  if (t.outcome == txn::Outcome::kAbortConflict) {
    RetryAfterBackoff(e, t);
    return;
  }
  driver_->LaunchFresh(e);
}

// ---------------------------------------------------------------------------
// OpenLoop
// ---------------------------------------------------------------------------

OpenLoop::OpenLoop(OpenLoopOptions options) : opts_(std::move(options)) {
  CHILLER_CHECK(opts_.offered_tps > 0.0);
  CHILLER_CHECK(opts_.slots_per_engine >= 1);
  CHILLER_CHECK(opts_.queue_cap >= 1);
  CHILLER_CHECK(opts_.arrival == "poisson" || opts_.arrival == "uniform")
      << "unknown arrival process '" << opts_.arrival << "'";
}

void OpenLoop::StartEngine(EngineId e) {
  if (engines_.empty()) {
    engines_.resize(driver_->cluster()->num_engines());
    // The per-engine arrival rate: the cluster-wide offered load split
    // evenly. Computed once so every engine paces identically.
    const double per_engine_tps =
        opts_.offered_tps / static_cast<double>(engines_.size());
    mean_interarrival_ = std::max<SimTime>(
        1, static_cast<SimTime>(
               std::llround(static_cast<double>(kSecond) / per_engine_tps)));
  }
  EngineState& s = engines_[e];
  if (!s.initialized) {
    s.initialized = true;
    // SplitMix64-style stream split keeps engine clocks decorrelated while
    // staying a pure function of (seed, engine).
    s.arrivals.Seed(opts_.seed + 0x9e3779b97f4a7c15ULL * (e + 1));
    s.free_slots = opts_.slots_per_engine;
  }
  // After a quiesce every in-flight transaction has settled, so all slots
  // are free again; requests that were already admitted to the queue keep
  // their place (and their admission timestamps) and launch first.
  s.free_slots = opts_.slots_per_engine;
  while (s.free_slots > 0 && !s.queue.empty()) AdmitFromQueue(e);
  ScheduleNextArrival(e);
}

void OpenLoop::ScheduleNextArrival(EngineId e) {
  EngineState& s = engines_[e];
  const double u = s.arrivals.NextDouble();
  SimTime gap;
  if (opts_.arrival == "poisson") {
    // Exponential interarrival; clamp the (measure-zero) u == 0 draw.
    const double x = -std::log(std::max(u, 1e-300));
    gap = static_cast<SimTime>(
        std::llround(x * static_cast<double>(mean_interarrival_)));
  } else {
    // Uniform in [0, 2*mean): same offered rate, bounded burstiness.
    gap = static_cast<SimTime>(
        std::llround(u * 2.0 * static_cast<double>(mean_interarrival_)));
  }
  // StartEngine arms this clock from control; later ticks re-arm it from
  // the engine's own context. Target the engine's domain explicitly so both
  // paths land the arrival in the same place.
  sim::Scheduler* sim = driver_->cluster()->sim();
  sim->ScheduleIn(
      sim::DomainOfNode(driver_->cluster()->topology().NodeOfEngine(e)),
      sim->now() + std::max<SimTime>(gap, 1), [this, e]() { Arrive(e); });
}

void OpenLoop::Arrive(EngineId e) {
  // A quiesce drains the event queue, which fires pending arrivals early;
  // discard them and leave the clock disarmed — Resume() restarts it.
  if (driver_->quiesced()) return;
  EngineState& s = engines_[e];
  if (s.free_slots > 0) {
    --s.free_slots;
    driver_->NoteAdmitted(e);
    driver_->LaunchFresh(e, /*admission_delay=*/0);
  } else if (s.queue.size() < opts_.queue_cap) {
    driver_->NoteAdmitted(e);
    s.queue.push_back(driver_->cluster()->sim()->now());
  } else {
    driver_->NoteShed(e);
  }
  ScheduleNextArrival(e);
}

void OpenLoop::AdmitFromQueue(EngineId e) {
  EngineState& s = engines_[e];
  const SimTime waited = driver_->cluster()->sim()->now() - s.queue.front();
  s.queue.pop_front();
  --s.free_slots;
  driver_->LaunchFresh(e, waited);
}

void OpenLoop::OnSlotFree(EngineId e, const txn::Transaction& t) {
  if (t.outcome == txn::Outcome::kAbortConflict) {
    // The retried request keeps its slot: admitted work finishes before
    // queued work starts, so a conflict storm lengthens the queue instead
    // of multiplying the in-flight population.
    RetryAfterBackoff(e, t);
    return;
  }
  driver_->NoteQueueDelay(e, t.admission_delay);
  EngineState& s = engines_[e];
  ++s.free_slots;
  if (!s.queue.empty()) AdmitFromQueue(e);
}

// ---------------------------------------------------------------------------
// Batched
// ---------------------------------------------------------------------------

Batched::Batched(uint32_t batch_size) : batch_(batch_size) {
  CHILLER_CHECK(batch_ >= 1);
}

void Batched::StartEngine(EngineId e) {
  if (engines_.empty()) engines_.resize(driver_->cluster()->num_engines());
  engines_[e].outstanding = 0;
  LaunchBatch(e);
}

void Batched::LaunchBatch(EngineId e) {
  EngineState& s = engines_[e];
  s.outstanding = batch_;
  for (uint32_t i = 0; i < batch_; ++i) driver_->LaunchFresh(e);
}

void Batched::OnSlotFree(EngineId e, const txn::Transaction& t) {
  if (t.outcome == txn::Outcome::kAbortConflict) {
    RetryAfterBackoff(e, t);  // the retry stays a member of its batch
    return;
  }
  EngineState& s = engines_[e];
  CHILLER_DCHECK(s.outstanding > 0);
  if (--s.outstanding == 0) LaunchBatch(e);
}

// ---------------------------------------------------------------------------
// Factory
// ---------------------------------------------------------------------------

Status ValidateLoadModelParams(const std::string& name,
                               const LoadModelParams& params) {
  if (params.slots_per_engine == 0) {
    return Status::InvalidArgument("load model needs slots_per_engine >= 1");
  }
  if (name == "closed") return Status::OK();
  if (name == "open") {
    if (params.offered_tps <= 0.0) {
      return Status::InvalidArgument(
          "open load model needs offered_tps > 0 (cluster-wide offered "
          "load, txns/sec)");
    }
    if (params.queue_cap == 0) {
      return Status::InvalidArgument(
          "open load model needs queue_cap >= 1 (bounded admission queue)");
    }
    if (params.arrival != "poisson" && params.arrival != "uniform") {
      return Status::InvalidArgument("unknown arrival process '" +
                                     params.arrival +
                                     "' (known: poisson, uniform)");
    }
    return Status::OK();
  }
  if (name == "batched") {
    if (params.batch_size == 0) {
      return Status::InvalidArgument(
          "batched load model needs batch_size >= 1");
    }
    return Status::OK();
  }
  return Status::InvalidArgument("unknown load model '" + name +
                                 "' (known: closed, open, batched)");
}

StatusOr<std::unique_ptr<LoadModel>> MakeLoadModel(
    const std::string& name, const LoadModelParams& params) {
  Status st = ValidateLoadModelParams(name, params);
  if (!st.ok()) return st;
  if (name == "closed") {
    return std::unique_ptr<LoadModel>(
        std::make_unique<ClosedLoop>(params.slots_per_engine));
  }
  if (name == "open") {
    OpenLoopOptions o;
    o.offered_tps = params.offered_tps;
    o.arrival = params.arrival;
    o.slots_per_engine = params.slots_per_engine;
    o.queue_cap = params.queue_cap;
    o.seed = params.seed;
    return std::unique_ptr<LoadModel>(std::make_unique<OpenLoop>(o));
  }
  return std::unique_ptr<LoadModel>(
      std::make_unique<Batched>(params.batch_size));
}

}  // namespace chiller::cc
