#include "cc/migration.h"

#include <atomic>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "migrate/migration_plan.h"

namespace chiller::cc {

StatusOr<MigrationStats> MigrateToLayout(
    Cluster* cluster, ReplicationManager* repl,
    const partition::RecordPartitioner& layout) {
  const uint32_t partitions = cluster->topology().num_partitions();
  for (PartitionId p = 0; p < partitions; ++p) {
    if (cluster->primary(p)->locks_held() != 0) {
      return Status::FailedPrecondition(
          "partition " + std::to_string(p) +
          " still holds locks; quiesce the cluster before migrating");
    }
  }

  // The schedule comes from the shared planner: a 1-bucket diff is the
  // whole relayout as one unit, in the deterministic scan order this path
  // has always used. Regrouping by (from, to) reproduces the legacy
  // per-partition-pair batching byte for byte.
  const migrate::MigrationPlan plan =
      migrate::MigrationPlan::Diff(cluster, layout, /*num_buckets=*/1);
  std::map<std::pair<PartitionId, PartitionId>, std::vector<RecordId>> moves;
  for (const migrate::MoveUnit& unit : plan.units) {
    for (const migrate::RecordMove& mv : unit.moves) {
      moves[{mv.from, mv.to}].push_back(mv.rid);
    }
  }

  MigrationStats stats;
  const SimTime migrate_start = cluster->sim()->now();
  // Atomic: the two completions of one pair decrement from different node
  // domains (to_engine's and from_engine's), which under the sharded
  // simulator are different threads. Only the post-Run() zero matters.
  std::atomic<uint32_t> pending{0};
  auto done_one = [&pending]() {
    CHILLER_CHECK(pending.fetch_sub(1) > 0);
  };

  for (auto& [pair, rids] : moves) {
    const auto [from, to] = pair;
    const EngineId from_engine = cluster->topology().EngineOfPartition(from);
    const EngineId to_engine = cluster->topology().EngineOfPartition(to);

    // Extract the batch synchronously (the cluster is quiesced; nothing
    // can observe the window between extract and install except the
    // simulated transfer below).
    auto batch = std::make_shared<std::vector<ReplUpdate>>();
    std::vector<ReplUpdate> erases;
    size_t bytes = kMigrationBatchHeaderBytes;
    batch->reserve(rids.size());
    erases.reserve(rids.size());
    for (const RecordId& rid : rids) {
      auto rec = cluster->ExtractRecord(rid, from);
      if (!rec.ok()) return rec.status();
      bytes += kMigrationPerRecordOverheadBytes + rec.value().wire_bytes();
      batch->push_back(ReplUpdate{.kind = ReplUpdate::Kind::kPut,
                                  .rid = rid,
                                  .image = std::move(rec).value()});
      erases.push_back(ReplUpdate{.kind = ReplUpdate::Kind::kErase,
                                  .rid = rid,
                                  .image = storage::Record()});
    }
    stats.moved_records += rids.size();
    stats.moved_bytes += bytes;

    // Ship the batch primary-to-primary; on arrival install every record
    // and stream the images to the new partition's replicas.
    const SimTime install_cost =
        cluster->costs().replica_apply *
        static_cast<SimTime>(batch->size());
    ++pending;
    cluster->rpc()->Send(
        from_engine, to_engine, bytes, install_cost,
        [cluster, repl, batch, to, to_engine, &done_one]() {
          for (const ReplUpdate& u : *batch) {
            const Status st = cluster->InstallRecord(u.rid, to, u.image);
            CHILLER_CHECK(st.ok()) << st.ToString();
          }
          repl->Replicate(to_engine, to, std::move(*batch), to_engine,
                          done_one);
        });

    // The old partition's replicas drop their stale copies in parallel.
    ++pending;
    repl->Replicate(from_engine, from, std::move(erases), from_engine,
                    done_one);
  }

  cluster->sim()->Run();
  CHILLER_CHECK(pending == 0) << "migration events did not settle";
  stats.sim_time = cluster->sim()->now() - migrate_start;
  return stats;
}

}  // namespace chiller::cc
