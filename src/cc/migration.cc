#include "cc/migration.h"

#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "common/logging.h"

namespace chiller::cc {

namespace {

/// Wire accounting per moved record, mirroring ReplicationManager's
/// update-stream framing: header + rid + image.
constexpr size_t kBatchHeaderBytes = 64;
constexpr size_t kPerRecordOverheadBytes = 24;

}  // namespace

StatusOr<MigrationStats> MigrateToLayout(
    Cluster* cluster, ReplicationManager* repl,
    const partition::RecordPartitioner& layout) {
  const uint32_t partitions = cluster->topology().num_partitions();
  for (PartitionId p = 0; p < partitions; ++p) {
    if (cluster->primary(p)->locks_held() != 0) {
      return Status::FailedPrecondition(
          "partition " + std::to_string(p) +
          " still holds locks; quiesce the cluster before migrating");
    }
  }

  // Scan pass: (from, to) -> rids, in deterministic partition/bucket scan
  // order. A record already present at its layout target was loaded
  // everywhere (a read-only reference table): its placement is
  // "everywhere" and it never moves — probing the target primary detects
  // that without a cluster-wide copy count.
  std::map<std::pair<PartitionId, PartitionId>, std::vector<RecordId>> moves;
  for (PartitionId p = 0; p < partitions; ++p) {
    cluster->primary(p)->ForEach(
        [&](const RecordId& rid, const storage::Record&) {
          const PartitionId target = layout.PartitionOf(rid);
          if (target == p) return;
          if (cluster->primary(target)->Find(rid) != nullptr) return;
          moves[{p, target}].push_back(rid);
        });
  }

  MigrationStats stats;
  const SimTime migrate_start = cluster->sim()->now();
  uint32_t pending = 0;
  auto done_one = [&pending]() {
    CHILLER_CHECK(pending > 0);
    --pending;
  };

  for (auto& [pair, rids] : moves) {
    const auto [from, to] = pair;
    const EngineId from_engine = cluster->topology().EngineOfPartition(from);
    const EngineId to_engine = cluster->topology().EngineOfPartition(to);

    // Extract the batch synchronously (the cluster is quiesced; nothing
    // can observe the window between extract and install except the
    // simulated transfer below).
    auto batch = std::make_shared<std::vector<ReplUpdate>>();
    std::vector<ReplUpdate> erases;
    size_t bytes = kBatchHeaderBytes;
    batch->reserve(rids.size());
    erases.reserve(rids.size());
    for (const RecordId& rid : rids) {
      auto rec = cluster->ExtractRecord(rid, from);
      if (!rec.ok()) return rec.status();
      bytes += kPerRecordOverheadBytes + rec.value().wire_bytes();
      batch->push_back(ReplUpdate{.kind = ReplUpdate::Kind::kPut,
                                  .rid = rid,
                                  .image = std::move(rec).value()});
      erases.push_back(ReplUpdate{.kind = ReplUpdate::Kind::kErase,
                                  .rid = rid,
                                  .image = storage::Record()});
    }
    stats.moved_records += rids.size();
    stats.moved_bytes += bytes;

    // Ship the batch primary-to-primary; on arrival install every record
    // and stream the images to the new partition's replicas.
    const SimTime install_cost =
        cluster->costs().replica_apply *
        static_cast<SimTime>(batch->size());
    ++pending;
    cluster->rpc()->Send(
        from_engine, to_engine, bytes, install_cost,
        [cluster, repl, batch, to, to_engine, &done_one]() {
          for (const ReplUpdate& u : *batch) {
            const Status st = cluster->InstallRecord(u.rid, to, u.image);
            CHILLER_CHECK(st.ok()) << st.ToString();
          }
          repl->Replicate(to_engine, to, std::move(*batch), to_engine,
                          done_one);
        });

    // The old partition's replicas drop their stale copies in parallel.
    ++pending;
    repl->Replicate(from_engine, from, std::move(erases), from_engine,
                    done_one);
  }

  cluster->sim()->Run();
  CHILLER_CHECK(pending == 0) << "migration events did not settle";
  stats.sim_time = cluster->sim()->now() - migrate_start;
  return stats;
}

}  // namespace chiller::cc
