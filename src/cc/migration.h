// Quiesced record migration: moves a quiesced cluster's primary records to
// match a new partitioning layout, paying simulated network cost. The
// schedule (which records move where) comes from migrate::MigrationPlan —
// the same planner the live, bucket-incremental path (migrate::
// LiveMigrator) executes under traffic.
#ifndef CHILLER_CC_MIGRATION_H_
#define CHILLER_CC_MIGRATION_H_

#include "cc/cluster.h"
#include "cc/replication.h"
#include "common/status.h"
#include "partition/lookup_table.h"

namespace chiller::cc {

/// Wire accounting per moved batch/record, mirroring ReplicationManager's
/// update-stream framing: header + rid + image. Shared by the quiesced
/// path below and migrate::LiveMigrator so both schedules cost moves
/// identically.
inline constexpr size_t kMigrationBatchHeaderBytes = 64;
inline constexpr size_t kMigrationPerRecordOverheadBytes = 24;

/// What a relayout cost: the records that physically moved, the bytes that
/// crossed the fabric for them, and the simulated time the cluster spent
/// migrating (for the quiesced path, the "pause" the measure phase pays;
/// for the live path, the span records were in flight under traffic).
struct MigrationStats {
  uint64_t moved_records = 0;
  uint64_t moved_bytes = 0;
  SimTime sim_time = 0;

  friend bool operator==(const MigrationStats&, const MigrationStats&) =
      default;
};

/// Moves every primary record whose placement under `layout` differs from
/// the partition currently holding it, then resyncs replicas through
/// `repl`: the old partition's replicas erase the record, the new
/// partition's replicas receive its image. Each per-partition-pair batch is
/// shipped primary-to-primary over the RPC layer, so moves pay transfer
/// and apply costs in simulated time; the function runs the simulator
/// until every move and replica ack settles.
///
/// Records resident in more than one primary (fully replicated read-only
/// tables loaded via LoadEverywhere) are left in place everywhere.
///
/// Requires a quiesced cluster: fails with FailedPrecondition if any
/// primary still holds locks.
StatusOr<MigrationStats> MigrateToLayout(
    Cluster* cluster, ReplicationManager* repl,
    const partition::RecordPartitioner& layout);

}  // namespace chiller::cc

#endif  // CHILLER_CC_MIGRATION_H_
