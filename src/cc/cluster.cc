#include "cc/cluster.h"

#include <utility>

#include "common/logging.h"
#include "sim/sharded_simulator.h"
#include "sim/simulator.h"

namespace chiller::cc {

Cluster::Cluster(ClusterConfig config) : config_(std::move(config)) {
  const net::Topology& topo = config_.topology;
  CHILLER_CHECK(topo.num_nodes >= topo.replication_degree)
      << "replicas must land on distinct nodes";
  CHILLER_CHECK(config_.shards >= 1);
  // Both implementations execute the canonical (time, domain, origin, seq)
  // event order, so which one runs is purely a wall-clock choice.
  if (config_.shards == 1) {
    sim_ = std::make_unique<sim::Simulator>();
  } else {
    CHILLER_CHECK(config_.network.OneWay(0) > 0)
        << "sharded execution needs a non-zero minimum network latency";
    sim_ = std::make_unique<sim::ShardedSimulator>(
        config_.shards, /*num_domains=*/topo.num_nodes + 1);
  }
  // The conservative lookahead: no cross-node message arrives sooner than
  // this, which bounds how far shards may run ahead of each other. Set on
  // the single-threaded simulator too so control-plane grid rounding — and
  // therefore every result — is identical at any shard count.
  sim_->set_lookahead(config_.network.OneWay(0));
  network_ = std::make_unique<net::Network>(sim_.get(), config_.network,
                                            topo.num_nodes);
  rdma_ = std::make_unique<net::RdmaFabric>(sim_.get(), network_.get(), topo);
  rpc_ = std::make_unique<net::RpcLayer>(sim_.get(), network_.get(), topo);

  const uint32_t n = topo.num_engines();
  {
    std::vector<uint32_t> node_of_engine(n);
    for (uint32_t e = 0; e < n; ++e) node_of_engine[e] = topo.NodeOfEngine(e);
    trace_ = std::make_shared<obs::TraceRecorder>(
        config_.trace_sample_every, topo.num_nodes, std::move(node_of_engine));
  }
  metrics_ = std::make_unique<obs::MetricsRegistry>(n);
  engines_.reserve(n);
  primaries_.reserve(n);
  replica_stores_.resize(n);
  for (uint32_t e = 0; e < n; ++e) {
    engines_.push_back(std::make_unique<Engine>(
        e, sim_.get(), sim::DomainOfNode(topo.NodeOfEngine(e))));
    primaries_.push_back(
        std::make_unique<storage::PartitionStore>(e, config_.schema));
    engines_[e]->AttachPrimary(primaries_[e].get());
  }
  for (uint32_t p = 0; p < n; ++p) {
    for (uint32_t i = 1; i < topo.replication_degree; ++i) {
      auto store = std::make_unique<storage::PartitionStore>(p, config_.schema);
      const EngineId host = topo.ReplicaEngine(p, i);
      engines_[host]->AttachReplica(p, store.get());
      replica_stores_[p].push_back(std::move(store));
    }
  }

  std::vector<sim::CpuResource*> cpus;
  cpus.reserve(n);
  for (auto& eng : engines_) cpus.push_back(eng->cpu());
  rpc_->BindEngines(std::move(cpus));
}

void Cluster::LoadRecord(const RecordId& rid, const storage::Record& record,
                         const partition::RecordPartitioner& partitioner) {
  const PartitionId p = partitioner.PartitionOf(rid);
  CHILLER_CHECK(p < primaries_.size()) << "partition out of range";
  CHILLER_CHECK(primaries_[p]->Insert(rid, record).ok())
      << "duplicate load of " << rid.ToString();
  for (auto& replica : replica_stores_[p]) {
    CHILLER_CHECK(replica->Insert(rid, record).ok());
  }
}

void Cluster::LoadEverywhere(const RecordId& rid,
                             const storage::Record& record) {
  for (auto& primary : primaries_) {
    CHILLER_CHECK(primary->Insert(rid, record).ok());
  }
  for (auto& replicas : replica_stores_) {
    for (auto& replica : replicas) {
      CHILLER_CHECK(replica->Insert(rid, record).ok());
    }
  }
}

StatusOr<storage::Record> Cluster::ExtractRecord(const RecordId& rid,
                                                 PartitionId from) {
  if (from >= primaries_.size()) {
    return Status::InvalidArgument("no partition " + std::to_string(from));
  }
  return primaries_[from]->ExtractRecord(rid);
}

Status Cluster::InstallRecord(const RecordId& rid, PartitionId to,
                              storage::Record record) {
  if (to >= primaries_.size()) {
    return Status::InvalidArgument("no partition " + std::to_string(to));
  }
  return primaries_[to]->InstallRecord(rid, std::move(record));
}

size_t Cluster::TotalPrimaryRecords() const {
  size_t total = 0;
  for (const auto& p : primaries_) total += p->num_records();
  return total;
}

}  // namespace chiller::cc
