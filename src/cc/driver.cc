#include "cc/driver.h"

#include <algorithm>
#include <utility>

#include "cc/exec_common.h"
#include "common/logging.h"

namespace chiller::cc {

Driver::Driver(Cluster* cluster, Protocol* protocol, WorkloadSource* source,
               uint32_t concurrent_per_engine, uint64_t seed)
    : cluster_(cluster),
      protocol_(protocol),
      source_(source),
      concurrent_(concurrent_per_engine),
      rng_(seed) {
  CHILLER_CHECK(concurrent_ >= 1);
  for (uint32_t c = 0; c < source_->NumClasses(); ++c) {
    stats_.EnsureClass(c, source_->ClassName(c));
  }
}

void Driver::StartSlot(EngineId e) {
  std::shared_ptr<txn::Transaction> t = source_->Next(e, &rng_);
  Launch(e, std::move(t));
}

void Driver::Launch(EngineId e, std::shared_ptr<txn::Transaction> t) {
  t->id = next_id_++;
  t->home = e;
  t->outcome = txn::Outcome::kPending;
  t->start_time = cluster_->sim()->now();
  if (t->accesses.empty()) t->InitAccesses();
  protocol_->Execute(t, [this, e, t]() { OnDone(e, t); });
}

void Driver::OnDone(EngineId e, const std::shared_ptr<txn::Transaction>& t) {
  if (observer_ && t->outcome == txn::Outcome::kCommitted) observer_(*t);
  if (measuring_) {
    stats_.EnsureClass(t->txn_class, source_->ClassName(t->txn_class));
    ClassStats& cs = stats_.classes[t->txn_class];
    switch (t->outcome) {
      case txn::Outcome::kCommitted:
        ++cs.commits;
        if (exec::IsDistributed(*t)) ++cs.distributed_commits;
        cs.latency.Add(t->end_time - t->start_time);
        break;
      case txn::Outcome::kAbortConflict:
        ++cs.conflict_aborts;
        break;
      case txn::Outcome::kAbortUser:
        ++cs.user_aborts;
        break;
      case txn::Outcome::kPending:
        CHILLER_CHECK(false) << "protocol finished with pending outcome";
    }
  }

  if (stopped_) return;
  if (t->outcome == txn::Outcome::kAbortConflict) {
    // Retry the same logical transaction after a jittered backoff that
    // grows with consecutive aborts (NO_WAIT livelock avoidance without
    // letting retries saturate a contended record).
    const ExecCosts& costs = cluster_->costs();
    const uint32_t shift = std::min<uint32_t>(t->attempt, 5);
    const SimTime backoff =
        (costs.retry_backoff_fixed << shift) +
        rng_.Uniform(costs.retry_backoff_jitter << shift);
    std::shared_ptr<txn::Transaction> retry = source_->Rebuild(*t);
    retry->attempt = t->attempt + 1;
    cluster_->sim()->Schedule(backoff, [this, e, retry]() {
      Launch(e, retry);
    });
    return;
  }
  StartSlot(e);
}

void Driver::Start() {
  CHILLER_CHECK(!stopped_) << "driver is quiesced; use Resume()";
  if (started_) return;
  started_ = true;
  for (EngineId e = 0; e < cluster_->num_engines(); ++e) {
    for (uint32_t s = 0; s < concurrent_; ++s) StartSlot(e);
  }
}

void Driver::Advance(SimTime duration) {
  cluster_->sim()->RunUntil(cluster_->sim()->now() + duration);
}

void Driver::Quiesce() {
  stopped_ = true;
  cluster_->sim()->Run();
}

void Driver::Resume() {
  CHILLER_CHECK(started_) << "Resume without Start";
  stopped_ = false;
  for (EngineId e = 0; e < cluster_->num_engines(); ++e) {
    for (uint32_t s = 0; s < concurrent_; ++s) StartSlot(e);
  }
}

void Driver::SetCommitObserver(CommitObserver observer) {
  observer_ = std::move(observer);
}

void Driver::ResetStats() {
  for (auto& cs : stats_.classes) {
    ClassStats fresh;
    fresh.name = cs.name;
    cs = std::move(fresh);
  }
}

void Driver::DrainAndStop() { Quiesce(); }

RunStats Driver::Run(SimTime warmup, SimTime measure) {
  Start();
  Advance(warmup);
  ResetStats();
  measuring_ = true;
  Advance(measure);
  measuring_ = false;
  stats_.window = measure;
  return stats_;
}

}  // namespace chiller::cc
