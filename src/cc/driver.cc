#include "cc/driver.h"

#include <utility>

#include "cc/exec_common.h"
#include "cc/load_model.h"
#include "common/logging.h"

namespace chiller::cc {

Driver::Driver(Cluster* cluster, Protocol* protocol, WorkloadSource* source,
               uint32_t concurrent_per_engine, uint64_t seed)
    : Driver(cluster, protocol, source,
             std::make_unique<ClosedLoop>(concurrent_per_engine), seed) {}

Driver::Driver(Cluster* cluster, Protocol* protocol, WorkloadSource* source,
               std::unique_ptr<LoadModel> model, uint64_t seed)
    : cluster_(cluster),
      protocol_(protocol),
      source_(source),
      model_(std::move(model)),
      rng_(seed) {
  CHILLER_CHECK(model_ != nullptr);
  for (uint32_t c = 0; c < source_->NumClasses(); ++c) {
    stats_.EnsureClass(c, source_->ClassName(c));
  }
  model_->Bind(this);
  stats_.open_loop = model_->UsesAdmissionQueue();
}

Driver::~Driver() = default;

void Driver::LaunchFresh(EngineId e, SimTime admission_delay) {
  std::shared_ptr<txn::Transaction> t = source_->Next(e, &rng_);
  t->admission_delay = admission_delay;
  Launch(e, std::move(t));
}

void Driver::Launch(EngineId e, std::shared_ptr<txn::Transaction> t) {
  t->id = next_id_++;
  t->home = e;
  t->outcome = txn::Outcome::kPending;
  t->start_time = cluster_->sim()->now();
  if (t->accesses.empty()) t->InitAccesses();
  protocol_->Execute(t, [this, e, t]() { OnDone(e, t); });
}

std::shared_ptr<txn::Transaction> Driver::RebuildForRetry(
    const txn::Transaction& t) {
  std::shared_ptr<txn::Transaction> retry = source_->Rebuild(t);
  retry->attempt = t.attempt + 1;
  retry->admission_delay = t.admission_delay;
  // A co-location violation is a property of the logical transaction under
  // the live layout, not of the attempt: replanning the same inner region
  // would abort identically forever.
  retry->force_fallback = t.force_fallback;
  return retry;
}

void Driver::NoteAdmitted() {
  if (measuring_) ++stats_.admitted;
}

void Driver::NoteShed() {
  if (measuring_) ++stats_.shed;
}

void Driver::NoteQueueDelay(SimTime delay) {
  if (measuring_) stats_.queue_delay.Add(delay);
}

void Driver::OnDone(EngineId e, const std::shared_ptr<txn::Transaction>& t) {
  if (observer_ && t->outcome == txn::Outcome::kCommitted) observer_(*t);
  // Lifetime counters run regardless of the measuring toggle: timeline
  // consumers (runner::AdaptiveReport slices, the live-migration bench)
  // need commit flow visible across warmup and migration windows too.
  if (t->outcome == txn::Outcome::kCommitted) {
    ++lifetime_commits_;
    lifetime_latency_ns_ += t->end_time - t->start_time;
  } else if (t->outcome == txn::Outcome::kAbortConflict &&
             t->blocked_by_migration) {
    ++lifetime_migration_aborts_;
  }
  if (measuring_) {
    stats_.EnsureClass(t->txn_class, source_->ClassName(t->txn_class));
    ClassStats& cs = stats_.classes[t->txn_class];
    switch (t->outcome) {
      case txn::Outcome::kCommitted:
        ++cs.commits;
        if (exec::IsDistributed(*t)) ++cs.distributed_commits;
        cs.latency.Add(t->end_time - t->start_time);
        break;
      case txn::Outcome::kAbortConflict:
        if (t->blocked_by_migration) {
          ++cs.migration_aborts;
        } else {
          ++cs.conflict_aborts;
        }
        break;
      case txn::Outcome::kAbortUser:
        ++cs.user_aborts;
        break;
      case txn::Outcome::kPending:
        CHILLER_CHECK(false) << "protocol finished with pending outcome";
    }
  }

  if (stopped_) return;
  model_->OnSlotFree(e, *t);
}

void Driver::Start() {
  CHILLER_CHECK(!stopped_) << "driver is quiesced; use Resume()";
  if (started_) return;
  started_ = true;
  for (EngineId e = 0; e < cluster_->num_engines(); ++e) {
    model_->StartEngine(e);
  }
}

void Driver::Advance(SimTime duration) {
  cluster_->sim()->RunUntil(cluster_->sim()->now() + duration);
}

void Driver::Quiesce() {
  stopped_ = true;
  cluster_->sim()->Run();
}

void Driver::Resume() {
  CHILLER_CHECK(started_) << "Resume without Start";
  // Resuming a live driver would double-arm open-loop arrival clocks and
  // reset slot accounting under in-flight transactions.
  CHILLER_CHECK(stopped_) << "Resume without Quiesce";
  stopped_ = false;
  for (EngineId e = 0; e < cluster_->num_engines(); ++e) {
    model_->StartEngine(e);
  }
}

void Driver::SetCommitObserver(CommitObserver observer) {
  observer_ = std::move(observer);
}

void Driver::ResetStats() {
  for (auto& cs : stats_.classes) {
    ClassStats fresh;
    fresh.name = cs.name;
    cs = std::move(fresh);
  }
  stats_.admitted = 0;
  stats_.shed = 0;
  stats_.queue_delay.Reset();
}

RunStats Driver::Run(SimTime warmup, SimTime measure) {
  Start();
  Advance(warmup);
  ResetStats();
  measuring_ = true;
  Advance(measure);
  measuring_ = false;
  stats_.window = measure;
  return stats_;
}

}  // namespace chiller::cc
