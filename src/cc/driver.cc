#include "cc/driver.h"

#include <utility>

#include "cc/cluster.h"
#include "cc/exec_common.h"
#include "cc/load_model.h"
#include "common/logging.h"

namespace chiller::cc {

Driver::Driver(Cluster* cluster, Protocol* protocol, WorkloadSource* source,
               uint32_t concurrent_per_engine, uint64_t seed)
    : Driver(cluster, protocol, source,
             std::make_unique<ClosedLoop>(concurrent_per_engine), seed) {}

Driver::Driver(Cluster* cluster, Protocol* protocol, WorkloadSource* source,
               std::unique_ptr<LoadModel> model, uint64_t seed)
    : cluster_(cluster),
      protocol_(protocol),
      source_(source),
      model_(std::move(model)),
      per_engine_(cluster->num_engines()) {
  CHILLER_CHECK(model_ != nullptr);
  for (uint32_t e = 0; e < per_engine_.size(); ++e) {
    per_engine_[e].rng.Seed(seed + 0x9e3779b97f4a7c15ULL * (e + 1));
  }
  obs::MetricsRegistry* reg = cluster_->metrics();
  m_commits_ = reg->GetCounter("driver.commits");
  m_latency_ns_ = reg->GetCounter("driver.commit_latency_ns");
  m_migration_aborts_ = reg->GetCounter("driver.aborts.migration");
  m_contention_aborts_ = reg->GetCounter("driver.aborts.contention");
  m_fallback_aborts_ = reg->GetCounter("driver.aborts.fallback");
  m_user_aborts_ = reg->GetCounter("driver.aborts.user");
  m_shed_ = reg->GetCounter("admission.shed");
  m_window_latency_ = reg->GetHistogram("driver.commit_latency_window");
  model_->Bind(this);
  open_loop_ = model_->UsesAdmissionQueue();
}

Driver::~Driver() = default;

void Driver::set_scheduler(schedule::Scheduler* scheduler) {
  CHILLER_CHECK(!started_) << "install the scheduler before Start()";
  scheduler_ = scheduler;
}

void Driver::LaunchFresh(EngineId e, SimTime admission_delay) {
  std::shared_ptr<txn::Transaction> t = source_->Next(e, rng(e));
  t->admission_delay = admission_delay;
  Launch(e, std::move(t));
}

std::shared_ptr<txn::Transaction> Driver::Draw(EngineId e) {
  std::shared_ptr<txn::Transaction> t = source_->Next(e, rng(e));
  if (t->accesses.empty()) t->InitAccesses();
  t->ResolveReadyKeys();
  // Identity is assigned at draw time, before classification, so the
  // scheduler's classify/route decisions are traceable too.
  AssignIdentity(e, t.get());
  return t;
}

void Driver::AssignIdentity(EngineId e, txn::Transaction* t) {
  if (t->logical_id != 0) return;
  EngineState& es = per_engine_[e];
  // Same striping as attempt ids: engine e issues e+1, e+1+E, e+1+2E, ...
  t->logical_id = es.next_logical * per_engine_.size() + e + 1;
  ++es.next_logical;
  t->traced = cluster_->trace()->Sampled(t->logical_id);
}

void Driver::LaunchRouted(EngineId e, std::shared_ptr<txn::Transaction> t,
                          SimTime admission_delay) {
  t->admission_delay = admission_delay;
  Launch(e, std::move(t));
}

void Driver::Launch(EngineId e, std::shared_ptr<txn::Transaction> t) {
  EngineState& es = per_engine_[e];
  // Globally unique and engine-local deterministic: engine e issues ids
  // e+1, e+1+E, e+1+2E, ... regardless of how engines interleave.
  t->id = es.next_local * per_engine_.size() + e + 1;
  ++es.next_local;
  AssignIdentity(e, t.get());
  t->home = e;
  t->outcome = txn::Outcome::kPending;
  t->start_time = cluster_->sim()->now();
  if (t->accesses.empty()) t->InitAccesses();
  protocol_->Execute(t, [this, e, t]() { OnDone(e, t); });
}

std::shared_ptr<txn::Transaction> Driver::RebuildForRetry(
    const txn::Transaction& t) {
  std::shared_ptr<txn::Transaction> retry = source_->Rebuild(t);
  retry->attempt = t.attempt + 1;
  retry->admission_delay = t.admission_delay;
  // A co-location violation is a property of the logical transaction under
  // the live layout, not of the attempt: replanning the same inner region
  // would abort identically forever.
  retry->force_fallback = t.force_fallback;
  // The retry keeps its predicted conflict class: class-serialized
  // admission holds the class until the logical transaction settles.
  retry->sched_class = t.sched_class;
  // Retries are the same logical transaction: same id, same trace sample.
  retry->logical_id = t.logical_id;
  retry->traced = t.traced;
  return retry;
}

void Driver::NoteAdmitted(EngineId e) {
  if (measuring_) ++per_engine_[e].stats.admitted;
}

void Driver::NoteShed(EngineId e) {
  m_shed_->Add(e);  // lifetime, independent of the measuring toggle
  if (measuring_) ++per_engine_[e].stats.shed;
}

void Driver::NoteQueueDelay(EngineId e, SimTime delay) {
  if (measuring_) per_engine_[e].stats.queue_delay.Add(delay);
}

void Driver::NoteShedEvicted(EngineId e, bool counted_admitted) {
  m_shed_->Add(e);  // lifetime, independent of the measuring toggle
  EngineState& es = per_engine_[e];
  // The admission is taken back only if this window counted it (the entry
  // records that at enqueue time); the underflow guard covers an entry
  // counted before a ResetStats() that its flag cannot see.
  if (counted_admitted && es.stats.admitted > 0) --es.stats.admitted;
  if (measuring_) ++es.stats.shed;
}

void Driver::OnDone(EngineId e, const std::shared_ptr<txn::Transaction>& t) {
  if (observer_ && t->outcome == txn::Outcome::kCommitted) observer_(*t);
  EngineState& es = per_engine_[e];
  // The abort-reason taxonomy shared by the trace and the abort-class
  // counters; null for commits.
  const char* abort_reason = nullptr;
  switch (t->outcome) {
    case txn::Outcome::kCommitted:
      break;
    case txn::Outcome::kAbortConflict:
      abort_reason = t->blocked_by_migration ? "migration"
                     : t->force_fallback     ? "co-location-fallback"
                                             : "contention";
      break;
    case txn::Outcome::kAbortUser:
      abort_reason = "user";
      break;
    case txn::Outcome::kPending:
      break;
  }
  if (t->traced) {
    obs::TraceRecorder* trace = cluster_->trace();
    // The admission wait precedes the first attempt; later attempts start
    // at their own launch, so the wait renders exactly once.
    if (t->attempt == 0 && t->admission_delay > 0 &&
        t->start_time >= t->admission_delay) {
      trace->Span(e, t->start_time - t->admission_delay, t->start_time,
                  "queue_wait", t->logical_id, t->attempt);
    }
    trace->Span(e, t->start_time, t->end_time, "attempt", t->logical_id,
                t->attempt, abort_reason);
    if (t->blocked_by_migration) {
      trace->Instant(e, t->end_time, "migration_block", t->logical_id,
                     t->attempt, "migration");
    }
    trace->Instant(e, t->end_time,
                   t->outcome == txn::Outcome::kCommitted ? "commit" : "abort",
                   t->logical_id, t->attempt, abort_reason);
  }
  // Lifetime metrics run regardless of the measuring toggle: timeline
  // consumers (runner::AdaptiveReport slices, the live-migration bench)
  // need commit flow visible across warmup and migration windows too.
  switch (t->outcome) {
    case txn::Outcome::kCommitted:
      m_commits_->Add(e);
      m_latency_ns_->Add(e, t->end_time - t->start_time);
      m_window_latency_->Add(e, t->end_time - t->start_time);
      break;
    case txn::Outcome::kAbortConflict:
      if (t->blocked_by_migration) {
        m_migration_aborts_->Add(e);
      } else if (t->force_fallback) {
        m_fallback_aborts_->Add(e);
      } else {
        m_contention_aborts_->Add(e);
      }
      break;
    case txn::Outcome::kAbortUser:
      m_user_aborts_->Add(e);
      break;
    case txn::Outcome::kPending:
      break;
  }
  if (measuring_) {
    es.stats.EnsureClass(t->txn_class, source_->ClassName(t->txn_class));
    ClassStats& cs = es.stats.classes[t->txn_class];
    switch (t->outcome) {
      case txn::Outcome::kCommitted:
        ++cs.commits;
        if (exec::IsDistributed(*t)) ++cs.distributed_commits;
        cs.latency.Add(t->end_time - t->start_time);
        break;
      case txn::Outcome::kAbortConflict:
        if (t->blocked_by_migration) {
          ++cs.migration_aborts;
        } else {
          ++cs.conflict_aborts;
        }
        break;
      case txn::Outcome::kAbortUser:
        ++cs.user_aborts;
        break;
      case txn::Outcome::kPending:
        CHILLER_CHECK(false) << "protocol finished with pending outcome";
    }
  }

  if (stopped_) return;
  model_->OnSlotFree(e, *t);
}

const RunStats& Driver::stats() const {
  merged_ = RunStats();
  merged_.window = window_;
  merged_.open_loop = open_loop_;
  for (uint32_t c = 0; c < source_->NumClasses(); ++c) {
    merged_.EnsureClass(c, source_->ClassName(c));
  }
  for (const EngineState& es : per_engine_) {
    for (size_t c = 0; c < es.stats.classes.size(); ++c) {
      const ClassStats& cs = es.stats.classes[c];
      merged_.EnsureClass(static_cast<uint32_t>(c), cs.name);
      ClassStats& m = merged_.classes[c];
      m.commits += cs.commits;
      m.conflict_aborts += cs.conflict_aborts;
      m.user_aborts += cs.user_aborts;
      m.migration_aborts += cs.migration_aborts;
      m.distributed_commits += cs.distributed_commits;
      m.latency.Merge(cs.latency);
    }
    merged_.admitted += es.stats.admitted;
    merged_.shed += es.stats.shed;
    merged_.queue_delay.Merge(es.stats.queue_delay);
  }
  return merged_;
}

uint64_t Driver::lifetime_commits() const { return m_commits_->Sum(); }

uint64_t Driver::lifetime_latency_ns() const { return m_latency_ns_->Sum(); }

uint64_t Driver::lifetime_migration_aborts() const {
  return m_migration_aborts_->Sum();
}

Histogram Driver::TakeCommitLatencyWindow() {
  return m_window_latency_->TakeMerged();
}

void Driver::Start() {
  CHILLER_CHECK(!stopped_) << "driver is quiesced; use Resume()";
  if (started_) return;
  started_ = true;
  for (EngineId e = 0; e < cluster_->num_engines(); ++e) {
    model_->StartEngine(e);
  }
}

void Driver::Advance(SimTime duration) {
  cluster_->sim()->RunUntil(cluster_->sim()->now() + duration);
}

void Driver::Quiesce() {
  stopped_ = true;
  cluster_->sim()->Run();
}

void Driver::Resume() {
  CHILLER_CHECK(started_) << "Resume without Start";
  // Resuming a live driver would double-arm open-loop arrival clocks and
  // reset slot accounting under in-flight transactions.
  CHILLER_CHECK(stopped_) << "Resume without Quiesce";
  stopped_ = false;
  for (EngineId e = 0; e < cluster_->num_engines(); ++e) {
    model_->StartEngine(e);
  }
}

void Driver::SetCommitObserver(CommitObserver observer) {
  observer_ = std::move(observer);
}

void Driver::ResetStats() {
  for (EngineState& es : per_engine_) {
    es.stats = RunStats();
  }
}

RunStats Driver::Run(SimTime warmup, SimTime measure) {
  Start();
  Advance(warmup);
  ResetStats();
  measuring_ = true;
  Advance(measure);
  measuring_ = false;
  window_ = measure;
  return stats();
}

}  // namespace chiller::cc
