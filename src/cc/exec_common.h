// Shared execution primitives used by 2PL, OCC and Chiller's two-region
// protocol: NO_WAIT lock acquisition + record fetch (local or via one-sided
// RDMA), buffered-write apply + unlock, and abort release.
#ifndef CHILLER_CC_EXEC_COMMON_H_
#define CHILLER_CC_EXEC_COMMON_H_

#include <functional>
#include <map>
#include <vector>

#include "cc/cluster.h"
#include "cc/engine.h"
#include "cc/replication.h"
#include "partition/lookup_table.h"
#include "txn/transaction.h"

namespace chiller::cc::exec {

/// Dependencies threaded through the helpers.
struct Deps {
  Cluster* cluster;
  const partition::RecordPartitioner* partitioner;
};

/// Placement of op `i`'s record: the partitioner's placement, or the
/// coordinator's own partition for fully-replicated read-only tables.
PartitionId ResolvePartition(const Deps& d, const txn::Transaction& t,
                             size_t i);

/// Acquires the NO_WAIT lock for op `i` and fetches its record image into
/// the access's buffered copy, acting from `eng` (a local store access when
/// the record's partition equals eng->id(), a one-sided CAS+READ otherwise).
///
/// Requires: guard already evaluated, key resolved, access partition set.
/// Handles repeated access to a record the transaction already locked
/// (alias): the earlier holder's buffered copy is reused, which provides
/// read-own-writes. The first access must have requested the strongest
/// lock mode (paper Figure 4's read_with_wl) — checked.
///
/// `apply_inline`: run the op's on_apply immediately after the fetch (all
/// protocols except deferred outer-phase-2 ops in Chiller).
/// `cb(ok)`: ok=false means NO_WAIT conflict; the lock was not acquired.
void LockAndFetch(const Deps& d, txn::Transaction* t, size_t i, Engine* eng,
                  bool apply_inline, std::function<void(bool)> cb);

/// OCC execution-phase read: fetches the record image and its version stamp
/// without taking any lock.
void FetchVersioned(const Deps& d, txn::Transaction* t, size_t i, Engine* eng,
                    std::function<void()> cb);

/// OCC validation: exclusively locks op `i`'s bucket and verifies the
/// version still matches the execution-phase observation. cb(ok).
void ValidateLockWrite(const Deps& d, txn::Transaction* t, size_t i,
                       Engine* eng, std::function<void(bool)> cb);

/// OCC read validation: verifies version unchanged and not write-locked.
void ValidateRead(const Deps& d, txn::Transaction* t, size_t i, Engine* eng,
                  std::function<void(bool)> cb);

/// Applies buffered effects and releases locks for the lock-holding
/// accesses in `indices`; cb() after every completion (local and remote)
/// lands. Locks of read-only holders are released without a version bump.
void ApplyAndUnlock(const Deps& d, txn::Transaction* t,
                    const std::vector<size_t>& indices, Engine* eng,
                    std::function<void()> cb);

/// Releases locks without applying anything (abort path).
void Release(const Deps& d, txn::Transaction* t,
             const std::vector<size_t>& indices, Engine* eng,
             std::function<void()> cb);

/// Indices of accesses currently holding locks.
std::vector<size_t> HeldIndices(const txn::Transaction& t);

/// Replication payloads for the written holders among `indices`, grouped by
/// partition.
std::map<PartitionId, std::vector<ReplUpdate>> CollectWrites(
    const txn::Transaction& t, const std::vector<size_t>& indices);

/// True if the committed transaction touched more than one partition.
bool IsDistributed(const txn::Transaction& t);

/// Runs the deferred on_apply closures of Chiller's outer phase 2 against
/// the buffered copies (CPU cost is charged by the caller).
void ApplyDeferred(txn::Transaction* t, const std::vector<int>& deferred);

}  // namespace chiller::cc::exec

#endif  // CHILLER_CC_EXEC_COMMON_H_
