#include "cc/exec_common.h"

#include <algorithm>
#include <functional>
#include <memory>
#include <set>
#include <utility>

#include "common/logging.h"
#include "net/rdma.h"

namespace chiller::cc::exec {

namespace {

using storage::LockMode;
using txn::Access;
using txn::OpType;
using txn::Operation;
using txn::Transaction;

// Wire-size estimates for the latency model.
constexpr size_t kLockReadReq = 48;
constexpr size_t kLockRespBase = 16;
constexpr size_t kWriteUnlockRespBase = 16;

/// Finds an earlier access of `t` that holds the lock on the same record.
int FindHolder(const Transaction& t, size_t i) {
  const Access& acc = t.accesses[i];
  for (size_t j = 0; j < i; ++j) {
    const Access& prev = t.accesses[j];
    if (prev.lock_held && prev.key_resolved && prev.rid == acc.rid) {
      return static_cast<int>(j);
    }
  }
  return -1;
}

/// Finds an earlier lock-holding access whose key lives in the same bucket
/// as op `i`'s (different key, same lock granule). Without this, a hash
/// collision inside one transaction self-deadlocks under NO_WAIT and the
/// deterministic retry loops forever.
int FindBucketHolder(storage::PartitionStore* store, const Transaction& t,
                     size_t i) {
  const Access& acc = t.accesses[i];
  storage::Table* table = store->table(acc.rid.table);
  const size_t bucket = table->BucketIndex(acc.rid.key);
  for (size_t j = 0; j < i; ++j) {
    const Access& prev = t.accesses[j];
    if (prev.lock_held && prev.key_resolved &&
        prev.partition == acc.partition && prev.rid.table == acc.rid.table &&
        table->BucketIndex(prev.rid.key) == bucket) {
      return static_cast<int>(j);
    }
  }
  return -1;
}

/// Runs on_read / on_apply for op `i` against the holder's buffered copy.
void RunClosures(Transaction* t, size_t i, bool apply_inline) {
  const Operation& op = t->ops[i];
  Access& acc = t->accesses[i];
  Access& holder =
      acc.alias_of >= 0 ? t->accesses[static_cast<size_t>(acc.alias_of)] : acc;
  if (op.type == OpType::kInsert) {
    holder.local_copy = op.make_record(t->ctx);
    holder.wrote = true;
    acc.applied = true;
  } else {
    CHILLER_CHECK(!op.on_read || holder.local_copy.num_fields() > 0)
        << "op " << i << " table " << op.table << " key " << acc.rid.key
        << " alias " << acc.alias_of << " reads empty record image";
    if (op.on_read) op.on_read(t->ctx, holder.local_copy);
    if (op.type == OpType::kUpdate && apply_inline) {
      if (op.on_apply) op.on_apply(t->ctx, &holder.local_copy);
      holder.wrote = true;
      acc.applied = true;
    } else if (op.type == OpType::kErase) {
      holder.wrote = true;
      acc.applied = true;
    }
  }
  acc.fetched = true;
}

/// Applies the pending deferred write of op `i` (Chiller outer phase 2).
/// Any write kind can be deferred: under layouts where outer writes
/// v-depend on inner results (common once online relayout rehomes
/// records), inserts rebuild their record now that those results are in
/// the context, and erases just confirm their buffered tombstone.
void ApplyDeferredClosure(Transaction* t, size_t i) {
  const Operation& op = t->ops[i];
  Access& acc = t->accesses[i];
  Access& holder =
      acc.alias_of >= 0 ? t->accesses[static_cast<size_t>(acc.alias_of)] : acc;
  if (op.type == OpType::kInsert) {
    holder.local_copy = op.make_record(t->ctx);
  } else if (op.type != OpType::kErase) {
    CHILLER_CHECK(op.type == OpType::kUpdate);
    if (op.on_apply) op.on_apply(t->ctx, &holder.local_copy);
  }
  holder.wrote = true;
  acc.applied = true;
}

storage::PartitionStore* StoreOf(const Deps& d, PartitionId p) {
  return d.cluster->primary(p);
}

/// Store-side live-migration gate, run before any lock/fetch attempt on op
/// `i`: the access must abort its attempt (a) while the record's relayout
/// bucket is in flight (the move would race the lock), or (b) when a
/// completed per-bucket flip re-homed the record between key resolution
/// and this access landing (routing is stale; a retry re-resolves against
/// the flipped layout). ever_active() gates the whole check off for the
/// common case of a cluster that never live-migrates, so legacy runs stay
/// byte-identical and pay nothing.
bool MigrationBlocked(const Deps& d, Transaction* t, size_t i) {
  const migrate::BucketLockTable& locks = *d.cluster->bucket_locks();
  if (!locks.ever_active()) return false;
  const Access& acc = t->accesses[i];
  if (locks.IsMigrating(acc.rid)) {
    t->blocked_by_migration = true;
    return true;
  }
  if (locks.HasFrozenStorageBuckets()) {
    // Drain escalation (see BucketLockTable): a stubborn batch froze the
    // storage buckets it needs, which also blocks colliding keys from
    // *other* relayout buckets.
    storage::Table* table =
        d.cluster->primary(acc.partition)->table(acc.rid.table);
    if (locks.IsStorageBucketFrozen({acc.partition, acc.rid.table,
                                     table->BucketIndex(acc.rid.key)})) {
      t->blocked_by_migration = true;
      return true;
    }
  }
  if (!t->ops[i].access_local_replica &&
      d.partitioner->PartitionOf(acc.rid) != acc.partition) {
    t->blocked_by_migration = true;
    return true;
  }
  return false;
}

/// Applies one holder access's effect to the primary store and unlocks.
void ApplyOneAtStore(storage::PartitionStore* store, const Operation& op,
                     Access* acc) {
  if (acc->wrote) {
    if (op.type == OpType::kInsert) {
      CHILLER_CHECK(store->Insert(acc->rid, acc->local_copy).ok())
          << "insert conflict on " << acc->rid.ToString();
    } else if (op.type == OpType::kErase) {
      CHILLER_CHECK(store->Erase(acc->rid).ok());
    } else {
      storage::Record* rec = store->Find(acc->rid);
      CHILLER_CHECK(rec != nullptr);
      *rec = acc->local_copy;
    }
    store->Unlock(acc->rid, LockMode::kExclusive, /*modified=*/true);
  } else {
    store->Unlock(acc->rid, op.mode, /*modified=*/false);
  }
  acc->lock_held = false;
}

/// Applies a piggybacked write under the bucket holder's lock (no unlock).
void ApplyPiggybackAtStore(storage::PartitionStore* store,
                           const Operation& op, Access* acc) {
  if (!acc->wrote) return;
  if (op.type == OpType::kInsert) {
    CHILLER_CHECK(store->Insert(acc->rid, acc->local_copy).ok())
        << "insert conflict on " << acc->rid.ToString();
  } else if (op.type == OpType::kErase) {
    CHILLER_CHECK(store->Erase(acc->rid).ok());
  } else {
    storage::Record* rec = store->Find(acc->rid);
    CHILLER_CHECK(rec != nullptr);
    *rec = acc->local_copy;
  }
}

void ReleaseOneAtStore(storage::PartitionStore* store, const Operation& op,
                       Access* acc) {
  const LockMode mode =
      op.mode;  // the mode actually taken (writes always exclusive)
  store->Unlock(acc->rid, mode, /*modified=*/false);
  acc->lock_held = false;
}

}  // namespace

PartitionId ResolvePartition(const Deps& d, const Transaction& t, size_t i) {
  if (t.ops[i].access_local_replica) {
    CHILLER_CHECK(!t.ops[i].IsWrite())
        << "replicated tables are read-only (op " << i << ")";
    return t.home;
  }
  return d.partitioner->PartitionOf(t.accesses[i].rid);
}

void LockAndFetch(const Deps& d, Transaction* t, size_t i, Engine* eng,
                  bool apply_inline, std::function<void(bool)> cb) {
  const Operation& op = t->ops[i];
  Access& acc = t->accesses[i];
  CHILLER_CHECK(acc.key_resolved && acc.partition != kInvalidPartition);
  const ExecCosts& costs = d.cluster->costs();

  // Repeated access to a record this transaction already locked.
  const int holder = FindHolder(*t, i);
  if (holder >= 0) {
    const txn::Access& held = t->accesses[static_cast<size_t>(holder)];
    if (held.missing) {
      // The holder probed an absent record: this access misses too.
      CHILLER_CHECK(op.may_be_missing)
          << "op " << i << " aliases a missing record";
      if (op.skip_group >= 0) t->dead_groups.insert(op.skip_group);
      acc.alias_of = holder;
      acc.missing = true;
      acc.fetched = true;
      cb(true);
      return;
    }
    const Operation& holder_op = t->ops[static_cast<size_t>(holder)];
    if (op.IsWrite() || op.mode == LockMode::kExclusive) {
      CHILLER_CHECK(holder_op.mode == LockMode::kExclusive)
          << "lock upgrade not supported: first access must take the "
             "strongest mode (Figure 4 read_with_wl)";
    }
    acc.alias_of = holder;
    RunClosures(t, i, apply_inline);
    cb(true);
    return;
  }

  if (acc.partition == eng->id()) {
    // Local access on this engine's own partition.
    eng->cpu()->Submit(costs.op_local, [d, t, i, apply_inline,
                                        cb = std::move(cb)]() {
      const Operation& op = t->ops[i];
      Access& acc = t->accesses[i];
      if (MigrationBlocked(d, t, i)) {
        cb(false);
        return;
      }
      storage::PartitionStore* store = StoreOf(d, acc.partition);
      const int bucket_holder = FindBucketHolder(store, *t, i);
      if (bucket_holder >= 0) {
        const Operation& holder_op =
            t->ops[static_cast<size_t>(bucket_holder)];
        CHILLER_CHECK(!op.IsWrite() ||
                      holder_op.mode == LockMode::kExclusive)
            << "bucket lock upgrade within a transaction";
        acc.bucket_piggyback = true;
      } else if (!store->TryLock(acc.rid, op.mode).ok()) {
        cb(false);
        return;
      } else {
        acc.lock_held = true;
      }
      if (op.type != OpType::kInsert) {
        storage::Record* rec = store->Find(acc.rid);
        if (rec == nullptr) {
          CHILLER_CHECK(op.may_be_missing)
              << "missing record " << acc.rid.ToString();
          if (op.skip_group >= 0) t->dead_groups.insert(op.skip_group);
          acc.missing = true;
          acc.fetched = true;
          cb(true);
          return;
        }
        acc.local_copy = *rec;
      }
      RunClosures(t, i, apply_inline);
      cb(true);
    });
    return;
  }

  // Remote: one-sided CAS on the bucket lock word + READ of the record,
  // modeled as a single combined round trip (doorbell batching).
  struct RemoteResult {
    bool ok = false;
    bool missing = false;
    bool piggyback = false;
    storage::Record image;
  };
  auto res = std::make_shared<RemoteResult>();
  const NodeId src = d.cluster->topology().NodeOfEngine(eng->id());
  const NodeId dst = d.cluster->topology().NodeOfPartition(acc.partition);
  const size_t resp_bytes =
      kLockRespBase + (op.type == OpType::kInsert ? 0 : 128);
  d.cluster->rdma()->OneSided(
      src, dst, kLockReadReq, resp_bytes,
      /*remote_op=*/
      [d, t, i, res]() {
        const Operation& op = t->ops[i];
        Access& acc = t->accesses[i];
        if (MigrationBlocked(d, t, i)) return;  // res->ok stays false
        storage::PartitionStore* store = StoreOf(d, acc.partition);
        const int bucket_holder = FindBucketHolder(store, *t, i);
        if (bucket_holder >= 0) {
          const Operation& holder_op =
              t->ops[static_cast<size_t>(bucket_holder)];
          CHILLER_CHECK(!op.IsWrite() ||
                        holder_op.mode == LockMode::kExclusive)
              << "bucket lock upgrade within a transaction";
          res->piggyback = true;
        } else if (!store->TryLock(acc.rid, op.mode).ok()) {
          return;
        }
        res->ok = true;
        if (op.type != OpType::kInsert) {
          storage::Record* rec = store->Find(acc.rid);
          if (rec == nullptr) {
            CHILLER_CHECK(op.may_be_missing)
                << "missing record " << acc.rid.ToString();
            res->missing = true;
          } else {
            res->image = *rec;
          }
        }
      },
      /*completion=*/
      [d, t, i, eng, apply_inline, res, cb = std::move(cb)]() {
        eng->cpu()->Submit(
            d.cluster->costs().op_logic,
            [t, i, apply_inline, res, cb = std::move(cb)]() {
              const Operation& op = t->ops[i];
              Access& acc = t->accesses[i];
              if (!res->ok) {
                cb(false);
                return;
              }
              if (res->piggyback) {
                acc.bucket_piggyback = true;
              } else {
                acc.lock_held = true;
              }
              if (res->missing) {
                if (op.skip_group >= 0) {
                  t->dead_groups.insert(op.skip_group);
                }
                acc.missing = true;
                acc.fetched = true;
                cb(true);
                return;
              }
              acc.local_copy = std::move(res->image);
              RunClosures(t, i, apply_inline);
              cb(true);
            });
      },
      eng->cpu());
}

void FetchVersioned(const Deps& d, Transaction* t, size_t i, Engine* eng,
                    std::function<void()> cb) {
  Access& acc = t->accesses[i];
  CHILLER_CHECK(acc.key_resolved && acc.partition != kInvalidPartition);
  const ExecCosts& costs = d.cluster->costs();

  // OCC has no locks during execution; alias on a prior fetch of the same
  // record for read-own-writes.
  for (size_t j = 0; j < i; ++j) {
    if (t->accesses[j].fetched && t->accesses[j].alias_of < 0 &&
        t->accesses[j].key_resolved && t->accesses[j].rid == acc.rid) {
      acc.alias_of = static_cast<int>(j);
      if (t->accesses[j].missing) {
        CHILLER_CHECK(t->ops[i].may_be_missing)
            << "op " << i << " aliases a missing record";
        if (t->ops[i].skip_group >= 0) {
          t->dead_groups.insert(t->ops[i].skip_group);
        }
        acc.missing = true;
        acc.fetched = true;
        cb();
        return;
      }
      RunClosures(t, i, /*apply_inline=*/true);
      cb();
      return;
    }
  }

  if (acc.partition == eng->id()) {
    eng->cpu()->Submit(costs.op_local, [d, t, i, cb = std::move(cb)]() {
      const Operation& op = t->ops[i];
      Access& acc = t->accesses[i];
      // Lockless OCC reads must still respect the migration gate: the
      // caller (occ.cc) aborts the attempt when the flag is set.
      if (MigrationBlocked(d, t, i)) {
        cb();
        return;
      }
      storage::PartitionStore* store = StoreOf(d, acc.partition);
      acc.observed_version = store->VersionOf(acc.rid);
      if (op.type != OpType::kInsert) {
        storage::Record* rec = store->Find(acc.rid);
        if (rec == nullptr) {
          CHILLER_CHECK(op.may_be_missing)
              << "missing record " << acc.rid.ToString();
          if (op.skip_group >= 0) t->dead_groups.insert(op.skip_group);
          acc.missing = true;
          acc.fetched = true;
          cb();
          return;
        }
        acc.local_copy = *rec;
      }
      RunClosures(t, i, /*apply_inline=*/true);
      cb();
    });
    return;
  }

  struct RemoteResult {
    uint64_t version = 0;
    storage::Record image;
    bool has_image = false;
    bool missing = false;
    bool blocked = false;
  };
  auto res = std::make_shared<RemoteResult>();
  const NodeId src = d.cluster->topology().NodeOfEngine(eng->id());
  const NodeId dst = d.cluster->topology().NodeOfPartition(acc.partition);
  d.cluster->rdma()->OneSided(
      src, dst, 32, kLockRespBase + 128,
      [d, t, i, res]() {
        const Operation& op = t->ops[i];
        Access& acc = t->accesses[i];
        if (MigrationBlocked(d, t, i)) {
          res->blocked = true;
          return;
        }
        storage::PartitionStore* store = StoreOf(d, acc.partition);
        res->version = store->VersionOf(acc.rid);
        if (op.type != OpType::kInsert) {
          storage::Record* rec = store->Find(acc.rid);
          if (rec == nullptr) {
            CHILLER_CHECK(op.may_be_missing)
                << "missing record " << acc.rid.ToString();
            res->missing = true;
          } else {
            res->image = *rec;
            res->has_image = true;
          }
        }
      },
      [d, t, i, eng, res, cb = std::move(cb)]() {
        eng->cpu()->Submit(d.cluster->costs().op_logic,
                           [t, i, res, cb = std::move(cb)]() {
                             const Operation& op = t->ops[i];
                             Access& acc = t->accesses[i];
                             if (res->blocked) {
                               cb();
                               return;
                             }
                             acc.observed_version = res->version;
                             if (res->missing) {
                               if (op.skip_group >= 0) {
                                 t->dead_groups.insert(op.skip_group);
                               }
                               acc.missing = true;
                               acc.fetched = true;
                               cb();
                               return;
                             }
                             if (res->has_image) {
                               acc.local_copy = std::move(res->image);
                             }
                             RunClosures(t, i, /*apply_inline=*/true);
                             cb();
                           });
      },
      eng->cpu());
}

void ValidateLockWrite(const Deps& d, Transaction* t, size_t i, Engine* eng,
                       std::function<void(bool)> cb) {
  Access& acc = t->accesses[i];
  CHILLER_CHECK(acc.alias_of < 0);
  auto attempt = [d, t, i](storage::PartitionStore* store) -> bool {
    Access& acc = t->accesses[i];
    if (MigrationBlocked(d, t, i)) return false;
    if (store->VersionOf(acc.rid) != acc.observed_version) return false;
    if (FindBucketHolder(store, *t, i) >= 0) {
      // The bucket is validation-locked by an earlier write of this
      // transaction: the version check above suffices.
      acc.bucket_piggyback = true;
      return true;
    }
    if (!store->TryLock(acc.rid, LockMode::kExclusive).ok()) return false;
    acc.lock_held = true;
    return true;
  };
  if (acc.partition == eng->id()) {
    eng->cpu()->Submit(d.cluster->costs().op_local,
                       [d, i, t, attempt, cb = std::move(cb)]() {
                         cb(attempt(StoreOf(d, t->accesses[i].partition)));
                       });
    return;
  }
  auto ok = std::make_shared<bool>(false);
  const NodeId src = d.cluster->topology().NodeOfEngine(eng->id());
  const NodeId dst = d.cluster->topology().NodeOfPartition(acc.partition);
  d.cluster->rdma()->OneSided(
      src, dst, kLockReadReq, kLockRespBase,
      [d, t, i, attempt, ok]() {
        *ok = attempt(StoreOf(d, t->accesses[i].partition));
      },
      [eng, d, ok, cb = std::move(cb)]() {
        eng->cpu()->Submit(d.cluster->costs().op_logic,
                           [ok, cb = std::move(cb)]() { cb(*ok); });
      },
      eng->cpu());
}

void ValidateRead(const Deps& d, Transaction* t, size_t i, Engine* eng,
                  std::function<void(bool)> cb) {
  Access& acc = t->accesses[i];
  CHILLER_CHECK(acc.alias_of < 0);
  auto check = [d, t, i]() -> bool {
    Access& acc = t->accesses[i];
    if (MigrationBlocked(d, t, i)) return false;
    storage::PartitionStore* store = StoreOf(d, acc.partition);
    // Version must match and no concurrent writer may hold the bucket —
    // our own validation lock on a colliding key does not count.
    storage::Table* table = store->table(acc.rid.table);
    const uint64_t w = table->BucketFor(acc.rid.key)->lock_word();
    if (storage::LockWord::Version(w) != acc.observed_version) return false;
    if (!storage::LockWord::IsExclusive(w)) return true;
    return FindBucketHolder(store, *t, i) >= 0;
  };
  if (acc.partition == eng->id()) {
    eng->cpu()->Submit(
        d.cluster->costs().op_local,
        [check, cb = std::move(cb)]() { cb(check()); });
    return;
  }
  auto ok = std::make_shared<bool>(false);
  const NodeId src = d.cluster->topology().NodeOfEngine(eng->id());
  const NodeId dst = d.cluster->topology().NodeOfPartition(acc.partition);
  d.cluster->rdma()->OneSided(
      src, dst, 32, kLockRespBase, [check, ok]() { *ok = check(); },
      [eng, d, ok, cb = std::move(cb)]() {
        eng->cpu()->Submit(d.cluster->costs().op_logic,
                           [ok, cb = std::move(cb)]() { cb(*ok); });
      },
      eng->cpu());
}

std::vector<size_t> HeldIndices(const Transaction& t) {
  std::vector<size_t> held;
  for (size_t i = 0; i < t.accesses.size(); ++i) {
    if (t.accesses[i].lock_held || t.accesses[i].bucket_piggyback) {
      held.push_back(i);
    }
  }
  return held;
}

namespace {

/// Shared fan-in: apply-or-release every index, local ones batched into one
/// CPU slice, remote ones as one one-sided WRITE each; cb when all settle.
void FinishLocks(const Deps& d, Transaction* t,
                 const std::vector<size_t>& indices, Engine* eng, bool apply,
                 std::function<void()> cb) {
  // Descending index order: a piggybacked write (which always has a higher
  // index than its bucket's lock holder) must land before the holder's
  // unlock — both locally and on the FIFO queue pair to the remote node.
  std::vector<size_t> ordered(indices.begin(), indices.end());
  std::sort(ordered.begin(), ordered.end(), std::greater<size_t>());
  std::vector<size_t> local, remote;
  for (size_t i : ordered) {
    Access& acc = t->accesses[i];
    if (acc.bucket_piggyback) {
      // No lock of its own; only a committed write needs applying.
      if (!apply || !acc.wrote) continue;
    } else {
      CHILLER_CHECK(acc.lock_held) << "op " << i << " does not hold its lock";
    }
    (acc.partition == eng->id() ? local : remote).push_back(i);
  }
  auto pending = std::make_shared<size_t>((local.empty() ? 0 : 1) +
                                          remote.size());
  if (*pending == 0) {
    cb();
    return;
  }
  auto shared_cb = std::make_shared<std::function<void()>>(std::move(cb));
  auto arrive = [pending, shared_cb]() {
    CHILLER_CHECK(*pending > 0);
    if (--*pending == 0) (*shared_cb)();
  };

  const ExecCosts& costs = d.cluster->costs();
  if (!local.empty()) {
    eng->cpu()->Submit(costs.op_commit * local.size(),
                       [d, t, local, apply, arrive]() {
                         for (size_t i : local) {
                           Access& acc = t->accesses[i];
                           storage::PartitionStore* store =
                               StoreOf(d, acc.partition);
                           if (acc.bucket_piggyback) {
                             ApplyPiggybackAtStore(store, t->ops[i], &acc);
                           } else if (apply) {
                             ApplyOneAtStore(store, t->ops[i], &acc);
                           } else {
                             ReleaseOneAtStore(store, t->ops[i], &acc);
                           }
                         }
                         arrive();
                       });
  }
  const NodeId src = d.cluster->topology().NodeOfEngine(eng->id());
  for (size_t i : remote) {
    Access& acc = t->accesses[i];
    const NodeId dst = d.cluster->topology().NodeOfPartition(acc.partition);
    const size_t req =
        32 + (apply && acc.wrote ? acc.local_copy.wire_bytes() : 0);
    d.cluster->rdma()->OneSided(
        src, dst, req, kWriteUnlockRespBase,
        [d, t, i, apply]() {
          Access& acc = t->accesses[i];
          storage::PartitionStore* store = StoreOf(d, acc.partition);
          if (acc.bucket_piggyback) {
            ApplyPiggybackAtStore(store, t->ops[i], &acc);
          } else if (apply) {
            ApplyOneAtStore(store, t->ops[i], &acc);
          } else {
            ReleaseOneAtStore(store, t->ops[i], &acc);
          }
        },
        [arrive]() { arrive(); }, eng->cpu());
  }
}

}  // namespace

void ApplyAndUnlock(const Deps& d, Transaction* t,
                    const std::vector<size_t>& indices, Engine* eng,
                    std::function<void()> cb) {
  FinishLocks(d, t, indices, eng, /*apply=*/true, std::move(cb));
}

void Release(const Deps& d, Transaction* t, const std::vector<size_t>& indices,
             Engine* eng, std::function<void()> cb) {
  FinishLocks(d, t, indices, eng, /*apply=*/false, std::move(cb));
}

std::map<PartitionId, std::vector<ReplUpdate>> CollectWrites(
    const Transaction& t, const std::vector<size_t>& indices) {
  std::map<PartitionId, std::vector<ReplUpdate>> by_partition;
  for (size_t i : indices) {
    const Access& acc = t.accesses[i];
    if (!acc.wrote) continue;
    ReplUpdate u;
    u.rid = acc.rid;
    if (t.ops[i].type == OpType::kErase) {
      u.kind = ReplUpdate::Kind::kErase;
    } else {
      u.kind = ReplUpdate::Kind::kPut;
      u.image = acc.local_copy;
    }
    by_partition[acc.partition].push_back(std::move(u));
  }
  return by_partition;
}

bool IsDistributed(const txn::Transaction& t) {
  std::set<PartitionId> parts;
  for (const Access& acc : t.accesses) {
    if (acc.key_resolved && acc.partition != kInvalidPartition) {
      parts.insert(acc.partition);
    }
  }
  return parts.size() > 1;
}

/// Applies Chiller's deferred outer-phase-2 closures (exposed for the
/// two-region runner; costs charged by the caller).
void ApplyDeferred(txn::Transaction* t, const std::vector<int>& deferred) {
  for (int i : deferred) ApplyDeferredClosure(t, static_cast<size_t>(i));
}

}  // namespace chiller::cc::exec
