// Concurrency-control protocol interface and run statistics.
#ifndef CHILLER_CC_PROTOCOL_H_
#define CHILLER_CC_PROTOCOL_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "cc/cluster.h"
#include "cc/replication.h"
#include "common/histogram.h"
#include "partition/lookup_table.h"
#include "txn/transaction.h"

namespace chiller::cc {

/// Counters for one transaction class (e.g. TPC-C NewOrder).
struct ClassStats {
  std::string name;
  uint64_t commits = 0;
  uint64_t conflict_aborts = 0;
  uint64_t user_aborts = 0;
  /// Attempts aborted because a live migration held the relayout bucket of
  /// a record they touched (src/migrate). Transient by construction — the
  /// retry lands after the bucket flips — so they are counted apart from
  /// real data conflicts and, like user aborts, excluded from AbortRate.
  uint64_t migration_aborts = 0;
  uint64_t distributed_commits = 0;
  Histogram latency;  ///< committed-attempt latency, ns

  uint64_t attempts() const {
    return commits + conflict_aborts + user_aborts + migration_aborts;
  }
  /// The paper's abort-rate metric: aborted attempts / all attempts
  /// (user and migration aborts are not data contention and are excluded
  /// from the numerator).
  double AbortRate() const {
    const uint64_t a = attempts();
    return a == 0 ? 0.0
                  : static_cast<double>(conflict_aborts) /
                        static_cast<double>(a);
  }
};

/// Aggregated statistics for a measurement window.
struct RunStats {
  std::vector<ClassStats> classes;
  SimTime window = 0;  ///< measurement window length, ns

  // Open-loop load-model accounting (see cc/load_model.h). All zero under
  // the closed-loop and batched models, which have no admission queue.
  /// True when the run was driven through an admission queue (the driver
  /// marks it from LoadModel::UsesAdmissionQueue); reports key the queue
  /// fields off this, not off the counters, so a window with no arrivals
  /// still carries them.
  bool open_loop = false;
  uint64_t admitted = 0;  ///< arrivals accepted (launched or queued)
  uint64_t shed = 0;      ///< arrivals dropped at a full admission queue
  /// Admission-queue wait of finished requests (committed or user-aborted;
  /// a conflict retry is still the same waiting request), ns — the
  /// queueing component of end-to-end latency, kept separate from the
  /// execution latency in ClassStats::latency.
  Histogram queue_delay;

  /// Fraction of offered arrivals dropped at the admission queue.
  double ShedRate() const {
    const uint64_t offered = admitted + shed;
    return offered == 0 ? 0.0
                        : static_cast<double>(shed) /
                              static_cast<double>(offered);
  }

  void EnsureClass(uint32_t cls, const std::string& name) {
    if (classes.size() <= cls) classes.resize(cls + 1);
    if (classes[cls].name.empty()) classes[cls].name = name;
  }

  /// Bounds-safe class lookup: null when the class never ran in the window
  /// (short measurement windows legitimately miss rare classes).
  const ClassStats* FindClass(uint32_t cls) const {
    return cls < classes.size() ? &classes[cls] : nullptr;
  }

  /// AbortRate of one class; 0 when the class never ran. The safe spelling
  /// of `stats.classes[cls].AbortRate()` for indices that may be absent.
  double ClassAbortRate(uint32_t cls) const {
    const ClassStats* s = FindClass(cls);
    return s == nullptr ? 0.0 : s->AbortRate();
  }

  uint64_t TotalCommits() const {
    uint64_t c = 0;
    for (const auto& s : classes) c += s.commits;
    return c;
  }
  uint64_t TotalConflictAborts() const {
    uint64_t c = 0;
    for (const auto& s : classes) c += s.conflict_aborts;
    return c;
  }
  uint64_t TotalMigrationAborts() const {
    uint64_t c = 0;
    for (const auto& s : classes) c += s.migration_aborts;
    return c;
  }
  uint64_t TotalAttempts() const {
    uint64_t c = 0;
    for (const auto& s : classes) c += s.attempts();
    return c;
  }
  uint64_t DistributedCommits() const {
    uint64_t c = 0;
    for (const auto& s : classes) c += s.distributed_commits;
    return c;
  }
  double AbortRate() const {
    const uint64_t a = TotalAttempts();
    return a == 0 ? 0.0
                  : static_cast<double>(TotalConflictAborts()) /
                        static_cast<double>(a);
  }
  double DistributedRatio() const {
    const uint64_t c = TotalCommits();
    return c == 0 ? 0.0
                  : static_cast<double>(DistributedCommits()) /
                        static_cast<double>(c);
  }
  /// Committed transactions per simulated second.
  double Throughput() const {
    return window == 0 ? 0.0
                       : static_cast<double>(TotalCommits()) /
                             (static_cast<double>(window) / kSecond);
  }
};

/// A distributed transaction execution protocol. Implementations: 2PL
/// NO_WAIT + 2PC (baseline), MaaT-inspired OCC (baseline), and Chiller's
/// two-region execution (src/chiller).
class Protocol {
 public:
  Protocol(Cluster* cluster, const partition::RecordPartitioner* partitioner,
           ReplicationManager* replication)
      : cluster_(cluster),
        partitioner_(partitioner),
        replication_(replication) {}
  virtual ~Protocol() = default;

  virtual const char* name() const = 0;

  /// Executes one transaction attempt from its home engine. `done` fires
  /// exactly once, after every effect of the attempt (including lock
  /// releases and replication) has been issued; the transaction's outcome
  /// field tells the caller whether to retry.
  virtual void Execute(std::shared_ptr<txn::Transaction> t,
                       std::function<void()> done) = 0;

  Cluster* cluster() { return cluster_; }
  const partition::RecordPartitioner* partitioner() const {
    return partitioner_;
  }
  ReplicationManager* replication() { return replication_; }

 protected:
  Cluster* cluster_;
  const partition::RecordPartitioner* partitioner_;
  ReplicationManager* replication_;
};

}  // namespace chiller::cc

#endif  // CHILLER_CC_PROTOCOL_H_
