// Cluster assembly: simulator + network + engines + primary/replica stores.
#ifndef CHILLER_CC_CLUSTER_H_
#define CHILLER_CC_CLUSTER_H_

#include <memory>
#include <vector>

#include "cc/engine.h"
#include "migrate/relayout.h"
#include "net/network.h"
#include "obs/metrics_registry.h"
#include "obs/trace_recorder.h"
#include "net/rdma.h"
#include "net/rpc.h"
#include "net/topology.h"
#include "partition/lookup_table.h"
#include "sim/scheduler.h"
#include "storage/partition_store.h"
#include "storage/record.h"

namespace chiller::cc {

/// CPU cost model for engine work (ns). Calibrated so a local TPC-C
/// NewOrder costs ~15 us of engine CPU, in line with in-memory OLTP
/// engines of the paper's era.
struct ExecCosts {
  SimTime txn_setup = 400;     ///< planning + context init per attempt
  SimTime op_local = 300;      ///< local lock+read (or insert slot) work
  SimTime op_logic = 120;      ///< closure computation per op
  SimTime op_commit = 150;     ///< per-record write-back / unlock work
  SimTime replica_apply = 200; ///< per-record apply at a replica
  SimTime inner_dispatch = 250;///< marshalling the inner-region RPC
  /// Retry backoff after a conflict abort: fixed + uniform jitter.
  SimTime retry_backoff_fixed = 1000;
  SimTime retry_backoff_jitter = 3000;
};

/// Everything a protocol needs to run transactions on the simulated cluster.
struct ClusterConfig {
  net::Topology topology;
  net::NetworkConfig network;
  ExecCosts costs;
  std::vector<storage::TableSpec> schema;
  /// Simulator shards: 1 runs the classic single-threaded event loop; > 1
  /// runs the same event semantics across real threads (sim::
  /// ShardedSimulator), byte-identical for any value.
  uint32_t shards = 1;
  /// Trace every engine's k-th logical transaction when
  /// k % trace_sample_every == 0; 0 disables tracing entirely.
  uint32_t trace_sample_every = 0;
};

/// Owns the simulator, fabric, engines and all partition stores (primaries
/// and replicas), and loads data according to a RecordPartitioner.
class Cluster {
 public:
  explicit Cluster(ClusterConfig config);

  /// The scheduling interface — deliberately not a concrete simulator, so
  /// protocol code works unchanged whether events run on one thread or
  /// many.
  sim::Scheduler* sim() { return sim_.get(); }
  net::Network* network() { return network_.get(); }
  net::RdmaFabric* rdma() { return rdma_.get(); }
  net::RpcLayer* rpc() { return rpc_.get(); }
  const net::Topology& topology() const { return config_.topology; }
  const ExecCosts& costs() const { return config_.costs; }
  const ClusterConfig& config() const { return config_; }

  Engine* engine(EngineId e) { return engines_[e].get(); }
  uint32_t num_engines() const {
    return static_cast<uint32_t>(engines_.size());
  }

  /// Bucket-granular migration locks shared between the live migrator
  /// (src/migrate) and the execution protocols: an access landing in an
  /// in-flight relayout bucket aborts its attempt instead of racing the
  /// record move. Quiet (ever_active() false) unless a live migration has
  /// run on this cluster.
  migrate::BucketLockTable* bucket_locks() { return &bucket_locks_; }
  const migrate::BucketLockTable* bucket_locks() const {
    return &bucket_locks_;
  }

  storage::PartitionStore* primary(PartitionId p) {
    return primaries_[p].get();
  }
  /// Replica copy `i` (1-based, < replication_degree) of partition `p`.
  storage::PartitionStore* replica(PartitionId p, uint32_t i) {
    return replica_stores_[p][i - 1].get();
  }

  /// Inserts a record into the primary of its partition and all replicas.
  void LoadRecord(const RecordId& rid, const storage::Record& record,
                  const partition::RecordPartitioner& partitioner);

  /// Inserts a copy of the record into every store (every primary and every
  /// replica) — for fully replicated read-only tables like TPC-C ITEM.
  void LoadEverywhere(const RecordId& rid, const storage::Record& record);

  /// Migration path: removes the record from primary `from` and returns it.
  /// Replica copies are untouched — the caller resyncs them through the
  /// ReplicationManager (see cc::MigrateToLayout).
  StatusOr<storage::Record> ExtractRecord(const RecordId& rid,
                                          PartitionId from);

  /// Migration path: installs an extracted record at primary `to`.
  Status InstallRecord(const RecordId& rid, PartitionId to,
                       storage::Record record);

  /// Total committed-state records across primaries (sanity checks).
  size_t TotalPrimaryRecords() const;

  /// Trace recorder for this cluster. Always constructed; inactive (every
  /// record call is a no-op) unless config.trace_sample_every > 0.
  obs::TraceRecorder* trace() { return trace_.get(); }
  const obs::TraceRecorder* trace() const { return trace_.get(); }
  /// Shared ownership handle so a ScenarioResult can outlive the cluster.
  std::shared_ptr<const obs::TraceRecorder> shared_trace() const {
    return trace_;
  }

  /// Named metrics shared by the driver, load models, scheduler and the
  /// migration machinery.
  obs::MetricsRegistry* metrics() { return metrics_.get(); }

 private:
  ClusterConfig config_;
  migrate::BucketLockTable bucket_locks_;
  std::unique_ptr<sim::Scheduler> sim_;
  std::unique_ptr<net::Network> network_;
  std::unique_ptr<net::RdmaFabric> rdma_;
  std::unique_ptr<net::RpcLayer> rpc_;
  std::shared_ptr<obs::TraceRecorder> trace_;
  std::unique_ptr<obs::MetricsRegistry> metrics_;
  std::vector<std::unique_ptr<Engine>> engines_;
  std::vector<std::unique_ptr<storage::PartitionStore>> primaries_;
  std::vector<std::vector<std::unique_ptr<storage::PartitionStore>>>
      replica_stores_;
};

}  // namespace chiller::cc

#endif  // CHILLER_CC_CLUSTER_H_
