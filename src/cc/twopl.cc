#include "cc/twopl.h"

#include <utility>

#include "cc/exec_common.h"
#include "common/logging.h"

namespace chiller::cc {

namespace {

using txn::Outcome;
using txn::Transaction;

/// One transaction attempt under plain 2PL + 2PC. Lives in shared_ptr
/// closures until the attempt settles.
class TwoPlRun : public std::enable_shared_from_this<TwoPlRun> {
 public:
  TwoPlRun(Protocol* proto, std::shared_ptr<Transaction> t,
           std::function<void()> done)
      : deps_{proto->cluster(), proto->partitioner()},
        repl_(proto->replication()),
        t_(std::move(t)),
        done_(std::move(done)) {
    eng_ = deps_.cluster->engine(
        deps_.cluster->topology().EngineOfPartition(t_->home));
  }

  void Start() {
    auto self = shared_from_this();
    eng_->cpu()->Submit(deps_.cluster->costs().txn_setup, [self]() {
      self->t_->ResolveReadyKeys();
      self->ExecNext(0);
    });
  }

 private:
  void ExecNext(size_t i) {
    if (i == t_->ops.size()) {
      BeginCommit();
      return;
    }
    auto self = shared_from_this();
    eng_->cpu()->Submit(deps_.cluster->costs().op_logic, [self, i]() {
      Transaction& t = *self->t_;
      const txn::Operation& op = t.ops[i];
      // Conditional groups: a missing guard record disables later ops.
      if (t.IsSkipped(i)) {
        self->ExecNext(i + 1);
        return;
      }
      // Value constraints run at their program position, after their
      // dependencies' reads.
      if (op.guard && !op.guard(t.ctx)) {
        self->Finish(Outcome::kAbortUser);
        return;
      }
      if (!t.accesses[i].key_resolved) {
        CHILLER_CHECK(t.KeyReady(i)) << "pk-dep not satisfied for op " << i;
        t.ResolveKey(i);
      }
      t.accesses[i].partition = exec::ResolvePartition(self->deps_, t, i);
      exec::LockAndFetch(self->deps_, self->t_.get(), i, self->eng_,
                         /*apply_inline=*/true, [self, i](bool ok) {
                           if (!ok) {
                             self->Finish(Outcome::kAbortConflict);
                             return;
                           }
                           self->ExecNext(i + 1);
                         });
    });
  }

  void BeginCommit() {
    // Replicate the write set before making anything visible ("changes to
    // the replicas have to be applied before committing", Section 5).
    auto held = exec::HeldIndices(*t_);
    auto writes = exec::CollectWrites(*t_, held);
    auto self = shared_from_this();
    commit_start_ = deps_.cluster->sim()->now();
    if (writes.empty()) {
      ApplyPhase();
      return;
    }
    auto pending = std::make_shared<size_t>(writes.size());
    for (auto& [p, updates] : writes) {
      if (t_->traced) {
        // The 2PC fan-out: one replication round per written partition,
        // all in flight before the apply phase may start.
        deps_.cluster->trace()->Instant(eng_->id(), commit_start_,
                                        "2pc_replicate", t_->logical_id,
                                        t_->attempt, /*reason=*/nullptr,
                                        "partition", p);
      }
      repl_->Replicate(eng_->id(), p, std::move(updates), eng_->id(),
                       [self, pending]() {
                         if (--*pending == 0) self->ApplyPhase();
                       });
    }
  }

  void ApplyPhase() {
    auto self = shared_from_this();
    exec::ApplyAndUnlock(deps_, t_.get(), exec::HeldIndices(*t_), eng_,
                         [self]() {
                           if (self->t_->traced) {
                             // Lock hold time across the replication
                             // round-trips — the paper's Figure 2 quantity.
                             self->deps_.cluster->trace()->Span(
                                 self->eng_->id(), self->commit_start_,
                                 self->deps_.cluster->sim()->now(),
                                 "commit_phase", self->t_->logical_id,
                                 self->t_->attempt);
                           }
                           self->Finish(Outcome::kCommitted);
                         });
  }

  void Finish(Outcome outcome) {
    if (outcome == Outcome::kCommitted) {
      Done(outcome);
      return;
    }
    // Abort: nothing was applied to any primary, so releasing locks is the
    // entire rollback.
    auto self = shared_from_this();
    exec::Release(deps_, t_.get(), exec::HeldIndices(*t_), eng_,
                  [self, outcome]() { self->Done(outcome); });
  }

  void Done(Outcome outcome) {
    t_->outcome = outcome;
    t_->end_time = deps_.cluster->sim()->now();
    done_();
  }

  exec::Deps deps_;
  ReplicationManager* repl_;
  std::shared_ptr<Transaction> t_;
  std::function<void()> done_;
  Engine* eng_;
  SimTime commit_start_ = 0;  ///< BeginCommit entry (the 2PC window)
};

}  // namespace

void TwoPhaseLocking::Run(Protocol* proto, std::shared_ptr<Transaction> t,
                          std::function<void()> done) {
  std::make_shared<TwoPlRun>(proto, std::move(t), std::move(done))->Start();
}

void TwoPhaseLocking::Execute(std::shared_ptr<Transaction> t,
                              std::function<void()> done) {
  Run(this, std::move(t), std::move(done));
}

}  // namespace chiller::cc
