#include "cc/occ.h"

#include <utility>
#include <vector>

#include "cc/exec_common.h"
#include "common/logging.h"

namespace chiller::cc {

namespace {

using txn::OpType;
using txn::Outcome;
using txn::Transaction;

class OccRun : public std::enable_shared_from_this<OccRun> {
 public:
  OccRun(Protocol* proto, std::shared_ptr<Transaction> t,
         std::function<void()> done)
      : deps_{proto->cluster(), proto->partitioner()},
        repl_(proto->replication()),
        t_(std::move(t)),
        done_(std::move(done)) {
    eng_ = deps_.cluster->engine(
        deps_.cluster->topology().EngineOfPartition(t_->home));
  }

  void Start() {
    auto self = shared_from_this();
    eng_->cpu()->Submit(deps_.cluster->costs().txn_setup, [self]() {
      self->t_->ResolveReadyKeys();
      self->ExecNext(0);
    });
  }

 private:
  void ExecNext(size_t i) {
    if (i == t_->ops.size()) {
      CollectSets();
      ValidateWriteNext(0);
      return;
    }
    auto self = shared_from_this();
    eng_->cpu()->Submit(deps_.cluster->costs().op_logic, [self, i]() {
      Transaction& t = *self->t_;
      const txn::Operation& op = t.ops[i];
      if (t.IsSkipped(i)) {
        self->ExecNext(i + 1);
        return;
      }
      if (op.guard && !op.guard(t.ctx)) {
        // No locks are held during OCC execution; aborting is free.
        self->Done(Outcome::kAbortUser);
        return;
      }
      if (!t.accesses[i].key_resolved) {
        CHILLER_CHECK(t.KeyReady(i));
        t.ResolveKey(i);
      }
      t.accesses[i].partition = exec::ResolvePartition(self->deps_, t, i);
      exec::FetchVersioned(self->deps_, self->t_.get(), i, self->eng_,
                           [self, i]() {
                             if (self->t_->blocked_by_migration) {
                               // The record's relayout bucket is mid-move:
                               // nothing was fetched and no locks are held,
                               // so aborting the attempt is free.
                               self->Done(Outcome::kAbortConflict);
                               return;
                             }
                             self->ExecNext(i + 1);
                           });
    });
  }

  /// Unique (non-alias) accesses split into write and read-only sets.
  /// Ops skipped by a dead conditional group never resolved a key and are
  /// not part of the footprint; missing probes stay in the read set — their
  /// bucket version check ensures the record still does not exist.
  void CollectSets() {
    for (size_t i = 0; i < t_->accesses.size(); ++i) {
      const txn::Access& acc = t_->accesses[i];
      if (acc.alias_of >= 0 || !acc.key_resolved || !acc.fetched) continue;
      (acc.wrote ? write_set_ : read_set_).push_back(i);
    }
  }

  void ValidateWriteNext(size_t k) {
    if (k == write_set_.size()) {
      ValidateReadNext(0);
      return;
    }
    auto self = shared_from_this();
    exec::ValidateLockWrite(deps_, t_.get(), write_set_[k], eng_,
                            [self, k](bool ok) {
                              if (!ok) {
                                self->AbortValidation();
                                return;
                              }
                              self->ValidateWriteNext(k + 1);
                            });
  }

  void ValidateReadNext(size_t k) {
    if (k == read_set_.size()) {
      BeginCommit();
      return;
    }
    auto self = shared_from_this();
    exec::ValidateRead(deps_, t_.get(), read_set_[k], eng_,
                       [self, k](bool ok) {
                         if (!ok) {
                           self->AbortValidation();
                           return;
                         }
                         self->ValidateReadNext(k + 1);
                       });
  }

  void BeginCommit() {
    auto writes = exec::CollectWrites(*t_, exec::HeldIndices(*t_));
    auto self = shared_from_this();
    if (writes.empty()) {
      ApplyPhase();
      return;
    }
    auto pending = std::make_shared<size_t>(writes.size());
    for (auto& [p, updates] : writes) {
      repl_->Replicate(eng_->id(), p, std::move(updates), eng_->id(),
                       [self, pending]() {
                         if (--*pending == 0) self->ApplyPhase();
                       });
    }
  }

  void ApplyPhase() {
    auto self = shared_from_this();
    exec::ApplyAndUnlock(deps_, t_.get(), exec::HeldIndices(*t_), eng_,
                         [self]() { self->Done(Outcome::kCommitted); });
  }

  void AbortValidation() {
    // All the execution-phase work — including remote round trips — is now
    // wasted; this is exactly the contention pathology of Figure 9.
    auto self = shared_from_this();
    exec::Release(deps_, t_.get(), exec::HeldIndices(*t_), eng_,
                  [self]() { self->Done(Outcome::kAbortConflict); });
  }

  void Done(Outcome outcome) {
    t_->outcome = outcome;
    t_->end_time = deps_.cluster->sim()->now();
    done_();
  }

  exec::Deps deps_;
  ReplicationManager* repl_;
  std::shared_ptr<Transaction> t_;
  std::function<void()> done_;
  Engine* eng_;
  std::vector<size_t> write_set_;
  std::vector<size_t> read_set_;
};

}  // namespace

void Occ::Execute(std::shared_ptr<Transaction> t, std::function<void()> done) {
  std::make_shared<OccRun>(this, std::move(t), std::move(done))->Start();
}

}  // namespace chiller::cc
