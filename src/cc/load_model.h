// Pluggable load models: how transactions are offered to the engines.
//
// The Driver owns the mechanics of running one transaction attempt (ids,
// timestamps, protocol dispatch, stats); a LoadModel owns the *policy* of
// when work arrives and how slots refill:
//
//   ClosedLoop  the paper's Figure 9 semantics — every engine keeps a fixed
//               number of transactions open at all times; a finished slot
//               immediately draws a fresh transaction. Latency here is a
//               dependent variable of the concurrency knob.
//   OpenLoop    an offered-load arrival process (Poisson or uniformly
//               jittered, deterministic per seed) feeds each engine at a
//               configurable cluster-wide rate. Arrivals that find every
//               service slot busy wait in a bounded per-engine admission
//               queue; arrivals that find the queue full are shed and
//               counted. Queueing delay is measured separately from
//               execution latency, which makes latency-vs-throughput knees
//               observable (the closed loop can never show one).
//   Batched     group-commit style admission: each engine runs transactions
//               in fixed-size batches and refills only when the whole batch
//               has settled, amortizing slot refill (the ROADMAP's
//               batch/async driver mode).
//
// All three share the Driver's conflict-retry policy (jittered exponential
// backoff, the retried attempt keeps its slot), so protocol comparisons
// stay apples-to-apples across load models.
#ifndef CHILLER_CC_LOAD_MODEL_H_
#define CHILLER_CC_LOAD_MODEL_H_

#include <deque>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "cc/driver.h"
#include "common/random.h"
#include "common/status.h"
#include "common/types.h"
#include "schedule/scheduler.h"

namespace chiller::cc {

/// Slot-refill / arrival-timing policy for a Driver. One model instance
/// serves one driver (models hold per-engine state); the driver calls
/// Bind() once at construction, StartEngine() for every engine at Start()
/// and Resume(), and OnSlotFree() whenever an attempt finishes while the
/// driver is live (never after Quiesce()).
class LoadModel {
 public:
  virtual ~LoadModel() = default;

  virtual const char* name() const = 0;

  /// Arms engine `e`: launches the initial work (closed/batched) or the
  /// arrival clock (open). Called once per engine by Driver::Start() and
  /// again by Resume() after a Quiesce() drained everything in flight.
  virtual void StartEngine(EngineId e) = 0;

  /// An attempt on engine `e` has finished with `t.outcome` decided and its
  /// stats already recorded. The model decides what the freed slot does
  /// next: retry the same logical transaction, draw fresh work, admit from
  /// a queue, or go idle.
  virtual void OnSlotFree(EngineId e, const txn::Transaction& t) = 0;

  /// True when this model offers load through an admission queue: the
  /// driver marks RunStats::open_loop so reports emit the queue fields
  /// even for windows that happened to see no arrivals.
  virtual bool UsesAdmissionQueue() const { return false; }

  /// Called once by the Driver constructor. OnBind() lets subclasses size
  /// per-engine state off the cluster topology.
  void Bind(Driver* driver) {
    driver_ = driver;
    OnBind();
  }

 protected:
  virtual void OnBind() {}

  /// The shared conflict-retry policy: rebuild the same logical transaction
  /// and relaunch it after a jittered backoff that grows with consecutive
  /// aborts (NO_WAIT livelock avoidance without letting retries saturate a
  /// contended record). The retry occupies its engine slot throughout.
  void RetryAfterBackoff(EngineId e, const txn::Transaction& t);

  Driver* driver_ = nullptr;
};

/// Closed loop: `slots_per_engine` transactions open at all times per
/// engine (the paper's "# concurrent txns per warehouse" knob). This model
/// reproduces the pre-LoadModel Driver byte for byte.
class ClosedLoop final : public LoadModel {
 public:
  explicit ClosedLoop(uint32_t slots_per_engine);

  const char* name() const override { return "closed"; }
  void StartEngine(EngineId e) override;
  void OnSlotFree(EngineId e, const txn::Transaction& t) override;

 private:
  uint32_t slots_;
};

struct OpenLoopOptions {
  /// Cluster-wide offered load, transactions per simulated second, split
  /// evenly across engines. Must be > 0.
  double offered_tps = 0.0;
  /// "poisson": exponential interarrivals (a memoryless arrival process);
  /// "uniform": interarrivals uniform in [0, 2*mean) — same rate, bounded
  /// burstiness. Both are deterministic per seed.
  std::string arrival = "poisson";
  /// Service parallelism per engine (how many admitted transactions may
  /// execute concurrently); the ScenarioSpec concurrency knob.
  uint32_t slots_per_engine = 1;
  /// Bounded per-engine admission queue. An arrival that finds `queue_cap`
  /// requests already waiting is shed (dropped and counted), which bounds
  /// queueing delay under overload instead of growing it without limit.
  uint32_t queue_cap = 64;
  /// Seed for the per-engine arrival clocks (independent of the workload
  /// RNG so arrival times do not depend on transaction parameters).
  uint64_t seed = 1;
  /// Overflow behavior of the *scheduled* admission queue (ignored on the
  /// legacy path, which always sheds the arrival): see
  /// schedule::ShedPolicy.
  schedule::ShedPolicy shed_policy = schedule::ShedPolicy::kDropNew;
};

/// Open loop: arrivals at a fixed offered rate, a bounded admission queue,
/// shed accounting, and queueing-delay measurement. Arrival events that
/// fire while the driver is quiesced are discarded and the clock disarmed;
/// Resume() re-arms it (requests already admitted to the queue survive a
/// quiesce and launch first). Note that Quiesce()'s drain must still run
/// each engine's one pending (discarded) arrival event — the simulator has
/// no event cancellation — so the quiesce pause extends to the latest
/// pending arrival timestamp: up to about one interarrival gap of extra
/// simulated time per quiesce, deterministic, and included in the waits of
/// requests that sit in the queue across the pause (like the pause
/// itself).
class OpenLoop final : public LoadModel {
 public:
  explicit OpenLoop(OpenLoopOptions options);

  const char* name() const override { return "open"; }
  void StartEngine(EngineId e) override;
  void OnSlotFree(EngineId e, const txn::Transaction& t) override;
  bool UsesAdmissionQueue() const override { return true; }

 private:
  /// One waiting request on the scheduled path. Unlike the legacy queue
  /// (timestamps only — the transaction is drawn at launch), scheduled
  /// admission draws at arrival so the scheduler can classify and steer;
  /// the drawn transaction waits here. `counted` remembers whether this
  /// admission landed in the current stats window, so a later shed-policy
  /// eviction can take exactly that admission back.
  struct ScheduledRequest {
    std::shared_ptr<txn::Transaction> txn;
    SimTime enqueued = 0;
    bool counted = false;
  };

  struct EngineState {
    Rng arrivals{1};             ///< arrival-clock RNG, seeded per engine
    uint32_t free_slots = 0;
    std::deque<SimTime> queue;   ///< legacy: admission times of waiters
    std::deque<ScheduledRequest> sched_queue;  ///< scheduled path only
    /// In-flight count per non-cold conflict class (class-serialized
    /// admission under a SerializeClasses scheduler). A retry keeps its
    /// slot and its class; release happens when the logical transaction
    /// settles.
    std::unordered_map<uint32_t, uint32_t> inflight_classes;
    bool initialized = false;
  };

  void OnBind() override;

  void ScheduleNextArrival(EngineId e);
  void Arrive(EngineId e);
  /// Launches the request at the head of `e`'s queue into a free slot.
  void AdmitFromQueue(EngineId e);

  // --- scheduled path (driver()->scheduler() != nullptr) ------------------
  /// Admits `t` on engine `e`: launch if a slot is free and its class is
  /// admissible, else queue, else run the shed policy. Runs in e's event
  /// domain (steered arrivals get here through the fabric).
  void AdmitScheduled(EngineId e, std::shared_ptr<txn::Transaction> t);
  /// Launches queued requests whose class is admissible while slots are
  /// free (first-admissible order, not strict FIFO: a blocked hot class
  /// never starves the cold work behind it).
  void TryAdmitScheduled(EngineId e);
  bool ClassAdmissible(const EngineState& s, uint32_t cls) const;

  OpenLoopOptions opts_;
  SimTime mean_interarrival_ = 0;  ///< per engine, ns
  /// Live admission-queue depth (legacy + scheduled queues), one cell per
  /// engine; snapshotted onto the trace timeline each slice.
  obs::MetricsRegistry::Gauge* m_queue_depth_ = nullptr;
  /// Arrivals the scheduler steered to another engine (lifetime).
  obs::MetricsRegistry::Counter* m_routed_remote_ = nullptr;
  std::vector<EngineState> engines_;
};

/// Batched admission: each engine launches `batch_size` transactions at
/// once and refills only when all of them (including their conflict
/// retries) have settled.
class Batched final : public LoadModel {
 public:
  explicit Batched(uint32_t batch_size);

  const char* name() const override { return "batched"; }
  void StartEngine(EngineId e) override;
  void OnSlotFree(EngineId e, const txn::Transaction& t) override;

 private:
  struct EngineState {
    uint32_t outstanding = 0;
    /// batch-pack: draws whose conflict class already appears in the batch
    /// under formation wait here for a later batch (oldest first).
    std::deque<std::shared_ptr<txn::Transaction>> deferred;
  };

  void LaunchBatch(EngineId e);
  /// Conflict-free batch formation under a classifying scheduler: oldest
  /// deferred transactions first, then fresh draws, never two members of
  /// the same non-cold class per batch.
  void LaunchPackedBatch(EngineId e);

  uint32_t batch_;
  std::vector<EngineState> engines_;
};

/// Declarative load-model parameters, the union of every model's knobs
/// (each model reads only its own; see ScenarioSpec for the field docs).
struct LoadModelParams {
  uint32_t slots_per_engine = 4;
  double offered_tps = 0.0;
  std::string arrival = "poisson";
  uint32_t queue_cap = 64;
  uint32_t batch_size = 8;
  /// open + scheduler: overflow policy of the scheduled admission queue
  /// ("drop-new", "drop-cold", "drop-hot"); validated by
  /// schedule::ValidateSchedulerParams, not here.
  std::string shed_policy = "drop-new";
  uint64_t seed = 1;
};

/// The single source of truth for load-model parameter validity, shared by
/// MakeLoadModel, ScenarioRunner::Validate, and bench flag parsing:
/// InvalidArgument on an unknown name or parameters degenerate for the
/// chosen model (open needs offered_tps > 0, queue_cap >= 1, and a known
/// arrival process; batched needs batch_size >= 1).
Status ValidateLoadModelParams(const std::string& name,
                               const LoadModelParams& params);

/// Builds a load model by registry-style name: "closed", "open", or
/// "batched", after ValidateLoadModelParams.
StatusOr<std::unique_ptr<LoadModel>> MakeLoadModel(
    const std::string& name, const LoadModelParams& params);

}  // namespace chiller::cc

#endif  // CHILLER_CC_LOAD_MODEL_H_
