#include "net/network.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"

namespace chiller::net {

Network::Network(sim::Simulator* sim, NetworkConfig config, uint32_t num_nodes)
    : sim_(sim),
      config_(config),
      num_nodes_(num_nodes),
      last_delivery_(static_cast<size_t>(num_nodes) * num_nodes, 0) {}

void Network::Deliver(NodeId src, NodeId dst, size_t bytes,
                      std::function<void()> fn) {
  CHILLER_DCHECK(src < num_nodes_ && dst < num_nodes_);
  ++messages_sent_;
  bytes_sent_ += bytes;
  SimTime arrival = sim_->now() + config_.OneWay(bytes);
  // Enforce FIFO per queue pair: a message never overtakes an earlier one on
  // the same (src, dst) connection.
  SimTime& horizon = last_delivery_[static_cast<size_t>(src) * num_nodes_ + dst];
  arrival = std::max(arrival, horizon);
  horizon = arrival;
  sim_->ScheduleAt(arrival, std::move(fn));
}

}  // namespace chiller::net
