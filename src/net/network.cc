#include "net/network.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"

namespace chiller::net {

Network::Network(sim::Scheduler* sim, NetworkConfig config, uint32_t num_nodes)
    : sim_(sim),
      config_(config),
      num_nodes_(num_nodes),
      last_delivery_(static_cast<size_t>(num_nodes) * num_nodes, 0),
      messages_sent_(num_nodes + 1u, 0),
      bytes_sent_(num_nodes + 1u, 0) {}

void Network::Deliver(NodeId src, NodeId dst, size_t bytes,
                      std::function<void()> fn) {
  CHILLER_DCHECK(src < num_nodes_ && dst < num_nodes_);
  const sim::DomainId ctx = sim_->current_domain();
  ++messages_sent_[ctx];
  bytes_sent_[ctx] += bytes;
  SimTime arrival = sim_->now() + config_.OneWay(bytes);
  // Enforce FIFO per queue pair: a message never overtakes an earlier one on
  // the same (src, dst) connection. The horizon slot is only ever touched
  // from src's own domain (or at control), so it needs no synchronization.
  SimTime& horizon = last_delivery_[static_cast<size_t>(src) * num_nodes_ + dst];
  arrival = std::max(arrival, horizon);
  horizon = arrival;
  sim_->ScheduleIn(sim::DomainOfNode(dst), arrival, std::move(fn));
}

}  // namespace chiller::net
