// Two-sided RPC between execution engines.
#ifndef CHILLER_NET_RPC_H_
#define CHILLER_NET_RPC_H_

#include <functional>
#include <numeric>
#include <vector>

#include "net/network.h"
#include "net/topology.h"
#include "sim/cpu_resource.h"

namespace chiller::net {

/// Sends messages that are *processed by the destination engine's CPU* —
/// unlike one-sided verbs, an RPC occupies the remote core. Used for
/// inner-region delegation (paper Section 3.3 step 4) and replication
/// streams (Section 5).
class RpcLayer {
 public:
  RpcLayer(sim::Scheduler* sim, Network* network, Topology topology)
      : sim_(sim),
        network_(network),
        topology_(std::move(topology)),
        rpcs_sent_(topology_.num_nodes + 1u, 0) {}

  /// Registers the CPU of each engine; index = EngineId. Must be called once
  /// before Send.
  void BindEngines(std::vector<sim::CpuResource*> engine_cpus);

  /// Sends a message of `bytes` from `src_engine` to `dst_engine`.
  /// `handler` runs on the destination engine after queueing for its CPU and
  /// consuming `service_cost` ns of it. Charges post cost to the source
  /// engine's CPU. The handler sends any response explicitly via Send.
  void Send(EngineId src_engine, EngineId dst_engine, size_t bytes,
            SimTime service_cost, std::function<void()> handler);

  uint64_t rpcs_sent() const {
    return std::accumulate(rpcs_sent_.begin(), rpcs_sent_.end(), uint64_t{0});
  }
  const Topology& topology() const { return topology_; }

 private:
  sim::Scheduler* sim_;
  Network* network_;
  Topology topology_;
  std::vector<sim::CpuResource*> engine_cpus_;
  std::vector<uint64_t> rpcs_sent_;  // per event domain, summed on read
};

}  // namespace chiller::net

#endif  // CHILLER_NET_RPC_H_
