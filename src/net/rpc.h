// Two-sided RPC between execution engines.
#ifndef CHILLER_NET_RPC_H_
#define CHILLER_NET_RPC_H_

#include <functional>
#include <vector>

#include "net/network.h"
#include "net/topology.h"
#include "sim/cpu_resource.h"

namespace chiller::net {

/// Sends messages that are *processed by the destination engine's CPU* —
/// unlike one-sided verbs, an RPC occupies the remote core. Used for
/// inner-region delegation (paper Section 3.3 step 4) and replication
/// streams (Section 5).
class RpcLayer {
 public:
  RpcLayer(sim::Simulator* sim, Network* network, Topology topology)
      : sim_(sim), network_(network), topology_(std::move(topology)) {}

  /// Registers the CPU of each engine; index = EngineId. Must be called once
  /// before Send.
  void BindEngines(std::vector<sim::CpuResource*> engine_cpus);

  /// Sends a message of `bytes` from `src_engine` to `dst_engine`.
  /// `handler` runs on the destination engine after queueing for its CPU and
  /// consuming `service_cost` ns of it. Charges post cost to the source
  /// engine's CPU. The handler sends any response explicitly via Send.
  void Send(EngineId src_engine, EngineId dst_engine, size_t bytes,
            SimTime service_cost, std::function<void()> handler);

  uint64_t rpcs_sent() const { return rpcs_sent_; }
  const Topology& topology() const { return topology_; }

 private:
  sim::Simulator* sim_;
  Network* network_;
  Topology topology_;
  std::vector<sim::CpuResource*> engine_cpus_;
  uint64_t rpcs_sent_ = 0;
};

}  // namespace chiller::net

#endif  // CHILLER_NET_RPC_H_
