// Cluster topology: nodes, engines, and the partition-to-engine mapping.
#ifndef CHILLER_NET_TOPOLOGY_H_
#define CHILLER_NET_TOPOLOGY_H_

#include "common/logging.h"
#include "common/types.h"

namespace chiller::net {

/// Describes the (simulated) cluster shape. Following the paper's setup,
/// partitions map 1:1 onto execution engines and engines are pinned to cores:
/// engine e lives on node e / engines_per_node and owns partition e.
struct Topology {
  uint32_t num_nodes = 1;
  uint32_t engines_per_node = 1;
  /// Replication degree as in the paper: 2 means one primary + one replica.
  uint32_t replication_degree = 2;

  uint32_t num_engines() const { return num_nodes * engines_per_node; }
  uint32_t num_partitions() const { return num_engines(); }

  NodeId NodeOfEngine(EngineId e) const {
    CHILLER_DCHECK(e < num_engines());
    return e / engines_per_node;
  }

  EngineId EngineOfPartition(PartitionId p) const {
    CHILLER_DCHECK(p < num_partitions());
    return p;
  }

  NodeId NodeOfPartition(PartitionId p) const {
    return NodeOfEngine(EngineOfPartition(p));
  }

  /// Engine hosting replica `i` (1-based) of partition `p`: the engine with
  /// the same local index on the i-th next node. Requires num_nodes >= the
  /// replication degree so copies land on distinct machines.
  EngineId ReplicaEngine(PartitionId p, uint32_t i) const {
    CHILLER_DCHECK(i >= 1 && i < replication_degree);
    const NodeId node = (NodeOfPartition(p) + i) % num_nodes;
    const uint32_t local = p % engines_per_node;
    return node * engines_per_node + local;
  }

  uint32_t num_replicas() const { return replication_degree - 1; }
};

}  // namespace chiller::net

#endif  // CHILLER_NET_TOPOLOGY_H_
