// RDMA-class network model with per-queue-pair in-order delivery.
#ifndef CHILLER_NET_NETWORK_H_
#define CHILLER_NET_NETWORK_H_

#include <cstdint>
#include <functional>
#include <numeric>
#include <vector>

#include "common/types.h"
#include "sim/scheduler.h"

namespace chiller::net {

/// Latency/cost model calibrated against InfiniBand EDR numbers reported for
/// NAM-DB/FaRM-class systems. The defaults put a one-sided round trip at
/// ~2.3 us and a local memory access at ~0.1 us — the "order of magnitude"
/// gap Section 2 of the paper reasons about.
struct NetworkConfig {
  /// One-way wire + switch propagation (ns).
  SimTime propagation = 900;
  /// Per-message NIC processing at the receiving side (ns).
  SimTime nic_process = 250;
  /// Transmission cost per byte (ns). 0.08 ns/B ~ 100 Gbit/s EDR 4X.
  double per_byte = 0.08;
  /// CPU cost to post a verb / send a message at the initiator (ns).
  SimTime post_cost = 150;
  /// CPU cost to reap a completion / receive at the destination of an RPC
  /// (one-sided ops bypass this entirely — that is the point of RDMA).
  SimTime recv_cost = 300;

  /// One-way latency for a message of `bytes` payload.
  SimTime OneWay(size_t bytes) const {
    return propagation + nic_process +
           static_cast<SimTime>(per_byte * static_cast<double>(bytes));
  }
};

/// Message fabric between nodes. Delivery per (src, dst) ordered pair is
/// FIFO, mirroring RDMA's reliable-connection queue-pair semantics; the
/// inner-region replication protocol of paper Section 5 depends on this
/// guarantee, and tests assert it.
///
/// The minimum one-way latency (OneWay(0)) doubles as the sharded
/// simulator's conservative lookahead: every Deliver lands in a later
/// window than it was sent from, and it lands *in the destination node's
/// event domain* — the fabric is where execution crosses shards.
class Network {
 public:
  Network(sim::Scheduler* sim, NetworkConfig config, uint32_t num_nodes);

  /// Delivers `fn` at the destination after the modeled latency. `fn` runs
  /// at arrival time in dst's event domain; what it costs at the
  /// destination (engine CPU vs. NIC bypass) is the caller's concern (see
  /// RdmaFabric / RpcLayer).
  void Deliver(NodeId src, NodeId dst, size_t bytes, std::function<void()> fn);

  const NetworkConfig& config() const { return config_; }
  uint32_t num_nodes() const { return num_nodes_; }
  uint64_t messages_sent() const {
    return std::accumulate(messages_sent_.begin(), messages_sent_.end(),
                           uint64_t{0});
  }
  uint64_t bytes_sent() const {
    return std::accumulate(bytes_sent_.begin(), bytes_sent_.end(),
                           uint64_t{0});
  }

 private:
  sim::Scheduler* sim_;
  NetworkConfig config_;
  uint32_t num_nodes_;
  std::vector<SimTime> last_delivery_;  // per (src, dst) FIFO horizon
  // Counters are kept per event domain (writes stay thread-local under the
  // sharded simulator) and summed on read, which only happens at control.
  std::vector<uint64_t> messages_sent_;
  std::vector<uint64_t> bytes_sent_;
};

}  // namespace chiller::net

#endif  // CHILLER_NET_NETWORK_H_
