// One-sided RDMA verb abstraction (READ / WRITE / CAS on remote memory).
#ifndef CHILLER_NET_RDMA_H_
#define CHILLER_NET_RDMA_H_

#include <functional>
#include <numeric>
#include <vector>

#include "net/network.h"
#include "net/topology.h"
#include "sim/cpu_resource.h"

namespace chiller::net {

/// Executes one-sided operations against remote storage. The defining RDMA
/// property modeled here: `remote_op` runs at the destination *without
/// involving the destination's execution engine CPU* (the NIC performs the
/// memory access), and the completion is delivered back to the initiator
/// after the response latency.
///
/// In the simulator all state lives in one address space, so `remote_op` is
/// an arbitrary closure acting on the destination's storage; it is invoked
/// at the simulated arrival instant, which is what preserves correct
/// lock-word CAS semantics under concurrency.
class RdmaFabric {
 public:
  RdmaFabric(sim::Scheduler* sim, Network* network, const Topology& topology)
      : sim_(sim),
        network_(network),
        topology_(topology),
        ops_issued_(topology.num_nodes + 1u, 0) {}

  /// Issues a one-sided operation from `src` to `dst` node.
  ///  - `req_bytes` / `resp_bytes`: payload sizes for the latency model.
  ///  - `remote_op`: performed at dst on arrival (NIC bypass, no engine CPU).
  ///  - `completion`: runs at src when the response arrives.
  /// Initiator CPU cost (verb post + completion poll) is charged to
  /// `initiator_cpu` if non-null.
  void OneSided(NodeId src, NodeId dst, size_t req_bytes, size_t resp_bytes,
                std::function<void()> remote_op,
                std::function<void()> completion,
                sim::CpuResource* initiator_cpu = nullptr);

  uint64_t ops_issued() const {
    return std::accumulate(ops_issued_.begin(), ops_issued_.end(),
                           uint64_t{0});
  }

  const Topology& topology() const { return topology_; }

 private:
  sim::Scheduler* sim_;
  Network* network_;
  Topology topology_;
  std::vector<uint64_t> ops_issued_;  // per event domain, summed on read
};

}  // namespace chiller::net

#endif  // CHILLER_NET_RDMA_H_
