#include "net/rdma.h"

#include <utility>

namespace chiller::net {

void RdmaFabric::OneSided(NodeId src, NodeId dst, size_t req_bytes,
                          size_t resp_bytes, std::function<void()> remote_op,
                          std::function<void()> completion,
                          sim::CpuResource* initiator_cpu) {
  ++ops_issued_[sim_->current_domain()];
  auto issue = [this, src, dst, req_bytes, resp_bytes,
                remote_op = std::move(remote_op),
                completion = std::move(completion)]() mutable {
    network_->Deliver(
        src, dst, req_bytes,
        [this, src, dst, resp_bytes, remote_op = std::move(remote_op),
         completion = std::move(completion)]() mutable {
          // NIC executes the memory operation; no engine CPU at dst.
          remote_op();
          network_->Deliver(dst, src, resp_bytes, std::move(completion));
        });
  };
  if (initiator_cpu != nullptr) {
    initiator_cpu->Submit(network_->config().post_cost, std::move(issue));
  } else {
    issue();
  }
}

}  // namespace chiller::net
