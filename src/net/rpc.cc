#include "net/rpc.h"

#include <utility>

#include "common/logging.h"

namespace chiller::net {

void RpcLayer::BindEngines(std::vector<sim::CpuResource*> engine_cpus) {
  CHILLER_CHECK(engine_cpus.size() == topology_.num_engines());
  engine_cpus_ = std::move(engine_cpus);
}

void RpcLayer::Send(EngineId src_engine, EngineId dst_engine, size_t bytes,
                    SimTime service_cost, std::function<void()> handler) {
  CHILLER_CHECK(!engine_cpus_.empty()) << "BindEngines not called";
  ++rpcs_sent_[sim_->current_domain()];
  const NodeId src = topology_.NodeOfEngine(src_engine);
  const NodeId dst = topology_.NodeOfEngine(dst_engine);
  sim::CpuResource* src_cpu = engine_cpus_[src_engine];
  sim::CpuResource* dst_cpu = engine_cpus_[dst_engine];
  const SimTime recv = network_->config().recv_cost;

  src_cpu->Submit(network_->config().post_cost,
                  [this, src, dst, bytes, dst_cpu, recv, service_cost,
                   handler = std::move(handler)]() mutable {
                    network_->Deliver(src, dst, bytes,
                                      [dst_cpu, recv, service_cost,
                                       handler = std::move(handler)]() mutable {
                                        dst_cpu->Submit(recv + service_cost,
                                                        std::move(handler));
                                      });
                  });
}

}  // namespace chiller::net
