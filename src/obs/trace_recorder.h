// Deterministic per-transaction tracing in simulated time, dumped as
// Chrome trace-event JSON (chrome://tracing, Perfetto).
#ifndef CHILLER_OBS_TRACE_RECORDER_H_
#define CHILLER_OBS_TRACE_RECORDER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"

namespace chiller::obs {

/// Records spans, instants and counter samples in *simulated* time for a
/// deterministically sampled subset of transactions. The dump maps one
/// trace "process" per simulated node and one "thread" per engine;
/// control-plane samples land on a dedicated "cluster" pseudo-process.
///
/// Determinism contract (same discipline as RunStats): every Span/Instant
/// must be recorded from a domain event of the engine it names — engine
/// events execute in the canonical (time, domain, origin, seq) order on
/// every shard layout, so each per-engine buffer is single-writer and
/// canonically ordered. Counter must only be called from control context.
/// The dump merges buffers by (ts, node, engine), which makes the emitted
/// bytes a pure function of the scenario spec: identical for any
/// --jobs x --shards combination. Timestamps are formatted with integer
/// arithmetic only (microseconds with a 3-digit nanosecond fraction), so
/// no floating-point rounding can perturb the bytes either.
class TraceRecorder {
 public:
  /// `sample_every` == 0 disables recording (active() is false and every
  /// record call returns immediately). `node_of_engine[e]` maps engine `e`
  /// to its trace process.
  TraceRecorder(uint32_t sample_every, uint32_t num_nodes,
                std::vector<uint32_t> node_of_engine);

  bool active() const { return sample_every_ != 0; }
  uint32_t sample_every() const { return sample_every_; }

  /// The sampling rule. Logical ids are issued per engine as
  /// `k * num_engines + e + 1` (k = 0, 1, ...), and every engine's k-th
  /// logical transaction is traced when k % sample_every == 0 — every
  /// engine contributes from its first draw onward, independent of how
  /// engines interleave.
  bool Sampled(TxnId logical_id) const {
    if (!active()) return false;
    const uint64_t k =
        (logical_id - 1) / static_cast<uint64_t>(node_of_engine_.size());
    return k % sample_every_ == 0;
  }

  /// Complete span ('X') on engine `e`'s thread covering [start, end] sim
  /// ns. `name`, `reason` and `arg_key` must outlive the recorder (string
  /// literals). `reason` renders as args.reason, `arg_key`/`arg_value` as
  /// one extra numeric arg.
  void Span(EngineId e, SimTime start, SimTime end, const char* name,
            TxnId logical_id, uint32_t attempt, const char* reason = nullptr,
            const char* arg_key = nullptr, uint64_t arg_value = 0);

  /// Thread-scoped instant event ('i') on engine `e`'s thread.
  void Instant(EngineId e, SimTime ts, const char* name, TxnId logical_id,
               uint32_t attempt, const char* reason = nullptr,
               const char* arg_key = nullptr, uint64_t arg_value = 0);

  /// Counter sample ('C') on the cluster pseudo-process. Control-plane
  /// only.
  void Counter(SimTime ts, const char* name, uint64_t value);

  /// Appends this scenario's metadata and events to `out` as ",\n"-joined
  /// JSON objects (no enclosing array), shifting every pid by `pid_offset`
  /// so several scenarios can share one trace file. A non-empty `label`
  /// prefixes the process names.
  void AppendEvents(std::string* out, uint32_t pid_offset,
                    const std::string& label) const;

  /// Trace-process count of one scenario — one per node plus the cluster
  /// pseudo-process; the pid_offset stride for multi-scenario files.
  uint32_t num_pids() const { return num_nodes_ + 1; }

  /// Standalone single-scenario trace document.
  std::string DumpJson() const;

  /// Total events recorded so far (tests and emptiness checks).
  size_t events_recorded() const;

  /// Wraps ",\n"-joined event objects into a trace document.
  static std::string WrapTrace(const std::string& events);

 private:
  struct Event {
    SimTime ts = 0;
    SimTime dur = 0;
    uint64_t value = 0;  ///< arg_value, or the counter sample
    TxnId logical_id = 0;
    const char* name = nullptr;
    const char* reason = nullptr;
    const char* arg_key = nullptr;
    uint32_t node = 0;
    uint32_t engine = 0;
    uint32_t attempt = 0;
    char phase = 'i';
  };

  /// Single-writer per-engine buffers (padded: engines on different
  /// simulator shards append concurrently) plus one control buffer.
  struct alignas(64) Buffer {
    std::vector<Event> events;
  };

  void AppendEventJson(std::string* out, const Event& ev,
                       uint32_t pid_offset) const;

  uint32_t sample_every_;
  uint32_t num_nodes_;
  std::vector<uint32_t> node_of_engine_;
  std::vector<Buffer> engine_buffers_;
  Buffer control_buffer_;
};

}  // namespace chiller::obs

#endif  // CHILLER_OBS_TRACE_RECORDER_H_
