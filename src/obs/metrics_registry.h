// Named cluster metrics: engine-sharded counters/gauges/histograms with
// deterministic control-plane reads and trace snapshots.
#ifndef CHILLER_OBS_METRICS_REGISTRY_H_
#define CHILLER_OBS_METRICS_REGISTRY_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/histogram.h"
#include "common/types.h"

namespace chiller::obs {

class TraceRecorder;

/// Named metric handles shared by the driver, the load models, the
/// scheduler, the live migrator, the governor and the adaptive controller.
/// Handles are get-or-registered by name: a component reconstructed every
/// controller epoch (the migrator, the governor) accumulates into the same
/// handle across its lifetimes.
///
/// Determinism contract (the RunStats discipline): mutations happen from
/// engine domain events through per-engine cells — or from control context
/// through the control cell — and every read merges cells engine-ascending
/// at control. Derived report bytes are therefore identical for any
/// --jobs x --shards combination.
class MetricsRegistry {
 public:
  /// Monotonic counter, one padded cell per engine plus a control cell.
  class Counter {
   public:
    /// Engine-domain increment (engine `e`'s events only).
    void Add(EngineId e, uint64_t n = 1) { cells_[e].v += n; }
    /// Control-plane increment (migration pipelines, the governor).
    void AddControl(uint64_t n = 1) { control_ += n; }
    /// Merged total; control-plane only.
    uint64_t Sum() const {
      uint64_t total = control_;
      for (const Cell& c : cells_) total += c.v;
      return total;
    }

   private:
    friend class MetricsRegistry;
    explicit Counter(uint32_t num_engines) : cells_(num_engines) {}
    struct alignas(64) Cell {
      uint64_t v = 0;
    };
    std::vector<Cell> cells_;
    uint64_t control_ = 0;
  };

  /// Signed level gauge (queue depths, in-flight streams): engine domains
  /// apply deltas to their cell, control either applies deltas or assigns
  /// the control cell outright.
  class Gauge {
   public:
    void Add(EngineId e, int64_t delta) { cells_[e].v += delta; }
    /// Control-plane assignment; only for gauges written exclusively from
    /// control (the governor's stream width).
    void Set(int64_t v) { control_ = v; }
    /// Merged level; control-plane only.
    int64_t Value() const {
      int64_t total = control_;
      for (const Cell& c : cells_) total += c.v;
      return total;
    }

   private:
    friend class MetricsRegistry;
    explicit Gauge(uint32_t num_engines) : cells_(num_engines) {}
    struct alignas(64) Cell {
      int64_t v = 0;
    };
    std::vector<Cell> cells_;
    int64_t control_ = 0;
  };

  /// Engine-sharded histogram with a control-plane take-and-reset read
  /// (the governor consumes one latency window per epoch).
  class Hist {
   public:
    void Add(EngineId e, uint64_t value) { cells_[e].h.Add(value); }
    /// Merged view; control-plane only.
    Histogram Merged() const {
      Histogram out;
      for (const Cell& c : cells_) out.Merge(c.h);
      return out;
    }
    /// Merge then clear every cell; control-plane only.
    Histogram TakeMerged() {
      Histogram out;
      for (Cell& c : cells_) {
        out.Merge(c.h);
        c.h.Reset();
      }
      return out;
    }

   private:
    friend class MetricsRegistry;
    explicit Hist(uint32_t num_engines) : cells_(num_engines) {}
    struct alignas(64) Cell {
      Histogram h;
    };
    std::vector<Cell> cells_;
  };

  explicit MetricsRegistry(uint32_t num_engines) : num_engines_(num_engines) {}

  // Get-or-register. `name` must be a string literal (trace counter
  // samples reference it beyond the registry's mutation phase).
  Counter* GetCounter(const char* name);
  Gauge* GetGauge(const char* name);
  Hist* GetHistogram(const char* name);

  /// Emits one 'C' sample per counter and gauge into `trace` at `ts`, in
  /// name-sorted order (counters first). Control-plane only — called at
  /// timeline-slice boundaries so registry levels share the commit
  /// timeline.
  void Snapshot(SimTime ts, TraceRecorder* trace) const;

 private:
  template <typename T>
  using Table = std::map<std::string, std::pair<const char*, std::unique_ptr<T>>>;

  uint32_t num_engines_;
  Table<Counter> counters_;
  Table<Gauge> gauges_;
  Table<Hist> hists_;
};

}  // namespace chiller::obs

#endif  // CHILLER_OBS_METRICS_REGISTRY_H_
