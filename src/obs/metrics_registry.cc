#include "obs/metrics_registry.h"

#include "obs/trace_recorder.h"

namespace chiller::obs {

MetricsRegistry::Counter* MetricsRegistry::GetCounter(const char* name) {
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_
             .emplace(std::string(name),
                      std::make_pair(name, std::unique_ptr<Counter>(
                                               new Counter(num_engines_))))
             .first;
  }
  return it->second.second.get();
}

MetricsRegistry::Gauge* MetricsRegistry::GetGauge(const char* name) {
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_
             .emplace(std::string(name),
                      std::make_pair(name, std::unique_ptr<Gauge>(
                                               new Gauge(num_engines_))))
             .first;
  }
  return it->second.second.get();
}

MetricsRegistry::Hist* MetricsRegistry::GetHistogram(const char* name) {
  auto it = hists_.find(name);
  if (it == hists_.end()) {
    it = hists_
             .emplace(std::string(name),
                      std::make_pair(name, std::unique_ptr<Hist>(
                                               new Hist(num_engines_))))
             .first;
  }
  return it->second.second.get();
}

void MetricsRegistry::Snapshot(SimTime ts, TraceRecorder* trace) const {
  if (trace == nullptr || !trace->active()) return;
  for (const auto& [key, entry] : counters_) {
    trace->Counter(ts, entry.first, entry.second->Sum());
  }
  for (const auto& [key, entry] : gauges_) {
    trace->Counter(ts, entry.first,
                   static_cast<uint64_t>(entry.second->Value()));
  }
}

}  // namespace chiller::obs
