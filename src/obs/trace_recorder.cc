#include "obs/trace_recorder.h"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "common/logging.h"

namespace chiller::obs {

namespace {

/// Labels come from scenario specs; keep the emitted JSON well-formed no
/// matter what they contain.
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\' || static_cast<unsigned char>(c) < 0x20) {
      out += '_';
    } else {
      out += c;
    }
  }
  return out;
}

/// Microseconds with a 3-digit nanosecond fraction, integer math only.
void AppendTs(std::string* out, SimTime ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu.%03llu",
                static_cast<unsigned long long>(ns / 1000),
                static_cast<unsigned long long>(ns % 1000));
  *out += buf;
}

void AppendU64(std::string* out, uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  *out += buf;
}

}  // namespace

TraceRecorder::TraceRecorder(uint32_t sample_every, uint32_t num_nodes,
                             std::vector<uint32_t> node_of_engine)
    : sample_every_(sample_every),
      num_nodes_(num_nodes),
      node_of_engine_(std::move(node_of_engine)),
      engine_buffers_(node_of_engine_.size()) {}

void TraceRecorder::Span(EngineId e, SimTime start, SimTime end,
                         const char* name, TxnId logical_id, uint32_t attempt,
                         const char* reason, const char* arg_key,
                         uint64_t arg_value) {
  if (!active()) return;
  CHILLER_DCHECK(end >= start) << "span ends before it starts: " << name;
  Event ev;
  ev.ts = start;
  ev.dur = end - start;
  ev.value = arg_value;
  ev.logical_id = logical_id;
  ev.name = name;
  ev.reason = reason;
  ev.arg_key = arg_key;
  ev.node = node_of_engine_[e];
  ev.engine = e;
  ev.attempt = attempt;
  ev.phase = 'X';
  engine_buffers_[e].events.push_back(ev);
}

void TraceRecorder::Instant(EngineId e, SimTime ts, const char* name,
                            TxnId logical_id, uint32_t attempt,
                            const char* reason, const char* arg_key,
                            uint64_t arg_value) {
  if (!active()) return;
  Event ev;
  ev.ts = ts;
  ev.value = arg_value;
  ev.logical_id = logical_id;
  ev.name = name;
  ev.reason = reason;
  ev.arg_key = arg_key;
  ev.node = node_of_engine_[e];
  ev.engine = e;
  ev.attempt = attempt;
  ev.phase = 'i';
  engine_buffers_[e].events.push_back(ev);
}

void TraceRecorder::Counter(SimTime ts, const char* name, uint64_t value) {
  if (!active()) return;
  Event ev;
  ev.ts = ts;
  ev.value = value;
  ev.name = name;
  ev.node = num_nodes_;  // the cluster pseudo-process sorts after all nodes
  ev.engine = 0;
  ev.phase = 'C';
  control_buffer_.events.push_back(ev);
}

size_t TraceRecorder::events_recorded() const {
  size_t total = control_buffer_.events.size();
  for (const Buffer& b : engine_buffers_) total += b.events.size();
  return total;
}

void TraceRecorder::AppendEventJson(std::string* out, const Event& ev,
                                    uint32_t pid_offset) const {
  *out += "{\"name\":\"";
  *out += ev.name;
  *out += "\",\"ph\":\"";
  *out += ev.phase;
  *out += "\",\"ts\":";
  AppendTs(out, ev.ts);
  if (ev.phase == 'X') {
    *out += ",\"dur\":";
    AppendTs(out, ev.dur);
  } else if (ev.phase == 'i') {
    *out += ",\"s\":\"t\"";
  }
  *out += ",\"pid\":";
  AppendU64(out, pid_offset + ev.node);
  *out += ",\"tid\":";
  AppendU64(out, ev.phase == 'C' ? 0 : ev.engine);
  *out += ",\"args\":{";
  bool first = true;
  auto sep = [&] {
    if (!first) *out += ',';
    first = false;
  };
  if (ev.phase == 'C') {
    sep();
    *out += "\"value\":";
    AppendU64(out, ev.value);
  } else {
    if (ev.logical_id != 0) {
      sep();
      *out += "\"txn\":";
      AppendU64(out, ev.logical_id);
      sep();
      *out += "\"attempt\":";
      AppendU64(out, ev.attempt);
    }
    if (ev.reason != nullptr) {
      sep();
      *out += "\"reason\":\"";
      *out += ev.reason;
      *out += '"';
    }
    if (ev.arg_key != nullptr) {
      sep();
      *out += '"';
      *out += ev.arg_key;
      *out += "\":";
      AppendU64(out, ev.value);
    }
  }
  *out += "}}";
}

void TraceRecorder::AppendEvents(std::string* out, uint32_t pid_offset,
                                 const std::string& label) const {
  auto append = [&](const std::string& obj) {
    if (!out->empty()) *out += ",\n";
    *out += obj;
  };
  const std::string prefix =
      label.empty() ? std::string() : JsonEscape(label) + " ";
  // Metadata first: process names per node, the cluster pseudo-process,
  // thread names per engine.
  for (uint32_t n = 0; n < num_nodes_; ++n) {
    std::string meta = "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":";
    AppendU64(&meta, pid_offset + n);
    meta += ",\"args\":{\"name\":\"" + prefix + "node ";
    AppendU64(&meta, n);
    meta += "\"}}";
    append(meta);
  }
  {
    std::string meta = "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":";
    AppendU64(&meta, pid_offset + num_nodes_);
    meta += ",\"args\":{\"name\":\"" + prefix + "cluster\"}}";
    append(meta);
  }
  for (uint32_t e = 0; e < node_of_engine_.size(); ++e) {
    std::string meta = "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":";
    AppendU64(&meta, pid_offset + node_of_engine_[e]);
    meta += ",\"tid\":";
    AppendU64(&meta, e);
    meta += ",\"args\":{\"name\":\"engine ";
    AppendU64(&meta, e);
    meta += "\"}}";
    append(meta);
  }

  // Merge the single-writer buffers into one canonical order. Each buffer
  // is already in its domain's canonical event order; (ts, node, engine)
  // never ties across two different buffers (each engine has exactly one
  // buffer and the control buffer's node is unique), so a stable sort over
  // the concatenation is a total, shard-independent order.
  std::vector<const Event*> merged;
  merged.reserve(events_recorded());
  for (const Buffer& b : engine_buffers_) {
    for (const Event& ev : b.events) merged.push_back(&ev);
  }
  for (const Event& ev : control_buffer_.events) merged.push_back(&ev);
  std::stable_sort(merged.begin(), merged.end(),
                   [](const Event* a, const Event* b) {
                     if (a->ts != b->ts) return a->ts < b->ts;
                     if (a->node != b->node) return a->node < b->node;
                     return a->engine < b->engine;
                   });
  std::string obj;
  for (const Event* ev : merged) {
    obj.clear();
    AppendEventJson(&obj, *ev, pid_offset);
    append(obj);
  }
}

std::string TraceRecorder::WrapTrace(const std::string& events) {
  std::string out = "{\"traceEvents\":[\n";
  out += events;
  out += "\n]}\n";
  return out;
}

std::string TraceRecorder::DumpJson() const {
  std::string events;
  AppendEvents(&events, /*pid_offset=*/0, /*label=*/"");
  return WrapTrace(events);
}

}  // namespace chiller::obs
