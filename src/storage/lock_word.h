// 64-bit bucket lock word, designed to be manipulated by RDMA CAS.
#ifndef CHILLER_STORAGE_LOCK_WORD_H_
#define CHILLER_STORAGE_LOCK_WORD_H_

#include <cstdint>

namespace chiller::storage {

/// Layout (paper Section 6: each bucket encapsulates its own lock so remote
/// engines can lock via one-sided CAS instead of messaging a lock manager):
///
///   bit 63      : exclusive flag
///   bits 62..48 : shared holder count (15 bits)
///   bits 47..0  : version, bumped on every exclusive release with changes
///
/// The version field doubles as the OCC validation stamp.
class LockWord {
 public:
  static constexpr int kVersionBits = 48;
  static constexpr uint64_t kVersionMask = (uint64_t{1} << kVersionBits) - 1;
  static constexpr uint64_t kExclusiveBit = uint64_t{1} << 63;
  static constexpr int kSharedShift = kVersionBits;
  static constexpr uint64_t kSharedMask = ((uint64_t{1} << 15) - 1)
                                          << kSharedShift;
  static constexpr uint32_t kMaxSharedHolders = (1u << 15) - 1;

  static uint64_t MakeFree(uint64_t version) { return version & kVersionMask; }

  static bool IsExclusive(uint64_t w) { return (w & kExclusiveBit) != 0; }
  static uint32_t SharedCount(uint64_t w) {
    return static_cast<uint32_t>((w & kSharedMask) >> kSharedShift);
  }
  static uint64_t Version(uint64_t w) { return w & kVersionMask; }
  static bool IsFree(uint64_t w) {
    return !IsExclusive(w) && SharedCount(w) == 0;
  }

  /// NO_WAIT shared acquire: succeeds iff not exclusively held. Mutates the
  /// word in place and returns true on success.
  static bool TryAcquireShared(uint64_t* w);

  /// NO_WAIT exclusive acquire: succeeds iff completely free.
  static bool TryAcquireExclusive(uint64_t* w);

  /// Drops one shared holder. Requires SharedCount > 0 and not exclusive.
  static void ReleaseShared(uint64_t* w);

  /// Releases the exclusive lock; bumps the version iff `modified`.
  static void ReleaseExclusive(uint64_t* w, bool modified);
};

}  // namespace chiller::storage

#endif  // CHILLER_STORAGE_LOCK_WORD_H_
