// One partition's storage: all table slices plus lock bookkeeping.
#ifndef CHILLER_STORAGE_PARTITION_STORE_H_
#define CHILLER_STORAGE_PARTITION_STORE_H_

#include <memory>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "storage/table.h"

namespace chiller::storage {

/// Lock mode requested by a transaction operation.
enum class LockMode { kShared, kExclusive };

/// The storage server slice for one partition, exposed to remote engines as
/// RDMA-registered memory (NAM-DB architecture, Section 6). Replica copies
/// are also PartitionStores; they receive applied updates, never locks.
class PartitionStore {
 public:
  PartitionStore(PartitionId id, const std::vector<TableSpec>& schema);

  PartitionId id() const { return id_; }

  Table* table(TableId t);
  const Table* table(TableId t) const;

  /// NO_WAIT lock acquisition on the bucket owning (table, key).
  /// Returns Aborted on conflict. This is exactly what a one-sided CAS
  /// performs at the remote side.
  Status TryLock(const RecordId& rid, LockMode mode);

  /// Releases a lock taken by TryLock. `modified` bumps the version on
  /// exclusive release (OCC validation stamp).
  void Unlock(const RecordId& rid, LockMode mode, bool modified);

  /// Current version stamp of the bucket owning `rid`.
  uint64_t VersionOf(const RecordId& rid) const;

  Record* Find(const RecordId& rid);
  Status Insert(const RecordId& rid, Record record);
  Status Erase(const RecordId& rid);

  /// Migration path: removes the record and hands it to the caller.
  /// NotFound if absent; FailedPrecondition if the owning bucket is locked
  /// (records may only move while the partition is quiesced).
  StatusOr<Record> ExtractRecord(const RecordId& rid);

  /// Migration path: installs a record extracted elsewhere.
  /// FailedPrecondition if the key already exists or its bucket is locked.
  Status InstallRecord(const RecordId& rid, Record record);

  /// Total records across tables (load metric for partitioning).
  size_t num_records() const;

  /// Number of currently held locks (tests assert it returns to zero).
  size_t locks_held() const { return locks_held_; }

  /// Visits every record in every table: fn(RecordId, Record).
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (size_t ti = 0; ti < tables_.size(); ++ti) {
      if (tables_[ti] == nullptr) continue;
      tables_[ti]->ForEach([&](Key k, const Record& r) {
        fn(RecordId{static_cast<TableId>(ti), k}, r);
      });
    }
  }

 private:
  PartitionId id_;
  std::vector<std::unique_ptr<Table>> tables_;
  size_t locks_held_ = 0;
};

}  // namespace chiller::storage

#endif  // CHILLER_STORAGE_PARTITION_STORE_H_
