// A table: an array of lock-carrying buckets within one partition.
#ifndef CHILLER_STORAGE_TABLE_H_
#define CHILLER_STORAGE_TABLE_H_

#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "storage/bucket.h"
#include "storage/record.h"

namespace chiller::storage {

/// Per-partition slice of one logical table. Keys hash onto a fixed array of
/// buckets; the bucket's embedded lock word is the locking granule, so two
/// keys colliding into one bucket contend (as in the real system — size
/// buckets_per_partition accordingly).
class Table {
 public:
  explicit Table(TableSpec spec);

  const TableSpec& spec() const { return spec_; }

  /// The bucket that owns `key` (never null).
  Bucket* BucketFor(Key key);
  const Bucket* BucketFor(Key key) const;

  /// Index of the owning bucket — the "remote address" a one-sided op needs.
  size_t BucketIndex(Key key) const;
  Bucket* BucketAt(size_t index);

  /// Looks up a record; does not touch locks.
  Record* Find(Key key);

  /// Inserts a record. Fails with FailedPrecondition on duplicate key.
  Status Insert(Key key, Record record);

  /// Removes a record. Fails with NotFound if absent.
  Status Erase(Key key);

  size_t num_buckets() const { return buckets_.size(); }
  size_t num_records() const { return num_records_; }

  /// Visits every (key, record) in the table (order unspecified).
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (const auto& b : buckets_) b.ForEach(fn);
  }

 private:
  TableSpec spec_;
  std::vector<Bucket> buckets_;
  size_t num_records_ = 0;
};

}  // namespace chiller::storage

#endif  // CHILLER_STORAGE_TABLE_H_
