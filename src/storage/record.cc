#include "storage/record.h"

// Record is header-only; this TU anchors the module in the build and keeps a
// home for future out-of-line members (e.g., varlen payloads).
namespace chiller::storage {}
