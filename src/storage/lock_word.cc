#include "storage/lock_word.h"

#include "common/logging.h"

namespace chiller::storage {

bool LockWord::TryAcquireShared(uint64_t* w) {
  if (IsExclusive(*w)) return false;
  const uint32_t holders = SharedCount(*w);
  CHILLER_CHECK(holders < kMaxSharedHolders) << "shared count overflow";
  *w = (*w & ~kSharedMask) |
       (static_cast<uint64_t>(holders + 1) << kSharedShift);
  return true;
}

bool LockWord::TryAcquireExclusive(uint64_t* w) {
  if (!IsFree(*w)) return false;
  *w |= kExclusiveBit;
  return true;
}

void LockWord::ReleaseShared(uint64_t* w) {
  CHILLER_CHECK(!IsExclusive(*w) && SharedCount(*w) > 0)
      << "bad shared release";
  const uint32_t holders = SharedCount(*w);
  *w = (*w & ~kSharedMask) |
       (static_cast<uint64_t>(holders - 1) << kSharedShift);
}

void LockWord::ReleaseExclusive(uint64_t* w, bool modified) {
  CHILLER_CHECK(IsExclusive(*w)) << "bad exclusive release";
  uint64_t version = Version(*w);
  if (modified) version = (version + 1) & kVersionMask;
  *w = MakeFree(version);
}

}  // namespace chiller::storage
