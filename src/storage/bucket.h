// Hash bucket with an embedded lock word (NAM-DB style, paper Section 6).
#ifndef CHILLER_STORAGE_BUCKET_H_
#define CHILLER_STORAGE_BUCKET_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "common/types.h"
#include "storage/lock_word.h"
#include "storage/record.h"

namespace chiller::storage {

/// One hash bucket: a small set of records sharing a single lock word.
/// "Buckets are locked when any of their records are being accessed, and the
/// lock remains until the transaction commits or aborts" (Section 6).
/// Overflow is modeled by letting the entry vector grow (an overflow bucket
/// chained off the primary, sharing its lock).
class Bucket {
 public:
  Bucket() : lock_(LockWord::MakeFree(0)) {}

  /// The raw lock word; remote engines CAS this via one-sided RDMA.
  uint64_t lock_word() const { return lock_; }
  uint64_t* mutable_lock_word() { return &lock_; }

  bool TryLockShared() { return LockWord::TryAcquireShared(&lock_); }
  bool TryLockExclusive() { return LockWord::TryAcquireExclusive(&lock_); }
  void UnlockShared() { LockWord::ReleaseShared(&lock_); }
  void UnlockExclusive(bool modified) {
    LockWord::ReleaseExclusive(&lock_, modified);
  }
  uint64_t version() const { return LockWord::Version(lock_); }

  /// Returns the record stored under `key`, or nullptr.
  Record* Find(Key key);
  const Record* Find(Key key) const;

  /// Inserts a new record; returns false if the key already exists.
  bool Insert(Key key, Record record);

  /// Removes `key`; returns true if it was present.
  bool Erase(Key key);

  size_t num_records() const { return entries_.size(); }

  /// Visits every (key, record) in the bucket.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (const auto& e : entries_) fn(e.key, e.record);
  }

 private:
  struct Entry {
    Key key;
    Record record;
  };

  uint64_t lock_;
  std::vector<Entry> entries_;
};

}  // namespace chiller::storage

#endif  // CHILLER_STORAGE_BUCKET_H_
