#include "storage/partition_store.h"

#include <utility>

#include "common/logging.h"

namespace chiller::storage {

PartitionStore::PartitionStore(PartitionId id,
                               const std::vector<TableSpec>& schema)
    : id_(id) {
  size_t max_id = 0;
  for (const auto& spec : schema) max_id = std::max<size_t>(max_id, spec.id);
  tables_.resize(max_id + 1);
  for (const auto& spec : schema) {
    CHILLER_CHECK(tables_[spec.id] == nullptr) << "duplicate table id";
    tables_[spec.id] = std::make_unique<Table>(spec);
  }
}

Table* PartitionStore::table(TableId t) {
  CHILLER_CHECK(t < tables_.size() && tables_[t] != nullptr)
      << "unknown table " << t;
  return tables_[t].get();
}

const Table* PartitionStore::table(TableId t) const {
  CHILLER_CHECK(t < tables_.size() && tables_[t] != nullptr)
      << "unknown table " << t;
  return tables_[t].get();
}

Status PartitionStore::TryLock(const RecordId& rid, LockMode mode) {
  Bucket* b = table(rid.table)->BucketFor(rid.key);
  const bool ok = mode == LockMode::kShared ? b->TryLockShared()
                                            : b->TryLockExclusive();
  if (!ok) {
    // Per-conflict diagnostics are hot-path noise; the DEBUG level keeps
    // them gated behind SetMinLogLevel(LogLevel::kDebug).
    CHILLER_LOG(DEBUG) << "lock conflict part=" << id_
                       << " table=" << rid.table << " key=" << rid.key
                       << " mode=" << static_cast<int>(mode)
                       << " word=" << b->lock_word();
    return Status::Aborted("lock conflict");
  }
  ++locks_held_;
  return Status::OK();
}

void PartitionStore::Unlock(const RecordId& rid, LockMode mode,
                            bool modified) {
  Bucket* b = table(rid.table)->BucketFor(rid.key);
  if (mode == LockMode::kShared) {
    b->UnlockShared();
  } else {
    b->UnlockExclusive(modified);
  }
  CHILLER_CHECK(locks_held_ > 0);
  --locks_held_;
}

uint64_t PartitionStore::VersionOf(const RecordId& rid) const {
  return table(rid.table)->BucketFor(rid.key)->version();
}

Record* PartitionStore::Find(const RecordId& rid) {
  return table(rid.table)->Find(rid.key);
}

Status PartitionStore::Insert(const RecordId& rid, Record record) {
  return table(rid.table)->Insert(rid.key, std::move(record));
}

Status PartitionStore::Erase(const RecordId& rid) {
  return table(rid.table)->Erase(rid.key);
}

StatusOr<Record> PartitionStore::ExtractRecord(const RecordId& rid) {
  Table* t = table(rid.table);
  if (!LockWord::IsFree(t->BucketFor(rid.key)->lock_word())) {
    return Status::FailedPrecondition("bucket of " + rid.ToString() +
                                      " is locked; migration requires a "
                                      "quiesced partition");
  }
  Record* rec = t->Find(rid.key);
  if (rec == nullptr) {
    return Status::NotFound("no record " + rid.ToString() + " to extract");
  }
  Record out = std::move(*rec);
  CHILLER_CHECK(t->Erase(rid.key).ok());
  return out;
}

Status PartitionStore::InstallRecord(const RecordId& rid, Record record) {
  Table* t = table(rid.table);
  if (!LockWord::IsFree(t->BucketFor(rid.key)->lock_word())) {
    return Status::FailedPrecondition("bucket of " + rid.ToString() +
                                      " is locked; migration requires a "
                                      "quiesced partition");
  }
  Status st = t->Insert(rid.key, std::move(record));
  if (!st.ok()) {
    return Status::FailedPrecondition("record " + rid.ToString() +
                                      " already present at partition " +
                                      std::to_string(id_));
  }
  return Status::OK();
}

size_t PartitionStore::num_records() const {
  size_t n = 0;
  for (const auto& t : tables_) {
    if (t != nullptr) n += t->num_records();
  }
  return n;
}

}  // namespace chiller::storage
