#include "storage/table.h"

#include <utility>

#include "common/logging.h"

namespace chiller::storage {

namespace {
// SplitMix64 finalizer: spreads sequential keys across buckets.
size_t HashKey(Key key) {
  uint64_t x = key;
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return static_cast<size_t>(x);
}
}  // namespace

Table::Table(TableSpec spec) : spec_(std::move(spec)) {
  CHILLER_CHECK(spec_.buckets_per_partition > 0);
  buckets_.resize(spec_.buckets_per_partition);
}

size_t Table::BucketIndex(Key key) const {
  return HashKey(key) % buckets_.size();
}

Bucket* Table::BucketFor(Key key) { return &buckets_[BucketIndex(key)]; }

const Bucket* Table::BucketFor(Key key) const {
  return &buckets_[BucketIndex(key)];
}

Bucket* Table::BucketAt(size_t index) {
  CHILLER_DCHECK(index < buckets_.size());
  return &buckets_[index];
}

Record* Table::Find(Key key) { return BucketFor(key)->Find(key); }

Status Table::Insert(Key key, Record record) {
  if (!BucketFor(key)->Insert(key, std::move(record))) {
    return Status::FailedPrecondition("duplicate key");
  }
  ++num_records_;
  return Status::OK();
}

Status Table::Erase(Key key) {
  if (!BucketFor(key)->Erase(key)) return Status::NotFound();
  --num_records_;
  return Status::OK();
}

}  // namespace chiller::storage
