#include "storage/bucket.h"

#include <utility>

namespace chiller::storage {

Record* Bucket::Find(Key key) {
  for (auto& e : entries_) {
    if (e.key == key) return &e.record;
  }
  return nullptr;
}

const Record* Bucket::Find(Key key) const {
  for (const auto& e : entries_) {
    if (e.key == key) return &e.record;
  }
  return nullptr;
}

bool Bucket::Insert(Key key, Record record) {
  if (Find(key) != nullptr) return false;
  entries_.push_back(Entry{key, std::move(record)});
  return true;
}

bool Bucket::Erase(Key key) {
  for (size_t i = 0; i < entries_.size(); ++i) {
    if (entries_[i].key == key) {
      entries_[i] = std::move(entries_.back());
      entries_.pop_back();
      return true;
    }
  }
  return false;
}

}  // namespace chiller::storage
