// Fixed-layout in-memory record.
#ifndef CHILLER_STORAGE_RECORD_H_
#define CHILLER_STORAGE_RECORD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/logging.h"

namespace chiller::storage {

/// A record is a fixed number of 64-bit fields plus a declared wire size.
/// All workloads in this repo (TPC-C, Instacart-like, flight booking) encode
/// their columns into int64 fields; `wire_bytes` preserves the real payload
/// size for the network cost model.
class Record {
 public:
  Record() = default;
  explicit Record(size_t num_fields, size_t wire_bytes = 0)
      : fields_(num_fields, 0),
        wire_bytes_(wire_bytes == 0 ? num_fields * 8 : wire_bytes) {}

  int64_t Get(size_t i) const {
    CHILLER_DCHECK(i < fields_.size());
    return fields_[i];
  }
  void Set(size_t i, int64_t v) {
    CHILLER_DCHECK(i < fields_.size());
    fields_[i] = v;
  }
  void Add(size_t i, int64_t delta) { Set(i, Get(i) + delta); }

  size_t num_fields() const { return fields_.size(); }
  size_t wire_bytes() const { return wire_bytes_; }

  const std::vector<int64_t>& fields() const { return fields_; }
  std::vector<int64_t>& mutable_fields() { return fields_; }

 private:
  std::vector<int64_t> fields_;
  size_t wire_bytes_ = 0;
};

/// Static description of one table.
struct TableSpec {
  std::string name;
  uint16_t id = 0;
  size_t num_fields = 1;
  /// Serialized record size for the network model (0 = 8 * num_fields).
  size_t wire_bytes = 0;
  /// Buckets per partition; keys hash onto buckets, whose embedded lock is
  /// the unit of locking (Section 6).
  size_t buckets_per_partition = 1 << 12;
};

}  // namespace chiller::storage

#endif  // CHILLER_STORAGE_RECORD_H_
