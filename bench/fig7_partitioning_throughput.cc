// Figure 7: Instacart-like NewOrder throughput vs. number of partitions,
// comparing Hashing / Schism / Chiller partitioning under the same
// execution engine (one engine per machine, replication degree 2).
//
// Paper expectation: Schism ~ +50% over hashing but neither scales with
// partitions; Chiller scales almost linearly and is highest throughout.
#include "bench/bench_common.h"

namespace chiller::bench {
namespace {

namespace instacart = workload::instacart;

constexpr SimTime kWarmup = 3 * kMillisecond;
constexpr SimTime kMeasure = 30 * kMillisecond;

double RunLayout(const std::string& label, uint32_t k,
                 const instacart::InstacartWorkload::Options& wopts,
                 const partition::RecordPartitioner* layout) {
  (void)label;
  instacart::InstacartWorkload workload(wopts);
  Env env = MakeInstacartEnv("chiller", k, &workload, layout,
                             /*concurrency=*/4, /*seed=*/k);
  auto stats = env.driver->Run(kWarmup, kMeasure);
  return stats.Throughput() / 1000.0;  // K txns/sec
}

void Main() {
  std::printf(
      "Figure 7 — Instacart NewOrder throughput (K txns/sec) vs partitions\n"
      "paper shape: Chiller highest and ~linear; Schism ~+50%% over hash;\n"
      "neither baseline scales.\n\n");

  instacart::InstacartWorkload::Options wopts;
  wopts.num_products = 20000;
  wopts.num_customers = 50000;

  std::vector<double> ks = {2, 3, 4, 5, 6, 7, 8};
  std::vector<double> hash_s, schism_s, chiller_s;
  for (double kd : ks) {
    const uint32_t k = static_cast<uint32_t>(kd);
    instacart::InstacartWorkload trace_wl(wopts);
    auto layouts = BuildInstacartLayouts(&trace_wl, k, /*trace_txns=*/8000);
    hash_s.push_back(RunLayout("hash", k, wopts, layouts.hashing.get()));
    schism_s.push_back(RunLayout("schism", k, wopts, layouts.schism.get()));
    chiller_s.push_back(
        RunLayout("chiller", k, wopts, layouts.chiller_out.partitioner.get()));
    std::fprintf(stderr, "  [fig7] k=%u done\n", k);
  }

  PrintHeader("partitions", ks);
  PrintRow("Hashing", hash_s, "%8.1f");
  PrintRow("Schism", schism_s, "%8.1f");
  PrintRow("Chiller", chiller_s, "%8.1f");

  const double speedup = chiller_s.back() / chiller_s.front();
  std::printf("\nChiller 8-vs-2 partition scaling: %.2fx (ideal 4.0x)\n",
              speedup);
  std::printf("Chiller vs best baseline at 8 partitions: %.2fx\n",
              chiller_s.back() / std::max(hash_s.back(), schism_s.back()));
}

}  // namespace
}  // namespace chiller::bench

int main() { chiller::bench::Main(); }
