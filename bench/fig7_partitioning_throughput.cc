// Figure 7: Instacart-like NewOrder throughput vs. number of partitions,
// comparing Hashing / Schism / Chiller partitioning under the same
// execution engine (one engine per machine, replication degree 2).
//
// Paper expectation: Schism ~ +50% over hashing but neither scales with
// partitions; Chiller scales almost linearly and is highest throughout.
#include <cstdio>

#include "bench/bench_flags.h"
#include "bench/bench_report.h"
#include "runner/sweep.h"

namespace chiller::bench {
namespace {

void Main(const BenchFlags& flags) {
  if (!runner::ProtocolRegistry::Global().Has(flags.protocol)) {
    // Fail before the sweep: a typo'd protocol would otherwise build 21
    // scenarios' worth of layouts just to report the same error 21 times.
    std::fprintf(stderr, "fig7: unknown protocol '%s' (see --list-protocols)\n",
                 flags.protocol.c_str());
    std::exit(1);
  }
  std::printf(
      "Figure 7 — Instacart NewOrder throughput (K txns/sec) vs partitions\n"
      "paper shape: Chiller highest and ~linear; Schism ~+50%% over hash;\n"
      "neither baseline scales.\n\n");

  BenchReport report("fig7");
  report.SetConfig("protocol", flags.protocol);
  report.SetConfig("concurrency", flags.concurrency);
  report.SetConfig("warmup_ms", flags.warmup_ms);
  report.SetConfig("duration_ms", flags.duration_ms);
  report.SetConfig("seed", flags.seed);
  report.SetConfig("tail_theta", flags.theta);

  const std::vector<double> ks = {2, 3, 4, 5, 6, 7, 8};
  const std::vector<std::string> layouts = {"hash", "schism", "chiller"};

  std::vector<runner::ScenarioSpec> specs;
  for (double kd : ks) {
    const uint32_t k = static_cast<uint32_t>(kd);
    for (const std::string& layout : layouts) {
      runner::ScenarioSpec spec;
      spec.label = layout;
      spec.workload = "instacart";
      spec.protocol = flags.protocol;
      spec.nodes = k;
      spec.engines_per_node = 1;
      spec.concurrency = flags.concurrency;
      spec.seed = flags.seed + k;
      spec.warmup = static_cast<SimTime>(flags.warmup_ms * kMillisecond);
      spec.measure = static_cast<SimTime>(flags.duration_ms * kMillisecond);
      ApplyLoadModelFlags(flags, &spec);
      spec.options.Set("num_products", 20000);
      spec.options.Set("num_customers", 50000);
      spec.options.Set("tail_theta", flags.theta);
      spec.options.Set("layout", layout);
      spec.options.Set("trace_txns", 8000);
      spec.options.Set("layout_seed", flags.seed + 6);
      specs.push_back(std::move(spec));
    }
  }

  for (auto& spec : specs) {
    spec.footprint_hint = runner::EstimateFootprint(spec);
  }
  runner::SweepExecutor executor = MakeSweepExecutor(flags, "fig7");
  size_t completed = 0;  // progress callbacks are serialized by the executor
  auto results = executor.Run(
      specs, [&](size_t i, const StatusOr<runner::ScenarioResult>& r) {
        std::fprintf(stderr, "  [fig7] k=%u layout=%s %s (%zu/%zu)\n",
                     specs[i].nodes, specs[i].label.c_str(),
                     r.ok() ? "done" : r.status().ToString().c_str(),
                     ++completed, specs.size());
      });

  std::vector<std::vector<double>> tput(layouts.size());
  for (size_t i = 0; i < results.size(); ++i) {
    if (!results[i].ok()) {
      std::fprintf(stderr, "fig7: scenario %zu failed: %s\n", i,
                   results[i].status().ToString().c_str());
      std::exit(1);
    }
    const runner::ScenarioResult& r = results[i].value();

    Json params = Json::MakeObject();
    params["partitions"] = r.spec.partitions();
    params["layout"] = r.spec.label;
    report.AddRun(r.spec.protocol, std::move(params), r.stats);
    tput[i % layouts.size()].push_back(r.stats.Throughput() / 1000.0);
  }
  const std::vector<double>& hash_s = tput[0];
  const std::vector<double>& schism_s = tput[1];
  const std::vector<double>& chiller_s = tput[2];

  PrintHeader("partitions", ks);
  PrintRow("Hashing", hash_s, "%8.1f");
  PrintRow("Schism", schism_s, "%8.1f");
  PrintRow("Chiller", chiller_s, "%8.1f");

  const double speedup = chiller_s.back() / chiller_s.front();
  std::printf("\nChiller 8-vs-2 partition scaling: %.2fx (ideal 4.0x)\n",
              speedup);
  std::printf("Chiller vs best baseline at 8 partitions: %.2fx\n",
              chiller_s.back() / std::max(hash_s.back(), schism_s.back()));

  report.MaybeWrite(flags.emit_json, flags.JsonPathFor("fig7"));
}

}  // namespace
}  // namespace chiller::bench

int main(int argc, char** argv) {
  chiller::bench::BenchFlags defaults;
  defaults.duration_ms = 30.0;  // longer window: per-partition rates are low
  defaults.theta = 0.6;         // the Instacart catalog tail skew
  chiller::bench::Main(
      chiller::bench::ParseBenchFlagsOrExit(argc, argv, "fig7", defaults));
}
