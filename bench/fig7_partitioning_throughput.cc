// Figure 7: Instacart-like NewOrder throughput vs. number of partitions,
// comparing Hashing / Schism / Chiller partitioning under the same
// execution engine (one engine per machine, replication degree 2).
//
// Paper expectation: Schism ~ +50% over hashing but neither scales with
// partitions; Chiller scales almost linearly and is highest throughout.
#include "bench/bench_common.h"

namespace chiller::bench {
namespace {

namespace instacart = workload::instacart;

double RunLayout(const BenchFlags& flags, const std::string& layout_name,
                 uint32_t k, const instacart::InstacartWorkload::Options& wopts,
                 const partition::RecordPartitioner* layout,
                 BenchReport* report) {
  instacart::InstacartWorkload workload(wopts);
  Env env = MakeInstacartEnv(flags.protocol, k, &workload, layout,
                             flags.concurrency, /*seed=*/flags.seed + k);
  auto stats = env.driver->Run(
      static_cast<SimTime>(flags.warmup_ms * kMillisecond),
      static_cast<SimTime>(flags.duration_ms * kMillisecond));

  Json params = Json::MakeObject();
  params["partitions"] = k;
  params["layout"] = layout_name;
  report->AddRun(flags.protocol, std::move(params), stats);
  return stats.Throughput() / 1000.0;  // K txns/sec
}

void Main(const BenchFlags& flags) {
  std::printf(
      "Figure 7 — Instacart NewOrder throughput (K txns/sec) vs partitions\n"
      "paper shape: Chiller highest and ~linear; Schism ~+50%% over hash;\n"
      "neither baseline scales.\n\n");

  BenchReport report("fig7");
  report.SetConfig("protocol", flags.protocol);
  report.SetConfig("concurrency", flags.concurrency);
  report.SetConfig("warmup_ms", flags.warmup_ms);
  report.SetConfig("duration_ms", flags.duration_ms);
  report.SetConfig("seed", flags.seed);
  report.SetConfig("tail_theta", flags.theta);

  instacart::InstacartWorkload::Options wopts;
  wopts.num_products = 20000;
  wopts.num_customers = 50000;
  wopts.tail_theta = flags.theta;

  std::vector<double> ks = {2, 3, 4, 5, 6, 7, 8};
  std::vector<double> hash_s, schism_s, chiller_s;
  for (double kd : ks) {
    const uint32_t k = static_cast<uint32_t>(kd);
    instacart::InstacartWorkload trace_wl(wopts);
    auto layouts = BuildInstacartLayouts(&trace_wl, k, /*trace_txns=*/8000,
                                         /*seed=*/flags.seed + 6);
    hash_s.push_back(
        RunLayout(flags, "hash", k, wopts, layouts.hashing.get(), &report));
    schism_s.push_back(
        RunLayout(flags, "schism", k, wopts, layouts.schism.get(), &report));
    chiller_s.push_back(RunLayout(flags, "chiller", k, wopts,
                                  layouts.chiller_out.partitioner.get(),
                                  &report));
    std::fprintf(stderr, "  [fig7] k=%u done\n", k);
  }

  PrintHeader("partitions", ks);
  PrintRow("Hashing", hash_s, "%8.1f");
  PrintRow("Schism", schism_s, "%8.1f");
  PrintRow("Chiller", chiller_s, "%8.1f");

  const double speedup = chiller_s.back() / chiller_s.front();
  std::printf("\nChiller 8-vs-2 partition scaling: %.2fx (ideal 4.0x)\n",
              speedup);
  std::printf("Chiller vs best baseline at 8 partitions: %.2fx\n",
              chiller_s.back() / std::max(hash_s.back(), schism_s.back()));

  report.MaybeWrite(flags.emit_json, flags.JsonPathFor("fig7"));
}

}  // namespace
}  // namespace chiller::bench

int main(int argc, char** argv) {
  chiller::bench::BenchFlags defaults;
  defaults.duration_ms = 30.0;  // longer window: per-partition rates are low
  defaults.theta = 0.6;         // the Instacart catalog tail skew
  chiller::bench::Main(
      chiller::bench::ParseBenchFlagsOrExit(argc, argv, "fig7", defaults));
}
