// In-text results of Sections 4.4 and 7.2.2:
//  - lookup-table size: Schism stores every trace record; Chiller stores
//    hot records only (paper: Schism ~10x larger);
//  - graph size: n(n-1)/2 edges per transaction (Schism) vs n (Chiller);
//  - partitioning cost: graph construction + partitioning wall-clock
//    (paper: Schism up to 5x slower).
//
// The four trace sizes build independently across the --jobs pool. Note
// the build_ms columns measure host wall-clock inside each worker, so
// heavy parallelism can inflate them through CPU contention; sizes and
// entry counts are exact regardless.
#include <cstdio>

#include "bench/bench_flags.h"
#include "bench/bench_report.h"
#include "partition/chiller_partitioner.h"
#include "partition/schism.h"
#include "runner/sweep.h"
#include "workload/instacart.h"

namespace chiller::bench {
namespace {

namespace instacart = workload::instacart;

void Main(const BenchFlags& flags) {
  RejectLoadModelFlags(flags, "tab_lookup_and_cost");
  std::printf(
      "Sections 4.4 / 7.2.2 — lookup-table size, graph size, and\n"
      "partitioning cost: Schism vs Chiller on the Instacart-like "
      "workload.\n\n");

  BenchReport report("tab_lookup_and_cost");
  report.SetConfig("partitions", 8);
  report.SetConfig("tail_theta", flags.theta);

  instacart::InstacartWorkload::Options wopts;
  wopts.num_products = 30000;
  wopts.num_customers = 100000;
  wopts.tail_theta = flags.theta;

  const uint32_t k = 8;
  const std::vector<size_t> trace_sizes = {5000, 10000, 20000, 40000};
  struct Built {
    partition::SchismPartitioner::Output schism;
    partition::ChillerPartitioner::Output chiller;
  };
  auto builds =
      runner::ParallelMap(flags.jobs, trace_sizes.size(), [&](size_t i) {
        const size_t trace_txns = trace_sizes[i];
        instacart::InstacartWorkload wl(wopts);
        Rng rng(trace_txns);
        auto traces = wl.GenerateTrace(trace_txns, &rng);
        Built b;
        b.schism = partition::SchismPartitioner::Build(traces, {.k = k});
        b.chiller = partition::ChillerPartitioner::Build(
            traces, {.k = k, .hot_threshold = 0.01});
        return b;
      });

  std::printf("%-10s %14s %14s %14s %14s\n", "trace", "schism-edges",
              "chiller-edges", "schism-ms", "chiller-ms");
  for (size_t i = 0; i < trace_sizes.size(); ++i) {
    const size_t trace_txns = trace_sizes[i];
    const auto& schism = builds[i].schism;
    const auto& chiller = builds[i].chiller;
    std::printf("%-10zu %14zu %14zu %14.1f %14.1f\n", trace_txns,
                schism.report.graph_edges, chiller.report.graph_edges,
                schism.report.build_micros / 1000.0,
                chiller.report.build_micros / 1000.0);

    Json row = Json::MakeObject();
    row["params"]["trace_txns"] = static_cast<uint64_t>(trace_txns);
    row["schism_graph_edges"] = static_cast<uint64_t>(schism.report.graph_edges);
    row["chiller_graph_edges"] =
        static_cast<uint64_t>(chiller.report.graph_edges);
    row["schism_build_ms"] = schism.report.build_micros / 1000.0;
    row["chiller_build_ms"] = chiller.report.build_micros / 1000.0;
    row["schism_lookup_entries"] =
        static_cast<uint64_t>(schism.report.lookup_entries);
    row["chiller_lookup_entries"] =
        static_cast<uint64_t>(chiller.report.lookup_entries);
    report.Add(std::move(row));
    if (trace_txns == 40000) {
      std::printf(
          "\nlookup table entries: schism=%zu chiller=%zu (ratio %.1fx, "
          "paper ~10x)\n",
          schism.report.lookup_entries, chiller.report.lookup_entries,
          static_cast<double>(schism.report.lookup_entries) /
              static_cast<double>(
                  std::max<size_t>(1, chiller.report.lookup_entries)));
      std::printf(
          "build time ratio (schism/chiller): %.1fx (paper: up to 5x)\n",
          static_cast<double>(schism.report.build_micros) /
              static_cast<double>(std::max<uint64_t>(
                  1, chiller.report.build_micros)));
      std::printf(
          "graph edge ratio (schism/chiller): %.1fx (n(n-1)/2 vs n per "
          "txn; ~4.5x at 10 items/basket)\n",
          static_cast<double>(schism.report.graph_edges) /
              static_cast<double>(
                  std::max<size_t>(1, chiller.report.graph_edges)));
    }
  }

  report.MaybeWrite(flags.emit_json,
                    flags.JsonPathFor("tab_lookup_and_cost"));
}

}  // namespace
}  // namespace chiller::bench

int main(int argc, char** argv) {
  chiller::bench::BenchFlags defaults;
  defaults.theta = 0.6;  // the Instacart catalog tail skew
  chiller::bench::Main(chiller::bench::ParseBenchFlagsOrExit(
      argc, argv, "tab_lookup_and_cost", defaults));
}
