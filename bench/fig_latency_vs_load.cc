// Latency under offered load: the open-loop companion to Figure 9.
//
// The paper evaluates closed-loop (a fixed number of open transactions per
// warehouse), which can never show a latency-vs-throughput knee: latency is
// a dependent variable of the concurrency knob. This bench drives the same
// TPC-C mix through the open load model (cc/load_model.h) instead:
//
//   stage 1  closed-loop capacity probe per protocol (the Figure 9 point at
//            the configured concurrency) — the saturation throughput C.
//   stage 2  open-loop sweep at offered loads {0.2..1.1} x C with a bounded
//            per-engine admission queue: p99 execution latency, p99
//            queueing delay, and shed rate per point.
//
// The interesting output is the *knee*: the highest offered load a protocol
// sustains with an empty-enough queue (nothing shed, and p99 queueing delay
// below p99 execution latency). Past the knee the admission queue — not the
// engines — dominates end-to-end latency. Chiller's two-region execution
// holds locks on contended records for a fraction of the transaction, so
// its knee sits at a higher offered load than 2PL's and OCC's.
#include <chrono>
#include <cstdio>
#include <vector>

#include "bench/bench_flags.h"
#include "bench/bench_report.h"
#include "runner/sweep.h"

namespace chiller::bench {
namespace {

constexpr double kFractions[] = {0.2, 0.4, 0.6, 0.8, 0.9, 1.0, 1.1};

struct Point {
  double offered_tps;
  double fraction;
  double throughput_tps;
  double exec_p99_ns;
  double queue_p99_ns;
  double shed_rate;
};

runner::ScenarioSpec BaseSpec(const BenchFlags& flags,
                              const std::string& proto) {
  runner::ScenarioSpec spec;
  spec.label = proto;
  spec.workload = "tpcc";
  spec.protocol = proto;
  spec.nodes = flags.nodes;
  spec.engines_per_node = flags.engines;
  spec.concurrency = flags.concurrency;
  spec.seed = flags.seed;
  spec.warmup = static_cast<SimTime>(flags.warmup_ms * kMillisecond);
  spec.measure = static_cast<SimTime>(flags.duration_ms * kMillisecond);
  spec.footprint_hint = runner::EstimateFootprint(spec);
  return spec;
}

void Main(const BenchFlags& flags) {
  // The load-model axis IS this bench's sweep: stage 1 is always the
  // closed-loop capacity probe and stage 2 always the open-loop fraction
  // grid. Refuse the shared flags that would otherwise be silently
  // ignored; --arrival and --queue-cap still shape the open loop.
  if (flags.load_model != "closed" || flags.offered_tps != 0.0 ||
      flags.batch_size != BenchFlags{}.batch_size) {
    std::fprintf(stderr,
                 "latency: this bench sweeps the load model itself — "
                 "--load-model, --offered-tps, and --batch-size are fixed "
                 "by the sweep (use --arrival / --queue-cap / "
                 "--concurrency to shape it)\n");
    std::exit(1);
  }
  // Shared flag parsing validated against the default closed model; check
  // the open-loop knobs stage 2 will actually use before paying for the
  // stage-1 capacity probes (the offered rate is derived later, so any
  // positive placeholder validates the rest).
  {
    runner::ScenarioSpec probe;
    ApplyLoadModelFlags(flags, &probe);
    probe.concurrency = flags.concurrency;
    probe.load_model = "open";
    probe.offered_tps = 1.0;
    const Status st = cc::ValidateLoadModelParams(
        probe.load_model, probe.MakeLoadModelParams());
    if (!st.ok()) {
      std::fprintf(stderr, "latency: %s\n", st.message().c_str());
      std::exit(1);
    }
  }

  const std::vector<std::string> protocols = {"2pl", "occ", "chiller"};

  std::printf(
      "Latency under offered load — full TPC-C, %u nodes x %u engines\n"
      "(1 warehouse each), open-loop %s arrivals, %u service slots and a\n"
      "%u-deep admission queue per engine; offered load swept as a fraction\n"
      "of each protocol's closed-loop capacity.\n\n",
      flags.nodes, flags.engines, flags.arrival.c_str(), flags.concurrency,
      flags.queue_cap);

  BenchReport report("latency");
  report.SetConfig("nodes", flags.nodes);
  report.SetConfig("engines_per_node", flags.engines);
  report.SetConfig("warehouses", flags.nodes * flags.engines);
  report.SetConfig("concurrency", flags.concurrency);
  report.SetConfig("arrival", flags.arrival);
  report.SetConfig("queue_cap", flags.queue_cap);
  report.SetConfig("warmup_ms", flags.warmup_ms);
  report.SetConfig("duration_ms", flags.duration_ms);
  report.SetConfig("seed", flags.seed);

  const auto wall_start = std::chrono::steady_clock::now();
  runner::SweepExecutor executor = MakeSweepExecutor(flags, "latency");

  // Stage 1: closed-loop capacity per protocol. The probe reuses the exact
  // Figure 9 configuration, so "1.0 x capacity" means "the throughput the
  // closed loop reports at this concurrency".
  std::vector<runner::ScenarioSpec> probes;
  for (const std::string& proto : protocols) probes.push_back(BaseSpec(flags, proto));
  auto probe_results = executor.Run(probes);

  std::vector<double> capacity(protocols.size(), 0.0);
  Json capacity_json = Json::MakeObject();
  for (size_t p = 0; p < protocols.size(); ++p) {
    if (!probe_results[p].ok()) {
      std::fprintf(stderr, "latency: capacity probe %s failed: %s\n",
                   protocols[p].c_str(),
                   probe_results[p].status().ToString().c_str());
      std::exit(1);
    }
    capacity[p] = probe_results[p]->stats.Throughput();
    if (capacity[p] <= 0.0) {
      std::fprintf(stderr,
                   "latency: %s closed-loop capacity probe committed "
                   "nothing (window too short?); cannot derive an "
                   "offered-load grid\n",
                   protocols[p].c_str());
      std::exit(1);
    }
    capacity_json[protocols[p]] = capacity[p];
    std::fprintf(stderr, "  [latency] %s closed-loop capacity %.0f tps\n",
                 protocols[p].c_str(), capacity[p]);
  }
  report.SetConfig("capacity_tps", capacity_json);

  // Stage 2: the open-loop grid. Specs are a pure function of the (equally
  // deterministic) stage-1 results, so --jobs N stays byte-identical.
  std::vector<runner::ScenarioSpec> specs;
  for (size_t p = 0; p < protocols.size(); ++p) {
    for (double f : kFractions) {
      runner::ScenarioSpec spec = BaseSpec(flags, protocols[p]);
      spec.load_model = "open";
      spec.offered_tps = capacity[p] * f;
      spec.arrival = flags.arrival;
      spec.queue_cap = flags.queue_cap;
      specs.push_back(std::move(spec));
    }
  }
  size_t completed = 0;  // progress callbacks are serialized by the executor
  auto results = executor.Run(
      specs, [&](size_t i, const StatusOr<runner::ScenarioResult>& r) {
        std::fprintf(stderr, "  [latency] %s offered=%.0f %s (%zu/%zu)\n",
                     specs[i].protocol.c_str(), specs[i].offered_tps,
                     r.ok() ? "done" : r.status().ToString().c_str(),
                     ++completed, specs.size());
      });
  const double sweep_ms = std::chrono::duration<double, std::milli>(
                              std::chrono::steady_clock::now() - wall_start)
                              .count();

  std::vector<std::vector<Point>> series(protocols.size());
  for (size_t i = 0; i < results.size(); ++i) {
    if (!results[i].ok()) {
      std::fprintf(stderr, "latency: scenario %zu failed: %s\n", i,
                   results[i].status().ToString().c_str());
      std::exit(1);
    }
    const runner::ScenarioResult& r = results[i].value();
    const cc::RunStats& stats = r.stats;
    const size_t p = i / std::size(kFractions);
    const double fraction = kFractions[i % std::size(kFractions)];

    Json params = Json::MakeObject();
    params["offered_tps"] = r.spec.offered_tps;
    params["load_fraction"] = fraction;
    report.AddRun(r.spec.protocol, std::move(params), stats);

    Histogram latency;
    for (const auto& cls : stats.classes) latency.Merge(cls.latency);
    Point pt;
    pt.offered_tps = r.spec.offered_tps;
    pt.fraction = fraction;
    pt.throughput_tps = stats.Throughput();
    pt.exec_p99_ns =
        latency.count() == 0 ? 0.0
                             : static_cast<double>(latency.Percentile(99));
    pt.queue_p99_ns = stats.queue_delay.count() == 0
                          ? 0.0
                          : static_cast<double>(
                                stats.queue_delay.Percentile(99));
    pt.shed_rate = stats.ShedRate();
    series[p].push_back(pt);
  }

  // The knee: the highest offered load still served without queue-dominated
  // latency (nothing shed, p99 wait below p99 service). Points are swept in
  // ascending fraction order, so the last sustained point is the knee.
  Json knee_json = Json::MakeObject();
  std::vector<double> knee(protocols.size(), 0.0);
  for (size_t p = 0; p < protocols.size(); ++p) {
    for (const Point& pt : series[p]) {
      const bool sustained =
          pt.shed_rate == 0.0 && pt.queue_p99_ns <= pt.exec_p99_ns;
      if (sustained) knee[p] = pt.offered_tps;
    }
    knee_json[protocols[p]] = knee[p];
  }
  report.SetConfig("knee_tps", knee_json);

  std::vector<double> columns(std::begin(kFractions), std::end(kFractions));
  auto row = [&](size_t p, auto field) {
    std::vector<double> out;
    for (const Point& pt : series[p]) out.push_back(field(pt));
    return out;
  };
  std::printf("(a) Delivered throughput (M txns/sec)\n");
  PrintHeader("offered / capacity", columns);
  for (size_t p = 0; p < protocols.size(); ++p) {
    PrintRow(protocols[p],
             row(p, [](const Point& pt) { return pt.throughput_tps / 1e6; }),
             "%8.3f");
  }
  std::printf("\n(b) p99 execution latency (us)\n");
  PrintHeader("offered / capacity", columns);
  for (size_t p = 0; p < protocols.size(); ++p) {
    PrintRow(protocols[p],
             row(p, [](const Point& pt) { return pt.exec_p99_ns / 1e3; }),
             "%8.1f");
  }
  std::printf("\n(c) p99 queueing delay (us)\n");
  PrintHeader("offered / capacity", columns);
  for (size_t p = 0; p < protocols.size(); ++p) {
    PrintRow(protocols[p],
             row(p, [](const Point& pt) { return pt.queue_p99_ns / 1e3; }),
             "%8.1f");
  }
  std::printf("\n(d) Shed rate at the admission queue\n");
  PrintHeader("offered / capacity", columns);
  for (size_t p = 0; p < protocols.size(); ++p) {
    PrintRow(protocols[p],
             row(p, [](const Point& pt) { return pt.shed_rate; }), "%8.3f");
  }

  std::printf("\nknee (highest sustained offered load, M txns/sec):\n");
  for (size_t p = 0; p < protocols.size(); ++p) {
    std::printf("  %-10s %8.3f\n", protocols[p].c_str(), knee[p] / 1e6);
  }

  std::printf("\nsweep: %zu scenarios in %.1f s wall-clock (--jobs %u, --shards %u)\n",
              probes.size() + specs.size(), sweep_ms / 1000.0,
              executor.jobs(), flags.shards);

  report.MaybeWrite(flags.emit_json, flags.JsonPathFor("latency"));
}

}  // namespace
}  // namespace chiller::bench

int main(int argc, char** argv) {
  chiller::bench::BenchFlags defaults;
  // A smaller cluster than Figure 9's 80 warehouses: the latency sweep runs
  // 24 scenarios and the knee shape is topology-independent.
  defaults.nodes = 4;
  defaults.engines = 2;
  chiller::bench::Main(chiller::bench::ParseBenchFlagsOrExit(
      argc, argv, "latency", defaults));
}
