// Live vs quiesced relayout under traffic (the src/migrate subsystem,
// paper Section 4.1's production loop), plus the concurrent-stream and
// workload-shift extensions. All rows share the same hash-start contended
// ycsb (`adaptive`) scenario:
//
//   quiesced    — sample -> replan -> Phase::Migrate(): the legacy
//                 stop-the-world relayout. Its timeline shows a
//                 zero-commit window exactly as long as the migration.
//   live        — sample -> replan -> Phase::LiveMigrate(): the same plan
//                 executed one relayout bucket at a time while traffic
//                 flows; transactions hitting the in-flight bucket retry
//                 with the dedicated migration abort class.
//   live-s2/s4  — the identical plan streamed 2 / 4 buckets at a time:
//                 same moved-record set, relayout window ~1/k as long,
//                 migration-abort pressure k times wider.
//   governed    — the live plan under a migrate::MigrationGovernor that
//                 retunes the stream width each advance step against the
//                 foreground abort-share/p99 SLO (AIMD: widen when calm,
//                 halve on violation).
//   continuous  — no phase plan: the measure window runs under
//                 migrate::AdaptiveController (periodic sample -> replan ->
//                 live-migrate epochs with drift gating + hysteresis).
//   shift-*     — a phase-shifting workload (the sampled hot set rotates
//                 mid-window) under three adaptivity postures: `shift-static`
//                 never replans (hash layout throughout), `shift-settle`
//                 adapts once and settles (legacy terminal settling),
//                 `shift-rearm` re-arms on drift and chases the shift.
//
// The phased modes sample identically, so they replan identical layouts
// and move identical record sets: the streams sweep isolates *how fast*
// the same move is paid for. Each row carries the full commit-flow
// timeline (timeline_slice-sized buckets of lifetime commits + latency)
// so the relayout window is visible, not just summarized.
#include <algorithm>
#include <chrono>
#include <cstdio>

#include "bench/bench_flags.h"
#include "bench/bench_report.h"
#include "runner/sweep.h"

namespace chiller::bench {
namespace {

constexpr SimTime kTimelineSlice = 250 * kMicrosecond;

/// Foreground p99 budget for the governed row; generous enough that only
/// a genuine latency regression (not steady-state contention) trips it.
constexpr SimTime kGovernorP99Budget = 5 * kMillisecond;

void Main(const BenchFlags& flags) {
  std::printf(
      "Live migration — ycsb (theta=%.2f) on %u nodes x %u engines,\n"
      "%s protocol; quiesced vs per-bucket live relayout (1/2/4 streams,\n"
      "SLO-governed) vs the continuous adaptivity controller, plus a\n"
      "phase-shifting workload under static / settle-once / re-armed\n"
      "adaptivity.\n\n",
      flags.theta, flags.nodes, flags.engines, flags.protocol.c_str());

  BenchReport report("migration");
  report.SetConfig("nodes", flags.nodes);
  report.SetConfig("engines_per_node", flags.engines);
  report.SetConfig("protocol", flags.protocol);
  report.SetConfig("theta", flags.theta);
  report.SetConfig("warmup_ms", flags.warmup_ms);
  report.SetConfig("duration_ms", flags.duration_ms);
  report.SetConfig("seed", flags.seed);
  report.SetConfig("timeline_slice_us",
                   static_cast<uint64_t>(kTimelineSlice / kMicrosecond));
  report.SetConfig("governor_p99_budget_us",
                   static_cast<uint64_t>(kGovernorP99Budget / kMicrosecond));

  const SimTime warmup = static_cast<SimTime>(flags.warmup_ms * kMillisecond);
  const SimTime measure =
      static_cast<SimTime>(flags.duration_ms * kMillisecond);
  // Same shape as fig_adaptive_relayout: a long sample window so the
  // replan sees the contended head, then a resettle before measuring.
  const SimTime sample = 2 * warmup + measure;
  const SimTime resettle = warmup;
  // The continuous rows fold sample + resettle + measure into one
  // controller-driven window, so every mode spends the same simulated time.
  const SimTime window = sample + resettle + measure;

  auto base_spec = [&] {
    runner::ScenarioSpec spec;
    spec.workload = "adaptive";
    spec.protocol = flags.protocol;
    spec.nodes = flags.nodes;
    spec.engines_per_node = flags.engines;
    spec.concurrency = flags.concurrency;
    spec.seed = flags.seed;
    ApplyLoadModelFlags(flags, &spec);
    spec.options.Set("theta", flags.theta);
    spec.options.Set("keys_per_partition", 10000);
    spec.timeline_slice = kTimelineSlice;
    return spec;
  };

  const std::vector<runner::Phase> phased = {
      runner::Phase::Warmup(warmup),
      runner::Phase::Sample(sample, /*rate=*/1.0),
      runner::Phase::Replan(),
      runner::Phase::LiveMigrate(),
      runner::Phase::Warmup(resettle),
      runner::Phase::Measure(measure),
  };

  runner::ScenarioSpec quiesced = base_spec();
  quiesced.label = "quiesced";
  quiesced.phases = {
      runner::Phase::Warmup(warmup),
      runner::Phase::Sample(sample, /*rate=*/1.0),
      runner::Phase::Replan(),
      runner::Phase::Migrate(),
      runner::Phase::Warmup(resettle),
      runner::Phase::Measure(measure),
  };

  runner::ScenarioSpec live = base_spec();
  live.label = "live";
  live.phases = phased;

  runner::ScenarioSpec live_s2 = base_spec();
  live_s2.label = "live-s2";
  live_s2.phases = phased;
  live_s2.migrate_streams = 2;

  runner::ScenarioSpec live_s4 = base_spec();
  live_s4.label = "live-s4";
  live_s4.phases = phased;
  live_s4.migrate_streams = 4;

  runner::ScenarioSpec governed = base_spec();
  governed.label = "governed";
  governed.phases = phased;
  governed.governor = true;
  governed.governor_max_streams = 8;
  governed.governor_p99_budget = kGovernorP99Budget;
  // This workload's per-epoch migration-abort share sits around 15-25%
  // while a bucket is in flight; a 30% budget lets calm epochs widen and
  // still halves the width whenever the gate's pressure spikes past it.
  governed.governor_max_abort_share = 0.30;

  runner::ScenarioSpec continuous = base_spec();
  continuous.label = "continuous";
  continuous.continuous = true;
  continuous.warmup = warmup;
  // Same total simulated time as the phased modes (their relayout costs
  // land inside this window instead of before it).
  continuous.measure = window;
  continuous.controller_period = std::max<SimTime>(kMillisecond, warmup);

  // --- the phase-shifting trio ---------------------------------------------
  // The sampled hot set rotates by `stride` keys per `shift_every` of
  // simulated time; one rotation lands mid-window, after a continuous
  // controller had time to settle on the pre-shift layout.
  const SimTime shift_every = warmup + window / 2;
  constexpr uint64_t kShiftStride = 2500;
  auto shifting_spec = [&] {
    runner::ScenarioSpec spec = base_spec();
    spec.options.Set("shift_every_us",
                     static_cast<uint64_t>(shift_every / kMicrosecond));
    spec.options.Set("shift_stride", kShiftStride);
    return spec;
  };

  runner::ScenarioSpec shift_static = shifting_spec();
  shift_static.label = "shift-static";
  // No sample/replan/migrate at all: the hash layout rides out the shift.
  // The measure window matches the continuous rows for a fair total.
  shift_static.phases = {
      runner::Phase::Warmup(warmup),
      runner::Phase::Measure(window),
  };

  runner::ScenarioSpec shift_settle = shifting_spec();
  shift_settle.label = "shift-settle";
  shift_settle.continuous = true;
  shift_settle.warmup = warmup;
  shift_settle.measure = window;
  shift_settle.controller_period = kMillisecond;  // settle well before the shift

  runner::ScenarioSpec shift_rearm = shifting_spec();
  shift_rearm.label = "shift-rearm";
  shift_rearm.continuous = true;
  shift_rearm.warmup = warmup;
  shift_rearm.measure = window;
  shift_rearm.controller_period = kMillisecond;
  shift_rearm.rearm_threshold = 0.2;

  std::vector<runner::ScenarioSpec> specs = {
      quiesced,    live,         live_s2,     live_s4,    governed,
      continuous,  shift_static, shift_settle, shift_rearm};
  for (auto& spec : specs) {
    spec.footprint_hint = runner::EstimateFootprint(spec);
  }

  const auto wall_start = std::chrono::steady_clock::now();
  runner::SweepExecutor executor = MakeSweepExecutor(flags, "migration");
  size_t completed = 0;
  auto results = executor.Run(
      specs, [&](size_t i, const StatusOr<runner::ScenarioResult>& r) {
        std::fprintf(stderr, "  [migration] %s %s (%zu/%zu)\n",
                     specs[i].label.c_str(),
                     r.ok() ? "done" : r.status().ToString().c_str(),
                     ++completed, specs.size());
      });
  const double sweep_ms = std::chrono::duration<double, std::milli>(
                              std::chrono::steady_clock::now() - wall_start)
                              .count();

  for (const auto& r : results) {
    if (!r.ok()) {
      std::fprintf(stderr, "migration: scenario failed: %s\n",
                   r.status().ToString().c_str());
      std::exit(1);
    }
  }

  auto window_tps = [](const runner::AdaptiveReport& a) {
    const SimTime span = a.migration_end - a.migration_start;
    if (span == 0) return 0.0;
    return static_cast<double>(a.migration_window_commits) /
           (static_cast<double>(span) / kSecond);
  };

  for (const auto& res : results) {
    const runner::ScenarioResult& r = res.value();
    const runner::AdaptiveReport& a = r.adaptive;
    Json params = Json::MakeObject();
    params["mode"] = r.spec.label;
    params["streams"] = static_cast<uint64_t>(r.spec.migrate_streams);
    Json row = ResultRow(flags.protocol, std::move(params), r.stats);
    row["sampled_txns"] = a.sampled_txns;
    row["hot_records"] = static_cast<uint64_t>(a.hot_records);
    row["lookup_entries"] = static_cast<uint64_t>(a.lookup_entries);
    row["moved_records"] = a.migration.moved_records;
    row["moved_bytes"] = a.migration.moved_bytes;
    row["migration_us"] =
        static_cast<double>(a.migration.sim_time) / 1000.0;
    row["buckets_moved"] = static_cast<uint64_t>(a.buckets_moved);
    row["migration_window_start_us"] =
        static_cast<double>(a.migration_start) / 1000.0;
    row["migration_window_end_us"] =
        static_cast<double>(a.migration_end) / 1000.0;
    row["migration_window_commits"] = a.migration_window_commits;
    row["migration_window_aborts"] = a.migration_window_aborts;
    row["migration_window_tps"] = window_tps(a);
    row["peak_streams"] = static_cast<uint64_t>(a.peak_streams);
    if (r.spec.governor) {
      row["governor_widens"] = static_cast<uint64_t>(a.governor_widens);
      row["governor_narrows"] = static_cast<uint64_t>(a.governor_narrows);
    }
    if (r.spec.continuous) {
      row["controller_epochs"] = static_cast<uint64_t>(a.controller_epochs);
      row["controller_migrations"] =
          static_cast<uint64_t>(a.controller_migrations);
      row["controller_settled"] = a.controller_settled;
      row["controller_rearms"] = static_cast<uint64_t>(a.controller_rearms);
      row["last_drift"] = a.last_drift;
    }
    Json timeline = Json::MakeArray();
    for (const runner::TimelineSlice& s : a.timeline) {
      Json slice = Json::MakeObject();
      slice["start_us"] = static_cast<double>(s.start) / 1000.0;
      slice["end_us"] = static_cast<double>(s.end) / 1000.0;
      slice["commits"] = s.commits;
      slice["tps"] = s.end == s.start
                         ? 0.0
                         : static_cast<double>(s.commits) /
                               (static_cast<double>(s.end - s.start) /
                                kSecond);
      slice["latency_mean_ns"] =
          s.commits == 0 ? 0.0
                         : static_cast<double>(s.latency_ns_sum) /
                               static_cast<double>(s.commits);
      timeline.Append(std::move(slice));
    }
    row["timeline"] = std::move(timeline);
    report.Add(std::move(row));
  }

  std::printf("%-14s %11s %13s %11s %10s %11s %7s\n", "mode", "final Mtps",
              "window Mtps", "moved recs", "migr us", "migr aborts",
              "peak k");
  for (const auto& res : results) {
    const runner::ScenarioResult& r = res.value();
    std::printf("%-14s %11.3f %13.3f %11llu %10.1f %11llu %7u\n",
                r.spec.label.c_str(), r.stats.Throughput() / 1e6,
                window_tps(r.adaptive) / 1e6,
                static_cast<unsigned long long>(
                    r.adaptive.migration.moved_records),
                static_cast<double>(r.adaptive.migration.sim_time) / 1000.0,
                static_cast<unsigned long long>(
                    r.adaptive.migration_window_aborts),
                r.adaptive.peak_streams);
  }
  std::printf("\n");
  for (const auto& res : results) {
    const runner::ScenarioResult& r = res.value();
    if (!r.spec.continuous) continue;
    std::printf(
        "%-14s %u epochs, %u relayouts, %u re-arms, %s\n",
        r.spec.label.c_str(), r.adaptive.controller_epochs,
        r.adaptive.controller_migrations, r.adaptive.controller_rearms,
        r.adaptive.controller_settled ? "settled" : "still adapting");
  }

  std::printf("\nsweep: %zu scenarios in %.1f s wall-clock (--jobs %u, --shards %u)\n",
              specs.size(), sweep_ms / 1000.0, executor.jobs(),
              flags.shards);

  report.MaybeWrite(flags.emit_json, flags.JsonPathFor("migration"));
}

}  // namespace
}  // namespace chiller::bench

int main(int argc, char** argv) {
  chiller::bench::BenchFlags defaults;
  defaults.theta = 0.9;   // contended: the regime relayout targets
  defaults.nodes = 4;     // 16 partitions: plenty of cross-partition moves
  defaults.engines = 4;
  defaults.warmup_ms = 2.0;
  defaults.duration_ms = 10.0;
  chiller::bench::Main(chiller::bench::ParseBenchFlagsOrExit(
      argc, argv, "migration", defaults));
}
